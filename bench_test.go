// Package repro's root benchmarks regenerate every table and figure of
// the paper through the testing.B interface, one benchmark family per
// artifact (DESIGN.md §3):
//
//	BenchmarkTable1_*            sequential times per application
//	BenchmarkFigure6_*           8-processor speedups, OpenMP (NOW, SMP
//	                             and hybrid NOW-of-SMPs backends), Tmk,
//	                             MPI
//	BenchmarkTable2_*            data and message volumes
//	BenchmarkMicro_*             Section 6 platform characteristics
//	BenchmarkAblation*           Section 3 flush vs semaphore/condvar
//
// The interesting output is the custom metrics (speedup, MB, msgs,
// virtual_ms) reported per benchmark; wall-clock ns/op only measures the
// simulator itself. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use the test-scale workloads so the whole suite stays fast;
// `go run ./cmd/nowbench -all` regenerates the artifacts at paper scale.
package main

import (
	"fmt"
	"testing"

	"repro/internal/harness"
)

const benchScale = harness.Test

func benchApp(b *testing.B, appName string, impl harness.Impl, procs int) {
	a, ok := harness.FindApp(appName)
	if !ok {
		b.Fatalf("unknown app %s", appName)
	}
	seq := a.RunSeq(benchScale)
	for i := 0; i < b.N; i++ {
		res, err := harness.Verified(a, benchScale, impl, procs)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 { // report the final run's metrics
			b.ReportMetric(seq.Time.Seconds()/res.Time.Seconds(), "speedup")
			b.ReportMetric(res.Time.Seconds()*1e3, "virtual_ms")
			b.ReportMetric(float64(res.Messages), "msgs")
			b.ReportMetric(float64(res.Bytes)/1e6, "MB")
		}
	}
}

// --- Table 1: sequential execution times -----------------------------

func benchSeq(b *testing.B, appName string) {
	a, ok := harness.FindApp(appName)
	if !ok {
		b.Fatalf("unknown app %s", appName)
	}
	for i := 0; i < b.N; i++ {
		res := a.RunSeq(benchScale)
		if i == b.N-1 {
			b.ReportMetric(res.Time.Seconds()*1e3, "virtual_ms")
		}
	}
}

func BenchmarkTable1_Sweep3D(b *testing.B) { benchSeq(b, "Sweep3D") }
func BenchmarkTable1_3DFFT(b *testing.B)   { benchSeq(b, "3D-FFT") }
func BenchmarkTable1_Water(b *testing.B)   { benchSeq(b, "Water") }
func BenchmarkTable1_TSP(b *testing.B)     { benchSeq(b, "TSP") }
func BenchmarkTable1_QSORT(b *testing.B)   { benchSeq(b, "QSORT") }
func BenchmarkTable1_LU(b *testing.B)      { benchSeq(b, "LU") }
func BenchmarkTable1_Barnes(b *testing.B)  { benchSeq(b, "Barnes") }

// --- Figure 6: speedups at 8 processors, all three versions ----------

func BenchmarkFigure6_Sweep3D_OpenMP(b *testing.B) { benchApp(b, "Sweep3D", harness.OMP, 8) }
func BenchmarkFigure6_Sweep3D_OMPSMP(b *testing.B) { benchApp(b, "Sweep3D", harness.OMPSMP, 8) }
func BenchmarkFigure6_Sweep3D_OMPHyb(b *testing.B) { benchApp(b, "Sweep3D", harness.OMPHybrid, 8) }
func BenchmarkFigure6_Sweep3D_Tmk(b *testing.B)    { benchApp(b, "Sweep3D", harness.Tmk, 8) }
func BenchmarkFigure6_Sweep3D_MPI(b *testing.B)    { benchApp(b, "Sweep3D", harness.MPI, 8) }

func BenchmarkFigure6_3DFFT_OpenMP(b *testing.B) { benchApp(b, "3D-FFT", harness.OMP, 8) }
func BenchmarkFigure6_3DFFT_OMPSMP(b *testing.B) { benchApp(b, "3D-FFT", harness.OMPSMP, 8) }
func BenchmarkFigure6_3DFFT_OMPHyb(b *testing.B) { benchApp(b, "3D-FFT", harness.OMPHybrid, 8) }
func BenchmarkFigure6_3DFFT_Tmk(b *testing.B)    { benchApp(b, "3D-FFT", harness.Tmk, 8) }
func BenchmarkFigure6_3DFFT_MPI(b *testing.B)    { benchApp(b, "3D-FFT", harness.MPI, 8) }

func BenchmarkFigure6_Water_OpenMP(b *testing.B) { benchApp(b, "Water", harness.OMP, 8) }
func BenchmarkFigure6_Water_OMPSMP(b *testing.B) { benchApp(b, "Water", harness.OMPSMP, 8) }
func BenchmarkFigure6_Water_OMPHyb(b *testing.B) { benchApp(b, "Water", harness.OMPHybrid, 8) }
func BenchmarkFigure6_Water_Tmk(b *testing.B)    { benchApp(b, "Water", harness.Tmk, 8) }
func BenchmarkFigure6_Water_MPI(b *testing.B)    { benchApp(b, "Water", harness.MPI, 8) }

func BenchmarkFigure6_TSP_OpenMP(b *testing.B) { benchApp(b, "TSP", harness.OMP, 8) }
func BenchmarkFigure6_TSP_OMPSMP(b *testing.B) { benchApp(b, "TSP", harness.OMPSMP, 8) }
func BenchmarkFigure6_TSP_OMPHyb(b *testing.B) { benchApp(b, "TSP", harness.OMPHybrid, 8) }
func BenchmarkFigure6_TSP_Tmk(b *testing.B)    { benchApp(b, "TSP", harness.Tmk, 8) }
func BenchmarkFigure6_TSP_MPI(b *testing.B)    { benchApp(b, "TSP", harness.MPI, 8) }

func BenchmarkFigure6_QSORT_OpenMP(b *testing.B) { benchApp(b, "QSORT", harness.OMP, 8) }
func BenchmarkFigure6_QSORT_OMPSMP(b *testing.B) { benchApp(b, "QSORT", harness.OMPSMP, 8) }
func BenchmarkFigure6_QSORT_OMPHyb(b *testing.B) { benchApp(b, "QSORT", harness.OMPHybrid, 8) }
func BenchmarkFigure6_QSORT_Tmk(b *testing.B)    { benchApp(b, "QSORT", harness.Tmk, 8) }
func BenchmarkFigure6_QSORT_MPI(b *testing.B)    { benchApp(b, "QSORT", harness.MPI, 8) }

func BenchmarkFigure6_LU_OpenMP(b *testing.B) { benchApp(b, "LU", harness.OMP, 8) }
func BenchmarkFigure6_LU_OMPSMP(b *testing.B) { benchApp(b, "LU", harness.OMPSMP, 8) }
func BenchmarkFigure6_LU_OMPHyb(b *testing.B) { benchApp(b, "LU", harness.OMPHybrid, 8) }
func BenchmarkFigure6_LU_Tmk(b *testing.B)    { benchApp(b, "LU", harness.Tmk, 8) }
func BenchmarkFigure6_LU_MPI(b *testing.B)    { benchApp(b, "LU", harness.MPI, 8) }

func BenchmarkFigure6_Barnes_OpenMP(b *testing.B) { benchApp(b, "Barnes", harness.OMP, 8) }
func BenchmarkFigure6_Barnes_OMPSMP(b *testing.B) { benchApp(b, "Barnes", harness.OMPSMP, 8) }
func BenchmarkFigure6_Barnes_OMPHyb(b *testing.B) { benchApp(b, "Barnes", harness.OMPHybrid, 8) }
func BenchmarkFigure6_Barnes_Tmk(b *testing.B)    { benchApp(b, "Barnes", harness.Tmk, 8) }
func BenchmarkFigure6_Barnes_MPI(b *testing.B)    { benchApp(b, "Barnes", harness.MPI, 8) }

// --- Table 2 is the traffic columns of the same runs -----------------
// (separate benchmarks so the table can be regenerated in isolation).

func BenchmarkTable2_Sweep3D_OpenMP(b *testing.B) { benchApp(b, "Sweep3D", harness.OMP, 8) }
func BenchmarkTable2_3DFFT_OpenMP(b *testing.B)   { benchApp(b, "3D-FFT", harness.OMP, 8) }
func BenchmarkTable2_Water_OpenMP(b *testing.B)   { benchApp(b, "Water", harness.OMP, 8) }
func BenchmarkTable2_TSP_OpenMP(b *testing.B)     { benchApp(b, "TSP", harness.OMP, 8) }
func BenchmarkTable2_QSORT_OpenMP(b *testing.B)   { benchApp(b, "QSORT", harness.OMP, 8) }
func BenchmarkTable2_LU_OpenMP(b *testing.B)      { benchApp(b, "LU", harness.OMP, 8) }
func BenchmarkTable2_Barnes_OpenMP(b *testing.B)  { benchApp(b, "Barnes", harness.OMP, 8) }

// --- Section 6 microbenchmarks ---------------------------------------

func BenchmarkMicro_Platform(b *testing.B) {
	var m harness.MicroResults
	var err error
	for i := 0; i < b.N; i++ {
		m, err = harness.Micro()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.UDPRoundTrip.Micros(), "udp_rtt_µs")
	b.ReportMetric(m.LockLow.Micros(), "lock_low_µs")
	b.ReportMetric(m.LockHigh.Micros(), "lock_high_µs")
	b.ReportMetric(m.Barrier8.Micros(), "barrier8_µs")
	b.ReportMetric(m.DiffLow.Micros(), "diff_low_µs")
	b.ReportMetric(m.DiffHigh.Micros(), "diff_high_µs")
	b.ReportMetric(m.TCPRoundTrip.Micros(), "tcp_rtt_µs")
	b.ReportMetric(m.TCPBandwidth, "tcp_MB/s")
}

// --- Section 3 ablations ----------------------------------------------

func BenchmarkAblationPipeline(b *testing.B) {
	var res harness.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.AblationPipeline(20, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FlushTime.Seconds()/res.NewTime.Seconds(), "sema_speedup")
	b.ReportMetric(float64(res.FlushMsgs), "flush_msgs")
	b.ReportMetric(float64(res.NewMsgs), "sema_msgs")
}

func BenchmarkAblationTaskQueue(b *testing.B) {
	var res harness.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.AblationTaskQueue(32, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FlushTime.Seconds()/res.NewTime.Seconds(), "condvar_speedup")
	b.ReportMetric(float64(res.FlushMsgs), "flush_msgs")
	b.ReportMetric(float64(res.NewMsgs), "condvar_msgs")
}

func BenchmarkAblationFlushCost(b *testing.B) {
	var rows []harness.FlushCostRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.AblationFlushCost([]int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.FlushMsgs), fmt.Sprintf("flush_msgs_p%d", r.Procs))
	}
}
