// Compiler: drive the OpenMP-to-TreadMarks compiler (Section 4.3) on a
// small directive-annotated program: the two-phase analysis infers which
// locations must live in shared memory, catches a shared/private conflict,
// and the fork-join transform produces a runnable program.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ompc"
)

func main() {
	const n = 1024

	// A program shaped like the paper's examples: main declares `grid`
	// shared in its region and passes it by reference to `smooth`, whose
	// own region also marks its formal shared. `tmp` is shared in one
	// region and private in another, so the analysis must redeclare it.
	ir := &ompc.Program{
		Globals: []*ompc.Var{
			{Name: "grid", Kind: ompc.Array, Size: 8 * n},
			{Name: "tmp", Kind: ompc.Scalar, Size: 8},
		},
		Subs: []*ompc.Subroutine{
			{
				Name:   "smooth",
				Params: []ompc.Param{{Name: "g", Kind: ompc.Pointer, ByRef: true}},
				Regions: []*ompc.Region{
					{Name: "relax", Clauses: []ompc.Clause{{Var: "g", Sharing: ompc.Shared}}},
				},
			},
			{
				Name: "main",
				Regions: []*ompc.Region{
					{Name: "init", Clauses: []ompc.Clause{
						{Var: "grid", Sharing: ompc.Shared},
						{Var: "tmp", Sharing: ompc.Shared},
					}},
					{Name: "post", Clauses: []ompc.Clause{
						{Var: "tmp", Sharing: ompc.Private},
					}},
				},
				Calls: []ompc.Call{{Callee: "smooth", Args: []string{"grid"}}},
			},
		},
	}

	bodies := map[string]ompc.Body{
		"main/init": func(tc *core.TC, env *ompc.Env) {
			g := env.Addr("grid")
			lo, hi := core.StaticBlock(0, n, tc.ThreadNum(), tc.NumThreads())
			for i := lo; i < hi; i++ {
				tc.WriteF64(g+core.Addr(8*i), float64(i))
			}
			tc.Compute(float64(hi - lo))
		},
		"main/post": func(tc *core.TC, env *ompc.Env) {
			tmp := 0.0 // redeclared private: a plain local
			g := env.Addr("grid")
			lo, hi := core.StaticBlock(0, n, tc.ThreadNum(), tc.NumThreads())
			for i := lo; i < hi; i++ {
				tmp += tc.ReadF64(g + core.Addr(8*i))
			}
			tc.Compute(float64(hi - lo))
		},
	}

	compiled, err := ompc.Compile(ir, core.Config{Threads: 4}, bodies)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("analysis results (Section 4.3.1):")
	fmt.Printf("  shared locations : %v\n", compiled.Analysis.SharedLocs)
	fmt.Printf("  redeclared       : %v (shared in one region, private in another)\n", compiled.Analysis.Redeclared)
	fmt.Printf("  shared formals   : %v\n", compiled.Analysis.SharedParams)

	err = compiled.Run(func(m *core.MC) {
		m.Parallel("main/init", core.NoArgs())
		m.Parallel("main/post", core.NoArgs())
		g := compiled.Env("main").Addr("grid")
		fmt.Printf("grid[0]=%.0f grid[%d]=%.0f — initialized through DSM shared memory\n",
			m.ReadF64(g), n-1, m.ReadF64(g+core.Addr(8*(n-1))))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fork-join transform executed both regions on 4 workstations")
}
