// Pipeline: the paper's Section 3.2 producer/consumer example, run both
// ways — Figure 1 (flush + busy-wait flags) against Figure 3 (the
// proposed semaphores) — demonstrating why the paper removes flush from
// the standard: 2(n-1) messages and interrupted bystanders versus a
// constant-cost signal.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const rounds = 25

func main() {
	flushTime, flushMsgs := runFlush()
	semaTime, semaMsgs := runSema()

	fmt.Println("producer/consumer pipeline, 25 rounds, 8 workstations")
	fmt.Printf("  Figure 1 (flush + busy-wait) : %-10s %5d messages\n", flushTime, flushMsgs)
	fmt.Printf("  Figure 3 (semaphores)        : %-10s %5d messages\n", semaTime, semaMsgs)
	fmt.Printf("  semaphores are %.1fx faster with %.1fx fewer messages\n",
		flushTime.Seconds()/semaTime.Seconds(), float64(flushMsgs)/float64(semaMsgs))
}

func runFlush() (t interface{ Seconds() float64 }, msgs int64) {
	prog := core.NewProgram(core.Config{Threads: 8})
	data := prog.SharedPage(8)
	avail := prog.SharedPage(8)
	done := prog.SharedPage(8)
	prog.RegisterRegion("flush-pipe", func(tc *core.TC) {
		nd := tc.Worker()
		switch tc.ThreadNum() {
		case 0:
			for i := 1; i <= rounds; i++ {
				nd.WriteI64(data, int64(i*i))
				nd.WriteI64(avail, int64(i))
				tc.Flush()
				for nd.ReadI64(done) != int64(i) {
					nd.Poll()
				}
			}
		case 1:
			for i := 1; i <= rounds; i++ {
				for nd.ReadI64(avail) != int64(i) {
					nd.Poll()
				}
				_ = nd.ReadI64(data)
				nd.WriteI64(done, int64(i))
				tc.Flush()
			}
		default:
			// The other six threads just compute — and get interrupted
			// by every flush anyway.
			tc.Compute(float64(rounds) * 2000)
		}
	})
	if err := prog.Run(func(m *core.MC) { m.Parallel("flush-pipe", core.NoArgs()) }); err != nil {
		log.Fatal(err)
	}
	m, _ := prog.Traffic()
	return prog.Elapsed(), m
}

func runSema() (t interface{ Seconds() float64 }, msgs int64) {
	prog := core.NewProgram(core.Config{Threads: 8})
	data := prog.SharedPage(8)
	const semAvail, semDone = 1, 2
	prog.RegisterRegion("sema-pipe", func(tc *core.TC) {
		nd := tc.Worker()
		switch tc.ThreadNum() {
		case 0:
			for i := 1; i <= rounds; i++ {
				nd.WriteI64(data, int64(i*i))
				tc.SemaSignal(semAvail)
				tc.SemaWait(semDone)
			}
		case 1:
			for i := 1; i <= rounds; i++ {
				tc.SemaWait(semAvail)
				_ = nd.ReadI64(data)
				tc.SemaSignal(semDone)
			}
		default:
			tc.Compute(float64(rounds) * 2000)
		}
	})
	if err := prog.Run(func(m *core.MC) { m.Parallel("sema-pipe", core.NoArgs()) }); err != nil {
		log.Fatal(err)
	}
	m, _ := prog.Traffic()
	return prog.Elapsed(), m
}
