// Taskqueue: the paper's Figure 4 — a work queue protected by a critical
// section with a condition variable for blocking instead of busy-waiting —
// exactly the construct QSORT uses. Workers pull integer tasks, "process"
// them, and occasionally generate follow-up tasks; termination is the
// nwait == nthreads broadcast from Figure 4.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const (
	initialTasks = 24
	threads      = 6
	lockName     = "queue"
	condID       = 0
)

func main() {
	prog := core.NewProgram(core.Config{Threads: threads})
	head := prog.SharedPage(8)
	tail := prog.Shared(8)
	nwait := prog.Shared(8)
	ring := prog.SharedPage(8 * 1024)
	results := prog.SharedPage(8 * 1024)
	lockID := core.CriticalLockID(lockName)

	enqueue := func(nd core.Worker, v int64) {
		t := nd.ReadI64(tail)
		nd.WriteI64(ring+core.Addr(8*(t%1024)), v)
		nd.WriteI64(tail, t+1)
	}

	prog.RegisterRegion("workers", func(tc *core.TC) {
		nd := tc.Worker()
		for {
			var task int64 = -1
			nd.Acquire(lockID)
			for {
				h, t := nd.ReadI64(head), nd.ReadI64(tail)
				if h < t {
					task = nd.ReadI64(ring + core.Addr(8*(h%1024)))
					nd.WriteI64(head, h+1)
					break
				}
				nw := nd.ReadI64(nwait) + 1
				nd.WriteI64(nwait, nw)
				if nw == threads {
					nd.CondBroadcast(condID, lockID) // Figure 4: end of program
					break
				}
				nd.CondWait(condID, lockID)
				if nd.ReadI64(nwait) == threads {
					break
				}
				nd.WriteI64(nwait, nd.ReadI64(nwait)-1)
			}
			nd.Release(lockID)
			if task < 0 {
				return
			}

			// "Process" the task and record the result.
			tc.Compute(50_000)
			nd.WriteI64(results+core.Addr(8*task), task*task)

			// Every third task spawns a child (EnQueue from Figure 4).
			if task < initialTasks && task%3 == 0 {
				child := initialTasks + task/3
				nd.Acquire(lockID)
				enqueue(nd, child)
				if nd.ReadI64(nwait) > 0 {
					nd.CondSignal(condID, lockID)
				}
				nd.Release(lockID)
			}
		}
	})

	err := prog.Run(func(m *core.MC) {
		for i := int64(0); i < initialTasks; i++ {
			enqueue(m.Worker(), i)
		}
		m.Parallel("workers", core.NoArgs())

		done := 0
		for i := int64(0); i < 1024; i++ {
			if m.ReadI64(results+core.Addr(8*i)) == i*i && i > 0 {
				done++
			}
		}
		fmt.Printf("processed %d tasks (including spawned children)\n", done)
		fmt.Printf("virtual time: %s\n", m.Now())
	})
	if err != nil {
		log.Fatal(err)
	}
	msgs, _ := prog.Traffic()
	fmt.Printf("messages: %d — no busy-waiting, every idle thread slept on the condition variable\n", msgs)
}
