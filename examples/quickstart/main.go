// Quickstart: a parallel dot product on the simulated network of
// workstations in ~40 lines.
//
// The program follows the paper's model: variables default to PRIVATE
// (plain Go locals); anything shared is explicitly allocated in the DSM
// with Shared/SharedPage; a `parallel do` region statically splits the
// iteration space; a reduction combines per-thread partial sums.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dsm"
)

func main() {
	const n = 1 << 16
	prog := core.NewProgram(core.Config{Threads: 8})

	// shared(x, y): two vectors in distributed shared memory.
	x := prog.SharedPage(8 * n)
	y := prog.SharedPage(8 * n)
	sum := prog.NewReduction(core.OpSum)

	// parallel do: each thread initializes and multiplies its own block.
	prog.RegisterDo("dot", func(tc *core.TC, lo, hi int) {
		var local float64 // private by default — just a Go local
		buf := make([]float64, hi-lo)
		tc.Node().ReadF64s(x+dsm.Addr(8*lo), buf)
		buf2 := make([]float64, hi-lo)
		tc.Node().ReadF64s(y+dsm.Addr(8*lo), buf2)
		for i := range buf {
			local += buf[i] * buf2[i]
		}
		tc.Compute(2 * float64(hi-lo)) // charge the virtual cost
		sum.Reduce(tc, local)
	})

	err := prog.Run(func(m *core.MC) {
		// Sequential section: the master initializes the vectors.
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i % 100)
			ys[i] = 2
		}
		m.Node().WriteF64s(x, xs)
		m.Node().WriteF64s(y, ys)

		sum.Reset(&m.TC)
		m.ParallelDo("dot", 0, n, core.NoArgs())

		fmt.Printf("dot(x, y)      = %.0f\n", sum.Value(&m.TC))
		fmt.Printf("virtual time   = %s\n", m.Now())
	})
	if err != nil {
		log.Fatal(err)
	}
	msgs, bytes := prog.Traffic()
	fmt.Printf("protocol cost  = %d messages, %d bytes\n", msgs, bytes)
}
