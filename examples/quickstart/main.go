// Quickstart: a parallel dot product in ~40 lines — the SAME source run
// three times: on the simulated network of workstations (TreadMarks), on
// hardware shared memory (goroutines), and on a hybrid NOW of SMP
// islands, selected purely by core.Config.Backend. That is the paper's
// thesis as an API: a portable directive program whose execution
// substrate is a configuration knob.
//
// The program follows the paper's model: variables default to PRIVATE
// (plain Go locals); anything shared is explicitly allocated with
// Shared/SharedPage; a `parallel do` region statically splits the
// iteration space; a reduction combines per-thread partial sums.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const n = 1 << 16

func dot(backend core.BackendKind) {
	prog := core.NewProgram(core.Config{Threads: 8, Backend: backend})

	// shared(x, y): two vectors in the shared address space.
	x := prog.SharedPage(8 * n)
	y := prog.SharedPage(8 * n)
	sum := prog.NewReduction(core.OpSum)

	// parallel do: each thread initializes and multiplies its own block.
	prog.RegisterDo("dot", func(tc *core.TC, lo, hi int) {
		var local float64 // private by default — just a Go local
		buf := make([]float64, hi-lo)
		tc.ReadF64s(x+core.Addr(8*lo), buf)
		buf2 := make([]float64, hi-lo)
		tc.ReadF64s(y+core.Addr(8*lo), buf2)
		for i := range buf {
			local += buf[i] * buf2[i]
		}
		tc.Compute(2 * float64(hi-lo)) // charge the virtual cost
		sum.Reduce(tc, local)
	})

	err := prog.Run(func(m *core.MC) {
		// Sequential section: the master initializes the vectors.
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i % 100)
			ys[i] = 2
		}
		m.WriteF64s(x, xs)
		m.WriteF64s(y, ys)

		sum.Reset(&m.TC)
		m.ParallelDo("dot", 0, n, core.NoArgs())

		fmt.Printf("[%s] dot(x, y)     = %.0f\n", backend, sum.Value(&m.TC))
		fmt.Printf("[%s] virtual time  = %s\n", backend, m.Now())
	})
	if err != nil {
		log.Fatal(err)
	}
	msgs, bytes := prog.Traffic()
	fmt.Printf("[%s] protocol cost = %d messages, %d bytes\n", backend, msgs, bytes)
}

func main() {
	dot(core.BackendNOW)       // TreadMarks on the simulated NOW
	dot(core.BackendSMP)       // the same source on hardware shared memory
	dot(core.HybridIslands(2)) // and on a NOW of two SMP islands
}
