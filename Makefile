# Repro of conf_sc_LuHZ98 — build/test entry points. CI runs `make ci`.

GO ?= go

.PHONY: build vet fmt-check lint test test-short test-race smp-race hybrid-race gc-race scale-race serve-race fuzz-wire bench-smoke bench bench-wire bench-scaling tables ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt cleanliness: fail if any file needs reformatting.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Protocol invariant analyzers (servernoblock, clockcharge, detfree,
# lockorder, tripwire — see README "Static analysis"). nowlint also
# speaks go vet's unitchecker protocol, so the same suite runs as
#   $(GO) build -o /tmp/nowlint ./cmd/nowlint && $(GO) vet -vettool=/tmp/nowlint ./...
lint:
	$(GO) run ./cmd/nowlint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over every package, including the concurrent
# harness grid and the simulated DSM/MPI runtimes.
test-race:
	$(GO) test -race ./...

# SMP-backend smoke under the race detector: the backend conformance
# suite plus the core runtime tests, which run every primitive on real
# goroutines over the shared heap. The full test-race pass subsumes it;
# it runs FIRST in ci (and stands alone for the dev loop) so an ordering
# bug in the SMP backend fails in seconds instead of after the whole
# race suite.
smp-race:
	$(GO) test -race -run 'TestBackendConformance|TestSMPZeroTraffic|TestSemaphorePipelineDirectives|TestCriticalMutualExclusion|TestBarrierDirective' ./internal/core

# Hybrid-backend smoke under the race detector: the conformance scenarios
# on the NOW-of-SMPs backend (all island counts) plus the degenerate-limit
# pins and one real application (Water at a two-island split). Like
# smp-race it runs early in ci so an island-teams ordering bug fails in
# seconds.
hybrid-race:
	$(GO) test -race -run 'TestBackendConformance|TestHybrid' ./internal/core
	$(GO) test -race -run 'TestHybridRaceSmoke' ./internal/harness

# Acquire-epoch GC smoke under the race detector: the GC property suite
# (randomized lock/sema/cond interleavings, coordinator invariants,
# bounded chains) plus the lock/semaphore applications — QSORT and
# Sweep3D at multiples of their test scale — with the collector forced to
# low pressure. The consensus pushes, server-side purges, and fetch-lock
# exclusion all exercise cross-goroutine edges, so this is where an
# ordering bug in the acquire collector fails first.
gc-race:
	$(GO) test -race -run 'TestAcquireGC|TestAcqCoord|TestGC' ./internal/dsm
	$(GO) test -race -run 'TestAcquireGC|TestAblationGCPolicyGrid' ./internal/harness

# >8-node smoke under the race detector: the wide-team (16/32-thread)
# conformance scenario on every backend plus one real application at 16
# processors on the NOW (3D-FFT: pure page traffic through the sharded
# homes and a two-level tree barrier), plus the hierarchical-consensus
# scenarios — tree-routed GC pushes with relays, batched departure waves
# with floor piggybacks, and the tree-vs-flat equivalence pin. The relay
# forwarding and reply-frame unwrap both cross the server/application
# goroutine boundary, so a race in either fails here first.
scale-race:
	$(GO) test -race -run 'TestBackendConformanceWideTeams' ./internal/core
	$(GO) test -race -run 'TestEquivalenceBeyondPaperScale/3D-FFT/omp/p16' ./internal/harness
	$(GO) test -race -run 'TestTreeVsFlatConsensusEquivalence|TestTreeBarrierFloorPiggyback|TestScaleTreeBarrierCorrectness' ./internal/dsm

# Service-mode smoke under the race detector: a short mixed stream (NOW,
# TreadMarks, and shared-memory classes) through the scheduler — the
# dispatch loop, the weighted execution pool, fresh backend construction
# and teardown per job, and the checkpoint census all cross goroutines,
# so a lifecycle race fails here in seconds. The scheduler-level unit
# tests (replay, width identity, checkpoints) ride along.
serve-race:
	$(GO) run -race ./cmd/nowbench -serve -scale test -jobs 60 -arrival 40 \
		-mix 'TSP:omp:p4,QSORT:tmk:p4,Water:omp-smp:p4:w=2,3D-FFT:mpi:p4' >/dev/null
	$(GO) test -race -short -run 'TestServe' ./internal/serve

# Short coverage-guided fuzz pass over the wire decoders (trailer,
# vector clock, and frame envelope): the seeds replay instantly, then a
# few seconds of mutation hunt for panics that escape the wireError
# bound. The corpus-less smoke keeps ci deterministic-ish and fast; run
#   $(GO) test -fuzz FuzzWireDecode ./internal/dsm
# open-endedly when touching the codec.
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 5s ./internal/dsm

# One-iteration benchmark smoke: compiles and executes every benchmark
# family (Table 1 / Figure 6 / Table 2 / micro / ablations) so they can
# never silently rot.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem

# Wire-format before/after: total bytes, datagrams, and bytes per
# synchronization episode for Water and QSORT at 8 and 32 processors
# under the v1 (one datagram per message) and v2 (coalesced +
# delta-compressed) formats. Add SCALE=test for a fast run.
SCALE ?= full
bench-wire:
	$(GO) run ./cmd/nowbench -wire -scale $(SCALE)

# Scaling-wall before/after: the P = 8..128 study under the flat
# consensus transport (every push and departure a direct send — the
# pre-hierarchical baseline), then under the tree-routed transport with
# batched departure waves and the P-aware GC trigger. Compare the wall
# lines per application. Add SCALE=test for a fast run; at full scale the
# 64- and 128-node cells take serious time.
bench-scaling:
	@echo '=== flat consensus (baseline) ==='
	$(GO) run ./cmd/nowbench -scaling -flatconsensus -scale $(SCALE)
	@echo
	@echo '=== hierarchical consensus ==='
	$(GO) run ./cmd/nowbench -scaling -scale $(SCALE)

# Regenerate every paper artifact at full scale.
tables:
	$(GO) run ./cmd/nowbench -all

ci: build vet fmt-check lint test smp-race hybrid-race gc-race scale-race serve-race test-race fuzz-wire bench-smoke
