# Repro of conf_sc_LuHZ98 — build/test entry points. CI runs `make ci`.

GO ?= go

.PHONY: build vet test test-short test-race bench-smoke bench tables ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over every package, including the concurrent
# harness grid and the simulated DSM/MPI runtimes.
test-race:
	$(GO) test -race ./...

# One-iteration benchmark smoke: compiles and executes every benchmark
# family (Table 1 / Figure 6 / Table 2 / micro / ablations) so they can
# never silently rot.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem

# Regenerate every paper artifact at full scale.
tables:
	$(GO) run ./cmd/nowbench -all

ci: build vet test test-race bench-smoke
