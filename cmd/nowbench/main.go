// Command nowbench regenerates every table and figure of the paper's
// evaluation on the simulated network of workstations:
//
//	nowbench -table 1              Table 1 (apps, sizes, sequential times)
//	nowbench -figure 6             Figure 6 speedups: OpenMP on the NOW,
//	                               SMP and hybrid NOW-of-SMPs backends vs
//	                               TreadMarks vs MPI
//	nowbench -table 2              Table 2 (data and message counts; the
//	                               omp-smp columns are the zero-traffic
//	                               hardware-shared-memory baseline, the
//	                               omp-hybrid columns inter-island only)
//	nowbench -gc                   protocol-metadata GC accounting table
//	                               (incl. acquire-epoch counts per app)
//	nowbench -micro                Section 6 platform characteristics
//	nowbench -ablation section3    Section 3 flush-vs-sema/condvar studies
//	nowbench -ablation gc          the GC ablations: every-episode vs
//	                               adaptive vs off trigger counts, plus
//	                               the acquire-epoch policy x trigger grid
//	                               (flush / validate-hot / adaptive
//	                               purges on a lock/semaphore kernel and
//	                               on Water)
//	nowbench -ablation all         both of the above
//	nowbench -sweep                speedup curves for P = 1,2,4,8
//	nowbench -scaling              the >8-node scaling-wall study: OpenMP
//	                               speedup at P = 8..128 with per-size
//	                               binding-cost attribution (page service
//	                               vs synchronization vs GC consensus);
//	                               NOT part of -all — its 64- and 128-node
//	                               cells are an order of magnitude beyond
//	                               the other artifacts
//	nowbench -wire                 wire-format before/after: Water and
//	                               QSORT at 8 and 32 processors under the
//	                               v1 (one datagram per message) and v2
//	                               (coalesced + delta-compressed) formats,
//	                               with bytes per synchronization episode;
//	                               NOT part of -all (make bench-wire)
//	nowbench -all                  everything above except -scaling
//	nowbench -serve                service mode: run a seeded multi-tenant
//	                               job stream over shared backend slots
//	                               and print sustained throughput plus
//	                               queue-wait/end-to-end latency quantiles
//	                               per job class (in virtual time); shape
//	                               it with -jobs, -mix, -arrival, -seed,
//	                               and -serve-width, and see the serve
//	                               package for the mix grammar
//	                               (App:impl:pN[:w=K][:gc=P][:policy=X]);
//	                               NOT part of -all
//
// Add -scale test for a fast run on reduced inputs, -procs N to change
// the processor count of Figure 6 / Table 2, and -islands K to set the
// SMP island count of the omp-hybrid columns (default 2; clamped to the
// processor count). -gcpressure N and -gcpolicy P set the DSM's default
// acquire-epoch trigger and validate-vs-flush purge policy for every
// cell of the run (see dsm.Config.GCPressure / GCPolicy), and -wirev1
// runs every DSM cell under the pre-batching v1 wire protocol for
// before/after byte comparisons (see dsm.Config.WireV1). Independent
// experiment cells run concurrently on a weighted worker pool — SMP and
// hybrid cells are cheaper than full-protocol NOW cells and pack several
// to a worker slot — with output order unaffected; -workers N bounds the
// pool, and -workers 1 reproduces the fully sequential harness.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dsm"
	"repro/internal/harness"
	"repro/internal/serve"
)

// defaultMix is the -serve job mix when -mix is not given: five classes
// over four applications, spanning the full slot-weight range — TSP on
// the NOW and QSORT on TreadMarks (full slot each), Water on hardware
// shared memory, sequential Sweep3D, and MPI 3D-FFT (quarter slot each).
const defaultMix = "TSP:omp:p4,QSORT:tmk:p4,Water:omp-smp:p4:w=3,Sweep3D:seq:p1:w=3,3D-FFT:mpi:p4:w=2"

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate Table 1 or 2")
		figure   = flag.Int("figure", 0, "regenerate Figure 6")
		micro    = flag.Bool("micro", false, "run the Section 6 platform microbenchmarks")
		gcTable  = flag.Bool("gc", false, "print the protocol-metadata GC accounting table")
		ablation = flag.String("ablation", "", "run ablations: section3 (the flush-vs-sema/condvar studies, also selected by the legacy names pipeline/taskqueue/flushcost), gc, or all")
		sweep    = flag.Bool("sweep", false, "print speedup curves over processor counts")
		scaling  = flag.Bool("scaling", false, "print the >8-node scaling-wall table (P = 8..128)")
		wire     = flag.Bool("wire", false, "print the v1-vs-v2 wire-format byte comparison (Water and QSORT at 8 and 32 processors)")
		all      = flag.Bool("all", false, "run every experiment")
		procs    = flag.Int("procs", 8, "processor count for Figure 6 and Table 2")
		islands  = flag.Int("islands", 0, "SMP island count for the omp-hybrid columns (0 = default 2)")
		scale    = flag.String("scale", "full", "workload scale: full or test")
		workers  = flag.Int("workers", 0, "grid worker pool width (0 = one per CPU, 1 = sequential)")
		gcPress  = flag.Int("gcpressure", 0, "default acquire-epoch GC trigger (0 = dsm default, negative disables)")
		gcPolicy = flag.String("gcpolicy", "", "default GC purge policy: flush, validate-hot, or adaptive")
		wireV1   = flag.Bool("wirev1", false, "run every DSM cell under the pre-batching v1 wire protocol (see dsm.Config.WireV1)")
		flatCons = flag.Bool("flatconsensus", false, "route GC consensus pushes and barrier departure waves flat at any machine size (the pre-hierarchical baseline; see make bench-scaling)")

		serveMode  = flag.Bool("serve", false, "service mode: run a multi-tenant job stream and print the latency report")
		jobs       = flag.Int("jobs", 500, "service mode: number of jobs in the stream")
		mix        = flag.String("mix", defaultMix, "service mode: job mix, comma-separated App:impl:pN[:w=K][:gc=P][:policy=X]")
		arrival    = flag.Float64("arrival", 40, "service mode: mean arrival rate in jobs per virtual second")
		seed       = flag.Uint64("seed", 1, "service mode: arrival-stream seed")
		serveWidth = flag.Int("serve-width", 2, "service mode: backend slots of the simulated service")
	)
	flag.Parse()

	if *gcPress != 0 {
		dsm.SetGCPressureDefault(*gcPress)
	}
	if *wireV1 {
		dsm.SetWireV1Default(true)
	}
	if *flatCons {
		dsm.SetTreeConsensusDefault(false)
	}
	if *gcPolicy != "" {
		p, err := dsm.ParseGCPolicy(*gcPolicy)
		if err != nil {
			fatal(err)
		}
		dsm.SetGCPolicyDefault(p)
	}

	s := harness.Scale(*scale)
	if s != harness.Full && s != harness.Test {
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	if *workers > 0 {
		harness.Workers = *workers
	}
	if *islands > 0 {
		harness.HybridIslands = *islands
	}
	ran := false
	out := os.Stdout

	if *all || *table == 1 {
		ran = true
		check(harness.Table1(out, s))
		fmt.Fprintln(out)
	}
	if *all || *figure == 6 {
		ran = true
		check(harness.Figure6(out, s, *procs))
		fmt.Fprintln(out)
	}
	if *all || *table == 2 {
		ran = true
		check(harness.Table2(out, s, *procs))
		fmt.Fprintln(out)
	}
	if *all || *gcTable {
		ran = true
		check(harness.TableGC(out, s, *procs))
		fmt.Fprintln(out)
	}
	if *all || *micro {
		ran = true
		check(harness.PrintMicro(out))
		fmt.Fprintln(out)
	}
	// The three Section 3 studies print as one artifact; any of their
	// names selects the set.
	section3 := *ablation == "section3" || *ablation == "pipeline" || *ablation == "taskqueue" || *ablation == "flushcost"
	if *all || *ablation == "all" || section3 {
		ran = true
		check(harness.PrintAblations(out))
		fmt.Fprintln(out)
	}
	if *all || *ablation == "all" || *ablation == "gc" {
		ran = true
		check(harness.PrintAblationGC(out))
		fmt.Fprintln(out)
	}
	if *all || *sweep {
		ran = true
		check(harness.SpeedupSweep(out, s, []int{1, 2, 4, 8}))
		fmt.Fprintln(out)
	}
	if *scaling {
		ran = true
		check(harness.TableScaling(out, s, harness.ScalingProcs))
	}
	if *wire {
		ran = true
		check(harness.PrintWireBench(out, s))
	}
	if *serveMode {
		ran = true
		classes, err := serve.ParseMix(*mix)
		check(err)
		d, err := serve.NewDriver(serve.DriverConfig{Seed: *seed, Rate: *arrival, Mix: classes})
		check(err)
		sched := serve.NewScheduler(serve.Config{Scale: s, Width: *serveWidth, ExecWorkers: *workers})
		rep, err := sched.Serve(d, *jobs)
		check(err)
		rep.Render(out)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nowbench:", err)
	os.Exit(1)
}
