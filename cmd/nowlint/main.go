// Command nowlint is the multichecker for the repository's protocol
// analyzers (servernoblock, clockcharge, detfree, lockorder, tripwire).
// See README.md's "Static analysis" section for what each invariant is
// and why it holds.
//
// Two modes:
//
//	nowlint [packages]        direct mode — loads packages itself
//	                          (default ./... from the module root) and
//	                          prints findings; exit 1 if any.
//	go vet -vettool=$(nowlint) ./...
//	                          unit mode — speaks go vet's unitchecker
//	                          protocol (-V=full / -flags / a lone *.cfg
//	                          argument), type-checking each unit against
//	                          the export data go vet supplies, fully
//	                          offline.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/checker"
	"repro/internal/analysis/clockcharge"
	"repro/internal/analysis/detfree"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/servernoblock"
	"repro/internal/analysis/tripwire"
)

var analyzers = []*analysis.Analyzer{
	servernoblock.Analyzer,
	clockcharge.Analyzer,
	detfree.Analyzer,
	lockorder.Analyzer,
	tripwire.Analyzer,
}

func main() {
	// go vet probes its -vettool with -V=full before anything else and
	// parses a trailing buildID= field as the tool's cache identity.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("%s version devel nowlint-1 buildID=%x\n", filepath.Base(os.Args[0]), toolID())
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitMode(os.Args[1]))
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	os.Exit(directMode(flag.Args()))
}

// ---------------------------------------------------------------------
// Direct mode.
// ---------------------------------------------------------------------

func directMode(patterns []string) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowlint:", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := load.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowlint:", err)
		return 2
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowlint:", err)
		return 2
	}
	findings, err := checker.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowlint:", err)
		return 2
	}
	checker.Print(os.Stdout, findings)
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// toolID is the cache identity go vet stores for this tool's results: a
// content hash of the executable, so editing an analyzer invalidates
// cached findings.
func toolID() []byte {
	exe, err := os.Executable()
	if err == nil {
		if raw, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(raw)
			return sum[:8]
		}
	}
	return []byte("nowlint0")
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ---------------------------------------------------------------------
// go vet unit mode (the unitchecker .cfg protocol).
// ---------------------------------------------------------------------

// vetConfig is the subset of go vet's per-unit JSON config nowlint
// consumes.
type vetConfig struct {
	ID          string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

func unitMode(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nowlint: %s: %v\n", cfgPath, err)
		return 2
	}
	// nowlint computes no cross-unit facts, but vet requires the vetx
	// file to exist for dependent units.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "nowlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Skip test files, matching direct mode: the invariants govern
		// protocol code, and test scaffolding legitimately holds both
		// ends of the wire (an echo helper may block on a request send).
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nowlint:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	// Resolve imports through the export data go vet already compiled:
	// ImportMap maps source import paths to package paths, PackageFile
	// maps package paths to export data files.
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nowlint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	findings, err := checker.Run(analyzers, []*load.Package{{
		Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info,
	}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowlint:", err)
		return 2
	}
	if len(findings) > 0 {
		checker.Print(os.Stderr, findings)
		return 2
	}
	return 0
}
