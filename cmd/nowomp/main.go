// Command nowomp runs one application of the paper's suite on the
// simulated network of workstations and reports time, speedup, traffic,
// and checksum validation:
//
//	nowomp -app Water -impl omp -procs 8
//	nowomp -app Water -impl omp-smp -procs 8
//	nowomp -app Water -impl omp-hybrid -procs 8 -islands 2
//	nowomp -app TSP -impl mpi -procs 4 -scale test
//
// Implementations: seq (sequential reference), omp (compiled OpenMP on
// TreadMarks over the NOW), omp-smp (the same OpenMP source on the
// hardware-shared-memory backend), omp-hybrid (the same source on a NOW
// of SMP islands; -islands sets the island count), tmk (hand-coded
// TreadMarks), mpi (hand-coded MPI).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		app     = flag.String("app", "", "application: Sweep3D, 3D-FFT, Water, TSP, QSORT, LU, Barnes")
		impl    = flag.String("impl", "omp", "implementation: seq, omp, omp-smp, omp-hybrid, tmk, mpi")
		procs   = flag.Int("procs", 8, "number of simulated processors")
		islands = flag.Int("islands", 0, "SMP island count for omp-hybrid (0 = default 2)")
		scale   = flag.String("scale", "full", "workload scale: full or test")
	)
	flag.Parse()
	if *islands > 0 {
		harness.HybridIslands = *islands
	}

	a, ok := harness.FindApp(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "nowomp: unknown app %q (have: %s)\n", *app, strings.Join(harness.AppNames(), ", "))
		os.Exit(2)
	}
	s := harness.Scale(*scale)
	seq := a.RunSeq(s)
	res, err := harness.Verified(a, s, harness.Impl(*impl), *procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowomp:", err)
		os.Exit(1)
	}
	fmt.Printf("%s / %s on %d processors (%s scale)\n", a.Name, *impl, *procs, s)
	fmt.Printf("  sequential time : %s\n", seq.Time)
	fmt.Printf("  parallel time   : %s\n", res.Time)
	fmt.Printf("  speedup         : %.2f\n", seq.Time.Seconds()/res.Time.Seconds())
	fmt.Printf("  messages        : %d\n", res.Messages)
	fmt.Printf("  data            : %.2f MB\n", float64(res.Bytes)/1e6)
	fmt.Printf("  checksum        : %g (validated against sequential)\n", res.Checksum)
}
