package serve

import (
	"math"

	"repro/internal/sim"
)

// LatencyHist is a fixed-bucket log-spaced latency histogram: five
// buckets per decade from 1µs across nine decades (1µs .. 1000s of
// virtual time), plus an explicit zero bucket below and an overflow
// bucket above. Fixed bounds make quantiles deterministic: Quantile
// returns a bucket's upper bound, so the same multiset of observations
// always renders the same table, independent of insertion order — the
// property the golden and replay tests rely on.
const (
	histBucketsPerDecade = 5
	histDecades          = 9
	histBuckets          = histBucketsPerDecade * histDecades
	histBase             = sim.Microsecond
)

// histBounds[i] is the inclusive upper bound of bucket i+1 (bucket 0 is
// the zero/sub-µs bucket), in virtual nanoseconds.
var histBounds = func() [histBuckets]sim.Time {
	var b [histBuckets]sim.Time
	for i := range b {
		b[i] = sim.Time(math.Ceil(float64(histBase) * math.Pow(10, float64(i)/histBucketsPerDecade)))
	}
	return b
}()

// LatencyHist accumulates virtual-time latency observations.
type LatencyHist struct {
	counts [histBuckets + 2]int64 // [0]: <=0 or sub-bucket-0; [histBuckets+1]: overflow
	n      int64
	sum    sim.Time
	max    sim.Time
}

// bucketFor maps a latency to its bucket index.
func bucketFor(d sim.Time) int {
	if d < histBase {
		return 0
	}
	// Binary search over the fixed bounds (45 entries).
	lo, hi := 0, histBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if histBounds[lo] < d {
		return histBuckets + 1 // overflow
	}
	return lo + 1
}

// Observe records one latency.
func (h *LatencyHist) Observe(d sim.Time) {
	h.counts[bucketFor(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *LatencyHist) Count() int64 { return h.n }

// Mean returns the exact arithmetic mean of the observations (sums are
// exact in integer nanoseconds, so this too is deterministic).
func (h *LatencyHist) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Time(h.n)
}

// Max returns the largest observation.
func (h *LatencyHist) Max() sim.Time { return h.max }

// Quantile returns the latency bound below which at least p of the
// observations fall: the upper bound of the bucket holding the
// ceil(p·n)-th observation (the max for the overflow bucket, 0 for the
// zero bucket). p is clamped to [0, 1].
func (h *LatencyHist) Quantile(p float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			switch {
			case i == 0:
				return 0
			case i == histBuckets+1:
				return h.max
			default:
				return histBounds[i-1]
			}
		}
	}
	return h.max
}
