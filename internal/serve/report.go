package serve

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/harness"
	"repro/internal/sim"
)

// ClassStats aggregates the latency record of one job class.
type ClassStats struct {
	Label   string
	Jobs    int
	Wait    LatencyHist // queue wait: admission - arrival
	Service LatencyHist // virtual execution time
	E2E     LatencyHist // completion - arrival
}

// Checkpoint is one steady-state sample, taken after a window of jobs
// has fully drained: the largest protocol-metadata footprint any job in
// the window reported, and the process goroutine census after drain.
// Bounded window peaks (rather than a monotonically growing series) and
// a flat census are the service's leak evidence.
type Checkpoint struct {
	AfterJobs      int
	PeakProtoBytes int64
	Goroutines     int
}

// Report is the outcome of one served stream.
type Report struct {
	Scale harness.Scale
	Seed  uint64
	Rate  float64
	Width int // backend slots of the simulated service
	Jobs  int

	// Horizon is the virtual completion time of the last job; sustained
	// throughput is Jobs over this span.
	Horizon sim.Time

	Classes     []*ClassStats
	Checkpoints []Checkpoint
	// BaselineGoroutines is the census before the stream started, the
	// reference the checkpoints are judged against.
	BaselineGoroutines int
}

// Throughput returns the sustained service rate in jobs per virtual
// second over the stream's horizon.
func (r *Report) Throughput() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(r.Jobs) / r.Horizon.Seconds()
}

// buildClasses folds completed jobs into per-class latency stats,
// ordered by class label — table order never depends on execution order.
func buildClasses(jobs []*Job) []*ClassStats {
	byLabel := map[string]*ClassStats{}
	for _, j := range jobs {
		l := j.Class.Label()
		cs, ok := byLabel[l]
		if !ok {
			cs = &ClassStats{Label: l}
			byLabel[l] = cs
		}
		cs.Jobs++
		cs.Wait.Observe(j.Wait())
		cs.Service.Observe(j.Service)
		cs.E2E.Observe(j.E2E())
	}
	out := make([]*ClassStats, 0, len(byLabel))
	for _, cs := range byLabel {
		out = append(out, cs)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Label < out[k].Label })
	return out
}

// RenderLatency prints the deterministic part of the report: the
// throughput line and the per-class latency quantile table. For a mix of
// deterministic job classes the output is byte-identical across runs,
// execution pool widths, and hosts — the golden test pins it.
func (r *Report) RenderLatency(w io.Writer) {
	fmt.Fprintf(w, "Service mode: %d jobs, %d backend slots, scale %s, seed %d, arrival %g jobs/s (virtual)\n",
		r.Jobs, r.Width, r.Scale, r.Seed, r.Rate)
	fmt.Fprintf(w, "Horizon %s virtual, sustained %.2f jobs/s\n\n", r.Horizon, r.Throughput())
	fmt.Fprintf(w, "%-24s %5s  %10s %10s  %10s %10s %10s\n",
		"class", "jobs", "wait p50", "wait p95", "e2e p50", "e2e p95", "e2e p99")
	for _, c := range r.Classes {
		fmt.Fprintf(w, "%-24s %5d  %10s %10s  %10s %10s %10s\n",
			c.Label, c.Jobs,
			c.Wait.Quantile(0.50), c.Wait.Quantile(0.95),
			c.E2E.Quantile(0.50), c.E2E.Quantile(0.95), c.E2E.Quantile(0.99))
	}
}

// RenderSteadyState prints the measured (host-dependent, therefore not
// golden-pinned) part: the per-window protocol-footprint peaks and
// goroutine census at each checkpoint.
func (r *Report) RenderSteadyState(w io.Writer) {
	if len(r.Checkpoints) == 0 {
		return
	}
	fmt.Fprintf(w, "Steady state (baseline %d goroutines):\n", r.BaselineGoroutines)
	fmt.Fprintf(w, "%-12s %16s %12s\n", "after jobs", "peak proto B", "goroutines")
	for _, cp := range r.Checkpoints {
		fmt.Fprintf(w, "%-12d %16d %12d\n", cp.AfterJobs, cp.PeakProtoBytes, cp.Goroutines)
	}
}

// Render prints the full report: the golden-testable latency table
// followed by the measured steady-state table.
func (r *Report) Render(w io.Writer) {
	r.RenderLatency(w)
	fmt.Fprintln(w)
	r.RenderSteadyState(w)
}
