package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
)

// Config parameterizes the scheduler. Width and Scale shape the REPORT
// (the simulated service's capacity and workload size); ExecWorkers and
// CheckpointEvery shape only how fast the host computes it — neither
// may influence a single byte of the latency table.
type Config struct {
	// Scale is the workload size jobs run at (default harness.Test).
	Scale harness.Scale
	// Width is the simulated service's backend slot count; each slot is
	// harness.CellUnitsPerWorker weight units (default 2 slots).
	Width int
	// ExecWorkers bounds the host execution pool that actually computes
	// the jobs (default one per host CPU). Purely a wall-clock knob.
	ExecWorkers int
	// CheckpointEvery is the steady-state sampling window in jobs: after
	// each window fully drains, the scheduler records a Checkpoint and
	// asserts the goroutine census returned to baseline (default 50).
	CheckpointEvery int
	// GoroutineSlack is the census tolerance over baseline at each
	// checkpoint (default 3: the test runner's own helpers come and go).
	GoroutineSlack int
	// Runner executes one job and returns its verified result; the
	// default constructs a fresh backend per job via harness.VerifiedGC.
	// Tests swap in deterministic fakes.
	Runner func(JobClass) (apps.Result, error)
}

// Scheduler owns the shared backend capacity and serves job streams.
type Scheduler struct {
	cfg Config
}

// NewScheduler applies defaults and returns a scheduler.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Scale == "" {
		cfg.Scale = harness.Test
	}
	if cfg.Width <= 0 {
		cfg.Width = 2
	}
	if cfg.ExecWorkers <= 0 {
		cfg.ExecWorkers = runtime.NumCPU()
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 50
	}
	if cfg.GoroutineSlack <= 0 {
		cfg.GoroutineSlack = 3
	}
	if cfg.Runner == nil {
		scale := cfg.Scale
		cfg.Runner = func(c JobClass) (apps.Result, error) {
			a, ok := harness.FindApp(c.App)
			if !ok {
				return apps.Result{}, fmt.Errorf("serve: unknown app %q", c.App)
			}
			return harness.VerifiedGC(a, scale, c.Impl, c.Procs, c.GC)
		}
	}
	return &Scheduler{cfg: cfg}
}

// Serve draws njobs submissions from the driver, executes every job on a
// freshly constructed backend under the weighted execution pool, then
// replays the stream through the virtual-time admission model to
// produce the Report. The virtual-time queueing (Width slots) and the
// host-side execution pool (ExecWorkers) are deliberately distinct: the
// first is what the report describes, the second only how long the host
// takes to measure it.
func (s *Scheduler) Serve(d *Driver, njobs int) (*Report, error) {
	if njobs <= 0 {
		return nil, fmt.Errorf("serve: job count must be positive, got %d", njobs)
	}
	jobs := d.Draw(njobs)

	base := settleBaseline()
	pool := harness.NewWeightedPool(harness.CellUnitsPerWorker * s.cfg.ExecWorkers)

	var checkpoints []Checkpoint
	for lo := 0; lo < len(jobs); lo += s.cfg.CheckpointEvery {
		hi := lo + s.cfg.CheckpointEvery
		if hi > len(jobs) {
			hi = len(jobs)
		}
		window := jobs[lo:hi]

		// Single dispatch goroutine, fixed job-ID order: with all
		// acquires issued from one place in one order, a heavy NOW job
		// can never be starved by lighter jobs racing it for units.
		var wg sync.WaitGroup
		for _, j := range window {
			w := j.Class.SlotWeight()
			pool.Acquire(w)
			wg.Add(1)
			go func(j *Job, w int) {
				defer wg.Done()
				defer pool.Release(w)
				runOne(j, s.cfg.Runner)
			}(j, w)
		}
		wg.Wait()

		// The window has drained: every backend was Closed by its run (or
		// by the app's defer). The census must return to baseline — a
		// growing census here is exactly the constructed-but-never-reaped
		// server leak Close exists to prevent.
		census, ok := settleAt(base + s.cfg.GoroutineSlack)
		if !ok {
			return nil, fmt.Errorf("serve: goroutine leak after %d jobs: %d live, baseline %d (+%d slack)",
				hi, census, base, s.cfg.GoroutineSlack)
		}
		var peak int64
		for _, j := range window {
			if j.Result.PeakProtoBytes > peak {
				peak = j.Result.PeakProtoBytes
			}
		}
		checkpoints = append(checkpoints, Checkpoint{AfterJobs: hi, PeakProtoBytes: peak, Goroutines: census})
	}

	// Deterministic error attribution: the lowest job ID, not whichever
	// pool goroutine lost the race to report first.
	for _, j := range jobs {
		if j.Err != nil {
			return nil, fmt.Errorf("serve: job %d (%s): %w", j.ID, j.Class.Label(), j.Err)
		}
	}

	admit(jobs, harness.CellUnitsPerWorker*s.cfg.Width)

	r := &Report{
		Scale:              s.cfg.Scale,
		Seed:               d.cfg.Seed,
		Rate:               d.cfg.Rate,
		Width:              s.cfg.Width,
		Jobs:               njobs,
		Classes:            buildClasses(jobs),
		Checkpoints:        checkpoints,
		BaselineGoroutines: base,
	}
	for _, j := range jobs {
		if j.End > r.Horizon {
			r.Horizon = j.End
		}
	}
	return r, nil
}

// runOne executes one job, converting panics into job errors so a
// broken application cannot take the whole service down.
func runOne(j *Job, runner func(JobClass) (apps.Result, error)) {
	defer func() {
		if r := recover(); r != nil {
			j.Err = fmt.Errorf("panic: %v", r)
		}
	}()
	res, err := runner(j.Class)
	if err != nil {
		j.Err = err
		return
	}
	j.Result = res
	j.Service = res.Time
}

// settleBaseline waits for the process goroutine count to stop falling
// (draining teardown from whatever ran before) and returns the floor.
func settleBaseline() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= prev {
			return n
		}
		prev = n
	}
	return prev
}

// settleAt polls the goroutine count until it drops to at most want.
// The budget is generous real time with no speed assertion: full-suite
// load can only delay goroutine exit, never prevent it, so the check is
// for eventual quiescence (the deflake discipline the repo's other
// drain tests follow).
func settleAt(want int) (int, bool) {
	n := 0
	for i := 0; i < 2000; i++ {
		n = runtime.NumGoroutine()
		if n <= want {
			return n, true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n, false
}
