package serve

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
)

// makeJobs builds a seeded random stream of bare jobs (arrival order,
// measured service already attached) for admission-model testing.
func makeJobs(seed uint64, n int) []*Job {
	rng := sim.NewRNG(seed)
	impls := []harness.Impl{harness.OMP, harness.Tmk, harness.OMPHybrid, harness.OMPSMP, harness.MPI, harness.Seq}
	jobs := make([]*Job, n)
	var at sim.Time
	for i := range jobs {
		at += sim.Time(1+rng.Intn(5)) * sim.Millisecond
		jobs[i] = &Job{
			ID:      i,
			Class:   JobClass{App: "Water", Impl: impls[rng.Intn(len(impls))], Procs: 4},
			Arrival: at,
			Service: sim.Time(1+rng.Intn(50)) * sim.Millisecond,
		}
	}
	return jobs
}

// TestAdmissionProperties is the admission property test: across seeded
// random streams, the virtual-time FIFO model never oversubscribes the
// weighted capacity, never reorders starts (so heavy NOW jobs cannot
// starve behind lighter traffic), and admits immediately when the
// machine is idle.
func TestAdmissionProperties(t *testing.T) {
	const capacity = 2 * harness.CellUnitsPerWorker // two slots
	for seed := uint64(1); seed <= 20; seed++ {
		jobs := makeJobs(seed, 200)
		admit(jobs, capacity)

		var prevStart sim.Time
		for i, j := range jobs {
			if j.Start < j.Arrival {
				t.Fatalf("seed %d: job %d started %s before its arrival %s", seed, i, j.Start, j.Arrival)
			}
			if j.End != j.Start+j.Service {
				t.Fatalf("seed %d: job %d end %s != start %s + service %s", seed, i, j.End, j.Start, j.Service)
			}
			// FIFO: starts never reorder relative to arrival order. This
			// is the no-starvation property — a weight-4 NOW job is never
			// leapfrogged by quarter-slot jobs queued behind it.
			if j.Start < prevStart {
				t.Fatalf("seed %d: job %d started %s before its predecessor's %s", seed, i, j.Start, prevStart)
			}
			prevStart = j.Start

			// Capacity: at job i's start instant, the active weights
			// (started, not yet finished) must fit.
			used := 0
			for _, k := range jobs[:i+1] {
				if k.Start <= j.Start && k.End > j.Start {
					used += k.Class.SlotWeight()
				}
			}
			if used > capacity {
				t.Fatalf("seed %d: %d weight units in flight at %s, capacity %d", seed, used, j.Start, capacity)
			}

			// Idle machine admits immediately: nothing in flight at
			// arrival and no FIFO predecessor still queued.
			idle := true
			for _, k := range jobs[:i] {
				if k.End > j.Arrival || k.Start > j.Arrival {
					idle = false
					break
				}
			}
			if idle && j.Start != j.Arrival {
				t.Fatalf("seed %d: job %d queued %s on an idle machine", seed, i, j.Wait())
			}
		}
	}
}

// TestAdmissionHeavyNotStarved pins the scenario the FIFO floor exists
// for: one full-slot NOW job arrives into a dense stream of quarter-slot
// sequential jobs. Without the floor, single-unit jobs would keep
// slipping into the partial capacity and the NOW job would wait for a
// simultaneous 4-unit hole that never opens.
func TestAdmissionHeavyNotStarved(t *testing.T) {
	const capacity = harness.CellUnitsPerWorker // one slot
	var jobs []*Job
	at := sim.Time(0)
	for i := 0; i < 40; i++ {
		at += sim.Millisecond
		jobs = append(jobs, &Job{
			ID: i, Arrival: at, Service: 10 * sim.Millisecond,
			Class: JobClass{App: "Water", Impl: harness.Seq, Procs: 1},
		})
	}
	heavy := &Job{
		ID: 40, Arrival: at + sim.Millisecond, Service: 10 * sim.Millisecond,
		Class: JobClass{App: "TSP", Impl: harness.OMP, Procs: 4},
	}
	jobs = append(jobs, heavy)
	for i := 0; i < 40; i++ {
		at += sim.Millisecond
		jobs = append(jobs, &Job{
			ID: 41 + i, Arrival: at + 2*sim.Millisecond, Service: 10 * sim.Millisecond,
			Class: JobClass{App: "Water", Impl: harness.Seq, Procs: 1},
		})
	}
	admit(jobs, capacity)

	for _, j := range jobs[41:] {
		if j.Start < heavy.Start {
			t.Fatalf("light job %d (start %s) leapfrogged the heavy NOW job (start %s)", j.ID, j.Start, heavy.Start)
		}
	}
	// The heavy job's wait is bounded by draining the 40 jobs already
	// queued ahead of it, not by the 40 that arrived after.
	maxAhead := sim.Time(40) * 10 * sim.Millisecond
	if heavy.Wait() > maxAhead {
		t.Fatalf("heavy job waited %s, more than the whole queue ahead of it (%s): starved", heavy.Wait(), maxAhead)
	}
}

// TestAdmissionWiderThanMachine: a job heavier than total capacity still
// runs (alone), rather than deadlocking the stream.
func TestAdmissionWiderThanMachine(t *testing.T) {
	jobs := []*Job{
		{ID: 0, Arrival: sim.Millisecond, Service: sim.Millisecond,
			Class: JobClass{Impl: harness.OMP}},
		{ID: 1, Arrival: sim.Millisecond, Service: sim.Millisecond,
			Class: JobClass{Impl: harness.Seq}},
	}
	admit(jobs, 2) // capacity below the NOW job's weight of 4
	if jobs[0].Start != sim.Millisecond {
		t.Fatalf("over-wide job should start at arrival on the empty machine, started %s", jobs[0].Start)
	}
	if jobs[1].Start < jobs[0].End {
		t.Fatalf("the over-wide job must run alone: job 1 started %s during [%s, %s)", jobs[1].Start, jobs[0].Start, jobs[0].End)
	}
}
