package serve

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// DriverConfig parameterizes the synthetic submission stream.
type DriverConfig struct {
	// Seed seeds the arrival process; the same seed, rate, and mix
	// reproduce the same stream bit-for-bit.
	Seed uint64
	// Rate is the mean arrival rate in jobs per virtual second
	// (exponential inter-arrival times: a Poisson submission stream).
	Rate float64
	// Mix is the class population, drawn with probability proportional
	// to each class's MixWeight.
	Mix []JobClass
}

// Driver generates the deterministic job stream: seeded exponential
// inter-arrival times over simulated time and a weighted class draw.
// Everything is derived from sim.RNG — no wall clock anywhere — so a
// (seed, rate, mix) triple IS the workload, replayable exactly.
type Driver struct {
	cfg    DriverConfig
	rng    *sim.RNG
	now    sim.Time
	weight int // sum of mix weights
}

// NewDriver validates the configuration and positions the stream at
// virtual time zero.
func NewDriver(cfg DriverConfig) (*Driver, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("serve: arrival rate must be positive, got %g", cfg.Rate)
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("serve: empty job mix")
	}
	total := 0
	for _, c := range cfg.Mix {
		w := c.MixWeight
		if w <= 0 {
			return nil, fmt.Errorf("serve: class %s: mix weight must be positive, got %d", c.Label(), w)
		}
		total += w
	}
	return &Driver{cfg: cfg, rng: sim.NewRNG(cfg.Seed), weight: total}, nil
}

// Next draws the next submission: the job's class and its virtual
// arrival time. Inter-arrival times are exponential with mean 1/Rate
// seconds, rounded up to whole nanoseconds so arrivals strictly advance.
func (d *Driver) Next() (JobClass, sim.Time) {
	// Inverse-CDF draw; 1-u is in (0, 1], so Log is finite and the gap
	// non-negative.
	u := d.rng.Float64()
	gapSec := -math.Log(1-u) / d.cfg.Rate
	gap := sim.Time(math.Ceil(gapSec * float64(sim.Second)))
	if gap < 1 {
		gap = 1
	}
	d.now += gap

	pick := d.rng.Intn(d.weight)
	for _, c := range d.cfg.Mix {
		pick -= c.MixWeight
		if pick < 0 {
			return c, d.now
		}
	}
	// Unreachable: Intn(weight) < sum of weights.
	return d.cfg.Mix[len(d.cfg.Mix)-1], d.now
}

// Draw materializes the next n submissions as Jobs with IDs 0..n-1 in
// arrival order.
func (d *Driver) Draw(n int) []*Job {
	jobs := make([]*Job, n)
	for i := range jobs {
		c, at := d.Next()
		jobs[i] = &Job{ID: i, Class: c, Arrival: at}
	}
	return jobs
}
