package serve

import (
	"testing"

	"repro/internal/sim"
)

func TestHistQuantileDeterministic(t *testing.T) {
	// Order independence: the same multiset in two insertion orders
	// yields identical quantiles.
	vals := []sim.Time{0, 500, sim.Microsecond, 3 * sim.Microsecond,
		90 * sim.Microsecond, 2 * sim.Millisecond, 2 * sim.Millisecond,
		40 * sim.Millisecond, sim.Second, 90 * sim.Second}
	var a, b LatencyHist
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if a.Quantile(p) != b.Quantile(p) {
			t.Fatalf("p%.2f: %s vs %s under reversed insertion", p, a.Quantile(p), b.Quantile(p))
		}
	}
	if a.Count() != int64(len(vals)) || a.Mean() != b.Mean() || a.Max() != b.Max() {
		t.Fatalf("summary stats diverge under reversed insertion")
	}
}

func TestHistQuantileBounds(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	h.Observe(7 * sim.Microsecond)
	// A single observation lands in one bucket; every quantile reports
	// that bucket's upper bound, which must not be below the value.
	q := h.Quantile(0.5)
	if q < 7*sim.Microsecond {
		t.Fatalf("quantile %s below the only observation", q)
	}
	if h.Quantile(0.01) != h.Quantile(0.99) {
		t.Fatal("single observation: all quantiles must agree")
	}

	// Zero and overflow buckets.
	var z LatencyHist
	z.Observe(0)
	if z.Quantile(0.5) != 0 {
		t.Fatal("zero-latency observation must quantile to 0")
	}
	var o LatencyHist
	huge := sim.Time(1) << 62
	o.Observe(huge)
	if o.Quantile(0.5) != huge {
		t.Fatalf("overflow bucket must report the max, got %d", o.Quantile(0.5))
	}
}

func TestHistBucketMonotone(t *testing.T) {
	// Bounds strictly increase and bucketFor is consistent with them:
	// every bound maps into the bucket it bounds.
	for i := 1; i < histBuckets; i++ {
		if histBounds[i] <= histBounds[i-1] {
			t.Fatalf("bucket bounds not strictly increasing at %d: %d <= %d", i, histBounds[i], histBounds[i-1])
		}
	}
	for i, b := range histBounds {
		if got := bucketFor(b); got != i+1 {
			t.Fatalf("bound %d (%s) mapped to bucket %d, want %d", i, b, got, i+1)
		}
		if got := bucketFor(b + 1); got != i+2 {
			t.Fatalf("bound %d +1ns mapped to bucket %d, want %d", i, got, i+2)
		}
	}
}
