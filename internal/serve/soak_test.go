package serve

import (
	"strings"
	"testing"
)

// TestServeSoak500 is the acceptance soak: 500 jobs across five classes
// (four app types, including full-protocol NOW and TreadMarks jobs),
// every one on a freshly constructed backend. NOW-class service times
// jitter run to run, so unlike the golden test this asserts structure,
// not bytes:
//
//   - the stream completes with every checksum verified;
//   - steady-state PeakProtoBytes stays bounded — window peaks do not
//     grow monotonically, and the late-stream peaks are no worse than
//     double the early-stream ones (a leaking protocol-metadata pool
//     would climb without bound across 500 fresh systems);
//   - the goroutine census returns to baseline after every window
//     (Serve itself fails the stream otherwise — the drain check uses
//     the load-measured-bounds discipline: generous real-time budget,
//     eventual quiescence, no speed assertion, so a loaded CI host can
//     delay but never fail it).
func TestServeSoak500(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: ~500 full backend constructions")
	}
	mix, err := ParseMix("TSP:omp:p4,QSORT:tmk:p4,Water:omp-smp:p4:w=3,Sweep3D:seq:p1:w=3,3D-FFT:mpi:p4:w=2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(DriverConfig{Seed: 42, Rate: 500, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewScheduler(Config{Width: 2, CheckpointEvery: 50}).Serve(d, 500)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Jobs != 500 {
		t.Fatalf("report covers %d jobs, want 500", rep.Jobs)
	}
	total, appTypes := 0, map[string]bool{}
	for _, c := range rep.Classes {
		total += c.Jobs
		app, _, _ := strings.Cut(c.Label, "/")
		appTypes[app] = true
		if c.E2E.Count() != int64(c.Jobs) || c.Wait.Count() != int64(c.Jobs) {
			t.Fatalf("class %s: histogram counts diverge from job count", c.Label)
		}
	}
	if total != 500 {
		t.Fatalf("classes account for %d jobs, want 500", total)
	}
	if len(rep.Classes) < 3 || len(appTypes) < 3 {
		t.Fatalf("served %d classes over %d app types, want the full mix (>=3 apps)", len(rep.Classes), len(appTypes))
	}
	if rep.Throughput() <= 0 {
		t.Fatalf("non-positive sustained throughput %g", rep.Throughput())
	}

	if len(rep.Checkpoints) != 10 {
		t.Fatalf("got %d checkpoints, want 10", len(rep.Checkpoints))
	}
	var earlyPeak, latePeak int64
	monotone := true
	for i, cp := range rep.Checkpoints {
		if cp.Goroutines > rep.BaselineGoroutines+3 {
			t.Fatalf("checkpoint after %d jobs: %d goroutines, baseline %d — backend leak",
				cp.AfterJobs, cp.Goroutines, rep.BaselineGoroutines)
		}
		if i < 5 && cp.PeakProtoBytes > earlyPeak {
			earlyPeak = cp.PeakProtoBytes
		}
		if i >= 5 && cp.PeakProtoBytes > latePeak {
			latePeak = cp.PeakProtoBytes
		}
		if i > 0 && cp.PeakProtoBytes <= rep.Checkpoints[i-1].PeakProtoBytes {
			monotone = false
		}
	}
	if earlyPeak == 0 {
		t.Fatal("no NOW/tmk job reported protocol metadata: the mix did not exercise the DSM")
	}
	if monotone {
		t.Fatal("window protocol-footprint peaks grew strictly monotonically: metadata accumulating across jobs")
	}
	if latePeak > 2*earlyPeak {
		t.Fatalf("late-stream protocol peak %d more than doubles early-stream peak %d: unbounded growth", latePeak, earlyPeak)
	}
}
