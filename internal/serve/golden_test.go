package serve

import (
	"strings"
	"testing"
)

// goldenLatency is the exact latency report for (seed 11, rate 1000,
// detMix, 24 jobs, width 2) at test scale. Byte-for-byte: the stream is
// seeded, the job classes are bit-deterministic (omp-smp/mpi — no DSM
// protocol jitter), service times are virtual, and the queueing model
// runs in virtual time, so nothing about the host — CPU count, load,
// execution pool width — can move a single byte. If this test fails,
// either the arrival process, a deterministic backend's cost model, the
// admission discipline, the histogram bounds, or the renderer changed;
// all are report-breaking changes that should be deliberate.
const goldenLatency = `Service mode: 24 jobs, 2 backend slots, scale test, seed 11, arrival 1000 jobs/s (virtual)
Horizon 40.021ms virtual, sustained 599.69 jobs/s

class                     jobs    wait p50   wait p95     e2e p50    e2e p95    e2e p99
3D-FFT/mpi/p4                4         0ns        0ns    15.849ms   15.849ms   15.849ms
3D-FFT/omp-smp/p4            5         0ns        0ns    10.000ms   10.000ms   10.000ms
Barnes/omp-smp/p2            3         0ns        0ns     6.310ms    6.310ms    6.310ms
Water/omp-smp/p4            12         0ns    1.585ms    10.000ms   10.000ms   10.000ms
`

func TestServeGoldenLatencyTable(t *testing.T) {
	mix, err := ParseMix(detMix)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(DriverConfig{Seed: 11, Rate: 1000, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewScheduler(Config{Width: 2}).Serve(d, 24)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.RenderLatency(&b)
	if got := b.String(); got != goldenLatency {
		t.Fatalf("latency report drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, goldenLatency)
	}
}
