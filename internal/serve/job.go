// Package serve is the persistent multi-tenant job service over the
// shared backends: where the harness (internal/harness) regenerates the
// paper's tables as one-shot batch runs, serve models the NOW as a
// long-lived departmental machine that a stream of users submits jobs to
// — the usage mode the paper's Section 1 motivates networks of
// workstations with. A Driver draws a seeded arrival stream over a job
// mix, the Scheduler admits each job onto bounded backend capacity
// priced with the grid's cell weights (a full-protocol NOW job occupies
// a whole slot, a hybrid job half, an SMP/MPI/sequential job a quarter),
// runs it on a freshly constructed backend, and reports sustained
// throughput and queue-wait/service/end-to-end latency quantiles in
// VIRTUAL time — wholly deterministic for deterministic job classes, so
// the report is golden-testable.
package serve

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/sim"
)

// JobClass identifies one kind of job users submit: an application, the
// implementation to run it as, a processor count, and optional per-job
// DSM metadata-GC knobs. MixWeight biases the driver's class draw (a
// weight-3 class arrives three times as often as a weight-1 class).
type JobClass struct {
	App       string
	Impl      harness.Impl
	Procs     int
	MixWeight int
	GC        harness.GCKnobs
}

// Label names the class in reports: "app/impl/pN".
func (c JobClass) Label() string {
	return fmt.Sprintf("%s/%s/p%d", c.App, c.Impl, c.Procs)
}

// SlotWeight is the backend capacity the class occupies, in the grid's
// cell-weight units (harness.CellWeight): out of a slot's
// CellUnitsPerWorker units, a NOW job takes all of them, a hybrid job
// half, a cheap (seq/omp-smp/mpi) job a quarter.
func (c JobClass) SlotWeight() int { return harness.CellWeight(c.Impl) }

// Job is one admitted instance of a class.
type Job struct {
	ID      int
	Class   JobClass
	Arrival sim.Time // virtual submission time, from the driver

	// Filled in by the scheduler.
	Service sim.Time    // measured virtual execution time of the run
	Start   sim.Time    // virtual admission time (>= Arrival)
	End     sim.Time    // Start + Service
	Result  apps.Result // full run result (protocol footprint etc.)
	Err     error
}

// Wait is the virtual time the job queued before admission.
func (j *Job) Wait() sim.Time { return j.Start - j.Arrival }

// E2E is the virtual submission-to-completion latency.
func (j *Job) E2E() sim.Time { return j.End - j.Arrival }

// ParseMix parses a job-mix specification: comma-separated classes, each
// colon-separated as
//
//	App:impl:pN[:w=K][:gc=P][:policy=X]
//
// e.g. "Water:omp-smp:p4,TSP:omp:p4:w=2:gc=64:policy=adaptive". App is a
// registered application name (case-sensitive), impl one of the harness
// implementations (seq, omp, omp-smp, omp-hybrid[@K], tmk, mpi), pN the
// processor count, w=K the arrival mix weight (default 1), and gc=P /
// policy=X per-job acquire-epoch GC pressure and purge policy (only for
// applications that plumb the knobs).
func ParseMix(spec string) ([]JobClass, error) {
	var mix []JobClass
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := parseClass(part)
		if err != nil {
			return nil, err
		}
		mix = append(mix, c)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("serve: empty job mix %q", spec)
	}
	return mix, nil
}

func parseClass(part string) (JobClass, error) {
	fields := strings.Split(part, ":")
	if len(fields) < 3 {
		return JobClass{}, fmt.Errorf("serve: class %q: want App:impl:pN[:w=K][:gc=P][:policy=X]", part)
	}
	c := JobClass{App: fields[0], Impl: harness.Impl(fields[1]), MixWeight: 1}
	a, ok := harness.FindApp(c.App)
	if !ok {
		return JobClass{}, fmt.Errorf("serve: class %q: unknown app %q", part, c.App)
	}
	if !validImpl(c.Impl) {
		return JobClass{}, fmt.Errorf("serve: class %q: unknown impl %q", part, fields[1])
	}
	n, err := atoiPrefixed(fields[2], "p")
	if err != nil || n <= 0 {
		return JobClass{}, fmt.Errorf("serve: class %q: bad processor count %q", part, fields[2])
	}
	c.Procs = n
	for _, opt := range fields[3:] {
		key, val, found := strings.Cut(opt, "=")
		if !found {
			return JobClass{}, fmt.Errorf("serve: class %q: bad option %q", part, opt)
		}
		switch key {
		case "w":
			w, err := strconv.Atoi(val)
			if err != nil || w <= 0 {
				return JobClass{}, fmt.Errorf("serve: class %q: bad mix weight %q", part, val)
			}
			c.MixWeight = w
		case "gc":
			p, err := strconv.Atoi(val)
			if err != nil {
				return JobClass{}, fmt.Errorf("serve: class %q: bad gc pressure %q", part, val)
			}
			c.GC.Pressure = p
		case "policy":
			c.GC.Policy = val
		default:
			return JobClass{}, fmt.Errorf("serve: class %q: unknown option %q", part, key)
		}
	}
	if c.GC != (harness.GCKnobs{}) && a.RunGC == nil {
		return JobClass{}, fmt.Errorf("serve: class %q: app %s does not plumb GC knobs", part, c.App)
	}
	return c, nil
}

func validImpl(i harness.Impl) bool {
	switch i {
	case harness.Seq, harness.OMP, harness.OMPSMP, harness.OMPHybrid, harness.Tmk, harness.MPI:
		return true
	}
	// Pinned hybrid island counts ("omp-hybrid@K") are valid too.
	return strings.HasPrefix(string(i), string(harness.OMPHybrid)+"@")
}

func atoiPrefixed(s, prefix string) (int, error) {
	rest, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, fmt.Errorf("missing %q prefix", prefix)
	}
	return strconv.Atoi(rest)
}
