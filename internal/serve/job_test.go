package serve

import (
	"testing"

	"repro/internal/harness"
)

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("Water:omp-smp:p4, TSP:omp:p4:w=3:gc=64:policy=adaptive ,3D-FFT:mpi:p8")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 {
		t.Fatalf("got %d classes, want 3", len(mix))
	}
	want0 := JobClass{App: "Water", Impl: harness.OMPSMP, Procs: 4, MixWeight: 1}
	if mix[0] != want0 {
		t.Fatalf("class 0 = %+v, want %+v", mix[0], want0)
	}
	want1 := JobClass{App: "TSP", Impl: harness.OMP, Procs: 4, MixWeight: 3,
		GC: harness.GCKnobs{Pressure: 64, Policy: "adaptive"}}
	if mix[1] != want1 {
		t.Fatalf("class 1 = %+v, want %+v", mix[1], want1)
	}
	if got := mix[1].Label(); got != "TSP/omp/p4" {
		t.Fatalf("label %q", got)
	}
	if mix[2].SlotWeight() != 1 {
		t.Fatalf("mpi slot weight %d, want 1 (quarter slot)", mix[2].SlotWeight())
	}
	if mix[1].SlotWeight() != harness.CellUnitsPerWorker {
		t.Fatalf("omp slot weight %d, want a full slot", mix[1].SlotWeight())
	}
}

func TestParseMixRejects(t *testing.T) {
	bad := []string{
		"",                      // empty
		"Water:omp-smp",         // missing procs
		"NoSuchApp:omp:p4",      // unknown app
		"Water:fortran:p4",      // unknown impl
		"Water:omp:p0",          // zero procs
		"Water:omp:4",           // missing p prefix
		"Water:omp:p4:w=0",      // zero weight
		"Water:omp:p4:x=1",      // unknown option
		"3D-FFT:omp:p4:gc=64",   // 3D-FFT does not plumb GC knobs
		"Water:omp:p4:gc=sixty", // non-numeric pressure
		"Water:omp:p4:policy",   // option without value
	}
	for _, spec := range bad {
		if _, err := ParseMix(spec); err == nil {
			t.Errorf("ParseMix(%q) accepted, want error", spec)
		}
	}
}

func TestParseMixHybridPinned(t *testing.T) {
	mix, err := ParseMix("Water:omp-hybrid@4:p8")
	if err != nil {
		t.Fatal(err)
	}
	if mix[0].SlotWeight() != 2 {
		t.Fatalf("pinned hybrid slot weight %d, want 2 (half slot)", mix[0].SlotWeight())
	}
}

func TestDriverDeterministic(t *testing.T) {
	mix, err := ParseMix("Water:omp-smp:p4:w=2,TSP:seq:p1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DriverConfig{Seed: 7, Rate: 100, Mix: mix}
	d1, err := NewDriver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDriver(cfg)
	a, b := d1.Draw(500), d2.Draw(500)
	counts := map[string]int{}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Class != b[i].Class {
			t.Fatalf("job %d diverges across identical drivers: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Arrival <= a[i-1].Arrival {
			t.Fatalf("arrivals must strictly advance: job %d at %s after %s", i, a[i].Arrival, a[i-1].Arrival)
		}
		counts[a[i].Class.Label()]++
	}
	// The weighted draw must produce both classes, with the weight-2
	// class the more common (loose: 500 draws, 2:1 odds).
	if counts["Water/omp-smp/p4"] <= counts["TSP/seq/p1"] {
		t.Fatalf("mix weights ignored: %v", counts)
	}
	if len(counts) != 2 {
		t.Fatalf("expected both classes drawn, got %v", counts)
	}
}
