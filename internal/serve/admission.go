package serve

import "repro/internal/sim"

// Virtual-time admission. The latency the report charges a job is NOT
// when the host's execution pool happened to schedule it — that depends
// on pool width and host load — but when a NOW with `width` shared
// backend slots would have admitted it under FIFO weighted admission.
// Simulating the queueing discipline in virtual time is what makes the
// report byte-identical across execution pool widths and host machines.

// slot is one job's occupancy: weight units held until finish.
type slot struct {
	finish sim.Time
	weight int
}

// admit assigns each job its virtual Start and End under FIFO admission
// onto capacity weight units (width slots × harness.CellUnitsPerWorker).
// Jobs must be in arrival order with Service already measured. The
// discipline is strict FIFO: job i+1 never starts before job i, so a
// heavy NOW job is never starved by a stream of quarter-slot sequential
// jobs arriving behind it — the property the admission test pins.
func admit(jobs []*Job, capacity int) {
	var (
		active []slot
		avail  = capacity
		prev   sim.Time // previous job's start: the FIFO floor
	)
	for _, j := range jobs {
		w := j.Class.SlotWeight()
		if w > capacity {
			w = capacity // a job wider than the machine still runs, alone
		}
		t := sim.Max(j.Arrival, prev)
		// Release everything finished by t, then walk forward through
		// finish events until w units are free. active is small (at most
		// capacity jobs), so a linear min-scan beats a heap here.
		for {
			for i := 0; i < len(active); {
				if active[i].finish <= t {
					avail += active[i].weight
					active[i] = active[len(active)-1]
					active = active[:len(active)-1]
				} else {
					i++
				}
			}
			if avail >= w {
				break
			}
			next := active[0].finish
			for _, s := range active[1:] {
				if s.finish < next {
					next = s.finish
				}
			}
			t = next
		}
		avail -= w
		j.Start = t
		j.End = t + j.Service
		active = append(active, slot{finish: j.End, weight: w})
		prev = t
	}
}
