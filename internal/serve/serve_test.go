package serve

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// detMix is a job mix made entirely of bit-deterministic classes:
// omp-smp and mpi cells have no DSM protocol jitter, so their measured
// virtual service times — and therefore the whole latency report — are
// byte-identical run to run. The replay, width, and golden tests depend
// on that; NOW/tmk/hybrid classes (whose protocol timing varies run to
// run) are exercised by the soak test with structural assertions
// instead.
const detMix = "Water:omp-smp:p4:w=2,3D-FFT:omp-smp:p4,Barnes:omp-smp:p2,3D-FFT:mpi:p4"

func detDriver(t *testing.T, seed uint64) *Driver {
	t.Helper()
	mix, err := ParseMix(detMix)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(DriverConfig{Seed: seed, Rate: 200, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func renderLatency(t *testing.T, cfg Config, seed uint64, njobs int) string {
	t.Helper()
	rep, err := NewScheduler(cfg).Serve(detDriver(t, seed), njobs)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.RenderLatency(&b)
	return b.String()
}

// TestServeReplayDeterministic is the deterministic-replay pin: the same
// seed, mix, and rate produce a byte-identical latency report on
// repeated runs — each of which really re-executes every job on a fresh
// backend.
func TestServeReplayDeterministic(t *testing.T) {
	cfg := Config{Width: 2}
	first := renderLatency(t, cfg, 11, 24)
	second := renderLatency(t, cfg, 11, 24)
	if first != second {
		t.Fatalf("replay diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	// A different seed is a different stream: the pin must not be
	// trivially satisfied by a constant report.
	if other := renderLatency(t, cfg, 12, 24); other == first {
		t.Fatal("different seed produced an identical report: the stream is not seed-driven")
	}
}

// TestServePoolWidthIdentity: the host execution pool width is a
// wall-clock knob only. The report describes the simulated Width-slot
// service, so ExecWorkers 1 and 8 must render identical bytes.
func TestServePoolWidthIdentity(t *testing.T) {
	narrow := renderLatency(t, Config{Width: 2, ExecWorkers: 1}, 11, 24)
	wide := renderLatency(t, Config{Width: 2, ExecWorkers: 8}, 11, 24)
	if narrow != wide {
		t.Fatalf("execution pool width leaked into the report:\n--- 1 worker ---\n%s--- 8 workers ---\n%s", narrow, wide)
	}
}

// TestServeErrorAttribution: when jobs fail, Serve reports the failure
// of the LOWEST job ID — not whichever pool goroutine reported first —
// and panics in a job are contained as that job's error.
func TestServeErrorAttribution(t *testing.T) {
	cfg := Config{
		Width:       2,
		ExecWorkers: 8,
		Runner: func(c JobClass) (apps.Result, error) {
			if c.Impl == "mpi" {
				panic("injected fault")
			}
			return apps.Result{Time: sim.Millisecond}, nil
		},
	}
	d := detDriver(t, 11)
	jobs := d.Draw(64)
	firstMPI := -1
	for _, j := range jobs {
		if j.Class.Impl == "mpi" {
			firstMPI = j.ID
			break
		}
	}
	if firstMPI < 0 {
		t.Skip("seed drew no mpi job in 64 draws")
	}
	_, err := NewScheduler(cfg).Serve(detDriver(t, 11), 64)
	if err == nil {
		t.Fatal("faulting runner must fail the stream")
	}
	want := "job " + itoa(firstMPI) + " "
	if !strings.Contains(err.Error(), want) || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("error %q does not attribute the lowest failing job (%d)", err, firstMPI)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestServeCheckpoints: the scheduler samples steady state per window
// and every checkpoint's census sits at the baseline (within slack) —
// the zero-goroutine-growth acceptance in miniature.
func TestServeCheckpoints(t *testing.T) {
	rep, err := NewScheduler(Config{Width: 2, CheckpointEvery: 8}).Serve(detDriver(t, 3), 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 3 {
		t.Fatalf("24 jobs in windows of 8: got %d checkpoints, want 3", len(rep.Checkpoints))
	}
	for _, cp := range rep.Checkpoints {
		if cp.Goroutines > rep.BaselineGoroutines+3 {
			t.Fatalf("checkpoint after %d jobs: %d goroutines, baseline %d", cp.AfterJobs, cp.Goroutines, rep.BaselineGoroutines)
		}
	}
	if rep.Checkpoints[2].AfterJobs != 24 {
		t.Fatalf("final checkpoint after %d jobs, want 24", rep.Checkpoints[2].AfterJobs)
	}
	if rep.Throughput() <= 0 || rep.Horizon <= 0 {
		t.Fatalf("degenerate report: throughput %g over horizon %s", rep.Throughput(), rep.Horizon)
	}
}
