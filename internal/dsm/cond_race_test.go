package dsm

import "testing"

// TestCondWaitRegistrationNotLost is the regression guard for the lost
// wakeup that deadlocked QSORT terminations: CondWait used to release
// the lock and send its wait registration fire-and-forget, so the next
// lock holder could broadcast into a still-empty waiter queue while the
// registration sat unprocessed in the manager's request queue (request
// and reply classes have no mutual FIFO ordering). The Figure-4
// termination pattern below — first thread waits, last thread
// broadcasts — hit the window readily under the race detector's timing;
// with the acknowledged registration the broadcast can only run after
// the wait is enqueued. A deadlock here fails the test via timeout.
func TestCondWaitRegistrationNotLost(t *testing.T) {
	for _, lockID := range []int{0, 1} { // manager on either node
		for iter := 0; iter < 25; iter++ {
			const P = 2
			const condID = 0
			sys := New(Config{Procs: P})
			nwait := sys.MallocPage(8)
			sys.Register("terminate", func(n *Node, _ []byte) {
				n.Acquire(lockID)
				nw := n.ReadI64(nwait) + 1
				n.WriteI64(nwait, nw)
				if nw == P {
					n.CondBroadcast(condID, lockID)
				} else {
					n.CondWait(condID, lockID)
				}
				n.Release(lockID)
			})
			if err := sys.Run(func(n *Node) { n.RunParallel("terminate", nil) }); err != nil {
				t.Fatalf("lock %d iter %d: %v", lockID, iter, err)
			}
		}
	}
}
