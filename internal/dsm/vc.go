package dsm

// VectorClock counts, per creating node, how many of that node's intervals
// the owning node has seen (so vc[c] is also the next expected interval
// sequence number from node c). Interval stores always hold a gap-free
// prefix per creator; the protocol guarantees this because every
// consistency-bearing message carries all intervals the receiver lacks
// relative to a sound lower bound of its clock.
type VectorClock []int32

func newVC(n int) VectorClock { return make(VectorClock, n) }

func (v VectorClock) clone() VectorClock {
	out := make(VectorClock, len(v))
	copy(out, v)
	return out
}

// merge raises each component to the max of the two clocks.
func (v VectorClock) merge(o VectorClock) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// covers reports whether the clock includes interval (creator, seq).
func (v VectorClock) covers(creator, seq int) bool {
	return int(v[creator]) > seq
}

// dominatedBy reports whether v ≤ o componentwise.
func (v VectorClock) dominatedBy(o VectorClock) bool {
	for i, x := range v {
		if x > o[i] {
			return false
		}
	}
	return true
}

// sum returns the component total. Sorting intervals by (sum, creator, seq)
// is a valid topological linearization of the happens-before partial order,
// because strict dominance implies a strictly smaller sum; diffs of
// concurrent intervals touch disjoint bytes in data-race-free programs, so
// their relative order is immaterial.
func (v VectorClock) sum() int64 {
	var s int64
	for _, x := range v {
		s += int64(x)
	}
	return s
}

func (w *wbuf) vc(v VectorClock) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u32(uint32(x))
	}
}

func (r *rbuf) vc() VectorClock {
	// Each component is 4 wire bytes; validating the count against the
	// bytes remaining keeps a corrupted count from sizing the allocation.
	n := r.needCount(int(r.u32()), 4)
	v := make(VectorClock, n)
	for i := range v {
		v[i] = int32(r.u32())
	}
	return v
}

// interval is one node's record of a closed write interval: the unit of
// consistency information in lazy release consistency. A write notice is
// the pair (interval, page); we represent the notices of an interval as its
// page list. The creator additionally caches the diffs of the interval's
// pages, created lazily on first request (or when the creator must reuse
// the page's twin).
type interval struct {
	creator int
	seq     int // 0-based; creator's vc[creator] == seq+1 after closing it
	vc      VectorClock
	pages   []PageID

	// diffs is populated only at the creator: encoded diff per page,
	// created lazily by ensureDiffEncoded and reclaimed by the
	// barrier-epoch garbage collector once no node can request it again
	// (see gc.go).
	diffs map[PageID][]byte
}

// encodeRecord appends the wire form of the interval's metadata (creator,
// seq, vc, write-notice page list) — diffs travel separately, on demand.
func (ivl *interval) encodeRecord(w *wbuf) {
	w.i32(ivl.creator)
	w.i32(ivl.seq)
	w.vc(ivl.vc)
	w.u32(uint32(len(ivl.pages)))
	for _, p := range ivl.pages {
		w.u32(uint32(p))
	}
}

func decodeRecord(r *rbuf) *interval {
	ivl := &interval{
		creator: r.i32(),
		seq:     r.i32(),
		vc:      r.vc(),
	}
	n := r.needCount(int(r.u32()), 4)
	ivl.pages = make([]PageID, n)
	for i := range ivl.pages {
		ivl.pages[i] = PageID(r.u32())
	}
	return ivl
}

// encodeRecords writes a counted sequence of interval records.
func encodeRecords(w *wbuf, ivls []*interval) {
	w.u32(uint32(len(ivls)))
	for _, ivl := range ivls {
		ivl.encodeRecord(w)
	}
}

func decodeRecords(r *rbuf) []*interval {
	// A record is at least 16 bytes (creator, seq, vc count, page count).
	n := r.needCount(int(r.u32()), 16)
	out := make([]*interval, n)
	for i := range out {
		out[i] = decodeRecord(r)
	}
	return out
}
