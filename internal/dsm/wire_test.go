package dsm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/network"
)

// ---------------------------------------------------------------------
// Round-trip properties (testing/quick): encode→decode is the identity
// for every wire element, in both versions.
// ---------------------------------------------------------------------

// randRecords builds a batch of interval records over a procs-node clock
// that respects the protocol invariant vc[creator] == seq+1 (the v2
// encoding omits seq and re-derives it from the clock, so only invariant-
// respecting records exist on a healthy wire). Page lists are ascending
// and duplicate-free, mixing dense runs with isolated ids.
func randRecords(rnd *rand.Rand, procs, count int) []*interval {
	out := make([]*interval, count)
	for k := range out {
		vc := newVC(procs)
		for i := range vc {
			vc[i] = int32(rnd.Intn(1 << rnd.Intn(20)))
		}
		creator := rnd.Intn(procs)
		if vc[creator] == 0 {
			vc[creator] = int32(rnd.Intn(1000) + 1)
		}
		var pages []PageID
		next := PageID(rnd.Intn(8))
		for len(pages) < rnd.Intn(40) {
			run := rnd.Intn(6) + 1
			for i := 0; i < run; i++ {
				pages = append(pages, next)
				next++
			}
			next += PageID(rnd.Intn(1000) + 1)
		}
		out[k] = &interval{creator: creator, seq: int(vc[creator]) - 1, vc: vc, pages: pages}
	}
	return out
}

// stripDiffs projects a record batch onto its wire-visible fields (diffs
// never travel in records) so decoded batches compare with DeepEqual.
func stripDiffs(ivls []*interval) []*interval {
	out := make([]*interval, len(ivls))
	for i, ivl := range ivls {
		pages := ivl.pages
		if pages == nil {
			pages = []PageID{}
		}
		out[i] = &interval{creator: ivl.creator, seq: ivl.seq, vc: ivl.vc, pages: pages}
	}
	return out
}

func TestWireVCRoundTrip(t *testing.T) {
	prop := func(xs []uint16) bool {
		v := make(VectorClock, len(xs))
		for i, x := range xs {
			v[i] = int32(x)
		}
		var w wbuf
		putVCv2(&w, v)
		r := rbuf{b: w.b}
		got := getVCv2(&r)
		if len(got) == 0 && len(v) == 0 {
			return r.done()
		}
		return reflect.DeepEqual(got, v) && r.done()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWirePageRunsRoundTrip(t *testing.T) {
	prop := func(gaps []uint8, lens []uint8) bool {
		var pages []PageID
		next := PageID(0)
		for i, g := range gaps {
			next += PageID(g)
			run := 1
			if i < len(lens) {
				run += int(lens[i]) % 7
			}
			for j := 0; j < run; j++ {
				pages = append(pages, next)
				next++
			}
			next++ // keep runs maximal: never adjacent
		}
		var w wbuf
		encodePageRuns(&w, pages)
		r := rbuf{b: w.b}
		got := decodePageRuns(&r)
		if len(pages) == 0 {
			return len(got) == 0 && r.done()
		}
		return reflect.DeepEqual(got, pages) && r.done()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWireRecordsRoundTrip drives random invariant-respecting batches
// through both wire versions' trailer codecs.
func TestWireRecordsRoundTrip(t *testing.T) {
	for _, v1 := range []bool{false, true} {
		n := &Node{wireV1: v1}
		prop := func(seed int64) bool {
			rnd := rand.New(rand.NewSource(seed))
			procs := rnd.Intn(16) + 1
			recs := randRecords(rnd, procs, rnd.Intn(12))
			vc := newVC(procs)
			for i := range vc {
				vc[i] = int32(rnd.Intn(1 << 16))
			}
			var w wbuf
			n.putTrailer(&w, vc, recs)
			r := rbuf{b: w.b}
			gotVC, gotRecs := n.getTrailer(&r)
			if !r.done() || !reflect.DeepEqual(gotVC, vc) {
				return false
			}
			return reflect.DeepEqual(stripDiffs(gotRecs), stripDiffs(recs))
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatalf("wireV1=%v: %v", v1, err)
		}
	}
}

// ---------------------------------------------------------------------
// Truncation: every strict prefix of a valid encoding must fail through
// the bounded wireError path — never a runtime fault, never a huge
// allocation sized from a corrupted count (the bug this PR fixes in the
// v1 decoders).
// ---------------------------------------------------------------------

// wantWireError runs fn expecting either success (ok true) or a panic of
// the decoder's own typed wireError; any other panic is a validation gap.
func wantWireError(t *testing.T, ctx string, fn func()) {
	t.Helper()
	defer func() {
		switch e := recover().(type) {
		case nil, wireError:
		default:
			t.Fatalf("%s: non-wireError panic: %v", ctx, e)
		}
	}()
	fn()
}

func TestWireTruncatedTrailer(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	recs := randRecords(rnd, 8, 5)
	vc := newVC(8)
	for i := range vc {
		vc[i] = int32(rnd.Intn(1 << 20))
	}
	for _, v1 := range []bool{false, true} {
		n := &Node{wireV1: v1}
		var w wbuf
		n.putTrailer(&w, vc, recs)
		for cut := 0; cut < len(w.b); cut++ {
			panicked := false
			func() {
				defer func() {
					switch e := recover().(type) {
					case wireError:
						panicked = true
					case nil:
					default:
						t.Fatalf("wireV1=%v cut=%d: non-wireError panic: %v", v1, cut, e)
					}
				}()
				r := rbuf{b: w.b[:cut]}
				n.getTrailer(&r)
			}()
			if !panicked {
				t.Fatalf("wireV1=%v: truncation at %d of %d decoded silently", v1, cut, len(w.b))
			}
		}
	}
}

// TestWireCorruptCountBounded pins the decode-before-validate fix
// directly: a frame whose count field claims far more elements than bytes
// remain must die in needCount, not in make().
func TestWireCorruptCountBounded(t *testing.T) {
	var w wbuf
	w.u32(0x7fffffff) // v1 record count with an empty body
	wantWireError(t, "v1 records", func() {
		r := rbuf{b: w.b}
		decodeRecords(&r)
	})
	var w2 wbuf
	w2.u32(0x7fffffff) // v1 clock length
	wantWireError(t, "v1 clock", func() {
		r := rbuf{b: w2.b}
		r.vc()
	})
	var w3 wbuf
	w3.u32(0x7fffffff) // byte-slice length (page contents, diff bodies)
	wantWireError(t, "bytes", func() {
		r := rbuf{b: w3.b}
		r.bytes()
	})
	var w4 wbuf
	w4.uv(0x7fffffff) // batch sub count
	wantWireError(t, "batch count", func() {
		r := rbuf{b: w4.b}
		walkBatch(&r, 0, func(int, []byte) {})
	})
}

// ---------------------------------------------------------------------
// Frame envelope.
// ---------------------------------------------------------------------

func TestWireBatchEnvelopeRoundTrip(t *testing.T) {
	n := &Node{}
	f := n.newFrame()
	subs := []frameSub{
		{typ: msgGCSync, payload: []byte{1, 2, 3}},
		{typ: msgGCFloor, payload: nil},
		{typ: msgDiffReq, payload: make([]byte, 300)},
	}
	for _, s := range subs {
		f.add(s.typ, s.payload)
	}
	payload, parts := f.build()
	sum := 0
	for _, p := range parts {
		sum += p.Bytes
	}
	if sum != len(payload) {
		t.Fatalf("parts sum to %d, payload is %d", sum, len(payload))
	}
	var got []frameSub
	r := rbuf{b: payload}
	walkBatch(&r, 0, func(typ int, p []byte) {
		cp := make([]byte, len(p))
		copy(cp, p)
		got = append(got, frameSub{typ: typ, payload: cp})
	})
	if !r.done() || len(got) != len(subs) {
		t.Fatalf("demuxed %d subs, want %d (done=%v)", len(got), len(subs), r.done())
	}
	for i, s := range subs {
		if got[i].typ != s.typ || len(got[i].payload) != len(s.payload) {
			t.Fatalf("sub %d: got (%d, %d bytes), want (%d, %d bytes)",
				i, got[i].typ, len(got[i].payload), s.typ, len(s.payload))
		}
	}
}

func TestWireNestedBatchRejected(t *testing.T) {
	var w wbuf
	w.uv(1)
	w.u8(uint8(msgBatch))
	w.uv(0)
	defer func() {
		if _, ok := recover().(wireError); !ok {
			t.Fatal("nested msgBatch frame was not rejected with wireError")
		}
	}()
	r := rbuf{b: w.b}
	walkBatch(&r, 0, func(int, []byte) {})
}

// TestWireBatchAttribution sends a real two-sub frame across the switch
// and checks the stats contract: Messages counts logical sub-messages,
// Frames counts datagrams, and ByType charges every byte to the true
// sub-message types — the msgBatch envelope never appears in a breakdown.
func TestWireBatchAttribution(t *testing.T) {
	sys := New(Config{Procs: 2, GCPressure: -1})
	defer sys.Shutdown()
	n0, n1 := sys.nodes[0], sys.nodes[1]

	st := sys.Switch().Stats()
	baseMsgs, _ := st.Snapshot()
	baseFrames := st.FrameCount()

	f := n1.newFrame()
	f.add(msgExit, []byte{9, 9})
	f.add(msgExit, nil)
	f.sendAt(0, 0)

	// Both subs surface as ordinary msgExit deliveries on node 0's server.
	for i := 0; i < 2; i++ {
		m := <-n0.forkCh
		if m.Type != msgExit {
			t.Fatalf("demuxed type %d, want msgExit", m.Type)
		}
	}
	msgs, _ := st.Snapshot()
	if got := msgs - baseMsgs; got != 2 {
		t.Fatalf("frame of 2 subs counted %d logical messages", got)
	}
	if got := st.FrameCount() - baseFrames; got != 1 {
		t.Fatalf("frame of 2 subs counted %d datagrams", got)
	}
	if m, _ := st.ByType(msgBatch); m != 0 {
		t.Fatalf("msgBatch envelope attributed %d messages to itself", m)
	}
	if m, _ := st.ByType(msgExit); m != 2 {
		t.Fatalf("ByType(msgExit) = %d, want 2", m)
	}
}

// ---------------------------------------------------------------------
// Satellite: a dropped consensus frame must not advance knownVC.
// ---------------------------------------------------------------------

// TestGCSyncDroppedFrameKeepsKnownVC pins the reverse-delta bookkeeping
// in handleGCSync under batching: when the pusher's request queue is full
// and the reply frame is dropped, the responder's knownVC estimate for
// the pusher must stay put — a frame that never went out must not leave
// the estimate vouching for intervals the peer never received (the next
// delta would then silently skip them: a gap).
func TestGCSyncDroppedFrameKeepsKnownVC(t *testing.T) {
	sys := New(Config{Procs: 2, GCPressure: -1})
	n0, n1 := sys.nodes[0], sys.nodes[1]

	// Wedge node 0's protocol server: 8 exits fill forkCh, the 9th blocks
	// the server mid-dispatch, and every TrySendAt after that lands in the
	// request inbox until it is full.
	const wedge = 9
	for i := 0; i < wedge; i++ {
		n1.ep.SendAt(0, msgExit, network.ClassRequest, nil, 0)
	}
	filled := 0
	for n1.ep.TrySendAt(0, msgExit, network.ClassRequest, nil, 0) {
		filled++
	}

	// Hand-craft an unsent interval on node 1: its clock is ahead of what
	// node 0 has ever been told (knownVC[0] is still zero).
	n1.mu.Lock()
	ivl := &interval{creator: 1, seq: 0, vc: VectorClock{0, 1}, pages: []PageID{0}}
	n1.vc[1] = 1
	n1.intervals[1] = append(n1.intervals[1], ivl)
	n1.mu.Unlock()

	// A consensus push from node 0 arrives; the reverse delta cannot be
	// delivered (node 0's queue is full), so nothing may be recorded.
	var w wbuf
	n1.putTrailer(&w, newVC(2), nil)
	n1.handleGCSync(&network.Message{From: 0, To: 1, Type: msgGCSync, Payload: w.b})

	n1.mu.Lock()
	known := n1.knownVC[0].clone()
	pushes := n1.stats.GCSyncPushes
	n1.mu.Unlock()
	if known[1] != 0 {
		t.Errorf("knownVC[0] advanced to %v after a dropped reverse frame", known)
	}
	if pushes != 0 {
		t.Errorf("GCSyncPushes = %d after a dropped reverse frame", pushes)
	}

	// Unwedge: consume every exit so the server drains the inbox and the
	// switch can shut down cleanly.
	go func() {
		for i := 0; i < wedge+filled; i++ {
			<-n0.forkCh
		}
	}()
	if err := sys.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestGCSyncDeliveredFrameAdvancesKnownVC is the success-path twin: the
// same push with a drained peer queue must both deliver the reverse delta
// and record it.
func TestGCSyncDeliveredFrameAdvancesKnownVC(t *testing.T) {
	sys := New(Config{Procs: 2, GCPressure: -1})
	defer sys.Shutdown()
	n1 := sys.nodes[1]

	n1.mu.Lock()
	ivl := &interval{creator: 1, seq: 0, vc: VectorClock{0, 1}, pages: []PageID{0}}
	n1.vc[1] = 1
	n1.intervals[1] = append(n1.intervals[1], ivl)
	n1.mu.Unlock()

	var w wbuf
	n1.putTrailer(&w, newVC(2), nil)
	n1.handleGCSync(&network.Message{From: 0, To: 1, Type: msgGCSync, Payload: w.b})

	n1.mu.Lock()
	known := n1.knownVC[0].clone()
	pushes := n1.stats.GCSyncPushes
	n1.mu.Unlock()
	if known[1] != 1 {
		t.Errorf("knownVC[0] = %v after a delivered reverse frame, want [0 1]", known)
	}
	if pushes != 1 {
		t.Errorf("GCSyncPushes = %d after a delivered reverse frame, want 1", pushes)
	}
}

// ---------------------------------------------------------------------
// Fuzz: arbitrary bytes may only fail through wireError.
// ---------------------------------------------------------------------

// FuzzWireDecode feeds arbitrary bytes to every wire decoder. The
// contract under test: decoding never panics except via the typed
// wireError (the bounded short-message path) — any index fault or
// count-sized allocation blowup is a missing validation.
func FuzzWireDecode(f *testing.F) {
	// Seed with valid encodings of each shape so the fuzzer starts on the
	// deep paths rather than rediscovering the framing byte by byte.
	rnd := rand.New(rand.NewSource(1))
	recs := randRecords(rnd, 6, 4)
	vc := VectorClock{3, 1, 4, 1, 5, 9}
	for _, v1 := range []bool{false, true} {
		n := &Node{wireV1: v1}
		var w wbuf
		n.putTrailer(&w, vc, recs)
		f.Add(w.b)
	}
	var v wbuf
	putVCv2(&v, vc)
	f.Add(v.b)
	fb := (&Node{}).newFrame()
	fb.add(msgGCSync, v.b)
	fb.add(msgGCFloor, v.b)
	env, _ := fb.build()
	f.Add(env)

	decoders := []func(n *Node, b []byte){
		func(n *Node, b []byte) {
			r := rbuf{b: b}
			n.getTrailer(&r)
		},
		func(n *Node, b []byte) {
			r := rbuf{b: b}
			n.getVC(&r)
		},
		func(n *Node, b []byte) {
			r := rbuf{b: b}
			walkBatch(&r, 0, func(_ int, sub []byte) {
				// Demuxed sub payloads reach the same trailer decoders.
				sr := rbuf{b: sub}
				defer func() {
					if e := recover(); e != nil {
						if _, ok := e.(wireError); !ok {
							panic(e)
						}
					}
				}()
				n.getTrailer(&sr)
			})
		},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, v1 := range []bool{false, true} {
			n := &Node{wireV1: v1}
			for i, dec := range decoders {
				func() {
					defer func() {
						switch e := recover().(type) {
						case nil, wireError:
						default:
							t.Fatalf("decoder %d (wireV1=%v): non-wireError panic: %v", i, v1, e)
						}
					}()
					dec(n, data)
				}()
			}
		}
	})
}
