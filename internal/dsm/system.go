package dsm

import (
	"fmt"
	"sync"

	"repro/internal/network"
	"repro/internal/sim"
)

// Protocol message types.
const (
	msgAcqReq        = iota + 1 // app   → lock manager: acquire request (carries vc)
	msgAcqFwd                   // manager/server → last holder: forwarded request
	msgLockGrant                // holder → requester: grant + consistency delta
	msgBarrArrive               // app → barrier manager: arrival + delta
	msgBarrDepart               // manager → app: departure + delta
	msgSemaSignal               // app → sema manager: V + delta
	msgSemaAck                  // manager → app: signal acknowledgment
	msgSemaWait                 // app → sema manager: P request (carries vc)
	msgSemaGrant                // manager → app: P granted + delta
	msgCondWait                 // app → lock manager: enqueue on condition variable
	msgCondWaitAck              // manager → app: wait registered (see CondWait)
	msgCondSignal               // app → lock manager: wake one waiter
	msgCondBroadcast            // app → lock manager: wake all waiters
	msgPageReq                  // app → page home: first copy of a page
	msgPageRep                  // home → app: page contents
	msgDiffReq                  // app → interval creator: batched diff request
	msgDiffRep                  // creator → app: requested diffs
	msgFlush                    // app → every node: pushed write notices (ablation)
	msgFlushAck                 // node → flusher
	msgFork                     // master → slave: run a parallel region
	msgJoin                     // slave → master: region finished + delta
	msgExit                     // master → slave: shut down
	msgGCSync                   // pressured node → quiet node: GC consensus push + delta (acqgc.go)
	msgGCFloor                  // piggybacked acquire-epoch floor announcement (acqgc.go)
	msgBatch                    // coalesced per-peer frame of typed sub-messages (wire.go)
)

// RegionFunc is the body of a parallel region, registered under a name on
// every node (the analogue of the compiler emitting one subroutine per
// region, Section 4.3.2). arg carries the serialized firstprivate
// environment broadcast at fork time.
type RegionFunc func(n *Node, arg []byte)

// Config describes one simulated NOW run.
type Config struct {
	// Procs is the number of workstations (the paper uses up to 8).
	Procs int
	// HeapBytes is the size of the global shared address space
	// (default 64 MiB).
	HeapBytes int
	// Platform overrides the calibrated cost model (default
	// sim.DefaultPlatform).
	Platform *sim.Platform
	// DisableGC turns off barrier-epoch garbage collection of protocol
	// metadata (see gc.go), letting intervals, diffs, and twins
	// accumulate for the whole run — the pre-GC behaviour, kept for the
	// metadata-accumulation ablation.
	DisableGC bool
	// GCMinRetire adaptively throttles the collector: a synchronization
	// episode runs a collection epoch only when the retire floor covers
	// at least this many interval records created since the last
	// collection. The predicate is computed from epoch floors alone,
	// which are identical on every node, so the decision needs no extra
	// coordination (see gcEpochLocked). 0 collects at every episode.
	GCMinRetire int
	// GCPressure triggers the lock-manager-led acquire-epoch collector
	// (acqgc.go) for programs that synchronize without barriers: an
	// acquire epoch is announced when the consensus floor — the min of
	// the per-thread clocks carried in acquire/wait requests — would
	// newly retire at least this many interval records. 0 uses the
	// package default (DefaultGCPressure, overridable with
	// SetGCPressureDefault); negative disables acquire epochs, leaving
	// only the barrier/fork source.
	GCPressure int
	// GCPolicy selects the per-page validate-vs-flush purge policy
	// applied by non-manager nodes at every collection epoch (both
	// sources). The zero value defers to the package default (flush,
	// overridable with SetGCPolicyDefault).
	GCPolicy GCPolicy
	// HomePolicy selects how initial page ownership is sharded across
	// nodes (see home.go). The zero value defers to the package default
	// (block-cyclic); HomePolicyNode0 restores the pre-sharding layout
	// byte for byte.
	HomePolicy HomePolicy
	// BarrierFanin is the fan-in of the combining-tree barrier: each
	// interior node gathers this many children before passing the
	// combined arrival up (see barrier.go). 0 uses DefaultBarrierFanin
	// (8), which makes the tree exactly the old flat manager for runs of
	// at most 9 nodes.
	BarrierFanin int
	// WireV1 selects the pre-batching wire protocol: every message its
	// own datagram, fixed-width u32 vector clocks and flat page lists in
	// the interval records. It is byte-identical to the protocol before
	// frame coalescing and delta compression existed (the golden
	// byte-count pins run under it); the default (false) is the compact
	// v2 encoding with per-peer msgBatch frames. See wire.go.
	WireV1 bool
	// MultiClient lets several application threads share each node (the
	// NOW-of-SMPs configuration: every node is an SMP island's protocol
	// delegate). It starts a reply router per node so tagged grants and
	// acknowledgments reach the exact thread that requested them; create
	// the per-thread handles with Node.NewClient.
	MultiClient bool
}

// System is one simulated network of workstations running TreadMarks.
type System struct {
	cfg       Config
	plat      *sim.Platform
	sw        *network.Switch
	nodes     []*Node
	heapBytes int
	gcOn      bool
	gcPolicy  GCPolicy    // resolved purge policy (never GCPolicyDefault)
	acq       *acqCoord   // acquire-epoch coordinator; nil when disabled
	homes     *homeTable  // page → home resolution (see home.go)
	purged    *homePurged // per-node purge-floor registry (flush gate)
	fanin     int         // resolved barrier tree fan-in
	wireV1    bool        // pre-batching wire protocol (Config.WireV1)
	treeGC    bool        // tree-routed consensus transport (SetTreeConsensusDefault)

	regionsMu sync.Mutex
	regions   map[string]RegionFunc

	heapMu   sync.Mutex
	heapNext Addr

	gcMu     sync.Mutex
	gcFloors map[int64]*epochFloor // per-epoch floor agreement (see checkEpochFloor)

	errOnce  sync.Once
	err      error
	done     chan struct{} // closed on abort or shutdown to unblock channel waits
	doneOnce sync.Once

	serverWG sync.WaitGroup
}

// New creates a system with cfg.Procs nodes and starts their protocol
// servers. Register parallel regions with Register, then call Run.
func New(cfg Config) *System {
	if cfg.Procs <= 0 {
		panic("dsm: Config.Procs must be positive")
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 << 20
	}
	if cfg.HeapBytes%PageSize != 0 {
		cfg.HeapBytes += PageSize - cfg.HeapBytes%PageSize
	}
	plat := cfg.Platform
	if plat == nil {
		plat = sim.DefaultPlatform()
	}
	s := &System{
		cfg:       cfg,
		plat:      plat,
		sw:        network.NewSwitch(cfg.Procs, plat.UDP),
		heapBytes: cfg.HeapBytes,
		regions:   make(map[string]RegionFunc),
		done:      make(chan struct{}),
		gcOn:      !cfg.DisableGC && gcDefault && cfg.Procs > 1,
		gcFloors:  make(map[int64]*epochFloor),
		wireV1:    cfg.WireV1 || wireV1Default,
		treeGC:    treeConsensusOn,
	}
	s.gcPolicy = cfg.GCPolicy
	if s.gcPolicy == GCPolicyDefault {
		s.gcPolicy = gcDefaultPolicy
	}
	homePolicy := cfg.HomePolicy
	if homePolicy == HomePolicyDefault {
		homePolicy = HomePolicyBlockCyclic
	}
	npages := cfg.HeapBytes / PageSize
	s.homes = newHomeTable(homePolicy, cfg.Procs, npages)
	s.purged = newHomePurged(cfg.Procs)
	s.fanin = cfg.BarrierFanin
	if s.fanin <= 0 {
		s.fanin = DefaultBarrierFanin
	}
	pressure := cfg.GCPressure
	if pressure == 0 {
		pressure = gcDefaultPressure
		// The trigger counts retirable interval records SYSTEM-WIDE (the
		// consensus floor's component sum), which grows with the machine:
		// a fixed threshold that fires after a few rounds of metadata at
		// the paper's 8 workstations fires 16× as often at 128 nodes, and
		// every acquire epoch costs a full consensus round. Scale the
		// zero-value default linearly past the paper's machine size; an
		// explicit Config.GCPressure (or SetGCPressureDefault) still pins
		// the trigger exactly, and ≤8-processor runs are untouched.
		if pressure > 0 && cfg.Procs > 8 {
			pressure *= cfg.Procs / 8
		}
	}
	if s.gcOn && pressure > 0 {
		// Under node-0 homes the coordinator keeps the historical node-0-
		// first purge ordering (gate 0); sharded homes gate flushes per
		// page through the purge registry instead, so any node may be
		// handed a pending floor immediately.
		gate := -1
		if homePolicy == HomePolicyNode0 {
			gate = 0
		}
		s.acq = newAcqCoord(cfg.Procs, pressure, gate)
	}
	for i := 0; i < cfg.Procs; i++ {
		n := &Node{
			sys:       s,
			id:        i,
			wireV1:    s.wireV1,
			vc:        newVC(cfg.Procs),
			intervals: make([][]*interval, cfg.Procs),
			ivlBase:   make([]int, cfg.Procs),
			pages:     make([]*page, npages),
			knownVC:   make([]VectorClock, cfg.Procs),
			locks:     make(map[int]*lockState),
			semas:     make(map[int]*semaState),
			conds:     make(map[int]*condQueue),
			forkCh:    make(chan *network.Message, 8),
			joinCh:    make(chan *network.Message, cfg.Procs),
			selfReply: make(chan *network.Message, 16),
		}
		for j := range n.knownVC {
			n.knownVC[j] = newVC(cfg.Procs)
		}
		n.ep = s.sw.Endpoint(i, &n.clock)
		n.c0 = Client{n: n, clk: &n.clock}
		if cfg.MultiClient {
			n.router = newReplyRouter()
			s.serverWG.Add(1)
			go func(n *Node) {
				defer s.serverWG.Done()
				// The pump parses reply payloads to route them; a
				// malformed reply must abort the run like any other
				// protocol panic, not kill the process with the drain
				// loop (tripwire analyzer enforces this).
				defer s.recoverAbort(n)
				n.router.pump(n)
			}(n)
		}
		s.nodes = append(s.nodes, n)
	}
	// Combining-tree barrier: every node with children in the fan-in-ary
	// heap gets an arrival buffer (at fan-in ≥ procs-1 only node 0 has
	// children and the tree IS the old flat manager).
	for _, n := range s.nodes {
		if k := len(barrierChildren(n.id, cfg.Procs, s.fanin)); k > 0 {
			n.barrier = newBarrierMgr(k)
		}
	}
	for _, n := range s.nodes {
		s.serverWG.Add(1)
		go func(n *Node) {
			defer s.serverWG.Done()
			// Protocol panics on the server goroutine (including the GC
			// soundness tripwires, which the fork path runs in server
			// context) become a clean Run error like app-thread panics;
			// the abort shuts the switch down so every peer unwinds.
			defer s.recoverAbort(n)
			n.serve()
		}(n)
	}
	return s
}

// Procs returns the number of nodes.
func (s *System) Procs() int { return s.cfg.Procs }

// Platform returns the cost model in use.
func (s *System) Platform() *sim.Platform { return s.plat }

// Switch exposes the interconnect (for statistics).
func (s *System) Switch() *network.Switch { return s.sw }

// TrafficBreakdown splits one run's interconnect traffic into the three
// protocol cost categories the scaling study attributes walls to: page
// service (whole-page fetches from homes plus diff requests to interval
// creators), synchronization fan-in (locks, barriers, semaphores,
// condition variables, fork/join, and the flush ablation), and the GC
// consensus floor (acqgc.go's pushes to quiet nodes).
type TrafficBreakdown struct {
	PageMsgs, PageBytes int64
	SyncMsgs, SyncBytes int64
	GCMsgs, GCBytes     int64
}

// Total returns the breakdown summed back into run totals (equal to the
// switch's Snapshot over the same window).
func (t TrafficBreakdown) Total() (messages, bytes int64) {
	return t.PageMsgs + t.SyncMsgs + t.GCMsgs,
		t.PageBytes + t.SyncBytes + t.GCBytes
}

// TrafficBreakdown categorizes the switch's per-message-type counters.
// Synchronization is the residue, so the three categories always sum to
// the switch totals even if a new message type is added without updating
// the category lists here.
func (s *System) TrafficBreakdown() TrafficBreakdown {
	var b TrafficBreakdown
	st := s.sw.Stats()
	for _, typ := range []int{msgPageReq, msgPageRep, msgDiffReq, msgDiffRep} {
		m, by := st.ByType(typ)
		b.PageMsgs += m
		b.PageBytes += by
	}
	for _, typ := range []int{msgGCSync, msgGCFloor} {
		m, by := st.ByType(typ)
		b.GCMsgs += m
		b.GCBytes += by
	}
	msgs, bytes := st.Snapshot()
	b.SyncMsgs = msgs - b.PageMsgs - b.GCMsgs
	b.SyncBytes = bytes - b.PageBytes - b.GCBytes
	return b
}

// Frames returns the number of datagrams the run put on the wire.
// Messages − Frames (from the switch's Snapshot) is the number of
// datagrams per-peer frame coalescing eliminated; under Config.WireV1
// the two are equal.
func (s *System) Frames() int64 { return s.sw.Stats().FrameCount() }

// Done is closed when the system aborts or shuts down; external worker
// threads (a hybrid backend's island teams) select on it so they unwind
// alongside the nodes' own application threads.
func (s *System) Done() <-chan struct{} { return s.done }

// Register binds a parallel-region body to a name on every node. It must
// be called before Run forks the region. Registering models all nodes
// running the same compiled binary.
func (s *System) Register(name string, fn RegionFunc) {
	s.regionsMu.Lock()
	defer s.regionsMu.Unlock()
	if _, dup := s.regions[name]; dup {
		panic(fmt.Sprintf("dsm: region %q registered twice", name))
	}
	s.regions[name] = fn
}

func (s *System) region(name string) RegionFunc {
	s.regionsMu.Lock()
	defer s.regionsMu.Unlock()
	fn, ok := s.regions[name]
	if !ok {
		panic(fmt.Sprintf("dsm: region %q not registered", name))
	}
	return fn
}

// Malloc allocates size bytes in the global shared address space and
// returns its address. Like Tmk_malloc, allocation is a master-side
// operation whose result is distributed to the slaves (here through fork
// arguments or the central allocator state). The returned block is 8-byte
// aligned and initially zero.
func (s *System) Malloc(size int) Addr {
	s.heapMu.Lock()
	defer s.heapMu.Unlock()
	return s.mallocLocked(size)
}

// MallocPage allocates size bytes starting on a fresh page, so that
// unrelated allocations never share a page (the usual defence against
// false sharing for the applications' main arrays). The alignment and the
// allocation happen under one lock acquisition: a concurrent Malloc
// cannot land between them and put the block mid-page.
func (s *System) MallocPage(size int) Addr {
	s.heapMu.Lock()
	defer s.heapMu.Unlock()
	if rem := int(s.heapNext) % PageSize; rem != 0 {
		s.heapNext += Addr(PageSize - rem)
	}
	return s.mallocLocked(size)
}

func (s *System) mallocLocked(size int) Addr {
	if size <= 0 {
		panic("dsm: Malloc with non-positive size")
	}
	a := s.heapNext
	size = (size + 7) &^ 7
	s.heapNext += Addr(size)
	if int(s.heapNext) > s.heapBytes {
		panic(fmt.Sprintf("dsm: shared heap exhausted (%d bytes requested beyond %d)", size, s.heapBytes))
	}
	return a
}

// abort records the first failure and tears the switch down so every
// blocked thread unwinds.
func (s *System) abort(err error) {
	s.errOnce.Do(func() {
		s.err = err
		s.doneOnce.Do(func() { close(s.done) })
		s.sw.Shutdown()
	})
}

// Shutdown releases every resource the system holds: it closes the done
// channel, shuts the switch down (idempotently — an abort may already have
// done both), and waits for the protocol servers and reply routers started
// by New to exit. It returns the run's first error, if any.
//
// Shutdown is idempotent and must be called once the system is quiescent:
// after Run has returned, or on a system that was never Run (a scheduler
// tearing down a constructed-but-unused backend — without this, the P
// server goroutines and router pumps started by New outlive the System).
// It must not be called while a Run is in flight.
func (s *System) Shutdown() error {
	s.doneOnce.Do(func() { close(s.done) })
	s.sw.Shutdown()
	s.serverWG.Wait()
	return s.err
}

// Close is Shutdown under the io.Closer-shaped name used by run-scoped
// `defer sys.Close()` teardown in the applications.
func (s *System) Close() error { return s.Shutdown() }

// Run executes master on node 0 while nodes 1..P-1 wait for forked
// regions. It returns when master returns (after shutting the slaves
// down), propagating the first panic from any node as an error.
func (s *System) Run(master func(n *Node)) error {
	var appWG sync.WaitGroup
	for _, n := range s.nodes[1:] {
		appWG.Add(1)
		go func(n *Node) {
			defer appWG.Done()
			defer s.recoverAbort(n)
			n.slaveLoop()
		}(n)
	}
	appWG.Add(1)
	go func() {
		n := s.nodes[0]
		defer appWG.Done()
		defer s.recoverAbort(n)
		master(n)
		// Shut the slaves down at the master's final virtual time.
		for i := 1; i < s.cfg.Procs; i++ {
			n.ep.Send(i, msgExit, network.ClassRequest, nil)
		}
	}()
	appWG.Wait()
	// Servers exit via the switch's down signal; router pumps select on
	// done (Shutdown no longer closes the inbox channels).
	s.doneOnce.Do(func() { close(s.done) })
	s.sw.Shutdown()
	s.serverWG.Wait()
	return s.err
}

func (s *System) recoverAbort(n *Node) {
	if r := recover(); r != nil {
		if _, isAbort := r.(abortError); isAbort {
			return // secondary victim of another node's failure
		}
		s.abort(fmt.Errorf("dsm: node %d: %v", n.id, r))
	}
}

// Node returns node i (valid after New; used by the harness to read
// clocks and statistics after Run).
func (s *System) Node(i int) *Node { return s.nodes[i] }

// MaxClock returns the latest virtual time across all nodes: the parallel
// execution time of the run.
func (s *System) MaxClock() sim.Time {
	var m sim.Time
	for _, n := range s.nodes {
		if t := n.clock.Now(); t > m {
			m = t
		}
	}
	return m
}

// TotalStats aggregates the per-node protocol counters: event counts and
// the ProtoBytes gauge sum across nodes, while the Peak* fields take the
// per-node maximum (a peak is a bound on one workstation's memory, and
// node peaks need not be simultaneous, so summing them means nothing).
func (s *System) TotalStats() NodeStats {
	var t NodeStats
	for _, n := range s.nodes {
		st := n.Stats()
		t.ReadFaults += st.ReadFaults
		t.WriteFaults += st.WriteFaults
		t.PageFetches += st.PageFetches
		t.DiffsCreated += st.DiffsCreated
		t.DiffsApplied += st.DiffsApplied
		t.DiffBytes += st.DiffBytes
		t.LockAcquires += st.LockAcquires
		t.LockLocal += st.LockLocal
		t.Barriers += st.Barriers
		t.SemaOps += st.SemaOps
		t.CondOps += st.CondOps
		t.Flushes += st.Flushes
		t.Interrupts += st.Interrupts
		t.GCEpisodes += st.GCEpisodes
		t.GCEpochs += st.GCEpochs
		t.GCAcqEpochs += st.GCAcqEpochs
		t.GCSyncPushes += st.GCSyncPushes
		t.GCSyncRelays += st.GCSyncRelays
		t.GCDepartFloors += st.GCDepartFloors
		t.IntervalsRetired += st.IntervalsRetired
		t.TwinsCollected += st.TwinsCollected
		t.GCPagesValidated += st.GCPagesValidated
		t.GCPagesFlushed += st.GCPagesFlushed
		t.ProtoBytes += st.ProtoBytes
		if st.PeakProtoBytes > t.PeakProtoBytes {
			t.PeakProtoBytes = st.PeakProtoBytes
		}
		if st.PeakIntervalChain > t.PeakIntervalChain {
			t.PeakIntervalChain = st.PeakIntervalChain
		}
	}
	return t
}

// ProtoSummary reports the aggregate protocol-metadata footprint of a
// finished run, for the harness tables: retired interval records, the
// longest per-creator interval chain retained on any node, and the peak
// metadata bytes (records + diffs + twins) held on any node.
func (s *System) ProtoSummary() (retired, peakChain, peakBytes int64) {
	t := s.TotalStats()
	return t.IntervalsRetired, t.PeakIntervalChain, t.PeakProtoBytes
}

// GCStats is the collector's trigger and purge accounting, for the
// harness tables and ablations. Episodes and Epochs count GLOBAL events
// (every node walks the identical episode sequence and reaches identical
// trigger decisions, so they are per-node maxima, not sums); AcqEpochs
// counts acquire epochs announced by the lock-manager consensus;
// PagesValidated and PagesFlushed sum the per-node purge outcomes of the
// validate-vs-flush policy.
type GCStats struct {
	Episodes       int64 // barrier/fork episodes the collector examined
	Epochs         int64 // episodes that actually ran a collection
	AcqEpochs      int64 // acquire epochs announced (acqgc.go)
	PagesValidated int64 // stale copies brought current at collections
	PagesFlushed   int64 // stale copies discarded at collections
}

// GCSummary reports the collector's accounting. With Config.GCMinRetire
// == 0, Epochs equals Episodes; an adaptive threshold makes it a
// fraction. AcqEpochs is nonzero only when lock/semaphore pressure
// triggered the acquire source.
func (s *System) GCSummary() GCStats {
	var g GCStats
	for _, n := range s.nodes {
		st := n.Stats()
		if st.GCEpisodes > g.Episodes {
			g.Episodes = st.GCEpisodes
		}
		if st.GCEpochs > g.Epochs {
			g.Epochs = st.GCEpochs
		}
		g.PagesValidated += st.GCPagesValidated
		g.PagesFlushed += st.GCPagesFlushed
	}
	if s.acq != nil {
		g.AcqEpochs = s.acq.announcedCount()
	}
	return g
}
