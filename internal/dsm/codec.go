// Package dsm implements a TreadMarks-style software distributed shared
// memory system on the simulated network of workstations, as described in
// Section 4 of the paper:
//
//   - a paged global shared address space on top of per-node private
//     memories (each node owns a private copy of every page it touches;
//     nothing is shared between nodes except protocol messages),
//   - a lazy invalidate implementation of release consistency (LRC) with
//     vector clocks, intervals, and write notices,
//   - a multiple-writer protocol using twins and word-granularity diffs,
//   - the synchronization primitives of Section 4.2: centralized-manager
//     barriers, distributed locks with last-holder forwarding, condition
//     variables attached to locks, semaphores with a manager node, and the
//     OpenMP flush (kept for the paper's ablation of Section 3.2.3), and
//   - Tmk_fork / Tmk_join fork-join threading tailored to OpenMP.
//
// Access detection substitutes explicit per-access checks for the
// mprotect/SIGSEGV mechanism of real TreadMarks (which cannot coexist with
// the Go runtime); every protocol event — fault, twin creation, diff, write
// notice, invalidation — is reproduced faithfully. See DESIGN.md §1.
package dsm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// wbuf is a tiny append-only little-endian encoder for protocol messages.
// Message sizes feed the Table 2 byte statistics, so the encodings are kept
// as compact as the real protocol's.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)    { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i32(v int)     { w.u32(uint32(int32(v))) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *wbuf) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}

func (w *wbuf) str(s string) { w.bytes([]byte(s)) }

// wireError is the panic value raised by every decode-side validation
// failure (short message, oversized count, malformed varint). Keeping a
// dedicated type lets the fuzz harness recover exactly the decoder's own
// bounded failure path while still treating any other panic — including a
// runtime index/alloc fault, which would mean a validation gap — as a bug.
type wireError string

func (e wireError) Error() string { return string(e) }

func wireErrf(format string, args ...any) wireError {
	return wireError(fmt.Sprintf(format, args...))
}

// rbuf decodes what wbuf encodes. Decoding errors indicate protocol bugs
// (or, since frames cross the simulated wire, hostile input in the fuzz
// suite), so they panic with a wireError rather than returning errors.
type rbuf struct {
	b   []byte
	off int
}

func (r *rbuf) need(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		panic(wireErrf("dsm: short message: need %d bytes at offset %d of %d", n, r.off, len(r.b)))
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// remaining returns how many undecoded bytes are left: the bound every
// wire-supplied element count must be validated against BEFORE allocating
// (each element occupies at least one byte on the wire, so a count above
// remaining() can only come from a truncated or corrupted frame).
func (r *rbuf) remaining() int { return len(r.b) - r.off }

// needCount validates a wire-supplied element count against the bytes
// actually remaining, given a minimum encoded size per element. It exists
// so a corrupted count fails as a bounded short-message error instead of
// a multi-gigabyte allocation.
func (r *rbuf) needCount(n, minBytesPer int) int {
	if n < 0 || n > r.remaining()/minBytesPer {
		panic(wireErrf("dsm: short message: count %d exceeds %d remaining bytes at offset %d of %d",
			n, r.remaining(), r.off, len(r.b)))
	}
	return n
}

func (r *rbuf) u8() uint8    { return r.need(1)[0] }
func (r *rbuf) u32() uint32  { return binary.LittleEndian.Uint32(r.need(4)) }
func (r *rbuf) u64() uint64  { return binary.LittleEndian.Uint64(r.need(8)) }
func (r *rbuf) i32() int     { return int(int32(r.u32())) }
func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *rbuf) bytes() []byte {
	// Validate the length against the bytes actually present before
	// allocating: a truncated frame must hit the bounded short-message
	// path, never size an allocation from the corrupted count.
	n := int(r.u32())
	p := r.need(n)
	out := make([]byte, n)
	copy(out, p)
	return out
}

func (r *rbuf) str() string { return string(r.bytes()) }

func (r *rbuf) done() bool { return r.off == len(r.b) }

// maxUvarint bounds decoded varint values: clock components, sequence
// numbers, page ids, and counts all fit int32, so anything larger is a
// corrupted frame.
const maxUvarint = math.MaxInt32

// uv appends v in LEB128 (unsigned varint) form: the workhorse of the v2
// compact wire encoding, where most values — sparse VC deltas, page-run
// gaps, element counts — are small.
func (w *wbuf) uv(v uint64) {
	for v >= 0x80 {
		w.b = append(w.b, byte(v)|0x80)
		v >>= 7
	}
	w.b = append(w.b, byte(v))
}

// uv decodes one LEB128 varint, bounded to maxUvarint (all v2 wire values
// fit int32; see maxUvarint). Truncation and overflow both raise the
// decoder's wireError.
func (r *rbuf) uv() uint64 {
	var v uint64
	for shift := 0; ; shift += 7 {
		b := r.need(1)[0]
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		if shift >= 28 {
			panic(wireErrf("dsm: short message: varint overflow at offset %d of %d", r.off, len(r.b)))
		}
	}
	if v > maxUvarint {
		panic(wireErrf("dsm: short message: varint %d exceeds max %d at offset %d of %d", v, uint64(maxUvarint), r.off, len(r.b)))
	}
	return v
}

// uvi is uv with the int conversion every count/index site wants.
func (r *rbuf) uvi() int { return int(r.uv()) }
