// Package dsm implements a TreadMarks-style software distributed shared
// memory system on the simulated network of workstations, as described in
// Section 4 of the paper:
//
//   - a paged global shared address space on top of per-node private
//     memories (each node owns a private copy of every page it touches;
//     nothing is shared between nodes except protocol messages),
//   - a lazy invalidate implementation of release consistency (LRC) with
//     vector clocks, intervals, and write notices,
//   - a multiple-writer protocol using twins and word-granularity diffs,
//   - the synchronization primitives of Section 4.2: centralized-manager
//     barriers, distributed locks with last-holder forwarding, condition
//     variables attached to locks, semaphores with a manager node, and the
//     OpenMP flush (kept for the paper's ablation of Section 3.2.3), and
//   - Tmk_fork / Tmk_join fork-join threading tailored to OpenMP.
//
// Access detection substitutes explicit per-access checks for the
// mprotect/SIGSEGV mechanism of real TreadMarks (which cannot coexist with
// the Go runtime); every protocol event — fault, twin creation, diff, write
// notice, invalidation — is reproduced faithfully. See DESIGN.md §1.
package dsm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// wbuf is a tiny append-only little-endian encoder for protocol messages.
// Message sizes feed the Table 2 byte statistics, so the encodings are kept
// as compact as the real protocol's.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)    { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i32(v int)     { w.u32(uint32(int32(v))) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *wbuf) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}

func (w *wbuf) str(s string) { w.bytes([]byte(s)) }

// rbuf decodes what wbuf encodes. Decoding errors indicate protocol bugs,
// so they panic rather than returning errors.
type rbuf struct {
	b   []byte
	off int
}

func (r *rbuf) need(n int) []byte {
	if r.off+n > len(r.b) {
		panic(fmt.Sprintf("dsm: short message: need %d bytes at offset %d of %d", n, r.off, len(r.b)))
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *rbuf) u8() uint8    { return r.need(1)[0] }
func (r *rbuf) u32() uint32  { return binary.LittleEndian.Uint32(r.need(4)) }
func (r *rbuf) u64() uint64  { return binary.LittleEndian.Uint64(r.need(8)) }
func (r *rbuf) i32() int     { return int(int32(r.u32())) }
func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *rbuf) bytes() []byte {
	n := int(r.u32())
	out := make([]byte, n)
	copy(out, r.need(n))
	return out
}

func (r *rbuf) str() string { return string(r.bytes()) }

func (r *rbuf) done() bool { return r.off == len(r.b) }
