package dsm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: applying makeDiff(data, twin) to a copy of twin reconstructs
// data exactly, for arbitrary page contents.
func TestDiffRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, PageSize)
		rng.Read(twin)
		data := make([]byte, PageSize)
		copy(data, twin)
		// Mutate a random set of runs.
		for k := rng.Intn(20); k >= 0; k-- {
			off := rng.Intn(PageSize)
			n := rng.Intn(PageSize - off)
			for i := 0; i < n; i++ {
				data[off+i] = byte(rng.Int())
			}
		}
		diff := makeDiff(data, twin)
		got := make([]byte, PageSize)
		copy(got, twin)
		applyDiff(got, diff)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a diff never exceeds the encoded size of the whole page plus
// one run header, and an unchanged page diffs to nothing.
func TestDiffSizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, PageSize)
		rng.Read(twin)
		same := makeDiff(twin, twin)
		if len(same) != 0 {
			return false
		}
		data := make([]byte, PageSize)
		rng.Read(data)
		diff := makeDiff(data, twin)
		return len(diff) <= PageSize+8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: diffs of disjoint modifications commute — the multiple-writer
// merge invariant. Two writers modify disjoint byte ranges of the same
// page; applying their diffs in either order gives the same result.
func TestDiffCommutativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, PageSize)
		rng.Read(base)
		// Writer A mutates the low half, writer B the high half.
		aData := make([]byte, PageSize)
		copy(aData, base)
		bData := make([]byte, PageSize)
		copy(bData, base)
		for i := 0; i < 100; i++ {
			aData[rng.Intn(PageSize/2)] = byte(rng.Int())
			bData[PageSize/2+rng.Intn(PageSize/2)] = byte(rng.Int())
		}
		da := makeDiff(aData, base)
		db := makeDiff(bData, base)

		ab := make([]byte, PageSize)
		copy(ab, base)
		applyDiff(ab, da)
		applyDiff(ab, db)

		ba := make([]byte, PageSize)
		copy(ba, base)
		applyDiff(ba, db)
		applyDiff(ba, da)
		return bytes.Equal(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: vector clock merge is commutative, idempotent, and dominant.
func TestVectorClockMergeProperties(t *testing.T) {
	f := func(xs, ys [8]uint16) bool {
		a := make(VectorClock, 8)
		b := make(VectorClock, 8)
		for i := 0; i < 8; i++ {
			a[i] = int32(xs[i])
			b[i] = int32(ys[i])
		}
		ab := a.clone()
		ab.merge(b)
		ba := b.clone()
		ba.merge(a)
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		if !a.dominatedBy(ab) || !b.dominatedBy(ab) {
			return false
		}
		again := ab.clone()
		again.merge(b)
		for i := range again {
			if again[i] != ab[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interval record encode/decode round-trips.
func TestIntervalRecordCodecProperty(t *testing.T) {
	f := func(creator uint8, seq uint16, vcs [4]uint16, pages []uint16) bool {
		ivl := &interval{
			creator: int(creator),
			seq:     int(seq),
			vc:      make(VectorClock, 4),
		}
		for i, v := range vcs {
			ivl.vc[i] = int32(v)
		}
		for _, p := range pages {
			ivl.pages = append(ivl.pages, PageID(p))
		}
		var w wbuf
		ivl.encodeRecord(&w)
		r := rbuf{b: w.b}
		got := decodeRecord(&r)
		if got.creator != ivl.creator || got.seq != ivl.seq || len(got.pages) != len(ivl.pages) {
			return false
		}
		for i := range got.pages {
			if got.pages[i] != ivl.pages[i] {
				return false
			}
		}
		for i := range got.vc {
			if got.vc[i] != ivl.vc[i] {
				return false
			}
		}
		return r.done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the codec round-trips arbitrary primitive sequences.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(a uint32, b int64, c float64, d []byte, s string) bool {
		var w wbuf
		w.u32(a)
		w.i64(b)
		w.f64(c)
		w.bytes(d)
		w.str(s)
		r := rbuf{b: w.b}
		if r.u32() != a || r.i64() != b {
			return false
		}
		if got := r.f64(); got != c && !(got != got && c != c) { // NaN-safe
			return false
		}
		if !bytes.Equal(r.bytes(), d) || r.str() != s {
			return false
		}
		return r.done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (system-level): for random sequences of barrier-separated
// scattered writes, every node converges to the same array contents as a
// sequential execution of the same writes.
func TestScatteredWriteConvergenceProperty(t *testing.T) {
	if err := quick.Check(scatteredWriteConverges(Config{}), &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same convergence holds with the acquire-epoch collector
// forced to minimal pressure under each purge policy — collection epochs
// then interleave with nearly every synchronization yet stay invisible
// to the computation (the barrier-free half of the contract lives in
// acquire_gc_test.go).
func TestScatteredWriteConvergenceWithAcquireGCProperty(t *testing.T) {
	for _, pol := range []GCPolicy{GCPolicyFlush, GCPolicyValidateHot, GCPolicyAdaptive} {
		cfg := Config{GCPressure: 2, GCPolicy: pol}
		if err := quick.Check(scatteredWriteConverges(cfg), &quick.Config{MaxCount: 8}); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

// scatteredWriteConverges builds the convergence property under a given
// GC configuration (Procs is forced to 4).
func scatteredWriteConverges(cfg Config) func(seed int64) bool {
	return func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const P = 4
		const words = 256 // spans a page boundary: 2KB…
		rounds := 1 + rng.Intn(3)
		plan := make([][]int, rounds) // word -> writer per round
		for r := range plan {
			plan[r] = make([]int, words)
			for w := range plan[r] {
				plan[r][w] = rng.Intn(P)
			}
		}
		ref := make([]int64, words)
		for r := range plan {
			for w, owner := range plan[r] {
				ref[w] = int64(r*1000 + owner*10 + w%7)
			}
		}

		cfg.Procs = P
		sys := New(cfg)
		base := sys.MallocPage(8 * words)
		sys.Register("rounds", func(n *Node, _ []byte) {
			for r := range plan {
				for w, owner := range plan[r] {
					if owner == n.ID() {
						n.WriteI64(base+Addr(8*w), int64(r*1000+owner*10+w%7))
					}
				}
				n.Barrier()
			}
		})
		okCh := true
		err := sys.Run(func(n *Node) {
			n.RunParallel("rounds", nil)
			for w := 0; w < words; w++ {
				if n.ReadI64(base+Addr(8*w)) != ref[w] {
					okCh = false
				}
			}
		})
		return err == nil && okCh
	}
}
