package dsm

import (
	"repro/internal/network"
)

// Flush implements the OpenMP flush directive the paper argues should be
// removed (Section 3.2.3): "Without knowing which thread is waiting for
// the condition, the flushing thread has to notify all other threads of
// its modifications to the shared memory. For n threads a total of
// 2(n-1) messages are sent, half of which are used for acknowledgments.
// Most of these messages are redundant and numerous threads are
// interrupted unnecessarily."
//
// It is retained here so the ablation experiments can measure exactly that
// cost against the proposed semaphores and condition variables.
func (c *Client) Flush() {
	n := c.n
	procs := n.sys.cfg.Procs
	n.mu.Lock()
	n.stats.Flushes++
	n.closeIntervalLocked()
	if procs == 1 {
		n.mu.Unlock()
		return
	}
	for j := 0; j < procs; j++ {
		if j == n.id {
			continue
		}
		var w wbuf
		n.putTrailer(&w, n.vc, n.deltaForLocked(n.knownVC[j]))
		n.noteSentLocked(j)
		// Sent under mu: atomic with the estimate update.
		n.ep.SendAt(j, msgFlush, network.ClassRequest, w.b, c.clk.Now())
	}
	n.mu.Unlock()
	for i := 0; i < procs-1; i++ {
		c.recvReply(msgFlushAck, 0)
	}
	c.gcSyncHook(true)
}

// handleFlush runs on every other node's protocol server: incorporate the
// pushed write notices (invalidating pages) and acknowledge. The
// incorporation is what lets a busy-wait reader eventually observe the
// flushed value; the interrupt charge is the "unnecessary disturbance" of
// uninvolved nodes.
func (n *Node) handleFlush(m *network.Message) {
	r := rbuf{b: m.Payload}
	senderVC, recs := n.getTrailer(&r)
	at := m.Arrive + n.sys.plat.RequestService
	n.mu.Lock()
	n.chargeInterruptLocked()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	n.mu.Unlock()
	n.ep.SendAt(m.From, msgFlushAck, network.ClassReply, nil, at)
}
