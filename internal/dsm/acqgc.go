package dsm

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/network"
)

// Acquire-epoch garbage collection for lock/semaphore/condvar programs.
//
// The barrier-epoch collector (gc.go) keys on barriers and forks, so
// applications that synchronize exclusively through locks, semaphores, and
// condition variables — TSP's critical sections, QSORT's task-queue
// condvars, Sweep3D's semaphore pipelines — accumulate interval chains for
// the whole region between forks. Real TreadMarks solves this with a
// consensus garbage collection triggered on memory pressure (Amza et al.,
// IEEE Computer '96); this file is the simulation's analogue, led by the
// synchronization managers.
//
// Every lock acquire, semaphore wait/signal, and condition-variable wait
// already carries the requesting thread's vector clock on the wire, so the
// managers collectively observe, over time, a lower bound of every node's
// clock. The componentwise minimum of those observations is a floor F with
// the property that EVERY node has incorporated every interval under F —
// exactly the global agreement Keleher's LRC garbage collection requires.
// When the retirable-interval pressure (the floor's component sum beyond
// the last issued floor) crosses Config.GCPressure, the managers announce
// an acquire epoch with floor F, piggybacked on the grant messages of
// whatever synchronization the nodes perform next; each node, on its next
// sync operation, purges its page copies up to F (per the validate-vs-
// flush policy, Config.GCPolicy), truncates per-creator interval lists
// behind ivlBase, and releases the diffs and twins of intervals retired by
// the PREVIOUS acquire epoch.
//
// Soundness is the same one-epoch-delayed free as the barrier collector,
// with an acknowledgment gate standing in for barrier quiescence:
//
//   - An announced floor F is ≤ every node's true clock at announcement
//     time (it is a min over clocks genuinely carried in sync requests),
//     so every node has stored every interval under F, and all future
//     intervals have sequence numbers above F.
//   - The coordinator announces epoch k+1 only after every node has
//     reported a purge covering EVERY floor issued so far — acquire floors
//     and collected barrier/fork-episode floors alike (gcEpochLocked feeds
//     both into the coordinator). Once every node has purged ⊇ F, no node
//     holds an unfetched write notice ≤ F, and none can ever reacquire
//     one, so the diffs of intervals under F are unreachable forever:
//     freeing them while processing epoch k+1 needs no further
//     coordination. Barrier-source frees stay safe for the symmetric
//     reason (every node purges the episode floor — which dominates every
//     previously announced acquire floor — before resuming application
//     code, and a node parked in the episode cannot fetch).
//
// In the simulation the coordinator is a System-level registry standing in
// for the managers' shared bookkeeping: the clocks it aggregates are the
// ones genuinely present in the request wire format, and the epoch
// announcements and purge acknowledgments ride messages that already flow
// (grants, acks, departures) — a few extra bytes the simulation does not
// charge separately.

// DefaultGCPressure is the acquire-epoch trigger used when Config.GCPressure
// is zero: an epoch is announced when the consensus floor would newly retire
// at least this many interval records. It is set comfortably above the
// per-episode retirement of barrier-dense applications, so programs whose
// barriers and forks already collect promptly never pay for an extra
// acquire round.
const DefaultGCPressure = 256

// GCPolicy selects how a node purges page copies that owe retired diffs at
// a collection epoch (barrier, fork, or acquire source alike). A page's
// home always validates it: the home is the page's first-copy server, and
// its copy is the base every first fetch builds on (see home.go).
type GCPolicy int

const (
	// GCPolicyDefault defers to the package default (flush, unless
	// overridden by SetGCPolicyDefault for ablations and tests).
	GCPolicyDefault GCPolicy = iota
	// GCPolicyFlush discards every stale copy outright; the next access
	// refetches the whole page from its home's validated copy. This is
	// the classic TreadMarks invalidate choice and the pre-policy
	// behaviour.
	GCPolicyFlush
	// GCPolicyValidateHot fetches and applies the retired diffs of pages
	// faulted since the last collection (hot pages — the ones the node
	// will touch again), keeping their copies; cold pages are flushed.
	GCPolicyValidateHot
	// GCPolicyAdaptive validates hot pages only when their retired-notice
	// chain is short (cheap to fetch as diffs); long chains and cold pages
	// are flushed — a whole-page refetch is cheaper than a long diff walk.
	GCPolicyAdaptive
)

// adaptiveValidateMaxChain is GCPolicyAdaptive's cutoff: a hot page owing
// at most this many retired diffs is validated, a longer chain flushed.
const adaptiveValidateMaxChain = 8

// String returns the knob spelling accepted by ParseGCPolicy.
func (p GCPolicy) String() string {
	switch p {
	case GCPolicyDefault:
		return "default"
	case GCPolicyFlush:
		return "flush"
	case GCPolicyValidateHot:
		return "validate-hot"
	case GCPolicyAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("GCPolicy(%d)", int(p))
}

// MustParseGCPolicy is ParseGCPolicy for configuration paths where an
// unknown spelling is a programming error (app Params plumbing).
func MustParseGCPolicy(s string) GCPolicy {
	p, err := ParseGCPolicy(s)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// ParseGCPolicy parses a policy knob ("", "default", "flush",
// "validate-hot", "adaptive").
func ParseGCPolicy(s string) (GCPolicy, error) {
	switch s {
	case "", "default":
		return GCPolicyDefault, nil
	case "flush":
		return GCPolicyFlush, nil
	case "validate-hot":
		return GCPolicyValidateHot, nil
	case "adaptive":
		return GCPolicyAdaptive, nil
	}
	return GCPolicyDefault, fmt.Errorf("dsm: unknown GC policy %q", s)
}

// Package defaults behind the zero Config values, overridable for
// ablations and tests (like SetGCDefault, they must not change while
// systems are running).
var (
	gcDefaultPolicy   = GCPolicyFlush
	gcDefaultPressure = DefaultGCPressure
	wireV1Default     = false
	treeConsensusOn   = true
)

// SetGCPolicyDefault sets the purge policy used by systems whose Config
// leaves GCPolicy at GCPolicyDefault, returning the previous default.
func SetGCPolicyDefault(p GCPolicy) GCPolicy {
	prev := gcDefaultPolicy
	if p != GCPolicyDefault {
		gcDefaultPolicy = p
	} else {
		gcDefaultPolicy = GCPolicyFlush
	}
	return prev
}

// SetGCPressureDefault sets the acquire-epoch pressure threshold used by
// systems whose Config leaves GCPressure at 0, returning the previous
// default. Negative disables acquire epochs by default.
func SetGCPressureDefault(n int) int {
	prev := gcDefaultPressure
	if n == 0 {
		gcDefaultPressure = DefaultGCPressure
	} else {
		gcDefaultPressure = n
	}
	return prev
}

// SetWireV1Default makes systems whose Config leaves WireV1 false run
// the pre-batching wire protocol anyway, returning the previous default.
// It lets a whole harness grid (every app, every cell) flip between the
// formats for before/after measurement without threading the knob
// through each Params struct.
func SetWireV1Default(v bool) bool {
	prev := wireV1Default
	wireV1Default = v
	return prev
}

// SetTreeConsensusDefault switches subsequently created systems between
// hierarchical consensus (push rounds and barrier departure waves routed
// through the combining tree; the default) and the flat pre-hierarchical
// transport (one datagram per destination at any machine size),
// returning the previous default. It is the before/after axis of the
// scaling measurement (`make bench-scaling`), mirroring SetWireV1Default
// for the wire formats. At ≤ fan-in+1 nodes the two transports are
// identical and the knob is a no-op.
func SetTreeConsensusDefault(v bool) bool {
	prev := treeConsensusOn
	treeConsensusOn = v
	return prev
}

// acqCoord is the acquire-epoch consensus state: the simulation stand-in
// for bookkeeping the lock/semaphore/condvar managers share. Its mutex is
// a leaf — no method touches a node's state — so nodes may call it with or
// without their own mutex held.
type acqCoord struct {
	mu       sync.Mutex
	pressure int64

	// reported[i] is the latest clock node i has carried on any sync
	// request (a sound lower bound of its true clock; clocks only grow).
	reported []VectorClock
	// purged[i] is the merged floor of every collection epoch node i has
	// completed (acquire and barrier/fork sources alike).
	purged []VectorClock
	// baseline is the merged floor of every epoch issued so far:
	// announced acquire floors plus collected episode floors. The next
	// announcement is gated on every purged[i] covering it.
	baseline VectorClock
	baseSum  int64

	announced int64 // acquire epochs announced
	pushes    int64 // consensus push rounds initiated

	// Push-round pacing: a round is started only when at least pushGap
	// reports have arrived since the last one. The gap starts at procs
	// and doubles each time a round completes without any consensus
	// progress (some thread the consensus is stuck on — say, a condvar
	// waiter whose wake depends on the pressured thread itself — cannot
	// be helped by more messages), resetting once progress resumes; a
	// pressured node can therefore never storm the quiet ones.
	reports   int64
	pushStamp int64
	pushGap   int64
	pushProg  int64 // progressLocked() at the last push round

	// gate ≥ 0 names a node that must purge every issued floor before any
	// other node is handed it — the node-0-homes configuration, where one
	// node's copy is the rebuild base of every flushed page. Sharded home
	// policies pass -1: the per-page flush gate (the homePurged registry,
	// see home.go) replaces the global ordering.
	gate int
}

func newAcqCoord(procs int, pressure int, gate int) *acqCoord {
	co := &acqCoord{pressure: int64(pressure), baseline: newVC(procs), pushGap: int64(procs), gate: gate}
	for i := 0; i < procs; i++ {
		co.reported = append(co.reported, newVC(procs))
		co.purged = append(co.purged, newVC(procs))
	}
	return co
}

// progressLocked is a monotone scalar that advances whenever any node
// purges or an epoch is announced — what the backpressure loop and the
// push backoff watch to distinguish "consensus under way" from
// "consensus stuck on a thread only the application can unblock".
func (co *acqCoord) progressLocked() int64 {
	p := co.announced
	for _, v := range co.purged {
		p += v.sum()
	}
	return p
}

// progress is progressLocked under the coordinator lock.
func (co *acqCoord) progress() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.progressLocked()
}

// report records node id's clock as carried on a sync request and runs
// the announcement check. It returns the floor of an issued epoch id has
// not yet purged (if any), plus the set of quiet peers id should push a
// consensus-sync delta to (nil outside a push round): nodes whose stale
// clocks hold the consensus floor back, or whose missing purge
// acknowledgment gates the next announcement, while retirable pressure
// has built past the threshold. The push — TreadMarks' "interrupt every
// process for the consensus" — is what lets programs whose other threads
// sit parked on a condition variable or semaphore still retire the busy
// thread's interval chains.
// wantPush must be FALSE for callers that will not actually send the
// returned deltas (the server-side handler): a push round's pacing state
// (pushStamp, pushGap backoff) is consumed when the round is issued, and
// consuming it without sending would silently swallow the round.
func (co *acqCoord) report(id int, vc VectorClock, wantPush bool) (floor VectorClock, pending bool, push []int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.reports++
	co.reported[id].merge(vc)
	co.maybeAnnounceLocked()
	// Ordering gate. With a gate node (node-0 homes) that node processes
	// every epoch FIRST: a non-gate purge may flush a copy and later
	// rebuild it from the gate's, so the gate's copy must already reflect
	// every write under the floor by then — the ordering a barrier
	// provides structurally (the root validates before any departure) and
	// the acquire consensus must impose explicitly. Sharded homes need no
	// global order: every purge consults the per-page flush gate (the
	// homePurged registry), which enforces home-validates-first page by
	// page, so any node may be handed a pending floor immediately.
	if !co.baseline.dominatedBy(co.purged[id]) &&
		(co.gate < 0 || id == co.gate || co.baseline.dominatedBy(co.purged[co.gate])) {
		floor = co.baseline.clone()
		pending = true
	}
	// Push-round check: raw pressure counts every interval any node has
	// reported beyond the issued baseline — the metadata actually
	// accumulating somewhere — while the announcement path is blocked
	// (floor held back by stale clocks, or gate held by missing purges).
	if !wantPush || co.reports-co.pushStamp < co.pushGap {
		return floor, pending, nil
	}
	raw := int64(0)
	union := co.reported[0].clone()
	for _, r := range co.reported[1:] {
		union.merge(r)
	}
	raw = union.sum() - co.baseSum
	if raw < co.pressure {
		return floor, pending, nil
	}
	for i := range co.reported {
		if i == id {
			continue
		}
		if !union.dominatedBy(co.reported[i]) || !co.baseline.dominatedBy(co.purged[i]) {
			push = append(push, i)
		}
	}
	if push != nil {
		co.pushStamp = co.reports
		co.pushes++
		if prog := co.progressLocked(); prog == co.pushProg {
			if co.pushGap < 1024*int64(len(co.reported)) {
				co.pushGap *= 2
			}
		} else {
			co.pushGap = int64(len(co.reported))
			co.pushProg = prog
		}
	}
	return floor, pending, push
}

// pendingFloorFor returns the floor of an issued epoch node id has not
// yet purged, honoring the gate ordering — report()'s pending condition
// without registering a report or consuming push pacing. Frame senders
// use it to piggyback a msgGCFloor announcement onto a consensus delta
// already bound for the peer, so a quiet node learns of the epoch one
// datagram earlier than its own next sync operation would.
func (co *acqCoord) pendingFloorFor(id int) (VectorClock, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if !co.baseline.dominatedBy(co.purged[id]) &&
		(co.gate < 0 || id == co.gate || co.baseline.dominatedBy(co.purged[co.gate])) {
		return co.baseline.clone(), true
	}
	return nil, false
}

// maybeAnnounceLocked issues a new acquire epoch when (a) every node has
// purged everything issued so far — the acknowledgment gate that makes the
// one-epoch-delayed free sound, and blocks announcements while a barrier
// episode's purges are still in flight — and (b) the consensus floor would
// newly retire at least the pressure threshold.
func (co *acqCoord) maybeAnnounceLocked() {
	for _, p := range co.purged {
		if !co.baseline.dominatedBy(p) {
			return
		}
	}
	cand := co.reported[0].clone()
	for _, r := range co.reported[1:] {
		for i, v := range r {
			if v < cand[i] {
				cand[i] = v
			}
		}
	}
	// Monotone: every floor already issued is ≤ every node's true clock,
	// so merging keeps cand a sound global floor.
	cand.merge(co.baseline)
	if cand.sum()-co.baseSum < co.pressure {
		return
	}
	co.baseline = cand
	co.baseSum = cand.sum()
	co.announced++
}

// notePurged records that node id has completed a collection epoch with
// the given floor (its copies owe no diff under it, and never will again).
func (co *acqCoord) notePurged(id int, floor VectorClock) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.purged[id].merge(floor)
	// A node's clock dominates any floor it purged.
	co.reported[id].merge(floor)
}

// noteIssued folds a collected barrier/fork-episode floor into the
// baseline (called by node 0 when it decides an episode collects, BEFORE
// any departure or fork goes out): announcements stay blocked until every
// node has processed the episode, and episode-driven retirement does not
// count toward acquire pressure.
func (co *acqCoord) noteIssued(floor VectorClock) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.baseline.merge(floor)
	co.baseSum = co.baseline.sum()
}

// announcedCount returns the number of acquire epochs issued so far.
func (co *acqCoord) announcedCount() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.announced
}

// gcTreeConsensus reports whether consensus pushes route through the
// combining tree instead of directly to every target: wire v2 with more
// nodes than the flat barrier spans (procs > fanin+1), unless the
// SetTreeConsensusDefault measurement knob forced the flat transport. At
// or below that size the tree is flat — every node is at most one hop
// from the root — and direct sends already ARE the degenerate tree
// routing, so the paper-scale paths stay byte-identical.
func (n *Node) gcTreeConsensus() bool {
	return !n.wireV1 && n.sys.treeGC && n.sys.cfg.Procs > n.sys.fanin+1
}

// routeTargetsLocked groups consensus destinations by their first
// combining-tree hop from this node, dropping the node itself. Hops come
// back sorted so send order is deterministic. byHop[h] lists the FINAL
// destinations to be relayed past h — h itself, always a recipient of
// the frame, is not in its own list.
func (n *Node) routeTargetsLocked(targets []int) (hops []int, byHop map[int][]int) {
	byHop = make(map[int][]int, len(targets))
	for _, t := range targets {
		if t == n.id {
			continue
		}
		h := routeHop(n.id, t, n.sys.fanin)
		if _, seen := byHop[h]; !seen {
			hops = append(hops, h)
			byHop[h] = nil
		}
		if t != h {
			byHop[h] = append(byHop[h], t)
		}
	}
	sort.Ints(hops)
	return hops, byHop
}

// consensusFrameLocked assembles one tree-routed consensus frame bound
// for hop: a msgGCSync sub carrying the trailer delta against the hop's
// piggyback estimate plus the varint relay list of destinations past the
// hop (appended after the trailer; a flat or reverse delta simply has no
// trailing bytes), and a msgGCFloor sub when the hop owes an issued
// epoch. The hop incorporates the delta and forwards each remaining
// destination one hop onward with a delta recomputed from its own merged
// clocks — the interior-node merging that caps any node's per-round
// consensus fan-out at its tree degree instead of the machine size.
// Requires n.mu.
func (n *Node) consensusFrameLocked(hop int, relay []int) *frameBuilder {
	var w wbuf
	n.putTrailer(&w, n.vc, n.deltaForLocked(n.knownVC[hop]))
	if len(relay) > 0 {
		w.uv(uint64(len(relay)))
		for _, t := range relay {
			w.uv(uint64(t))
		}
	}
	f := n.newFrame()
	f.add(msgGCSync, w.b)
	if co := n.sys.acq; co != nil {
		if floor, ok := co.pendingFloorFor(hop); ok {
			var fw wbuf
			n.putVC(&fw, floor)
			f.add(msgGCFloor, fw.b)
		}
	}
	return f
}

// gcSpinTries bounds the backpressure loop of gcSyncHook: a pressured
// node yields at most this many times waiting for the consensus to catch
// up, so a consensus stalled on a thread that only this node can unblock
// (e.g. a condvar waiter expecting our signal) can never livelock the
// application.
const gcSpinTries = 4096

// gcSyncHook runs after every application-side synchronization operation:
// it reports the calling thread's clock to the coordinator (the clock is
// genuinely on the wire in the operation's request), processes any
// announced epoch this node has not purged yet — the node's side of the
// epoch consensus, piggybacked on the operation's grant — and, when the
// coordinator asks for a push round, sends consensus-sync deltas to the
// quiet nodes holding the floor back. While this node's own retained
// chain sits far past the trigger, the hook additionally applies
// backpressure, yielding the processor so the peers' protocol servers can
// take their side of the consensus (real TreadMarks stalls the allocating
// process until the garbage-collection consensus completes); the chain
// peak therefore stays bounded by the trigger, not by how fast one
// thread can race ahead of the scheduler. Must be called WITHOUT n.mu
// held.
//
// spin must be FALSE at call sites where the application still holds a
// lock (the tail of Acquire and CondWait, condition notifies): stalling
// there stretches the critical section, piles island-mates onto the
// local handoff queue — whose priority over the global chain would then
// starve every other island's acquire, freezing the very consensus the
// backpressure is waiting for (a livelock the hybrid TSP surfaced).
// Release/semaphore/flush tails hold nothing and are where the
// backpressure lives.
func (c *Client) gcSyncHook(spin bool) {
	n := c.n
	co := n.sys.acq
	if co == nil {
		return
	}
	c.gcSyncOnce()
	if !spin {
		return
	}
	limit := 4 * co.pressure
	if int64(c.retainedChain()) <= limit {
		return
	}
	// Backpressure: yield while the consensus is demonstrably advancing
	// (nodes purging, epochs announcing), re-running a consensus step
	// every few yields. A consensus stuck on a thread only the
	// application can unblock — a condvar waiter whose wake depends on
	// this very thread — makes no progress, and the loop gives up after
	// a short grace instead of stalling the application (or flooding the
	// wire with retries; see pushGap).
	prog := co.progress()
	stuck := 0
	for try := 0; try < gcSpinTries; try++ {
		select {
		case <-n.sys.done:
			panic(abortError{cause: "switch shut down"})
		default:
		}
		runtime.Gosched()
		if try%8 != 7 {
			continue
		}
		c.gcSyncOnce()
		if int64(c.retainedChain()) <= limit {
			return
		}
		if p := co.progress(); p != prog {
			prog, stuck = p, 0
		} else if stuck++; stuck >= 8 {
			return
		}
	}
}

// retainedChain returns the node's longest retained per-creator interval
// list — what the backpressure loop bounds.
func (c *Client) retainedChain() int {
	n := c.n
	n.mu.Lock()
	defer n.mu.Unlock()
	chain := 0
	for _, have := range n.intervals {
		if len(have) > chain {
			chain = len(have)
		}
	}
	return chain
}

// gcSyncOnce is one consensus step: report, process a pending epoch, send
// any requested push deltas.
func (c *Client) gcSyncOnce() {
	n := c.n
	co := n.sys.acq
	n.mu.Lock()
	vc := n.vc.clone()
	n.mu.Unlock()
	floor, pending, push := co.report(n.id, vc, true)
	if pending {
		n.mu.Lock()
		done := n.acqEpochLocked(c, floor)
		n.mu.Unlock()
		if done {
			// Only the client that actually ran the purge acknowledges:
			// the coordinator free-gates on this, and an island-mate that
			// found the epoch already claimed must not vouch for an
			// unfinished purge.
			co.notePurged(n.id, floor)
		}
	}
	if len(push) > 0 && n.gcTreeConsensus() {
		// Hierarchical push: instead of one datagram per quiet node —
		// O(P) from the pusher every round, O(P²) consensus traffic as
		// rounds scale with the node count — route the round through the
		// combining tree. The pusher sends ONE frame per first hop
		// (children subtrees and the parent, at most fanin+1 of them);
		// each hop incorporates the delta and relays the destinations
		// beyond it with deltas recomputed from its own merged state, so
		// every node's per-round fan-out is bounded by its tree degree
		// and round traffic totals O(P) frames along tree edges.
		n.mu.Lock()
		hops, byHop := n.routeTargetsLocked(push)
		for _, h := range hops {
			f := n.consensusFrameLocked(h, byHop[h])
			n.noteSentLocked(h)
			n.stats.GCSyncPushes++
			// Sent under mu: atomic with the estimate update.
			f.sendAt(h, c.clk.Now())
		}
		n.mu.Unlock()
		return
	}
	for _, j := range push {
		// One delta per quiet node, exactly like a flush notice: their
		// servers incorporate it in wire order, raising their clocks past
		// the pressured node's intervals so the consensus floor can
		// advance without waiting for their application threads.
		n.mu.Lock()
		if n.wireV1 {
			var w wbuf
			w.vc(n.vc)
			encodeRecords(&w, n.deltaForLocked(n.knownVC[j]))
			n.noteSentLocked(j)
			n.stats.GCSyncPushes++
			// Sent under mu: atomic with the estimate update.
			n.ep.SendAt(j, msgGCSync, network.ClassRequest, w.b, c.clk.Now())
			n.mu.Unlock()
			continue
		}
		// v2: coalesce the push delta with a pending-floor announcement
		// for the same peer into one frame, so a quiet node both raises
		// its clock and learns of the epoch it owes in a single datagram.
		var w wbuf
		n.putTrailer(&w, n.vc, n.deltaForLocked(n.knownVC[j]))
		f := n.newFrame()
		f.add(msgGCSync, w.b)
		if floor, ok := co.pendingFloorFor(j); ok {
			var fw wbuf
			n.putVC(&fw, floor)
			f.add(msgGCFloor, fw.b)
		}
		n.noteSentLocked(j)
		n.stats.GCSyncPushes++
		// Sent under mu: atomic with the estimate update.
		f.sendAt(j, c.clk.Now())
		n.mu.Unlock()
	}
}

// handleGCSync runs on a quiet node's protocol server: incorporate the
// pushed delta (raising this node's clock), report the new clock, and —
// if an issued epoch is pending here and no application fetch is in
// flight — run it flush-only right now, so a node parked on a condition
// variable or deep in a compute phase neither holds the consensus floor
// nor gates the next announcement. The gate node (node-0 homes) never
// collects in server context: its purge must validate (fetch diffs),
// which a server cannot block on; its application-thread hook runs the
// epoch instead. Under sharded homes the same deferral happens per page
// through gcCanFlushAllLocked: a node homing covered-owing pages, or
// holding pages whose home has not purged the floor, leaves the epoch to
// its application thread.
func (n *Node) handleGCSync(m *network.Message) {
	r := rbuf{b: m.Payload}
	senderVC, recs := n.getTrailer(&r)
	// Tree-routed pushes append the varint relay list after the trailer
	// (v2 only; flat pushes and reverse deltas end with the trailer).
	var relay []int
	if !n.wireV1 && !r.done() {
		cnt := r.needCount(r.uvi(), 1)
		relay = make([]int, cnt)
		for i := range relay {
			t := r.uvi()
			if t >= n.sys.cfg.Procs {
				panic(wireErrf("dsm: node %d: consensus relay target %d outside %d-node system",
					n.id, t, n.sys.cfg.Procs))
			}
			relay[i] = t
		}
	}
	at := m.Arrive + n.sys.plat.RequestService
	n.mu.Lock()
	n.chargeInterruptLocked()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	vc := n.vc.clone()
	// Reverse delta: a quiet node's own last intervals have never been
	// carried anywhere (deltas only travel on sends, and it is not
	// sending), so the consensus floor could never cover its writes. The
	// exchange makes the push a two-way clock-and-notice swap, exactly
	// TreadMarks' consensus round; it stops as soon as both sides are
	// current (an empty delta sends nothing).
	back := n.deltaForLocked(n.knownVC[m.From])
	if n.wireV1 {
		if len(back) > 0 {
			var w wbuf
			w.vc(n.vc)
			encodeRecords(&w, back)
			// Non-blocking: a server must NEVER block on a peer's bounded
			// request queue (two servers mutually blocked sending into each
			// other's full inboxes would stall every grant in the system). A
			// dropped reverse delta only delays the consensus floor — the
			// next push round retries — and the knownVC estimate is updated
			// only when the send actually happened, keeping the gap-free
			// delta invariant.
			if n.ep.TrySendAt(m.From, msgGCSync, network.ClassRequest, w.b, at) {
				n.noteSentLocked(m.From)
				n.stats.GCSyncPushes++
			}
		}
	} else {
		// v2: frame the reverse delta with a pending-floor announcement
		// for the pusher, when it owes one. Delivery is all-or-nothing per
		// envelope, and the knownVC estimate advances ONLY when the frame
		// that actually carries the delta went out — a dropped frame must
		// not leave the estimate vouching for sub-messages no peer ever
		// received (the same invariant as the unbatched TrySendAt path,
		// re-checked per envelope).
		f := n.newFrame()
		if len(back) > 0 {
			var w wbuf
			n.putTrailer(&w, n.vc, back)
			f.add(msgGCSync, w.b)
		}
		if co := n.sys.acq; co != nil {
			if floor, ok := co.pendingFloorFor(m.From); ok {
				var fw wbuf
				n.putVC(&fw, floor)
				f.add(msgGCFloor, fw.b)
			}
		}
		if f.count() > 0 && f.trySendAt(m.From, at) && len(back) > 0 {
			n.noteSentLocked(m.From)
			n.stats.GCSyncPushes++
		}
		// Tree relay: the pusher handed this node the destinations whose
		// first hop is here; forward each remaining destination one hop
		// onward. The forwarded trailer is recomputed from OUR clocks —
		// the pushed records were incorporated above, so the relayed
		// delta covers everything the pusher wanted propagated (interior-
		// node merging), and it additionally closes any gap between this
		// node and the next hop. Non-blocking like the reverse delta: a
		// dropped frame only delays the floor, and the pusher's next
		// paced round retries; the estimate advances only on real sends.
		if len(relay) > 0 && n.gcTreeConsensus() {
			hops, byHop := n.routeTargetsLocked(relay)
			for _, h := range hops {
				rf := n.consensusFrameLocked(h, byHop[h])
				if rf.trySendAt(h, at) {
					n.noteSentLocked(h)
					n.stats.GCSyncRelays++
				}
			}
		}
	}
	n.mu.Unlock()
	n.gcFloorAttemptServer(vc)
}

// handleGCFloor runs on a node's protocol server when a peer piggybacked
// a pending-floor announcement onto a consensus frame: attempt the
// server-side epoch right away instead of waiting for this node's next
// sync operation. The decoded floor keeps the announcement honest on the
// wire (its bytes are charged as GC-consensus traffic), but the
// coordinator registry remains authoritative for which floor this node
// actually owes — a stale frame can never start a purge the registry
// would not hand out itself.
func (n *Node) handleGCFloor(m *network.Message) {
	r := rbuf{b: m.Payload}
	_ = n.getVC(&r)
	n.mu.Lock()
	n.chargeInterruptLocked()
	vc := n.vc.clone()
	n.mu.Unlock()
	n.gcFloorAttemptServer(vc)
}

// gcFloorAttemptServer is the server-side epoch attempt shared by
// handleGCSync and handleGCFloor: report the node's clock, and if an
// issued epoch is pending here and no application fetch is in flight,
// run it flush-only right now.
func (n *Node) gcFloorAttemptServer(vc VectorClock) {
	co := n.sys.acq
	if co == nil {
		return
	}
	floor, pending, _ := co.report(n.id, vc, false)
	if !pending || n.id == co.gate {
		return
	}
	// The TryLock is load-bearing: if the application thread is mid-fetch
	// (it holds fetchMu), a server-side purge could discard notices whose
	// diffs that fetch is about to request, opening the free-after-fetch
	// race the fetch lock exists to prevent. When the node is busy we
	// simply skip — a busy node's own hook processes the epoch shortly.
	if !n.fetchMu.TryLock() {
		return
	}
	n.mu.Lock()
	//nowlint:allow lockorder -- acqEpoch with serverSide=true swaps the purge closure for the flush-only gcFlushCoveredLocked before running it, so the gcPurgePagesLocked path that re-takes fetchMu is unreachable under this TryLock; the analyzer cannot see past the value dependency
	done := n.acqEpochServerLocked(floor)
	n.mu.Unlock()
	n.fetchMu.Unlock()
	if done {
		co.notePurged(n.id, floor)
	}
}

// acqEpochLocked processes one announced acquire epoch on this node: free
// what the PREVIOUS acquire epoch retired, purge page copies up to the new
// floor per the policy, and advance the floor. Requires n.mu; the purge
// may release and reacquire it around its diff-fetch wave. Returns false
// if the floor was already covered (an island-mate claimed the epoch, or a
// barrier episode superseded it).
func (n *Node) acqEpochLocked(c *Client, floor VectorClock) bool {
	return n.acqEpoch(c, floor, false)
}

// acqEpochServerLocked is the protocol-server variant used by the
// consensus push (handleGCSync): the purge is flush-only and never
// releases n.mu — a server cannot block on network replies. The caller
// must hold BOTH n.mu and fetchMu.
func (n *Node) acqEpochServerLocked(floor VectorClock) bool {
	return n.acqEpoch(nil, floor, true)
}

func (n *Node) acqEpoch(c *Client, floor VectorClock, serverSide bool) bool {
	if n.gcPurgeVC != nil && floor.dominatedBy(n.gcPurgeVC) {
		return false
	}
	if serverSide {
		if !n.gcCanFlushAllLocked(floor) {
			// Some covered-owing copy cannot be flushed — it holds own
			// writes above the floor, is homed here (homes must validate),
			// or its home has not purged the floor yet — and a validating
			// purge fetches diffs, which a server cannot block on. Leave
			// the epoch to the application thread.
			return false
		}
		if !floor.dominatedBy(n.vc) {
			// A stale push raced a just-issued barrier/fork episode: node
			// 0 folds the episode floor into the coordinator baseline
			// BEFORE this node's departure/fork delta arrives, so a push
			// processed in that window hands us a floor covering intervals
			// we have not incorporated yet. The episode delivery itself
			// will purge past this floor moments later; skip.
			return false
		}
	} else if !floor.dominatedBy(n.vc) {
		// Impossible on the application thread: the floor is a min over
		// reported clocks (ours included) merged with episode floors whose
		// episodes this thread has already processed.
		panic(fmt.Sprintf("dsm: node %d acquire-epoch floor %v above local clock %v", n.id, floor, n.vc))
	}
	purge := func() { n.gcPurgePagesLocked(c, floor, floor, false) }
	if serverSide {
		// A node reached by a push is quiet — parked on a condition
		// variable or deep in a compute phase — so its covered copies are
		// cold: the policy question answers itself, and flushing needs no
		// network.
		purge = func() { n.gcFlushCoveredLocked(floor) }
	}
	n.gcCollectLocked(&n.gcAcqFreeVC, floor, purge)
	n.stats.GCAcqEpochs++
	return true
}
