package dsm

import (
	"fmt"

	"repro/internal/sim"
)

// Barrier-epoch garbage collection of lazy-release-consistency metadata.
//
// Without collection, intervals, write notices, encoded diffs, and twins
// accumulate for the whole run: protocol memory grows without bound and
// every fault walks ever-longer chains. Real TreadMarks reclaims this
// state at global synchronization points; this file is the simulation's
// analogue, keyed to barriers because a barrier is the one moment the
// system is provably quiescent — every application thread is parked
// inside Barrier(), so no fault, lock grant, or delta is in flight.
//
// One epoch runs per global synchronization episode — each barrier and
// each fork (the region boundary that is OpenMP's implicit barrier) —
// in three steps on every node:
//
//  1. FREE the interval records retired at the PREVIOUS epoch (the
//     retire floor saved in gcFreeVC). The one-epoch delay is what makes
//     freeing safe without extra message rounds: diffs of intervals
//     retired at epoch k may still be fetched DURING epoch k by the
//     manager's validation pass, but after every node has finished epoch
//     k no reference to them exists anywhere, so epoch k+1 can free them
//     with no coordination.
//
//  2. PURGE page references covered by the new retire floor — node 0's
//     merged vector clock at the episode, which covers every interval in
//     existence there, all of them incorporated by every node by the
//     time it processes its departure (or fork). Node 0 (the page
//     server, whose copy must stay authoritative) VALIDATES: it fetches
//     and applies every pending diff, bringing each of its copies
//     current. Other nodes FLUSH: they discard the stale copy outright
//     and refault it from node 0's validated copy on next access — the
//     classic validate-vs-invalidate choice of TreadMarks GC.
//
//     The floor is always node 0's clock AS CARRIED IN THE EPISODE'S
//     MESSAGE, never the local clock: a node's protocol server may
//     already have incorporated intervals that a faster peer created
//     AFTER leaving this same episode, and a floor read from the local
//     clock would cover them before the rest of the system has them —
//     epoch floors must be identical on every node for the one-epoch
//     free delay to be sound.
//
//  3. RELEASE diff sources: encoded diffs and still-unencoded twins of
//     the node's own retired intervals. Ordering makes this safe with no
//     acknowledgment: the manager validates BEFORE sending any
//     departure, and a non-manager purges only AFTER processing its
//     departure, so by the time any node reaches this step every fetch
//     that could want these diffs has already been served. A twin that
//     is still unencoded here was never needed at all and is released
//     without ever paying for diff creation.
//
// Finally the knownVC estimates are raised to the freed floor (every
// node provably incorporated everything under it one epoch ago), and the
// floor advances. Locks, semaphores, and condition variables need no
// special handling: a thread blocked on any of them keeps the barrier —
// and therefore the collector — from running at all.

// epochFloor tracks one episode's floor (and trigger-decision) agreement
// across nodes.
type epochFloor struct {
	floor   VectorClock
	collect bool
	seen    int
}

// gcDefault gates the collector for systems whose Config does not set
// DisableGC. It exists for the GC ablation and the GC-off equivalence
// suite; it must not be flipped while systems are running.
var gcDefault = true

// SetGCDefault enables or disables barrier-epoch garbage collection for
// subsequently created systems (ablations and tests only).
func SetGCDefault(on bool) { gcDefault = on }

// checkEpochFloor verifies that every node presents the identical retire
// floor — and reaches the identical collect-or-skip decision — for a
// given episode index: the first node to reach the episode records its
// view, the rest must match, and the record is dropped once all have
// checked in (so the tripwire itself retains nothing).
func (s *System) checkEpochFloor(episode int64, id int, floor VectorClock, collect bool) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	e, ok := s.gcFloors[episode]
	if !ok {
		e = &epochFloor{floor: floor.clone(), collect: collect}
		s.gcFloors[episode] = e
	} else {
		for i, v := range e.floor {
			if floor[i] != v {
				panic(fmt.Sprintf("dsm: node %d GC episode %d floor %v diverges from %v",
					id, episode, floor, e.floor))
			}
		}
		if collect != e.collect {
			panic(fmt.Sprintf("dsm: node %d GC episode %d trigger decision %v diverges from %v",
				id, episode, collect, e.collect))
		}
	}
	e.seen++
	if e.seen == s.cfg.Procs {
		delete(s.gcFloors, episode)
	}
}

// ivlRecordBytes estimates the retained footprint of one interval record:
// struct header, vector clock, and write-notice page list.
func ivlRecordBytes(ivl *interval) int64 {
	return int64(48 + 4*len(ivl.vc) + 8*len(ivl.pages))
}

// gcEpochLocked runs one synchronization episode of the collector with
// the given retire floor: it decides — identically on every node —
// whether to collect, and if so runs the epoch. It requires n.mu and —
// on node 0 only — releases and reacquires it while diff fetches are in
// flight. Node 0 calls it at each barrier (after incorporating every
// arrival, before sending any departure) and at each fork (before
// sending the fork messages), passing its own clock; every other node
// calls it immediately after incorporating the matching departure or
// fork delta, passing the clock that message carried — the identical
// floor.
//
// Adaptive triggering (Config.GCMinRetire): collecting at EVERY episode
// costs ~25% on barrier-dense workloads (see `nowbench -ablation gc`),
// mostly in the manager's validation pause. The trigger predicate is the
// number of interval records the floor would newly retire — the floor's
// component sum minus the last collection's — and the epoch runs only
// when it reaches the threshold. Both sums derive exclusively from
// floors, which are identical on every node by construction, so every
// node skips and collects the same episodes with no extra coordination;
// checkEpochFloor tripwires that agreement.
func (n *Node) gcEpochLocked(c *Client, retire VectorClock) {
	episode := n.stats.GCEpisodes
	n.stats.GCEpisodes++
	pending := retire.sum()
	if n.gcFreeVC != nil {
		pending -= n.gcFreeVC.sum()
	}
	collect := pending >= int64(n.sys.cfg.GCMinRetire)
	// Soundness tripwire: all nodes must agree on every episode's floor
	// and trigger decision (they run the same episode sequence), or the
	// one-epoch free delay breaks. Divergence here means a caller derived
	// a floor from state that is not identical on every node.
	n.sys.checkEpochFloor(episode, n.id, retire, collect)
	if !collect {
		return
	}

	n.freeRetiredLocked()
	if n.id == 0 {
		n.gcValidatePagesLocked(c, retire)
	} else {
		n.gcFlushPagesLocked(retire)
	}
	n.gcReleaseDiffSourcesLocked()

	// Raise the piggyback-delta estimates to the freed floor: everything
	// under it was incorporated by every node before the previous epoch
	// ended. (deltaForLocked additionally clamps to the retained base,
	// so this is an optimization, not a soundness requirement.)
	if n.gcFreeVC != nil {
		for j := range n.knownVC {
			if j != n.id {
				n.knownVC[j].merge(n.gcFreeVC)
			}
		}
	}
	n.gcFreeVC = retire
	n.stats.GCEpochs++

	// Prune the work list: only pages still owing uncovered notices stay
	// (twins and covered notices were just released). Clearing the tail
	// drops the pruned pages' references.
	kept := n.gcPages[:0]
	for _, pg := range n.gcPages {
		if len(pg.missing) > 0 || pg.twin != nil {
			kept = append(kept, pg)
		} else {
			pg.inGCList = false
		}
	}
	for i := len(kept); i < len(n.gcPages); i++ {
		n.gcPages[i] = nil
	}
	n.gcPages = kept
}

// freeRetiredLocked truncates every per-creator interval list up to the
// previous epoch's retire floor.
func (n *Node) freeRetiredLocked() {
	free := n.gcFreeVC
	if free == nil {
		return // first epoch: nothing retired yet
	}
	for c := range n.intervals {
		have := n.intervals[c]
		drop := int(free[c]) - n.ivlBase[c]
		if drop <= 0 {
			continue
		}
		if drop > len(have) {
			panic(fmt.Sprintf("dsm: node %d freeing %d intervals of creator %d but only %d retained",
				n.id, drop, c, len(have)))
		}
		for _, ivl := range have[:drop] {
			n.protoAddLocked(-ivlRecordBytes(ivl))
			for _, d := range ivl.diffs { // normally already released in step 3
				n.protoAddLocked(-int64(len(d)))
			}
		}
		// Copy to a fresh slice so the freed records' backing array is
		// actually reclaimable.
		n.intervals[c] = append(make([]*interval, 0, len(have)-drop), have[drop:]...)
		n.ivlBase[c] += drop
		n.stats.IntervalsRetired += int64(drop)
	}
}

// gcValidatePagesLocked is the manager's purge: every work-list page
// with pending write notices is brought current by fetching and applying the noticed
// diffs, exactly as a fault would but with all pages' requests issued in
// one parallel wave. Releases and reacquires n.mu around the network
// section; this is safe because every other application thread is parked
// awaiting its departure, leaving only protocol servers active.
func (n *Node) gcValidatePagesLocked(c *Client, retire VectorClock) {
	type pageWork struct {
		pg    *page
		fetch []*interval
	}
	var work []pageWork
	for _, pg := range n.gcPages {
		if len(pg.missing) == 0 {
			continue
		}
		for _, m := range pg.missing {
			if !retire.covers(m.creator, m.seq) {
				// Impossible before departures are sent: no node is
				// running application code that could create intervals.
				panic(fmt.Sprintf("dsm: manager GC found uncovered notice (%d,%d)", m.creator, m.seq))
			}
		}
		if pg.data == nil {
			// The allocator's copy materializes as zeros; the complete
			// notice history accumulated since allocation brings it
			// current.
			pg.data = make([]byte, PageSize)
		}
		fetch := make([]*interval, len(pg.missing))
		copy(fetch, pg.missing)
		work = append(work, pageWork{pg: pg, fetch: fetch})
	}
	if len(work) == 0 {
		return
	}

	// Issue every batched diff request back to back, then collect all
	// replies; virtual time advances to the latest arrival, modelling
	// the parallel validation sweep.
	requests := 0
	for _, w := range work {
		requests += c.sendDiffRequests(w.pg.id, w.fetch)
	}

	n.mu.Unlock()                                    // --- network section: servers may run meanwhile ---
	diffs := make(map[PageID]map[int]map[int][]byte) // page -> creator -> seq -> diff
	for i := 0; i < requests; i++ {
		pid, from, bySeq := c.recvDiffReply()
		if diffs[pid] == nil {
			diffs[pid] = make(map[int]map[int][]byte)
		}
		diffs[pid][from] = bySeq
	}
	n.mu.Lock() // --- end network section ---

	plat := n.sys.plat
	for _, w := range work {
		sortCausal(w.fetch)
		for _, ivl := range w.fetch {
			d, ok := diffs[w.pg.id][ivl.creator][ivl.seq]
			if !ok {
				panic(fmt.Sprintf("dsm: GC validation missing diff (%d,%d) for page %d", ivl.creator, ivl.seq, w.pg.id))
			}
			applied := applyDiff(w.pg.data, d)
			n.stats.DiffsApplied++
			c.clk.Advance(plat.DiffApply + sim.Time(float64(applied)*plat.DiffApplyPerByte))
		}
		w.pg.missing = w.pg.missing[:0]
		if w.pg.state == pageInvalid {
			w.pg.state = pageReadOnly
		}
		n.stats.GCPagesValidated++
	}
}

// gcFlushPagesLocked is the non-manager purge: any copy still owing
// retired diffs is discarded wholesale; the next access refetches it from
// the manager's validated copy. Notices from intervals newer than the
// retire floor (possible only on nodes that resumed from this barrier
// early and already synchronized with us) are preserved.
func (n *Node) gcFlushPagesLocked(retire VectorClock) {
	for _, pg := range n.gcPages {
		if len(pg.missing) == 0 {
			continue
		}
		keep := pg.missing[:0]
		dropped := false
		for _, m := range pg.missing {
			if retire.covers(m.creator, m.seq) {
				dropped = true
			} else {
				keep = append(keep, m)
			}
		}
		pg.missing = keep
		if !dropped {
			continue
		}
		// A page owing retired diffs cannot carry local modifications
		// (invalidation encodes any pending diff and drops the twin), so
		// discarding the copy loses nothing.
		if pg.twin != nil || pg.inDirty {
			panic(fmt.Sprintf("dsm: node %d GC flushing page %d with live twin", n.id, pg.id))
		}
		pg.data = nil
		pg.state = pageInvalid
		n.stats.GCPagesFlushed++
	}
}

// gcReleaseDiffSourcesLocked drops the node's own encoded diffs and
// remaining twins. At this point every interval in existence is covered
// by the retire floor and every fetch that could want these diffs has
// completed (see the ordering argument in the file comment).
func (n *Node) gcReleaseDiffSourcesLocked() {
	for _, pg := range n.gcPages {
		if pg.twin == nil {
			continue
		}
		if pg.twinIvl == nil {
			panic(fmt.Sprintf("dsm: node %d GC found open-interval twin for page %d at barrier", n.id, pg.id))
		}
		pg.twinIvl = nil
		pg.twin = nil
		n.protoAddLocked(-PageSize)
		n.stats.TwinsCollected++
	}
	for _, ivl := range n.intervals[n.id] {
		for _, d := range ivl.diffs {
			n.protoAddLocked(-int64(len(d)))
		}
		ivl.diffs = nil
	}
}
