package dsm

import (
	"fmt"
	"sort"

	"repro/internal/network"
	"repro/internal/sim"
)

// Garbage collection of lazy-release-consistency metadata.
//
// Without collection, intervals, write notices, encoded diffs, and twins
// accumulate for the whole run: protocol memory grows without bound and
// every fault walks ever-longer chains. Real TreadMarks reclaims this
// state at global synchronization points; this file is the simulation's
// analogue for the BARRIER/FORK epoch source (acqgc.go adds the
// lock-manager-led acquire source for programs that never barrier), keyed
// to barriers because a barrier is the one moment the system is provably
// quiescent — every application thread is parked inside Barrier(), so no
// fault, lock grant, or delta is in flight.
//
// One epoch runs per global synchronization episode — each barrier and
// each fork (the region boundary that is OpenMP's implicit barrier) —
// in three steps on every node:
//
//  1. FREE the interval records — and their encoded diffs and remaining
//     twins — retired at the PREVIOUS episode epoch (the retire floor
//     saved in gcFreeVC). The one-epoch delay is what makes freeing safe
//     without extra message rounds: diffs of intervals retired at epoch k
//     may still be fetched DURING epoch k by any node's validation pass,
//     but after every node has finished epoch k no unfetched write notice
//     under the floor exists anywhere (each node either applied or
//     discarded its covered notices), none can ever reappear (new
//     intervals carry higher sequence numbers), and so epoch k+1 can free
//     with no coordination. A twin that is still unencoded here was never
//     needed at all and is released without ever paying for diff
//     creation.
//
//  2. PURGE page references covered by the new retire floor — the barrier
//     root's merged vector clock at the episode, which covers every
//     interval in existence there, all of them incorporated by every node
//     by the time it processes its departure (or fork). A page's HOME
//     (its allocator and first-copy server, see home.go) always VALIDATES
//     its own pages: it fetches and applies every pending diff, keeping
//     each authoritative copy current. Other nodes choose per page
//     between FLUSHING the stale copy (refetch it whole from the home on
//     next access) and validating it — the classic validate-vs-invalidate
//     choice of TreadMarks GC, now a per-page policy (Config.GCPolicy)
//     keyed on whether the page was faulted since the last collection.
//     A flush may only drop notices the home's copy already reflects —
//     otherwise the later whole-page refetch is lossy. Under sharded
//     homes this episode source gets that guarantee deterministically by
//     LAGGING the flush floor one collecting episode: every node finishes
//     episode e-1's purge (validating its own homed pages to that floor)
//     before sending its episode-e arrival, so when any node processes
//     episode e, every home provably holds the e-1 floor. Foreign pages
//     therefore flush only notices under the PREVIOUS floor (gcFreeVC)
//     and keep the one-episode tail, which the next episode drops in turn
//     (or an intervening fault applies over the home's base). Under
//     node-0 homes the old single-floor flush is kept verbatim: the root
//     purges before any departure leaves it, so the full floor is already
//     safe — and ≤8-processor runs stay byte-identical to the
//     pre-sharding protocol. The acquire source (acqgc.go) has no such
//     happens-before wave and gates flushes per page on the homePurged
//     registry instead, overriding to validate while a home lags.
//
//     The floor is always the root's clock AS CARRIED IN THE EPISODE'S
//     MESSAGE, never the local clock: a node's protocol server may
//     already have incorporated intervals that a faster peer created
//     AFTER leaving this same episode, and a floor read from the local
//     clock would cover them before the rest of the system has them —
//     epoch floors must be identical on every node for the one-epoch
//     free delay to be sound.
//
//  3. Report the purge to the acquire-epoch coordinator (when one is
//     running): collected episode floors join the coordinator's issued
//     baseline, so acquire announcements stay blocked until every node
//     has processed the episode — the interlock that lets the two epoch
//     sources free behind their own floors without racing each other's
//     validation fetches.
//
// Finally the knownVC estimates are raised to the freed floor (every
// node provably incorporated everything under it one epoch ago), and the
// floor advances. Locks, semaphores, and condition variables need no
// special handling here: a thread blocked on any of them keeps the
// barrier — and therefore this collector — from running at all (the
// acquire source is what collects for them).

// epochFloor tracks one episode's floor (and trigger-decision) agreement
// across nodes.
type epochFloor struct {
	floor   VectorClock
	collect bool
	seen    int
}

// gcDefault gates the collector for systems whose Config does not set
// DisableGC. It exists for the GC ablation and the GC-off equivalence
// suite; it must not be flipped while systems are running.
var gcDefault = true

// SetGCDefault enables or disables garbage collection (both epoch
// sources) for subsequently created systems (ablations and tests only).
func SetGCDefault(on bool) { gcDefault = on }

// checkEpochFloor verifies that every node presents the identical retire
// floor — and reaches the identical collect-or-skip decision — for a
// given episode index: the first node to reach the episode records its
// view, the rest must match, and the record is dropped once all have
// checked in (so the tripwire itself retains nothing).
func (s *System) checkEpochFloor(episode int64, id int, floor VectorClock, collect bool) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	e, ok := s.gcFloors[episode]
	if !ok {
		e = &epochFloor{floor: floor.clone(), collect: collect}
		s.gcFloors[episode] = e
	} else {
		for i, v := range e.floor {
			if floor[i] != v {
				panic(fmt.Sprintf("dsm: node %d GC episode %d floor %v diverges from %v",
					id, episode, floor, e.floor))
			}
		}
		if collect != e.collect {
			panic(fmt.Sprintf("dsm: node %d GC episode %d trigger decision %v diverges from %v",
				id, episode, collect, e.collect))
		}
	}
	e.seen++
	if e.seen == s.cfg.Procs {
		delete(s.gcFloors, episode)
	}
}

// ivlRecordBytes estimates the retained footprint of one interval record:
// struct header, vector clock, and write-notice page list.
func ivlRecordBytes(ivl *interval) int64 {
	return int64(48 + 4*len(ivl.vc) + 8*len(ivl.pages))
}

// gcEpochLocked runs one synchronization episode of the collector with
// the given retire floor: it decides — identically on every node —
// whether to collect, and if so runs the epoch. It requires n.mu and
// releases and reacquires it while validation diff fetches are in flight.
// Node 0 calls it at each barrier (after incorporating every arrival,
// before sending any departure) and at each fork (before sending the fork
// messages), passing its own clock; every other node calls it — on its
// APPLICATION thread — after incorporating the matching departure or fork
// delta, passing the clock that message carried: the identical floor.
//
// Adaptive triggering (Config.GCMinRetire): collecting at EVERY episode
// costs ~25% on barrier-dense workloads (see `nowbench -ablation gc`),
// mostly in the manager's validation pause. The trigger predicate is the
// number of interval records the floor would newly retire — the floor's
// component sum minus the last collection's — and the epoch runs only
// when it reaches the threshold. Both sums derive exclusively from
// episode floors, which are identical on every node by construction (the
// acquire-epoch source never touches gcFreeVC), so every node skips and
// collects the same episodes with no extra coordination; checkEpochFloor
// tripwires that agreement.
func (n *Node) gcEpochLocked(c *Client, retire VectorClock) {
	episode := n.stats.GCEpisodes
	n.stats.GCEpisodes++
	collect := n.gcWillCollectLocked(retire)
	// Soundness tripwire: all nodes must agree on every episode's floor
	// and trigger decision (they run the same episode sequence), or the
	// one-epoch free delay breaks. Divergence here means a caller derived
	// a floor from state that is not identical on every node.
	n.sys.checkEpochFloor(episode, n.id, retire, collect)
	if !collect {
		return
	}
	if n.sys.acq != nil && n.id == 0 {
		// Block acquire announcements until every node has processed this
		// episode (noteIssued runs before any departure or fork message
		// leaves node 0, so no node can still be unaware of the episode
		// when the gate reopens).
		n.sys.acq.noteIssued(retire)
	}

	// Foreign-homed pages flush against the PREVIOUS collecting floor
	// (captured before gcCollectLocked advances it): every home completed
	// that episode's validation before this episode's floor could even be
	// formed, so the lagged flush needs no registry check and stays
	// deterministic. Node-0 homes keep the full floor — the root purges
	// before any departure leaves it (see the file comment, step 2).
	flushVC := retire
	if n.sys.homes.policy != HomePolicyNode0 {
		flushVC = n.gcFreeVC
	}
	n.gcCollectLocked(&n.gcFreeVC, retire, func() { n.gcPurgePagesLocked(c, retire, flushVC, true) })
	n.stats.GCEpochs++
	if n.sys.acq != nil {
		n.sys.acq.notePurged(n.id, retire)
	}
}

// gcWillCollectLocked evaluates the episode trigger predicate for the
// given retire floor WITHOUT running the epoch: the number of interval
// records the floor would newly retire against Config.GCMinRetire. Both
// inputs (the floor and the last collecting floor, gcFreeVC) are
// identical on every node, so the decision is too — which is what lets a
// departure forwarder know, before its own epoch runs, whether the
// episode its children are about to process will purge (and therefore
// whether a pending acquire floor needs piggybacking; see
// forwardDeparturesLocked). Requires n.mu.
func (n *Node) gcWillCollectLocked(retire VectorClock) bool {
	pending := retire.sum()
	if n.gcFreeVC != nil {
		pending -= n.gcFreeVC.sum()
	}
	return pending >= int64(n.sys.cfg.GCMinRetire)
}

// gcCollectLocked is the collection-epoch tail shared by the two epoch
// sources, each threading its own delayed-free floor through `prev`
// (gcFreeVC for barrier/fork episodes, gcAcqFreeVC for acquire epochs):
// FREE everything the source's previous epoch retired, raise the
// piggyback-delta estimates to that freed floor (everything under it was
// incorporated by every node before the previous epoch completed;
// deltaForLocked additionally clamps to the retained base, so this is an
// optimization, not a soundness requirement), advance the source floor,
// claim it in gcPurgeVC BEFORE the purge can release n.mu (so a
// concurrent island-mate's hook skips instead of double-purging), run the
// purge, and close out the epoch bookkeeping. The soundness argument
// requires both sources to execute exactly this sequence.
func (n *Node) gcCollectLocked(prev *VectorClock, floor VectorClock, purge func()) {
	n.freeRetiredLocked(*prev)
	if *prev != nil {
		for j := range n.knownVC {
			if j != n.id {
				n.knownVC[j].merge(*prev)
			}
		}
	}
	*prev = floor
	if n.gcPurgeVC == nil {
		n.gcPurgeVC = floor.clone()
	} else {
		n.gcPurgeVC.merge(floor)
	}
	purge()
	// Publish the completed purge in the home registry immediately (before
	// the acquire coordinator hears of it): peers may flush pages homed
	// here the moment our authoritative copies reflect the floor.
	n.sys.purged.note(n.id, floor)
	n.gcSeq++
	n.pruneGCPagesLocked()
}

// pruneGCPagesLocked shrinks the GC work list after a collection: only
// pages still owing uncovered notices (or holding a twin) stay. Clearing
// the tail drops the pruned pages' references.
func (n *Node) pruneGCPagesLocked() {
	kept := n.gcPages[:0]
	for _, pg := range n.gcPages {
		if len(pg.missing) > 0 || pg.twin != nil {
			kept = append(kept, pg)
		} else {
			pg.inGCList = false
		}
	}
	for i := len(kept); i < len(n.gcPages); i++ {
		n.gcPages[i] = nil
	}
	n.gcPages = kept
}

// freeRetiredLocked truncates every per-creator interval list up to the
// given floor, releasing each freed record together with its encoded
// diffs and — for the node's own intervals — any twin still owed to it.
// The floor must be globally purged: every node has already applied or
// discarded all write notices under it, so nothing here can ever be
// fetched again (handleDiffReq's retired-interval tripwire enforces
// this). Both epoch sources call it with their own delayed floor.
func (n *Node) freeRetiredLocked(free VectorClock) {
	if free == nil {
		return // first epoch of this source: nothing retired yet
	}
	for c := range n.intervals {
		have := n.intervals[c]
		drop := int(free[c]) - n.ivlBase[c]
		if drop <= 0 {
			continue
		}
		if drop > len(have) {
			panic(fmt.Sprintf("dsm: node %d freeing %d intervals of creator %d but only %d retained",
				n.id, drop, c, len(have)))
		}
		for _, ivl := range have[:drop] {
			n.protoAddLocked(-ivlRecordBytes(ivl))
			for _, d := range ivl.diffs {
				n.protoAddLocked(-int64(len(d)))
			}
			ivl.diffs = nil
			if c == n.id {
				// A twin still owed to a freed interval encodes a diff no
				// one can ever request: release it without paying for the
				// encoding.
				for _, pid := range ivl.pages {
					pg := n.pages[pid]
					if pg != nil && pg.twinIvl == ivl {
						pg.twinIvl = nil
						pg.twin = nil
						n.protoAddLocked(-PageSize)
						n.stats.TwinsCollected++
					}
				}
			}
		}
		// Copy to a fresh slice so the freed records' backing array is
		// actually reclaimable.
		n.intervals[c] = append(make([]*interval, 0, len(have)-drop), have[drop:]...)
		n.ivlBase[c] += drop
		n.stats.IntervalsRetired += int64(drop)
	}
}

// gcShouldValidateLocked applies the per-page validate-vs-flush policy to
// one page owing `covered` retired notices under the given floor. A
// page's home always validates: it is the allocator and first-copy server
// of the page, and its copy is the base every first fetch builds on —
// flushing it would lose the only authoritative copy. A gated caller (the
// acquire source, which has no episode wave to order purges) additionally
// allows a foreign flush only once the home has purged the floor (the
// per-page registry gate, see home.go); until then the home's copy does
// not yet reflect the notices a flush would drop, and the policy is
// overridden to validate. The barrier/fork source runs ungated: its
// lagged flush floor is covered by every home by construction.
func (n *Node) gcShouldValidateLocked(pg *page, retire VectorClock, covered int, gated bool) bool {
	home := n.homeOf(pg.id)
	if home == n.id {
		return true
	}
	if gated && !n.sys.purged.covers(home, retire) {
		return true
	}
	if pg.data == nil {
		return false // nothing to preserve: flushing is free
	}
	// Hot = faulted within the last two collections. The one-collection
	// slack matters: a node that fell behind the announcement stream can
	// process two epochs with no round of application faults in between,
	// and the strict "since the last collection" reading would then flush
	// every page it is about to re-read.
	hot := pg.hotSeq >= 0 && n.gcSeq-pg.hotSeq <= 1
	switch n.sys.gcPolicy {
	case GCPolicyValidateHot:
		return hot
	case GCPolicyAdaptive:
		return hot && covered <= adaptiveValidateMaxChain
	}
	return false // GCPolicyFlush
}

// gcCanFlushAllLocked reports whether a flush-only purge to the given
// floor is safe on this node: no covered-owing page may hold own writes
// above the floor (flushing would lose them; see page.lastOwnSeq), be
// homed here (homes validate their own pages — the authoritative copy),
// or be homed at a node that has not yet purged the floor (the per-page
// flush gate, see home.go). The server-side purge checks this BEFORE
// touching any state and defers to the application-thread hook (which can
// validate) when it fails.
func (n *Node) gcCanFlushAllLocked(retire VectorClock) bool {
	for _, pg := range n.gcPages {
		if len(pg.missing) == 0 {
			continue
		}
		covered := false
		for _, m := range pg.missing {
			if retire.covers(m.creator, m.seq) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		if pg.lastOwnSeq >= 0 && !retire.covers(n.id, pg.lastOwnSeq) {
			return false
		}
		if pg.data != nil && pg.appliedVC != nil && !pg.appliedVC.dominatedBy(retire) {
			// Applied diffs above the floor are baked into this copy only
			// (their notices are gone from `missing`); the home's copy is
			// not yet guaranteed to reflect them.
			return false
		}
		if home := n.homeOf(pg.id); home == n.id || !n.sys.purged.covers(home, retire) {
			return false
		}
	}
	return true
}

// gcFlushPageLocked discards one page's copy together with its notices
// under the flush floor, preserving newer notices — the flush half of
// the validate-vs-flush choice, shared by the per-page policy purge and
// the consensus-push purge. The flush floor may lag the retire floor (the
// barrier source under sharded homes) or be nil on the first collecting
// episode, in which case only the copy is discarded and every notice
// survives. Requires n.mu.
func (n *Node) gcFlushPageLocked(pg *page, flushVC VectorClock) {
	if pg.twin != nil || pg.inDirty {
		panic(fmt.Sprintf("dsm: node %d GC flushing page %d with live twin", n.id, pg.id))
	}
	keep := pg.missing[:0]
	for _, m := range pg.missing {
		if flushVC == nil || !flushVC.covers(m.creator, m.seq) {
			keep = append(keep, m)
		}
	}
	dropped := len(pg.missing) - len(keep)
	for i := len(keep); i < len(pg.missing); i++ {
		pg.missing[i] = nil
	}
	pg.missing = keep
	if dropped > 0 {
		// The dropped notices survive only in the home's validated copy
		// now: any rebuild of this page must start from a whole-page fetch
		// (the next fault does exactly that), never from a zeros base.
		pg.refetch = true
	}
	if pg.data == nil && dropped == 0 {
		return // nothing to discard: copy already gone, every notice kept
	}
	if pg.data != nil {
		// The discarded copy may bake in applied diffs and own writes whose
		// notices are gone from `missing` (appliedVC — the caller checked
		// the home's floor covers it); only the home's validated copy can
		// reproduce them, so any rebuild must also start from a whole-page
		// fetch, never from a zeros base.
		pg.refetch = true
		pg.appliedVC = nil
	}
	pg.data = nil
	pg.state = pageInvalid
	n.stats.GCPagesFlushed++
}

// gcFlushCoveredLocked is the network-free purge used by the consensus
// push path (acqEpochServerLocked): every copy owing notices covered by
// the floor is discarded outright, notices newer than the floor are
// preserved. The caller must have checked gcCanFlushAllLocked. Requires
// n.mu (and the caller holds fetchMu, so no local fault snapshot can
// straddle the flush).
func (n *Node) gcFlushCoveredLocked(retire VectorClock) {
	for _, pg := range n.gcPages {
		if len(pg.missing) == 0 {
			continue
		}
		covered := false
		for _, m := range pg.missing {
			if retire.covers(m.creator, m.seq) {
				covered = true
				break
			}
		}
		if covered {
			n.gcFlushPageLocked(pg, retire)
		}
	}
}

// gcPurgePagesLocked is the purge step shared by both epoch sources:
// every work-list page owing notices covered by the retire floor is
// either validated (its covered diffs fetched and applied in one parallel
// wave, exactly as a fault would) or flushed (copy discarded up to
// flushVC, to be refetched whole from its home's validated copy on next
// access), per gcShouldValidateLocked. Notices newer than the relevant
// floor are preserved either way. The quiescent flag distinguishes the
// barrier/fork source (episode waves order purges, so flushes run
// ungated against the lagged flushVC) from the acquire source (flushVC
// equals the retire floor and the homePurged registry gates each flush).
//
// It requires n.mu and releases/reacquires it around the network section.
// The whole purge holds fetchMu: page and diff replies route by message
// type alone, so the wave must never interleave with a concurrent
// application fault on a multi-client node — and holding fetchMu across
// the classification also guarantees no local fault snapshot straddles
// the purge. At quiescent episodes (barrier/fork) the exclusivity is
// vacuous; at acquire epochs it is load-bearing.
func (n *Node) gcPurgePagesLocked(c *Client, retire, flushVC VectorClock, quiescent bool) {
	n.mu.Unlock()
	n.fetchMu.Lock()
	defer n.fetchMu.Unlock()
	n.mu.Lock()

	type pageWork struct {
		pg    *page
		fetch []*interval
		home  int // ≥ 0: whole-page refetch from the home precedes the diffs
	}
	var work []pageWork
	refetches := 0
	for _, pg := range n.gcPages {
		if len(pg.missing) == 0 {
			continue
		}
		var covered []*interval
		uncovered := 0
		for _, m := range pg.missing {
			if retire.covers(m.creator, m.seq) {
				covered = append(covered, m)
			} else {
				uncovered++
			}
		}
		if len(covered) == 0 {
			continue
		}
		if quiescent && n.id == 0 && uncovered > 0 {
			// Impossible at a barrier/fork: no node is running application
			// code that could create intervals beyond the root's clock.
			panic(fmt.Sprintf("dsm: root GC found uncovered notice on page %d at a quiescent episode", pg.id))
		}
		// A page owing diffs cannot carry local modifications
		// (invalidation encodes any pending diff and drops the twin).
		if pg.twin != nil || pg.inDirty {
			panic(fmt.Sprintf("dsm: node %d GC purging page %d with live twin", n.id, pg.id))
		}
		// A copy holding own writes above the floor must be kept (see
		// page.lastOwnSeq): validate it regardless of policy.
		mustKeep := pg.lastOwnSeq >= 0 && !retire.covers(n.id, pg.lastOwnSeq) && pg.data != nil
		// Lagged-floor safety: a flush rebuilds from the home, and the home
		// is only guaranteed to reflect flushVC — which trails the retire
		// floor under sharded homes (and trails the node's recent history at
		// acquire epochs). Content baked into the copy beyond flushVC — own
		// closed writes and already-applied diffs (page.appliedVC) — has no
		// notice left to re-deliver it, so discarding the copy would lose
		// it: validate instead.
		if !mustKeep && pg.data != nil {
			if pg.lastOwnSeq >= 0 && (flushVC == nil || !flushVC.covers(n.id, pg.lastOwnSeq)) {
				mustKeep = true
			} else if pg.appliedVC != nil && (flushVC == nil || !pg.appliedVC.dominatedBy(flushVC)) {
				mustKeep = true
			}
		}
		if mustKeep || n.gcShouldValidateLocked(pg, retire, len(covered), !quiescent) {
			w := pageWork{pg: pg, fetch: covered, home: -1}
			if pg.data == nil {
				if pg.refetch {
					// An earlier flush dropped notices this node no longer
					// holds; only the home's validated copy reflects them.
					// Rebuild from a whole-page fetch, then apply the
					// covered tail on top.
					w.home = n.homeOf(pg.id)
				} else {
					// Never materialized here: the node still holds the
					// page's complete notice history, so zeros (the
					// allocation contents) plus the covered history applied
					// in causal order is exactly the floor contents.
					pg.data = make([]byte, PageSize)
				}
			}
			work = append(work, w)
			if w.home >= 0 {
				refetches++
			}
		} else {
			n.gcFlushPageLocked(pg, flushVC)
		}
	}
	if len(work) == 0 {
		return
	}

	n.mu.Unlock() // --- network section: servers may run meanwhile ---

	// Whole-page refetches first, as one parallel wave of their own: the
	// reply queue routes by message type alone, so every page reply must
	// drain before the first diff request goes out (cf. faultInLocked).
	if refetches > 0 {
		if n.wireV1 {
			for _, w := range work {
				if w.home < 0 {
					continue
				}
				var req wbuf
				req.u32(uint32(w.pg.id))
				n.ep.SendAt(w.home, msgPageReq, network.ClassRequest, req.b, c.clk.Now())
			}
		} else {
			// v2: coalesce the wave per home — one frame carries every
			// refetch bound for the same home (each sub still earns its
			// own msgPageRep reply, so the collection below is unchanged).
			byHome := make(map[int]*frameBuilder)
			var homes []int
			for _, w := range work {
				if w.home < 0 {
					continue
				}
				f := byHome[w.home]
				if f == nil {
					f = n.newFrame()
					byHome[w.home] = f
					homes = append(homes, w.home)
				}
				var req wbuf
				req.u32(uint32(w.pg.id))
				f.add(msgPageReq, req.b)
			}
			sort.Ints(homes)
			for _, h := range homes {
				byHome[h].sendAt(h, c.clk.Now())
			}
		}
		contents := make(map[PageID][]byte, refetches)
		for i := 0; i < refetches; i++ {
			rep := c.recvReply(msgPageRep, 0)
			r := rbuf{b: rep.Payload}
			contents[PageID(r.u32())] = r.bytes()
		}
		n.mu.Lock()
		for _, w := range work {
			if w.home < 0 {
				continue
			}
			data, ok := contents[w.pg.id]
			if !ok {
				panic(fmt.Sprintf("dsm: GC refetch missing page %d", w.pg.id))
			}
			w.pg.data = data
			w.pg.refetch = false
			w.pg.appliedVC = nil // fresh home base (cf. faultInLocked)
			n.stats.PageFetches++
		}
		n.mu.Unlock()
	}

	// Issue every batched diff request back to back, then collect all
	// replies; virtual time advances to the latest arrival, modelling
	// the parallel validation sweep.
	n.mu.Lock()
	requests := 0
	if n.wireV1 {
		for _, w := range work {
			requests += c.sendDiffRequests(w.pg.id, w.fetch)
		}
	} else {
		// v2: coalesce the wave per creator — one frame carries one
		// creator's per-page diff requests across ALL work pages. Each
		// sub still earns its own msgDiffRep reply, so the reply count
		// is the sub count, not the frame count.
		byCreator := make(map[int]*frameBuilder)
		var creators []int
		for _, w := range work {
			for _, req := range diffRequestPayloads(w.pg.id, w.fetch) {
				f := byCreator[req.creator]
				if f == nil {
					f = n.newFrame()
					byCreator[req.creator] = f
					creators = append(creators, req.creator)
				}
				f.add(msgDiffReq, req.payload)
				requests++
			}
		}
		sort.Ints(creators)
		for _, cr := range creators {
			byCreator[cr].sendAt(cr, c.clk.Now())
		}
	}
	n.mu.Unlock()

	diffs := make(map[PageID]map[int]map[int][]byte) // page -> creator -> seq -> diff
	for i := 0; i < requests; i++ {
		pid, from, bySeq := c.recvDiffReply()
		if diffs[pid] == nil {
			diffs[pid] = make(map[int]map[int][]byte)
		}
		diffs[pid][from] = bySeq
	}
	n.mu.Lock() // --- end network section ---

	plat := n.sys.plat
	for _, w := range work {
		sortCausal(w.fetch)
		done := make(map[*interval]bool, len(w.fetch))
		for _, ivl := range w.fetch {
			d, ok := diffs[w.pg.id][ivl.creator][ivl.seq]
			if !ok {
				panic(fmt.Sprintf("dsm: GC validation missing diff (%d,%d) for page %d", ivl.creator, ivl.seq, w.pg.id))
			}
			n.mergeAppliedLocked(w.pg, ivl.vc)
			applied := applyDiff(w.pg.data, d)
			n.stats.DiffsApplied++
			c.clk.Advance(plat.DiffApply + sim.Time(float64(applied)*plat.DiffApplyPerByte))
			done[ivl] = true
		}
		// Remove exactly the validated notices; notices newer than the
		// floor (and any that arrived during the network section) stay.
		rest := w.pg.missing[:0]
		for _, m := range w.pg.missing {
			if !done[m] {
				rest = append(rest, m)
			}
		}
		for i := len(rest); i < len(w.pg.missing); i++ {
			w.pg.missing[i] = nil
		}
		w.pg.missing = rest
		if len(w.pg.missing) == 0 && w.pg.state == pageInvalid {
			w.pg.state = pageReadOnly
		}
		n.stats.GCPagesValidated++
	}
}
