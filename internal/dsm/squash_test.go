package dsm

import (
	"testing"
)

// TestSquashOracleUnderChurn reproduces the interval-batch soundness bug
// that diff squashing exposed: many nodes rewrite overlapping page sets
// under one lock while notices arrive in multi-record batches. With the
// shadow-memory oracle on, any read returning a value older than its
// causally-latest write is reported (and the final content is checked).
func TestSquashOracleUnderChurn(t *testing.T) {
	SetDebugOracle(true)
	defer SetDebugOracle(false)

	const P = 8
	const words = 4096 // 4 pages of int64s
	const rounds = 6
	sys := New(Config{Procs: P})
	base := sys.MallocPage(8 * words)
	sys.Register("churn", func(n *Node, _ []byte) {
		for r := 0; r < rounds; r++ {
			// Each round, each node rewrites a rotating block under the
			// global lock (forcing long diff chains and squashes).
			n.Acquire(3)
			blk := (n.ID() + r) % P
			lo, hi := blk*words/P, (blk+1)*words/P
			buf := make([]byte, 8*(hi-lo))
			for i := range buf {
				buf[i] = byte(r*31 + blk*7 + i)
			}
			n.WriteBytes(base+Addr(8*lo), buf)
			n.Release(3)
		}
		n.Barrier()
		// Everyone reads everything; the oracle flags stale bytes.
		all := make([]byte, 8*words)
		n.ReadBytes(base, all)
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("churn", nil) }); err != nil {
		t.Fatal(err)
	}
}
