package dsm

import (
	"repro/internal/network"
	"repro/internal/sim"
)

// Centralized-manager barriers, Section 4.2: "Barrier arrivals are modeled
// as releases and barrier departures are acquires. At a barrier arrival
// each thread sends a release message to the manager and waits for a
// departure message. The manager broadcasts a barrier departure message to
// all threads after all have arrived." Node 0 is the manager. Arrival
// messages piggyback the arriver's new intervals; departures carry, for
// each node, exactly the intervals it lacks.

// barrierMgr buffers arrival messages at node 0 between the protocol
// server (which receives them) and the application thread (which consumes
// P-1 of them per barrier episode).
type barrierMgr struct {
	arrivals chan *network.Message
}

func newBarrierMgr(procs int) *barrierMgr {
	return &barrierMgr{arrivals: make(chan *network.Message, 4*procs)}
}

// Barrier synchronizes all processors (OpenMP barrier semantics: all
// modifications before the barrier are visible to every thread after it).
// On an SMP island this is the inter-island phase only: the hybrid backend
// gathers the island's threads locally and one of them crosses the
// network on the island's behalf.
func (c *Client) Barrier() {
	n := c.n
	procs := n.sys.cfg.Procs
	n.mu.Lock()
	n.stats.Barriers++
	n.closeIntervalLocked()
	if procs == 1 {
		n.mu.Unlock()
		return
	}
	if n.id != 0 {
		var w wbuf
		w.vc(n.vc)
		encodeRecords(&w, n.deltaForLocked(n.knownVC[0]))
		n.noteSentLocked(0)
		// Sent under mu: atomic with the estimate update.
		n.ep.SendAt(0, msgBarrArrive, network.ClassRequest, w.b, c.clk.Now())
		n.mu.Unlock()

		m := c.recvReply(msgBarrDepart, 0)
		r := rbuf{b: m.Payload}
		mgrVC := r.vc()
		recs := decodeRecords(&r)
		n.mu.Lock()
		n.incorporateLocked(recs, mgrVC)
		n.noteHeardLocked(0, mgrVC)
		if n.sys.gcOn {
			// The floor is the manager's clock as carried by the
			// departure, NOT our own: the server may already have
			// incorporated intervals a faster peer created after leaving
			// this barrier, and those are not globally known yet.
			n.gcEpochLocked(c, mgrVC)
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()

	// Manager: gather P-1 arrivals (the server queued them), then merge
	// and broadcast departures. Virtual departure time is the latest
	// arrival plus sequential per-arrival processing at the manager.
	type arrival struct {
		from int
		vc   VectorClock
	}
	arrivals := make([]arrival, 0, procs-1)
	var latest sim.Time
	for len(arrivals) < procs-1 {
		var m *network.Message
		select {
		case m = <-n.barrier.arrivals:
		case <-n.sys.done:
		}
		if m == nil {
			panic(abortError{cause: "switch shut down"})
		}
		if m.Arrive > latest {
			latest = m.Arrive
		}
		// The write notices were already incorporated by the server in
		// wire order; only the arriver's clock matters here, to compute
		// its exact departure delta.
		r := rbuf{b: m.Payload}
		senderVC := r.vc()
		arrivals = append(arrivals, arrival{from: m.From, vc: senderVC})
	}
	c.clk.AdvanceTo(latest)
	c.clk.Advance(sim.Time(procs-1) * n.sys.plat.RequestService)

	n.mu.Lock()
	// Snapshot the departure clock ONCE, before the send loop's unlock
	// windows: while departures go out, the server can already be
	// incorporating next-barrier arrivals (or sema/flush deltas) from
	// fast departers, and a live n.vc read would hand later departures a
	// larger clock than earlier ones. Pre-GC that was a harmless
	// over-approximation; as the GC epoch floor it must be identical in
	// every departure (see gc.go), and node 0 must not publish a floor
	// covering intervals it did not just validate.
	if n.sys.gcOn {
		// Collect BEFORE any departure goes out: with every other
		// application thread parked awaiting its departure, the manager's
		// validation fetches race with nothing, and the departure arrival
		// times then carry the (real, TreadMarks-style) GC pause. The
		// manager's merged clock is the floor every departure carries.
		n.gcEpochLocked(c, n.vc.clone())
	}
	depVC := n.vc.clone()
	for _, a := range arrivals {
		var w wbuf
		w.vc(depVC)
		// Exact delta against the arriver's reported clock; departures
		// are reply-class and therefore never update knownVC. The delta
		// stays live deliberately: records stored by the server mid-loop
		// ride along early (their own clocks raise the receiver), which
		// is sound — only the floor clock must be the snapshot.
		encodeRecords(&w, n.deltaForLocked(a.vc))
		n.mu.Unlock()
		n.ep.SendAt(a.from, msgBarrDepart, network.ClassReply, w.b, c.clk.Now())
		n.mu.Lock()
	}
	n.mu.Unlock()
}
