package dsm

import (
	"repro/internal/network"
	"repro/internal/sim"
)

// Combining-tree barriers, generalizing Section 4.2's centralized manager:
// "Barrier arrivals are modeled as releases and barrier departures are
// acquires." Nodes form a BarrierFanin-ary heap rooted at node 0. Each
// arrival message piggybacks the arriver's new intervals; an interior node
// gathers its children's arrivals, merges them into its own clock, and
// passes ONE combined arrival up. The root's departure wave flows back
// down the tree, each hop carrying for its receiver exactly the intervals
// it lacks, and every departure carries the root's merged clock — the GC
// epoch floor (see gc.go), identical in every departure of an episode.
//
// With the default fan-in of 8 and at most 9 nodes, node 0's children are
// all other nodes and no other node has children: the tree degenerates to
// the paper's flat manager and reproduces its wire traffic byte for byte.

// DefaultBarrierFanin is the tree fan-in used when Config.BarrierFanin is
// zero. Eight keeps every ≤8-processor run (the paper's full range) on the
// flat centralized barrier.
const DefaultBarrierFanin = 8

// barrierChildren returns the ids gathering at node id in the fanin-ary
// heap over [0, procs).
func barrierChildren(id, procs, fanin int) []int {
	first := id*fanin + 1
	if first >= procs {
		return nil
	}
	last := first + fanin
	if last > procs {
		last = procs
	}
	kids := make([]int, 0, last-first)
	for c := first; c < last; c++ {
		kids = append(kids, c)
	}
	return kids
}

// barrierParent returns the node id reports its arrival to.
func barrierParent(id, fanin int) int { return (id - 1) / fanin }

// routeHop returns the next node on the combining-tree path from `from`
// toward `to` (from != to): the child of `from` whose subtree contains
// `to` when `to` is a descendant, and `from`'s parent otherwise. The
// heap layout makes descendants strictly larger than their ancestors, so
// the descent test is a parent walk from `to`. Tree routing is loop-free:
// every hop strictly ascends toward the lowest common ancestor of the
// endpoints and then strictly descends toward `to`.
func routeHop(from, to, fanin int) int {
	for x := to; x > from; {
		p := barrierParent(x, fanin)
		if p == from {
			return x
		}
		x = p
	}
	return barrierParent(from, fanin)
}

// barrierMgr buffers arrival messages at a node with tree children,
// between the protocol server (which receives them) and the application
// thread (which consumes one per child per barrier episode).
type barrierMgr struct {
	children int
	arrivals chan *network.Message
}

// newBarrierMgr sizes the arrival buffer from the node's child count, not
// the system size: a child has at most two arrivals logically outstanding
// here (the current episode's, plus the next episode's sent after its
// departure while we still forward to siblings), so 4k+4 holds at any
// fan-in — including 128 nodes on a flat tree, where the old 4*procs
// sizing happened to work only because procs bounded the children.
func newBarrierMgr(children int) *barrierMgr {
	return &barrierMgr{
		children: children,
		arrivals: make(chan *network.Message, 4*children+4),
	}
}

// gatherArrivals consumes one arrival per child (the server queued them,
// already incorporated in wire order) and returns each child's reported
// clock — needed to compute its exact departure delta — plus the latest
// arrival time.
func (n *Node) gatherArrivals() (arrivals []struct {
	from int
	vc   VectorClock
}, latest sim.Time) {
	for len(arrivals) < n.barrier.children {
		var m *network.Message
		select {
		case m = <-n.barrier.arrivals:
		case <-n.sys.done:
		}
		if m == nil {
			panic(abortError{cause: "switch shut down"})
		}
		if m.Arrive > latest {
			latest = m.Arrive
		}
		// Only the clock prefix of the trailer is needed here (the server
		// already incorporated the records in wire order); both wire
		// versions encode the clock self-contained, so the prefix decodes
		// alone.
		r := rbuf{b: m.Payload}
		senderVC := n.getVC(&r)
		arrivals = append(arrivals, struct {
			from int
			vc   VectorClock
		}{from: m.From, vc: senderVC})
	}
	return arrivals, latest
}

// Barrier synchronizes all processors (OpenMP barrier semantics: all
// modifications before the barrier are visible to every thread after it).
// On an SMP island this is the inter-island phase only: the hybrid backend
// gathers the island's threads locally and one of them crosses the
// network on the island's behalf.
func (c *Client) Barrier() {
	n := c.n
	procs := n.sys.cfg.Procs
	n.mu.Lock()
	n.stats.Barriers++
	n.closeIntervalLocked()
	if procs == 1 {
		n.mu.Unlock()
		return
	}

	if n.barrier == nil {
		// Leaf: one arrival up, one departure down. Built and sent under
		// the same mu hold as the interval close — an unlock window here
		// would let the server incorporate records and change the delta.
		parent := barrierParent(n.id, n.sys.fanin)
		var w wbuf
		n.putTrailer(&w, n.vc, n.deltaForLocked(n.knownVC[parent]))
		n.noteSentLocked(parent)
		n.ep.SendAt(parent, msgBarrArrive, network.ClassRequest, w.b, c.clk.Now())
		n.mu.Unlock()

		m := c.recvReply(msgBarrDepart, 0)
		r := rbuf{b: m.Payload}
		depVC, recs := n.getTrailer(&r)
		n.mu.Lock()
		n.incorporateLocked(recs, depVC)
		n.noteHeardLocked(parent, depVC)
		if n.sys.gcOn {
			// The floor is the root's clock as carried by the departure,
			// NOT our own: the server may already have incorporated
			// intervals a faster peer created after leaving this barrier,
			// and those are not globally known yet.
			n.gcEpochLocked(c, depVC)
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()

	// Gather the subtree: one (combined) arrival per child. Virtual time
	// advances to the latest arrival plus sequential per-arrival
	// processing at this node.
	arrivals, latest := n.gatherArrivals()
	c.clk.AdvanceTo(latest)
	c.clk.Advance(sim.Time(len(arrivals)) * n.sys.plat.RequestService)

	if n.id != 0 {
		// Interior node: pass one combined arrival up (its clock now
		// covers the whole subtree — the server incorporated every child's
		// records), wait for the departure, forward it down, then run this
		// node's own collection epoch.
		parent := barrierParent(n.id, n.sys.fanin)
		n.mu.Lock()
		var w wbuf
		n.putTrailer(&w, n.vc, n.deltaForLocked(n.knownVC[parent]))
		n.noteSentLocked(parent)
		n.ep.SendAt(parent, msgBarrArrive, network.ClassRequest, w.b, c.clk.Now())
		n.mu.Unlock()

		m := c.recvReply(msgBarrDepart, 0)
		r := rbuf{b: m.Payload}
		depVC, recs := n.getTrailer(&r)
		n.mu.Lock()
		n.incorporateLocked(recs, depVC)
		n.noteHeardLocked(parent, depVC)
		// Forward the wave before collecting: the children (and their
		// subtrees) stay parked until these go out, and the covered diffs
		// this node's purge may drop stay fetchable until the one-epoch-
		// delayed free, so collection order does not affect them. The
		// trigger decision is deterministic from the floor (identical on
		// every node), so it is known before the epoch itself runs.
		collects := n.sys.gcOn && n.gcWillCollectLocked(depVC)
		n.forwardDeparturesLocked(c, depVC, arrivals, collects)
		if n.sys.gcOn {
			n.gcEpochLocked(c, depVC)
		}
		n.mu.Unlock()
		return
	}

	// Root: merge is complete once every child subtree has arrived.
	n.mu.Lock()
	// Snapshot the departure clock ONCE, before the send loop's unlock
	// windows: while departures go out, the server can already be
	// incorporating next-barrier arrivals (or sema/flush deltas) from
	// fast departers, and a live n.vc read would hand later departures a
	// larger clock than earlier ones. Pre-GC that was a harmless
	// over-approximation; as the GC epoch floor it must be identical in
	// every departure (see gc.go), and the root must not publish a floor
	// covering intervals it did not just validate.
	collects := false
	if n.sys.gcOn {
		// Collect BEFORE any departure goes out: with every other
		// application thread parked awaiting its departure, the root's
		// validation fetches race with nothing, and the departure arrival
		// times then carry the (real, TreadMarks-style) GC pause. The
		// root's merged clock is the floor every departure carries. The
		// trigger decision is snapshotted here — gcEpochLocked advances
		// gcFreeVC, after which the predicate would read false.
		collects = n.gcWillCollectLocked(n.vc)
		n.gcEpochLocked(c, n.vc.clone())
	}
	depVC := n.vc.clone()
	n.forwardDeparturesLocked(c, depVC, arrivals, collects)
	n.mu.Unlock()
}

// forwardDeparturesLocked sends one departure per gathered arrival,
// carrying the episode's floor clock and, for each receiver, the exact
// delta against its reported arrival clock. Called with n.mu held;
// released around the sends. episodeCollects is the episode's (node-
// identical) trigger decision, known before the epoch runs.
func (n *Node) forwardDeparturesLocked(c *Client, depVC VectorClock, arrivals []struct {
	from int
	vc   VectorClock
}, episodeCollects bool) {
	if !n.gcTreeConsensus() {
		// Flat tree (the paper's ≤ fan-in+1 machine), wire v1, or the
		// flat-transport measurement knob: the pinned byte-for-byte
		// path — one plain departure per arrival.
		for _, a := range arrivals {
			var w wbuf
			// Exact delta against the arriver's reported clock; departures
			// are reply-class and therefore never update knownVC. The delta
			// stays live deliberately: records stored by the server mid-loop
			// ride along early (their own clocks raise the receiver), which
			// is sound — only the floor clock must be the snapshot.
			n.putTrailer(&w, depVC, n.deltaForLocked(a.vc))
			n.mu.Unlock()
			n.ep.SendAt(a.from, msgBarrDepart, network.ClassReply, w.b, c.clk.Now())
			n.mu.Lock()
		}
		return
	}
	// Tree mode under wire v2: build the whole departure wave under ONE
	// mu hold — every child subtree's delta cut from the same snapshot,
	// with no per-send unlock windows for the server to interleave — then
	// send the frames back to back. Dropping the live-delta opportunism is
	// sound: a record a child misses here still reaches it on the next
	// request-class send, whose delta is computed against the unraised
	// knownVC estimate. A child that owes an acquire-consensus floor the
	// episode itself will NOT purge (a non-collecting episode leaves
	// pending acquire floors pending) gets the announcement piggybacked
	// onto its departure frame, so a whole parked subtree learns of the
	// epoch from the wave instead of at each node's next sync operation.
	co := n.sys.acq
	frames := make([]*frameBuilder, len(arrivals))
	for i, a := range arrivals {
		var w wbuf
		n.putTrailer(&w, depVC, n.deltaForLocked(a.vc))
		f := n.newFrame()
		f.add(msgBarrDepart, w.b)
		if co != nil && !episodeCollects {
			if floor, ok := co.pendingFloorFor(a.from); ok {
				var fw wbuf
				n.putVC(&fw, floor)
				f.add(msgGCFloor, fw.b)
				n.stats.GCDepartFloors++
			}
		}
		frames[i] = f
	}
	n.mu.Unlock()
	for i, a := range arrivals {
		frames[i].sendReplyAt(a.from, c.clk.Now())
	}
	n.mu.Lock()
}
