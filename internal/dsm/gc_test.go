package dsm

import (
	"sort"
	"sync"
	"testing"
)

// gcWorkload runs an iteration-style workload (the access pattern of the
// barrier apps): each round every node rewrites its block of a multi-page
// shared array, synchronizes at a barrier, then reads a neighbour's block
// — forcing write notices, diffs, and twins to flow every epoch. It
// returns the system so callers can inspect protocol counters.
func gcWorkload(t *testing.T, procs, words, rounds int, disableGC bool) *System {
	t.Helper()
	return gcWorkloadCfg(t, Config{Procs: procs, DisableGC: disableGC}, words, rounds)
}

func gcWorkloadCfg(t *testing.T, cfg Config, words, rounds int) *System {
	t.Helper()
	procs := cfg.Procs
	sys := New(cfg)
	base := sys.MallocPage(8 * words)
	per := words / procs
	sys.Register("iterate", func(n *Node, _ []byte) {
		me := n.ID()
		for r := 0; r < rounds; r++ {
			for w := me * per; w < (me+1)*per; w++ {
				n.WriteI64(base+Addr(8*w), int64(r*1_000_000+w))
			}
			n.Barrier()
			nb := (me + 1) % procs
			for w := nb * per; w < (nb+1)*per; w++ {
				if got := n.ReadI64(base + Addr(8*w)); got != int64(r*1_000_000+w) {
					t.Errorf("node %d round %d word %d = %d, want %d", me, r, w, got, r*1_000_000+w)
				}
			}
			n.Barrier()
		}
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("iterate", nil) }); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestGCRetiresMetadata asserts the collector actually reclaims interval
// records, twins, and diffs on the workload it exists for.
func TestGCRetiresMetadata(t *testing.T) {
	sys := gcWorkload(t, 4, 2048, 12, false)
	st := sys.TotalStats()
	if st.GCEpochs == 0 {
		t.Fatal("no GC epochs ran")
	}
	if st.IntervalsRetired == 0 {
		t.Error("GC retired no interval records")
	}
	if st.PeakIntervalChain == 0 {
		t.Error("peak interval chain never tracked")
	}
	if st.PeakProtoBytes == 0 {
		t.Error("peak protocol bytes never tracked")
	}
	if st.ProtoBytes >= st.PeakProtoBytes && st.IntervalsRetired > 0 {
		t.Errorf("final footprint %d not below peak %d despite retirement", st.ProtoBytes, st.PeakProtoBytes)
	}
}

// TestGCBoundsChainLength is the load-bearing property: with the
// collector on, the peak retained interval-chain length must NOT grow
// with the iteration count (it is bounded by the two live epochs), while
// with the collector off it grows linearly.
func TestGCBoundsChainLength(t *testing.T) {
	const procs, words = 4, 2048
	shortOn := gcWorkload(t, procs, words, 8, false).TotalStats()
	longOn := gcWorkload(t, procs, words, 32, false).TotalStats()
	if longOn.PeakIntervalChain > shortOn.PeakIntervalChain+2 {
		t.Errorf("GC on: peak chain grew with iterations: %d rounds -> %d, %d rounds -> %d",
			8, shortOn.PeakIntervalChain, 32, longOn.PeakIntervalChain)
	}

	shortOff := gcWorkload(t, procs, words, 8, true).TotalStats()
	longOff := gcWorkload(t, procs, words, 32, true).TotalStats()
	if shortOff.IntervalsRetired != 0 || longOff.IntervalsRetired != 0 {
		t.Errorf("GC off still retired intervals: %d, %d", shortOff.IntervalsRetired, longOff.IntervalsRetired)
	}
	if longOff.PeakIntervalChain < 2*shortOff.PeakIntervalChain {
		t.Errorf("GC off: expected linear chain growth, got %d rounds -> %d, %d rounds -> %d",
			8, shortOff.PeakIntervalChain, 32, longOff.PeakIntervalChain)
	}
	if longOn.PeakIntervalChain >= longOff.PeakIntervalChain {
		t.Errorf("GC on peak chain (%d) not below GC off (%d)", longOn.PeakIntervalChain, longOff.PeakIntervalChain)
	}
	if longOn.PeakProtoBytes >= longOff.PeakProtoBytes {
		t.Errorf("GC on peak footprint (%d) not below GC off (%d)", longOn.PeakProtoBytes, longOff.PeakProtoBytes)
	}
}

// TestGCWithLocksBetweenBarriers mixes lock-ordered updates (which close
// intervals mid-epoch and make nodes exchange deltas outside the barrier)
// with barrier phases, across enough epochs for records created under
// locks to be retired. The lock-protected counter and the scattered
// array must both survive collection intact.
func TestGCWithLocksBetweenBarriers(t *testing.T) {
	const P = 4
	const rounds = 10
	sys := New(Config{Procs: P})
	ctr := sys.MallocPage(8)
	arr := sys.MallocPage(8 * P)
	sys.Register("mixed", func(n *Node, _ []byte) {
		for r := 0; r < rounds; r++ {
			n.Acquire(1)
			n.WriteI64(ctr, n.ReadI64(ctr)+1)
			n.Release(1)
			n.WriteI64(arr+Addr(8*n.ID()), int64(100*r+n.ID()))
			n.Barrier()
			var s int64
			for i := 0; i < P; i++ {
				s += n.ReadI64(arr + Addr(8*i))
			}
			if want := int64(100*r*P + P*(P-1)/2); s != want {
				t.Errorf("node %d round %d sum = %d, want %d", n.ID(), r, s, want)
			}
			n.Barrier()
		}
	})
	err := sys.Run(func(n *Node) {
		n.RunParallel("mixed", nil)
		if got := n.ReadI64(ctr); got != P*rounds {
			t.Errorf("counter = %d, want %d", got, P*rounds)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := sys.TotalStats(); st.IntervalsRetired == 0 {
		t.Error("mixed workload retired no intervals")
	}
}

// TestGCOnOffIdenticalContents runs the same deterministic workload with
// the collector on and off and requires bit-identical final memory — the
// collector must be invisible to the computation.
func TestGCOnOffIdenticalContents(t *testing.T) {
	run := func(disable bool) []int64 {
		const P = 4
		const words = 1024
		sys := New(Config{Procs: P, DisableGC: disable})
		base := sys.MallocPage(8 * words)
		out := make([]int64, words)
		sys.Register("rounds", func(n *Node, _ []byte) {
			for r := 0; r < 6; r++ {
				for w := n.ID(); w < words; w += P {
					n.WriteI64(base+Addr(8*w), int64(r*7919+w*13+n.ID()))
				}
				n.Barrier()
			}
		})
		if err := sys.Run(func(n *Node) {
			n.RunParallel("rounds", nil)
			for w := 0; w < words; w++ {
				out[w] = n.ReadI64(base + Addr(8*w))
			}
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	on, off := run(false), run(true)
	for w := range on {
		if on[w] != off[w] {
			t.Fatalf("word %d differs: GC on %d, GC off %d", w, on[w], off[w])
		}
	}
}

// TestGCFlushedPageRefetch drives the flush path explicitly: a node that
// never touches a page while it is repeatedly rewritten accumulates
// notices that GC discards together with the (never fetched) copy; a
// late read must still see the final contents via the manager's
// validated copy.
func TestGCFlushedPageRefetch(t *testing.T) {
	const P = 3
	const rounds = 6
	sys := New(Config{Procs: P})
	a := sys.MallocPage(8)
	sys.Register("lateread", func(n *Node, _ []byte) {
		for r := 0; r < rounds; r++ {
			if n.ID() == 1 {
				n.WriteI64(a, int64(1000+r))
			}
			n.Barrier()
		}
		if n.ID() == 2 { // first touch after many retired epochs
			if got := n.ReadI64(a); got != int64(1000+rounds-1) {
				t.Errorf("late reader saw %d, want %d", got, 1000+rounds-1)
			}
		}
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("lateread", nil) }); err != nil {
		t.Fatal(err)
	}
	if st := sys.TotalStats(); st.GCPagesFlushed == 0 {
		t.Error("expected at least one GC page flush")
	}
}

// TestConcurrentMallocPageAlignment hammers Malloc and MallocPage from
// many goroutines under the race detector: every MallocPage block must
// start on a page boundary (the fresh-page guarantee a TOCTOU between
// alignment and allocation used to break), and no two blocks of either
// kind may overlap.
func TestConcurrentMallocPageAlignment(t *testing.T) {
	sys := New(Config{Procs: 1})
	const goroutines = 16
	const allocs = 64
	type block struct {
		addr Addr
		size int
	}
	var mu sync.Mutex
	var pageBlocks, allBlocks []block
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < allocs; i++ {
				size := 3 + (g*allocs+i)%61 // odd sizes force mid-page heapNext
				if i%2 == 0 {
					a := sys.MallocPage(size)
					mu.Lock()
					pageBlocks = append(pageBlocks, block{a, size})
					allBlocks = append(allBlocks, block{a, size})
					mu.Unlock()
				} else {
					a := sys.Malloc(size)
					mu.Lock()
					allBlocks = append(allBlocks, block{a, size})
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	for _, b := range pageBlocks {
		if int(b.addr)%PageSize != 0 {
			t.Errorf("MallocPage block at %d not page aligned", b.addr)
		}
	}
	sort.Slice(allBlocks, func(i, j int) bool { return allBlocks[i].addr < allBlocks[j].addr })
	for i := 1; i < len(allBlocks); i++ {
		prev, cur := allBlocks[i-1], allBlocks[i]
		if int(prev.addr)+prev.size > int(cur.addr) {
			t.Fatalf("blocks overlap: [%d,+%d) and [%d,+%d)", prev.addr, prev.size, cur.addr, cur.size)
		}
	}
	_ = sys.Run(func(n *Node) {})
}

// TestGCAdaptiveTrigger exercises the adaptive predicate
// (Config.GCMinRetire): the collector must examine every episode but run
// only a fraction of them, all nodes must reach identical trigger
// decisions (the in-protocol tripwire panics otherwise, which this test
// would surface as a Run error), metadata must still be retired, and the
// retained chain must stay bounded by the threshold rather than the run
// length.
func TestGCAdaptiveTrigger(t *testing.T) {
	const procs, words = 4, 2048
	const minRetire = 32 // ≈ eight rounds of global interval creation
	cfg := Config{Procs: procs, GCMinRetire: minRetire}

	// Both runs span several trigger periods, so the one-epoch-delayed
	// free has retired metadata in each.
	short := gcWorkloadCfg(t, cfg, words, 32).TotalStats()
	long := gcWorkloadCfg(t, cfg, words, 64).TotalStats()

	for _, st := range []NodeStats{short, long} {
		if st.GCEpisodes == 0 {
			t.Fatal("adaptive collector examined no episodes")
		}
		if st.GCEpochs == 0 || st.GCEpochs >= st.GCEpisodes {
			t.Errorf("adaptive collector ran %d epochs over %d episodes; want a proper nonzero fraction",
				st.GCEpochs, st.GCEpisodes)
		}
		if st.IntervalsRetired == 0 {
			t.Error("adaptive collector retired nothing")
		}
	}
	// Chain length is bounded by the trigger threshold (plus the one-epoch
	// free delay), not the iteration count.
	if long.PeakIntervalChain > short.PeakIntervalChain+2 {
		t.Errorf("adaptive peak chain grew with iterations: 32 rounds -> %d, 64 rounds -> %d",
			short.PeakIntervalChain, long.PeakIntervalChain)
	}
	everyOn := gcWorkload(t, procs, words, 64, false).TotalStats()
	if long.GCEpochs >= everyOn.GCEpochs {
		t.Errorf("adaptive epochs (%d) not below every-episode epochs (%d)", long.GCEpochs, everyOn.GCEpochs)
	}
}

// TestGCAdaptiveIdenticalContents extends the GC-invisibility contract
// to the adaptive mode: the same deterministic workload must produce
// bit-identical final memory with the collector at every episode,
// adaptively triggered, and off.
func TestGCAdaptiveIdenticalContents(t *testing.T) {
	run := func(cfg Config) []int64 {
		const words = 1024
		cfg.Procs = 4
		sys := New(cfg)
		base := sys.MallocPage(8 * words)
		out := make([]int64, words)
		sys.Register("rounds", func(n *Node, _ []byte) {
			for r := 0; r < 6; r++ {
				for w := n.ID(); w < words; w += 4 {
					n.WriteI64(base+Addr(8*w), int64(r*7919+w*13+n.ID()))
				}
				n.Barrier()
			}
		})
		if err := sys.Run(func(n *Node) {
			n.RunParallel("rounds", nil)
			for w := 0; w < words; w++ {
				out[w] = n.ReadI64(base + Addr(8*w))
			}
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	every := run(Config{})
	adaptive := run(Config{GCMinRetire: 24})
	off := run(Config{DisableGC: true})
	for w := range every {
		if every[w] != adaptive[w] || every[w] != off[w] {
			t.Fatalf("word %d differs: every %d, adaptive %d, off %d", w, every[w], adaptive[w], off[w])
		}
	}
}
