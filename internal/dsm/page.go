package dsm

import "encoding/binary"

// PageID identifies one page of the global shared address space.
type PageID int

// Addr is a byte offset into the global shared address space. The same
// Addr names the same logical location on every node; each node keeps its
// own private copy of the page behind it.
type Addr int

// PageSize is the granularity of access detection and consistency, as in
// TreadMarks on x86.
const PageSize = 4096

type pageState uint8

const (
	// pageInvalid: the local copy (if any) is missing the diffs listed in
	// page.missing, or the page was never fetched (data == nil). Any
	// access faults.
	pageInvalid pageState = iota
	// pageReadOnly: reads proceed; the first write faults to create a
	// twin (and to encode the pending diff of the previous interval, if
	// the page was written in an interval that has since closed).
	pageReadOnly
	// pageReadWrite: the page has a twin belonging to the node's open
	// interval; reads and writes proceed at memory speed.
	pageReadWrite
)

// page is one node's view of one shared page.
type page struct {
	id    PageID
	state pageState

	// data is the node's private copy; nil until first materialized
	// (the page's HOME — see home.go — materializes zero pages on
	// demand; every other node fetches its first copy from the home).
	data []byte

	// twin is a snapshot of data taken at the first write of an interval,
	// used to compute the interval's diff (multiple-writer protocol).
	twin []byte

	// twinIvl, when non-nil, is the *closed* interval that still owes a
	// diff against twin. It is nil while twin belongs to the node's open
	// interval, and nil when there is no twin.
	twinIvl *interval

	// missing lists incorporated write notices whose diffs have not yet
	// been fetched and applied. Non-empty missing implies state ==
	// pageInvalid, except transiently inside the fault handler.
	missing []*interval

	// seenVC is the merge of the vector clocks of every interval this
	// node has ever observed touching the page (remote write notices and
	// its own write intervals). It enables the diff-squash fallback: if a
	// missing interval M satisfies seenVC ≤ M.vc, then M's creator has
	// observed — and its current page content reflects — every
	// modification this node knows about, so one whole-page transfer can
	// stand in for the entire accumulated diff chain.
	seenVC VectorClock

	// appliedVC is the merge of the vector clocks of every interval whose
	// content is BAKED INTO the local copy beyond what the page's home can
	// reproduce: the node's own closed write intervals and every remote
	// diff applied here (fault or GC validation). Unlike seenVC it excludes
	// notices still waiting in `missing` — those survive a flush as the
	// kept tail and are re-applied over the rebuilt base. A GC flush may
	// discard the copy only when the home's guaranteed floor covers
	// appliedVC: baked-in content has no notice left to re-deliver it, so
	// the home's copy is the only other place it can live. Reset to nil
	// when the copy is discarded (a fresh home fetch re-bases the page) —
	// home copies only move forward, so home-derived bytes are always
	// re-obtainable and never need tracking.
	appliedVC VectorClock

	// inDirty notes membership in the node's open-interval dirty list.
	inDirty bool

	// hotSeq is the node's collection sequence number (Node.gcSeq) at the
	// page's last fault. A page whose hotSeq is within one collection of
	// the current gcSeq is "hot" — recently faulted, likely to be touched
	// again — which is what the validate-vs-flush policy keys on (see
	// gcShouldValidateLocked). -1 until first faulted.
	hotSeq int64

	// lastOwnSeq is the sequence number of the owning node's latest
	// closed interval that wrote this page, -1 if it never wrote it. A GC
	// purge may flush the copy only when the retire floor covers it: the
	// local copy is the only place the node's own writes live (its own
	// write notices are never in `missing`), so discarding a copy with
	// uncovered own writes would lose them — at a quiescent barrier the
	// floor covers everything and this cannot happen, but an acquire
	// epoch's floor may trail the node's own recent intervals.
	lastOwnSeq int

	// inGCList notes membership in the node's GC work list (gcPages):
	// pages that may hold missing notices or twins, so a collection
	// epoch walks only candidates instead of the whole page table.
	inGCList bool

	// refetch marks a copy whose notice history is incomplete: a GC flush
	// dropped covered notices this node no longer holds, so the page can
	// only be rebuilt from a whole-page fetch of the home's validated
	// copy — never from a zeros base. Set by gcFlushPageLocked, cleared
	// when a whole-page fetch lands (fault or GC refetch wave).
	refetch bool
}

// makeDiff computes the word-granularity (4-byte) delta between data and
// twin, encoded as runs of [offset u32][length u32][bytes]. The 4-byte
// word size matches real TreadMarks and is load-bearing for correctness:
// two nodes may concurrently write ADJACENT 4-byte values of one page
// (QSORT subarray boundaries land on arbitrary int32 indices), and a
// coarser diff word would capture the neighbour's stale half and lose one
// of the two writes when the diffs merge.
func makeDiff(data, twin []byte) []byte {
	var w wbuf
	n := len(data)
	i := 0
	for i < n {
		// Find the next differing word.
		for i < n && wordEq(data, twin, i) {
			i += 4
		}
		if i >= n {
			break
		}
		start := i
		for i < n && !wordEq(data, twin, i) {
			i += 4
		}
		end := i
		if end > n {
			end = n
		}
		w.u32(uint32(start))
		w.u32(uint32(end - start))
		w.b = append(w.b, data[start:end]...)
	}
	return w.b
}

func wordEq(a, b []byte, i int) bool {
	if i+4 <= len(a) {
		return binary.LittleEndian.Uint32(a[i:]) == binary.LittleEndian.Uint32(b[i:])
	}
	for ; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyDiff writes the runs of an encoded diff into data and returns the
// number of payload bytes applied.
func applyDiff(data, diff []byte) int {
	r := rbuf{b: diff}
	applied := 0
	for !r.done() {
		off := int(r.u32())
		n := int(r.u32())
		copy(data[off:off+n], r.need(n))
		applied += n
	}
	return applied
}
