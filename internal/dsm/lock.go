package dsm

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// Distributed mutex locks, Section 4.2: "Each lock has a statically
// assigned manager. The manager records which thread has most recently
// requested the lock. All lock acquire requests are sent to the manager
// and, if necessary, forwarded by the manager to the thread that last
// requested the lock." Release is lazy: the releaser propagates
// consistency information only when the next acquirer's (forwarded)
// request reaches it.
//
// An acquire therefore costs 0 messages (token already local), 2 messages
// (requester ↔ holder when the manager is one of them), or 3 messages
// (request, forward, grant) — landing in the paper's 170–700 µs window.
//
// Multi-client nodes (SMP islands): the node holds ONE seat in this
// protocol — the token, the chain position, the pending queue are all
// island-level — and the island's threads share it. A thread that finds
// the lock held by an island-mate parks on a local queue; a release hands
// ownership to the local queue first (an island-internal bus-scale
// handoff, no messages), and only a release with no local waiter passes
// the token to the global chain. Requests and grants carry the acquiring
// client's reply tag so concurrent acquires and condition-variable
// re-acquires from one island route back to the exact thread.

// lockState tracks one lock on one node. Manager fields are meaningful
// only on the lock's manager; holder fields on whichever node has the
// token.
type lockState struct {
	// manager side
	lastReq int // tail of the request chain; initially the manager

	// holder side
	held      bool
	holderTag uint32 // tag of the local client holding it (self-deadlock check)
	haveToken bool
	pending   []pendingReq // forwarded requests awaiting our release

	// multi-client (island) side
	localQ         []localLockWaiter // island threads awaiting a local handoff
	localRelease   sim.Time          // latest local release (bus-scale handoff coupling)
	reqOutstanding bool              // a local client's acquire request is in flight
	localStreak    int               // consecutive local handoffs past a pending global request
}

// localHandoffCap bounds how many consecutive releases may hand the token
// to a parked island-mate while a forwarded global request waits: local
// handoff stays the fast path (the island-internal bus transfer of the
// SMP-TreadMarks systems), but an island that keeps its local queue
// non-empty — a polling task loop does — must not starve the rest of the
// cluster out of the lock indefinitely.
const localHandoffCap = 8

// localWake is what a parked island thread receives: either ownership of
// the lock (retry false; rel is the handing-over release time) or notice
// that the token left the island under the fairness cap (retry true; the
// waiter re-contends through the global chain like any remote acquirer).
type localWake struct {
	rel   sim.Time
	retry bool
}

// localLockWaiter is one island thread parked for a local lock handoff;
// the releaser transfers ownership under n.mu and posts its release time.
type localLockWaiter struct {
	tag uint32
	ch  chan localWake
}

type pendingReq struct {
	from   int
	tag    uint32
	vc     VectorClock
	arrive sim.Time
}

func (n *Node) lockMgr(id int) int {
	p := n.sys.cfg.Procs
	return ((id % p) + p) % p
}

// lockFor returns (creating on demand) this node's state for lock id.
func (n *Node) lockFor(id int) *lockState {
	ls, ok := n.locks[id]
	if !ok {
		ls = &lockState{lastReq: n.lockMgr(id)}
		if n.id == n.lockMgr(id) {
			ls.haveToken = true // the token starts at the manager
		}
		n.locks[id] = ls
	}
	return ls
}

// Acquire obtains lock id with acquire (consistency-importing) semantics.
func (c *Client) Acquire(id int) {
	n := c.n
retry:
	n.mu.Lock()
	ls := n.lockFor(id)
	if ls.held || ls.reqOutstanding {
		if n.router == nil {
			panic(fmt.Sprintf("dsm: node %d re-acquired held lock %d", n.id, id))
		}
		if ls.held && ls.holderTag == c.tag {
			panic(fmt.Sprintf("dsm: node %d client re-acquired held lock %d", n.id, id))
		}
		// An island-mate holds the lock (or is already fetching the
		// token): park on the local queue. The waker transfers ownership
		// under n.mu, so a non-retry wake means the lock is ours.
		ch := make(chan localWake, 1)
		ls.localQ = append(ls.localQ, localLockWaiter{tag: c.tag, ch: ch})
		n.stats.LockAcquires++
		n.stats.LockLocal++
		n.mu.Unlock()
		var w localWake
		select {
		case w = <-ch:
		case <-n.sys.done:
			panic(abortError{cause: "switch shut down"})
		}
		c.clk.AdvanceTo(w.rel)
		if w.retry {
			// The fairness cap sent the token to the global chain: this
			// was not a handoff. Contend again — the island's next global
			// request queues behind whoever the token went to.
			goto retry
		}
		c.clk.Advance(c.costs.Lock)
		c.gcSyncHook(false) // lock now held: never stall here
		return
	}
	if ls.haveToken && len(ls.pending) == 0 {
		// Free local re-acquire: no messages, no new consistency info.
		ls.held = true
		ls.holderTag = c.tag
		n.stats.LockAcquires++
		n.stats.LockLocal++
		rel := ls.localRelease
		n.mu.Unlock()
		c.clk.AdvanceTo(rel)
		c.clk.Advance(c.costs.Lock)
		c.gcSyncHook(false) // lock now held: never stall here
		return
	}
	n.stats.LockAcquires++
	ls.reqOutstanding = true
	mgr := n.lockMgr(id)
	myVC := n.vc.clone()
	if n.id == mgr {
		// Run the manager logic locally: forward straight to the chain
		// tail (saves the request hop, as in TreadMarks).
		prev := ls.lastReq
		ls.lastReq = n.id
		if prev == n.id {
			if n.router == nil {
				// One thread per node: the tail being this node with the
				// token absent is a protocol bug.
				panic(fmt.Sprintf("dsm: node %d chain tail for lock %d but token absent", n.id, id))
			}
			// Multi-client: the chain already ends here — a grant is in
			// flight to an island-mate (a condition-variable wake whose
			// transfer made this node the tail). Queue behind it; the
			// release-side handoff will grant us through selfReply.
			ls.pending = append(ls.pending, pendingReq{from: n.id, tag: c.tag, vc: myVC, arrive: c.clk.Now()})
			n.mu.Unlock()
		} else {
			var w wbuf
			w.i32(id)
			w.i32(n.id) // requester
			w.u32(c.tag)
			n.putVC(&w, myVC)
			n.mu.Unlock()
			n.ep.SendAt(prev, msgAcqFwd, network.ClassRequest, w.b, c.clk.Now())
		}
	} else {
		var w wbuf
		w.i32(id)
		w.u32(c.tag)
		n.putVC(&w, myVC)
		n.mu.Unlock()
		n.ep.SendAt(mgr, msgAcqReq, network.ClassRequest, w.b, c.clk.Now())
	}

	m := c.recvReply(msgLockGrant, c.tag)
	r := rbuf{b: m.Payload}
	if got := r.i32(); got != id {
		panic(fmt.Sprintf("dsm: node %d got grant for lock %d while acquiring %d", n.id, got, id))
	}
	r.u32() // tag: already matched by routing
	senderVC, recs := n.getTrailer(&r)
	n.mu.Lock()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	ls.haveToken = true
	ls.held = true
	ls.holderTag = c.tag
	ls.reqOutstanding = false
	n.mu.Unlock()
	c.clk.Advance(c.costs.Lock)
	c.gcSyncHook(false) // lock now held: never stall here
}

// Release releases lock id with release (consistency-exporting) semantics.
// On a multi-client node, a parked island-mate takes the lock first (a
// local bus-scale handoff); otherwise, if an acquire request was forwarded
// here while the lock was held, the token and the consistency delta go
// straight to that requester.
func (c *Client) Release(id int) {
	n := c.n
	n.mu.Lock()
	ls := n.lockFor(id)
	if !ls.held {
		panic(fmt.Sprintf("dsm: node %d released lock %d it does not hold", n.id, id))
	}
	n.closeIntervalLocked()
	c.handoffLocked(ls, id)
	c.gcSyncHook(true) // token already handed off: safe to apply backpressure
}

// handoffLocked performs the release-side lock handoff: a parked
// island-mate takes ownership first (local bus-scale transfer), otherwise
// a pending forwarded request takes the token, otherwise the lock simply
// becomes free with the token cached. Requires n.mu held; releases it.
func (c *Client) handoffLocked(ls *lockState, id int) {
	n := c.n
	if t := c.clk.Now(); t > ls.localRelease {
		ls.localRelease = t
	}
	if len(ls.localQ) > 0 && (len(ls.pending) == 0 || ls.localStreak < localHandoffCap) {
		// Ownership transfer to a parked island-mate: held stays true so
		// the protocol server can never hand the token away in between.
		if len(ls.pending) > 0 {
			ls.localStreak++
		}
		w := ls.localQ[0]
		ls.localQ = ls.localQ[1:]
		ls.holderTag = w.tag
		rel := ls.localRelease
		n.mu.Unlock()
		w.ch <- localWake{rel: rel}
		return
	}
	ls.held = false
	ls.localStreak = 0
	// The token leaves this node (or becomes free): any still-parked
	// island-mates re-contend through the global chain — a local waiter
	// may never be left parked with no holder to wake it.
	waiters := ls.localQ
	ls.localQ = nil
	rel := ls.localRelease
	if len(ls.pending) > 0 {
		p := ls.pending[0]
		ls.pending = ls.pending[1:]
		ls.haveToken = false
		n.sendGrantLocked(id, p.from, p.tag, p.vc, c.clk.Now())
	}
	n.mu.Unlock()
	for _, w := range waiters {
		w.ch <- localWake{rel: rel, retry: true}
	}
}

// grantPayloadLocked builds a lock-grant message body: lock id, the
// grantee's reply tag, our vector clock, and every interval the requester
// (whose clock is reqVC) lacks. Grants are exact deltas (relative to the
// requester's own reported clock) so they never update the knownVC
// estimates: estimates may only grow with request-class sends, whose
// per-pair FIFO ordering makes the estimate sound (a reply-class grant
// could overtake an in-flight request-class delta and leave the receiver
// with an interval gap).
func (n *Node) grantPayloadLocked(id int, tag uint32, reqVC VectorClock) []byte {
	var w wbuf
	w.i32(id)
	w.u32(tag)
	n.putTrailer(&w, n.vc, n.deltaForLocked(reqVC))
	return w.b
}

// sendGrantLocked delivers a grant from protocol-server context at virtual
// time at, using the self-reply channel when the grantee is this node
// (e.g. a manager acquiring its own lock via a condition-variable wake).
func (n *Node) sendGrantLocked(id int, to int, tag uint32, reqVC VectorClock, at sim.Time) {
	payload := n.grantPayloadLocked(id, tag, reqVC)
	n.sendOrSelfLocked(to, msgLockGrant, payload, at)
}

// sendOrSelfLocked sends a reply-class message, short-circuiting
// to the node's own self-reply channel when to == n.id (managers never
// talk to themselves over the wire).
func (n *Node) sendOrSelfLocked(to, typ int, payload []byte, at sim.Time) {
	if to == n.id {
		n.selfReply <- &network.Message{From: n.id, To: n.id, Type: typ, Payload: payload, Send: at, Arrive: at}
		return
	}
	n.ep.SendAt(to, typ, network.ClassReply, payload, at)
}

// handleAcqReq runs on the manager's protocol server.
func (n *Node) handleAcqReq(m *network.Message) {
	r := rbuf{b: m.Payload}
	id := r.i32()
	tag := r.u32()
	reqVC := n.getVC(&r)
	at := m.Arrive + n.sys.plat.RequestService

	n.mu.Lock()
	defer n.mu.Unlock()
	n.chargeInterruptLocked()
	ls := n.lockFor(id)
	prev := ls.lastReq
	ls.lastReq = m.From
	if prev == n.id {
		// The chain ends here: the token is local (possibly held by our
		// own application thread).
		if ls.haveToken && !ls.held {
			ls.haveToken = false
			n.sendGrantLocked(id, m.From, tag, reqVC, at)
			return
		}
		ls.pending = append(ls.pending, pendingReq{from: m.From, tag: tag, vc: reqVC, arrive: m.Arrive})
		return
	}
	var w wbuf
	w.i32(id)
	w.i32(m.From)
	w.u32(tag)
	n.putVC(&w, reqVC)
	//nowlint:allow servernoblock -- bounded traffic: reqOutstanding caps each node at one in-flight acquire, so at most Procs-1 msgAcqFwd can exist at once, far under the request queue depth; the forward cannot block (PR 5 no-deadlock argument)
	n.ep.SendAt(prev, msgAcqFwd, network.ClassRequest, w.b, at)
}

// handleAcqFwd runs on the last holder's protocol server.
func (n *Node) handleAcqFwd(m *network.Message) {
	r := rbuf{b: m.Payload}
	id := r.i32()
	requester := r.i32()
	tag := r.u32()
	reqVC := n.getVC(&r)
	at := m.Arrive + n.sys.plat.RequestService

	n.mu.Lock()
	defer n.mu.Unlock()
	n.chargeInterruptLocked()
	ls := n.lockFor(id)
	if ls.haveToken && !ls.held {
		ls.haveToken = false
		n.sendGrantLocked(id, requester, tag, reqVC, at)
		return
	}
	ls.pending = append(ls.pending, pendingReq{from: requester, tag: tag, vc: reqVC, arrive: m.Arrive})
}

func (n *Node) chargeInterruptLocked() {
	n.stats.Interrupts++
	n.clock.Advance(n.sys.plat.Interrupt)
}
