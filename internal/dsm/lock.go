package dsm

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// Distributed mutex locks, Section 4.2: "Each lock has a statically
// assigned manager. The manager records which thread has most recently
// requested the lock. All lock acquire requests are sent to the manager
// and, if necessary, forwarded by the manager to the thread that last
// requested the lock." Release is lazy: the releaser propagates
// consistency information only when the next acquirer's (forwarded)
// request reaches it.
//
// An acquire therefore costs 0 messages (token already local), 2 messages
// (requester ↔ holder when the manager is one of them), or 3 messages
// (request, forward, grant) — landing in the paper's 170–700 µs window.

// lockState tracks one lock on one node. Manager fields are meaningful
// only on the lock's manager; holder fields on whichever node has the
// token.
type lockState struct {
	// manager side
	lastReq int // tail of the request chain; initially the manager

	// holder side
	held      bool
	haveToken bool
	pending   []pendingReq // forwarded requests awaiting our release
}

type pendingReq struct {
	from   int
	vc     VectorClock
	arrive sim.Time
}

func (n *Node) lockMgr(id int) int {
	p := n.sys.cfg.Procs
	return ((id % p) + p) % p
}

// lockFor returns (creating on demand) this node's state for lock id.
func (n *Node) lockFor(id int) *lockState {
	ls, ok := n.locks[id]
	if !ok {
		ls = &lockState{lastReq: n.lockMgr(id)}
		if n.id == n.lockMgr(id) {
			ls.haveToken = true // the token starts at the manager
		}
		n.locks[id] = ls
	}
	return ls
}

// Acquire obtains lock id with acquire (consistency-importing) semantics.
func (n *Node) Acquire(id int) {
	n.mu.Lock()
	ls := n.lockFor(id)
	if ls.held {
		panic(fmt.Sprintf("dsm: node %d re-acquired held lock %d", n.id, id))
	}
	if ls.haveToken && len(ls.pending) == 0 {
		// Free local re-acquire: no messages, no new consistency info.
		ls.held = true
		n.stats.LockAcquires++
		n.stats.LockLocal++
		n.mu.Unlock()
		return
	}
	n.stats.LockAcquires++
	mgr := n.lockMgr(id)
	myVC := n.vc.clone()
	if n.id == mgr {
		// Run the manager logic locally: forward straight to the chain
		// tail (saves the request hop, as in TreadMarks).
		prev := ls.lastReq
		ls.lastReq = n.id
		if prev == n.id {
			panic(fmt.Sprintf("dsm: node %d chain tail for lock %d but token absent", n.id, id))
		}
		var w wbuf
		w.i32(id)
		w.i32(n.id) // requester
		w.vc(myVC)
		n.mu.Unlock()
		n.ep.Send(prev, msgAcqFwd, network.ClassRequest, w.b)
	} else {
		var w wbuf
		w.i32(id)
		w.vc(myVC)
		n.mu.Unlock()
		n.ep.Send(mgr, msgAcqReq, network.ClassRequest, w.b)
	}

	m := n.recvReply(msgLockGrant)
	r := rbuf{b: m.Payload}
	if got := r.i32(); got != id {
		panic(fmt.Sprintf("dsm: node %d got grant for lock %d while acquiring %d", n.id, got, id))
	}
	senderVC := r.vc()
	recs := decodeRecords(&r)
	n.mu.Lock()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	ls.haveToken = true
	ls.held = true
	n.mu.Unlock()
}

// Release releases lock id with release (consistency-exporting) semantics.
// If an acquire request was forwarded here while the lock was held, the
// token and the consistency delta go straight to that requester.
func (n *Node) Release(id int) {
	n.mu.Lock()
	ls := n.lockFor(id)
	if !ls.held {
		panic(fmt.Sprintf("dsm: node %d released lock %d it does not hold", n.id, id))
	}
	n.closeIntervalLocked()
	ls.held = false
	if len(ls.pending) > 0 {
		p := ls.pending[0]
		ls.pending = ls.pending[1:]
		ls.haveToken = false
		n.sendGrantLocked(id, p.from, p.vc, n.clock.Now())
	}
	n.mu.Unlock()
}

// grantPayloadLocked builds a lock-grant message body: lock id, our vector
// clock, and every interval the requester (whose clock is reqVC) lacks.
// Grants are exact deltas (relative to the requester's own reported clock)
// so they never update the knownVC estimates: estimates may only grow with
// request-class sends, whose per-pair FIFO ordering makes the estimate
// sound (a reply-class grant could overtake an in-flight request-class
// delta and leave the receiver with an interval gap).
func (n *Node) grantPayloadLocked(id int, reqVC VectorClock, to int) []byte {
	var w wbuf
	w.i32(id)
	w.vc(n.vc)
	encodeRecords(&w, n.deltaForLocked(reqVC))
	return w.b
}

// sendGrantLocked delivers a grant from protocol-server context at virtual
// time at, using the self-reply channel when the grantee is this node
// (e.g. a manager acquiring its own lock via a condition-variable wake).
func (n *Node) sendGrantLocked(id int, to int, reqVC VectorClock, at sim.Time) {
	payload := n.grantPayloadLocked(id, reqVC, to)
	n.sendOrSelfLocked(to, msgLockGrant, payload, at)
}

// sendOrSelfLocked sends a reply-class message, short-circuiting
// to the node's own self-reply channel when to == n.id (managers never
// talk to themselves over the wire).
func (n *Node) sendOrSelfLocked(to, typ int, payload []byte, at sim.Time) {
	if to == n.id {
		n.selfReply <- &network.Message{From: n.id, To: n.id, Type: typ, Payload: payload, Send: at, Arrive: at}
		return
	}
	n.ep.SendAt(to, typ, network.ClassReply, payload, at)
}

// handleAcqReq runs on the manager's protocol server.
func (n *Node) handleAcqReq(m *network.Message) {
	r := rbuf{b: m.Payload}
	id := r.i32()
	reqVC := r.vc()
	at := m.Arrive + n.sys.plat.RequestService

	n.mu.Lock()
	defer n.mu.Unlock()
	n.chargeInterruptLocked()
	ls := n.lockFor(id)
	prev := ls.lastReq
	ls.lastReq = m.From
	if prev == n.id {
		// The chain ends here: the token is local (possibly held by our
		// own application thread).
		if ls.haveToken && !ls.held {
			ls.haveToken = false
			n.sendGrantLocked(id, m.From, reqVC, at)
			return
		}
		ls.pending = append(ls.pending, pendingReq{from: m.From, vc: reqVC, arrive: m.Arrive})
		return
	}
	var w wbuf
	w.i32(id)
	w.i32(m.From)
	w.vc(reqVC)
	n.ep.SendAt(prev, msgAcqFwd, network.ClassRequest, w.b, at)
}

// handleAcqFwd runs on the last holder's protocol server.
func (n *Node) handleAcqFwd(m *network.Message) {
	r := rbuf{b: m.Payload}
	id := r.i32()
	requester := r.i32()
	reqVC := r.vc()
	at := m.Arrive + n.sys.plat.RequestService

	n.mu.Lock()
	defer n.mu.Unlock()
	n.chargeInterruptLocked()
	ls := n.lockFor(id)
	if ls.haveToken && !ls.held {
		ls.haveToken = false
		n.sendGrantLocked(id, requester, reqVC, at)
		return
	}
	ls.pending = append(ls.pending, pendingReq{from: requester, vc: reqVC, arrive: m.Arrive})
}

func (n *Node) chargeInterruptLocked() {
	n.stats.Interrupts++
	n.clock.Advance(n.sys.plat.Interrupt)
}
