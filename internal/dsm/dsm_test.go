package dsm

import (
	"fmt"
	"testing"
)

// runSystem builds a system, registers the given regions, runs master,
// and fails the test on any node panic.
func runSystem(t *testing.T, procs int, regions map[string]RegionFunc, master func(n *Node)) *System {
	t.Helper()
	sys := New(Config{Procs: procs})
	for name, fn := range regions {
		sys.Register(name, fn)
	}
	if err := sys.Run(master); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return sys
}

func TestMallocAlignmentAndGrowth(t *testing.T) {
	sys := New(Config{Procs: 1})
	a := sys.Malloc(3)
	b := sys.Malloc(8)
	if a%8 != 0 || b%8 != 0 {
		t.Fatalf("allocations not 8-byte aligned: %d, %d", a, b)
	}
	if b != a+8 {
		t.Fatalf("expected 3-byte block rounded to 8: a=%d b=%d", a, b)
	}
	c := sys.MallocPage(16)
	if int(c)%PageSize != 0 {
		t.Fatalf("MallocPage not page aligned: %d", c)
	}
	_ = sys.Run(func(n *Node) {})
}

func TestSingleNodeReadWrite(t *testing.T) {
	sys := New(Config{Procs: 1})
	a := sys.Malloc(4096 * 3)
	err := sys.Run(func(n *Node) {
		n.WriteF64(a, 3.5)
		n.WriteI64(a+8, -42)
		n.WriteI32(a+16, 7)
		if got := n.ReadF64(a); got != 3.5 {
			t.Errorf("ReadF64 = %v, want 3.5", got)
		}
		if got := n.ReadI64(a + 8); got != -42 {
			t.Errorf("ReadI64 = %v, want -42", got)
		}
		if got := n.ReadI32(a + 16); got != 7 {
			t.Errorf("ReadI32 = %v, want 7", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrossPageSpanningAccess(t *testing.T) {
	sys := New(Config{Procs: 1})
	base := sys.MallocPage(2 * PageSize)
	a := base + Addr(PageSize-4) // straddles the page boundary
	err := sys.Run(func(n *Node) {
		n.WriteF64(a, 1.25)
		if got := n.ReadF64(a); got != 1.25 {
			t.Errorf("straddling ReadF64 = %v, want 1.25", got)
		}
		src := make([]byte, 3*PageSize/2)
		for i := range src {
			src[i] = byte(i * 7)
		}
		n.WriteBytes(base, src)
		dst := make([]byte, len(src))
		n.ReadBytes(base, dst)
		for i := range src {
			if src[i] != dst[i] {
				t.Fatalf("byte %d: got %d want %d", i, dst[i], src[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForkJoinVisibility(t *testing.T) {
	sys := New(Config{Procs: 4})
	a := sys.MallocPage(8 * 4)
	sys.Register("write-id", func(n *Node, arg []byte) {
		n.WriteI64(a+Addr(8*n.ID()), int64(100+n.ID()))
	})
	err := sys.Run(func(n *Node) {
		// Master initializes before the fork; slaves must see it.
		n.WriteI64(a, -1)
		n.RunParallel("write-id", nil)
		// After join the master must see every slave's write.
		for i := 0; i < 4; i++ {
			if got := n.ReadI64(a + Addr(8*i)); got != int64(100+i) {
				t.Errorf("slot %d = %d, want %d", i, got, 100+i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMasterWritesVisibleToSlaves(t *testing.T) {
	sys := New(Config{Procs: 3})
	a := sys.MallocPage(8)
	got := make([]int64, 3)
	sys.Register("read-shared", func(n *Node, arg []byte) {
		got[n.ID()] = n.ReadI64(a)
	})
	err := sys.Run(func(n *Node) {
		n.WriteI64(a, 777)
		n.RunParallel("read-shared", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 777 {
			t.Errorf("node %d read %d, want 777", i, v)
		}
	}
}

func TestBarrierMakesWritesVisible(t *testing.T) {
	const P = 4
	sys := New(Config{Procs: P})
	a := sys.MallocPage(8 * P)
	sums := make([]int64, P)
	sys.Register("phase", func(n *Node, arg []byte) {
		n.WriteI64(a+Addr(8*n.ID()), int64(n.ID()+1))
		n.Barrier()
		var s int64
		for i := 0; i < P; i++ {
			s += n.ReadI64(a + Addr(8*i))
		}
		sums[n.ID()] = s
	})
	err := sys.Run(func(n *Node) { n.RunParallel("phase", nil) })
	if err != nil {
		t.Fatal(err)
	}
	want := int64(P * (P + 1) / 2)
	for i, s := range sums {
		if s != want {
			t.Errorf("node %d sum = %d, want %d", i, s, want)
		}
	}
}

func TestLockProtectedCounter(t *testing.T) {
	const P = 8
	const iters = 25
	sys := New(Config{Procs: P})
	a := sys.MallocPage(8)
	sys.Register("inc", func(n *Node, arg []byte) {
		for i := 0; i < iters; i++ {
			n.Acquire(1)
			n.WriteI64(a, n.ReadI64(a)+1)
			n.Release(1)
		}
	})
	err := sys.Run(func(n *Node) {
		n.RunParallel("inc", nil)
		if got := n.ReadI64(a); got != P*iters {
			t.Errorf("counter = %d, want %d", got, P*iters)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleWriterFalseSharing(t *testing.T) {
	// All nodes write disjoint words of the SAME page concurrently; the
	// multiple-writer protocol must merge all modifications at the
	// barrier (diff of each writer against its twin).
	const P = 8
	const words = 64
	sys := New(Config{Procs: P})
	a := sys.MallocPage(8 * words) // one page, 8 writers
	sys.Register("scatter", func(n *Node, arg []byte) {
		for w := n.ID(); w < words; w += P {
			n.WriteI64(a+Addr(8*w), int64(1000*n.ID()+w))
		}
		n.Barrier()
		for w := 0; w < words; w++ {
			want := int64(1000*(w%P) + w)
			if got := n.ReadI64(a + Addr(8*w)); got != want {
				t.Errorf("node %d: word %d = %d, want %d", n.ID(), w, got, want)
			}
		}
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("scatter", nil) }); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacentInt32FalseSharing(t *testing.T) {
	// Regression: two nodes concurrently write ADJACENT int32 values that
	// share an 8-byte machine word. The multiple-writer merge must keep
	// both writes, which requires diffing at 4-byte granularity (coarser
	// diff words capture the neighbour's stale half and lose one write).
	const P = 2
	const pairs = 64
	sys := New(Config{Procs: P})
	a := sys.MallocPage(8 * pairs)
	sys.Register("adjacent", func(n *Node, arg []byte) {
		for k := 0; k < pairs; k++ {
			// Node 0 writes the even halves, node 1 the odd halves of
			// each 8-byte word.
			idx := 2*k + n.ID()
			n.WriteI32(a+Addr(4*idx), int32(1000+idx))
		}
		n.Barrier()
		for idx := 0; idx < 2*pairs; idx++ {
			if got := n.ReadI32(a + Addr(4*idx)); got != int32(1000+idx) {
				t.Errorf("node %d: slot %d = %d, want %d (lost write in word-granularity merge)",
					n.ID(), idx, got, 1000+idx)
			}
		}
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("adjacent", nil) }); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedParallelRegions(t *testing.T) {
	const P = 4
	const rounds = 10
	sys := New(Config{Procs: P})
	a := sys.MallocPage(8 * P)
	sys.Register("accum", func(n *Node, arg []byte) {
		cur := n.ReadI64(a + Addr(8*n.ID()))
		n.WriteI64(a+Addr(8*n.ID()), cur+1)
	})
	err := sys.Run(func(n *Node) {
		for r := 0; r < rounds; r++ {
			n.RunParallel("accum", nil)
		}
		for i := 0; i < P; i++ {
			if got := n.ReadI64(a + Addr(8*i)); got != rounds {
				t.Errorf("slot %d = %d, want %d", i, got, rounds)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSemaphorePipeline(t *testing.T) {
	// Producer/consumer pipeline from Figure 3 of the paper: semaphores
	// carry both synchronization and consistency.
	const rounds = 20
	sys := New(Config{Procs: 2})
	data := sys.MallocPage(8)
	const semAvail, semDone = 10, 11
	results := make([]int64, 0, rounds)
	sys.Register("pipe", func(n *Node, arg []byte) {
		if n.ID() == 0 { // producer
			for i := 0; i < rounds; i++ {
				n.WriteI64(data, int64(i*i))
				n.SemaSignal(semAvail)
				n.SemaWait(semDone)
			}
		} else { // consumer
			for i := 0; i < rounds; i++ {
				n.SemaWait(semAvail)
				results = append(results, n.ReadI64(data))
				n.SemaSignal(semDone)
			}
		}
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("pipe", nil) }); err != nil {
		t.Fatal(err)
	}
	if len(results) != rounds {
		t.Fatalf("consumer got %d values, want %d", len(results), rounds)
	}
	for i, v := range results {
		if v != int64(i*i) {
			t.Errorf("round %d: consumer read %d, want %d", i, v, i*i)
		}
	}
}

func TestSemaphoreBankedSignals(t *testing.T) {
	// Signals issued before any wait must be banked (classic V-before-P).
	sys := New(Config{Procs: 2})
	a := sys.MallocPage(8)
	sys.Register("bank", func(n *Node, arg []byte) {
		if n.ID() == 0 {
			n.WriteI64(a, 5)
			n.SemaSignal(3)
			n.SemaSignal(3)
		} else {
			n.SemaWait(3)
			n.SemaWait(3)
			if got := n.ReadI64(a); got != 5 {
				t.Errorf("consumer read %d, want 5", got)
			}
		}
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("bank", nil) }); err != nil {
		t.Fatal(err)
	}
}

func TestConditionVariableTaskQueue(t *testing.T) {
	// The paper's Figure 4 task queue: a critical section protects the
	// queue; waiters block on a condition variable; termination uses a
	// broadcast when every thread is waiting.
	const P = 4
	const tasks = 40
	const lockID, condID = 0, 0
	sys := New(Config{Procs: P})
	// Shared: head index, tail index, nwait, queue of task values, results.
	qHead := sys.MallocPage(8)
	qTail := sys.Malloc(8)
	nwait := sys.Malloc(8)
	queue := sys.MallocPage(8 * (tasks + 8))
	done := sys.MallocPage(8 * tasks)

	sys.Register("worker", func(n *Node, arg []byte) {
		for {
			var task int64 = -1
			n.Acquire(lockID)
			for {
				h, t := n.ReadI64(qHead), n.ReadI64(qTail)
				if h < t {
					task = n.ReadI64(queue + Addr(8*(h%(tasks+8))))
					n.WriteI64(qHead, h+1)
					break
				}
				nw := n.ReadI64(nwait) + 1
				n.WriteI64(nwait, nw)
				if nw == P {
					n.CondBroadcast(condID, lockID)
					break
				}
				n.CondWait(condID, lockID)
				if n.ReadI64(nwait) == P {
					break
				}
				n.WriteI64(nwait, n.ReadI64(nwait)-1)
			}
			n.Release(lockID)
			if task < 0 {
				return
			}
			// "Process" the task, then mark it done.
			n.WriteI64(done+Addr(8*task), task*task)
		}
	})
	err := sys.Run(func(n *Node) {
		for i := 0; i < tasks; i++ {
			n.WriteI64(queue+Addr(8*i), int64(i))
		}
		n.WriteI64(qTail, tasks)
		n.RunParallel("worker", nil)
		for i := 0; i < tasks; i++ {
			if got := n.ReadI64(done + Addr(8*i)); got != int64(i*i) {
				t.Errorf("task %d result = %d, want %d", i, got, i*i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushVisibility(t *testing.T) {
	// Figure 1 pipeline with flush and busy-waiting: the flush pushes
	// write notices to all nodes, so a spinning reader eventually faults
	// and observes the new value.
	sys := New(Config{Procs: 3})
	avail := sys.MallocPage(8)
	data := sys.MallocPage(8)
	sys.Register("flushpipe", func(n *Node, arg []byte) {
		switch n.ID() {
		case 0:
			n.WriteI64(data, 12345)
			n.WriteI64(avail, 1)
			n.Flush()
		case 1:
			for n.ReadI64(avail) == 0 {
				n.Poll()
			}
			if got := n.ReadI64(data); got != 12345 {
				t.Errorf("reader saw %d, want 12345", got)
			}
		default:
			// Uninvolved node: flush disturbs it anyway (interrupt).
		}
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("flushpipe", nil) }); err != nil {
		t.Fatal(err)
	}
	st := sys.Node(2).Stats()
	if st.Interrupts == 0 {
		t.Errorf("uninvolved node was not interrupted by flush (got %d interrupts)", st.Interrupts)
	}
}

func TestFlushMessageCost(t *testing.T) {
	// Section 3.2.3: one flush costs 2(n-1) messages (notices + acks).
	for _, procs := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			sys := New(Config{Procs: procs})
			a := sys.MallocPage(8)
			sys.Register("noop", func(n *Node, arg []byte) {})
			err := sys.Run(func(n *Node) {
				n.RunParallel("noop", nil) // wake everyone once
				n.WriteI64(a, 1)
				sys.Switch().ResetStats()
				n.Flush()
				msgs, _ := sys.Switch().Stats().Snapshot()
				if want := int64(2 * (procs - 1)); msgs != want {
					t.Errorf("flush cost %d messages, want %d", msgs, want)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLockChainThroughManager(t *testing.T) {
	// Exercise manager forwarding: the lock's manager is node 1 (id%P),
	// and acquirers bounce between nodes so grants flow holder→requester.
	const P = 4
	const lockID = 1 // manager = node 1
	sys := New(Config{Procs: P})
	a := sys.MallocPage(8)
	sys.Register("chain", func(n *Node, arg []byte) {
		for i := 0; i < 10; i++ {
			n.Acquire(lockID)
			n.WriteI64(a, n.ReadI64(a)+int64(n.ID()+1))
			n.Release(lockID)
		}
	})
	err := sys.Run(func(n *Node) {
		n.RunParallel("chain", nil)
		want := int64(10 * (1 + 2 + 3 + 4))
		if got := n.ReadI64(a); got != want {
			t.Errorf("sum = %d, want %d", got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	sys := New(Config{Procs: 2})
	sys.Register("work", func(n *Node, arg []byte) {
		n.Compute(1e6) // 1e6 flops = 10 ms at 10 ns/flop
		n.Barrier()
	})
	err := sys.Run(func(n *Node) {
		n.RunParallel("work", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.MaxClock(); got < 10_000_000 {
		t.Errorf("virtual time %v, want >= 10ms", got)
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	sys := New(Config{Procs: 2})
	sys.Register("boom", func(n *Node, arg []byte) {
		if n.ID() == 1 {
			panic("deliberate failure")
		}
		n.Barrier() // would hang without abort propagation
	})
	err := sys.Run(func(n *Node) { n.RunParallel("boom", nil) })
	if err == nil {
		t.Fatal("expected error from panicking region")
	}
}

func TestStatsAccounting(t *testing.T) {
	const P = 2
	sys := New(Config{Procs: P})
	a := sys.MallocPage(8)
	sys.Register("touch", func(n *Node, arg []byte) {
		if n.ID() == 1 {
			_ = n.ReadI64(a) // must fetch the page from its home
		}
		n.Barrier()
	})
	err := sys.Run(func(n *Node) {
		n.WriteI64(a, 9)
		n.RunParallel("touch", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Node(1).Stats()
	if st.PageFetches == 0 {
		t.Error("expected node 1 to fetch a page")
	}
	if st.ReadFaults == 0 {
		t.Error("expected node 1 to take a read fault")
	}
	tot := sys.TotalStats()
	if tot.Barriers != P {
		t.Errorf("total barriers = %d, want %d", tot.Barriers, P)
	}
}
