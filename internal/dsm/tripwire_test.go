package dsm

import (
	"strings"
	"testing"

	"repro/internal/network"
)

// TestPumpPanicBecomesRunError pins the reply-router tripwire: a
// malformed reply-class message panics the router pump while it parses
// the payload for routing, and that panic must surface as a Run error
// through recoverAbort — not kill the process with the drain goroutine
// (which is exactly what happened before the pump had the deferred
// recover; the tripwire analyzer now enforces the pattern statically).
func TestPumpPanicBecomesRunError(t *testing.T) {
	sys := New(Config{Procs: 2, MultiClient: true})
	err := sys.Run(func(n *Node) {
		// A lock grant whose payload is too short for its [i32 id]
		// [u32 tag] routing header: replyRouteKey panics in the pump.
		n.selfReply <- &network.Message{Type: msgLockGrant, Payload: []byte{1}}
		// The abort closes sys.done; block until it does so the master
		// cannot win the race and end the run cleanly first.
		<-n.sys.done
	})
	if err == nil {
		t.Fatal("Run returned nil; pump panic was swallowed or the run ended cleanly")
	}
	if !strings.Contains(err.Error(), "short message") {
		t.Fatalf("Run error %q does not carry the pump's panic", err)
	}
}
