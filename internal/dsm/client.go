package dsm

import (
	"fmt"
	"sync"

	"repro/internal/network"
	"repro/internal/sim"
)

// The island-delegate hooks: everything a NOW-of-SMPs backend needs to
// let SEVERAL application threads share one dsm.Node.
//
// A classic node is one workstation with exactly one application thread;
// every blocking primitive parks that thread on the node's single reply
// channel and every protocol cost lands on the node's single clock. An
// SMP island keeps one Node as its delegate — one seat in the LRC
// protocol, one private copy of the paged address space — but runs a whole
// team of threads against it. Client is one such thread's handle: it
// carries the thread's own virtual clock, a reply tag that routes grants
// and acknowledgments back to the exact thread that asked for them, and
// the island-local cost constants for synchronization satisfied without
// leaving the node.
//
// The classic single-thread node is the degenerate case: every Node owns
// a default client (tag 0, the node's own clock, zero local costs) and its
// exported application API simply delegates to it, so a system built
// without Config.MultiClient keeps its API and protocol semantics. (The
// wire format did change for everyone: tagged requests and replies cost
// 4 extra bytes, and handleSemaWait's banked-timestamp causality fix can
// delay a semaphore grant that previously ignored its matching signal's
// virtual time.)

// ClientCosts are the island-local (bus-scale) synchronization charges a
// multi-client node applies to operations that complete without protocol
// messages: a lock handoff between two threads of the island, a semaphore
// op banked at a local manager, a condition wake. The zero value (used by
// the classic client) charges nothing, preserving single-thread behavior.
type ClientCosts struct {
	Lock sim.Time
	Sema sim.Time
	Cond sim.Time
}

// Client is one application thread's handle on a Node. All application-
// side protocol operations (synchronization, typed shared-memory access,
// fork/join) are Client methods; Node re-exports them through its default
// client for the classic one-thread-per-node configuration.
type Client struct {
	n     *Node
	clk   *sim.Clock
	tag   uint32
	costs ClientCosts
}

// NewClient registers an additional application thread on the node. The
// thread's protocol replies are routed by a per-node tag, so the node must
// belong to a system created with Config.MultiClient. clk is the thread's
// own virtual clock (protocol costs incurred on the thread's behalf are
// charged there).
func (n *Node) NewClient(clk *sim.Clock, costs ClientCosts) *Client {
	if n.router == nil {
		panic("dsm: NewClient requires a Config.MultiClient system")
	}
	n.mu.Lock()
	n.nextTag++
	tag := n.nextTag
	n.mu.Unlock()
	return &Client{n: n, clk: clk, tag: tag, costs: costs}
}

// Node returns the island delegate this client runs against.
func (c *Client) Node() *Node { return c.n }

// Now returns the client's current virtual time.
func (c *Client) Now() sim.Time { return c.clk.Now() }

// Compute charges the virtual cost of flops floating-point operations to
// the client's clock.
func (c *Client) Compute(flops float64) {
	c.clk.Advance(c.n.sys.plat.ComputeCost(flops))
}

// Charge advances the client's clock by an explicit duration.
func (c *Client) Charge(d sim.Time) { c.clk.Advance(d) }

// recvReply blocks the client for the next reply addressed to it —
// from the wire or from the node's own protocol server (self-grants) —
// advances the client's clock to its arrival, and asserts its type. On a
// classic node this reads the shared reply channel directly; on a
// multi-client node the reply router matches (type, key), where key is
// the client's tag for tagged reply types and 0 for replies that are
// unique per node by construction (page/diff replies under the island
// engine lock, barrier departures, flush acks).
func (c *Client) recvReply(wantType int, key uint32) *network.Message {
	n := c.n
	var m *network.Message
	if n.router != nil {
		m = n.router.await(wantType, key, n.sys.done)
	} else {
		select {
		case m = <-n.ep.Chan(network.ClassReply):
		case m = <-n.selfReply:
		case <-n.sys.done:
		}
	}
	if m == nil {
		panic(abortError{cause: "switch shut down"})
	}
	c.clk.AdvanceTo(m.Arrive)
	if m.Type == msgBatch {
		m = n.unwrapReplyBatch(m)
	}
	if m.Type != wantType {
		panic(fmt.Sprintf("dsm: node %d expected reply type %d, got %d from %d", n.id, wantType, m.Type, m.From))
	}
	return m
}

// unwrapReplyBatch splits a reply-class frame (a batched barrier
// departure wave; see forwardDeparturesLocked): the FIRST sub is the
// primary reply handed back to the waiter, and every sub behind it is a
// piggybacked notice — a msgGCFloor epoch announcement riding the
// departure — handled inline right here. Running the handler on the
// application thread is safe because the thread is parked in recvReply
// holding neither n.mu nor fetchMu, exactly the locks the handler takes
// (and the server-side epoch attempt only ever TryLocks fetchMu).
func (n *Node) unwrapReplyBatch(m *network.Message) *network.Message {
	var primary *network.Message
	r := rbuf{b: m.Payload}
	walkBatch(&r, n.id, func(typ int, payload []byte) {
		sub := &network.Message{
			From: m.From, To: m.To, Type: typ, Class: m.Class,
			Payload: payload, Send: m.Send, Arrive: m.Arrive,
		}
		if primary == nil {
			primary = sub
			return
		}
		switch typ {
		case msgGCFloor:
			n.handleGCFloor(sub)
		default:
			panic(fmt.Sprintf("dsm: node %d: unexpected piggyback type %d in reply frame from %d", n.id, typ, m.From))
		}
	})
	if primary == nil {
		panic(fmt.Sprintf("dsm: node %d: empty reply frame from %d", n.id, m.From))
	}
	return primary
}

// ---------------------------------------------------------------------
// Reply routing. One goroutine per multi-client node drains the node's
// reply channels and matches each message to the waiter it answers. Tagged
// reply types (lock grants, semaphore grants and acks, condition-wait
// acks) carry the requesting client's tag in a fixed payload position;
// untagged types route by message type alone, which is unambiguous because
// the operations that await them are serialized per island (see the
// uniqueness argument in recvReply).
// ---------------------------------------------------------------------

type routeKey struct {
	typ int
	key uint32
}

type replyRouter struct {
	mu      sync.Mutex
	waiting map[routeKey][]chan *network.Message
	backlog map[routeKey][]*network.Message
}

func newReplyRouter() *replyRouter {
	return &replyRouter{
		waiting: make(map[routeKey][]chan *network.Message),
		backlog: make(map[routeKey][]*network.Message),
	}
}

// replyRouteKey extracts the routing key of a reply message: the client
// tag for tagged types, 0 otherwise.
func replyRouteKey(m *network.Message) routeKey {
	k := routeKey{typ: m.Type}
	switch m.Type {
	case msgBatch:
		// A reply-class frame routes by its FIRST sub — the primary reply
		// (the piggybacked notices behind it carry no tag). The whole
		// frame is delivered to that waiter; recvReply unwraps it.
		r := rbuf{b: m.Payload}
		r.uv() // sub count
		typ := int(r.u8())
		return replyRouteKey(&network.Message{Type: typ, Payload: r.need(r.uvi())})
	case msgLockGrant, msgSemaGrant:
		// Payload leads with [i32 id][u32 tag].
		r := rbuf{b: m.Payload}
		r.i32()
		k.key = r.u32()
	case msgSemaAck, msgCondWaitAck:
		// Payload is [u32 tag].
		r := rbuf{b: m.Payload}
		k.key = r.u32()
	}
	return k
}

// route delivers one message: to a registered waiter if any, otherwise to
// the backlog for the next matching await.
func (r *replyRouter) route(m *network.Message) {
	k := replyRouteKey(m)
	r.mu.Lock()
	if q := r.waiting[k]; len(q) > 0 {
		ch := q[0]
		r.waiting[k] = q[1:]
		r.mu.Unlock()
		ch <- m
		return
	}
	r.backlog[k] = append(r.backlog[k], m)
	r.mu.Unlock()
}

// await blocks until a message with the given (type, key) is routed here
// or the system shuts down (returning nil).
func (r *replyRouter) await(typ int, key uint32, done <-chan struct{}) *network.Message {
	k := routeKey{typ: typ, key: key}
	r.mu.Lock()
	if q := r.backlog[k]; len(q) > 0 {
		m := q[0]
		r.backlog[k] = q[1:]
		r.mu.Unlock()
		return m
	}
	ch := make(chan *network.Message, 1)
	r.waiting[k] = append(r.waiting[k], ch)
	r.mu.Unlock()
	select {
	case m := <-ch:
		return m
	case <-done:
		return nil
	}
}

// pump is the router goroutine: it drains the node's wire reply channel
// and self-reply channel and routes every message. It exits when the
// switch shuts down.
func (r *replyRouter) pump(n *Node) {
	for {
		select {
		case m, ok := <-n.ep.Chan(network.ClassReply):
			if !ok || m == nil {
				return
			}
			r.route(m)
		case m := <-n.selfReply:
			r.route(m)
		case <-n.sys.done:
			return
		}
	}
}
