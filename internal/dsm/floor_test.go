package dsm

import "testing"

// TestGCEpochFloorAgreement stresses the window the departure-loop floor
// snapshot closes: with one shared page and skewed departure processing,
// a fast node's next-barrier arrival can reach the manager's server
// while it is still sending this barrier's departures. The collector's
// checkEpochFloor tripwire panics (-> Run error) if any node ever
// receives a floor diverging from the manager's.
func TestGCEpochFloorAgreement(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		const P = 8
		const rounds = 20
		sys := New(Config{Procs: P})
		a := sys.MallocPage(8 * P)
		sys.Register("skew", func(n *Node, _ []byte) {
			me := n.ID()
			for r := 0; r < rounds; r++ {
				n.WriteI64(a+Addr(8*me), int64(r*100+me))
				n.Barrier()
				for j := 0; j < P; j++ {
					if got := n.ReadI64(a + Addr(8*j)); got != int64(r*100+j) {
						t.Errorf("node %d round %d slot %d = %d, want %d", me, r, j, got, r*100+j)
					}
				}
				if me == P-1 {
					n.Compute(30000) // the last departer lags behind the pack
				}
				n.Barrier()
			}
		})
		if err := sys.Run(func(n *Node) { n.RunParallel("skew", nil) }); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}
