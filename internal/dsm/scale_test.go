package dsm

import (
	"fmt"
	"testing"
)

// TestScale128AcquireGCPushes drives the lock/semaphore ring at 128 nodes
// with the acquire collector under pressure: a GC consensus round here
// pushes deltas to up to 127 quiet peers through TrySendAt, so the run
// completing with correct contents (the fixture asserts them) is the
// convergence claim — the drop-and-retry pacing must make progress against
// the scaled queue bound rather than livelocking the consensus floor.
func TestScale128AcquireGCPushes(t *testing.T) {
	if testing.Short() {
		t.Skip("128-node ring is slow under -short")
	}
	sys := acqRingWorkload(t, Config{Procs: 128, GCPressure: 64}, 12)
	st := sys.TotalStats()
	if st.GCAcqEpochs == 0 {
		t.Error("no acquire epochs processed at 128 nodes")
	}
	if st.GCSyncPushes == 0 {
		t.Error("no consensus pushes at 128 nodes: the push path was not exercised")
	}
	if st.IntervalsRetired == 0 {
		t.Error("acquire epochs retired nothing at 128 nodes")
	}
}

// TestScale128TreeConsensusFanout re-drives the 128-node push ring and
// asserts the hierarchical-consensus claims on top of convergence: push
// rounds still announce and retire (the floor converges), and the
// per-round fan-out of a push initiator is bounded by its combining-tree
// degree — O(fan-in) — rather than the machine size. The flat protocol
// sent up to P-1 = 127 msgGCSync datagrams from one node per round; the
// tree transport sends at most fanin+1 = 9 first-hop frames per round
// (summed over ALL initiators, which is strictly stronger than the
// per-node claim) and relays the rest hop by hop.
func TestScale128TreeConsensusFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("128-node ring is slow under -short")
	}
	sys := acqRingWorkload(t, Config{Procs: 128, GCPressure: 64}, 12)
	st := sys.TotalStats()
	if st.GCAcqEpochs == 0 || st.IntervalsRetired == 0 {
		t.Fatalf("consensus did not converge: %d acquire epochs, %d intervals retired",
			st.GCAcqEpochs, st.IntervalsRetired)
	}
	sys.acq.mu.Lock()
	rounds, announced := sys.acq.pushes, sys.acq.announced
	sys.acq.mu.Unlock()
	if announced == 0 {
		t.Error("no acquire epochs announced at 128 nodes: the floor never advanced")
	}
	if rounds == 0 {
		t.Fatal("no push rounds initiated: the push path was not exercised")
	}
	degree := int64(DefaultBarrierFanin + 1) // children of one node, plus its parent
	if st.GCSyncPushes > rounds*degree {
		t.Errorf("%d push frames over %d rounds exceeds the tree-degree bound %d: "+
			"initiators are fanning out O(P), not O(fan-in)",
			st.GCSyncPushes, rounds, rounds*degree)
	}
	if st.GCSyncRelays == 0 {
		t.Error("no relays: pushes are not routing through the combining tree")
	}
}

// TestTreeVsFlatConsensusEquivalence pins the tree-vs-flat agreement two
// ways at ≤ 9 nodes. First, the routing gate: at the paper's machine
// sizes (procs ≤ fanin+1) the flat direct-send transport must stay in
// effect — that path is what the golden byte-count pins certify, and the
// predicate going true there would silently change their traffic.
// Second, equivalence past the gate: the same workload run flat (default
// fan-in) and tree-routed (fan-in 2 puts 8 nodes on a four-level tree)
// must both converge with correct contents (the fixture asserts every
// page) and retire protocol state — routing is a transport choice, never
// a protocol change.
func TestTreeVsFlatConsensusEquivalence(t *testing.T) {
	flat := acqRingWorkload(t, Config{Procs: 8, GCPressure: 32}, 10)
	if flat.nodes[1].gcTreeConsensus() {
		t.Error("8 nodes at the default fan-in must keep the flat consensus transport")
	}
	if st := flat.TotalStats(); st.GCSyncRelays != 0 {
		t.Errorf("flat transport relayed %d frames", st.GCSyncRelays)
	}
	tree := acqRingWorkload(t, Config{Procs: 8, GCPressure: 32, BarrierFanin: 2}, 10)
	if !tree.nodes[1].gcTreeConsensus() {
		t.Fatal("8 nodes at fan-in 2 must tree-route the consensus")
	}
	fs, ts := flat.TotalStats(), tree.TotalStats()
	if fs.IntervalsRetired == 0 || ts.IntervalsRetired == 0 {
		t.Errorf("retirement missing: flat retired %d, tree retired %d",
			fs.IntervalsRetired, ts.IntervalsRetired)
	}
	if fs.GCAcqEpochs == 0 || ts.GCAcqEpochs == 0 {
		t.Errorf("acquire epochs missing: flat %d, tree %d", fs.GCAcqEpochs, ts.GCAcqEpochs)
	}
}

// TestTreeBarrierFloorPiggyback mixes locks with barriers on a two-level
// tree while barrier episodes never collect (GCMinRetire is set beyond
// reach), so announced acquire floors are still pending when departure
// waves flow. The interior nodes must piggyback those floors onto the
// batched departure frames (one reply-class msgBatch per child), and the
// children must unwrap the frame, hand the departure to the parked
// barrier waiter, and process the floor inline — the whole reply-frame
// path, asserted by the piggyback counter and by every node reading
// correct neighbor values afterward.
func TestTreeBarrierFloorPiggyback(t *testing.T) {
	const procs, rounds = 16, 24
	sys := New(Config{Procs: procs, GCPressure: 24, GCMinRetire: 1 << 30})
	arr := sys.MallocPage(procs * PageSize)
	ctr := sys.MallocPage(8)
	sys.Register("mix", func(n *Node, _ []byte) {
		me := n.ID()
		for r := 0; r < rounds; r++ {
			n.WriteI64(arr+Addr(me*PageSize), int64(r*1000+me))
			n.Acquire(1)
			n.WriteI64(ctr, n.ReadI64(ctr)+1)
			n.Release(1)
			n.Barrier()
			o := (me + 1) % procs
			if got := n.ReadI64(arr + Addr(o*PageSize)); got != int64(r*1000+o) {
				t.Errorf("node %d round %d read neighbor %d = %d, want %d", me, r, o, got, r*1000+o)
			}
			n.Barrier()
		}
	})
	if err := sys.Run(func(n *Node) { n.RunParallel("mix", nil) }); err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	if got := int64(rounds * procs); st.LockAcquires < got {
		t.Errorf("lock traffic missing: %d acquires, want ≥ %d", st.LockAcquires, got)
	}
	if st.GCAcqEpochs == 0 {
		t.Error("no acquire epochs: the piggyback scenario needs announced floors")
	}
	if st.GCDepartFloors == 0 {
		t.Error("no floors piggybacked on departure waves: the reply-frame path was not exercised")
	}
}

// TestScaleTreeBarrierCorrectness runs a neighbor-exchange kernel across
// node counts that force every tree shape the combining barrier can take —
// flat (≤ fan-in+1), two levels, three levels at 128 — and with a narrow
// fan-in that forces depth at small node counts. Every node writes its own
// page each round and reads both ring neighbors after the barrier, so a
// departure wave that misses an arrival's delta shows up as a stale read.
func TestScaleTreeBarrierCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("large-team barrier sweep is slow under -short")
	}
	for _, tt := range []struct{ procs, fanin int }{
		{16, 0},  // two levels at the default fan-in
		{16, 2},  // binary tree, four levels
		{32, 0},  // two levels, uneven leaf row
		{64, 0},  // two full levels
		{128, 0}, // three levels
	} {
		tt := tt
		t.Run(fmt.Sprintf("p%d_f%d", tt.procs, tt.fanin), func(t *testing.T) {
			t.Parallel()
			const rounds = 4
			sys := New(Config{Procs: tt.procs, BarrierFanin: tt.fanin})
			arr := sys.MallocPage(tt.procs * PageSize)
			sys.Register("ring", func(n *Node, _ []byte) {
				me := n.ID()
				for r := 0; r < rounds; r++ {
					n.WriteI64(arr+Addr(me*PageSize), int64(r*1000+me))
					n.Barrier()
					for _, o := range []int{(me + 1) % tt.procs, (me + tt.procs - 1) % tt.procs} {
						if got := n.ReadI64(arr + Addr(o*PageSize)); got != int64(r*1000+o) {
							t.Errorf("node %d round %d read neighbor %d = %d, want %d",
								me, r, o, got, r*1000+o)
						}
					}
					n.Barrier()
				}
			})
			if err := sys.Run(func(n *Node) { n.RunParallel("ring", nil) }); err != nil {
				t.Fatal(err)
			}
			if got := sys.Node(0).Stats().Barriers; got != 2*rounds {
				t.Errorf("node 0 ran %d barriers, want %d", got, 2*rounds)
			}
		})
	}
}

// TestTrafficBreakdownSums checks the cost-attribution split on a run
// that exercises all three categories: the per-category pairs must sum
// back to the switch totals, and a lock/semaphore workload with the
// acquire collector on must show traffic in every category.
func TestTrafficBreakdownSums(t *testing.T) {
	sys := acqRingWorkload(t, Config{Procs: 4, GCPressure: 16}, 48)
	b := sys.TrafficBreakdown()
	msgs, bytes := sys.Switch().Stats().Snapshot()
	if tm, tb := b.Total(); tm != msgs || tb != bytes {
		t.Errorf("breakdown total %d msgs / %d bytes, switch %d / %d", tm, tb, msgs, bytes)
	}
	if b.PageMsgs == 0 || b.SyncMsgs == 0 || b.GCMsgs == 0 {
		t.Errorf("expected traffic in every category, got %+v", b)
	}
	if b.PageBytes == 0 || b.SyncBytes == 0 || b.GCBytes == 0 {
		t.Errorf("expected bytes in every category, got %+v", b)
	}
}

// TestBarrierTreeShape pins the combining-tree arithmetic: the heap
// parent/child relations, the degenerate flat shape at fan-in ≥ procs-1,
// and the arrival-buffer sizing that must hold up at 128 nodes (satellite
// of the >8-node scaling work: the old flat manager buffered 4*procs
// arrivals; the tree buffers per-child).
func TestBarrierTreeShape(t *testing.T) {
	if got := barrierChildren(0, 9, 8); len(got) != 8 {
		t.Errorf("root of a 9-proc fan-in-8 tree has %d children, want 8 (flat degenerate)", len(got))
	}
	for i := 1; i < 9; i++ {
		if k := barrierChildren(i, 9, 8); len(k) != 0 {
			t.Errorf("node %d of the flat degenerate tree has children %v", i, k)
		}
		if p := barrierParent(i, 8); p != 0 {
			t.Errorf("node %d of the flat degenerate tree has parent %d", i, p)
		}
	}
	// 128 nodes at fan-in 8: root feeds 1..8, node 1 feeds 9..16, the last
	// interior node is 15 (children 121..127).
	if got := barrierChildren(1, 128, 8); len(got) != 8 || got[0] != 9 || got[7] != 16 {
		t.Errorf("node 1 children = %v", got)
	}
	if got := barrierChildren(15, 128, 8); len(got) != 7 || got[0] != 121 || got[6] != 127 {
		t.Errorf("node 15 children = %v", got)
	}
	if got := barrierChildren(16, 128, 8); len(got) != 0 {
		t.Errorf("node 16 should be a leaf, has children %v", got)
	}
	if p := barrierParent(127, 8); p != 15 {
		t.Errorf("parent of node 127 = %d, want 15", p)
	}
	// Every node except the root appears in exactly one child list.
	seen := make(map[int]int)
	for i := 0; i < 128; i++ {
		for _, c := range barrierChildren(i, 128, 8) {
			seen[c]++
		}
	}
	if len(seen) != 127 {
		t.Fatalf("child lists cover %d nodes, want 127", len(seen))
	}
	for c, k := range seen {
		if k != 1 {
			t.Errorf("node %d appears in %d child lists", c, k)
		}
		if barrierParent(c, 8)*8+1 > c || c > barrierParent(c, 8)*8+8 {
			t.Errorf("node %d disagrees with its parent %d", c, barrierParent(c, 8))
		}
	}
}
