package dsm

import "testing"

// homePinWorkload is a fully deterministic barrier/fault kernel used to
// pin wire traffic byte-for-byte: every node writes its own pages each
// round and reads every peer's page after the barrier, so each round
// produces a fixed set of page fetches, diff fetches, and barrier
// messages, and the barrier/fork collector purges on every episode. The
// acquire source stays off (its push rounds depend on goroutine timing);
// everything that remains is program-ordered and timing-independent.
func homePinWorkload(t *testing.T, cfg Config) (msgs, bytes int64) {
	t.Helper()
	procs := cfg.Procs
	const rounds = 6
	sys := New(cfg)
	arr := sys.MallocPage(procs * PageSize)
	if err := sys.Run(func(n *Node) {
		sys.Register("pin", func(n *Node, _ []byte) {
			me := n.ID()
			for r := 0; r < rounds; r++ {
				n.WriteI64(arr+Addr(me*PageSize+8*(r%8)), int64(r*100+me))
				n.Barrier()
				for j := 0; j < procs; j++ {
					if got := n.ReadI64(arr + Addr(j*PageSize+8*(r%8))); got != int64(r*100+j) {
						t.Errorf("node %d round %d slot %d = %d", me, r, j, got)
					}
				}
				n.Barrier()
			}
		})
		n.RunParallel("pin", nil)
	}); err != nil {
		t.Fatal(err)
	}
	return sys.Switch().Stats().Snapshot()
}

// TestHomeNode0DegeneratePin asserts that WireV1 + HomePolicyNode0
// reproduces the pre-batching, pre-sharding protocol byte for byte: the
// traffic constants below were captured on the revision where node 0 was
// hard-coded as the allocator, sole page server, flat barrier manager, and
// GC validate-first node, before the v2 wire format existed. Any drift
// means the degenerate configuration is no longer the old protocol —
// either the sharding refactor changed ≤8-processor behaviour or the
// WireV1 knob no longer pins the v1 encoding exactly.
func TestHomeNode0DegeneratePin(t *testing.T) {
	for _, tt := range []struct {
		policy GCPolicy
		msgs   int64
		bytes  int64
	}{
		{GCPolicyFlush, 875, 1294517},
		{GCPolicyValidateHot, 875, 696521},
	} {
		msgs, bytes := homePinWorkload(t, Config{
			Procs:      8,
			GCPressure: -1,
			GCPolicy:   tt.policy,
			HomePolicy: HomePolicyNode0,
			WireV1:     true,
		})
		if msgs != tt.msgs || bytes != tt.bytes {
			t.Errorf("policy %v: msgs=%d bytes=%d, want msgs=%d bytes=%d (degenerate node-0 homes drifted from the pre-sharding protocol)",
				tt.policy, msgs, bytes, tt.msgs, tt.bytes)
		}
	}
}

// TestHomeNode0WireV2Pin pins the same degenerate workload under the
// default (v2, delta-compressed) wire format. The logical message counts
// must match the v1 pin exactly — compression changes bytes, never
// protocol behaviour — and the byte counts are the fresh v2 goldens.
func TestHomeNode0WireV2Pin(t *testing.T) {
	for _, tt := range []struct {
		policy GCPolicy
		msgs   int64
		bytes  int64
	}{
		{GCPolicyFlush, 875, 1274609},
		{GCPolicyValidateHot, 875, 676613},
	} {
		msgs, bytes := homePinWorkload(t, Config{
			Procs:      8,
			GCPressure: -1,
			GCPolicy:   tt.policy,
			HomePolicy: HomePolicyNode0,
		})
		if msgs != tt.msgs || bytes != tt.bytes {
			t.Errorf("policy %v: msgs=%d bytes=%d, want msgs=%d bytes=%d (v2 wire format drifted)",
				tt.policy, msgs, bytes, tt.msgs, tt.bytes)
		}
	}
}

// TestHomePoliciesAgree runs the pin workload under every home policy and
// checks the program-visible outcome is identical (the workload asserts
// every read internally); traffic may differ — sharded homes move first
// copies and refetch bases — but correctness may not.
func TestHomePoliciesAgree(t *testing.T) {
	for _, hp := range []HomePolicy{HomePolicyBlockCyclic, HomePolicyNode0, HomePolicyFirstTouch} {
		for _, pol := range []GCPolicy{GCPolicyFlush, GCPolicyValidateHot, GCPolicyAdaptive} {
			homePinWorkload(t, Config{Procs: 8, GCPressure: -1, GCPolicy: pol, HomePolicy: hp})
		}
	}
}

// TestHomeOfPolicies pins the home-assignment arithmetic.
func TestHomeOfPolicies(t *testing.T) {
	bc := newHomeTable(HomePolicyBlockCyclic, 4, 64)
	for pid := 0; pid < 64; pid++ {
		want := (pid / HomeBlockPages) % 4
		if got := bc.homeOf(PageID(pid)); got != want {
			t.Fatalf("block-cyclic home of page %d = %d, want %d", pid, got, want)
		}
		if got := bc.claim(PageID(pid), 3); got != want {
			t.Fatalf("block-cyclic claim is not a no-op: page %d -> %d, want %d", pid, got, want)
		}
	}
	n0 := newHomeTable(HomePolicyNode0, 4, 64)
	for pid := 0; pid < 64; pid += 7 {
		if got := n0.homeOf(PageID(pid)); got != 0 {
			t.Fatalf("node0 home of page %d = %d", pid, got)
		}
	}
	ft := newHomeTable(HomePolicyFirstTouch, 4, 64)
	if got := ft.homeOf(3); got != -1 {
		t.Fatalf("unclaimed first-touch page has home %d, want -1", got)
	}
	if got := ft.claim(3, 2); got != 2 {
		t.Fatalf("first claim of page 3 -> %d, want 2", got)
	}
	if got := ft.claim(3, 1); got != 2 {
		t.Fatalf("second claim of page 3 -> %d, want winner 2", got)
	}
	if got := ft.homeOf(3); got != 2 {
		t.Fatalf("claimed first-touch page has home %d, want 2", got)
	}
}

// TestHomePolicyParse pins the knob spellings.
func TestHomePolicyParse(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want HomePolicy
		ok   bool
	}{
		{"", HomePolicyDefault, true},
		{"default", HomePolicyDefault, true},
		{"block-cyclic", HomePolicyBlockCyclic, true},
		{"node0", HomePolicyNode0, true},
		{"first-touch", HomePolicyFirstTouch, true},
		{"node-0", HomePolicyDefault, false},
		{"cyclic", HomePolicyDefault, false},
	} {
		got, err := ParseHomePolicy(tt.in)
		if tt.ok != (err == nil) || got != tt.want {
			t.Errorf("ParseHomePolicy(%q) = %v, %v; want %v, ok=%v", tt.in, got, err, tt.want, tt.ok)
		}
		if tt.ok && got.String() != tt.in && tt.in != "" {
			t.Errorf("round trip %q -> %q", tt.in, got.String())
		}
	}
}
