package dsm

import (
	"repro/internal/network"
	"repro/internal/sim"
)

// Semaphores, Sections 3.2.3 and 4.2: "A sema_signal corresponds to a
// release in the release consistency model and a sema_wait corresponds to
// an acquire. Each semaphore has a statically assigned manager. A
// signaling thread sends a message to the manager including the
// consistency information. A thread performing a sema_wait also sends a
// message to the manager, who replies with the necessary consistency
// information once the waiting thread is allowed to continue. Thus a
// sema_signal or a sema_wait costs two messages including an
// acknowledgment." Waiters block instead of busy-waiting — the paper's
// argument for adding semaphores to the standard.

// semaState lives at a semaphore's manager node.
type semaState struct {
	value   int
	waiters []semaWaiter
}

type semaWaiter struct {
	from   int
	vc     VectorClock
	arrive sim.Time
}

func (n *Node) semaFor(id int) *semaState {
	ss, ok := n.semas[id]
	if !ok {
		ss = &semaState{}
		n.semas[id] = ss
	}
	return ss
}

// SemaSignal performs V(id): release semantics. Consistency information
// flows to the manager, which passes it on to the woken waiter (if any).
func (n *Node) SemaSignal(id int) {
	mgr := n.lockMgr(id)
	n.mu.Lock()
	n.stats.SemaOps++
	n.closeIntervalLocked()
	if n.id == mgr {
		n.semaSignalAtMgrLocked(id, n.vc.clone(), n.id, n.clock.Now())
		n.mu.Unlock()
		return
	}
	var w wbuf
	w.i32(id)
	w.vc(n.vc)
	encodeRecords(&w, n.deltaForLocked(n.knownVC[mgr]))
	n.noteSentLocked(mgr)
	// Send while holding mu: the estimate update and the send must be
	// atomic with respect to other request-class deltas to mgr.
	n.ep.Send(mgr, msgSemaSignal, network.ClassRequest, w.b)
	n.mu.Unlock()
	n.recvReply(msgSemaAck) // two messages including the acknowledgment
}

// semaSignalAtMgrLocked applies a signal at the manager: wake the first
// waiter with a grant carrying its missing intervals, or bank the count.
func (n *Node) semaSignalAtMgrLocked(id int, _ VectorClock, _ int, at sim.Time) {
	ss := n.semaFor(id)
	if len(ss.waiters) == 0 {
		ss.value++
		return
	}
	wtr := ss.waiters[0]
	ss.waiters = ss.waiters[1:]
	var w wbuf
	w.i32(id)
	w.vc(n.vc)
	encodeRecords(&w, n.deltaForLocked(wtr.vc)) // exact delta: no estimate update
	n.sendOrSelfLocked(wtr.from, msgSemaGrant, w.b, at)
}

// SemaWait performs P(id): acquire semantics, blocking (not spinning)
// until a matching signal arrives.
func (n *Node) SemaWait(id int) {
	mgr := n.lockMgr(id)
	n.mu.Lock()
	n.stats.SemaOps++
	if n.id == mgr {
		ss := n.semaFor(id)
		if ss.value > 0 {
			// The manager already incorporated the signaler's intervals
			// when the banked signal arrived; nothing more to import.
			ss.value--
			n.mu.Unlock()
			return
		}
		ss.waiters = append(ss.waiters, semaWaiter{from: n.id, vc: n.vc.clone(), arrive: n.clock.Now()})
		n.mu.Unlock()
	} else {
		var w wbuf
		w.i32(id)
		w.vc(n.vc)
		n.mu.Unlock()
		n.ep.Send(mgr, msgSemaWait, network.ClassRequest, w.b)
	}

	m := n.recvReply(msgSemaGrant)
	r := rbuf{b: m.Payload}
	if got := r.i32(); got != id {
		panic("dsm: semaphore grant for wrong semaphore")
	}
	senderVC := r.vc()
	recs := decodeRecords(&r)
	n.mu.Lock()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	n.mu.Unlock()
}

// handleSemaSignal runs on the manager's protocol server.
func (n *Node) handleSemaSignal(m *network.Message) {
	r := rbuf{b: m.Payload}
	id := r.i32()
	senderVC := r.vc()
	recs := decodeRecords(&r)
	at := m.Arrive + n.sys.plat.RequestService

	n.mu.Lock()
	n.chargeInterruptLocked()
	// The manager merges the signaler's knowledge so later grants can
	// carry it to waiters.
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	n.semaSignalAtMgrLocked(id, senderVC, m.From, at)
	n.mu.Unlock()
	n.ep.SendAt(m.From, msgSemaAck, network.ClassReply, nil, at)
}

// handleSemaWait runs on the manager's protocol server.
func (n *Node) handleSemaWait(m *network.Message) {
	r := rbuf{b: m.Payload}
	id := r.i32()
	reqVC := r.vc()
	at := m.Arrive + n.sys.plat.RequestService

	n.mu.Lock()
	defer n.mu.Unlock()
	n.chargeInterruptLocked()
	ss := n.semaFor(id)
	if ss.value > 0 {
		ss.value--
		var w wbuf
		w.i32(id)
		w.vc(n.vc)
		encodeRecords(&w, n.deltaForLocked(reqVC)) // exact delta
		n.ep.SendAt(m.From, msgSemaGrant, network.ClassReply, w.b, at)
		return
	}
	ss.waiters = append(ss.waiters, semaWaiter{from: m.From, vc: reqVC, arrive: m.Arrive})
}
