package dsm

import (
	"repro/internal/network"
	"repro/internal/sim"
)

// Semaphores, Sections 3.2.3 and 4.2: "A sema_signal corresponds to a
// release in the release consistency model and a sema_wait corresponds to
// an acquire. Each semaphore has a statically assigned manager. A
// signaling thread sends a message to the manager including the
// consistency information. A thread performing a sema_wait also sends a
// message to the manager, who replies with the necessary consistency
// information once the waiting thread is allowed to continue. Thus a
// sema_signal or a sema_wait costs two messages including an
// acknowledgment." Waiters block instead of busy-waiting — the paper's
// argument for adding semaphores to the standard.
//
// Banked signals carry their virtual timestamps: a P that consumes a
// banked V resumes no earlier than that V was performed, which is what
// couples producer and consumer time when the two run as threads of one
// node (an SMP island) and no message arrival exists to carry the order.

// semaState lives at a semaphore's manager node.
type semaState struct {
	banked  []sim.Time // FIFO of banked signal timestamps (len == classic "value")
	waiters []semaWaiter
}

type semaWaiter struct {
	from   int
	tag    uint32
	vc     VectorClock
	arrive sim.Time
}

func (n *Node) semaFor(id int) *semaState {
	ss, ok := n.semas[id]
	if !ok {
		ss = &semaState{}
		n.semas[id] = ss
	}
	return ss
}

// SemaSignal performs V(id): release semantics. Consistency information
// flows to the manager, which passes it on to the woken waiter (if any).
func (c *Client) SemaSignal(id int) {
	n := c.n
	c.clk.Advance(c.costs.Sema)
	mgr := n.lockMgr(id)
	n.mu.Lock()
	n.stats.SemaOps++
	n.closeIntervalLocked()
	if n.id == mgr {
		n.semaSignalAtMgrLocked(id, c.clk.Now())
		n.mu.Unlock()
		c.gcSyncHook(true)
		return
	}
	var w wbuf
	w.i32(id)
	w.u32(c.tag)
	n.putTrailer(&w, n.vc, n.deltaForLocked(n.knownVC[mgr]))
	n.noteSentLocked(mgr)
	// Send while holding mu: the estimate update and the send must be
	// atomic with respect to other request-class deltas to mgr.
	n.ep.SendAt(mgr, msgSemaSignal, network.ClassRequest, w.b, c.clk.Now())
	n.mu.Unlock()
	c.recvReply(msgSemaAck, c.tag) // two messages including the acknowledgment
	c.gcSyncHook(true)
}

// semaSignalAtMgrLocked applies a signal at the manager: wake the first
// waiter with a grant carrying its missing intervals, or bank the signal's
// timestamp.
func (n *Node) semaSignalAtMgrLocked(id int, at sim.Time) {
	ss := n.semaFor(id)
	if len(ss.waiters) == 0 {
		ss.banked = append(ss.banked, at)
		return
	}
	wtr := ss.waiters[0]
	ss.waiters = ss.waiters[1:]
	var w wbuf
	w.i32(id)
	w.u32(wtr.tag)
	n.putTrailer(&w, n.vc, n.deltaForLocked(wtr.vc)) // exact delta: no estimate update
	n.sendOrSelfLocked(wtr.from, msgSemaGrant, w.b, at)
}

// SemaWait performs P(id): acquire semantics, blocking (not spinning)
// until a matching signal arrives.
func (c *Client) SemaWait(id int) {
	n := c.n
	mgr := n.lockMgr(id)
	n.mu.Lock()
	n.stats.SemaOps++
	if n.id == mgr {
		ss := n.semaFor(id)
		if len(ss.banked) > 0 {
			// The manager already incorporated the signaler's intervals
			// when the banked signal arrived; only its timestamp matters.
			at := ss.banked[0]
			ss.banked = ss.banked[1:]
			n.mu.Unlock()
			c.clk.AdvanceTo(at)
			c.clk.Advance(c.costs.Sema)
			c.gcSyncHook(true)
			return
		}
		ss.waiters = append(ss.waiters, semaWaiter{from: n.id, tag: c.tag, vc: n.vc.clone(), arrive: c.clk.Now()})
		n.mu.Unlock()
	} else {
		var w wbuf
		w.i32(id)
		w.u32(c.tag)
		n.putVC(&w, n.vc)
		n.mu.Unlock()
		n.ep.SendAt(mgr, msgSemaWait, network.ClassRequest, w.b, c.clk.Now())
	}

	m := c.recvReply(msgSemaGrant, c.tag)
	r := rbuf{b: m.Payload}
	if got := r.i32(); got != id {
		panic("dsm: semaphore grant for wrong semaphore")
	}
	r.u32() // tag: already matched by routing
	senderVC, recs := n.getTrailer(&r)
	n.mu.Lock()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	n.mu.Unlock()
	c.clk.Advance(c.costs.Sema)
	c.gcSyncHook(true)
}

// handleSemaSignal runs on the manager's protocol server.
func (n *Node) handleSemaSignal(m *network.Message) {
	r := rbuf{b: m.Payload}
	id := r.i32()
	tag := r.u32()
	senderVC, recs := n.getTrailer(&r)
	at := m.Arrive + n.sys.plat.RequestService

	n.mu.Lock()
	n.chargeInterruptLocked()
	// The manager merges the signaler's knowledge so later grants can
	// carry it to waiters.
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	n.semaSignalAtMgrLocked(id, at)
	n.mu.Unlock()
	var ack wbuf
	ack.u32(tag)
	n.ep.SendAt(m.From, msgSemaAck, network.ClassReply, ack.b, at)
}

// handleSemaWait runs on the manager's protocol server.
func (n *Node) handleSemaWait(m *network.Message) {
	r := rbuf{b: m.Payload}
	id := r.i32()
	tag := r.u32()
	reqVC := n.getVC(&r)
	at := m.Arrive + n.sys.plat.RequestService

	n.mu.Lock()
	defer n.mu.Unlock()
	n.chargeInterruptLocked()
	ss := n.semaFor(id)
	if len(ss.banked) > 0 {
		// A P cannot complete before its matching V: the grant leaves no
		// earlier than the banked signal's timestamp.
		bankedAt := ss.banked[0]
		ss.banked = ss.banked[1:]
		if bankedAt > at {
			at = bankedAt
		}
		var w wbuf
		w.i32(id)
		w.u32(tag)
		n.putTrailer(&w, n.vc, n.deltaForLocked(reqVC)) // exact delta
		n.ep.SendAt(m.From, msgSemaGrant, network.ClassReply, w.b, at)
		return
	}
	ss.waiters = append(ss.waiters, semaWaiter{from: m.From, tag: tag, vc: reqVC, arrive: m.Arrive})
}
