package dsm

import (
	"fmt"
	"sort"

	"repro/internal/network"
	"repro/internal/sim"
)

// serve is each node's protocol-server goroutine: the simulation analogue
// of TreadMarks' SIGIO handler. It processes remote requests concurrently
// with the node's application thread, acting at each request's virtual
// arrival time (interrupt semantics) and charging the application thread
// the platform's interrupt overhead.
//
// Everything reachable from here runs in protocol-server context: the
// servernoblock analyzer forbids blocking request-class sends in this
// closure, and the tripwire analyzer requires the goroutine that runs it
// to carry a deferred recoverAbort (see cmd/nowlint and README "Static
// analysis").
func (n *Node) serve() {
	for {
		m := n.ep.RecvRaw(network.ClassRequest)
		if m == nil {
			return // switch shut down
		}
		n.dispatch(m)
	}
}

// dispatch routes one request to its handler. A msgBatch frame recurses:
// each typed sub-message is dispatched in wire order as if it had arrived
// as its own datagram (same sender, same arrival time), so coalescing is
// invisible to the handlers.
func (n *Node) dispatch(m *network.Message) {
	switch m.Type {
	case msgExit:
		n.forkCh <- m
	case msgFork:
		// Incorporate the piggybacked consistency information HERE,
		// in wire order, before handing the fork to the application
		// thread: a semaphore signal or flush right behind this fork
		// in the FIFO may carry a delta that assumes the fork's
		// intervals have already been seen. The fork GC epoch itself
		// runs on the APPLICATION thread (slaveLoop) before the
		// region body: a validate-policy purge fetches diffs over
		// the network, and a server blocked on replies while its
		// peers' servers do the same would deadlock the protocol.
		r := rbuf{b: m.Payload}
		_ = r.str()   // region
		_ = r.bytes() // args
		n.incorporateWire(&r, m.From)
		n.forkCh <- m // consumed by the slave's application thread
	case msgJoin:
		r := rbuf{b: m.Payload}
		n.incorporateWire(&r, m.From)
		n.joinCh <- m // consumed by the master's application thread
	case msgBarrArrive:
		r := rbuf{b: m.Payload}
		n.incorporateWire(&r, m.From)
		n.barrier.arrivals <- m // consumed by the manager's thread
	case msgPageReq:
		n.handlePageReq(m)
	case msgDiffReq:
		n.handleDiffReq(m)
	case msgAcqReq:
		n.handleAcqReq(m)
	case msgAcqFwd:
		n.handleAcqFwd(m)
	case msgSemaSignal:
		n.handleSemaSignal(m)
	case msgSemaWait:
		n.handleSemaWait(m)
	case msgCondWait:
		n.handleCondWait(m)
	case msgCondSignal:
		n.handleCondNotify(m, false)
	case msgCondBroadcast:
		n.handleCondNotify(m, true)
	case msgFlush:
		n.handleFlush(m)
	case msgGCSync:
		n.handleGCSync(m)
	case msgGCFloor:
		n.handleGCFloor(m)
	case msgBatch:
		n.dispatchBatch(m)
	default:
		panic(fmt.Sprintf("dsm: node %d: unknown request type %d", n.id, m.Type))
	}
}

// dispatchBatch demuxes a coalesced frame (wire.go's frameBuilder) into
// per-sub synthesized messages and dispatches each in order. Sub payloads
// alias the envelope payload — handlers never mutate payloads, and any
// retained decode output is copied by the decoders themselves.
func (n *Node) dispatchBatch(m *network.Message) {
	r := rbuf{b: m.Payload}
	walkBatch(&r, n.id, func(typ int, payload []byte) {
		n.dispatch(&network.Message{
			From:    m.From,
			To:      m.To,
			Type:    typ,
			Class:   m.Class,
			Payload: payload,
			Send:    m.Send,
			Arrive:  m.Arrive,
		})
	})
}

// walkBatch decodes a msgBatch envelope, invoking fn for each typed sub in
// wire order. Factored from dispatchBatch so the fuzz suite can drive the
// envelope validation (counts, nesting) without reaching live handlers.
func walkBatch(r *rbuf, nodeID int, fn func(typ int, payload []byte)) {
	// A sub costs at least 2 envelope bytes (type byte + length varint).
	nsubs := r.needCount(r.uvi(), 2)
	for i := 0; i < nsubs; i++ {
		typ := int(r.u8())
		if typ == msgBatch {
			panic(wireErrf("dsm: node %d: nested msgBatch frame", nodeID))
		}
		fn(typ, r.need(r.uvi()))
	}
}

// incorporateWire decodes a (vc, records) trailer and merges it into the
// node's knowledge, recording the sender's reported clock (returned for
// callers that need it, e.g. as a GC epoch floor).
func (n *Node) incorporateWire(r *rbuf, from int) VectorClock {
	senderVC, recs := n.getTrailer(r)
	n.mu.Lock()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(from, senderVC)
	n.mu.Unlock()
	return senderVC
}

// handlePageReq serves a first-copy request. The page's home is its
// allocator and initial owner; its current content is a correct base for
// the requester, which then applies every diff named by its own missing
// write notices (see DESIGN.md for the argument).
func (n *Node) handlePageReq(m *network.Message) {
	r := rbuf{b: m.Payload}
	pid := PageID(r.u32())
	n.mu.Lock()
	n.chargeInterruptLocked()
	pg := n.pageFor(pid)
	if pg.data == nil {
		if !n.isHome(pid) {
			// Only the page's home may materialize fresh zero pages;
			// squashed fetches always target a node that wrote the page.
			panic(fmt.Sprintf("dsm: node %d asked for page %d it never held (home %d)", n.id, pid, n.homeOf(pid)))
		}
		pg.data = make([]byte, PageSize)
		if pg.state == pageInvalid && len(pg.missing) == 0 {
			pg.state = pageReadOnly
		}
	}
	var w wbuf
	w.u32(uint32(pid))
	w.bytes(pg.data)
	n.mu.Unlock()
	at := m.Arrive + n.sys.plat.RequestService + n.sys.plat.PageCopy
	n.ep.SendAt(m.From, msgPageRep, network.ClassReply, w.b, at)
}

// handleDiffReq serves a batched diff request for one page from this node
// (the creator of the requested intervals), encoding any diff that is
// still pending against the page's twin.
func (n *Node) handleDiffReq(m *network.Message) {
	r := rbuf{b: m.Payload}
	pid := PageID(r.u32())
	cnt := r.needCount(int(r.u32()), 4)
	seqs := make([]int, cnt)
	for i := range seqs {
		seqs[i] = int(r.u32())
	}
	sort.Ints(seqs)

	service := n.sys.plat.RequestService
	n.mu.Lock()
	n.chargeInterruptLocked()
	var w wbuf
	w.u32(uint32(pid))
	w.u32(uint32(cnt))
	for _, seq := range seqs {
		own := n.intervals[n.id]
		idx := seq - n.ivlBase[n.id]
		if idx < 0 {
			// Soundness tripwire: the barrier-epoch collector frees an
			// interval's diffs only after no node can reference it again.
			panic(fmt.Sprintf("dsm: node %d asked for diff of retired interval (%d,%d)", n.id, n.id, seq))
		}
		if idx >= len(own) {
			panic(fmt.Sprintf("dsm: node %d asked for diff of unknown interval (%d,%d)", n.id, n.id, seq))
		}
		ivl := own[idx]
		d, ok := ivl.diffs[pid]
		if !ok {
			pg := n.pageFor(pid)
			if pg.twinIvl != ivl {
				panic(fmt.Sprintf("dsm: node %d has no diff and no twin for page %d interval %d", n.id, pid, seq))
			}
			n.ensureDiffEncodedLocked(pg)
			service += n.sys.plat.DiffCreate + sim.Time(float64(PageSize)*n.sys.plat.DiffPerByte)
			d = ivl.diffs[pid]
		}
		w.u32(uint32(seq))
		w.bytes(d)
	}
	n.mu.Unlock()
	n.ep.SendAt(m.From, msgDiffRep, network.ClassReply, w.b, m.Arrive+service)
}
