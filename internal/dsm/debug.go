package dsm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// debugSquash gates the diff-squash fallback (test hook):
// bit 0 = cold squash, bit 1 = warm squash, bit 2 = differential verify.
var debugSquash = 3

// SetDebugSquash toggles the squash fallback (tests only).
func SetDebugSquash(v bool) {
	if v {
		debugSquash = 3
	} else {
		debugSquash = 0
	}
}

// SetDebugSquashMode sets the squash mode directly (tests only).
func SetDebugSquashMode(m int) { debugSquash = m }

// debugOracle, when enabled, keeps an authoritative shadow copy of every
// written byte (valid only for data-race-free programs whose sync order
// matches real time, which holds for lock-ordered tests). Reads compare
// against it and report the first divergence.
var (
	debugOracleOn  bool
	oracleMu       sync.Mutex
	oracleMem      map[int][]byte // per system instance? single-run tests only
	oracleDiverges int
)

// OracleDiverges reports how many divergent reads the shadow-memory
// checker has seen since the last SetDebugOracle(true).
func OracleDiverges() int {
	oracleMu.Lock()
	defer oracleMu.Unlock()
	return oracleDiverges
}

// SetDebugOracle enables the shadow-memory checker (single-System tests).
func SetDebugOracle(on bool) {
	oracleMu.Lock()
	debugOracleOn = on
	oracleMem = map[int][]byte{}
	oracleDiverges = 0
	oracleMu.Unlock()
}

func oracleWrite(a Addr, src []byte) {
	if !debugOracleOn {
		return
	}
	oracleMu.Lock()
	for i, b := range src {
		off := int(a) + i
		pg := off / PageSize
		buf, ok := oracleMem[pg]
		if !ok {
			buf = make([]byte, PageSize)
			oracleMem[pg] = buf
		}
		buf[off%PageSize] = b
	}
	oracleMu.Unlock()
}

// oracleWriteF64s mirrors oracleWrite for the float64 bulk path.
func oracleWriteF64s(a Addr, src []float64) {
	if !debugOracleOn {
		return
	}
	buf := make([]byte, 8*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	oracleWrite(a, buf)
}

// oracleCheckF64s mirrors oracleCheck for the float64 bulk path.
func oracleCheckF64s(node int, a Addr, got []float64) {
	if !debugOracleOn {
		return
	}
	buf := make([]byte, 8*len(got))
	for i, v := range got {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	oracleCheck(node, a, buf)
}

func oracleCheck(node int, a Addr, got []byte) {
	if !debugOracleOn {
		return
	}
	oracleMu.Lock()
	defer oracleMu.Unlock()
	for i := range got {
		off := int(a) + i
		pg := off / PageSize
		buf, ok := oracleMem[pg]
		if !ok {
			continue
		}
		if got[i] != buf[off%PageSize] {
			oracleDiverges++
			fmt.Printf("ORACLE-DIVERGE node=%d addr=%d page=%d off=%d got=%d want=%d\n",
				node, off, pg, off%PageSize, got[i], buf[off%PageSize])
			return
		}
	}
}
