package dsm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// acqRingWorkload is the acquire-GC exercise fixture: one parallel region
// with no barriers, in which each node owns one page of a shared array,
// bumps a lock-protected global counter, and hands a semaphore ring token
// to its successor each round — the critical-section and pipeline
// patterns of TSP/QSORT/Sweep3D. It returns the finished system; final
// contents are deterministic (single-writer pages plus a commutative
// counter), so callers can assert them exactly.
func acqRingWorkload(t *testing.T, cfg Config, rounds int) *System {
	t.Helper()
	procs := cfg.Procs
	sys := New(cfg)
	arr := sys.MallocPage(procs * PageSize)
	ctr := sys.MallocPage(8)
	sys.Register("ring", func(n *Node, _ []byte) {
		me := n.ID()
		succ := (me + 1) % procs
		for r := 0; r < rounds; r++ {
			if r > 0 {
				n.SemaWait(200 + me)
			}
			for w := 0; w < 4; w++ {
				n.WriteI64(arr+Addr(me*PageSize+8*w*61), int64(r+1))
			}
			n.Acquire(1)
			n.WriteI64(ctr, n.ReadI64(ctr)+1)
			n.Release(1)
			if r%5 == 4 {
				// Periodic peer reads keep copies of every page alive so
				// collections actually find stale state to purge.
				var s int64
				for p := 0; p < procs; p++ {
					s += n.ReadI64(arr + Addr(p*PageSize))
				}
				_ = s
			}
			n.Compute(64)
			n.SemaSignal(200 + succ)
		}
	})
	if err := sys.Run(func(n *Node) {
		n.RunParallel("ring", nil)
		if got := n.ReadI64(ctr); got != int64(rounds*procs) {
			t.Errorf("counter = %d, want %d", got, rounds*procs)
		}
		for o := 0; o < procs; o++ {
			for w := 0; w < 4; w++ {
				if got := n.ReadI64(arr + Addr(o*PageSize+8*w*61)); got != int64(rounds) {
					t.Errorf("page %d word %d = %d, want %d", o, w, got, rounds)
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAcquireGCRetiresWithoutBarriers is the load-bearing claim of the
// acquire source: a program that synchronizes exclusively through locks
// and semaphores — which the barrier/fork collector can never collect
// mid-region — still announces epochs, retires interval records, and
// releases twins/diffs when retirable pressure crosses GCPressure.
func TestAcquireGCRetiresWithoutBarriers(t *testing.T) {
	sys := acqRingWorkload(t, Config{Procs: 4, GCPressure: 16}, 48)
	st := sys.TotalStats()
	if st.GCAcqEpochs == 0 {
		t.Fatal("no acquire epochs processed")
	}
	if st.IntervalsRetired == 0 {
		t.Error("acquire epochs retired no interval records")
	}
	g := sys.GCSummary()
	if g.AcqEpochs == 0 {
		t.Error("coordinator announced no acquire epochs")
	}
	if g.Epochs > 2 {
		// Only the fork boundary provides barrier/fork episodes here.
		t.Errorf("barrier/fork source ran %d epochs in a barrier-free region", g.Epochs)
	}

	off := acqRingWorkload(t, Config{Procs: 4, GCPressure: -1}, 48).TotalStats()
	if off.GCAcqEpochs != 0 || off.IntervalsRetired != 0 {
		t.Errorf("acquire GC disabled still collected: epochs=%d retired=%d",
			off.GCAcqEpochs, off.IntervalsRetired)
	}
	if st.PeakIntervalChain >= off.PeakIntervalChain {
		t.Errorf("acquire GC peak chain (%d) not below disabled (%d)",
			st.PeakIntervalChain, off.PeakIntervalChain)
	}
}

// TestAcquireGCBoundedChain pins the acceptance criterion at the protocol
// level: with the acquire source on, the peak retained interval chain is
// bounded by the pressure threshold (plus the backpressure slack), NOT by
// the run length — quadrupling the rounds must not grow it — while with
// the source off it grows with the run.
func TestAcquireGCBoundedChain(t *testing.T) {
	cfg := Config{Procs: 4, GCPressure: 16}
	short := acqRingWorkload(t, cfg, 32).TotalStats()
	long := acqRingWorkload(t, cfg, 128).TotalStats()
	if long.PeakIntervalChain > short.PeakIntervalChain+8 {
		t.Errorf("peak chain grew with run length under acquire GC: 32 rounds -> %d, 128 rounds -> %d",
			short.PeakIntervalChain, long.PeakIntervalChain)
	}
	if limit := int64(8 * 16); long.PeakIntervalChain > limit {
		// 4x pressure plus drift between release-side spin points.
		t.Errorf("peak chain %d above the backpressure bound %d", long.PeakIntervalChain, limit)
	}
	offLong := acqRingWorkload(t, Config{Procs: 4, GCPressure: -1}, 128).TotalStats()
	if offLong.PeakIntervalChain <= 2*long.PeakIntervalChain {
		t.Errorf("acquire GC off peak chain (%d) not well above on (%d)",
			offLong.PeakIntervalChain, long.PeakIntervalChain)
	}
}

// TestAcquireGCRandomizedInterleavings is the archetype property test:
// for random plans of lock-protected read-modify-writes, scattered
// single-writer writes, and semaphore handoffs, the final shared-memory
// contents with the acquire collector on (at minimal pressure, under
// every purge policy) must equal the GC-off contents word for word — the
// collector, its consensus pushes, and the per-page policy are invisible
// to the computation under any goroutine interleaving.
func TestAcquireGCRandomizedInterleavings(t *testing.T) {
	policies := []GCPolicy{GCPolicyFlush, GCPolicyValidateHot, GCPolicyAdaptive}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const P = 4
		words := 64 + rng.Intn(192) // spans 1-3 pages at 8B words
		rounds := 4 + rng.Intn(10)
		nlocks := 1 + rng.Intn(3)
		// owner[w] is the (fixed) writer of word w: each word has one
		// writer for the whole run, so the final contents are
		// schedule-free, while pages remain multi-writer (adjacent words
		// belong to different nodes — the QSORT false-sharing pattern).
		// The ring only bounds round skew to P, so a per-round owner
		// rotation would make same-word writes of nearby rounds racy.
		owner := make([]int, words)
		for w := range owner {
			owner[w] = rng.Intn(P)
		}
		run := func(cfg Config) ([]int64, int64, bool) {
			sys := New(cfg)
			base := sys.MallocPage(8 * words)
			ctrs := sys.MallocPage(8 * nlocks)
			sys.Register("plan", func(n *Node, _ []byte) {
				me := n.ID()
				succ := (me + 1) % P
				for r := 0; r < rounds; r++ {
					if r > 0 {
						n.SemaWait(300 + me)
					}
					for w, o := range owner {
						if o == me {
							n.WriteI64(base+Addr(8*w), int64(r*1000+o*10+w%7))
						}
					}
					lk := r % nlocks
					n.Acquire(10 + lk)
					n.WriteI64(ctrs+Addr(8*lk), n.ReadI64(ctrs+Addr(8*lk))+int64(me+1))
					n.Release(10 + lk)
					n.SemaSignal(300 + succ)
				}
			})
			out := make([]int64, words)
			var csum int64
			err := sys.Run(func(n *Node) {
				n.RunParallel("plan", nil)
				for w := range out {
					out[w] = n.ReadI64(base + Addr(8*w))
				}
				for lk := 0; lk < nlocks; lk++ {
					csum += n.ReadI64(ctrs + Addr(8*lk))
				}
			})
			return out, csum, err == nil
		}
		ref, refSum, ok := run(Config{Procs: P, GCPressure: -1})
		if !ok {
			return false
		}
		// Every lock is acquired once per node per round, adding me+1.
		if want := int64(rounds * P * (P + 1) / 2); refSum != want {
			return false
		}
		pol := policies[uint64(seed)%uint64(len(policies))]
		got, gotSum, ok := run(Config{Procs: P, GCPressure: 2, GCPolicy: pol})
		if !ok || gotSum != refSum {
			return false
		}
		for w := range ref {
			if got[w] != ref[w] {
				t.Logf("seed %d policy %v: word %d differs: GC on %d, off %d", seed, pol, w, got[w], ref[w])
				return false
			}
		}
		return true
	}
	max := 12
	if testing.Short() {
		max = 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// TestAcqCoordProperties drives the consensus coordinator itself with
// random report/purge sequences and checks its safety invariants: every
// announced floor is dominated by every clock reported at announcement
// time (so every node has incorporated everything under it), the issued
// baseline is monotone, and a new epoch is never announced while any
// node's purges lag the previously issued floors (the gate that makes
// the one-epoch-delayed free sound). Both gating modes are exercised:
// gate 0 (node-0 homes) must hand a floor to a non-gate node only after
// the gate node purged it; gate -1 (sharded homes, where the per-page
// homePurged registry replaces the global order) must still only hand a
// node floors dominated by its own reported clock.
func TestAcqCoordProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := 2 + rng.Intn(6)
		gate := rng.Intn(2) - 1 // -1 (sharded) or 0 (node-0 homes)
		co := newAcqCoord(procs, 1+rng.Intn(8), gate)
		clocks := make([]VectorClock, procs)
		for i := range clocks {
			clocks[i] = newVC(procs)
		}
		prevBaseline := newVC(procs)
		for step := 0; step < 300; step++ {
			id := rng.Intn(procs)
			// The node makes progress: its own component grows, and it
			// "incorporates" a random prefix of the others.
			clocks[id][id] += int32(rng.Intn(3))
			for j := range clocks {
				if j != id && rng.Intn(2) == 0 {
					clocks[id][j] = clocks[j][j] - int32(rng.Intn(2))
					if clocks[id][j] < 0 {
						clocks[id][j] = 0
					}
				}
			}
			beforePurged := make([]VectorClock, procs)
			for i := range beforePurged {
				beforePurged[i] = co.purged[i].clone()
			}
			beforeAnnounced := co.announced
			floor, pending, _ := co.report(id, clocks[id], true)
			if co.announced > beforeAnnounced {
				// A fresh announcement: the gate must have held (every
				// node had purged the previous baseline) ...
				for i := range beforePurged {
					if !prevBaseline.dominatedBy(beforePurged[i]) {
						return false
					}
				}
				// ... and the new floor must be below every reported clock.
				for i := range co.reported {
					if !co.baseline.dominatedBy(co.reported[i]) {
						return false
					}
				}
			}
			// Baseline monotone.
			if !prevBaseline.dominatedBy(co.baseline) {
				return false
			}
			prevBaseline = co.baseline.clone()
			if pending {
				if gate >= 0 && id != gate && !floor.dominatedBy(co.purged[gate]) {
					// Gate-first ordering: a non-gate node is only handed a
					// floor the gate node has already purged (its copies are
					// the rebuild base of every flushed page).
					return false
				}
				// Home-aware soundness (both modes): a node is only ever
				// handed a floor below its own reported clock — it holds
				// every notice the purge will classify, and the per-page
				// flush gate needs nothing more from the coordinator.
				if !floor.dominatedBy(co.reported[id]) {
					return false
				}
				co.notePurged(id, floor)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGCPolicyParse pins the knob spellings.
func TestGCPolicyParse(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want GCPolicy
		ok   bool
	}{
		{"", GCPolicyDefault, true},
		{"default", GCPolicyDefault, true},
		{"flush", GCPolicyFlush, true},
		{"validate-hot", GCPolicyValidateHot, true},
		{"adaptive", GCPolicyAdaptive, true},
		{"bogus", GCPolicyDefault, false},
	} {
		got, err := ParseGCPolicy(tt.in)
		if (err == nil) != tt.ok || got != tt.want {
			t.Errorf("ParseGCPolicy(%q) = (%v, %v), want (%v, ok=%v)", tt.in, got, err, tt.want, tt.ok)
		}
		if tt.ok && tt.in != "" {
			if s := got.String(); s != tt.in {
				t.Errorf("GCPolicy(%v).String() = %q, want %q", got, s, tt.in)
			}
		}
	}
	if MustParseGCPolicy("flush") != GCPolicyFlush {
		t.Error("MustParseGCPolicy(flush) wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustParseGCPolicy(bogus) did not panic")
			}
		}()
		MustParseGCPolicy("bogus")
	}()
	_ = fmt.Sprintf("%v", GCPolicy(99)) // String() total
}
