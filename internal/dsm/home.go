package dsm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Page homes: sharded initial ownership of the shared address space.
//
// Early revisions made node 0 the allocator, the sole first-copy page
// server, and the always-validate node of every GC purge — faithful to
// the paper's ≤8-processor runs, but a structural hotspot past them:
// every cold fault in the system serialized through one server, and
// every flush decision hinged on one node's purge progress. Ownership is
// now sharded by a HomePolicy: each page has a HOME node that
// materializes its zero-filled initial copy on demand, serves first
// copies, always validates (never flushes) its own pages at collection
// epochs, and is the node every post-flush refetch rebuilds from.
//
// The GC flush-safety invariant generalizes from "node 0 purges first"
// to a per-page rule: a node may FLUSH a stale copy (dropping its
// covered write notices) only when the page's home has already purged
// the epoch floor — the home's copy then reflects every write under it,
// so a later whole-page refetch cannot lose the dropped notices. Nodes
// learn home purge progress from the System-level homePurged registry
// (the simulation stand-in for an acknowledgment bit on the consensus
// messages that already flow); when the home lags, the purge VALIDATES
// instead, which is always sound — covered diffs stay fetchable until
// the one-epoch-delayed free — and a copy that was never materialized
// validates from zeros (zeros plus every covered diff applied in causal
// order IS the floor contents: allocation zero-fills, and every write
// since lives in some interval's diff).

// HomePolicy selects how initial page ownership is distributed across
// nodes (Config.HomePolicy).
type HomePolicy int

const (
	// HomePolicyDefault defers to the package default (block-cyclic).
	HomePolicyDefault HomePolicy = iota
	// HomePolicyBlockCyclic assigns homes in blocks of HomeBlockPages
	// pages, round-robin across nodes — contiguous arrays shard evenly
	// and neighbouring pages keep one server.
	HomePolicyBlockCyclic
	// HomePolicyNode0 is the degenerate pre-sharding layout: node 0 homes
	// every page. Kept as the paper-faithful ≤8-processor configuration;
	// it reproduces the old protocol byte for byte.
	HomePolicyNode0
	// HomePolicyFirstTouch assigns each page to the first node that
	// materializes it (fault or allocation touch), the classic NUMA
	// placement: pages land where they are first used.
	HomePolicyFirstTouch
)

// HomeBlockPages is the block size of HomePolicyBlockCyclic, in pages.
const HomeBlockPages = 8

// String returns the knob spelling accepted by ParseHomePolicy.
func (p HomePolicy) String() string {
	switch p {
	case HomePolicyDefault:
		return "default"
	case HomePolicyBlockCyclic:
		return "block-cyclic"
	case HomePolicyNode0:
		return "node0"
	case HomePolicyFirstTouch:
		return "first-touch"
	}
	return fmt.Sprintf("HomePolicy(%d)", int(p))
}

// ParseHomePolicy parses a home-policy knob ("", "default",
// "block-cyclic", "node0", "first-touch").
func ParseHomePolicy(s string) (HomePolicy, error) {
	switch s {
	case "", "default":
		return HomePolicyDefault, nil
	case "block-cyclic":
		return HomePolicyBlockCyclic, nil
	case "node0":
		return HomePolicyNode0, nil
	case "first-touch":
		return HomePolicyFirstTouch, nil
	}
	return HomePolicyDefault, fmt.Errorf("dsm: unknown home policy %q", s)
}

// MustParseHomePolicy is ParseHomePolicy for configuration paths where an
// unknown spelling is a programming error.
func MustParseHomePolicy(s string) HomePolicy {
	p, err := ParseHomePolicy(s)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// homeTable resolves page → home for one system.
type homeTable struct {
	policy HomePolicy
	procs  int
	// claims is the first-touch registry: claims[pid] is the home node id
	// + 1, or 0 while unclaimed. Only HomePolicyFirstTouch populates it.
	claims []atomic.Int32
}

func newHomeTable(policy HomePolicy, procs, npages int) *homeTable {
	h := &homeTable{policy: policy, procs: procs}
	if policy == HomePolicyFirstTouch {
		h.claims = make([]atomic.Int32, npages)
	}
	return h
}

// homeOf returns the page's home node, or -1 for a first-touch page no
// node has claimed yet (such a page has never been materialized anywhere,
// so it cannot owe write notices either).
func (h *homeTable) homeOf(pid PageID) int {
	switch h.policy {
	case HomePolicyNode0:
		return 0
	case HomePolicyFirstTouch:
		return int(h.claims[pid].Load()) - 1
	}
	return (int(pid) / HomeBlockPages) % h.procs
}

// claim makes id the page's home if no node beat it to the claim, and
// returns the winning home. Non-first-touch policies are static: the
// assigned home is returned unchanged.
func (h *homeTable) claim(pid PageID, id int) int {
	if h.policy != HomePolicyFirstTouch {
		return h.homeOf(pid)
	}
	if h.claims[pid].CompareAndSwap(0, int32(id)+1) {
		return id
	}
	return int(h.claims[pid].Load()) - 1
}

// homeOf is the node-side resolver (no claim).
func (n *Node) homeOf(pid PageID) int { return n.sys.homes.homeOf(pid) }

// isHome reports whether this node homes the page, claiming it under the
// first-touch policy: callers are exactly the points where the node is
// materializing the page (allocation touch or cold fault).
func (n *Node) isHome(pid PageID) bool { return n.sys.homes.claim(pid, n.id) == n.id }

// homePurged tracks, per node, the merged floor of every collection epoch
// the node has completed — the registry behind the per-page flush gate.
// Its mutex is a leaf (like the acquire coordinator's): it is taken with
// n.mu held, inside gcCollectLocked, and never takes any other lock.
type homePurged struct {
	mu     sync.Mutex
	floors []VectorClock
}

func newHomePurged(procs int) *homePurged {
	h := &homePurged{floors: make([]VectorClock, procs)}
	for i := range h.floors {
		h.floors[i] = newVC(procs)
	}
	return h
}

// note records that node id completed a purge to the given floor. Called
// inside gcCollectLocked immediately after the purge, so the registry
// never runs ahead of the node's actual page state.
func (h *homePurged) note(id int, floor VectorClock) {
	h.mu.Lock()
	h.floors[id].merge(floor)
	h.mu.Unlock()
}

// covers reports whether the home has completed a purge covering floor:
// its copies of its own pages then reflect every write under it (homes
// always validate their own pages), so peers may flush theirs.
func (h *homePurged) covers(home int, floor VectorClock) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return floor.dominatedBy(h.floors[home])
}
