package dsm

import (
	"repro/internal/network"
)

// This file implements the Tmk_fork / Tmk_join primitives "specifically
// tailored to the fork-join style of parallelism expected by OpenMP"
// (Section 4.1). All threads exist for the whole run; during sequential
// execution the slaves block waiting for the next fork from the master.

// RunParallel forks the named region on every slave, runs it on the master
// too, and joins. The arg bytes carry the serialized firstprivate
// environment (pointers to shared variables and copied initial values, as
// in Section 4.3.2). Fork counts as a release by the master and an acquire
// by each slave; join is the reverse, so the master sees all slave writes
// after RunParallel returns.
func (c *Client) RunParallel(region string, arg []byte) {
	n := c.n
	if n.id != 0 {
		panic("dsm: RunParallel must be called by the master (node 0)")
	}
	fn := n.sys.region(region)
	procs := n.sys.cfg.Procs

	// Fork: release + broadcast. A fork is a global synchronization
	// episode exactly like a barrier (every slave is parked awaiting it,
	// and the join proved the master has incorporated everything), so it
	// also runs a GC epoch — this is what keeps parallel-do programs,
	// which synchronize by region boundary rather than explicit
	// barriers, from accumulating protocol metadata across regions.
	n.mu.Lock()
	n.closeIntervalLocked()
	forkVC := n.vc.clone() // one clock for the GC floor and every fork message
	if n.sys.gcOn {
		n.gcEpochLocked(c, forkVC)
	}
	for i := 1; i < procs; i++ {
		var w wbuf
		w.str(region)
		w.bytes(arg)
		n.putTrailer(&w, forkVC, n.deltaForLocked(n.knownVC[i]))
		n.noteSentLocked(i)
		// Sent under mu: atomic with the estimate update.
		n.ep.SendAt(i, msgFork, network.ClassRequest, w.b, c.clk.Now())
	}
	n.mu.Unlock()

	// The master is thread 0 of the team.
	fn(n, arg)

	// Join: collect every slave's release.
	n.mu.Lock()
	n.closeIntervalLocked()
	n.mu.Unlock()
	for i := 1; i < procs; i++ {
		var m *network.Message
		select {
		case m = <-n.joinCh:
		case <-n.sys.done:
		}
		if m == nil {
			panic(abortError{cause: "switch shut down"})
		}
		// Consistency information was already incorporated by the
		// protocol server, in wire order; the join here only
		// synchronizes time.
		c.clk.AdvanceTo(m.Arrive)
	}
}

// slaveLoop is the application thread of nodes 1..P-1: block for a fork,
// run the region, send the join, repeat until exit.
func (n *Node) slaveLoop() {
	for {
		var m *network.Message
		select {
		case m = <-n.forkCh:
		case <-n.sys.done:
		}
		if m == nil {
			panic(abortError{cause: "switch shut down"})
		}
		if m.Type == msgExit {
			n.clock.AdvanceTo(m.Arrive)
			return
		}
		n.clock.AdvanceTo(m.Arrive)
		r := rbuf{b: m.Payload}
		region := r.str()
		arg := r.bytes()
		// The consistency trailer was already incorporated by the
		// protocol server, in wire order; the fork is this node's side of
		// the master's fork GC epoch, with the master's clock as carried
		// in the message as the floor. It runs here, on the application
		// thread, so a validate-policy purge can fetch diffs without
		// blocking this node's protocol server.
		if n.sys.gcOn {
			// Clock prefix only: both wire versions encode the clock
			// self-contained ahead of the records.
			forkVC := n.getVC(&r)
			n.mu.Lock()
			n.gcEpochLocked(&n.c0, forkVC)
			n.mu.Unlock()
		}
		fn := n.sys.region(region)
		fn(n, arg)

		n.mu.Lock()
		n.closeIntervalLocked()
		var w wbuf
		n.putTrailer(&w, n.vc, n.deltaForLocked(n.knownVC[0]))
		n.noteSentLocked(0)
		// Sent under mu: atomic with the estimate update.
		n.ep.Send(0, msgJoin, network.ClassRequest, w.b)
		n.mu.Unlock()
	}
}
