package dsm

// Wire format v2: compact encodings for the consistency trailer (sender
// vector clock + interval records) and per-peer frame coalescing.
//
// The v1 encoding — still selectable via Config.WireV1, and pinned
// byte-identical by the golden byte-count tests — writes each interval's
// full vector clock as fixed u32 components plus a flat u32 page list,
// and every protocol message travels as its own datagram. The v2 default
// replaces both:
//
//   - Vector clocks travel as LEB128 varints (uv), so the mostly-small
//     components of a young clock cost one byte instead of four.
//   - A record batch shares one base clock (the componentwise minimum of
//     the batch's record clocks); each record carries only its sparse
//     delta against the base. A record's sequence number is never
//     encoded: the protocol invariant ivl.vc[creator] == seq+1 (see
//     closeIntervalLocked) lets the decoder derive it.
//   - Write-notice page lists are sorted and run-length encoded as
//     (gap, runLen) pairs: QSORT/Sweep3D notices are dense runs, Water's
//     are short strides, and both collapse to a few bytes per run.
//   - Everything bound for one peer at a GC push or purge wave is
//     coalesced into a single msgBatch datagram of typed sub-messages,
//     demuxed server-side into the existing handlers (see server.go).
//
// Every decode path validates wire-supplied counts against the bytes
// actually remaining before allocating, and fails only via the typed
// wireError panic — the contract the fuzz suite (wire_test.go) pins.

import (
	"sort"

	"repro/internal/network"
	"repro/internal/sim"
)

// maxPagesPerRecord caps the decoded page list of one interval record. A
// legitimate record's notices are bounded by the shared heap's page count
// (well under a million pages at any configured heap size); beyond that
// the run-length form can only be describing a corrupted frame.
const maxPagesPerRecord = 1 << 20

// putVCv2 writes a self-contained varint vector clock.
func putVCv2(w *wbuf, v VectorClock) {
	w.uv(uint64(len(v)))
	for _, x := range v {
		w.uv(uint64(x))
	}
}

// getVCv2 decodes a varint vector clock (each component is at least one
// wire byte, so the count is validated against the bytes remaining).
func getVCv2(r *rbuf) VectorClock {
	n := r.needCount(r.uvi(), 1)
	v := make(VectorClock, n)
	for i := range v {
		v[i] = int32(r.uv())
	}
	return v
}

// encodeRecordsV2 writes a record batch in the compact form: count, base
// clock (componentwise minimum), then per record the creator, the sparse
// clock delta against the base, and the run-length-encoded page list.
// Page lists are sorted in place here — safe under the caller's n.mu:
// each node holds its own copy of every interval record, notice order is
// immaterial to the protocol, and sorting is idempotent across the many
// encodes an interval sees.
func encodeRecordsV2(w *wbuf, ivls []*interval) {
	w.uv(uint64(len(ivls)))
	if len(ivls) == 0 {
		return
	}
	base := ivls[0].vc.clone()
	for _, ivl := range ivls[1:] {
		for i, x := range ivl.vc {
			if x < base[i] {
				base[i] = x
			}
		}
	}
	putVCv2(w, base)
	for _, ivl := range ivls {
		w.uv(uint64(ivl.creator))
		ndiff := 0
		for i, x := range ivl.vc {
			if x != base[i] {
				ndiff++
			}
		}
		w.uv(uint64(ndiff))
		for i, x := range ivl.vc {
			if x != base[i] {
				w.uv(uint64(i))
				w.uv(uint64(x - base[i]))
			}
		}
		sort.Slice(ivl.pages, func(a, b int) bool { return ivl.pages[a] < ivl.pages[b] })
		encodePageRuns(w, ivl.pages)
	}
}

// encodePageRuns writes an ascending page-id list as (gap, runLen-1)
// varint pairs: gap is the distance from the end of the previous run
// (initially page 0) to the run's first id.
func encodePageRuns(w *wbuf, pages []PageID) {
	runs := 0
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+1 {
			j++
		}
		runs++
		i = j
	}
	w.uv(uint64(runs))
	prev := PageID(0)
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+1 {
			j++
		}
		w.uv(uint64(pages[i] - prev))
		w.uv(uint64(j - i - 1))
		prev = pages[j-1] + 1
		i = j
	}
}

// decodeRecordsV2 decodes what encodeRecordsV2 writes, deriving each
// record's sequence number from its reconstructed clock. All counts,
// indices, and accumulated values are validated before use; any
// malformation fails via wireError.
func decodeRecordsV2(r *rbuf) []*interval {
	// A v2 record is at least 3 bytes (creator, ndiff, nruns varints).
	n := r.needCount(r.uvi(), 3)
	if n == 0 {
		return nil
	}
	base := getVCv2(r)
	out := make([]*interval, n)
	for k := range out {
		creator := r.uvi()
		if creator >= len(base) {
			panic(wireErrf("dsm: short message: record creator %d outside %d-node clock", creator, len(base)))
		}
		vc := base.clone()
		ndiff := r.needCount(r.uvi(), 2)
		if ndiff > len(vc) {
			panic(wireErrf("dsm: short message: %d clock deltas for a %d-node clock", ndiff, len(vc)))
		}
		for i := 0; i < ndiff; i++ {
			idx := r.uvi()
			if idx >= len(vc) {
				panic(wireErrf("dsm: short message: clock delta index %d outside %d-node clock", idx, len(vc)))
			}
			sum := int64(vc[idx]) + int64(r.uv())
			if sum > maxUvarint {
				panic(wireErrf("dsm: short message: clock component %d overflows", sum))
			}
			vc[idx] = int32(sum)
		}
		if vc[creator] < 1 {
			panic(wireErrf("dsm: short message: record clock has no interval for creator %d", creator))
		}
		out[k] = &interval{
			creator: creator,
			seq:     int(vc[creator]) - 1,
			vc:      vc,
			pages:   decodePageRuns(r),
		}
	}
	return out
}

// decodePageRuns reconstructs an ascending page-id list from its
// (gap, runLen-1) pairs, bounding both the total page count and the
// largest reconstructed id.
func decodePageRuns(r *rbuf) []PageID {
	nruns := r.needCount(r.uvi(), 2)
	var pages []PageID
	prev := int64(0)
	for i := 0; i < nruns; i++ {
		start := prev + int64(r.uv())
		runLen := int64(r.uv()) + 1
		if len(pages)+int(runLen) > maxPagesPerRecord {
			panic(wireErrf("dsm: short message: record pages exceed cap %d", maxPagesPerRecord))
		}
		if start+runLen-1 > maxUvarint {
			panic(wireErrf("dsm: short message: page id %d overflows", start+runLen-1))
		}
		for p := int64(0); p < runLen; p++ {
			pages = append(pages, PageID(start+p))
		}
		prev = start + runLen
	}
	return pages
}

// putVC writes a bare vector clock in the node's configured wire version.
func (n *Node) putVC(w *wbuf, v VectorClock) {
	if n.wireV1 {
		w.vc(v)
		return
	}
	putVCv2(w, v)
}

// getVC decodes a bare vector clock in the node's configured wire
// version. Both encodings are self-contained, so trailer consumers that
// only need the clock prefix (gatherArrivals, slaveLoop) can stop here.
func (n *Node) getVC(r *rbuf) VectorClock {
	if n.wireV1 {
		return r.vc()
	}
	return getVCv2(r)
}

// putTrailer writes the consistency trailer — sender clock plus interval
// records — in the node's configured wire version.
func (n *Node) putTrailer(w *wbuf, vc VectorClock, recs []*interval) {
	if n.wireV1 {
		w.vc(vc)
		encodeRecords(w, recs)
		return
	}
	putVCv2(w, vc)
	encodeRecordsV2(w, recs)
}

// getTrailer decodes the consistency trailer.
func (n *Node) getTrailer(r *rbuf) (VectorClock, []*interval) {
	if n.wireV1 {
		return r.vc(), decodeRecords(r)
	}
	return getVCv2(r), decodeRecordsV2(r)
}

// frameBuilder collects typed sub-messages bound for one peer and
// transmits them as a single msgBatch datagram. The envelope is
// uv(nsubs), then per sub u8(type) + uv(len) + payload; a request-class
// frame (sendAt/trySendAt) is demuxed by the receiver's protocol server
// back into the ordinary handlers (server.go), a reply-class frame
// (sendReplyAt) by the waiting application thread (client.go's
// unwrapReplyBatch, with the PRIMARY reply first), so observable protocol
// behavior is unchanged — only the datagram count and header overhead
// shrink. Degenerate cases collapse: zero subs send nothing, one sub is
// sent plain under its own type (so single-message waves stay
// byte-identical to the unbatched path and never pay envelope overhead).
type frameBuilder struct {
	n    *Node
	subs []frameSub
}

type frameSub struct {
	typ     int
	payload []byte
}

func (n *Node) newFrame() *frameBuilder { return &frameBuilder{n: n} }

func (f *frameBuilder) add(typ int, payload []byte) {
	f.subs = append(f.subs, frameSub{typ: typ, payload: payload})
}

func (f *frameBuilder) count() int { return len(f.subs) }

// build assembles the envelope payload and the per-sub attribution parts
// handed to the network layer so Stats.ByType charges each sub-message's
// bytes to its true type. The uv(nsubs) prefix is folded into the first
// part so the parts sum exactly to the payload length (the network layer
// panics otherwise).
func (f *frameBuilder) build() ([]byte, []network.FramePart) {
	var w wbuf
	w.uv(uint64(len(f.subs)))
	prefix := len(w.b)
	parts := make([]network.FramePart, len(f.subs))
	for i, s := range f.subs {
		before := len(w.b)
		w.u8(uint8(s.typ))
		w.uv(uint64(len(s.payload)))
		w.b = append(w.b, s.payload...)
		parts[i] = network.FramePart{Type: s.typ, Bytes: len(w.b) - before}
	}
	parts[0].Bytes += prefix
	return w.b, parts
}

// sendAt transmits the collected subs (blocking; application-thread
// contexts only — server contexts must use trySendAt).
func (f *frameBuilder) sendAt(to int, at sim.Time) {
	switch len(f.subs) {
	case 0:
		return
	case 1:
		f.n.ep.SendAt(to, f.subs[0].typ, network.ClassRequest, f.subs[0].payload, at)
		return
	}
	payload, parts := f.build()
	f.n.ep.SendFrameAt(to, msgBatch, network.ClassRequest, payload, parts, at)
}

// sendReplyAt transmits the collected subs as a reply-class envelope —
// the batched barrier departure wave. The first sub must be the primary
// reply the receiver's waiting thread expects (recvReply unwraps the
// frame and hands that sub to the waiter; the subs behind it are
// piggybacked notices handled inline). Blocking, like every reply send:
// application-thread contexts only, receiver guaranteed to be draining.
func (f *frameBuilder) sendReplyAt(to int, at sim.Time) {
	switch len(f.subs) {
	case 0:
		return
	case 1:
		f.n.ep.SendAt(to, f.subs[0].typ, network.ClassReply, f.subs[0].payload, at)
		return
	}
	payload, parts := f.build()
	f.n.ep.SendFrameAt(to, msgBatch, network.ClassReply, payload, parts, at)
}

// trySendAt transmits non-blocking, reporting whether the frame (with
// every sub in it) was delivered. All-or-nothing delivery is what lets
// callers keep the knownVC bookkeeping invariant per envelope: either
// every sub went out or none did.
func (f *frameBuilder) trySendAt(to int, at sim.Time) bool {
	switch len(f.subs) {
	case 0:
		return true
	case 1:
		return f.n.ep.TrySendAt(to, f.subs[0].typ, network.ClassRequest, f.subs[0].payload, at)
	}
	payload, parts := f.build()
	return f.n.ep.TrySendFrameAt(to, msgBatch, network.ClassRequest, payload, parts, at)
}
