package dsm

import (
	"repro/internal/network"
	"repro/internal/sim"
)

// Condition variables, Sections 3.2.3 and 4.2: "Each condition variable is
// associated with a lock. The lock manager maintains a queue of waiting
// threads for each condition variable. On a cond_wait, a thread releases
// the lock and contacts the manager, who inserts it in the queue of
// threads waiting on this condition variable. A cond_signal also contacts
// the manager. If there are any threads in the condition variable's queue,
// the manager removes the first thread from that queue and puts it at the
// end of the queue for the lock. The waiting thread will regain the lock
// after all previous lock acquires for the same lock are released."

// condQueue lives at the associated lock's manager node.
type condQueue struct {
	waiters []semaWaiter // reuse: from, vc-at-wait, arrival time
}

func (n *Node) condFor(id int) *condQueue {
	cq, ok := n.conds[id]
	if !ok {
		cq = &condQueue{}
		n.conds[id] = cq
	}
	return cq
}

// CondWait atomically releases lockID (which the caller must hold), blocks
// on condition variable condID, and re-acquires the lock before returning.
// Upon wakeup the thread contends for the lock and resumes after the
// cond_signal issuer's release, importing its consistency information
// through the normal lock-grant path.
//
// The wait registration is ACKNOWLEDGED, and the lock is released only
// after the ack: registration (request class) and the lock grant to the
// next acquirer (reply class) travel in different queues with no FIFO
// ordering between them, so a fire-and-forget registration could still
// be sitting in the manager's request queue while the next lock holder
// — who can only exist once we release — signals or broadcasts into an
// empty waiter queue and the wakeup is lost forever (the classic lost
// wakeup; observed as a rare QSORT termination deadlock). With the ack,
// any signaler acquired the lock after our registration completed, so
// its signal is enqueued at the manager strictly after our wait.
func (n *Node) CondWait(condID, lockID int) {
	mgr := n.lockMgr(lockID)
	n.mu.Lock()
	n.stats.CondOps++
	ls := n.lockFor(lockID)
	if !ls.held {
		panic("dsm: CondWait requires the associated lock to be held")
	}
	// Release semantics: the interval closes here, and the wait carries
	// our clock so the eventual wake-grant brings us what we miss.
	n.closeIntervalLocked()
	myVC := n.vc.clone()

	if n.id == mgr {
		// Local registration is atomic with the release under mu.
		cq := n.condFor(condID)
		cq.waiters = append(cq.waiters, semaWaiter{from: n.id, vc: myVC, arrive: n.clock.Now()})
	} else {
		var w wbuf
		w.i32(condID)
		w.i32(lockID)
		w.vc(myVC)
		n.mu.Unlock()
		n.ep.Send(mgr, msgCondWait, network.ClassRequest, w.b)
		n.recvReply(msgCondWaitAck)
		n.mu.Lock()
	}

	// Registered: now free the lock and serve anyone queued behind us.
	ls.held = false
	if len(ls.pending) > 0 {
		p := ls.pending[0]
		ls.pending = ls.pending[1:]
		ls.haveToken = false
		n.sendGrantLocked(lockID, p.from, p.vc, n.clock.Now())
	}
	n.mu.Unlock()

	// Block until a signal routes the lock back to us.
	m := n.recvReply(msgLockGrant)
	r := rbuf{b: m.Payload}
	if got := r.i32(); got != lockID {
		panic("dsm: condition wake granted wrong lock")
	}
	senderVC := r.vc()
	recs := decodeRecords(&r)
	n.mu.Lock()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	ls.haveToken = true
	ls.held = true
	n.mu.Unlock()
}

// CondSignal unblocks one thread waiting on condID (no effect if none).
// The caller must hold the associated lock; the woken thread regains the
// lock only after the caller (and any earlier acquirers) release it.
func (n *Node) CondSignal(condID, lockID int) {
	n.condNotify(condID, lockID, false)
}

// CondBroadcast unblocks every thread waiting on condID; the woken threads
// chain onto the lock's request queue in their wait order.
func (n *Node) CondBroadcast(condID, lockID int) {
	n.condNotify(condID, lockID, true)
}

func (n *Node) condNotify(condID, lockID int, all bool) {
	mgr := n.lockMgr(lockID)
	n.mu.Lock()
	n.stats.CondOps++
	if n.id == mgr {
		n.condWakeLocked(condID, lockID, all, n.clock.Now())
		n.mu.Unlock()
		return
	}
	var w wbuf
	w.i32(condID)
	w.i32(lockID)
	n.mu.Unlock()
	typ := msgCondSignal
	if all {
		typ = msgCondBroadcast
	}
	n.ep.Send(mgr, typ, network.ClassRequest, w.b)
}

// condWakeLocked implements the manager's queue transfer: each woken
// waiter is treated as a fresh lock request appended to the lock's chain.
func (n *Node) condWakeLocked(condID, lockID int, all bool, at sim.Time) {
	cq := n.condFor(condID)
	for len(cq.waiters) > 0 {
		wtr := cq.waiters[0]
		cq.waiters = cq.waiters[1:]
		n.enqueueLockRequestLocked(lockID, wtr.from, wtr.vc, at)
		if !all {
			return
		}
	}
}

// enqueueLockRequestLocked runs the manager's acquire logic on behalf of a
// remote (or local) requester — exactly what handleAcqReq does for a wire
// request.
func (n *Node) enqueueLockRequestLocked(lockID, requester int, reqVC VectorClock, at sim.Time) {
	ls := n.lockFor(lockID)
	prev := ls.lastReq
	ls.lastReq = requester
	if prev == n.id {
		if ls.haveToken && !ls.held {
			ls.haveToken = false
			n.sendGrantLocked(lockID, requester, reqVC, at)
			return
		}
		ls.pending = append(ls.pending, pendingReq{from: requester, vc: reqVC, arrive: at})
		return
	}
	var w wbuf
	w.i32(lockID)
	w.i32(requester)
	w.vc(reqVC)
	if prev == requester {
		// The waiter was itself the chain tail when it went to sleep; its
		// own node still has the free token, so the forward loops back to
		// it and its server grants to the local application thread.
		if requester == n.id {
			// Manager == waiter == tail: grant locally.
			if !ls.haveToken || ls.held {
				panic("dsm: condition wake found manager tail without token")
			}
			ls.haveToken = false
			n.sendGrantLocked(lockID, requester, reqVC, at)
			return
		}
	}
	n.ep.SendAt(prev, msgAcqFwd, network.ClassRequest, w.b, at)
}

// handleCondWait runs on the lock manager's protocol server. The ack is
// what lets the waiter release the lock knowing its registration can no
// longer lose a race with a future signal (see CondWait).
func (n *Node) handleCondWait(m *network.Message) {
	r := rbuf{b: m.Payload}
	condID := r.i32()
	_ = r.i32() // lockID: queue transfer happens at signal time
	reqVC := r.vc()
	at := m.Arrive + n.sys.plat.RequestService
	n.mu.Lock()
	n.chargeInterruptLocked()
	cq := n.condFor(condID)
	cq.waiters = append(cq.waiters, semaWaiter{from: m.From, vc: reqVC, arrive: m.Arrive})
	n.mu.Unlock()
	n.ep.SendAt(m.From, msgCondWaitAck, network.ClassReply, nil, at)
}

// handleCondNotify runs on the lock manager's protocol server for both
// signal and broadcast.
func (n *Node) handleCondNotify(m *network.Message, all bool) {
	r := rbuf{b: m.Payload}
	condID := r.i32()
	lockID := r.i32()
	at := m.Arrive + n.sys.plat.RequestService
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chargeInterruptLocked()
	n.condWakeLocked(condID, lockID, all, at)
}
