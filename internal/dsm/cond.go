package dsm

import (
	"repro/internal/network"
	"repro/internal/sim"
)

// Condition variables, Sections 3.2.3 and 4.2: "Each condition variable is
// associated with a lock. The lock manager maintains a queue of waiting
// threads for each condition variable. On a cond_wait, a thread releases
// the lock and contacts the manager, who inserts it in the queue of
// threads waiting on this condition variable. A cond_signal also contacts
// the manager. If there are any threads in the condition variable's queue,
// the manager removes the first thread from that queue and puts it at the
// end of the queue for the lock. The waiting thread will regain the lock
// after all previous lock acquires for the same lock are released."
//
// Multi-client nodes: a wait registration carries the waiting client's
// reply tag; the eventual wake-grant (an ordinary lock grant issued when
// the queue transfer reaches the front of the lock chain) echoes it, so
// the wake routes to the exact island thread that went to sleep even while
// island-mates acquire and release the same lock.

// condQueue lives at the associated lock's manager node.
type condQueue struct {
	waiters []semaWaiter // reuse: from, tag, vc-at-wait, arrival time
}

func (n *Node) condFor(id int) *condQueue {
	cq, ok := n.conds[id]
	if !ok {
		cq = &condQueue{}
		n.conds[id] = cq
	}
	return cq
}

// CondWait atomically releases lockID (which the caller must hold), blocks
// on condition variable condID, and re-acquires the lock before returning.
// Upon wakeup the thread contends for the lock and resumes after the
// cond_signal issuer's release, importing its consistency information
// through the normal lock-grant path.
//
// The wait registration is ACKNOWLEDGED, and the lock is released only
// after the ack: registration (request class) and the lock grant to the
// next acquirer (reply class) travel in different queues with no FIFO
// ordering between them, so a fire-and-forget registration could still
// be sitting in the manager's request queue while the next lock holder
// — who can only exist once we release — signals or broadcasts into an
// empty waiter queue and the wakeup is lost forever (the classic lost
// wakeup; observed as a rare QSORT termination deadlock). With the ack,
// any signaler acquired the lock after our registration completed, so
// its signal is enqueued at the manager strictly after our wait.
func (c *Client) CondWait(condID, lockID int) {
	n := c.n
	mgr := n.lockMgr(lockID)
	n.mu.Lock()
	n.stats.CondOps++
	ls := n.lockFor(lockID)
	if !ls.held {
		panic("dsm: CondWait requires the associated lock to be held")
	}
	// Release semantics: the interval closes here, and the wait carries
	// our clock so the eventual wake-grant brings us what we miss.
	n.closeIntervalLocked()
	myVC := n.vc.clone()

	if n.id == mgr {
		// Local registration is atomic with the release under mu.
		cq := n.condFor(condID)
		cq.waiters = append(cq.waiters, semaWaiter{from: n.id, tag: c.tag, vc: myVC, arrive: c.clk.Now()})
	} else {
		var w wbuf
		w.i32(condID)
		w.i32(lockID)
		w.u32(c.tag)
		n.putVC(&w, myVC)
		n.mu.Unlock()
		n.ep.SendAt(mgr, msgCondWait, network.ClassRequest, w.b, c.clk.Now())
		c.recvReply(msgCondWaitAck, c.tag)
		n.mu.Lock()
	}

	// Registered: now free the lock — an island-mate parked locally takes
	// it first, then anyone queued behind us in the global chain.
	c.handoffLocked(ls, lockID)

	// Block until a signal routes the lock back to us.
	m := c.recvReply(msgLockGrant, c.tag)
	r := rbuf{b: m.Payload}
	if got := r.i32(); got != lockID {
		panic("dsm: condition wake granted wrong lock")
	}
	r.u32() // tag: already matched by routing
	senderVC, recs := n.getTrailer(&r)
	n.mu.Lock()
	n.incorporateLocked(recs, senderVC)
	n.noteHeardLocked(m.From, senderVC)
	ls.haveToken = true
	ls.held = true
	ls.holderTag = c.tag
	n.mu.Unlock()
	c.clk.Advance(c.costs.Cond + c.costs.Lock)
	c.gcSyncHook(false) // the re-acquired lock is held: never stall here
}

// CondSignal unblocks one thread waiting on condID (no effect if none).
// The caller must hold the associated lock; the woken thread regains the
// lock only after the caller (and any earlier acquirers) release it.
func (c *Client) CondSignal(condID, lockID int) {
	c.condNotify(condID, lockID, false)
}

// CondBroadcast unblocks every thread waiting on condID; the woken threads
// chain onto the lock's request queue in their wait order.
func (c *Client) CondBroadcast(condID, lockID int) {
	c.condNotify(condID, lockID, true)
}

func (c *Client) condNotify(condID, lockID int, all bool) {
	n := c.n
	c.clk.Advance(c.costs.Cond)
	mgr := n.lockMgr(lockID)
	n.mu.Lock()
	n.stats.CondOps++
	if n.id == mgr {
		n.condWakeLocked(condID, lockID, all, c.clk.Now())
		n.mu.Unlock()
		c.gcSyncHook(false) // the associated lock is held: never stall here
		return
	}
	var w wbuf
	w.i32(condID)
	w.i32(lockID)
	n.mu.Unlock()
	typ := msgCondSignal
	if all {
		typ = msgCondBroadcast
	}
	n.ep.SendAt(mgr, typ, network.ClassRequest, w.b, c.clk.Now())
	c.gcSyncHook(false) // the associated lock is held: never stall here
}

// condWakeLocked implements the manager's queue transfer: each woken
// waiter is treated as a fresh lock request appended to the lock's chain.
func (n *Node) condWakeLocked(condID, lockID int, all bool, at sim.Time) {
	cq := n.condFor(condID)
	for len(cq.waiters) > 0 {
		wtr := cq.waiters[0]
		cq.waiters = cq.waiters[1:]
		n.enqueueLockRequestLocked(lockID, wtr.from, wtr.tag, wtr.vc, at)
		if !all {
			return
		}
	}
}

// enqueueLockRequestLocked runs the manager's acquire logic on behalf of a
// remote (or local) requester — exactly what handleAcqReq does for a wire
// request. When the chain ends at this node, the token is granted if free
// and queued behind the current holder otherwise (the holder may be any
// client of this node).
func (n *Node) enqueueLockRequestLocked(lockID, requester int, tag uint32, reqVC VectorClock, at sim.Time) {
	ls := n.lockFor(lockID)
	prev := ls.lastReq
	ls.lastReq = requester
	if prev == n.id {
		if ls.haveToken && !ls.held {
			ls.haveToken = false
			n.sendGrantLocked(lockID, requester, tag, reqVC, at)
			return
		}
		ls.pending = append(ls.pending, pendingReq{from: requester, tag: tag, vc: reqVC, arrive: at})
		return
	}
	// Forward to the chain tail. If the waiter was itself the tail when it
	// went to sleep, the forward loops back to its own node, whose server
	// grants to the local application thread.
	var w wbuf
	w.i32(lockID)
	w.i32(requester)
	w.u32(tag)
	n.putVC(&w, reqVC)
	//nowlint:allow servernoblock -- bounded traffic: reqOutstanding caps each node at one in-flight acquire, so at most Procs-1 msgAcqFwd can exist at once, far under the request queue depth; the forward cannot block (PR 5 no-deadlock argument)
	n.ep.SendAt(prev, msgAcqFwd, network.ClassRequest, w.b, at)
}

// handleCondWait runs on the lock manager's protocol server. The ack is
// what lets the waiter release the lock knowing its registration can no
// longer lose a race with a future signal (see CondWait).
func (n *Node) handleCondWait(m *network.Message) {
	r := rbuf{b: m.Payload}
	condID := r.i32()
	_ = r.i32() // lockID: queue transfer happens at signal time
	tag := r.u32()
	reqVC := n.getVC(&r)
	at := m.Arrive + n.sys.plat.RequestService
	n.mu.Lock()
	n.chargeInterruptLocked()
	cq := n.condFor(condID)
	cq.waiters = append(cq.waiters, semaWaiter{from: m.From, tag: tag, vc: reqVC, arrive: m.Arrive})
	n.mu.Unlock()
	var ack wbuf
	ack.u32(tag)
	n.ep.SendAt(m.From, msgCondWaitAck, network.ClassReply, ack.b, at)
}

// handleCondNotify runs on the lock manager's protocol server for both
// signal and broadcast.
func (n *Node) handleCondNotify(m *network.Message, all bool) {
	r := rbuf{b: m.Payload}
	condID := r.i32()
	lockID := r.i32()
	at := m.Arrive + n.sys.plat.RequestService
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chargeInterruptLocked()
	n.condWakeLocked(condID, lockID, all, at)
}
