package dsm

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/network"
	"repro/internal/sim"
)

// Node is one simulated workstation: an application thread (the goroutine
// running user code), a protocol server goroutine (the analogue of
// TreadMarks' SIGIO handler), a private copy of the paged shared address
// space, and a virtual clock.
//
// All exported methods are for the application thread; they delegate to
// the node's default Client (see client.go), and a multi-client system
// (an SMP island sharing the node among a team of threads) creates
// additional Clients with their own clocks and reply tags. A node's state
// is guarded by mu; application threads release mu whenever they block on
// the network so the server can keep serving remote requests.
type Node struct {
	sys    *System
	id     int
	wireV1 bool // pre-batching wire protocol (Config.WireV1; see wire.go)
	clock  sim.Clock
	ep     *network.Endpoint

	c0      Client       // default client: the classic single app thread
	router  *replyRouter // reply demultiplexer; non-nil in multi-client mode
	nextTag uint32       // reply-tag allocator for NewClient (under mu)

	mu          sync.Mutex
	vc          VectorClock
	intervals   [][]*interval // [creator], gap-free, intervals[c][i].seq == intervalBase[c]+i
	ivlBase     []int         // [creator] seq of the oldest retained interval (see gc.go)
	gcFreeVC    VectorClock   // floor of the last barrier/fork epoch; freed at the next one
	gcAcqFreeVC VectorClock   // floor of the last acquire epoch; freed at the next one (acqgc.go)
	gcPurgeVC   VectorClock   // merged floor of every collection this node has completed
	gcSeq       int64         // collections completed; pages stamp it on faults (hot tracking)
	dirty       []*page       // pages twinned in the open interval
	gcPages     []*page       // pages that may hold missing notices or twins (GC work list)
	pages       []*page       // [PageID]; entries materialize lazily
	knownVC     []VectorClock // sound lower bound of what each node has seen

	// fetchMu serializes the node's application-side fetch sequences (the
	// fault path and GC validation waves): page and diff replies route by
	// message type alone, so on a multi-client node two concurrent waves
	// would steal each other's replies — and a fault snapshot must never
	// straddle a GC purge. Always acquired WITHOUT mu held (n.mu may be
	// taken and released while fetchMu is held, never the reverse).
	fetchMu sync.Mutex

	locks map[int]*lockState
	semas map[int]*semaState
	conds map[int]*condQueue

	barrier *barrierMgr // nodes with combining-tree children only (see barrier.go)

	forkCh chan *network.Message // slave: pending fork/exit commands
	joinCh chan *network.Message // master: pending join notifications

	// selfReply carries grants a node's own protocol server issues to its
	// own application thread (a manager waking itself through a semaphore
	// or condition variable) — local operations that cost no messages.
	selfReply chan *network.Message

	stats NodeStats
}

// NodeStats counts protocol events on one node; the harness aggregates
// them for EXPERIMENTS.md and the Table 2 reproduction.
type NodeStats struct {
	ReadFaults   int64
	WriteFaults  int64
	PageFetches  int64
	DiffsCreated int64
	DiffsApplied int64
	DiffBytes    int64
	LockAcquires int64
	LockLocal    int64 // acquires satisfied without messages
	Barriers     int64
	SemaOps      int64
	CondOps      int64
	Flushes      int64
	Interrupts   int64

	// Garbage collection counters (see gc.go and acqgc.go).
	GCEpisodes       int64 // global sync episodes examined by the collector
	GCEpochs         int64 // episodes that actually ran a collection
	GCAcqEpochs      int64 // acquire (lock-manager-led) epochs processed here
	GCSyncPushes     int64 // consensus-sync frames pushed toward quiet nodes
	GCSyncRelays     int64 // tree-routed consensus frames forwarded onward
	GCDepartFloors   int64 // acquire floors piggybacked on departure waves
	IntervalsRetired int64 // interval records reclaimed
	TwinsCollected   int64 // twins released without ever encoding their diff
	GCPagesValidated int64 // stale copies brought current during GC
	GCPagesFlushed   int64 // stale copies discarded during GC

	// Protocol-metadata footprint: interval records + encoded diffs +
	// twins retained on this node. ProtoBytes is the current gauge;
	// the Peak fields record the worst case seen over the run, which is
	// what bounds a real TreadMarks process's memory.
	ProtoBytes        int64
	PeakProtoBytes    int64
	PeakIntervalChain int64 // longest per-creator interval list ever held
}

// protoAddLocked moves the protocol-metadata gauge and tracks its peak.
func (n *Node) protoAddLocked(delta int64) {
	n.stats.ProtoBytes += delta
	if n.stats.ProtoBytes > n.stats.PeakProtoBytes {
		n.stats.PeakProtoBytes = n.stats.ProtoBytes
	}
}

// noteChainLocked tracks the peak retained interval-chain length.
func (n *Node) noteChainLocked(c int) {
	if l := int64(len(n.intervals[c])); l > n.stats.PeakIntervalChain {
		n.stats.PeakIntervalChain = l
	}
}

// errAborted unwinds application threads when another node panicked and
// the system is shutting down.
type abortError struct{ cause string }

func (e abortError) Error() string { return "dsm: run aborted: " + e.cause }

// ID returns the node's processor number (0 = master).
func (n *Node) ID() int { return n.id }

// NumProcs returns the number of processors in the system.
func (n *Node) NumProcs() int { return n.sys.cfg.Procs }

// Sys returns the owning system (for allocation from application code).
func (n *Node) Sys() *System { return n.sys }

// Now returns the node's current virtual time.
func (n *Node) Now() sim.Time { return n.clock.Now() }

// AdvanceClockTo raises the node's clock to t if later (an island-delegate
// hook: after a hybrid backend joins an island's local workers, the node
// clock must carry the island's completion time into the join message).
func (n *Node) AdvanceClockTo(t sim.Time) { n.clock.AdvanceTo(t) }

// Compute charges the virtual cost of flops floating-point operations to
// the node's clock. Application kernels call it to account for the real
// work they perform.
func (n *Node) Compute(flops float64) {
	n.clock.Advance(n.sys.plat.ComputeCost(flops))
}

// Charge advances the node's clock by an explicit duration (used by the
// OpenMP runtime for bookkeeping costs).
func (n *Node) Charge(d sim.Time) { n.clock.Advance(d) }

// Poll yields the processor inside a busy-wait loop (the flush-based
// constructs of the paper's Figures 1 and 2). Polling charges no virtual
// time by itself: the number of real spin iterations is a scheduling
// artifact of direct execution, and the spinning thread's virtual clock
// advances when the awaited write notice arrives and the fault pulls the
// new value (which is lower-bounded by the flusher's send time).
func (n *Node) Poll() { runtime.Gosched() }

// Stats returns a copy of the node's protocol counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ---------------------------------------------------------------------
// Interval bookkeeping (all *Locked methods require n.mu).
// ---------------------------------------------------------------------

func (n *Node) pageFor(pid PageID) *page {
	if pid < 0 || int(pid) >= len(n.pages) {
		panic(fmt.Sprintf("dsm: page %d outside shared heap (%d pages); use System.Malloc", pid, len(n.pages)))
	}
	pg := n.pages[pid]
	if pg == nil {
		pg = &page{id: pid, hotSeq: -1, lastOwnSeq: -1}
		if n.isHome(pid) {
			// The page's home is its allocator and initial owner: its copy
			// materializes as zeros, matching Tmk_malloc. (Under the first-
			// touch policy this call claims the page.)
			pg.data = make([]byte, PageSize)
			pg.state = pageReadOnly
		}
		n.pages[pid] = pg
	}
	return pg
}

// closeIntervalLocked ends the node's open interval if it wrote anything,
// assigning the interval the node's incremented vector clock and recording
// a write notice for every dirty page. Diffs stay lazy: each dirty page
// keeps its twin until the diff is first needed.
func (n *Node) closeIntervalLocked() {
	if len(n.dirty) == 0 || n.sys.cfg.Procs == 1 {
		return
	}
	ivl := &interval{
		creator: n.id,
		seq:     int(n.vc[n.id]),
		diffs:   make(map[PageID][]byte, len(n.dirty)),
	}
	n.vc[n.id]++
	ivl.vc = n.vc.clone()
	for _, pg := range n.dirty {
		ivl.pages = append(ivl.pages, pg.id)
		pg.twinIvl = ivl
		pg.lastOwnSeq = ivl.seq
		pg.inDirty = false
		n.mergeSeenLocked(pg, ivl.vc)
		n.mergeAppliedLocked(pg, ivl.vc)
		if pg.state == pageReadWrite {
			// Write-protect at interval close so the next local write
			// faults and encodes this interval's diff before re-twinning.
			pg.state = pageReadOnly
		}
	}
	n.dirty = n.dirty[:0]
	n.intervals[n.id] = append(n.intervals[n.id], ivl)
	n.noteChainLocked(n.id)
	n.protoAddLocked(ivlRecordBytes(ivl))
}

// storeIntervalLocked records a received interval if it is new, enforcing
// the gap-free prefix invariant. It returns the canonical stored record
// and whether it was new. Intervals below the retained base were retired
// by the garbage collector — every node provably incorporated them before
// they were freed, so they are duplicates by construction (the returned
// record is nil in that case; callers only use it when isNew is true).
func (n *Node) storeIntervalLocked(rec *interval) (*interval, bool) {
	have := n.intervals[rec.creator]
	idx := rec.seq - n.ivlBase[rec.creator]
	if idx < 0 {
		return nil, false // retired duplicate
	}
	if idx < len(have) {
		return have[idx], false // duplicate
	}
	if idx > len(have) {
		panic(fmt.Sprintf("dsm: node %d received interval (%d,%d) with gap (have base %d + %d)",
			n.id, rec.creator, rec.seq, n.ivlBase[rec.creator], len(have)))
	}
	n.intervals[rec.creator] = append(have, rec)
	n.noteChainLocked(rec.creator)
	n.protoAddLocked(ivlRecordBytes(rec))
	return rec, true
}

// incorporateLocked merges received consistency information: it stores new
// intervals, invalidates the pages named by their write notices, and
// raises the node's vector clock. This is the "acquire" half of lazy
// release consistency.
//
// The order is load-bearing: ALL invalidations happen before ANY clock
// merge. An invalidation may close the node's open write interval early
// (multiple-writer), and the closed interval's clock must not cover
// batch-mates its writes never observed — otherwise a third node could
// treat that interval as dominating content (the diff-squash fallback)
// that its creator's copy does not actually reflect. With this ordering
// the invariant "interval M's clock covers X ⇒ M's creator incorporated
// X's write notice before performing any write stamped into M" holds.
func (n *Node) incorporateLocked(recs []*interval, senderVC VectorClock) {
	var fresh []*interval
	for _, rec := range recs {
		if rec.creator == n.id {
			continue // our own intervals are never stale locally
		}
		stored, isNew := n.storeIntervalLocked(rec)
		if !isNew {
			continue
		}
		for _, pid := range stored.pages {
			n.invalidateLocked(n.pageFor(pid), stored)
		}
		fresh = append(fresh, stored)
	}
	for _, stored := range fresh {
		n.vc.merge(stored.vc)
	}
	if senderVC != nil {
		n.vc.merge(senderVC)
	}
}

// invalidateLocked applies one write notice to a page. If the page is
// being written locally, the local modifications are preserved: an open
// interval is closed early, the pending diff is encoded against the twin,
// and the remote diffs will later be merged into the local data
// (multiple-writer protocol).
func (n *Node) invalidateLocked(pg *page, ivl *interval) {
	if pg.twin != nil {
		if pg.twinIvl == nil {
			// Page is dirty in the open interval; close the interval so
			// its local modifications are captured before invalidation.
			n.closeIntervalLocked()
		}
		n.ensureDiffEncodedLocked(pg)
	}
	pg.state = pageInvalid
	pg.missing = append(pg.missing, ivl)
	n.noteGCPageLocked(pg)
	n.mergeSeenLocked(pg, ivl.vc)
}

// noteGCPageLocked enrolls a page in the GC work list the first time it
// gains state a collection epoch must examine (a missing notice or a
// twin). Membership is pruned at the end of each epoch.
func (n *Node) noteGCPageLocked(pg *page) {
	if !pg.inGCList {
		pg.inGCList = true
		n.gcPages = append(n.gcPages, pg)
	}
}

// mergeSeenLocked folds an interval clock into the page's observation
// history (see page.seenVC).
func (n *Node) mergeSeenLocked(pg *page, vc VectorClock) {
	if pg.seenVC == nil {
		pg.seenVC = newVC(n.sys.cfg.Procs)
	}
	pg.seenVC.merge(vc)
}

// mergeAppliedLocked folds an interval clock into the page's baked-in
// content history (see page.appliedVC) — called when the node's own write
// interval closes over the page and when a remote diff is applied to it.
func (n *Node) mergeAppliedLocked(pg *page, vc VectorClock) {
	if pg.appliedVC == nil {
		pg.appliedVC = newVC(n.sys.cfg.Procs)
	}
	pg.appliedVC.merge(vc)
}

// ensureDiffEncodedLocked materializes the diff owed by the page's pending
// closed interval, freeing the twin. It returns the number of diff payload
// bytes produced (0 if nothing was pending). The caller charges the cost
// to whichever clock is appropriate (application thread or served request).
func (n *Node) ensureDiffEncodedLocked(pg *page) int {
	if pg.twinIvl == nil {
		return 0
	}
	diff := makeDiff(pg.data, pg.twin)
	pg.twinIvl.diffs[pg.id] = diff
	pg.twinIvl = nil
	pg.twin = nil
	n.protoAddLocked(int64(len(diff)) - PageSize) // twin freed, diff retained
	n.stats.DiffsCreated++
	n.stats.DiffBytes += int64(len(diff))
	return len(diff)
}

// deltaForLocked collects every interval the node knows that is not
// covered by target, in causal (creator, seq) order. This is the payload
// of every consistency-bearing message. A target component below the
// retained base is clamped to it: intervals under the base were retired
// by the garbage collector only after every node — the delta's receiver
// included — had incorporated them, so the receiver cannot actually lack
// them even when our knownVC estimate is that stale.
func (n *Node) deltaForLocked(target VectorClock) []*interval {
	var out []*interval
	for c := 0; c < n.sys.cfg.Procs; c++ {
		have := n.intervals[c]
		start := int(target[c]) - n.ivlBase[c]
		if start < 0 {
			start = 0
		}
		for s := start; s < len(have); s++ {
			out = append(out, have[s])
		}
	}
	return out
}

// noteSentLocked records that node j has been sent everything up to our
// current vector clock (used to bound future piggybacked deltas).
//
// Soundness: call this ONLY for request-class delta sends performed by the
// application thread while holding n.mu (barrier arrivals, semaphore
// signals, flush, fork, join). Those sends share one FIFO channel per
// destination, so by induction the receiver always gets the gap-free
// prefix before any delta that assumes it. Reply-class sends (grants,
// departures) are exact deltas against the receiver's reported clock and
// must not touch the estimate.
func (n *Node) noteSentLocked(j int) {
	n.knownVC[j].merge(n.vc)
}

// noteHeardLocked records j's vector clock as carried by a message from j.
func (n *Node) noteHeardLocked(j int, v VectorClock) {
	if v != nil {
		n.knownVC[j].merge(v)
	}
}

// ---------------------------------------------------------------------
// Fault handling.
// ---------------------------------------------------------------------

// readableLocked reports whether the page can be read without protocol
// action.
func readableLocked(pg *page) bool {
	return pg.data != nil && pg.state != pageInvalid && len(pg.missing) == 0
}

// ensureReadableLocked drives the read-fault loop until the page has a
// current local copy. It may release and reacquire n.mu. Fault costs are
// charged to the calling client's clock.
func (c *Client) ensureReadableLocked(pg *page) {
	n := c.n
	for !readableLocked(pg) {
		n.stats.ReadFaults++
		c.faultInLocked(pg)
	}
}

// ensureWritableLocked drives the write-fault loop until the page is
// writable with a twin in the open interval. It may release and reacquire
// n.mu.
func (c *Client) ensureWritableLocked(pg *page) {
	n := c.n
	if n.sys.cfg.Procs == 1 {
		// Single-processor fast path: with no other node to ever request
		// a diff or send a write notice, TreadMarks performs no twinning
		// or write protection; writes run at memory speed.
		if pg.data == nil {
			pg.data = make([]byte, PageSize)
		}
		pg.state = pageReadWrite
		return
	}
	for {
		if pg.state == pageReadWrite && len(pg.missing) == 0 {
			return
		}
		if !readableLocked(pg) {
			n.stats.WriteFaults++
			c.faultInLocked(pg)
			continue
		}
		// Read-only with a current copy: take the write fault.
		n.stats.WriteFaults++
		c.clk.Advance(n.sys.plat.FaultOverhead)
		if pg.twinIvl != nil {
			// The previous interval's diff must be encoded before the
			// twin can be reused; charge the page scan.
			n.ensureDiffEncodedLocked(pg)
			c.clk.Advance(n.sys.plat.DiffCreate + sim.Time(float64(PageSize)*n.sys.plat.DiffPerByte))
		}
		pg.twin = make([]byte, PageSize)
		copy(pg.twin, pg.data)
		n.noteGCPageLocked(pg)
		n.protoAddLocked(PageSize)
		c.clk.Advance(n.sys.plat.TwinCopy)
		pg.state = pageReadWrite
		if !pg.inDirty {
			pg.inDirty = true
			n.dirty = append(n.dirty, pg)
		}
		return
	}
}

// diffRequest is one batched msgDiffReq payload bound for one interval
// creator.
type diffRequest struct {
	creator int
	payload []byte
}

// diffRequestPayloads builds the per-creator msgDiffReq payloads for the
// given missing intervals of page pid, in ascending creator order. It
// reads only immutable interval identity, so it may run with or without
// n.mu held. The fault path sends each payload as its own datagram
// (sendDiffRequests); the GC purge wave coalesces one creator's payloads
// across ALL its work pages into a single frame (gcPurgePagesLocked).
func diffRequestPayloads(pid PageID, fetch []*interval) []diffRequest {
	byCreator := make(map[int][]*interval)
	var creators []int
	for _, ivl := range fetch {
		if _, ok := byCreator[ivl.creator]; !ok {
			creators = append(creators, ivl.creator)
		}
		byCreator[ivl.creator] = append(byCreator[ivl.creator], ivl)
	}
	sort.Ints(creators)
	out := make([]diffRequest, 0, len(creators))
	for _, cr := range creators {
		var w wbuf
		w.u32(uint32(pid))
		ivls := byCreator[cr]
		w.u32(uint32(len(ivls)))
		for _, ivl := range ivls {
			w.u32(uint32(ivl.seq))
		}
		out = append(out, diffRequest{creator: cr, payload: w.b})
	}
	return out
}

// sendDiffRequests issues one batched msgDiffReq per creator for the
// given missing intervals of page pid (in ascending creator order) and
// returns the number of requests sent. Callers collect exactly that
// many msgDiffRep replies via recvDiffReply.
func (c *Client) sendDiffRequests(pid PageID, fetch []*interval) int {
	n := c.n
	reqs := diffRequestPayloads(pid, fetch)
	for _, req := range reqs {
		n.ep.SendAt(req.creator, msgDiffReq, network.ClassRequest, req.payload, c.clk.Now())
	}
	return len(reqs)
}

// recvDiffReply blocks for one msgDiffRep and decodes it into the page
// it answers for, the creator that served it, and its per-seq diffs.
// Must be called WITHOUT holding n.mu.
func (c *Client) recvDiffReply() (PageID, int, map[int][]byte) {
	rep := c.recvReply(msgDiffRep, 0)
	r := rbuf{b: rep.Payload}
	pid := PageID(r.u32())
	cnt := int(r.u32())
	bySeq := make(map[int][]byte, cnt)
	for i := 0; i < cnt; i++ {
		seq := int(r.u32())
		bySeq[seq] = r.bytes()
	}
	return pid, rep.From, bySeq
}

// sortCausal orders intervals by a linearization of the happens-before
// relation — (vc sum, creator, seq) — the order in which their diffs
// must be applied (see VectorClock.sum for the validity argument).
func sortCausal(ivls []*interval) {
	sort.Slice(ivls, func(i, j int) bool {
		a, b := ivls[i], ivls[j]
		if sa, sb := a.vc.sum(), b.vc.sum(); sa != sb {
			return sa < sb
		}
		if a.creator != b.creator {
			return a.creator < b.creator
		}
		return a.seq < b.seq
	})
}

// faultInLocked performs one round of the page-fault protocol: fetch the
// initial copy from the page's home if it was never materialized, fetch all
// missing diffs from their creators in parallel, and apply them in a
// topological order of the happens-before relation. n.mu is released
// while requests are in flight; the loop in ensure*Locked re-checks state
// afterwards because new write notices may have arrived meanwhile.
//
// The whole round holds fetchMu (acquired with n.mu dropped, then the
// state re-examined): it keeps a multi-client node's concurrent fetch
// waves from stealing each other's type-routed replies, and it orders
// every fault snapshot strictly before or after any GC purge — a fault
// can therefore never fetch a notice a concurrent purge is discarding.
func (c *Client) faultInLocked(pg *page) {
	n := c.n
	plat := n.sys.plat
	c.clk.Advance(plat.FaultOverhead)

	n.mu.Unlock()
	n.fetchMu.Lock()
	defer n.fetchMu.Unlock()
	n.mu.Lock()
	pg.hotSeq = n.gcSeq // faulted since the last collection: hot
	if readableLocked(pg) {
		return // resolved while we waited for the fetch lock
	}

	if pg.data == nil && n.isHome(pg.id) {
		pg.data = make([]byte, PageSize)
		if pg.state == pageInvalid && len(pg.missing) == 0 {
			pg.state = pageReadOnly
		}
	}

	needPage := pg.data == nil
	// Snapshot the notices we will resolve in this round.
	fetch := make([]*interval, len(pg.missing))
	copy(fetch, pg.missing)

	// Diff squash (the TreadMarks fallback for accumulated diff chains):
	// if some missing interval M has observed everything this node has
	// ever seen of the page (seenVC ≤ M.vc), then M's creator's current
	// copy reflects every modification we know about, and one whole-page
	// transfer replaces the entire chain. Worth it when the page is cold
	// anyway, or when the chain is long enough that its diffs would cost
	// more than a page.
	const squashMin = 4
	squashEnabled := (needPage && debugSquash&1 != 0) || (!needPage && debugSquash&2 != 0)
	// First copies come from the page's home (which materializes zeros on
	// demand); a squash below may redirect the whole-page transfer to an
	// interval creator whose copy subsumes the chain.
	pageSource := n.homeOf(pg.id)
	resolved := fetch // which notices this round settles
	squashed := false
	var squashIvl *interval
	if squashEnabled && len(fetch) > 0 && (needPage || len(fetch) >= squashMin) {
		for _, m := range fetch {
			if m.creator != n.id && pg.seenVC != nil && pg.seenVC.dominatedBy(m.vc) {
				if pg.twin != nil {
					panic("dsm: squash with live twin")
				}
				if pg.inDirty {
					panic("dsm: squash with dirty page")
				}
				for _, o := range fetch {
					if !o.vc.dominatedBy(m.vc) {
						panic("dsm: squash misses concurrent interval")
					}
				}
				pageSource = m.creator
				needPage = true
				squashed = true
				squashIvl = m
				fetch = nil // every missing interval is ≤ M: page covers all
				break
			}
		}
	}

	pid := pg.id
	n.mu.Unlock() // --- network section: server may run meanwhile ---

	var pageContent []byte
	if needPage {
		var w wbuf
		w.u32(uint32(pid))
		n.ep.SendAt(pageSource, msgPageReq, network.ClassRequest, w.b, c.clk.Now())
		rep := c.recvReply(msgPageRep, 0)
		r := rbuf{b: rep.Payload}
		if PageID(r.u32()) != pid {
			panic("dsm: page reply for wrong page")
		}
		pageContent = r.bytes()
		n.mu.Lock()
		n.stats.PageFetches++
		n.mu.Unlock()
	}

	// Issue all diff requests back-to-back (batched per creator), then
	// collect the replies; virtual time advances to the latest arrival,
	// modelling TreadMarks' parallel diff fetch. This must follow the
	// page fetch: the reply queue is shared, and recvReply asserts each
	// reply's type.
	nreq := c.sendDiffRequests(pid, fetch)
	diffs := make(map[int]map[int][]byte, nreq)
	for i := 0; i < nreq; i++ {
		gotPid, from, bySeq := c.recvDiffReply()
		if gotPid != pid {
			panic("dsm: diff reply for wrong page")
		}
		diffs[from] = bySeq
	}

	n.mu.Lock() // --- end network section ---

	if squashed && debugSquash&4 != 0 {
		// Differential verification (test hook): re-fetch the chain the
		// squash skipped and check the squashed copy reflects it.
		c.verifySquashLocked(pg, pid, pageContent, resolved)
	}

	if needPage && (pg.data == nil || squashed) {
		// A squashed fetch deliberately replaces stale local content: the
		// source's copy reflects everything this node had observed (squash
		// precondition), as does the home's (the flush gate held when any
		// covered notice was dropped) — either way the whole-page base
		// repairs a flush-truncated notice history.
		pg.data = pageContent
		pg.refetch = false
		if squashed {
			// The source's copy bakes in at least M's history; content the
			// source wrote beyond M is re-delivered by its future notices.
			n.mergeAppliedLocked(pg, squashIvl.vc)
		} else {
			// Fresh home base: home copies only move forward, so nothing
			// baked in here needs tracking until a diff lands on it.
			pg.appliedVC = nil
		}
	}

	// Apply in a linearization of happens-before.
	sortCausal(fetch)
	for _, ivl := range fetch {
		d, ok := diffs[ivl.creator][ivl.seq]
		if !ok {
			panic(fmt.Sprintf("dsm: node %d missing diff (%d,%d) for page %d", n.id, ivl.creator, ivl.seq, pid))
		}
		n.mergeAppliedLocked(pg, ivl.vc)
		applied := applyDiff(pg.data, d)
		n.stats.DiffsApplied++
		c.clk.Advance(plat.DiffApply + sim.Time(float64(applied)*plat.DiffApplyPerByte))
	}

	// Remove exactly the resolved notices (the whole snapshot when the
	// fetch was squashed); new ones may have been appended while we were
	// fetching.
	done := make(map[*interval]bool, len(resolved))
	for _, ivl := range resolved {
		done[ivl] = true
	}
	rest := pg.missing[:0]
	for _, ivl := range pg.missing {
		if !done[ivl] {
			rest = append(rest, ivl)
		}
	}
	pg.missing = rest
	if len(pg.missing) == 0 && pg.data != nil && pg.state == pageInvalid {
		pg.state = pageReadOnly
	}
}

// ---------------------------------------------------------------------
// Typed access to shared memory. These are the compiler-emitted access
// checks that stand in for mprotect faults: every call verifies page
// validity and takes the fault path when needed. Plain in-page accesses
// are the fast path; multi-page spans decompose into per-page segments.
// The operations are Client methods so fault costs land on the accessing
// thread's clock; Node re-exports them through the default client.
// ---------------------------------------------------------------------

func (n *Node) checkRange(a Addr, size int) {
	if a < 0 || int(a)+size > n.sys.heapBytes {
		panic(fmt.Sprintf("dsm: access [%d,%d) outside shared heap of %d bytes", a, int(a)+size, n.sys.heapBytes))
	}
}

// ReadF64 reads a float64 at shared address a.
func (c *Client) ReadF64(a Addr) float64 {
	return math.Float64frombits(c.readU64(a))
}

// WriteF64 writes a float64 at shared address a.
func (c *Client) WriteF64(a Addr, v float64) {
	c.writeU64(a, math.Float64bits(v))
}

// ReadI64 reads an int64 at shared address a.
func (c *Client) ReadI64(a Addr) int64 { return int64(c.readU64(a)) }

// WriteI64 writes an int64 at shared address a.
func (c *Client) WriteI64(a Addr, v int64) { c.writeU64(a, uint64(v)) }

// ReadI32 reads an int32 at shared address a.
func (c *Client) ReadI32(a Addr) int32 {
	var buf [4]byte
	c.ReadBytes(a, buf[:])
	return int32(binary.LittleEndian.Uint32(buf[:]))
}

// WriteI32 writes an int32 at shared address a.
func (c *Client) WriteI32(a Addr, v int32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	c.WriteBytes(a, buf[:])
}

func (c *Client) readU64(a Addr) uint64 {
	n := c.n
	n.checkRange(a, 8)
	off := int(a) % PageSize
	if off+8 <= PageSize {
		n.mu.Lock()
		pg := n.pageFor(PageID(int(a) / PageSize))
		c.ensureReadableLocked(pg)
		v := binary.LittleEndian.Uint64(pg.data[off:])
		n.mu.Unlock()
		return v
	}
	var buf [8]byte
	c.ReadBytes(a, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (c *Client) writeU64(a Addr, v uint64) {
	n := c.n
	n.checkRange(a, 8)
	off := int(a) % PageSize
	if off+8 <= PageSize {
		n.mu.Lock()
		pg := n.pageFor(PageID(int(a) / PageSize))
		c.ensureWritableLocked(pg)
		binary.LittleEndian.PutUint64(pg.data[off:], v)
		n.mu.Unlock()
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	c.WriteBytes(a, buf[:])
}

// ReadBytes copies len(dst) bytes of shared memory starting at a into dst.
func (c *Client) ReadBytes(a Addr, dst []byte) {
	n := c.n
	n.checkRange(a, len(dst))
	defer oracleCheck(n.id, a, dst)
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(dst) > 0 {
		pid := PageID(int(a) / PageSize)
		off := int(a) % PageSize
		chunk := PageSize - off
		if chunk > len(dst) {
			chunk = len(dst)
		}
		pg := n.pageFor(pid)
		c.ensureReadableLocked(pg)
		copy(dst[:chunk], pg.data[off:off+chunk])
		dst = dst[chunk:]
		a += Addr(chunk)
	}
}

// WriteBytes copies src into shared memory starting at a.
func (c *Client) WriteBytes(a Addr, src []byte) {
	n := c.n
	n.checkRange(a, len(src))
	oracleWrite(a, src)
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(src) > 0 {
		pid := PageID(int(a) / PageSize)
		off := int(a) % PageSize
		chunk := PageSize - off
		if chunk > len(src) {
			chunk = len(src)
		}
		pg := n.pageFor(pid)
		c.ensureWritableLocked(pg)
		copy(pg.data[off:off+chunk], src[:chunk])
		src = src[chunk:]
		a += Addr(chunk)
	}
}

// ReadF64s reads len(dst) consecutive float64s starting at a.
func (c *Client) ReadF64s(a Addr, dst []float64) {
	n := c.n
	n.checkRange(a, 8*len(dst))
	if debugOracleOn {
		defer oracleCheckF64s(n.id, a, dst)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	i := 0
	for i < len(dst) {
		addr := int(a) + 8*i
		pid := PageID(addr / PageSize)
		off := addr % PageSize
		pg := n.pageFor(pid)
		c.ensureReadableLocked(pg)
		for off+8 <= PageSize && i < len(dst) {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(pg.data[off:]))
			off += 8
			i++
		}
		if off+8 > PageSize && off < PageSize && i < len(dst) {
			// Element straddles a page boundary (possible only for
			// unaligned bases); fall back to the byte path.
			var buf [8]byte
			n.mu.Unlock()
			c.ReadBytes(Addr(int(a)+8*i), buf[:])
			n.mu.Lock()
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			i++
		}
	}
}

// WriteF64s writes the float64s of src to consecutive addresses from a.
func (c *Client) WriteF64s(a Addr, src []float64) {
	n := c.n
	n.checkRange(a, 8*len(src))
	oracleWriteF64s(a, src)
	n.mu.Lock()
	defer n.mu.Unlock()
	i := 0
	for i < len(src) {
		addr := int(a) + 8*i
		pid := PageID(addr / PageSize)
		off := addr % PageSize
		pg := n.pageFor(pid)
		c.ensureWritableLocked(pg)
		for off+8 <= PageSize && i < len(src) {
			binary.LittleEndian.PutUint64(pg.data[off:], math.Float64bits(src[i]))
			off += 8
			i++
		}
		if off+8 > PageSize && off < PageSize && i < len(src) {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(src[i]))
			n.mu.Unlock()
			c.WriteBytes(Addr(int(a)+8*i), buf[:])
			n.mu.Lock()
			i++
		}
	}
}

// ReadI32s reads len(dst) consecutive int32s starting at a.
func (c *Client) ReadI32s(a Addr, dst []int32) {
	buf := make([]byte, 4*len(dst))
	c.ReadBytes(a, buf)
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
}

// WriteI32s writes the int32s of src to consecutive addresses from a.
func (c *Client) WriteI32s(a Addr, src []int32) {
	buf := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	c.WriteBytes(a, buf)
}

// ---------------------------------------------------------------------
// The classic single-thread node API: every application-side operation
// delegated to the node's default client (tag 0, the node's own clock).
// ---------------------------------------------------------------------

// ReadF64 reads a float64 at shared address a.
func (n *Node) ReadF64(a Addr) float64 { return n.c0.ReadF64(a) }

// WriteF64 writes a float64 at shared address a.
func (n *Node) WriteF64(a Addr, v float64) { n.c0.WriteF64(a, v) }

// ReadI64 reads an int64 at shared address a.
func (n *Node) ReadI64(a Addr) int64 { return n.c0.ReadI64(a) }

// WriteI64 writes an int64 at shared address a.
func (n *Node) WriteI64(a Addr, v int64) { n.c0.WriteI64(a, v) }

// ReadI32 reads an int32 at shared address a.
func (n *Node) ReadI32(a Addr) int32 { return n.c0.ReadI32(a) }

// WriteI32 writes an int32 at shared address a.
func (n *Node) WriteI32(a Addr, v int32) { n.c0.WriteI32(a, v) }

// ReadBytes copies len(dst) bytes of shared memory starting at a into dst.
func (n *Node) ReadBytes(a Addr, dst []byte) { n.c0.ReadBytes(a, dst) }

// WriteBytes copies src into shared memory starting at a.
func (n *Node) WriteBytes(a Addr, src []byte) { n.c0.WriteBytes(a, src) }

// ReadF64s reads len(dst) consecutive float64s starting at a.
func (n *Node) ReadF64s(a Addr, dst []float64) { n.c0.ReadF64s(a, dst) }

// WriteF64s writes the float64s of src to consecutive addresses from a.
func (n *Node) WriteF64s(a Addr, src []float64) { n.c0.WriteF64s(a, src) }

// ReadI32s reads len(dst) consecutive int32s starting at a.
func (n *Node) ReadI32s(a Addr, dst []int32) { n.c0.ReadI32s(a, dst) }

// WriteI32s writes the int32s of src to consecutive addresses from a.
func (n *Node) WriteI32s(a Addr, src []int32) { n.c0.WriteI32s(a, src) }

// Barrier synchronizes all processors (see Client.Barrier).
func (n *Node) Barrier() { n.c0.Barrier() }

// Acquire obtains lock id with acquire semantics (see Client.Acquire).
func (n *Node) Acquire(id int) { n.c0.Acquire(id) }

// Release releases lock id with release semantics (see Client.Release).
func (n *Node) Release(id int) { n.c0.Release(id) }

// SemaWait performs P(id) (see Client.SemaWait).
func (n *Node) SemaWait(id int) { n.c0.SemaWait(id) }

// SemaSignal performs V(id) (see Client.SemaSignal).
func (n *Node) SemaSignal(id int) { n.c0.SemaSignal(id) }

// CondWait atomically releases lockID, blocks on condition variable
// condID, and re-acquires the lock (see Client.CondWait).
func (n *Node) CondWait(condID, lockID int) { n.c0.CondWait(condID, lockID) }

// CondSignal unblocks one waiter on condID (see Client.CondSignal).
func (n *Node) CondSignal(condID, lockID int) { n.c0.CondSignal(condID, lockID) }

// CondBroadcast unblocks every waiter on condID (see Client.CondBroadcast).
func (n *Node) CondBroadcast(condID, lockID int) { n.c0.CondBroadcast(condID, lockID) }

// Flush is the OpenMP flush directive (see Client.Flush).
func (n *Node) Flush() { n.c0.Flush() }

// RunParallel forks the named region on every slave node, runs it on the
// master too, and joins (see Client.RunParallel).
func (n *Node) RunParallel(region string, arg []byte) { n.c0.RunParallel(region, arg) }

// verifySquashLocked cross-checks a squashed page against the diff chain
// it replaced (diagnostic only; enabled via SetDebugSquashMode(7)).
func (c *Client) verifySquashLocked(pg *page, pid PageID, content []byte, chain []*interval) {
	n := c.n
	nreq := c.sendDiffRequests(pid, chain)
	n.mu.Unlock()
	diffs := make(map[int]map[int][]byte, nreq)
	for i := 0; i < nreq; i++ {
		_, from, bySeq := c.recvDiffReply()
		diffs[from] = bySeq
	}
	n.mu.Lock()
	sorted := make([]*interval, len(chain))
	copy(sorted, chain)
	sortCausal(sorted)
	for _, ivl := range sorted {
		d := diffs[ivl.creator][ivl.seq]
		r := rbuf{b: d}
		for !r.done() {
			off := int(r.u32())
			cnt := int(r.u32())
			seg := r.need(cnt)
			_ = seg
			_ = off
		}
	}
	// Apply the chain in order onto a scratch copy of the squashed page's
	// *later-interval* base and compare: simpler: apply each diff's bytes
	// and verify the LAST write of each byte matches content.
	lastVal := make(map[int]byte)
	for _, ivl := range sorted {
		d := diffs[ivl.creator][ivl.seq]
		r := rbuf{b: d}
		for !r.done() {
			off := int(r.u32())
			cnt := int(r.u32())
			seg := r.need(cnt)
			for i := 0; i < cnt; i++ {
				lastVal[off+i] = seg[i]
			}
		}
	}
	bad := 0
	for off, v := range lastVal {
		if content[off] != v {
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("SQUASH-DIVERGE node=%d page=%d badBytes=%d chain=%d\n", n.id, pid, bad, len(chain))
		for _, ivl := range sorted {
			fmt.Printf("  chain ivl (%d,%d) vc=%v diffLen=%d\n", ivl.creator, ivl.seq, ivl.vc, len(diffs[ivl.creator][ivl.seq]))
		}
	}
}
