package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncNode is one unit of the package-local call graph: a top-level
// function/method declaration or a function literal. Literals are
// separate nodes because they frequently run in a different execution
// context than their enclosing function (a goroutine body, a deferred
// recovery handler), and the context-sensitive analyzers (servernoblock,
// tripwire) must not smear one context's obligations over the other.
type FuncNode struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	// Calls are the call expressions appearing directly in this node's
	// body — not inside nested literals, which own their calls.
	Calls []*ast.CallExpr
	// callees are same-goroutine, same-package control transfers:
	// direct calls, deferred calls, and immediately-invoked or deferred
	// literals. Goroutine launches are NOT edges (see GoSite).
	callees []*FuncNode
}

// Name returns a human-readable label for diagnostics.
func (f *FuncNode) Name() string {
	if f.Decl != nil {
		if f.Decl.Recv != nil && len(f.Decl.Recv.List) == 1 {
			if named := recvNamed(f.Decl.Recv.List[0].Type); named != "" {
				return named + "." + f.Decl.Name.Name
			}
		}
		return f.Decl.Name.Name
	}
	return "func literal"
}

func recvNamed(t ast.Expr) string {
	switch u := t.(type) {
	case *ast.StarExpr:
		return recvNamed(u.X)
	case *ast.Ident:
		return u.Name
	case *ast.IndexExpr: // generic receiver
		return recvNamed(u.X)
	case *ast.IndexListExpr:
		return recvNamed(u.X)
	}
	return ""
}

// Pos returns the node's declaration position.
func (f *FuncNode) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Body returns the node's own body.
func (f *FuncNode) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// GoSite is one `go` statement: the spawning node, the statement, and
// the spawned node when it is resolvable within the package (a literal
// or a declared function/method; nil for cross-package or indirect
// targets).
type GoSite struct {
	In      *FuncNode
	Stmt    *ast.GoStmt
	Spawned *FuncNode
}

// CallGraph is the package-local call graph of one pass.
type CallGraph struct {
	Nodes []*FuncNode
	// GoSites lists every goroutine launch in the package.
	GoSites []GoSite

	declOf map[*types.Func]*FuncNode
	litOf  map[*ast.FuncLit]*FuncNode
}

// NodeFor returns the node of a declared function/method, or nil.
func (g *CallGraph) NodeFor(fn *types.Func) *FuncNode { return g.declOf[fn] }

// BuildCallGraph constructs the package-local call graph for pass.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		declOf: map[*types.Func]*FuncNode{},
		litOf:  map[*ast.FuncLit]*FuncNode{},
	}
	// First pass: register every declaration and literal as a node.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := &FuncNode{Decl: fd}
			g.Nodes = append(g.Nodes, node)
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.declOf[obj] = node
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					ln := &FuncNode{Lit: lit}
					g.Nodes = append(g.Nodes, ln)
					g.litOf[lit] = ln
				}
				return true
			})
		}
	}
	// Second pass: populate each node's own calls and edges.
	for _, node := range g.Nodes {
		g.scan(pass, node)
	}
	return g
}

// scan walks one node's own body (stopping at nested literal
// boundaries), collecting calls, call edges, and goroutine launches.
func (g *CallGraph) scan(pass *Pass, node *FuncNode) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n != node.Lit {
					return false // owned by its own node
				}
			case *ast.GoStmt:
				g.GoSites = append(g.GoSites, GoSite{
					In:      node,
					Stmt:    n,
					Spawned: g.calleeNode(pass, n.Call),
				})
				// The spawned invocation is not a same-goroutine edge,
				// but its Fun/Args are evaluated here; walk them without
				// re-seeing the GoStmt.
				walk(n.Call.Fun)
				for _, a := range n.Call.Args {
					walk(a)
				}
				return false
			case *ast.CallExpr:
				node.Calls = append(node.Calls, n)
				if callee := g.calleeNode(pass, n); callee != nil {
					node.callees = append(node.callees, callee)
				}
			}
			return true
		})
	}
	walk(node.Body())
}

// calleeNode resolves a call to its package-local node: an
// immediately-invoked literal, or a declared function/method of this
// package.
func (g *CallGraph) calleeNode(pass *Pass, call *ast.CallExpr) *FuncNode {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return g.litOf[lit]
	}
	if fn := CalleeOf(pass.TypesInfo, call); fn != nil {
		return g.declOf[fn]
	}
	return nil
}

// Reachable returns the set of nodes reachable from roots over
// same-goroutine call edges (including the roots themselves).
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]bool {
	seen := map[*FuncNode]bool{}
	var visit func(n *FuncNode)
	visit = func(n *FuncNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.callees {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}
