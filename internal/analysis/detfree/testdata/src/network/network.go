// Package network is a minimal stub of the real internal/network
// surface.
package network

type Class uint8

const (
	ClassRequest Class = iota
	ClassReply
)

type Endpoint struct{}

func (e *Endpoint) Send(to, typ int, class Class, data []byte)             {}
func (e *Endpoint) SendAt(to, typ int, class Class, data []byte, at int64) {}
