package a

import (
	"fmt"
	"network"
	"rand"
	"time"
)

type stats struct{ ep *network.Endpoint }

func wallClock() {
	t := time.Now() // want `wall-clock read`
	_ = t
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand function`
}

// seededRand draws from an explicitly seeded source: sound.
func seededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

func mapPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order is unspecified`
		fmt.Println(k, v)
	}
}

func mapSend(s *stats, m map[int]int64) {
	for to, at := range m { // want `map iteration order is unspecified`
		s.ep.SendAt(to, 1, network.ClassRequest, nil, at)
	}
}

// mapFold is an order-insensitive reduction: sound.
func mapFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sortedPrint iterates a pre-sorted key slice: sound.
func sortedPrint(m map[string]int, keys []string) {
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
