// Package rand shadows math/rand for the testdata (detfree matches by
// package base name).
package rand

type Source struct{}

func NewSource(seed int64) *Source { return &Source{} }

type Rand struct{}

func New(src *Source) *Rand { return &Rand{} }

func (r *Rand) Intn(n int) int { return 0 }

func Intn(n int) int                     { return 0 }
func Float64() float64                   { return 0 }
func Shuffle(n int, swap func(i, j int)) {}
