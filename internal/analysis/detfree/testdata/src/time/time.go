// Package time shadows the real stdlib package: detfree matches by
// package base name, so the testdata avoids type-checking GOROOT's time
// package from source.
package time

type Time int64

func Now() Time         { return 0 }
func Since(t Time) Time { return 0 }
func Until(t Time) Time { return 0 }
