// Package fmt shadows the real stdlib package for the testdata.
package fmt

func Println(a ...any)               {}
func Printf(format string, a ...any) {}
