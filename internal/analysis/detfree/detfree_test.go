package detfree_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detfree"
)

func TestDetFree(t *testing.T) {
	analysistest.Run(t, "testdata", detfree.Analyzer, "a")
}
