// Package detfree enforces the repository's determinism contract: the
// simulation's outputs are pinned by golden renderings and byte-identity
// suites (pool-width identity, degenerate-equivalence pins, GC on/off
// content equality), all of which assume a run is a pure function of its
// inputs. Three classic leaks break that silently:
//
//  1. Wall-clock reads (time.Now/Since/Until). All time in this
//     repository is VIRTUAL (sim.Time); a wall-clock read either leaks
//     nondeterminism into results or smuggles real time into the cost
//     model.
//  2. The math/rand global functions (rand.Intn, rand.Shuffle, ...),
//     which are auto-seeded per process. Deterministic draws come from
//     an explicitly seeded source (sim's RNG, or rand.New with a fixed
//     seed) owned by the run.
//  3. Map iteration feeding an output or traffic sink. Go randomizes
//     map order per iteration; a loop over a map that prints, writes,
//     or sends produces a different byte stream every run. Only loops
//     whose bodies reach a sink are flagged — order-insensitive folds
//     (summing counters into a total) are sound and pass.
package detfree

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detfree",
	Doc:  "forbid wall-clock reads, global math/rand, and map-ordered output: the golden and byte-identity suites assume deterministic runs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if analysis.IsPkgFunc(fn, "time", "Now", "Since", "Until") {
		pass.Reportf(call.Pos(),
			"wall-clock read (time.%s) in simulation code: all time here is virtual (sim.Time), and run results must be a pure function of inputs",
			fn.Name())
		return
	}
	if analysis.IsPkgFunc(fn, "rand") && fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewZipf" && fn.Name() != "NewPCG" && fn.Name() != "NewChaCha8" {
		pass.Reportf(call.Pos(),
			"global math/rand function (rand.%s) is auto-seeded and nondeterministic across processes: draw from an explicitly seeded source owned by the run",
			fn.Name())
	}
}

// checkRange flags `for ... range m` over a map whose body reaches an
// output or traffic sink.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var sink *ast.CallExpr
	var sinkName string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case analysis.IsPkgFunc(fn, "fmt", "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf"):
			sink, sinkName = call, "fmt."+fn.Name()
		case isWriterMethod(fn):
			sink, sinkName = call, fn.Name()
		case analysis.IsMethodOn(fn, "network", "Endpoint", "Send", "SendAt", "TrySendAt"):
			sink, sinkName = call, "Endpoint."+fn.Name()
		}
		return sink == nil
	})
	if sink != nil {
		pass.Reportf(rng.For,
			"map iteration order is unspecified and this loop feeds %s: iterate a sorted key slice instead (golden/byte-identity suites assume deterministic output)",
			sinkName)
	}
}

// isWriterMethod matches the io.Writer-style emit methods used by the
// table renderers (bytes.Buffer, strings.Builder, tabwriter, files).
func isWriterMethod(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
