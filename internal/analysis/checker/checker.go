// Package checker runs a set of analyzers over loaded packages and
// formats their findings — the multichecker core shared by cmd/nowlint's
// direct mode and its `go vet -vettool` unit mode.
package checker

import (
	"fmt"
	"go/token"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Finding is one formatted diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run applies every analyzer to every package, routes the raw
// diagnostics through the //nowlint:allow waiver filter, and returns
// the surviving findings sorted by position.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range analysis.ApplyAllows(pkg.Fset, pkg.Files, a.Name, pass.Diagnostics()) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Print writes findings one per line in the standard file:line:col
// format.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
}
