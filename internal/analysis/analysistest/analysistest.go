// Package analysistest runs one analyzer over a testdata source tree
// and checks its diagnostics against `// want "regexp"` expectations —
// the golang.org/x/tools/go/analysis/analysistest convention, rebuilt
// on this module's dependency-free loader.
//
// Layout convention: <analyzer>/testdata/src/<pkg>/... — each <pkg> is
// importable by its bare directory name. Every line that should be
// flagged carries a trailing `// want "re"` comment whose regexp must
// match the diagnostic message reported on that line; lines without a
// want comment must report nothing. Diagnostics are routed through the
// same //nowlint:allow filter as the CLI, so testdata can (and does)
// exercise the waiver semantics too.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile(`// want (` + "`[^`]*`" + `|"(?:[^"\\]|\\.)*")`)

// Run loads each named package from testdataDir/src, applies the
// analyzer, and reports any mismatch between diagnostics and the
// `// want` expectations as test errors.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := load.NewLoader("", testdataDir+"/src")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, pkgPath := range pkgs {
		if _, err := l.Import(pkgPath); err != nil {
			t.Fatalf("load %s: %v", pkgPath, err)
		}
	}
	for _, pkgPath := range pkgs {
		pkg := mustPkg(t, l, pkgPath)
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %s: %v", a.Name, pkgPath, err)
		}
		diags := analysis.ApplyAllows(pkg.Fset, pkg.Files, a.Name, pass.Diagnostics())
		check(t, a.Name, pkg, diags)
	}
}

func mustPkg(t *testing.T, l *load.Loader, path string) *load.Package {
	t.Helper()
	pkgs, err := l.Load(path)
	if err != nil || len(pkgs) != 1 {
		t.Fatalf("load %s: %v", path, err)
	}
	return pkgs[0]
}

type key struct {
	file string
	line int
}

func check(t *testing.T, name string, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()

	// Gather expectations per line.
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					lit := m[1]
					var pat string
					if strings.HasPrefix(lit, "`") {
						pat = strings.Trim(lit, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("bad want literal %s: %v", lit, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", pat, err)
					}
					p := pkg.Fset.Position(c.Slash)
					k := key{p.Filename, p.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	// Match diagnostics against expectations.
	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, p.Filename, p.Line, d.Message)
		}
	}
	var missing []string
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re.String()))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("%s: %s", name, m)
	}
}
