package a

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

type S struct {
	a A
	b B
}

// lockAB and lockBA together form the classic AB/BA cycle: both edges
// are reported at their acquisition sites.
func (s *S) lockAB() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock() // want `lock acquisition cycle`
	s.b.mu.Unlock()
}

func (s *S) lockBA() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	s.a.mu.Lock() // want `lock acquisition cycle`
	s.a.mu.Unlock()
}

// outer adds the same A→B edge through a callee: also on the cycle.
func (s *S) outer() {
	s.a.mu.Lock()
	s.takeB() // want `lock acquisition cycle`
	s.a.mu.Unlock()
}

func (s *S) takeB() {
	s.b.mu.Lock()
	s.b.mu.Unlock()
}

// tryUnder never blocks on b while holding a: TryLock adds no in-edge.
func (s *S) tryUnder() {
	s.a.mu.Lock()
	if s.b.mu.TryLock() {
		s.b.mu.Unlock()
	}
	s.a.mu.Unlock()
}

// handoffLocked releases the caller-held a.mu before taking b.mu, so
// handoffCaller creates no A→B edge (the ...Locked handoff convention).
func (s *S) handoffLocked() {
	s.a.mu.Unlock()
	s.b.mu.Lock()
	s.b.mu.Unlock()
}

func (s *S) handoffCaller() {
	s.a.mu.Lock()
	s.handoffLocked()
}

// N.link takes another instance's mu while holding its own: a
// same-class self-edge — two nodes doing this to each other deadlock.
type N struct{ mu sync.Mutex }

func (n *N) link(peer *N) {
	n.mu.Lock()
	peer.mu.Lock() // want `lock acquisition cycle`
	peer.mu.Unlock()
	n.mu.Unlock()
}
