package b

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

type S struct {
	a A
	b B
}

// Consistent order everywhere (a before b): acyclic, nothing reported.
func (s *S) one() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
}

func (s *S) two() {
	s.a.mu.Lock()
	s.b.mu.Lock()
	s.b.mu.Unlock()
	s.a.mu.Unlock()
}
