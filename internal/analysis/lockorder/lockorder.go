// Package lockorder builds the package-local static mutex acquisition
// graph and flags cycles — the classic AB/BA deadlock shape — across
// the protocol's named mutexes (Node.mu, Node.fetchMu, the System
// mutexes, the coordinator and engine locks).
//
// A mutex is identified by its owning named type and field name
// (Node.mu), or by package-level variable for free-standing locks;
// function-local mutexes are ignored (they cannot participate in a
// cross-function order). The abstraction deliberately identifies all
// INSTANCES of a field: the protocol's deadlock-freedom arguments are
// stated over lock CLASSES ("never take another node's mu while holding
// ours" is exactly a self-edge on Node.mu), so a same-class self-edge
// is reported too.
//
// Each function is summarized as an ordered stream of lock / try-lock /
// unlock / call events; edges come from replaying that stream: while A
// is held, a blocking acquisition of B adds edge A→B. TryLock acquires
// without blocking, so it adds no in-edge — exactly the protocol's
// reason for using it on the GC purge gate — but what runs under a
// successful TryLock still produces out-edges. Deferred unlocks hold to
// function end. A branch that exits the function (return/panic/break)
// sequences normally within itself, but the fallthrough path resumes
// from the pre-branch state — an early-return fast path neither hides
// its own acquisitions nor perturbs the main-line ordering.
//
// Calls are resolved by replaying the callee's stream against each
// caller-held lock class: a callee that releases the caller's lock
// before acquiring others (faultInLocked and the GC purge both drop
// n.mu before taking fetchMu — the discipline Node's field comments
// document) exposes no edge from it, while locks taken in a window
// where the caller's class is (re-)held do; the ...Locked handoff
// helpers that return with the caller's mutex released are modeled the
// same way. Goroutine launches start with nothing held and are not
// replayed into the spawning context.
//
// Every edge that participates in a cycle is reported at its
// acquisition site. The analysis is package-local and approximate in
// the usual static ways (no aliasing through function values, linear
// replay of branches, function literals replayed at their definition
// point); a //nowlint:allow lockorder directive with a justification
// records why a flagged edge cannot deadlock in practice.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "static mutex acquisition graph must be acyclic (AB/BA deadlock freedom over the protocol's named mutexes)",
	Run:  run,
}

// lockKey names one mutex class: "Type.field" or "pkg.var".
type lockKey string

type edge struct {
	from, to lockKey
	pos      token.Pos
	via      string
}

type funcSummary struct {
	decl  *ast.FuncDecl
	sites []site // ordered event stream
}

// site is one ordered event inside a function body.
type site struct {
	key  lockKey // lock/trylock/unlock events
	fn   *types.Func
	pos  token.Pos
	kind siteKind
	// spawned marks a call launched with `go`: the callee runs on a new
	// goroutine holding nothing, so it is never replayed into this
	// stream's held state.
	spawned bool
}

type siteKind int

const (
	siteLock siteKind = iota
	siteTryLock
	siteUnlock
	siteCall
	// sitePush/sitePop bracket a branch that exits the function
	// (return/panic/break): inside the bracket events sequence normally
	// — an unlock there really is released for whatever follows it on
	// that path — but at the pop the pre-branch state is restored, since
	// the fallthrough path never executed any of it.
	sitePush
	sitePop
)

func run(pass *analysis.Pass) error {
	sums := map[*types.Func]*funcSummary{}
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &funcSummary{decl: fd}
			w := &walker{pass: pass, sum: s}
			w.stmts(fd.Body.List)
			sums[obj] = s
			order = append(order, obj)
		}
	}

	ev := &evaluator{sums: sums, memo: map[evalKey]evalRes{}}

	// Edge generation: replay every function's stream from an empty held
	// set, applying callee effects at call sites.
	var edges []edge
	seen := map[string]bool{}
	add := func(e edge) {
		k := fmt.Sprintf("%s|%s|%d", e.from, e.to, e.pos)
		if !seen[k] {
			seen[k] = true
			edges = append(edges, e)
		}
	}
	for _, fn := range order {
		var held []lockKey
		var saved [][]lockKey
		for _, st := range sums[fn].sites {
			switch st.kind {
			case sitePush:
				saved = append(saved, copyHeld(held))
			case sitePop:
				held, saved = saved[len(saved)-1], saved[:len(saved)-1]
			case siteLock:
				for _, h := range held {
					add(edge{from: h, to: st.key, pos: st.pos,
						via: fmt.Sprintf("%s acquired while %s is held", st.key, h)})
				}
				held = appendKey(held, st.key)
			case siteTryLock:
				held = appendKey(held, st.key)
			case siteUnlock:
				held = removeKey(held, st.key)
			case siteCall:
				if st.spawned {
					continue
				}
				callee := sums[st.fn]
				if callee == nil {
					continue
				}
				for _, h := range copyHeld(held) {
					r := ev.eval(callee, h, true, nil)
					for k := range r.exposed {
						add(edge{from: h, to: k, pos: st.pos,
							via: fmt.Sprintf("call to %s (which acquires %s) while %s is held", st.fn.Name(), k, h)})
					}
					if !r.finalHeld {
						held = removeKey(held, h)
					}
				}
			}
		}
	}

	// Cycle detection: report every edge whose head can reach its tail.
	adj := map[lockKey]map[lockKey]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[lockKey]bool{}
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to lockKey) bool {
		if from == to {
			return true
		}
		visited := map[lockKey]bool{from: true}
		stack := []lockKey{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for m := range adj[n] {
				if m == to {
					return true
				}
				if !visited[m] {
					visited[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	for _, e := range edges {
		if reaches(e.to, e.from) {
			pass.Reportf(e.pos,
				"lock acquisition cycle: %s, and %s is (transitively) acquired while %s is held elsewhere — an AB/BA interleaving deadlocks",
				e.via, e.from, e.to)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Callee replay.
// ---------------------------------------------------------------------

type evalKey struct {
	f         *funcSummary
	h         lockKey
	entryHeld bool
}

type evalRes struct {
	exposed   map[lockKey]bool
	finalHeld bool
}

type evaluator struct {
	sums map[*types.Func]*funcSummary
	memo map[evalKey]evalRes
}

// eval replays f's event stream under the assumption that the calling
// goroutine does (entryHeld) or does not hold lock class h at the call,
// returning the set of lock classes f may block on while h is held and
// whether h is held when f returns. Exposure is only collected in
// windows where h is held; edges f creates entirely on its own (taking
// h itself, then others) come from f's own replay, not from here.
func (ev *evaluator) eval(f *funcSummary, h lockKey, entryHeld bool, stack []*funcSummary) evalRes {
	k := evalKey{f, h, entryHeld}
	if r, ok := ev.memo[k]; ok {
		return r
	}
	for _, g := range stack {
		if g == f { // recursion: assume no state change
			return evalRes{finalHeld: entryHeld}
		}
	}
	stack = append(stack, f)

	heldH := entryHeld
	var saved []bool
	exposed := map[lockKey]bool{}
	for _, st := range f.sites {
		switch st.kind {
		case sitePush:
			saved = append(saved, heldH)
		case sitePop:
			heldH, saved = saved[len(saved)-1], saved[:len(saved)-1]
		case siteLock:
			if st.key == h {
				if heldH {
					exposed[h] = true // another instance of the class
				}
				heldH = true
			} else if heldH {
				exposed[st.key] = true
			}
		case siteTryLock:
			if st.key == h {
				heldH = true
			}
		case siteUnlock:
			// Both a release of the caller's lock and a self-matched
			// unlock leave the class unheld by this goroutine.
			if st.key == h {
				heldH = false
			}
		case siteCall:
			if st.spawned {
				continue
			}
			g := ev.sums[st.fn]
			if g == nil {
				continue
			}
			r := ev.eval(g, h, heldH, stack)
			if heldH {
				for x := range r.exposed {
					exposed[x] = true
				}
			}
			heldH = r.finalHeld
		}
	}
	res := evalRes{exposed: exposed, finalHeld: heldH}
	ev.memo[k] = res
	return res
}

// ---------------------------------------------------------------------
// Event-stream construction.
// ---------------------------------------------------------------------

type walker struct {
	pass *analysis.Pass
	sum  *funcSummary
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// branch walks a branch body and, if the branch terminates
// (return/panic/break/continue), brackets its events with push/pop so
// its state effects sequence normally inside but do not leak onto the
// fallthrough path.
func (w *walker) branch(body ast.Stmt) {
	start := len(w.sum.sites)
	w.stmt(body)
	if terminates(body) {
		w.bracket(start)
	}
}

func (w *walker) branchList(list []ast.Stmt) {
	start := len(w.sum.sites)
	w.stmts(list)
	if len(list) > 0 && terminates(list[len(list)-1]) {
		w.bracket(start)
	}
}

// bracket wraps sites[start:] in a sitePush/sitePop pair.
func (w *walker) bracket(start int) {
	w.sum.sites = append(w.sum.sites, site{})
	copy(w.sum.sites[start+1:], w.sum.sites[start:])
	w.sum.sites[start] = site{kind: sitePush}
	w.sum.sites = append(w.sum.sites, site{kind: sitePop})
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held for the remainder of
		// the walk (it runs at exit): no event. A deferred literal also
		// runs at exit: skipped. A deferred lock holds from here on.
		if key, op, ok := w.mutexOp(s.Call); ok {
			if op == "Lock" || op == "RLock" {
				w.emit(site{key: key, kind: siteLock, pos: s.Call.Pos()})
			}
			return
		}
		if _, isLit := ast.Unparen(s.Call.Fun).(*ast.FuncLit); isLit {
			return
		}
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		w.call(s.Call, false)
	case *ast.GoStmt:
		// Arguments are evaluated here; the invocation runs on a new
		// goroutine with nothing held. An anonymous body is analyzed as
		// nothing (it has no declared summary to replay); a named callee
		// is recorded as spawned so replays skip it.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		if _, isLit := ast.Unparen(s.Call.Fun).(*ast.FuncLit); !isLit {
			w.call(s.Call, true)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.branch(s.Body)
		if s.Else != nil {
			w.branch(s.Else)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branchList(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branchList(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branchList(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return terminates(s.List[len(s.List)-1])
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// expr records the events of an expression, including function literals
// inline at their definition point (the purge closures run synchronously
// under the callee that receives them; goroutine literals are excluded
// by the GoStmt case above).
func (w *walker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List)
			return false
		case *ast.CallExpr:
			w.call(n, false)
			return true
		}
		return true
	})
}

// call records one call expression's event (arguments are walked by the
// caller's traversal, not here).
func (w *walker) call(call *ast.CallExpr, spawned bool) {
	if key, op, ok := w.mutexOp(call); ok {
		switch op {
		case "Lock", "RLock":
			w.emit(site{key: key, kind: siteLock, pos: call.Pos()})
		case "TryLock", "TryRLock":
			// Never blocks: no in-edge, but a success holds the lock, so
			// later acquisitions under it still produce edges.
			w.emit(site{key: key, kind: siteTryLock, pos: call.Pos()})
		case "Unlock", "RUnlock":
			w.emit(site{key: key, kind: siteUnlock, pos: call.Pos()})
		}
		return
	}
	if fn := analysis.CalleeOf(w.pass.TypesInfo, call); fn != nil && fn.Pkg() == w.pass.Pkg {
		w.emit(site{fn: fn, kind: siteCall, pos: call.Pos(), spawned: spawned})
	}
}

func (w *walker) emit(s site) { w.sum.sites = append(w.sum.sites, s) }

// mutexOp recognizes X.Lock/Unlock/RLock/RUnlock/TryLock/TryRLock on a
// sync.Mutex or sync.RWMutex and resolves X to a lock key.
func (w *walker) mutexOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	fn := analysis.CalleeOf(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := analysis.NamedOf(fn.Type().(*types.Signature).Recv().Type())
	if recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	key, ok := w.keyOf(sel.X)
	if !ok {
		return "", "", false
	}
	return key, op, true
}

// keyOf names the mutex expression: Type.field for struct fields
// (however deep the access path), package-level variables by name.
// Local mutexes return ok=false and are ignored.
func (w *walker) keyOf(x ast.Expr) (lockKey, bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel, ok := w.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if named := analysis.NamedOf(sel.Recv()); named != nil {
				return lockKey(named.Obj().Name() + "." + x.Sel.Name), true
			}
		}
		if obj, ok := w.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && isPkgLevel(obj) {
			return lockKey(obj.Pkg().Name() + "." + obj.Name()), true
		}
	case *ast.Ident:
		if obj, ok := w.pass.TypesInfo.Uses[x].(*types.Var); ok && isPkgLevel(obj) {
			return lockKey(obj.Pkg().Name() + "." + obj.Name()), true
		}
	}
	return "", false
}

func isPkgLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func copyHeld(h []lockKey) []lockKey { return append([]lockKey(nil), h...) }

func containsKey(h []lockKey, k lockKey) bool {
	for _, x := range h {
		if x == k {
			return true
		}
	}
	return false
}

func appendKey(h []lockKey, k lockKey) []lockKey {
	if containsKey(h, k) {
		return h
	}
	return append(h, k)
}

func removeKey(h []lockKey, k lockKey) []lockKey {
	var out []lockKey
	for _, x := range h {
		if x != k {
			out = append(out, x)
		}
	}
	return out
}
