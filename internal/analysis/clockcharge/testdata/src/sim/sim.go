// Package sim is a minimal stub of the real internal/sim clock surface.
package sim

type Time int64

type Clock struct{ t Time }

func (c *Clock) Now() Time      { return c.t }
func (c *Clock) Advance(d Time) { c.t += d }
