// Package network is a minimal stub of the real internal/network
// surface with sim.Time send stamps.
package network

import "sim"

type Class uint8

const (
	ClassRequest Class = iota
	ClassReply
)

type Message struct {
	From   int
	Arrive sim.Time
}

type Endpoint struct{}

func (e *Endpoint) Send(to, typ int, class Class, data []byte)                {}
func (e *Endpoint) SendAt(to, typ int, class Class, data []byte, at sim.Time) {}
func (e *Endpoint) TrySendAt(to, typ int, class Class, data []byte, at sim.Time) bool {
	return true
}
