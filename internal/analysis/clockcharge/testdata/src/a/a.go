package a

import (
	"network"
	"sim"
)

type Node struct {
	ep    *network.Endpoint
	clock sim.Clock
}

// Client is a per-thread handle: client-like because of the clk field.
type Client struct {
	n   *Node
	clk *sim.Clock
}

func (c *Client) Now() sim.Time { return c.clk.Now() }

// good stamps its send at the calling client's clock.
func (c *Client) good(to int) {
	c.clk.Advance(10)
	c.n.ep.SendAt(to, 1, network.ClassRequest, nil, c.clk.Now())
}

// goodIndirect derives the send time through a local.
func (c *Client) goodIndirect(to int) {
	at := c.Now() + 5
	c.n.ep.SendAt(to, 1, network.ClassRequest, nil, at)
}

func (c *Client) badSend(to int) {
	c.n.ep.Send(to, 1, network.ClassReply, nil) // want `Endpoint.Send stamps the message at the node's clock`
}

func (c *Client) badStamp(to int) {
	c.n.ep.SendAt(to, 1, network.ClassRequest, nil, 0) // want `send time does not derive from the calling client's clock`
}

func (c *Client) badClock() sim.Time {
	return c.n.clock.Now() // want `reads a clock that is not its own`
}

// Node methods are NOT client-like: interrupt service legitimately
// stamps replies at arrival plus service time off the node clock.
func (n *Node) handle(m network.Message) {
	n.clock.Advance(3)
	n.ep.SendAt(m.From, 2, network.ClassReply, nil, m.Arrive+3)
}
