// Package clockcharge enforces the multi-client clock seam: every
// client-side protocol operation must charge — and stamp its sends at —
// the CALLING client's virtual clock, never the shared node clock.
//
// On a multi-client (SMP-island) node several application threads share
// one dsm.Node; each carries its own sim.Clock inside a client handle
// (dsm.Client.clk). A send stamped from the node's clock (which only
// protocol-server interrupt service advances) goes out at a stale
// virtual time and silently corrupts the cost model: the paper's tables
// are computed from exactly these timestamps. The same seam is what the
// hybrid backend's degenerate-equivalence pins certify, so a single
// mis-charged site shows up as a byte-identity diff long after the
// change that introduced it.
//
// Mechanization, applied to every method of a "client-like" type (a
// struct with a `clk *sim.Clock` field — dsm.Client and testdata
// stubs):
//
//  1. Endpoint.Send is forbidden outright: it stamps at the endpoint's
//     clock, which is the NODE's clock.
//  2. Endpoint.SendAt/TrySendAt must take a send time derived from the
//     receiver's own clock (syntactically: the time argument, or a
//     local variable assigned from an expression, mentioning recv.clk
//     or recv.Now()).
//  3. Reading any OTHER sim.Clock-valued field (the node's clock, a
//     peer's clock) from client-method context is flagged: whatever it
//     feeds, it is not the calling client's time.
package clockcharge

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "clockcharge",
	Doc:  "client-side ops must charge and stamp the calling client's clock, not the shared node clock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := fd.Recv.List[0]
			if len(recv.Names) != 1 {
				continue
			}
			recvObj := pass.TypesInfo.Defs[recv.Names[0]]
			if recvObj == nil || !isClientLike(recvObj.Type()) {
				continue
			}
			checkMethod(pass, fd, recvObj)
		}
	}
	return nil
}

// isClientLike reports whether t (or *t) is a struct with a
// `clk *sim.Clock` field — the shape of a per-thread client handle.
func isClientLike(t types.Type) bool {
	named := analysis.NamedOf(t)
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "clk" && isSimClock(f.Type()) {
			return true
		}
	}
	return false
}

func isSimClock(t types.Type) bool {
	n := analysis.NamedOf(t)
	return n != nil && n.Obj().Name() == "Clock" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "sim"
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, recvObj types.Object) {
	// Collect local variables tainted by the receiver's clock: idents
	// assigned (anywhere in the method) from an expression that mentions
	// recv.clk or recv.Now(). One level of indirection covers the
	// `t := c.clk.Now(); ...; send(..., t)` idiom without a full
	// dataflow analysis.
	tainted := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !mentionsRecvClock(pass, as.Rhs[i], recvObj, tainted) {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeOf(pass.TypesInfo, n)
			if analysis.IsMethodOn(fn, "network", "Endpoint", "Send") {
				pass.Reportf(n.Pos(),
					"Endpoint.Send stamps the message at the node's clock; a client-side op must send at the calling client's time (SendAt with %s.clk)",
					recvObj.Name())
				return true
			}
			if analysis.IsMethodOn(fn, "network", "Endpoint", "SendAt", "TrySendAt") && len(n.Args) > 0 {
				at := n.Args[len(n.Args)-1]
				if !mentionsRecvClock(pass, at, recvObj, tainted) {
					pass.Reportf(at.Pos(),
						"send time does not derive from the calling client's clock (%s.clk); sending at another clock's time corrupts the per-thread cost model",
						recvObj.Name())
				}
			}
		case *ast.SelectorExpr:
			// Rule 3: a sim.Clock-valued FIELD that is not recv.clk.
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal && isSimClock(sel.Type()) {
				if !isRecvClk(pass, n, recvObj) {
					pass.Reportf(n.Pos(),
						"client method reads a clock that is not its own (%s.clk): client-side ops charge the calling client, the node clock advances only under protocol-server interrupt service",
						recvObj.Name())
				}
				return false
			}
		}
		return true
	})
}

// isRecvClk reports whether sel is exactly `<recv>.clk`.
func isRecvClk(pass *analysis.Pass, sel *ast.SelectorExpr, recvObj types.Object) bool {
	if sel.Sel.Name != "clk" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == recvObj
}

// mentionsRecvClock reports whether expr mentions the receiver's clock:
// recv.clk, recv.Now(), or a tainted local.
func mentionsRecvClock(pass *analysis.Pass, expr ast.Expr, recvObj types.Object, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isRecvClk(pass, n, recvObj) {
				found = true
				return false
			}
			// recv.Now() — the client's own time accessor.
			if n.Sel.Name == "Now" {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recvObj {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
