package clockcharge_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/clockcharge"
)

func TestClockCharge(t *testing.T) {
	analysistest.Run(t, "testdata", clockcharge.Analyzer, "a")
}
