// Package load parses and type-checks packages for the nowlint
// analyzers without any dependency outside the standard library.
//
// Packages inside the module (and inside an analysistest testdata/src
// root) are type-checked from source with full syntax retained; their
// imports resolve recursively through the same loader. Standard-library
// imports are delegated to go/importer's source importer, which
// type-checks GOROOT source directly — no export data, no network, no
// `go list` subprocess — so the loader behaves identically under `make
// lint`, in unit tests, and in offline CI.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one fully loaded source package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and caches packages. It implements types.Importer so
// package type-checking can recurse through it.
type Loader struct {
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	srcRoots   []string // analysistest testdata roots, searched first

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at moduleDir (which must contain
// go.mod; pass "" for a rootless loader that only resolves srcRoots and
// the standard library). srcRoots are extra directories whose immediate
// subdirectories are importable by relative path — the analysistest
// testdata/src convention.
func NewLoader(moduleDir string, srcRoots ...string) (*Loader, error) {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:     fset,
		srcRoots: srcRoots,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		loading:  map[string]bool{},
	}
	if moduleDir != "" {
		abs, err := filepath.Abs(moduleDir)
		if err != nil {
			return nil, err
		}
		l.moduleDir = abs
		mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		for _, line := range strings.Split(string(mod), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
				l.modulePath = strings.TrimSpace(rest)
				break
			}
		}
		if l.modulePath == "" {
			return nil, fmt.Errorf("load: no module line in %s/go.mod", abs)
		}
	}
	return l, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirFor resolves an import path to a source directory owned by this
// loader (srcRoots first, then the module), or ok=false for paths that
// belong to the standard library importer.
func (l *Loader) dirFor(path string) (string, bool) {
	for _, root := range l.srcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.moduleDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the non-test files of one directory.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", path, dir)
	}

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("load %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Load resolves patterns to loaded packages. Supported patterns:
//
//	./...            every package under the module root
//	./dir/...        every package under dir
//	./dir            one directory
//	example.com/x    a full import path resolvable by this loader
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir := l.moduleDir
			prefix := l.modulePath
			if base != "." && base != "" {
				rel := strings.TrimPrefix(base, "./")
				dir = filepath.Join(l.moduleDir, filepath.FromSlash(rel))
				prefix = l.modulePath + "/" + rel
			}
			sub, err := walkPackages(dir, prefix)
			if err != nil {
				return nil, err
			}
			for _, p := range sub {
				add(p)
			}
		case strings.HasPrefix(pat, "./"), pat == ".":
			rel := strings.TrimPrefix(pat, "./")
			p := l.modulePath
			if rel != "" && rel != "." {
				p += "/" + filepath.ToSlash(rel)
			}
			add(p)
		default:
			add(pat)
		}
	}
	var out []*Package
	for _, p := range paths {
		if _, err := l.Import(p); err != nil {
			return nil, err
		}
		pkg, ok := l.pkgs[p]
		if !ok {
			return nil, fmt.Errorf("load: %s resolved outside the module", p)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// walkPackages lists the import paths of every package under dir.
func walkPackages(dir, prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		p := prefix
		if rel != "." {
			p = prefix + "/" + filepath.ToSlash(rel)
		}
		out = append(out, p)
		return nil
	})
	sort.Strings(out)
	return out, err
}
