package servernoblock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/servernoblock"
)

func TestServerNoBlock(t *testing.T) {
	analysistest.Run(t, "testdata", servernoblock.Analyzer, "a")
}
