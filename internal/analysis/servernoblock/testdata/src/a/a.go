package a

import "network"

type node struct {
	ep *network.Endpoint
}

// serve drains the request queue: it and everything it calls run in
// protocol-server context.
func (n *node) serve() {
	for {
		m := n.ep.RecvRaw(network.ClassRequest)
		switch m.Type {
		case 1:
			n.handleBad(m)
		case 2:
			n.handleReply(m)
		case 3:
			n.handleTry(m)
		case 4:
			n.handleForward(m)
		case 5:
			n.badWaiver(m)
		}
	}
}

func (n *node) handleBad(m network.Message) {
	n.ep.SendAt(m.From, 9, network.ClassRequest, nil, m.Arrive) // want `blocking request-class SendAt`
}

func (n *node) handleReply(m network.Message) {
	n.ep.SendAt(m.From, 9, network.ClassReply, nil, m.Arrive) // reply-class: sound
}

func (n *node) handleTry(m network.Message) {
	for !n.ep.TrySendAt(m.From, 9, network.ClassRequest, nil, m.Arrive) { // non-blocking: sound
	}
}

func (n *node) handleForward(m network.Message) {
	//nowlint:allow servernoblock -- bounded: at most one forward in flight per node, far below queue depth
	n.ep.SendAt(m.From, 9, network.ClassRequest, nil, m.Arrive)
}

func (n *node) badWaiver(m network.Message) {
	//nowlint:allow servernoblock -- because
	n.ep.SendAt(m.From, 9, network.ClassRequest, nil, m.Arrive) // want `needs a substantive justification`
}

// appSide never consumes request-class traffic: its blocking
// request-class send is application context and sound.
func (n *node) appSide() {
	n.ep.Send(0, 1, network.ClassRequest, nil)
	n.ep.Recv(network.ClassReply)
}

// A goroutine spawned from server context is a NEW goroutine: it can
// block without stalling the drain loop, so no finding.
func (n *node) spawnFromServer() {
	_ = n.ep.RecvRaw(network.ClassRequest)
	go func() {
		n.ep.SendAt(0, 1, network.ClassRequest, nil, 0)
	}()
}
