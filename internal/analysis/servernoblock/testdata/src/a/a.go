package a

import "network"

type node struct {
	ep *network.Endpoint
}

// serve drains the request queue: it and everything it calls run in
// protocol-server context.
func (n *node) serve() {
	for {
		m := n.ep.RecvRaw(network.ClassRequest)
		switch m.Type {
		case 1:
			n.handleBad(m)
		case 2:
			n.handleReply(m)
		case 3:
			n.handleTry(m)
		case 4:
			n.handleForward(m)
		case 5:
			n.badWaiver(m)
		case 6:
			n.dispatchBatch(m)
		case 7:
			n.handleFrameBad(m)
		case 8:
			n.handleFrameTry(m)
		}
	}
}

// dispatchBatch demuxes a coalesced frame's sub-messages back through
// the per-type handlers: the fan-out stays in server context, so a
// blocking request-class send inside a handler reached only through the
// demux is still flagged.
func (n *node) dispatchBatch(m network.Message) {
	for i := 0; i < len(m.Data); i++ {
		sub := network.Message{From: m.From, Type: int(m.Data[i]), Arrive: m.Arrive}
		switch sub.Type {
		case 1:
			n.handleBatchedBad(sub)
		case 2:
			n.handleBatchedReply(sub)
		}
	}
}

func (n *node) handleBatchedBad(m network.Message) {
	n.ep.SendAt(m.From, 9, network.ClassRequest, nil, m.Arrive) // want `blocking request-class SendAt`
}

func (n *node) handleBatchedReply(m network.Message) {
	n.ep.SendAt(m.From, 9, network.ClassReply, nil, m.Arrive) // reply-class: sound
}

// SendFrameAt is the blocking coalesced-frame send: request-class from
// server context is the same forbidden cycle as SendAt.
func (n *node) handleFrameBad(m network.Message) {
	n.ep.SendFrameAt(m.From, 25, network.ClassRequest, nil, nil, m.Arrive) // want `blocking request-class SendFrameAt`
}

func (n *node) handleFrameTry(m network.Message) {
	for !n.ep.TrySendFrameAt(m.From, 25, network.ClassRequest, nil, nil, m.Arrive) { // non-blocking: sound
	}
}

func (n *node) handleBad(m network.Message) {
	n.ep.SendAt(m.From, 9, network.ClassRequest, nil, m.Arrive) // want `blocking request-class SendAt`
}

func (n *node) handleReply(m network.Message) {
	n.ep.SendAt(m.From, 9, network.ClassReply, nil, m.Arrive) // reply-class: sound
}

func (n *node) handleTry(m network.Message) {
	for !n.ep.TrySendAt(m.From, 9, network.ClassRequest, nil, m.Arrive) { // non-blocking: sound
	}
}

func (n *node) handleForward(m network.Message) {
	//nowlint:allow servernoblock -- bounded: at most one forward in flight per node, far below queue depth
	n.ep.SendAt(m.From, 9, network.ClassRequest, nil, m.Arrive)
}

func (n *node) badWaiver(m network.Message) {
	//nowlint:allow servernoblock -- because
	n.ep.SendAt(m.From, 9, network.ClassRequest, nil, m.Arrive) // want `needs a substantive justification`
}

// appSide never consumes request-class traffic: its blocking
// request-class send is application context and sound.
func (n *node) appSide() {
	n.ep.Send(0, 1, network.ClassRequest, nil)
	n.ep.Recv(network.ClassReply)
}

// A goroutine spawned from server context is a NEW goroutine: it can
// block without stalling the drain loop, so no finding.
func (n *node) spawnFromServer() {
	_ = n.ep.RecvRaw(network.ClassRequest)
	go func() {
		n.ep.SendAt(0, 1, network.ClassRequest, nil, 0)
	}()
}
