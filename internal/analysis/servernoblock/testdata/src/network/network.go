// Package network is a minimal stub of the real internal/network
// surface: the analyzers match methods by package base name, so this
// stub stands in for the real Endpoint in analysistest packages.
package network

type Class uint8

const (
	ClassRequest Class = iota
	ClassReply
)

type Message struct {
	From   int
	Type   int
	Data   []byte
	Arrive int64
}

type FramePart struct {
	Type  int
	Bytes int
}

type Endpoint struct{}

func (e *Endpoint) Send(to, typ int, class Class, data []byte)             {}
func (e *Endpoint) SendAt(to, typ int, class Class, data []byte, at int64) {}
func (e *Endpoint) TrySendAt(to, typ int, class Class, data []byte, at int64) bool {
	return true
}
func (e *Endpoint) SendFrameAt(to, typ int, class Class, data []byte, parts []FramePart, at int64) {
}
func (e *Endpoint) TrySendFrameAt(to, typ int, class Class, data []byte, parts []FramePart, at int64) bool {
	return true
}
func (e *Endpoint) Recv(class Class) Message               { return Message{} }
func (e *Endpoint) RecvRaw(class Class) Message            { return Message{} }
func (e *Endpoint) TryRecvRaw(class Class) (Message, bool) { return Message{}, false }
func (e *Endpoint) Chan(class Class) <-chan Message        { return nil }
