// Package servernoblock enforces the bounded-queue no-deadlock argument
// for protocol servers (network.TrySendAt's contract): a protocol-server
// goroutine must never issue a BLOCKING request-class send.
//
// The argument: every endpoint's request queue is drained by a dedicated
// server goroutine that never blocks, so bounded queues cannot deadlock.
// A server that blocks on a peer's full request queue while that peer's
// server blocks on ours is exactly the forbidden cycle — observed live
// when the acquire-GC consensus reverse delta was sent blocking from
// server context and two servers mutually filled each other's inboxes,
// stalling every lock grant in the system.
//
// Mechanization: the analyzer roots "server context" at every function
// that consumes request-class traffic (a call to Endpoint.RecvRaw,
// TryRecvRaw, or Chan with network.ClassRequest), closes it over the
// package-local call graph (goroutine launches start a NEW context and
// are not followed), and flags every Endpoint.Send/SendAt with a
// constant network.ClassRequest class argument inside that closure.
// SendFrameAt (the blocking coalesced-frame send) is flagged the same
// way; reply-class sends, TrySendAt, and TrySendFrameAt are sound and
// pass. The batch demux path (dispatch fanning a msgBatch envelope's
// sub-messages back through the per-type handlers) stays inside server
// context, so handlers reached only via the demux are still covered.
//
// A site with its own boundedness argument (e.g. lock-acquire forwards:
// at most one outstanding acquire per node, so the forwards in flight
// can never approach the queue depth) may carry a justified
// //nowlint:allow servernoblock directive stating that argument.
package servernoblock

import (
	"go/ast"

	"repro/internal/analysis"
)

// Class constant values mirrored from internal/network (and its
// testdata stubs): ClassRequest is the zero class.
const classRequest = 0

var Analyzer = &analysis.Analyzer{
	Name: "servernoblock",
	Doc:  "protocol servers must never issue a blocking request-class send (bounded-queue no-deadlock argument)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	// Roots: functions that consume request-class traffic.
	var roots []*analysis.FuncNode
	for _, node := range g.Nodes {
		for _, call := range node.Calls {
			fn := analysis.CalleeOf(pass.TypesInfo, call)
			if !analysis.IsMethodOn(fn, "network", "Endpoint", "RecvRaw", "TryRecvRaw", "Chan") {
				continue
			}
			if classOf(pass, call) == classRequest {
				roots = append(roots, node)
				break
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	for node := range g.Reachable(roots) {
		for _, call := range node.Calls {
			fn := analysis.CalleeOf(pass.TypesInfo, call)
			if !analysis.IsMethodOn(fn, "network", "Endpoint", "Send", "SendAt", "SendFrameAt") {
				continue
			}
			if classOf(pass, call) != classRequest {
				continue
			}
			pass.Reportf(call.Pos(),
				"blocking request-class %s reachable from protocol-server context: a server blocking on a peer's full request queue can deadlock the bounded-queue protocol; use TrySendAt (drop-and-retry) or a reply-class send",
				fn.Name())
		}
	}
	return nil
}

// classOf extracts the constant network.Class argument of an endpoint
// call, or -1 when it is absent or not constant (conservatively treated
// as not-request so wrappers that thread a variable class through are
// not flagged at every call site; the wrapper's own sends are still
// analyzed).
func classOf(pass *analysis.Pass, call *ast.CallExpr) int64 {
	arg := analysis.ArgOfNamedType(pass.TypesInfo, call, "network", "Class")
	if arg == nil {
		return -1
	}
	v, ok := analysis.IntConst(pass.TypesInfo, arg)
	if !ok {
		return -1
	}
	return v
}
