// Package analysis is a self-contained, stdlib-only reimplementation of
// the go/analysis Analyzer/Pass shape, sized for this repository's needs.
//
// The real golang.org/x/tools/go/analysis framework is the obvious
// vehicle for the protocol lints in ../analysis/*, but this module is
// deliberately dependency-free (the simulation builds and runs offline),
// so the framework surface the analyzers program against is redefined
// here: an Analyzer with a Run function over a Pass carrying the parsed
// and type-checked package. The API mirrors go/analysis closely enough
// that the analyzers could be ported to a vet-style multichecker by
// swapping the import.
//
// Suppression. A diagnostic can be waived only by an explicit,
// justified directive on the flagged line or the line above it:
//
//	//nowlint:allow <analyzer> -- <justification>
//
// The justification is mandatory (and must be a real sentence, not a
// token): the analyzers encode soundness arguments, and a waiver is a
// claim that a site satisfies the argument some other way — that claim
// belongs next to the code. An allow with a missing or trivial
// justification does not suppress; it is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer is one static check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nowlint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports diagnostics through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// ---------------------------------------------------------------------
// Allow directives.
// ---------------------------------------------------------------------

var allowRE = regexp.MustCompile(`^//nowlint:allow\s+([A-Za-z0-9_,-]+)\s*(?:--\s*(.*))?$`)

// minJustification is the least substantive justification accepted: a
// waiver must say why the invariant still holds, not just switch the
// check off.
const minJustification = 12

type allowDirective struct {
	analyzers []string
	reason    string
	pos       token.Pos
}

// allowIndex maps file → line → directive for one package.
type allowIndex map[string]map[int]allowDirective

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	ix := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				p := fset.Position(c.Slash)
				byLine := ix[p.Filename]
				if byLine == nil {
					byLine = map[int]allowDirective{}
					ix[p.Filename] = byLine
				}
				byLine[p.Line] = allowDirective{
					analyzers: strings.Split(m[1], ","),
					reason:    strings.TrimSpace(m[2]),
					pos:       c.Slash,
				}
			}
		}
	}
	return ix
}

func (d allowDirective) covers(name string) bool {
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// ApplyAllows filters diagnostics through the package's //nowlint:allow
// directives: a covered diagnostic on the directive's line or the line
// below it is dropped if the directive carries a substantive
// justification, and converted into a complaint about the directive if
// it does not. Both the CLI driver and the analysistest harness route
// every analyzer's output through here, so the waiver semantics are
// identical in CI and in tests.
func ApplyAllows(fset *token.FileSet, files []*ast.File, name string, diags []Diagnostic) []Diagnostic {
	ix := buildAllowIndex(fset, files)
	var out []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		byLine := ix[p.Filename]
		var dir allowDirective
		found := false
		if byLine != nil {
			if a, ok := byLine[p.Line]; ok && a.covers(name) {
				dir, found = a, true
			} else if a, ok := byLine[p.Line-1]; ok && a.covers(name) {
				dir, found = a, true
			}
		}
		if !found {
			out = append(out, d)
			continue
		}
		if len(dir.reason) < minJustification {
			d.Message = fmt.Sprintf("nowlint:allow %s needs a substantive justification (-- why the invariant still holds), got %q", name, dir.reason)
			out = append(out, d)
		}
		// Justified directive: diagnostic waived.
	}
	return out
}

// ---------------------------------------------------------------------
// Type and callee resolution helpers shared by the analyzers.
// ---------------------------------------------------------------------

// CalleeOf resolves the function or method a call expression invokes,
// or nil for indirect calls (function values, interface methods the
// checker cannot pin down, conversions, builtins).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// NamedOf unwraps pointers and aliases down to the defined type, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// IsMethodOn reports whether fn is a method with one of the given names
// on the named type typeName defined in a package whose BASE name is
// pkgName. Matching by base name (not full import path) lets the
// analyzers apply equally to the real tree and to the small stub
// packages in their analysistest testdata.
func IsMethodOn(fn *types.Func, pkgName, typeName string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != pkgName {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := NamedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != typeName {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsPkgFunc reports whether fn is a package-level function (no
// receiver) named one of names in a package with base name pkgName. An
// empty names list matches any function of the package.
func IsPkgFunc(fn *types.Func, pkgName string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != pkgName {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// ArgOfNamedType returns the first argument of call whose static type
// is (or points to) the named type pkgName.typeName, or nil.
func ArgOfNamedType(info *types.Info, call *ast.CallExpr, pkgName, typeName string) ast.Expr {
	for _, a := range call.Args {
		tv, ok := info.Types[a]
		if !ok {
			continue
		}
		if n := NamedOf(tv.Type); n != nil &&
			n.Obj().Name() == typeName &&
			n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == pkgName {
			return a
		}
	}
	return nil
}

// IntConst evaluates expr as a constant integer if the type checker
// folded one there.
func IntConst(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// MentionsRecover reports whether body contains a call to the recover
// builtin (at any depth, including nested literals).
func MentionsRecover(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}
