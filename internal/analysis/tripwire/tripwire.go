// Package tripwire enforces the panic-surfacing pattern for
// protocol-server goroutines: any goroutine that consumes endpoint
// traffic must recover panics and convert them into a Run error.
//
// The failure mode it mechanizes: a server goroutine that panics takes
// its endpoint's drain loop with it. Peers keep sending; their bounded
// request queues fill; the whole simulation wedges with no error and no
// output — the panic text is the only evidence and it raced to stderr.
// The repository's pattern (dsm.System.recoverAbort) recovers at the
// top of every server goroutine and funnels the failure into the error
// Run returns, so a protocol bug fails the run loudly and
// deterministically instead of hanging it.
//
// Mechanization: for every `go` statement whose spawned function
// (literal or same-package declaration) transitively reaches an
// Endpoint receive (Recv, RecvRaw, TryRecvRaw, Chan) over
// same-goroutine call edges, the spawned body must open with a deferred
// recovery: a top-level `defer` of either a function literal that calls
// recover(), or a same-package function/method whose body calls
// recover() (e.g. `defer s.recoverAbort(n)`).
package tripwire

import (
	"go/ast"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "tripwire",
	Doc:  "protocol-server goroutines must recover panics into Run errors (a dead drain loop wedges the bounded-queue network silently)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	// Receiver nodes: functions whose own body performs an endpoint
	// receive.
	var receivers []*analysis.FuncNode
	for _, node := range g.Nodes {
		for _, call := range node.Calls {
			fn := analysis.CalleeOf(pass.TypesInfo, call)
			if analysis.IsMethodOn(fn, "network", "Endpoint", "Recv", "RecvRaw", "TryRecvRaw", "Chan") {
				receivers = append(receivers, node)
				break
			}
		}
	}
	if len(receivers) == 0 {
		return nil
	}
	isReceiver := map[*analysis.FuncNode]bool{}
	for _, r := range receivers {
		isReceiver[r] = true
	}

	for _, site := range g.GoSites {
		if site.Spawned == nil {
			continue // indirect or cross-package target: not resolvable
		}
		// Does the spawned goroutine (not its further `go` spawns) reach
		// an endpoint receive?
		reach := g.Reachable([]*analysis.FuncNode{site.Spawned})
		touches := false
		for n := range reach {
			if isReceiver[n] {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		if hasTopLevelRecover(pass, g, site.Spawned) {
			continue
		}
		pass.Reportf(site.Stmt.Pos(),
			"goroutine %s consumes endpoint traffic but has no top-level deferred recover: a panic here kills the drain loop and wedges the bounded-queue network silently; recover into the Run error (the recoverAbort pattern)",
			site.Spawned.Name())
	}
	return nil
}

// hasTopLevelRecover reports whether the spawned function's body opens
// with a deferred recovery handler: a top-level DeferStmt whose callee
// is a recover()-calling literal or a same-package function/method whose
// declared body calls recover().
func hasTopLevelRecover(pass *analysis.Pass, g *analysis.CallGraph, node *analysis.FuncNode) bool {
	body := node.Body()
	if body == nil {
		return false
	}
	for _, stmt := range body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit); ok {
			if analysis.MentionsRecover(lit.Body) {
				return true
			}
			continue
		}
		if fn := analysis.CalleeOf(pass.TypesInfo, def.Call); fn != nil {
			if callee := g.NodeFor(fn); callee != nil && callee.Body() != nil &&
				analysis.MentionsRecover(callee.Body()) {
				return true
			}
		}
	}
	return false
}
