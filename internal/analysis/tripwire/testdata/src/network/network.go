// Package network is a minimal stub of the real internal/network
// surface.
package network

type Class uint8

const (
	ClassRequest Class = iota
	ClassReply
)

type Message struct {
	From   int
	Arrive int64
}

type Endpoint struct{}

func (e *Endpoint) Send(to, typ int, class Class, data []byte) {}
func (e *Endpoint) Recv(class Class) Message                   { return Message{} }
func (e *Endpoint) RecvRaw(class Class) Message                { return Message{} }
func (e *Endpoint) TryRecvRaw(class Class) (Message, bool)     { return Message{}, false }
func (e *Endpoint) Chan(class Class) <-chan Message            { return nil }
