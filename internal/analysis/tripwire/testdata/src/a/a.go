package a

import "network"

type S struct {
	ep  *network.Endpoint
	err error
}

// recoverAbort is the repository's pattern: recover at the top of every
// server goroutine and surface the panic as a Run error.
func (s *S) recoverAbort() {
	if r := recover(); r != nil {
		s.err = nil
	}
}

func (s *S) serve() {
	for {
		_ = s.ep.RecvRaw(network.ClassRequest)
	}
}

func (s *S) startBadLit() {
	go func() { // want `no top-level deferred recover`
		_ = s.ep.RecvRaw(network.ClassRequest)
	}()
}

func (s *S) startBadDecl() {
	go s.serve() // want `no top-level deferred recover`
}

func (s *S) startGoodLit() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.err = nil
			}
		}()
		_ = s.ep.RecvRaw(network.ClassRequest)
	}()
}

func (s *S) startGoodHelper() {
	go func() {
		defer s.recoverAbort()
		for {
			_ = s.ep.RecvRaw(network.ClassRequest)
		}
	}()
}

// A goroutine that never touches an endpoint needs no tripwire.
func (s *S) startCompute(ch chan int) {
	go func() {
		ch <- 1
	}()
}
