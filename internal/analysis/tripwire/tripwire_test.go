package tripwire_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tripwire"
)

func TestTripwire(t *testing.T) {
	analysistest.Run(t, "testdata", tripwire.Analyzer, "a")
}
