package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(-50) // negative advances are ignored
	if c.Now() != 100 {
		t.Fatalf("negative advance moved the clock: %v", c.Now())
	}
	c.AdvanceTo(50) // earlier target is ignored
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo moved the clock backwards: %v", c.Now())
	}
	if got := c.AdvanceTo(250); got != 250 || c.Now() != 250 {
		t.Fatalf("AdvanceTo(250) = %v, clock %v", got, c.Now())
	}
}

func TestClockConcurrentAdvances(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000 {
		t.Fatalf("lost advances: %v", c.Now())
	}
}

func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.00µs"},
		{3 * Millisecond, "3.000ms"},
		{2500 * Millisecond, "2.500s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestWireProfileLatency(t *testing.T) {
	w := WireProfile{OneWay: 1000, PerByteNS: 10}
	if got := w.Latency(0); got != 1000 {
		t.Errorf("empty message latency %v", got)
	}
	if got := w.Latency(100); got != 2000 {
		t.Errorf("100-byte latency %v, want 2000", got)
	}
}

func TestDefaultPlatformCalibration(t *testing.T) {
	p := DefaultPlatform()
	// 126 µs UDP round trip for a 1-byte message.
	if rtt := 2 * p.UDP.Latency(1); rtt < 120*Microsecond || rtt > 132*Microsecond {
		t.Errorf("UDP 1-byte RTT %v, want ≈126µs", rtt)
	}
	// 200 µs TCP empty-message round trip.
	if rtt := 2 * p.TCP.Latency(0); rtt != 200*Microsecond {
		t.Errorf("TCP empty RTT %v, want 200µs", rtt)
	}
	// TCP effective bandwidth ≈ 8.6 MB/s.
	perMB := p.TCP.Latency(1<<20) - p.TCP.OneWay
	bw := float64(1<<20) / perMB.Seconds() / 1e6
	if bw < 8 || bw > 9.5 {
		t.Errorf("TCP bandwidth %.2f MB/s, want ≈8.6", bw)
	}
	if p.ComputeCost(1e6) != Time(25*1e6) {
		t.Errorf("compute cost %v", p.ComputeCost(1e6))
	}
	if p.ComputeCost(-5) != 0 {
		t.Errorf("negative flops must cost nothing")
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(nil)
	m.Compute(1000)
	m.Compute(1000)
	if got := m.Elapsed(); got != Time(2*1000*25) {
		t.Errorf("Elapsed = %v", got)
	}
}

func TestRNGDeterministicAndUniform(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	// Different seeds should differ immediately (probabilistically).
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("seeds 1 and 2 collide")
	}
	r := NewRNG(7)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Errorf("mean %v, want ≈0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed uint64, bound uint8) bool {
		n := int(bound)%100 + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestMaxHelper(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(-1, -2) != -1 {
		t.Fatal("Max broken")
	}
}
