package sim

// Platform holds every calibration constant of the simulated testbed in one
// place. The defaults model the paper's platform: eight 200 MHz Pentium Pro
// workstations running FreeBSD, connected by a switched, full-duplex
// 100 Mbps Ethernet; TreadMarks speaks UDP/IP and MPICH speaks TCP.
//
// The SC'98 paper's Section 6 reports the platform characteristics we
// calibrate against (the literal digits were lost in the text extraction,
// so the values below are the canonical ones from the TreadMarks
// literature; EXPERIMENTS.md records each choice):
//
//   - UDP/IP round-trip for a 1-byte message: 126 µs
//   - lock acquisition: 170–700 µs (emerges from the protocol)
//   - 8-processor barrier: ≈ 700 µs (emerges from the protocol)
//   - obtaining a diff: 313–827 µs (emerges from the protocol)
//   - MPICH TCP empty-message round trip: 200 µs
//   - MPICH maximum bandwidth: 8.6 MB/s
type Platform struct {
	// FlopNS is the virtual cost, in nanoseconds, of one floating-point
	// operation at the sustained (not peak) rate of the modeled CPU.
	FlopNS float64

	// UDP is the cost profile used by the DSM (TreadMarks uses UDP/IP).
	UDP WireProfile
	// TCP is the cost profile used by MPI (MPICH uses TCP).
	TCP WireProfile

	// Interrupt is the cost charged to a node's application thread each
	// time its protocol server handles an incoming request (the SIGIO
	// handler in real TreadMarks). This is what makes flush's 2(n-1)
	// message broadcast disturb every node, per Section 3.2.3.
	Interrupt Time

	// RequestService is the fixed cost of serving a protocol request that
	// needs no diffing (lock forward, barrier bookkeeping, page lookup).
	RequestService Time

	// DiffCreate is the fixed cost of creating one diff by comparing a
	// page with its twin; DiffPerByte is added per byte of the page
	// scanned. Together with message costs this lands diff fetches in the
	// paper's 313–827 µs range.
	DiffCreate  Time
	DiffPerByte float64

	// DiffApply is the fixed cost of applying one received diff;
	// DiffApplyPerByte is added per byte of diff data written.
	DiffApply        Time
	DiffApplyPerByte float64

	// TwinCopy is the cost of creating a twin (copying one page) on the
	// first write to a read-only page, and PageCopy the cost of copying a
	// full page into a reply.
	TwinCopy Time
	PageCopy Time

	// FaultOverhead is the fixed kernel/handler cost of taking an access
	// fault (SIGSEGV delivery and dispatch in real TreadMarks).
	FaultOverhead Time

	// MPIOverhead is the per-call software overhead of the MPI library on
	// top of raw TCP transmission.
	MPIOverhead Time
}

// WireProfile is the timing model of one transport: a message of n payload
// bytes occupies the wire for OneWay + n·PerByteNS nanoseconds, and every
// message additionally carries HeaderBytes of protocol header that count
// toward the transmitted volume statistics.
type WireProfile struct {
	// OneWay is the fixed one-way latency of a minimal message,
	// including send/receive software overheads.
	OneWay Time
	// PerByteNS is the additional nanoseconds per payload byte
	// (the inverse of effective bandwidth).
	PerByteNS float64
	// HeaderBytes is the per-message header overhead added to the byte
	// statistics (IP + UDP/TCP + protocol header).
	HeaderBytes int
}

// Latency returns the one-way virtual latency of a message with n payload
// bytes.
func (w WireProfile) Latency(n int) Time {
	return w.OneWay + Time(float64(n)*w.PerByteNS)
}

// DefaultPlatform returns the calibrated model of the paper's testbed.
// Callers may copy and modify it for sensitivity studies.
func DefaultPlatform() *Platform {
	return &Platform{
		// 25 ns/flop ≈ 40 MFLOPS sustained: what a 200 MHz Pentium Pro
		// delivers on memory-traffic-heavy FP kernels (peak is 200
		// MFLOPS; NAS-class codes sustain a fifth of peak).
		FlopNS: 25,

		// 126 µs measured UDP RTT for 1 byte → 63 µs one way.
		// 100 Mbps ≈ 11.1 MB/s effective → 90 ns per byte.
		UDP: WireProfile{OneWay: 63 * Microsecond, PerByteNS: 90, HeaderBytes: 36},

		// 200 µs empty-message TCP RTT → 100 µs one way.
		// 8.6 MB/s maximum bandwidth → 116 ns per byte.
		TCP: WireProfile{OneWay: 100 * Microsecond, PerByteNS: 116, HeaderBytes: 52},

		Interrupt:      25 * Microsecond,
		RequestService: 15 * Microsecond,

		DiffCreate:  40 * Microsecond,
		DiffPerByte: 15,

		DiffApply:        10 * Microsecond,
		DiffApplyPerByte: 10,

		TwinCopy: 20 * Microsecond,
		PageCopy: 25 * Microsecond,

		FaultOverhead: 30 * Microsecond,

		MPIOverhead: 20 * Microsecond,
	}
}

// ComputeCost converts a floating-point-operation count to virtual time.
func (p *Platform) ComputeCost(flops float64) Time {
	if flops <= 0 {
		return 0
	}
	return Time(flops * p.FlopNS)
}
