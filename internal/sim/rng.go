package sim

// RNG is a small deterministic pseudo-random number generator
// (SplitMix64). Application inputs (city coordinates, molecule positions,
// sort keys, FFT seeds) are generated with it so that the sequential,
// OpenMP, TreadMarks, and MPI versions of an application all see bit-
// identical inputs regardless of package-level state or Go version.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9E3779B97F4A7C15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value uniformly distributed in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}
