// Package sim provides the virtual-time foundation for the simulated
// network of workstations (NOW).
//
// The paper's testbed was eight 200 MHz Pentium Pro machines on a switched
// 100 Mbps Ethernet. We reproduce its *timing structure* with a
// direct-execution simulation: application code really runs (so results can
// be validated against sequential execution), while every node keeps a
// virtual clock that is advanced by a calibrated cost model — compute
// segments charge a per-flop cost, messages charge latency plus a per-byte
// cost, and synchronization operations take the maximum over their
// participants' clocks.
//
// All durations are virtual nanoseconds (type Time). The clocks are safe
// for concurrent use because a node's protocol-server goroutine charges
// interrupt overhead to the application thread's clock.
package sim

import (
	"fmt"
	"sync"
)

// Time is a point in (or duration of) virtual time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.25ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.2fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is a node's virtual clock. The zero value reads 0 ns and is ready
// to use. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative d is ignored so that
// cost-model arithmetic can never move a clock backwards.
func (c *Clock) Advance(d Time) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t if t is later than the current
// time; otherwise the clock is unchanged. It returns the resulting time.
// This is the fundamental "message arrival" operation: a receiver resumes
// at max(its own time, the message's arrival time).
func (c *Clock) AdvanceTo(t Time) Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Meter is the cost-accounting context handed to *sequential* versions of
// the applications: it carries a clock and a platform but no network, so
// sequential runs charge only compute time. Parallel nodes embed the same
// accounting through their DSM or MPI context.
type Meter struct {
	Clock    Clock
	Platform *Platform
}

// NewMeter returns a Meter using the given platform (or the default
// platform if p is nil).
func NewMeter(p *Platform) *Meter {
	if p == nil {
		p = DefaultPlatform()
	}
	return &Meter{Platform: p}
}

// Compute charges the virtual cost of executing n floating-point
// operations (or comparable units of work) at the platform's compute rate.
func (m *Meter) Compute(flops float64) {
	m.Clock.Advance(m.Platform.ComputeCost(flops))
}

// Elapsed returns the virtual time consumed so far.
func (m *Meter) Elapsed() Time { return m.Clock.Now() }
