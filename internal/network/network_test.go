package network

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testSwitch(n int) *Switch {
	return NewSwitch(n, sim.WireProfile{OneWay: 1000, PerByteNS: 10, HeaderBytes: 36})
}

func TestSendStampsVirtualTimes(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)

	c0.Advance(5000)
	e0.Send(1, 7, ClassRequest, make([]byte, 100))
	m := e1.Recv(ClassRequest)
	if m.Send != 5000 {
		t.Errorf("send time %v, want 5000", m.Send)
	}
	if want := sim.Time(5000 + 1000 + 100*10); m.Arrive != want {
		t.Errorf("arrive %v, want %v", m.Arrive, want)
	}
	if c1.Now() != m.Arrive {
		t.Errorf("receiver clock %v, want %v", c1.Now(), m.Arrive)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)
	c1.Advance(1_000_000) // receiver is already far ahead
	e0.Send(1, 1, ClassReply, nil)
	e1.Recv(ClassReply)
	if c1.Now() != 1_000_000 {
		t.Errorf("receiver clock moved to %v", c1.Now())
	}
}

func TestClassesAreSeparateQueues(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)
	e0.Send(1, 1, ClassRequest, nil)
	e0.Send(1, 2, ClassReply, nil)
	if m := e1.Recv(ClassReply); m.Type != 2 {
		t.Errorf("reply queue delivered type %d", m.Type)
	}
	if m := e1.Recv(ClassRequest); m.Type != 1 {
		t.Errorf("request queue delivered type %d", m.Type)
	}
}

func TestPerPairFIFO(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)
	for i := 0; i < 50; i++ {
		e0.Send(1, i, ClassRequest, nil)
	}
	for i := 0; i < 50; i++ {
		if m := e1.RecvRaw(ClassRequest); m.Type != i {
			t.Fatalf("message %d arrived out of order (type %d)", i, m.Type)
		}
	}
}

func TestStatsCountMessagesAndHeaderBytes(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	sw.Endpoint(1, &c1)
	e0.Send(1, 1, ClassRequest, make([]byte, 64))
	e0.Send(1, 1, ClassRequest, nil)
	msgs, bytes := sw.Stats().Snapshot()
	if msgs != 2 {
		t.Errorf("messages = %d", msgs)
	}
	if want := int64(64 + 36 + 36); bytes != want {
		t.Errorf("bytes = %d, want %d", bytes, want)
	}
	sw.ResetStats()
	if m, b := sw.Stats().Snapshot(); m != 0 || b != 0 {
		t.Errorf("reset left %d/%d", m, b)
	}
}

func TestSelfSendPanics(t *testing.T) {
	sw := testSwitch(2)
	var c0 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-send")
		}
	}()
	e0.Send(0, 1, ClassRequest, nil)
}

func TestShutdownUnblocksReceivers(t *testing.T) {
	sw := testSwitch(2)
	var c1 sim.Clock
	e1 := sw.Endpoint(1, &c1)
	done := make(chan *Message, 1)
	go func() { done <- e1.RecvRaw(ClassRequest) }()
	sw.Shutdown()
	if m := <-done; m != nil {
		t.Fatalf("expected nil after shutdown, got %+v", m)
	}
}

func TestSwitchScalesQueues(t *testing.T) {
	for _, tt := range []struct{ n, want int }{
		{2, minQueueDepth},
		{8, minQueueDepth},
		{128, minQueueDepth},
		{129, 32 * 129},
		{256, 32 * 256},
	} {
		if got := queueDepth(tt.n); got != tt.want {
			t.Errorf("queueDepth(%d) = %d, want %d", tt.n, got, tt.want)
		}
		sw := testSwitch(tt.n)
		if got := cap(sw.inboxes[0][0]); got != tt.want {
			t.Errorf("n=%d: inbox capacity %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestStatsByType(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	sw.Endpoint(1, &c1)
	e0.Send(1, 3, ClassRequest, make([]byte, 10))
	e0.Send(1, 3, ClassRequest, make([]byte, 20))
	e0.Send(1, 5, ClassReply, make([]byte, 7))
	e0.SendAt(1, MaxType+2, ClassRequest, nil, 0) // out-of-range tag folds into slot 0
	if m, b := sw.Stats().ByType(3); m != 2 || b != 10+36+20+36 {
		t.Errorf("type 3: %d msgs / %d bytes", m, b)
	}
	if m, b := sw.Stats().ByType(5); m != 1 || b != 7+36 {
		t.Errorf("type 5: %d msgs / %d bytes", m, b)
	}
	if m, _ := sw.Stats().ByType(MaxType + 2); m != 1 {
		t.Errorf("out-of-range type not folded into slot 0: %d msgs", m)
	}
	var tm, tb int64
	for typ := 0; typ < MaxType; typ++ {
		m, b := sw.Stats().ByType(typ)
		tm += m
		tb += b
	}
	if m, b := sw.Stats().Snapshot(); tm != m || tb != b {
		t.Errorf("per-type totals %d/%d do not add up to snapshot %d/%d", tm, tb, m, b)
	}
	sw.ResetStats()
	if m, b := sw.Stats().ByType(3); m != 0 || b != 0 {
		t.Errorf("reset left type 3 at %d/%d", m, b)
	}
}

func TestTrySendAtDropsWhenFullAndRecovers(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)
	depth := cap(sw.inboxes[1][int(ClassRequest)])
	for i := 0; i < depth; i++ {
		if !e0.TrySendAt(1, 1, ClassRequest, nil, 0) {
			t.Fatalf("queue rejected message %d below capacity %d", i, depth)
		}
	}
	if e0.TrySendAt(1, 1, ClassRequest, nil, 0) {
		t.Fatal("full queue accepted a message")
	}
	msgs, _ := sw.Stats().Snapshot()
	if msgs != int64(depth) {
		t.Errorf("dropped message was counted: %d msgs, want %d", msgs, depth)
	}
	// Drain one slot: the retry must now succeed — the drop-and-retry
	// pacing converges as soon as the receiver makes any progress.
	e1.RecvRaw(ClassRequest)
	if !e0.TrySendAt(1, 1, ClassRequest, nil, 0) {
		t.Fatal("retry after drain failed")
	}
}

func TestLatencyMonotonicInSizeProperty(t *testing.T) {
	p := sim.WireProfile{OneWay: 63000, PerByteNS: 90}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.Latency(x) <= p.Latency(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
