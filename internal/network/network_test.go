package network

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testSwitch(n int) *Switch {
	return NewSwitch(n, sim.WireProfile{OneWay: 1000, PerByteNS: 10, HeaderBytes: 36})
}

func TestSendStampsVirtualTimes(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)

	c0.Advance(5000)
	e0.Send(1, 7, ClassRequest, make([]byte, 100))
	m := e1.Recv(ClassRequest)
	if m.Send != 5000 {
		t.Errorf("send time %v, want 5000", m.Send)
	}
	if want := sim.Time(5000 + 1000 + 100*10); m.Arrive != want {
		t.Errorf("arrive %v, want %v", m.Arrive, want)
	}
	if c1.Now() != m.Arrive {
		t.Errorf("receiver clock %v, want %v", c1.Now(), m.Arrive)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)
	c1.Advance(1_000_000) // receiver is already far ahead
	e0.Send(1, 1, ClassReply, nil)
	e1.Recv(ClassReply)
	if c1.Now() != 1_000_000 {
		t.Errorf("receiver clock moved to %v", c1.Now())
	}
}

func TestClassesAreSeparateQueues(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)
	e0.Send(1, 1, ClassRequest, nil)
	e0.Send(1, 2, ClassReply, nil)
	if m := e1.Recv(ClassReply); m.Type != 2 {
		t.Errorf("reply queue delivered type %d", m.Type)
	}
	if m := e1.Recv(ClassRequest); m.Type != 1 {
		t.Errorf("request queue delivered type %d", m.Type)
	}
}

func TestPerPairFIFO(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	e1 := sw.Endpoint(1, &c1)
	for i := 0; i < 50; i++ {
		e0.Send(1, i, ClassRequest, nil)
	}
	for i := 0; i < 50; i++ {
		if m := e1.RecvRaw(ClassRequest); m.Type != i {
			t.Fatalf("message %d arrived out of order (type %d)", i, m.Type)
		}
	}
}

func TestStatsCountMessagesAndHeaderBytes(t *testing.T) {
	sw := testSwitch(2)
	var c0, c1 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	sw.Endpoint(1, &c1)
	e0.Send(1, 1, ClassRequest, make([]byte, 64))
	e0.Send(1, 1, ClassRequest, nil)
	msgs, bytes := sw.Stats().Snapshot()
	if msgs != 2 {
		t.Errorf("messages = %d", msgs)
	}
	if want := int64(64 + 36 + 36); bytes != want {
		t.Errorf("bytes = %d, want %d", bytes, want)
	}
	sw.ResetStats()
	if m, b := sw.Stats().Snapshot(); m != 0 || b != 0 {
		t.Errorf("reset left %d/%d", m, b)
	}
}

func TestSelfSendPanics(t *testing.T) {
	sw := testSwitch(2)
	var c0 sim.Clock
	e0 := sw.Endpoint(0, &c0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-send")
		}
	}()
	e0.Send(0, 1, ClassRequest, nil)
}

func TestShutdownUnblocksReceivers(t *testing.T) {
	sw := testSwitch(2)
	var c1 sim.Clock
	e1 := sw.Endpoint(1, &c1)
	done := make(chan *Message, 1)
	go func() { done <- e1.RecvRaw(ClassRequest) }()
	sw.Shutdown()
	if m := <-done; m != nil {
		t.Fatalf("expected nil after shutdown, got %+v", m)
	}
}

func TestLatencyMonotonicInSizeProperty(t *testing.T) {
	p := sim.WireProfile{OneWay: 63000, PerByteNS: 90}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.Latency(x) <= p.Latency(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
