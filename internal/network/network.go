// Package network simulates the paper's interconnect: a switched,
// full-duplex 100 Mbps Ethernet connecting eight workstations.
//
// A Switch moves Messages between Endpoints. Delivery is reliable and
// per-sender-pair ordered (both UDP-with-retransmit in TreadMarks and TCP
// in MPICH behave this way at the level we model). Each message is stamped
// with a virtual send time and a virtual arrival time computed from the
// switch's WireProfile; receivers advance their clocks to the arrival time,
// which is how virtual time propagates between nodes.
//
// The Switch also keeps the statistics behind the paper's Table 2: total
// message count and total bytes (payload plus per-message header overhead)
// for each run.
package network

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Class separates the two delivery queues of an endpoint. Protocol
// requests are handled by a node's server goroutine (the analogue of the
// SIGIO handler in TreadMarks), while replies and grants are awaited by the
// application thread. Splitting them keeps a blocked application thread
// from ever stalling protocol service.
type Class int

const (
	// ClassRequest messages are consumed by the node's protocol server.
	ClassRequest Class = iota
	// ClassReply messages are consumed by the blocked application thread.
	ClassReply
)

// Message is one simulated datagram.
type Message struct {
	From, To int
	Type     int    // protocol-defined tag
	Class    Class  // which queue it is delivered to
	Payload  []byte // opaque encoded body

	Send   sim.Time // virtual time at which the sender issued it
	Arrive sim.Time // virtual time at which it reaches the receiver
}

// MaxType bounds the protocol message-type space the per-type counters
// track. Types at or above it are still delivered and counted in the
// totals; only their per-type attribution is folded into slot 0.
const MaxType = 32

// Stats accumulates traffic totals for one run. All fields are updated
// atomically and may be read while the run is in flight.
//
// Messages and Bytes count LOGICAL protocol messages: a coalesced frame
// (SendFrameAt) contributes one Message per sub-message it carries and
// its full wire size to Bytes, exactly as if the subs had traveled
// separately minus the saved per-datagram headers. Frames counts the
// datagrams actually put on the wire (plain sends count one each), so
// Messages − Frames is the number of datagrams batching eliminated.
type Stats struct {
	Messages atomic.Int64
	Bytes    atomic.Int64
	Frames   atomic.Int64

	// Per-message-type counters, indexed by the protocol's type tag: the
	// raw material for cost attribution (page service vs synchronization
	// vs GC consensus) in the scaling tables. The network layer does not
	// interpret the tags; the protocol maps them to categories.
	typeMsgs  [MaxType]atomic.Int64
	typeBytes [MaxType]atomic.Int64
}

// Snapshot returns the current totals.
func (s *Stats) Snapshot() (messages, bytes int64) {
	return s.Messages.Load(), s.Bytes.Load()
}

// ByType returns the totals recorded against one protocol message type.
// Sub-messages of a coalesced frame are attributed to their own types,
// never to the envelope type.
func (s *Stats) ByType(typ int) (messages, bytes int64) {
	if typ < 0 || typ >= MaxType {
		typ = 0
	}
	return s.typeMsgs[typ].Load(), s.typeBytes[typ].Load()
}

// FrameCount returns the number of datagrams sent (plain sends count one
// each; a coalesced frame counts one regardless of how many sub-messages
// it carries).
func (s *Stats) FrameCount() int64 { return s.Frames.Load() }

// Switch connects n endpoints with a shared wire profile.
type Switch struct {
	n        int
	profile  sim.WireProfile
	stats    Stats
	inboxes  [][2]chan *Message // [node][class]
	down     chan struct{}      // closed by Shutdown; inboxes are never closed
	downOnce sync.Once
}

// queueDepth bounds in-flight messages per (node, class). It only provides
// backpressure against runaway senders; the protocols in this repository
// never deadlock on it because requests are always drained by a dedicated
// server goroutine. The bound must grow with the node count: a GC
// consensus round can push one delta to every peer in a burst, and at 128
// nodes several concurrent rounds aimed at one quiet node would otherwise
// exhaust a fixed-depth queue and leave TrySendAt's drop-and-retry pacing
// livelocked behind a never-draining floor (see TestSwitchScalesQueues).
const minQueueDepth = 4096

func queueDepth(n int) int {
	if d := 32 * n; d > minQueueDepth {
		return d
	}
	return minQueueDepth
}

// NewSwitch creates a switch for n endpoints using the given wire profile.
func NewSwitch(n int, profile sim.WireProfile) *Switch {
	sw := &Switch{n: n, profile: profile, down: make(chan struct{})}
	sw.inboxes = make([][2]chan *Message, n)
	for i := range sw.inboxes {
		sw.inboxes[i][0] = make(chan *Message, queueDepth(n))
		sw.inboxes[i][1] = make(chan *Message, queueDepth(n))
	}
	return sw
}

// N returns the number of endpoints.
func (s *Switch) N() int { return s.n }

// Profile returns the wire profile in use.
func (s *Switch) Profile() sim.WireProfile { return s.profile }

// Stats returns the switch's traffic counters.
func (s *Switch) Stats() *Stats { return &s.stats }

// ResetStats zeroes the traffic counters (used between harness phases so
// that Table 2 counts only the measured region of an application).
func (s *Switch) ResetStats() {
	s.stats.Messages.Store(0)
	s.stats.Bytes.Store(0)
	s.stats.Frames.Store(0)
	for i := 0; i < MaxType; i++ {
		s.stats.typeMsgs[i].Store(0)
		s.stats.typeBytes[i].Store(0)
	}
}

// Endpoint returns node id's attachment to the switch. The clock is the
// node's virtual clock; receives advance it to each message's arrival time.
func (s *Switch) Endpoint(id int, clock *sim.Clock) *Endpoint {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("network: endpoint id %d out of range [0,%d)", id, s.n))
	}
	return &Endpoint{id: id, sw: s, clock: clock}
}

// Endpoint is one node's interface to the switch.
type Endpoint struct {
	id    int
	sw    *Switch
	clock *sim.Clock
}

// ID returns the endpoint's node id.
func (e *Endpoint) ID() int { return e.id }

// Clock returns the clock receives are applied to.
func (e *Endpoint) Clock() *sim.Clock { return e.clock }

// Send transmits payload to node `to` at the sender's current virtual
// time. It never blocks the simulation's correctness: the underlying
// channel is large and drained by the receiver's server or application
// thread.
func (e *Endpoint) Send(to, typ int, class Class, payload []byte) {
	e.SendAt(to, typ, class, payload, e.clock.Now())
}

// SendAt transmits like Send but with an explicit virtual send time. It is
// used by protocol servers, which act at a request's arrival time rather
// than at the application thread's current time (interrupt semantics).
func (e *Endpoint) SendAt(to, typ int, class Class, payload []byte, at sim.Time) {
	m := e.build(to, typ, class, payload, at)
	select {
	case <-e.sw.down:
		panic("network: switch is down")
	default:
	}
	// The down case below keeps a sender from blocking forever on a full
	// queue whose drainer exited at shutdown. An abort can close `down`
	// while a send is committing; the message then sits in the queue
	// unreceived, and the sender unwinds at its next receive instead.
	select {
	case e.sw.inboxes[to][m.Class] <- m:
		e.count(typ, payload)
	case <-e.sw.down:
		panic("network: switch is down")
	}
}

// build assembles one stamped message (shared by the blocking and
// non-blocking send paths).
func (e *Endpoint) build(to, typ int, class Class, payload []byte, at sim.Time) *Message {
	if to == e.id {
		panic("network: node sent a message to itself")
	}
	return &Message{
		From:    e.id,
		To:      to,
		Type:    typ,
		Class:   class,
		Payload: payload,
		Send:    at,
		Arrive:  at + e.sw.profile.Latency(len(payload)),
	}
}

// count records one delivered message in the traffic totals.
func (e *Endpoint) count(typ int, payload []byte) {
	bytes := int64(len(payload) + e.sw.profile.HeaderBytes)
	e.sw.stats.Messages.Add(1)
	e.sw.stats.Bytes.Add(bytes)
	e.sw.stats.Frames.Add(1)
	if typ < 0 || typ >= MaxType {
		typ = 0
	}
	e.sw.stats.typeMsgs[typ].Add(1)
	e.sw.stats.typeBytes[typ].Add(bytes)
}

// FramePart attributes one sub-message of a coalesced frame for the
// traffic statistics: its protocol type and the envelope bytes it
// occupies (sub header + payload; the frame builder folds any shared
// envelope prefix into the first part).
type FramePart struct {
	Type  int
	Bytes int
}

// countFrame records one delivered frame: one datagram, len(parts)
// logical messages, total bytes once, and each part's bytes against its
// own type (the per-datagram header overhead is charged to the first
// part, mirroring count's payload+header accounting so the per-type
// bytes still sum to Bytes).
func (e *Endpoint) countFrame(payload []byte, parts []FramePart) {
	total := 0
	for _, p := range parts {
		total += p.Bytes
	}
	if total != len(payload) {
		panic(fmt.Sprintf("network: frame parts sum to %d bytes but payload is %d", total, len(payload)))
	}
	e.sw.stats.Messages.Add(int64(len(parts)))
	e.sw.stats.Bytes.Add(int64(len(payload) + e.sw.profile.HeaderBytes))
	e.sw.stats.Frames.Add(1)
	for i, p := range parts {
		typ, bytes := p.Type, p.Bytes
		if typ < 0 || typ >= MaxType {
			typ = 0
		}
		if i == 0 {
			bytes += e.sw.profile.HeaderBytes
		}
		e.sw.stats.typeMsgs[typ].Add(1)
		e.sw.stats.typeBytes[typ].Add(int64(bytes))
	}
}

// SendFrameAt transmits a coalesced frame: one datagram whose payload
// carries several protocol sub-messages, delivered and routed like any
// other message of type typ but counted as len(parts) logical messages
// attributed to the parts' own types. Latency is computed on the full
// payload, so batching also models the real saving of one wire
// transaction instead of k.
func (e *Endpoint) SendFrameAt(to, typ int, class Class, payload []byte, parts []FramePart, at sim.Time) {
	m := e.build(to, typ, class, payload, at)
	select {
	case <-e.sw.down:
		panic("network: switch is down")
	default:
	}
	select {
	case e.sw.inboxes[to][m.Class] <- m:
		e.countFrame(payload, parts)
	case <-e.sw.down:
		panic("network: switch is down")
	}
}

// TrySendFrameAt is SendFrameAt with non-blocking delivery: if the
// destination's queue is full the frame is dropped, false is returned,
// and nothing is counted. Like TrySendAt it is the only frame send a
// protocol server may issue.
func (e *Endpoint) TrySendFrameAt(to, typ int, class Class, payload []byte, parts []FramePart, at sim.Time) bool {
	m := e.build(to, typ, class, payload, at)
	select {
	case <-e.sw.down:
		panic("network: switch is down")
	default:
	}
	select {
	case e.sw.inboxes[to][m.Class] <- m:
		e.countFrame(payload, parts)
		return true
	default:
		return false
	}
}

// TrySendAt is SendAt with non-blocking delivery: if the destination's
// queue is full the message is dropped and false returned (nothing is
// counted). Protocol SERVERS must use it for any request-class send —
// the no-deadlock argument for the bounded queues is that requests are
// always drained by a server that never blocks, and a server blocking on
// a peer's full queue while that peer's server blocks on ours would be
// exactly the forbidden cycle. Callers must therefore treat the message
// as optional (an optimization retried by some higher-level pacing).
// The servernoblock analyzer (cmd/nowlint) enforces this contract
// statically: a blocking request-class SendAt/Send reachable from a
// protocol-server receive loop is flagged unless a //nowlint:allow
// records why its traffic is bounded.
func (e *Endpoint) TrySendAt(to, typ int, class Class, payload []byte, at sim.Time) bool {
	m := e.build(to, typ, class, payload, at)
	select {
	case <-e.sw.down:
		panic("network: switch is down")
	default:
	}
	select {
	case e.sw.inboxes[to][m.Class] <- m:
		e.count(typ, payload)
		return true
	default:
		return false
	}
}

// Recv blocks until a message of the given class arrives and advances the
// endpoint's clock to its arrival time. It returns nil if the switch has
// been shut down.
func (e *Endpoint) Recv(class Class) *Message {
	m := e.recv(class)
	if m != nil {
		e.clock.AdvanceTo(m.Arrive)
	}
	return m
}

// RecvRaw blocks until a message of the given class arrives but does NOT
// touch the clock. Protocol servers use it: a server acts at the message's
// own arrival time, not at the application thread's time. It returns nil
// if the switch has been shut down.
func (e *Endpoint) RecvRaw(class Class) *Message {
	return e.recv(class)
}

// recv is the shared blocking receive: a message if one is queued or
// arrives, nil once the switch is down and the queue has drained.
func (e *Endpoint) recv(class Class) *Message {
	in := e.sw.inboxes[e.id][class]
	select {
	case m := <-in:
		return m
	case <-e.sw.down:
		// Drain semantics: messages queued before shutdown remain
		// receivable until the queue empties, then receivers see nil.
		select {
		case m := <-in:
			return m
		default:
			return nil
		}
	}
}

// Shutdown marks the switch down, releasing any goroutine blocked in Recv
// or RecvRaw with a nil message and making subsequent sends panic (the
// abort cascade's unwind signal). The inbox channels themselves are never
// closed — an abort shuts the switch down while application threads may
// still be mid-send, and closing a channel under a concurrent sender is a
// data race even when the resulting panic is the desired outcome. Drain
// semantics: messages already queued remain receivable until their queue
// empties, after which receivers see nil. Shutdown is idempotent — a run
// abort and a later lifecycle Close (dsm.System.Shutdown) may both reach
// it. Goroutines that select on Chan directly are not released by
// Shutdown; they must pair the receive with their owner's done channel
// (the dsm reply routers and mpi ranks both do).
func (s *Switch) Shutdown() {
	s.downOnce.Do(func() { close(s.down) })
}

// Chan exposes the delivery channel of one class so callers can select on
// message arrival together with other events (e.g. a node's local-grant
// channel). Receivers taken from the channel directly must advance their
// clock to Message.Arrive themselves.
func (e *Endpoint) Chan(class Class) <-chan *Message {
	return e.sw.inboxes[e.id][class]
}

// TryRecvRaw returns a pending message of the given class, or nil.
func (e *Endpoint) TryRecvRaw(class Class) *Message {
	select {
	case m := <-e.sw.inboxes[e.id][class]:
		return m
	default:
		return nil
	}
}
