package mpi

// Binomial-tree collectives in the style of period-correct MPICH. All
// internal tags are large negative numbers so they never collide with
// application tags (which must be non-negative).

const (
	tagBarrierUp = -1000 - iota
	tagBarrierDown
	tagBcast
	tagReduce
	tagGather
	tagAlltoall
	tagScatter
	tagAllreduce
)

// Barrier blocks until every rank has entered it (binomial gather to rank
// 0 followed by a binomial broadcast).
func (r *Rank) Barrier() {
	r.gatherTree(tagBarrierUp, nil, nil)
	r.bcastTree(tagBarrierDown, nil)
}

// Bcast distributes root's data to every rank and returns each rank's
// copy. Non-root ranks pass nil.
func (r *Rank) Bcast(root int, data []byte) []byte {
	if r.id != root {
		data = nil
	}
	return r.bcastTreeAt(tagBcast, root, data)
}

// bcastTree runs a binomial broadcast rooted at rank 0.
func (r *Rank) bcastTree(tag int, data []byte) []byte {
	return r.bcastTreeAt(tag, 0, data)
}

// bcastTreeAt runs a binomial broadcast rooted at `root`: ranks are
// relabeled so the root becomes virtual rank 0, and messages are addressed
// back through the inverse relabeling. Each rank receives from its exact
// tree parent (the virtual rank with my lowest set bit cleared) — with
// per-pair FIFO delivery this keeps back-to-back broadcasts from
// different roots from stealing each other's payloads.
func (r *Rank) bcastTreeAt(tag, root int, data []byte) []byte {
	p := r.Procs()
	vme := (r.id - root + p) % p
	if vme != 0 {
		vparent := vme & (vme - 1)
		data = r.Recv((vparent+root)%p, tag)
	}
	// mask walks from the highest power of two below p down to 1.
	mask := 1
	for mask < p {
		mask <<= 1
	}
	mask >>= 1
	// Find my level: lowest set bit (virtual rank 0 acts at every level).
	for ; mask > 0; mask >>= 1 {
		if vme&(mask-1) == 0 && vme&mask == 0 {
			vpeer := vme | mask
			if vpeer < p {
				r.Send((vpeer+root)%p, tag, data)
			}
		}
	}
	return data
}

// gatherTree runs a binomial gather to rank 0, combining payloads with
// combine (which may be nil when only synchronization is needed). It
// returns the combined value at rank 0 and nil elsewhere.
func (r *Rank) gatherTree(tag int, data []byte, combine func(a, b []byte) []byte) []byte {
	p := r.Procs()
	me := r.id
	for mask := 1; mask < p; mask <<= 1 {
		if me&mask != 0 {
			r.Send(me&^mask, tag, data)
			return nil
		}
		peer := me | mask
		if peer < p {
			got := r.Recv(peer, tag)
			if combine != nil {
				data = combine(data, got)
			}
		}
	}
	return data
}

// ReduceOp combines two float64 values.
type ReduceOp func(a, b float64) float64

// OpSum adds; OpMin and OpMax select.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMin ReduceOp = func(a, b float64) float64 {
		if b < a {
			return b
		}
		return a
	}
	OpMax ReduceOp = func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	}
)

// Reduce combines the element-wise reduction of data across ranks at rank
// 0 (binomial tree) and returns it there; other ranks get nil.
func (r *Rank) Reduce(op ReduceOp, data []float64) []float64 {
	out := r.gatherTree(tagReduce, F64sToBytes(data), func(a, b []byte) []byte {
		av, bv := BytesToF64s(a), BytesToF64s(b)
		for i := range av {
			av[i] = op(av[i], bv[i])
		}
		return F64sToBytes(av)
	})
	if r.id != 0 {
		return nil
	}
	return BytesToF64s(out)
}

// Allreduce is Reduce followed by an internal broadcast; every rank gets
// the result. The broadcast runs under its own tag: sharing tagBcast with
// application-level Bcast calls would let the two operations' payloads
// cross on a (source, tag) match whenever the tree parents coincide —
// the same aliasing that broke pre-fix nonzero-root Bcast.
func (r *Rank) Allreduce(op ReduceOp, data []float64) []float64 {
	red := r.Reduce(op, data)
	var b []byte
	if r.id == 0 {
		b = F64sToBytes(red)
	}
	return BytesToF64s(r.bcastTree(tagAllreduce, b))
}

// Gather collects each rank's data at rank 0, ordered by rank; other
// ranks get nil. (Linear, as period MPICH gathers were for small counts.)
func (r *Rank) Gather(data []byte) [][]byte {
	p := r.Procs()
	if r.id != 0 {
		r.Send(0, tagGather, data)
		return nil
	}
	out := make([][]byte, p)
	out[0] = data
	for i := 1; i < p; i++ {
		out[i] = r.Recv(i, tagGather)
	}
	return out
}

// Allgather collects each rank's data and hands every rank the
// rank-ordered concatenation (a gather at rank 0 followed by a broadcast,
// as period MPICH implemented it for small counts).
func (r *Rank) Allgather(data []byte) []byte {
	parts := r.Gather(data)
	var full []byte
	if r.id == 0 {
		for _, part := range parts {
			full = append(full, part...)
		}
	}
	return r.Bcast(0, full)
}

// Alltoall performs the complete exchange at the heart of the 3D-FFT
// transpose: chunks[i] goes to rank i; the returned slice holds the chunk
// received from each rank. Implemented pairwise (rank r exchanges with
// rank r XOR k in step k when p is a power of two, falling back to a
// shifted schedule otherwise).
func (r *Rank) Alltoall(chunks [][]byte) [][]byte {
	p := r.Procs()
	if len(chunks) != p {
		panic("mpi: Alltoall needs exactly one chunk per rank")
	}
	out := make([][]byte, p)
	out[r.id] = chunks[r.id]
	for step := 1; step < p; step++ {
		var peer int
		if p&(p-1) == 0 {
			peer = r.id ^ step
		} else {
			peer = (r.id + step) % p
		}
		recvPeer := peer
		if p&(p-1) != 0 {
			recvPeer = (r.id - step + p) % p
		}
		r.Send(peer, tagAlltoall, chunks[peer])
		out[recvPeer] = r.Recv(recvPeer, tagAlltoall)
	}
	return out
}

// Scatter distributes chunks from rank 0: rank i receives chunks[i].
// Non-root ranks pass nil.
func (r *Rank) Scatter(chunks [][]byte) []byte {
	p := r.Procs()
	if r.id == 0 {
		if len(chunks) != p {
			panic("mpi: Scatter needs exactly one chunk per rank")
		}
		for i := 1; i < p; i++ {
			r.Send(i, tagScatter, chunks[i])
		}
		return chunks[0]
	}
	return r.Recv(0, tagScatter)
}
