// Package mpi is the message-passing substrate for the paper's baseline:
// hand-coded MPI versions of the applications, run over the same simulated
// switch as the DSM but with the MPICH cost profile (TCP: 200 µs empty-
// message round trip, 8.6 MB/s maximum bandwidth — Section 6).
//
// The subset implemented is what the registered applications need: blocking
// standard-mode point-to-point with (source, tag) matching and eager
// buffering, plus binomial-tree collectives (Barrier, Bcast, Reduce,
// Allreduce, Gather, Alltoall). The paper's MPI codes send less data and
// fewer messages than TreadMarks because data and synchronization travel
// together — exactly the behaviour this package reproduces in Table 2.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/network"
	"repro/internal/sim"
)

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// Config describes an MPI world.
type Config struct {
	// Procs is the number of ranks.
	Procs int
	// Platform overrides the calibrated cost model (default
	// sim.DefaultPlatform()).
	Platform *sim.Platform
}

// World is one simulated MPI job.
type World struct {
	cfg   Config
	plat  *sim.Platform
	sw    *network.Switch
	ranks []*Rank

	errOnce sync.Once
	err     error
	done    chan struct{}
}

// Rank is one MPI process. All methods are for the rank's own goroutine.
type Rank struct {
	w       *World
	id      int
	clock   sim.Clock
	ep      *network.Endpoint
	pending []*network.Message // arrived but unmatched (eager buffering)
}

// New creates a world with cfg.Procs ranks.
func New(cfg Config) *World {
	if cfg.Procs <= 0 {
		panic("mpi: Config.Procs must be positive")
	}
	plat := cfg.Platform
	if plat == nil {
		plat = sim.DefaultPlatform()
	}
	w := &World{
		cfg:  cfg,
		plat: plat,
		sw:   network.NewSwitch(cfg.Procs, plat.TCP),
		done: make(chan struct{}),
	}
	for i := 0; i < cfg.Procs; i++ {
		r := &Rank{w: w, id: i}
		r.ep = w.sw.Endpoint(i, &r.clock)
		w.ranks = append(w.ranks, r)
	}
	return w
}

// Switch exposes the interconnect (for statistics).
func (w *World) Switch() *network.Switch { return w.sw }

// Rank returns rank i (for post-run clock and statistics reads).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// MaxClock returns the latest virtual time across ranks.
func (w *World) MaxClock() sim.Time {
	var m sim.Time
	for _, r := range w.ranks {
		if t := r.clock.Now(); t > m {
			m = t
		}
	}
	return m
}

type mpiAbort struct{ cause string }

func (e mpiAbort) Error() string { return "mpi: run aborted: " + e.cause }

// Run executes fn as every rank's program (SPMD) and returns when all
// complete, propagating the first panic as an error.
func (w *World) Run(fn func(r *Rank)) error {
	var wg sync.WaitGroup
	for _, r := range w.ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if _, isAbort := p.(mpiAbort); isAbort {
						return
					}
					w.errOnce.Do(func() {
						w.err = fmt.Errorf("mpi: rank %d: %v", r.id, p)
						close(w.done)
						w.sw.Shutdown()
					})
				}
			}()
			fn(r)
		}(r)
	}
	wg.Wait()
	w.errOnce.Do(func() {
		close(w.done)
		w.sw.Shutdown()
	})
	return w.err
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Procs returns the world size.
func (r *Rank) Procs() int { return r.w.cfg.Procs }

// Now returns the rank's virtual time.
func (r *Rank) Now() sim.Time { return r.clock.Now() }

// Compute charges the virtual cost of flops floating-point operations.
func (r *Rank) Compute(flops float64) {
	r.clock.Advance(r.w.plat.ComputeCost(flops))
}

// Send transmits data to rank `to` with the given tag. Standard mode with
// eager buffering: Send never blocks on the receiver.
func (r *Rank) Send(to, tag int, data []byte) {
	r.clock.Advance(r.w.plat.MPIOverhead)
	r.ep.Send(to, tag, network.ClassRequest, data)
}

// Recv blocks until a message from `from` (or AnySource) with the given
// tag arrives, advances the clock to its arrival, and returns its payload.
func (r *Rank) Recv(from, tag int) []byte {
	m := r.match(from, tag)
	r.clock.AdvanceTo(m.Arrive)
	r.clock.Advance(r.w.plat.MPIOverhead)
	return m.Payload
}

// RecvFrom is Recv that also reports the source rank (for AnySource).
func (r *Rank) RecvFrom(from, tag int) (int, []byte) {
	m := r.match(from, tag)
	r.clock.AdvanceTo(m.Arrive)
	r.clock.Advance(r.w.plat.MPIOverhead)
	return m.From, m.Payload
}

func matches(m *network.Message, from, tag int) bool {
	return m.Type == tag && (from == AnySource || m.From == from)
}

func (r *Rank) match(from, tag int) *network.Message {
	for i, m := range r.pending {
		if matches(m, from, tag) {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return m
		}
	}
	for {
		var m *network.Message
		select {
		case m = <-r.ep.Chan(network.ClassRequest):
		case <-r.w.done:
		}
		if m == nil {
			panic(mpiAbort{cause: "switch shut down"})
		}
		if matches(m, from, tag) {
			return m
		}
		r.pending = append(r.pending, m)
	}
}

// Sendrecv sends to `to` and receives from `from` with the same tag,
// without deadlock (both directions are buffered).
func (r *Rank) Sendrecv(to int, sendData []byte, from, tag int) []byte {
	r.Send(to, tag, sendData)
	return r.Recv(from, tag)
}

// SendF64s sends a float64 slice.
func (r *Rank) SendF64s(to, tag int, data []float64) {
	r.Send(to, tag, F64sToBytes(data))
}

// RecvF64s receives a float64 slice.
func (r *Rank) RecvF64s(from, tag int) []float64 {
	return BytesToF64s(r.Recv(from, tag))
}

// F64sToBytes encodes a float64 slice in the wire format of SendF64s —
// exported so applications can pack float payloads for Gather, Bcast, and
// the other []byte collectives without each keeping its own codec.
func F64sToBytes(data []float64) []byte {
	b := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// BytesToF64s decodes the F64sToBytes wire format.
func BytesToF64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
