package mpi

import (
	"fmt"
	"testing"
)

func runWorld(t *testing.T, procs int, fn func(r *Rank)) *World {
	t.Helper()
	w := New(Config{Procs: procs})
	if err := w.Run(fn); err != nil {
		t.Fatalf("mpi run failed: %v", err)
	}
	return w
}

func TestSendRecvOrdering(t *testing.T) {
	runWorld(t, 2, func(r *Rank) {
		const rounds = 10
		if r.ID() == 0 {
			for i := 0; i < rounds; i++ {
				r.Send(1, 5, []byte{byte(i)})
			}
		} else {
			for i := 0; i < rounds; i++ {
				got := r.Recv(0, 5)
				if got[0] != byte(i) {
					t.Errorf("round %d: got %d", i, got[0])
				}
			}
		}
	})
}

func TestRecvTagSelectivity(t *testing.T) {
	runWorld(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, []byte("seven"))
			r.Send(1, 8, []byte("eight"))
		} else {
			// Receive out of order by tag; message 7 must be buffered.
			if got := string(r.Recv(0, 8)); got != "eight" {
				t.Errorf("tag 8: got %q", got)
			}
			if got := string(r.Recv(0, 7)); got != "seven" {
				t.Errorf("tag 7: got %q", got)
			}
		}
	})
}

func TestAnySource(t *testing.T) {
	runWorld(t, 4, func(r *Rank) {
		if r.ID() == 0 {
			seen := make(map[int]bool)
			for i := 0; i < 3; i++ {
				from, body := r.RecvFrom(AnySource, 1)
				if int(body[0]) != from {
					t.Errorf("body %d from %d", body[0], from)
				}
				seen[from] = true
			}
			if len(seen) != 3 {
				t.Errorf("saw %d distinct sources, want 3", len(seen))
			}
		} else {
			r.Send(0, 1, []byte{byte(r.ID())})
		}
	})
}

func TestBarrierAndClocks(t *testing.T) {
	w := runWorld(t, 8, func(r *Rank) {
		// Rank 3 computes 5 ms of work; everyone's post-barrier clock
		// must be at least that.
		if r.ID() == 3 {
			r.Compute(500_000)
		}
		r.Barrier()
		if r.Now() < 5_000_000 {
			t.Errorf("rank %d clock %v after barrier, want >= 5ms", r.ID(), r.Now())
		}
	})
	_ = w
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(r *Rank) {
				var data []byte
				if r.ID() == 0 {
					data = []byte("hello now")
				}
				got := r.Bcast(0, data)
				if string(got) != "hello now" {
					t.Errorf("rank %d got %q", r.ID(), got)
				}
			})
		})
	}
}

func TestBcastNonzeroRoot(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(r *Rank) {
				for root := 0; root < p; root++ {
					var data []byte
					if r.ID() == root {
						data = []byte{byte(root), byte(root + 1)}
					}
					got := r.Bcast(root, data)
					if len(got) != 2 || got[0] != byte(root) || got[1] != byte(root+1) {
						t.Errorf("rank %d root %d got %v", r.ID(), root, got)
					}
				}
			})
		})
	}
}

// TestBcastBackToBack pipelines broadcasts from rotating roots with no
// intervening synchronization: payloads must never cross between steps
// (each rank receives from its exact tree parent).
func TestBcastBackToBack(t *testing.T) {
	const rounds = 32
	for _, p := range []int{3, 4, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(r *Rank) {
				for i := 0; i < rounds; i++ {
					root := i % p
					var data []byte
					if r.ID() == root {
						data = []byte{byte(i)}
					}
					got := r.Bcast(root, data)
					if len(got) != 1 || got[0] != byte(i) {
						t.Errorf("rank %d round %d got %v", r.ID(), i, got)
					}
				}
			})
		})
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(r *Rank) {
				in := []float64{float64(r.ID() + 1), 1}
				want0 := float64(p*(p+1)) / 2
				if red := r.Reduce(OpSum, in); r.ID() == 0 {
					if red[0] != want0 || red[1] != float64(p) {
						t.Errorf("reduce got %v", red)
					}
				}
				all := r.Allreduce(OpSum, in)
				if all[0] != want0 {
					t.Errorf("rank %d allreduce got %v, want %v", r.ID(), all[0], want0)
				}
				mx := r.Allreduce(OpMax, []float64{float64(r.ID())})
				if mx[0] != float64(p-1) {
					t.Errorf("allreduce max got %v", mx[0])
				}
			})
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(r *Rank) {
				got := r.Allgather([]byte{byte(r.ID()), byte(r.ID())})
				if len(got) != 2*p {
					t.Fatalf("rank %d: %d bytes, want %d", r.ID(), len(got), 2*p)
				}
				for i := 0; i < p; i++ {
					if got[2*i] != byte(i) || got[2*i+1] != byte(i) {
						t.Errorf("rank %d: chunk %d = %v", r.ID(), i, got[2*i:2*i+2])
					}
				}
			})
		})
	}
}

func TestGather(t *testing.T) {
	runWorld(t, 5, func(r *Rank) {
		out := r.Gather([]byte{byte(10 * r.ID())})
		if r.ID() == 0 {
			for i, b := range out {
				if int(b[0]) != 10*i {
					t.Errorf("slot %d = %d", i, b[0])
				}
			}
		} else if out != nil {
			t.Errorf("non-root got non-nil gather")
		}
	})
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{2, 4, 8, 6} { // power-of-two and not
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(r *Rank) {
				chunks := make([][]byte, p)
				for i := range chunks {
					chunks[i] = []byte{byte(r.ID()), byte(i)}
				}
				got := r.Alltoall(chunks)
				for i, c := range got {
					if int(c[0]) != i || int(c[1]) != r.ID() {
						t.Errorf("rank %d slot %d = %v", r.ID(), i, c)
					}
				}
			})
		})
	}
}

func TestScatter(t *testing.T) {
	runWorld(t, 4, func(r *Rank) {
		var chunks [][]byte
		if r.ID() == 0 {
			chunks = [][]byte{{0}, {10}, {20}, {30}}
		}
		got := r.Scatter(chunks)
		if int(got[0]) != 10*r.ID() {
			t.Errorf("rank %d got %d", r.ID(), got[0])
		}
	})
}

func TestSendrecvNoDeadlock(t *testing.T) {
	runWorld(t, 4, func(r *Rank) {
		p := r.Procs()
		right, left := (r.ID()+1)%p, (r.ID()-1+p)%p
		got := r.Sendrecv(right, []byte{byte(r.ID())}, left, 9)
		if int(got[0]) != left {
			t.Errorf("rank %d got %d, want %d", r.ID(), got[0], left)
		}
	})
}

func TestF64Helpers(t *testing.T) {
	runWorld(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.SendF64s(1, 2, []float64{1.5, -2.25, 1e300})
		} else {
			got := r.RecvF64s(0, 2)
			want := []float64{1.5, -2.25, 1e300}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("elem %d: %v != %v", i, got[i], want[i])
				}
			}
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	w := New(Config{Procs: 2})
	err := w.Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("rank failure")
		}
		r.Recv(1, 3) // would hang without abort
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestMessageStatsCount(t *testing.T) {
	w := New(Config{Procs: 2})
	_ = w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, make([]byte, 1000))
		} else {
			r.Recv(0, 1)
		}
	})
	msgs, bytes := w.Switch().Stats().Snapshot()
	if msgs != 1 {
		t.Errorf("messages = %d, want 1", msgs)
	}
	if bytes < 1000 {
		t.Errorf("bytes = %d, want >= 1000", bytes)
	}
}

// TestAllreduceBcastInterleaving is the regression guard for Allreduce's
// internal broadcast tag: back-to-back Allreduce / Bcast(nonzero root)
// pairs with no intervening synchronization must never cross payloads,
// which requires the internal broadcast to run under its own tag rather
// than aliasing tagBcast (whose tree shape differs per root).
func TestAllreduceBcastInterleaving(t *testing.T) {
	const rounds = 24
	for _, p := range []int{2, 3, 4, 7, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(r *Rank) {
				for i := 0; i < rounds; i++ {
					sum := r.Allreduce(OpSum, []float64{float64(r.ID() + i)})
					want := float64(p*i) + float64(p*(p-1))/2
					if sum[0] != want {
						t.Errorf("rank %d round %d allreduce = %v, want %v", r.ID(), i, sum[0], want)
					}
					root := (i + 1) % p // nonzero roots included
					var data []byte
					if r.ID() == root {
						data = []byte{byte(root), byte(i)}
					}
					got := r.Bcast(root, data)
					if len(got) != 2 || got[0] != byte(root) || got[1] != byte(i) {
						t.Errorf("rank %d round %d bcast got %v", r.ID(), i, got)
					}
				}
			})
		})
	}
}
