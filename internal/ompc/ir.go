// Package ompc is the OpenMP-to-TreadMarks compiler of Section 4.3,
// reproduced at the level that matters for the paper: the directive-
// annotated program IR, the two-phase interprocedural analysis that infers
// which memory locations must live in shared memory (and catches
// shared/private conflicts), and the fork-join transformation that
// encapsulates each parallel region into a separately runnable subroutine
// with its shared-pointer/firstprivate environment.
//
// The SUIF Fortran/C frontend is out of scope (DESIGN.md §1): programs are
// constructed as IR directly, which is exactly the representation the
// analysis of the paper operates on.
package ompc

import "fmt"

// VarKind distinguishes how a variable's storage behaves under the
// analysis: pointers cannot be redeclared when they conflict (Section
// 4.3.1: "an error is given if the variable is a pointer").
type VarKind int

// Variable kinds.
const (
	Scalar VarKind = iota
	Array
	Pointer
)

func (k VarKind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Array:
		return "array"
	case Pointer:
		return "pointer"
	}
	return fmt.Sprintf("VarKind(%d)", int(k))
}

// Sharing is a data-environment attribute from a directive clause. The
// paper's proposal (Section 3.1) makes Private the default: a variable
// with no clause in any region is private and costs nothing.
type Sharing int

// Sharing attributes.
const (
	Unspecified Sharing = iota
	Shared
	Private
	FirstPrivate
	Reduction
)

func (s Sharing) String() string {
	switch s {
	case Unspecified:
		return "unspecified"
	case Shared:
		return "shared"
	case Private:
		return "private"
	case FirstPrivate:
		return "firstprivate"
	case Reduction:
		return "reduction"
	}
	return fmt.Sprintf("Sharing(%d)", int(s))
}

// Var declares a variable: a global, or a local of one subroutine.
type Var struct {
	Name string
	Kind VarKind
	// Size in bytes of the underlying storage (used when the transform
	// allocates the variable in shared memory).
	Size int
}

// Param is a formal parameter of a subroutine. ByRef parameters alias
// their actual argument's storage — the channel through which shared
// attributes propagate along the call chain.
type Param struct {
	Name  string
	Kind  VarKind
	ByRef bool
}

// Clause attaches a sharing attribute to a variable name within one
// parallel region.
type Clause struct {
	Var     string
	Sharing Sharing
}

// Region is one parallel or parallel-do region inside a subroutine.
type Region struct {
	Name    string
	Clauses []Clause
}

// Call records a call site: callee name and the actual argument variable
// names, positionally matching the callee's params.
type Call struct {
	Callee string
	Args   []string
}

// Subroutine is one procedure of the program.
type Subroutine struct {
	Name    string
	Params  []Param
	Locals  []*Var
	Regions []*Region
	Calls   []Call
}

// Program is a whole directive-annotated program.
type Program struct {
	Globals []*Var
	Subs    []*Subroutine
}

// Loc qualifies a variable by where its storage lives: "" for globals,
// the owning subroutine's name for locals. Formal by-ref parameters have
// no storage of their own; the analysis resolves them to actual-argument
// locations.
type Loc struct {
	Sub string // "" = global
	Var string
}

func (l Loc) String() string {
	if l.Sub == "" {
		return l.Var
	}
	return l.Sub + "." + l.Var
}

func (p *Program) sub(name string) *Subroutine {
	for _, s := range p.Subs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func (p *Program) global(name string) *Var {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

func (s *Subroutine) local(name string) *Var {
	for _, v := range s.Locals {
		if v.Name == name {
			return v
		}
	}
	return nil
}

func (s *Subroutine) param(name string) (int, *Param) {
	for i := range s.Params {
		if s.Params[i].Name == name {
			return i, &s.Params[i]
		}
	}
	return -1, nil
}
