package ompc

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dsm"
)

// paperProgram builds an IR shaped like the paper's running situation:
// a main subroutine with a parallel region declaring an array shared, a
// helper that receives a pointer to it by reference, and a scratch scalar
// that is shared in one region and private in another.
func paperProgram() *Program {
	return &Program{
		Globals: []*Var{
			{Name: "grid", Kind: Array, Size: 4096},
			{Name: "scratch", Kind: Scalar, Size: 8},
		},
		Subs: []*Subroutine{
			{
				Name:   "kernel",
				Params: []Param{{Name: "g", Kind: Pointer, ByRef: true}},
				Regions: []*Region{
					{Name: "sweep", Clauses: []Clause{{Var: "g", Sharing: Shared}}},
				},
			},
			{
				Name: "main",
				Regions: []*Region{
					{Name: "init", Clauses: []Clause{
						{Var: "grid", Sharing: Shared},
						{Var: "scratch", Sharing: Shared},
					}},
					{Name: "post", Clauses: []Clause{
						{Var: "scratch", Sharing: Private},
					}},
				},
				Calls: []Call{{Callee: "kernel", Args: []string{"grid"}}},
			},
		},
	}
}

func TestPhase1SharedInference(t *testing.T) {
	an := Analyze(paperProgram())
	if err := joinErrors(an.Errors); err != nil {
		t.Fatalf("unexpected errors: %v", err)
	}
	if !an.IsShared(Loc{Var: "grid"}) {
		t.Error("grid should be shared (declared in main and passed to kernel's shared formal)")
	}
	if !an.IsShared(Loc{Var: "scratch"}) {
		t.Error("scratch should be shared (declared shared in main/init)")
	}
}

func TestPhase1PropagatesThroughCallChain(t *testing.T) {
	// leaf marks its by-ref formal shared; mid passes its own formal
	// down; top passes a local array. The local must end up shared.
	p := &Program{
		Subs: []*Subroutine{
			{
				Name:   "leaf",
				Params: []Param{{Name: "x", Kind: Pointer, ByRef: true}},
				Regions: []*Region{
					{Name: "r", Clauses: []Clause{{Var: "x", Sharing: Shared}}},
				},
			},
			{
				Name:   "mid",
				Params: []Param{{Name: "y", Kind: Pointer, ByRef: true}},
				Calls:  []Call{{Callee: "leaf", Args: []string{"y"}}},
			},
			{
				Name:   "top",
				Locals: []*Var{{Name: "buf", Kind: Array, Size: 128}},
				Calls:  []Call{{Callee: "mid", Args: []string{"buf"}}},
			},
		},
	}
	an := Analyze(p)
	if err := joinErrors(an.Errors); err != nil {
		t.Fatalf("unexpected errors: %v", err)
	}
	if !an.IsShared(Loc{Sub: "top", Var: "buf"}) {
		t.Errorf("top.buf should be shared via leaf←mid←top chain; shared = %v", an.SharedLocs)
	}
	if got := an.SharedParams["mid"]; len(got) != 1 || got[0] != "y" {
		t.Errorf("mid's formal y should be marked shared, got %v", got)
	}
}

func TestPhase2DownwardPropagation(t *testing.T) {
	// main declares global `table` shared and passes it to helper, which
	// has no directives of its own: phase 2 must still mark helper's
	// formal as referring to shared data.
	p := &Program{
		Globals: []*Var{{Name: "table", Kind: Array, Size: 64}},
		Subs: []*Subroutine{
			{
				Name:   "helper",
				Params: []Param{{Name: "t", Kind: Pointer, ByRef: true}},
			},
			{
				Name: "main",
				Regions: []*Region{
					{Name: "r", Clauses: []Clause{{Var: "table", Sharing: Shared}}},
				},
				Calls: []Call{{Callee: "helper", Args: []string{"table"}}},
			},
		},
	}
	an := Analyze(p)
	if err := joinErrors(an.Errors); err != nil {
		t.Fatalf("unexpected errors: %v", err)
	}
	if got := an.SharedParams["helper"]; len(got) != 1 || got[0] != "t" {
		t.Errorf("helper's formal t should be marked shared by phase 2, got %v", got)
	}
}

func TestScalarConflictRedeclared(t *testing.T) {
	an := Analyze(paperProgram())
	if len(an.Redeclared) != 1 || an.Redeclared[0] != (Loc{Var: "scratch"}) {
		t.Errorf("scratch should be redeclared (shared in init, private in post); got %v", an.Redeclared)
	}
}

func TestPointerConflictIsError(t *testing.T) {
	p := &Program{
		Globals: []*Var{{Name: "ptr", Kind: Pointer, Size: 8}},
		Subs: []*Subroutine{{
			Name: "main",
			Regions: []*Region{
				{Name: "a", Clauses: []Clause{{Var: "ptr", Sharing: Shared}}},
				{Name: "b", Clauses: []Clause{{Var: "ptr", Sharing: Private}}},
			},
		}},
	}
	an := Analyze(p)
	err := joinErrors(an.Errors)
	if err == nil || !strings.Contains(err.Error(), "pointer") {
		t.Fatalf("expected pointer conflict error, got %v", err)
	}
}

func TestRecursionRejected(t *testing.T) {
	p := &Program{
		Subs: []*Subroutine{
			{Name: "a", Calls: []Call{{Callee: "b"}}},
			{Name: "b", Calls: []Call{{Callee: "a"}}},
		},
	}
	an := Analyze(p)
	err := joinErrors(an.Errors)
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("expected recursion error, got %v", err)
	}
}

func TestUnknownVariableReported(t *testing.T) {
	p := &Program{
		Subs: []*Subroutine{{
			Name:    "main",
			Regions: []*Region{{Name: "r", Clauses: []Clause{{Var: "ghost", Sharing: Shared}}}},
		}},
	}
	an := Analyze(p)
	if joinErrors(an.Errors) == nil {
		t.Fatal("expected unknown-variable error")
	}
}

func TestPrivateByDefault(t *testing.T) {
	// A variable with no clause anywhere must not be placed in shared
	// memory — the paper's Section 3.1 proposal.
	p := &Program{
		Globals: []*Var{{Name: "quiet", Kind: Scalar, Size: 8}},
		Subs: []*Subroutine{{
			Name:    "main",
			Regions: []*Region{{Name: "r"}},
		}},
	}
	an := Analyze(p)
	if an.IsShared(Loc{Var: "quiet"}) {
		t.Error("undeclared variable must default to private")
	}
	if len(an.SharedLocs) != 0 {
		t.Errorf("nothing should be shared, got %v", an.SharedLocs)
	}
}

func TestCompileAndRunEndToEnd(t *testing.T) {
	// Compile a small program and actually run its region on 4 threads:
	// the region sums its thread number into a shared accumulator array
	// via the environment, proving analysis → allocation → fork-join.
	const P = 4
	ir := &Program{
		Globals: []*Var{{Name: "acc", Kind: Array, Size: 8 * P}},
		Subs: []*Subroutine{{
			Name: "main",
			Regions: []*Region{{
				Name:    "work",
				Clauses: []Clause{{Var: "acc", Sharing: Shared}},
			}},
		}},
	}
	bodies := map[string]Body{
		"main/work": func(tc *core.TC, env *Env) {
			a := env.Addr("acc")
			tc.WriteI64(a+dsm.Addr(8*tc.ThreadNum()), int64(10+tc.ThreadNum()))
		},
	}
	c, err := Compile(ir, core.Config{Threads: P}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(m *core.MC) {
		m.Parallel("main/work", core.NoArgs())
		env := c.Env("main")
		for i := 0; i < P; i++ {
			if got := m.ReadI64(env.Addr("acc") + dsm.Addr(8*i)); got != int64(10+i) {
				t.Errorf("acc[%d] = %d, want %d", i, got, 10+i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompileRejectsUnmatchedBody(t *testing.T) {
	ir := &Program{Subs: []*Subroutine{{Name: "main"}}}
	_, err := Compile(ir, core.Config{Threads: 1}, map[string]Body{
		"main/nosuch": func(tc *core.TC, env *Env) {},
	})
	if err == nil {
		t.Fatal("expected error for body without matching region")
	}
}

func TestEnvPanicsOnPrivate(t *testing.T) {
	ir := &Program{
		Globals: []*Var{{Name: "p", Kind: Scalar, Size: 8}},
		Subs:    []*Subroutine{{Name: "main", Regions: []*Region{{Name: "r"}}}},
	}
	c, err := Compile(ir, core.Config{Threads: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic addressing a private variable through Env")
		}
	}()
	c.Env("main").Addr("p")
}
