package ompc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsm"
)

// The fork-join transformation of Section 4.3.2: "Our compiler translates
// the sequential program annotated with a subset of OpenMP directives into
// a fork-join parallel program. The compiler encapsulates each parallel
// region into a separate subroutine... At the beginning of a parallel
// region the master passes a pointer to this subroutine to the slaves at
// the time of the fork."
//
// Here the "separate subroutine" is a region registered with the core
// runtime under "subroutine/region", and the shared variables the analysis
// relocated to DSM memory are resolved through an Env.

// Body is an executable parallel-region body attached to an IR region.
type Body func(tc *core.TC, env *Env)

// Env resolves the names a region can see to their shared-memory
// addresses (for locations the analysis relocated to the DSM).
type Env struct {
	addrs map[Loc]dsm.Addr
	sub   string
}

// Addr returns the shared address of a variable name visible in the
// region's subroutine (its own locals first, then globals). It panics on
// names the analysis did not place in shared memory — by construction the
// compiled code can only address shared storage through the environment.
func (e *Env) Addr(name string) dsm.Addr {
	if a, ok := e.addrs[Loc{Sub: e.sub, Var: name}]; ok {
		return a
	}
	if a, ok := e.addrs[Loc{Var: name}]; ok {
		return a
	}
	panic(fmt.Sprintf("ompc: variable %q is not in shared memory (analysis marked it private)", name))
}

// Compiled is the output of Compile: a runnable fork-join program with its
// shared-data layout.
type Compiled struct {
	Analysis *Analysis
	Prog     *core.Program
	ir       *Program
	addrs    map[Loc]dsm.Addr
	bodies   map[string]Body
}

// Close releases the compiled program's backend (see core.Program.Close).
func (c *Compiled) Close() error { return c.Prog.Close() }

// AnalysisErrors joins the analysis findings into one error, or nil.
func joinErrors(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "; " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// Compile analyzes the program, allocates every shared location in DSM
// memory, and registers each executable region body with the runtime.
// bodies maps "subroutine/region" to the code to run.
func Compile(ir *Program, cfg core.Config, bodies map[string]Body) (*Compiled, error) {
	an := Analyze(ir)
	if err := joinErrors(an.Errors); err != nil {
		return nil, err
	}
	prog := core.NewProgram(cfg)
	c := &Compiled{Analysis: an, Prog: prog, ir: ir, addrs: make(map[Loc]dsm.Addr), bodies: bodies}

	// "The compiler then allocates shared variables on the shared
	// memory." Each relocated location gets its own page-aligned block so
	// logically unrelated variables never false-share.
	for _, loc := range an.SharedLocs {
		v := ir.locVar(loc)
		size := 8
		if v != nil && v.Size > 0 {
			size = v.Size
		}
		c.addrs[loc] = prog.SharedPage(size)
	}

	// Register one runtime region per IR region with a body.
	claimed := make(map[string]bool)
	for _, s := range ir.Subs {
		for _, r := range s.Regions {
			key := s.Name + "/" + r.Name
			body, ok := bodies[key]
			if !ok {
				continue
			}
			claimed[key] = true
			env := &Env{addrs: c.addrs, sub: s.Name}
			prog.RegisterRegion(key, func(tc *core.TC) { body(tc, env) })
		}
	}
	for key := range bodies {
		if !claimed[key] {
			return nil, fmt.Errorf("ompc: body %q does not match any subroutine/region in the IR", key)
		}
	}
	return c, nil
}

// SharedAddr returns the allocated address of a shared location.
func (c *Compiled) SharedAddr(loc Loc) (dsm.Addr, bool) {
	a, ok := c.addrs[loc]
	return a, ok
}

// Env returns the name-resolution environment of one subroutine (for the
// master's sequential code).
func (c *Compiled) Env(sub string) *Env {
	return &Env{addrs: c.addrs, sub: sub}
}

// Run executes the compiled program's master function; inside it,
// m.Parallel("subroutine/region", args) opens the transformed regions.
func (c *Compiled) Run(master func(m *core.MC)) error {
	return c.Prog.Run(master)
}
