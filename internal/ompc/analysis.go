package ompc

import (
	"fmt"
	"sort"
)

// Analysis is the result of the two-phase compiler analysis of Section
// 4.3.1: which storage locations must be allocated in shared memory,
// which variables need per-region redeclaration, and any errors.
type Analysis struct {
	// SharedLocs lists every storage location (global or subroutine
	// local) that must be relocated to the shared address space.
	SharedLocs []Loc
	// Redeclared lists locations declared shared in one region and
	// private in another: non-pointers get a private copy in the regions
	// that declare them private ("the compiler resorts to the hardware
	// shared memory solution for private variables and redeclares the
	// variable", Section 3.1).
	Redeclared []Loc
	// SharedParams records, per subroutine, which by-ref formal
	// parameters carry pointers to shared data (phase 2's downward
	// propagation).
	SharedParams map[string][]string
	// Errors collects fatal findings: recursion, unknown names, and
	// pointer variables with conflicting shared/private declarations.
	Errors []error
}

// IsShared reports whether the analysis placed loc in shared memory.
func (a *Analysis) IsShared(loc Loc) bool {
	for _, l := range a.SharedLocs {
		if l == loc {
			return true
		}
	}
	return false
}

// Analyze runs both phases. "In the absence of recursion and variable
// subroutine names each can be done by one pass over the subroutines."
// (Section 4.3.1.)
func Analyze(p *Program) *Analysis {
	a := &Analysis{SharedParams: make(map[string][]string)}

	order, err := calleeFirst(p)
	if err != nil {
		a.Errors = append(a.Errors, err)
		return a
	}

	// sharing[loc] accumulates every attribute a location receives
	// across all regions (to detect conflicts in phase 2).
	sharedSet := make(map[Loc]bool)
	privateSet := make(map[Loc]bool)
	// sharedFormals[sub][param] marks formals that must refer to shared
	// storage, as established by clauses in the callee or its callees.
	sharedFormals := make(map[string]map[string]bool)
	for _, s := range p.Subs {
		sharedFormals[s.Name] = make(map[string]bool)
	}

	// resolve maps a name used inside sub to the storage location it
	// denotes, or to a formal parameter (loc.Sub == sub.Name, isParam).
	resolve := func(s *Subroutine, name string) (Loc, bool, error) {
		if _, prm := s.param(name); prm != nil {
			return Loc{Sub: s.Name, Var: name}, true, nil
		}
		if s.local(name) != nil {
			return Loc{Sub: s.Name, Var: name}, false, nil
		}
		if p.global(name) != nil {
			return Loc{Var: name}, false, nil
		}
		return Loc{}, false, fmt.Errorf("ompc: %s: unknown variable %q", s.Name, name)
	}

	// --- Phase 1: callees first. "The subroutines are sorted so that a
	// callee always appears before its callers... An actual parameter is
	// marked shared if the variable is passed by reference and the
	// corresponding formal parameter is already marked shared in the
	// callee." ---
	for _, s := range order {
		// Directive clauses inside this subroutine's regions.
		for _, r := range s.Regions {
			for _, c := range r.Clauses {
				loc, isParam, err := resolve(s, c.Var)
				if err != nil {
					a.Errors = append(a.Errors, err)
					continue
				}
				switch c.Sharing {
				case Shared, Reduction:
					if isParam {
						sharedFormals[s.Name][c.Var] = true
					} else {
						sharedSet[loc] = true
					}
				case Private, FirstPrivate:
					if !isParam {
						privateSet[loc] = true
					}
				}
			}
		}
		// Propagate from this subroutine's callees (already processed).
		for _, call := range s.Calls {
			callee := p.sub(call.Callee)
			if callee == nil {
				a.Errors = append(a.Errors, fmt.Errorf("ompc: %s calls unknown subroutine %q", s.Name, call.Callee))
				continue
			}
			if len(call.Args) != len(callee.Params) {
				a.Errors = append(a.Errors, fmt.Errorf("ompc: %s calls %s with %d args, want %d",
					s.Name, callee.Name, len(call.Args), len(callee.Params)))
				continue
			}
			for i, actual := range call.Args {
				formal := callee.Params[i]
				if !formal.ByRef || !sharedFormals[callee.Name][formal.Name] {
					continue
				}
				loc, isParam, err := resolve(s, actual)
				if err != nil {
					a.Errors = append(a.Errors, err)
					continue
				}
				if isParam {
					sharedFormals[s.Name][actual] = true
				} else {
					sharedSet[loc] = true
				}
			}
		}
	}

	// --- Phase 2: callers first. "if a pointer to the shared data is
	// passed down in a subroutine call, the corresponding formal
	// parameter is marked shared" — and conflicts are detected. ---
	for i := len(order) - 1; i >= 0; i-- {
		s := order[i]
		for _, call := range s.Calls {
			callee := p.sub(call.Callee)
			if callee == nil || len(call.Args) != len(callee.Params) {
				continue // already reported in phase 1
			}
			for j, actual := range call.Args {
				formal := callee.Params[j]
				if !formal.ByRef {
					continue
				}
				loc, isParam, err := resolve(s, actual)
				if err != nil {
					continue
				}
				actualShared := (isParam && sharedFormals[s.Name][actual]) || (!isParam && sharedSet[loc])
				if actualShared {
					sharedFormals[callee.Name][formal.Name] = true
				}
			}
		}
	}

	// Conflicts: a location both shared and private across regions.
	for loc := range sharedSet {
		if !privateSet[loc] {
			continue
		}
		v := p.locVar(loc)
		if v != nil && v.Kind == Pointer {
			a.Errors = append(a.Errors,
				fmt.Errorf("ompc: pointer %s declared both shared and private in different parallel regions", loc))
			continue
		}
		a.Redeclared = append(a.Redeclared, loc)
	}

	for loc := range sharedSet {
		a.SharedLocs = append(a.SharedLocs, loc)
	}
	sort.Slice(a.SharedLocs, func(i, j int) bool {
		if a.SharedLocs[i].Sub != a.SharedLocs[j].Sub {
			return a.SharedLocs[i].Sub < a.SharedLocs[j].Sub
		}
		return a.SharedLocs[i].Var < a.SharedLocs[j].Var
	})
	sort.Slice(a.Redeclared, func(i, j int) bool { return a.Redeclared[i].String() < a.Redeclared[j].String() })
	for sub, formals := range sharedFormals {
		for f := range formals {
			a.SharedParams[sub] = append(a.SharedParams[sub], f)
		}
		sort.Strings(a.SharedParams[sub])
	}
	return a
}

// locVar finds the Var declaration behind a storage location.
func (p *Program) locVar(loc Loc) *Var {
	if loc.Sub == "" {
		return p.global(loc.Var)
	}
	if s := p.sub(loc.Sub); s != nil {
		return s.local(loc.Var)
	}
	return nil
}

// calleeFirst topologically sorts the call graph with callees before
// callers, reporting recursion as an error (the paper's analysis assumes
// its absence).
func calleeFirst(p *Program) ([]*Subroutine, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var order []*Subroutine
	var visit func(s *Subroutine, path []string) error
	visit = func(s *Subroutine, path []string) error {
		switch color[s.Name] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("ompc: recursion detected through %q (path %v): not supported by the analysis", s.Name, path)
		}
		color[s.Name] = grey
		for _, c := range s.Calls {
			callee := p.sub(c.Callee)
			if callee == nil {
				continue // reported later by phase 1
			}
			if err := visit(callee, append(path, s.Name)); err != nil {
				return err
			}
		}
		color[s.Name] = black
		order = append(order, s)
		return nil
	}
	for _, s := range p.Subs {
		if err := visit(s, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
