package core

import (
	"testing"
)

// backends lists every execution substrate; the runtime tests below run
// identically on each, which is the first half of the backend-seam
// contract (conformance_test.go adds the cross-backend comparisons). The
// hybrid backend appears at three island counts: the all-local degenerate
// (1), a genuine NOW-of-SMPs split (2), and — via clamping of a large
// count — one thread per island, the pure-NOW degenerate.
var backends = []BackendKind{
	BackendNOW,
	BackendSMP,
	HybridIslands(1),
	HybridIslands(2),
	HybridIslands(1 << 20), // clamps to islands == procs
}

// forEachBackend runs fn as a subtest per backend.
func forEachBackend(t *testing.T, fn func(t *testing.T, bk BackendKind)) {
	for _, bk := range backends {
		bk := bk
		t.Run(string(bk), func(t *testing.T) { fn(t, bk) })
	}
}

func TestParallelRegionThreadNumbers(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		const P = 4
		p := NewProgram(Config{Threads: P, Backend: bk})
		seen := p.SharedPage(8 * P)
		p.RegisterRegion("ids", func(tc *TC) {
			tc.WriteI64(seen+Addr(8*tc.ThreadNum()), int64(tc.ThreadNum()+1))
			if tc.NumThreads() != P {
				t.Errorf("NumThreads = %d, want %d", tc.NumThreads(), P)
			}
		})
		err := p.Run(func(m *MC) {
			m.Parallel("ids", NoArgs())
			for i := 0; i < P; i++ {
				if got := m.ReadI64(seen + Addr(8*i)); got != int64(i+1) {
					t.Errorf("thread %d wrote %d", i, got)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestParallelDoStaticSchedule(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		const P, N = 4, 103
		p := NewProgram(Config{Threads: P, Backend: bk})
		marks := p.SharedPage(8 * N)
		p.RegisterDo("mark", func(tc *TC, lo, hi int) {
			for i := lo; i < hi; i++ {
				tc.WriteI64(marks+Addr(8*i), int64(tc.ThreadNum()+1))
			}
		})
		err := p.Run(func(m *MC) {
			m.ParallelDo("mark", 0, N, NoArgs())
			covered := 0
			for i := 0; i < N; i++ {
				v := m.ReadI64(marks + Addr(8*i))
				if v < 1 || v > P {
					t.Fatalf("iteration %d never executed (mark %d)", i, v)
				}
				covered++
			}
			if covered != N {
				t.Errorf("covered %d of %d iterations", covered, N)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestStaticBlockPartition(t *testing.T) {
	for _, tt := range []struct{ lo, hi, of int }{
		{0, 100, 4}, {0, 7, 8}, {5, 5, 3}, {-10, 10, 3}, {0, 1, 1},
	} {
		total := 0
		prevEnd := tt.lo
		for w := 0; w < tt.of; w++ {
			lo, hi := StaticBlock(tt.lo, tt.hi, w, tt.of)
			if lo != prevEnd {
				t.Errorf("block %d of %v starts at %d, want %d", w, tt, lo, prevEnd)
			}
			if hi < lo {
				t.Errorf("block %d of %v inverted: [%d,%d)", w, tt, lo, hi)
			}
			total += hi - lo
			prevEnd = hi
		}
		if want := max(0, tt.hi-tt.lo); total != want {
			t.Errorf("partition of %v covers %d, want %d", tt, total, want)
		}
		if prevEnd != tt.hi && tt.hi > tt.lo {
			t.Errorf("partition of %v ends at %d, want %d", tt, prevEnd, tt.hi)
		}
	}
}

func TestFirstprivateArgs(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		const P = 3
		p := NewProgram(Config{Threads: P, Backend: bk})
		sum := p.SharedPage(8)
		out := p.SharedPage(8 * P)
		p.RegisterRegion("fp", func(tc *TC) {
			r := tc.Args()
			base := r.Int()
			scale := r.F64()
			target := r.Addr()
			blob := r.Bytes()
			v := int64(float64(base)*scale) + int64(len(blob))
			tc.WriteI64(target+Addr(8*tc.ThreadNum()), v)
		})
		err := p.Run(func(m *MC) {
			m.WriteI64(sum, 0)
			args := NoArgs().Int(10).F64(2.5).Addr(out).Bytes([]byte{1, 2, 3})
			m.Parallel("fp", args)
			for i := 0; i < P; i++ {
				if got := m.ReadI64(out + Addr(8*i)); got != 28 {
					t.Errorf("thread %d computed %d, want 28", i, got)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestCriticalMutualExclusion(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		const P, iters = 6, 20
		p := NewProgram(Config{Threads: P, Backend: bk})
		ctr := p.SharedPage(8)
		p.RegisterRegion("inc", func(tc *TC) {
			for i := 0; i < iters; i++ {
				tc.Critical("ctr", func() {
					tc.WriteI64(ctr, tc.ReadI64(ctr)+1)
				})
			}
		})
		err := p.Run(func(m *MC) {
			m.Parallel("inc", NoArgs())
			if got := m.ReadI64(ctr); got != P*iters {
				t.Errorf("counter = %d, want %d", got, P*iters)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestScalarReductions(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		const P = 5
		p := NewProgram(Config{Threads: P, Backend: bk})
		sum := p.NewReduction(OpSum)
		mx := p.NewReduction(OpMax)
		mn := p.NewReduction(OpMin)
		p.RegisterRegion("red", func(tc *TC) {
			v := float64(tc.ThreadNum() + 1)
			sum.Reduce(tc, v)
			mx.Reduce(tc, v)
			mn.Reduce(tc, v)
		})
		err := p.Run(func(m *MC) {
			sum.Reset(&m.TC)
			mx.Reset(&m.TC)
			mn.Reset(&m.TC)
			m.Parallel("red", NoArgs())
			if got := sum.Value(&m.TC); got != P*(P+1)/2 {
				t.Errorf("sum = %v, want %v", got, P*(P+1)/2)
			}
			if got := mx.Value(&m.TC); got != P {
				t.Errorf("max = %v, want %v", got, P)
			}
			if got := mn.Value(&m.TC); got != 1 {
				t.Errorf("min = %v, want 1", got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestArrayReduction(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		const P, N = 4, 37
		p := NewProgram(Config{Threads: P, Backend: bk})
		ar := p.NewArrayReduction(OpSum, N)
		p.RegisterRegion("ared", func(tc *TC) {
			local := make([]float64, N)
			for i := range local {
				local[i] = float64((tc.ThreadNum() + 1) * i)
			}
			ar.Reduce(tc, local)
		})
		err := p.Run(func(m *MC) {
			ar.Reset(&m.TC)
			m.Parallel("ared", NoArgs())
			got := make([]float64, N)
			ar.Value(&m.TC, got)
			factor := float64(P * (P + 1) / 2)
			for i := range got {
				if want := factor * float64(i); got[i] != want {
					t.Errorf("elem %d = %v, want %v", i, got[i], want)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestThreadprivatePersistsAcrossRegions(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		const P = 3
		p := NewProgram(Config{Threads: P, Backend: bk})
		out := p.SharedPage(8 * P)
		p.RegisterRegion("tp1", func(tc *TC) {
			buf := tc.Threadprivate("state", 8)
			buf[0] = byte(tc.ThreadNum() + 7)
		})
		p.RegisterRegion("tp2", func(tc *TC) {
			buf := tc.Threadprivate("state", 8)
			tc.WriteI64(out+Addr(8*tc.ThreadNum()), int64(buf[0]))
		})
		err := p.Run(func(m *MC) {
			m.Parallel("tp1", NoArgs())
			m.Parallel("tp2", NoArgs())
			for i := 0; i < P; i++ {
				if got := m.ReadI64(out + Addr(8*i)); got != int64(i+7) {
					t.Errorf("thread %d threadprivate = %d, want %d", i, got, i+7)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestSemaphorePipelineDirectives(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		// Figure 3 of the paper through the OpenMP layer.
		const rounds = 8
		p := NewProgram(Config{Threads: 2, Backend: bk})
		data := p.SharedPage(8)
		var consumed []int64
		p.RegisterRegion("pipe", func(tc *TC) {
			const avail, done = 1, 2
			if tc.ThreadNum() == 0 {
				for i := 0; i < rounds; i++ {
					tc.WriteI64(data, int64(3*i))
					tc.SemaSignal(avail)
					tc.SemaWait(done)
				}
			} else {
				for i := 0; i < rounds; i++ {
					tc.SemaWait(avail)
					consumed = append(consumed, tc.ReadI64(data))
					tc.SemaSignal(done)
				}
			}
		})
		if err := p.Run(func(m *MC) { m.Parallel("pipe", NoArgs()) }); err != nil {
			t.Fatal(err)
		}
		if len(consumed) != rounds {
			t.Fatalf("consumed %d rounds, want %d", len(consumed), rounds)
		}
		for i, v := range consumed {
			if v != int64(3*i) {
				t.Errorf("round %d consumed %d, want %d", i, v, 3*i)
			}
		}
	})
}

func TestBarrierDirective(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bk BackendKind) {
		const P = 4
		p := NewProgram(Config{Threads: P, Backend: bk})
		a := p.SharedPage(8 * P)
		ok := p.SharedPage(8 * P)
		p.RegisterRegion("twophase", func(tc *TC) {
			me := tc.ThreadNum()
			tc.WriteI64(a+Addr(8*me), int64(me*me))
			tc.Barrier()
			nxt := (me + 1) % P
			if got := tc.ReadI64(a + Addr(8*nxt)); got == int64(nxt*nxt) {
				tc.WriteI64(ok+Addr(8*me), 1)
			}
		})
		err := p.Run(func(m *MC) {
			m.Parallel("twophase", NoArgs())
			for i := 0; i < P; i++ {
				if m.ReadI64(ok+Addr(8*i)) != 1 {
					t.Errorf("thread %d did not observe neighbour's pre-barrier write", i)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestElapsedAndTraffic(t *testing.T) {
	p := NewProgram(Config{Threads: 2})
	p.RegisterRegion("w", func(tc *TC) { tc.Compute(1000); tc.Barrier() })
	if err := p.Run(func(m *MC) { m.Parallel("w", NoArgs()) }); err != nil {
		t.Fatal(err)
	}
	if p.Elapsed() <= 0 {
		t.Error("Elapsed() = 0 after a run with work")
	}
	msgs, bytes := p.Traffic()
	if msgs == 0 || bytes == 0 {
		t.Errorf("no traffic recorded: msgs=%d bytes=%d", msgs, bytes)
	}
}

// TestSMPZeroTraffic pins the SMP backend's defining property: hardware
// shared memory moves no interconnect messages and keeps no protocol
// metadata, while virtual time still advances with the computation.
func TestSMPZeroTraffic(t *testing.T) {
	p := NewProgram(Config{Threads: 4, Backend: BackendSMP})
	a := p.SharedPage(8 * 1024)
	p.RegisterDo("w", func(tc *TC, lo, hi int) {
		for i := lo; i < hi; i++ {
			tc.WriteF64(a+Addr(8*i), float64(i))
		}
		tc.Compute(float64(hi - lo))
		tc.Barrier()
	})
	if err := p.Run(func(m *MC) { m.ParallelDo("w", 0, 1024, NoArgs()) }); err != nil {
		t.Fatal(err)
	}
	if p.Elapsed() <= 0 {
		t.Error("Elapsed() = 0 after a run with work")
	}
	if msgs, bytes := p.Traffic(); msgs != 0 || bytes != 0 {
		t.Errorf("SMP backend reported traffic: msgs=%d bytes=%d", msgs, bytes)
	}
	if r, c, b := p.ProtoSummary(); r != 0 || c != 0 || b != 0 {
		t.Errorf("SMP backend reported protocol metadata: %d %d %d", r, c, b)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
