package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dsm"
)

// The backend-seam conformance suite: every core primitive is exercised
// by a deterministic scenario that runs once per backend, and the
// OBSERVABLE RESULTS — shared-memory contents, reduction values,
// firstprivate round-trips, synchronization orderings — must be
// identical across backends. This is the contract that lets one
// application source target the NOW and the SMP interchangeably; a new
// backend is conformant when this suite passes unchanged.
//
// Scenarios are built so their observable output is schedule-independent
// (per-thread slots, commutative integer-valued reductions, semaphore
// pipelines): anything less would encode one backend's scheduling into
// the expectation.

// conformanceScenario runs a program on one backend and returns its
// observable result.
type conformanceScenario struct {
	name string
	run  func(t *testing.T, bk BackendKind) interface{}
}

var conformanceScenarios = []conformanceScenario{
	{
		// Barrier ordering: writes before a barrier are visible after it,
		// on every thread, across two phases.
		name: "barrier-ordering",
		run: func(t *testing.T, bk BackendKind) interface{} {
			const P = 8
			p := NewProgram(Config{Threads: P, Backend: bk})
			a := p.SharedPage(8 * P)
			sums := p.SharedPage(8 * P)
			p.RegisterRegion("phases", func(tc *TC) {
				me := tc.ThreadNum()
				tc.WriteI64(a+Addr(8*me), int64(1+me))
				tc.Barrier()
				var s int64
				for i := 0; i < P; i++ {
					s += tc.ReadI64(a + Addr(8*i))
				}
				tc.Barrier()
				tc.WriteI64(a+Addr(8*me), int64(10*(1+me)))
				tc.Barrier()
				for i := 0; i < P; i++ {
					s += tc.ReadI64(a + Addr(8*i))
				}
				tc.WriteI64(sums+Addr(8*me), s)
			})
			out := make([]int64, P)
			if err := p.Run(func(m *MC) {
				m.Parallel("phases", NoArgs())
				for i := range out {
					out[i] = m.ReadI64(sums + Addr(8*i))
				}
			}); err != nil {
				t.Fatal(err)
			}
			return out
		},
	},
	{
		// Critical exclusion: a read-modify-write counter under a named
		// critical section loses no updates; a second named section is
		// independent.
		name: "critical-exclusion",
		run: func(t *testing.T, bk BackendKind) interface{} {
			const P, iters = 6, 25
			p := NewProgram(Config{Threads: P, Backend: bk})
			ctr := p.SharedPage(16)
			p.RegisterRegion("inc", func(tc *TC) {
				for i := 0; i < iters; i++ {
					tc.Critical("a", func() {
						tc.WriteI64(ctr, tc.ReadI64(ctr)+1)
					})
					if i%5 == 0 {
						tc.Critical("b", func() {
							tc.WriteI64(ctr+8, tc.ReadI64(ctr+8)+2)
						})
					}
				}
			})
			var got [2]int64
			if err := p.Run(func(m *MC) {
				m.Parallel("inc", NoArgs())
				got[0] = m.ReadI64(ctr)
				got[1] = m.ReadI64(ctr + 8)
			}); err != nil {
				t.Fatal(err)
			}
			return got
		},
	},
	{
		// Semaphore handoff: a two-stage pipeline must deliver every value
		// in order through the paper's sema_signal/sema_wait pair.
		name: "semaphore-handoff",
		run: func(t *testing.T, bk BackendKind) interface{} {
			const rounds = 12
			p := NewProgram(Config{Threads: 3, Backend: bk})
			d01 := p.SharedPage(8)
			d12 := p.SharedPage(8)
			outA := p.SharedPage(8 * rounds)
			const s01, a01, s12, a12 = 1, 2, 3, 4
			p.RegisterRegion("pipe3", func(tc *TC) {
				switch tc.ThreadNum() {
				case 0:
					for i := 0; i < rounds; i++ {
						tc.WriteI64(d01, int64(i*i))
						tc.SemaSignal(s01)
						tc.SemaWait(a01)
					}
				case 1:
					for i := 0; i < rounds; i++ {
						tc.SemaWait(s01)
						v := tc.ReadI64(d01)
						tc.SemaSignal(a01)
						tc.WriteI64(d12, v+1)
						tc.SemaSignal(s12)
						tc.SemaWait(a12)
					}
				case 2:
					for i := 0; i < rounds; i++ {
						tc.SemaWait(s12)
						tc.WriteI64(outA+Addr(8*i), tc.ReadI64(d12))
						tc.SemaSignal(a12)
					}
				}
			})
			out := make([]int64, rounds)
			if err := p.Run(func(m *MC) {
				m.Parallel("pipe3", NoArgs())
				for i := range out {
					out[i] = m.ReadI64(outA + Addr(8*i))
				}
			}); err != nil {
				t.Fatal(err)
			}
			return out
		},
	},
	{
		// Condition variables: the Figure 4 task queue drains exactly the
		// enqueued set, with the nwait broadcast terminating every worker.
		name: "condvar-taskqueue",
		run: func(t *testing.T, bk BackendKind) interface{} {
			const P, tasks = 4, 40
			p := NewProgram(Config{Threads: P, Backend: bk})
			head := p.SharedPage(8)
			tail := p.Shared(8)
			nwait := p.Shared(8)
			ring := p.SharedPage(8 * tasks)
			done := p.SharedPage(8 * tasks)
			const cond = 0
			const crit = "q"
			p.RegisterRegion("drain", func(tc *TC) {
				for {
					var task int64 = -1
					tc.CriticalEnter(crit)
					for {
						h, tl := tc.ReadI64(head), tc.ReadI64(tail)
						if h < tl {
							task = tc.ReadI64(ring + Addr(8*h))
							tc.WriteI64(head, h+1)
							break
						}
						nw := tc.ReadI64(nwait) + 1
						tc.WriteI64(nwait, nw)
						if nw == P {
							tc.CondBroadcast(cond, crit)
							break
						}
						tc.CondWait(cond, crit)
						if tc.ReadI64(nwait) == P {
							break
						}
						tc.WriteI64(nwait, tc.ReadI64(nwait)-1)
					}
					tc.CriticalExit(crit)
					if task < 0 {
						return
					}
					tc.WriteI64(done+Addr(8*task), task*task)
				}
			})
			out := make([]int64, tasks)
			if err := p.Run(func(m *MC) {
				for i := 0; i < tasks; i++ {
					m.WriteI64(ring+Addr(8*i), int64(i))
				}
				m.WriteI64(tail, tasks)
				m.Parallel("drain", NoArgs())
				for i := range out {
					out[i] = m.ReadI64(done + Addr(8*i))
				}
			}); err != nil {
				t.Fatal(err)
			}
			return out
		},
	},
	{
		// Reductions: scalar sum/prod/min/max and an array reduction over
		// integer-valued floats (exact under any combining order).
		name: "reduction-results",
		run: func(t *testing.T, bk BackendKind) interface{} {
			const P, N = 5, 17
			p := NewProgram(Config{Threads: P, Backend: bk})
			sum := p.NewReduction(OpSum)
			prod := p.NewReduction(OpProd)
			mn := p.NewReduction(OpMin)
			mx := p.NewReduction(OpMax)
			arr := p.NewArrayReduction(OpSum, N)
			p.RegisterRegion("reds", func(tc *TC) {
				v := float64(tc.ThreadNum() + 1)
				sum.Reduce(tc, v)
				prod.Reduce(tc, 2)
				mn.Reduce(tc, v)
				mx.Reduce(tc, v)
				local := make([]float64, N)
				for i := range local {
					local[i] = v * float64(i)
				}
				arr.Reduce(tc, local)
			})
			out := make([]float64, 4+N)
			if err := p.Run(func(m *MC) {
				sum.Reset(&m.TC)
				prod.Reset(&m.TC)
				mn.Reset(&m.TC)
				mx.Reset(&m.TC)
				arr.Reset(&m.TC)
				m.Parallel("reds", NoArgs())
				out[0] = sum.Value(&m.TC)
				out[1] = prod.Value(&m.TC)
				out[2] = mn.Value(&m.TC)
				out[3] = mx.Value(&m.TC)
				arr.Value(&m.TC, out[4:])
			}); err != nil {
				t.Fatal(err)
			}
			return out
		},
	},
	{
		// Firstprivate args: every encodable kind round-trips through the
		// fork environment to every thread, including parallel-do bounds.
		name: "firstprivate-args",
		run: func(t *testing.T, bk BackendKind) interface{} {
			const P, N = 4, 55
			p := NewProgram(Config{Threads: P, Backend: bk})
			tgt := p.SharedPage(8 * P)
			cover := p.SharedPage(8 * N)
			p.RegisterDo("fpdo", func(tc *TC, lo, hi int) {
				r := tc.Args()
				k := r.I64()
				f := r.F64()
				base := r.Addr()
				blob := r.Bytes()
				tc.WriteI64(base+Addr(8*tc.ThreadNum()), k+int64(f)+int64(len(blob)))
				for i := lo; i < hi; i++ {
					tc.WriteI64(cover+Addr(8*i), int64(i)*k)
				}
			})
			out := make([]int64, P+N)
			if err := p.Run(func(m *MC) {
				args := NoArgs().I64(7).F64(3.5).Addr(tgt).Bytes([]byte{9, 9})
				m.ParallelDo("fpdo", 0, N, args)
				for i := 0; i < P; i++ {
					out[i] = m.ReadI64(tgt + Addr(8*i))
				}
				for i := 0; i < N; i++ {
					out[P+i] = m.ReadI64(cover + Addr(8*i))
				}
			}); err != nil {
				t.Fatal(err)
			}
			return out
		},
	},
	{
		// Bulk memory: typed slice and byte accessors agree with each
		// other across page boundaries and unaligned offsets.
		name: "memory-accessors",
		run: func(t *testing.T, bk BackendKind) interface{} {
			p := NewProgram(Config{Threads: 2, Backend: bk})
			base := p.SharedPage(3 * PageSize)
			out := make([]interface{}, 0, 4)
			if err := p.Run(func(m *MC) {
				span := base + Addr(PageSize-12) // straddles a page boundary
				f64s := []float64{1.5, -2.25, 3.125, 1e9}
				m.WriteF64s(span, f64s)
				got := make([]float64, len(f64s))
				m.ReadF64s(span, got)
				out = append(out, got)

				i32s := []int32{7, -8, 1 << 30}
				m.WriteI32s(span+64, i32s)
				gi := make([]int32, len(i32s))
				m.ReadI32s(span+64, gi)
				out = append(out, gi)

				m.WriteBytes(span+128, []byte{1, 2, 3, 4, 5})
				gb := make([]byte, 5)
				m.ReadBytes(span+128, gb)
				out = append(out, gb)

				m.WriteI32(base+2, -77) // unaligned scalar
				m.WriteF64(base+32, 6.75)
				out = append(out, []float64{float64(m.ReadI32(base + 2)), m.ReadF64(base + 32)})
			}); err != nil {
				t.Fatal(err)
			}
			return out
		},
	},
	{
		// Threadprivate: per-thread state persists across regions and
		// never leaks between threads.
		name: "threadprivate",
		run: func(t *testing.T, bk BackendKind) interface{} {
			const P = 4
			p := NewProgram(Config{Threads: P, Backend: bk})
			outA := p.SharedPage(8 * P)
			p.RegisterRegion("stash", func(tc *TC) {
				buf := tc.Threadprivate("s", 8)
				buf[0] = byte(3 * (tc.ThreadNum() + 1))
			})
			p.RegisterRegion("recall", func(tc *TC) {
				buf := tc.Threadprivate("s", 8)
				tc.WriteI64(outA+Addr(8*tc.ThreadNum()), int64(buf[0]))
			})
			out := make([]int64, P)
			if err := p.Run(func(m *MC) {
				m.Parallel("stash", NoArgs())
				m.Parallel("recall", NoArgs())
				for i := range out {
					out[i] = m.ReadI64(outA + Addr(8*i))
				}
			}); err != nil {
				t.Fatal(err)
			}
			return out
		},
	},
	{
		// Flush: portable no-op semantics — flushed writes are (at least)
		// visible after the next barrier on every backend.
		name: "flush-portability",
		run: func(t *testing.T, bk BackendKind) interface{} {
			const P = 3
			p := NewProgram(Config{Threads: P, Backend: bk})
			a := p.SharedPage(8)
			got := p.SharedPage(8 * P)
			p.RegisterRegion("fl", func(tc *TC) {
				if tc.ThreadNum() == 0 {
					tc.WriteI64(a, 42)
					tc.Flush()
				}
				tc.Barrier()
				tc.WriteI64(got+Addr(8*tc.ThreadNum()), tc.ReadI64(a))
			})
			out := make([]int64, P)
			if err := p.Run(func(m *MC) {
				m.Parallel("fl", NoArgs())
				for i := range out {
					out[i] = m.ReadI64(got + Addr(8*i))
				}
			}); err != nil {
				t.Fatal(err)
			}
			return out
		},
	},
}

// runConformanceSuite runs every scenario on every backend — the NOW,
// the SMP, and the hybrid at island counts {1, 2, procs} — and requires
// identical observable results, with the NOW backend as the reference.
func runConformanceSuite(t *testing.T) {
	for _, sc := range conformanceScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ref := sc.run(t, BackendNOW)
			for _, bk := range backends[1:] {
				bk := bk
				t.Run(string(bk), func(t *testing.T) {
					got := sc.run(t, bk)
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("backend %s diverges from %s:\n got %v\nwant %v",
							bk, backends[0], got, ref)
					}
				})
			}
		})
	}
}

// TestBackendConformance is the suite under the default GC configuration.
func TestBackendConformance(t *testing.T) { runConformanceSuite(t) }

// TestBackendConformanceAcquireGC reruns the nine scenarios on all three
// backends with the acquire-epoch collector forced on at very low
// pressure and the validate-hot purge policy — collection epochs then
// interleave with nearly every synchronization operation, and the
// observable results must still be identical across backends (the
// collector is invisible to the computation). Runs sequentially with the
// package defaults flipped, like the GC-off equivalence suite.
func TestBackendConformanceAcquireGC(t *testing.T) {
	prevP := dsm.SetGCPressureDefault(2)
	prevPol := dsm.SetGCPolicyDefault(dsm.GCPolicyValidateHot)
	t.Cleanup(func() {
		dsm.SetGCPressureDefault(prevP)
		dsm.SetGCPolicyDefault(prevPol)
	})
	runConformanceSuite(t)
}

// wideTeamScenario is a parameterized conformance kernel for team sizes
// beyond what the fixed scenarios above use: per-thread writes made
// visible by a barrier, a critical counter that must lose no updates,
// and a post-barrier sum over every slot. Its observable result is
// schedule-independent at any team size.
func wideTeamScenario(t *testing.T, bk BackendKind, procs int) interface{} {
	p := NewProgram(Config{Threads: procs, Backend: bk})
	a := p.SharedPage(8 * procs)
	sums := p.SharedPage(8 * procs)
	ctr := p.SharedPage(8)
	p.RegisterRegion("wide", func(tc *TC) {
		me := tc.ThreadNum()
		tc.WriteI64(a+Addr(8*me), int64(me*me+1))
		tc.Critical("w", func() {
			tc.WriteI64(ctr, tc.ReadI64(ctr)+1)
		})
		tc.Barrier()
		var s int64
		for i := 0; i < procs; i++ {
			s += tc.ReadI64(a + Addr(8*i))
		}
		s += tc.ReadI64(ctr) // == procs: every increment precedes the barrier
		tc.WriteI64(sums+Addr(8*me), s)
	})
	out := make([]int64, procs+1)
	if err := p.Run(func(m *MC) {
		m.Parallel("wide", NoArgs())
		for i := 0; i < procs; i++ {
			out[i] = m.ReadI64(sums + Addr(8*i))
		}
		out[procs] = m.ReadI64(ctr)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBackendConformanceWideTeams is the >8-proc smoke of the
// conformance suite: with homes sharded across nodes and the barrier a
// combining tree, 16- and 32-thread teams must produce results identical
// to hardware shared memory, on every backend.
func TestBackendConformanceWideTeams(t *testing.T) {
	for _, procs := range []int{16, 32} {
		procs := procs
		t.Run(fmt.Sprintf("p%d", procs), func(t *testing.T) {
			t.Parallel()
			ref := wideTeamScenario(t, BackendNOW, procs)
			for _, bk := range backends[1:] {
				got := wideTeamScenario(t, bk, procs)
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("backend %s diverges from %s at %d threads:\n got %v\nwant %v",
						bk, backends[0], procs, got, ref)
				}
			}
		})
	}
}
