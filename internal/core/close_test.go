package core

import (
	"runtime"
	"testing"
	"time"
)

// settledAt polls the process goroutine count until it drops to at most
// want. The retry budget is generous real time with no ratio assertions
// (the deflake pattern: full-suite load can only delay goroutine exit, so
// the test asserts eventual quiescence, never speed).
func settledAt(want int) (int, bool) {
	n := 0
	for i := 0; i < 2000; i++ {
		n = runtime.NumGoroutine()
		if n <= want {
			return n, true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n, false
}

// baseline waits for the process goroutine count to stop falling (earlier
// tests' teardown draining) and returns the floor.
func baseline() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= prev {
			return n
		}
		prev = n
	}
	return prev
}

// TestBackendCloseReapsGoroutines is the lifecycle regression test behind
// Backend.Close: every backend must return the process to its goroutine
// baseline after Close, both for a backend that ran and for one that was
// only constructed. The constructed-but-never-Run case is the latent leak
// that motivated Close — dsm.New starts P protocol servers (plus P reply
// routers multi-client) that nothing reaped, which is exactly the state a
// job scheduler's backend pool holds backends in.
func TestBackendCloseReapsGoroutines(t *testing.T) {
	const procs = 4
	kinds := []struct {
		name    string
		kind    BackendKind
		servers int // goroutines started at construction
	}{
		{"now", BackendNOW, procs},
		{"smp", BackendSMP, 0},
		{"hybrid2", HybridIslands(2), 4}, // 2 island servers + 2 reply routers
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			base := baseline()

			// Construct-only: the servers are already running and only
			// Close reaps them.
			p := NewProgram(Config{Threads: procs, Backend: k.kind})
			if n := runtime.NumGoroutine(); n < base+k.servers {
				t.Errorf("construction started %d goroutines, want at least %d protocol servers", n-base, k.servers)
			}
			if err := p.Close(); err != nil {
				t.Fatalf("Close of never-Run backend: %v", err)
			}
			if n, ok := settledAt(base + 2); !ok {
				t.Fatalf("construct-only Close leaked: %d goroutines, baseline %d", n, base)
			}

			// Single-shot run, then Close (twice: Close is idempotent).
			p = NewProgram(Config{Threads: procs, Backend: k.kind})
			p.RegisterRegion("r", func(tc *TC) {
				tc.Worker().Compute(10)
				tc.Barrier()
			})
			if err := p.Run(func(m *MC) { m.Parallel("r", NoArgs()) }); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			if n, ok := settledAt(base + 2); !ok {
				t.Fatalf("run+Close leaked: %d goroutines, baseline %d", n, base)
			}
		})
	}
}
