package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dsm"
	"repro/internal/sim"
)

// hybridBackend executes an OpenMP team on a NOW of SMPs: the clusters
// that succeeded the paper's testbed were networks of multiprocessor
// nodes, and the SMP-aware TreadMarks follow-on work showed that
// exploiting intra-node hardware sharing changes the traffic and speedup
// story without changing one line of application source. The backend maps
// `procs` workers onto `k` SMP islands:
//
//   - Intra-island, threads share their island's memory natively: typed
//     accesses hit the island delegate's page copies directly, and
//     synchronization satisfied inside the island (a lock handed between
//     two island threads, a local barrier gather) charges the same
//     bus-scale constants as the SMP backend. Zero messages.
//   - Inter-island, one dsm.Node per island holds the island's single
//     seat in the LRC protocol: page faults, diff traffic, barrier
//     arrivals, lock tokens, semaphore and condition-variable managers
//     all run the unmodified TreadMarks machinery of internal/dsm, with
//     per-thread reply tags (dsm.Client) routing grants back to the
//     island thread that asked.
//
// Degenerate limits (pinned by tests): islands=1 is one big SMP — zero
// traffic, SMP-identical clocks; islands=procs is one thread per island —
// the NOW's message pattern exactly.
//
// An island's delegated memory operations are serialized by an engine
// lock (one protocol engine per island, as in the SMP-TreadMarks
// systems); it is held only across operations whose blocking can be
// resolved entirely by remote protocol servers (faults, flush), never
// across waits that an island-mate must resolve (locks, semaphores,
// condition variables, barriers), which is what keeps the island
// deadlock-free.
type hybridBackend struct {
	sys     *dsm.System
	procs   int
	nisl    int
	islands []*hybridIsland
	workers []*hybridWorker
	wg      sync.WaitGroup

	regionsMu sync.Mutex
	regions   map[string]func(w Worker, arg []byte)
}

// hybridIsland is one SMP node of the simulated cluster.
type hybridIsland struct {
	id     int
	node   *dsm.Node
	lo, hi int // global worker ids [lo, hi)

	// eng serializes delegated memory/flush operations: the island's
	// single protocol engine.
	eng sync.Mutex

	// Local barrier (the intra-island gather/release around the DSM
	// barrier's inter-island phase).
	bmu        sync.Mutex
	barN       int
	barMax     sim.Time
	barWaiters []chan sim.Time
}

func (isl *hybridIsland) size() int { return isl.hi - isl.lo }

// hybridFork is one dispatched region execution.
type hybridFork struct {
	fn  func(w Worker, arg []byte)
	arg []byte
	at  sim.Time // virtual dispatch time at the island
}

// hybridJoin reports one worker's region completion (or panic).
type hybridJoin struct {
	t   sim.Time
	err interface{}
}

// hybridWorker is one OpenMP thread; it implements Worker. Worker
// `isl.lo` of each island runs on the island delegate's application
// goroutine (the dsm fork target); the rest are persistent goroutines fed
// through forkCh.
type hybridWorker struct {
	b      *hybridBackend
	isl    *hybridIsland
	id     int // global thread id
	clock  sim.Clock
	cl     *dsm.Client
	forkCh chan hybridFork
	joinCh chan hybridJoin
}

// hybridAbortPanic unwinds a worker blocked in a local structure when the
// system is shutting down.
type hybridAbortPanic struct{}

func (hybridAbortPanic) Error() string { return "hybrid: run aborted" }

func newHybridBackend(cfg Config, islands int) *hybridBackend {
	procs := cfg.Threads
	if islands == 0 {
		islands = 2
	}
	if islands < 1 {
		islands = 1
	}
	if islands > procs {
		islands = procs
	}
	b := &hybridBackend{
		procs:   procs,
		nisl:    islands,
		regions: make(map[string]func(Worker, []byte)),
		sys:     dsm.New(dsmConfig(cfg, islands, true)),
	}
	costs := dsm.ClientCosts{Lock: smpLockCost, Sema: smpSemaCost, Cond: smpCondCost}
	for i := 0; i < islands; i++ {
		lo, hi := StaticBlock(0, procs, i, islands)
		isl := &hybridIsland{id: i, node: b.sys.Node(i), lo: lo, hi: hi}
		b.islands = append(b.islands, isl)
		for g := lo; g < hi; g++ {
			w := &hybridWorker{
				b:      b,
				isl:    isl,
				id:     g,
				forkCh: make(chan hybridFork, 1),
				joinCh: make(chan hybridJoin, 1),
			}
			w.cl = isl.node.NewClient(&w.clock, costs)
			b.workers = append(b.workers, w)
		}
	}
	return b
}

func (b *hybridBackend) Procs() int               { return b.procs }
func (b *hybridBackend) Islands() int             { return b.nisl }
func (b *hybridBackend) Malloc(size int) Addr     { return b.sys.Malloc(size) }
func (b *hybridBackend) MallocPage(size int) Addr { return b.sys.MallocPage(size) }

// Register stores the region body and installs an island dispatcher for
// it in the DSM: a fork reaches each island once, and the dispatcher
// spreads it across the island's threads.
func (b *hybridBackend) Register(name string, fn func(w Worker, arg []byte)) {
	b.regionsMu.Lock()
	if _, dup := b.regions[name]; dup {
		b.regionsMu.Unlock()
		panic(fmt.Sprintf("hybrid: region %q registered twice", name))
	}
	b.regions[name] = fn
	b.regionsMu.Unlock()
	b.sys.Register(name, func(n *dsm.Node, arg []byte) {
		b.runIsland(n, name, arg)
	})
}

func (b *hybridBackend) region(name string) func(Worker, []byte) {
	b.regionsMu.Lock()
	defer b.regionsMu.Unlock()
	fn, ok := b.regions[name]
	if !ok {
		panic(fmt.Sprintf("hybrid: region %q not registered", name))
	}
	return fn
}

// runIsland executes one region on one island: it runs on the island
// delegate's application goroutine (node 0: the master worker's own
// goroutine; other islands: the dsm slave loop), dispatches the island's
// remaining threads, runs the first thread's share inline, and joins. The
// island's completion time flows into the delegate node's clock so the
// dsm join message carries it back to the master.
func (b *hybridBackend) runIsland(n *dsm.Node, name string, arg []byte) {
	isl := b.islands[n.ID()]
	fn := b.region(name)
	first := b.workers[isl.lo]
	at := n.Now() // fork arrival (slave islands), incl. any fork-GC pause
	if t := first.clock.Now(); t > at {
		at = t // island 0: the master's clock is the fork time
	}
	for _, w := range b.workers[isl.lo+1 : isl.hi] {
		select {
		case w.forkCh <- hybridFork{fn: fn, arg: arg, at: at}:
		case <-b.sys.Done():
			panic(hybridAbortPanic{})
		}
	}
	first.clock.AdvanceTo(at)
	fn(first, arg)
	maxT := first.clock.Now()
	for _, w := range b.workers[isl.lo+1 : isl.hi] {
		var j hybridJoin
		select {
		case j = <-w.joinCh:
		case <-b.sys.Done():
			panic(hybridAbortPanic{})
		}
		if j.err != nil {
			panic(j.err)
		}
		if j.t > maxT {
			maxT = j.t
		}
	}
	first.clock.AdvanceTo(maxT)
	n.AdvanceClockTo(maxT)
}

// loop runs a non-first island worker: wait for a dispatched region, run
// it, report the finish time, repeat until the backend shuts down.
func (w *hybridWorker) loop() {
	for {
		select {
		case f, ok := <-w.forkCh:
			if !ok {
				return
			}
			w.runRegion(f)
		case <-w.b.sys.Done():
			return
		}
	}
}

func (w *hybridWorker) runRegion(f hybridFork) {
	defer func() {
		w.joinCh <- hybridJoin{t: w.clock.Now(), err: recover()}
	}()
	w.clock.AdvanceTo(f.at)
	f.fn(w, f.arg)
}

// Run executes master as worker 0 on the master island's delegate
// goroutine; the remaining workers run as persistent goroutines fed by
// the island dispatchers.
func (b *hybridBackend) Run(master func(w Worker)) error {
	err := b.sys.Run(func(n0 *dsm.Node) {
		for _, isl := range b.islands {
			for _, w := range b.workers[isl.lo+1 : isl.hi] {
				b.wg.Add(1)
				go func(w *hybridWorker) {
					defer b.wg.Done()
					w.loop()
				}(w)
			}
		}
		master(b.workers[0])
		for _, isl := range b.islands {
			for _, w := range b.workers[isl.lo+1 : isl.hi] {
				close(w.forkCh)
			}
		}
	})
	// On a clean run the closed fork channels end the worker loops; on an
	// abort the system's done channel (closed before sys.Run returns)
	// does. Either way every worker goroutine exits.
	b.wg.Wait()
	return err
}

// MaxClock returns the latest virtual time across the team and the island
// delegates (whose clocks carry protocol-server interrupt service).
func (b *hybridBackend) MaxClock() sim.Time {
	m := b.sys.MaxClock()
	for _, w := range b.workers {
		if t := w.clock.Now(); t > m {
			m = t
		}
	}
	return m
}

func (b *hybridBackend) Traffic() (int64, int64) {
	return b.sys.Switch().Stats().Snapshot()
}

func (b *hybridBackend) TrafficBreakdown() dsm.TrafficBreakdown {
	return b.sys.TrafficBreakdown()
}

func (b *hybridBackend) Frames() int64 { return b.sys.Frames() }

func (b *hybridBackend) ResetTraffic() { b.sys.Switch().ResetStats() }

func (b *hybridBackend) ProtoSummary() (int64, int64, int64) {
	return b.sys.ProtoSummary()
}

func (b *hybridBackend) GCSummary() dsm.GCStats { return b.sys.GCSummary() }

// Close shuts the island DSM down and waits for any worker goroutines.
// The workers only exist inside Run (which already reaps them), but the
// island delegates' protocol servers and reply routers are started at
// construction and would outlive a never-Run backend.
func (b *hybridBackend) Close() error {
	err := b.sys.Shutdown()
	b.wg.Wait()
	return err
}

// ---------------------------------------------------------------------
// Worker: identity, clock, fork.
// ---------------------------------------------------------------------

func (w *hybridWorker) ID() int           { return w.id }
func (w *hybridWorker) NumProcs() int     { return w.b.procs }
func (w *hybridWorker) Now() sim.Time     { return w.clock.Now() }
func (w *hybridWorker) Charge(d sim.Time) { w.clock.Advance(d) }
func (w *hybridWorker) Poll()             { runtime.Gosched() }

func (w *hybridWorker) Compute(flops float64) { w.cl.Compute(flops) }

// RunParallel forks the named region across the cluster: one dsm fork per
// island, each island's dispatcher spreading it over its threads. The
// master charges the same dispatch cost as the SMP backend; the DSM fork
// messages carry the inter-island cost.
func (w *hybridWorker) RunParallel(region string, arg []byte) {
	if w.id != 0 {
		panic("hybrid: RunParallel must be called by the master (worker 0)")
	}
	w.clock.Advance(smpForkCost)
	w.cl.RunParallel(region, arg)
}

// ---------------------------------------------------------------------
// Synchronization. Locks, semaphores, and condition variables delegate
// directly: the dsm.Client layer satisfies intra-island cases locally
// (token caching, local handoff queues, banked signal timestamps) at
// bus-scale cost and engages the wire protocol only across islands.
// ---------------------------------------------------------------------

// Barrier is two-level: gather the island's threads locally, let the last
// arrival cross the inter-island DSM barrier on the island's behalf, then
// release the island at the global departure time plus the local
// broadcast cost.
func (w *hybridWorker) Barrier() {
	isl := w.isl
	if isl.size() == 1 {
		w.cl.Barrier()
		return
	}
	isl.bmu.Lock()
	if t := w.clock.Now(); t > isl.barMax {
		isl.barMax = t
	}
	isl.barN++
	if isl.barN < isl.size() {
		ch := make(chan sim.Time, 1)
		isl.barWaiters = append(isl.barWaiters, ch)
		isl.bmu.Unlock()
		select {
		case t := <-ch:
			w.clock.AdvanceTo(t)
		case <-w.b.sys.Done():
			panic(hybridAbortPanic{})
		}
		return
	}
	// Last arrival: run the inter-island phase. Every island thread is
	// parked here, so the delegate node is quiescent for this client.
	localMax := isl.barMax
	waiters := isl.barWaiters
	isl.barN = 0
	isl.barMax = 0
	isl.barWaiters = nil
	isl.bmu.Unlock()
	w.clock.AdvanceTo(localMax)
	w.cl.Barrier()
	w.clock.Advance(smpBarrierCost)
	depart := w.clock.Now()
	for _, ch := range waiters {
		ch <- depart
	}
}

func (w *hybridWorker) Acquire(lock int)   { w.cl.Acquire(lock) }
func (w *hybridWorker) Release(lock int)   { w.cl.Release(lock) }
func (w *hybridWorker) SemaWait(sem int)   { w.cl.SemaWait(sem) }
func (w *hybridWorker) SemaSignal(sem int) { w.cl.SemaSignal(sem) }

func (w *hybridWorker) CondWait(cond, lock int)      { w.cl.CondWait(cond, lock) }
func (w *hybridWorker) CondSignal(cond, lock int)    { w.cl.CondSignal(cond, lock) }
func (w *hybridWorker) CondBroadcast(cond, lock int) { w.cl.CondBroadcast(cond, lock) }

// Flush pushes the island's write notices to every other island (the
// paper's 2(k-1)-message construct, now per island rather than per
// thread). It holds the engine lock: the acknowledgments come from remote
// protocol servers, never from island-mates.
func (w *hybridWorker) Flush() {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.Flush()
}

// ---------------------------------------------------------------------
// Shared memory: native access to the island's page copies, with the
// engine lock serializing the fault path (one outstanding fault per
// island, so page and diff replies route unambiguously). Valid-page
// accesses charge nothing — intra-island sharing is hardware sharing.
// ---------------------------------------------------------------------

func (w *hybridWorker) ReadF64(a Addr) float64 {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	return w.cl.ReadF64(a)
}

func (w *hybridWorker) WriteF64(a Addr, v float64) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.WriteF64(a, v)
}

func (w *hybridWorker) ReadI64(a Addr) int64 {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	return w.cl.ReadI64(a)
}

func (w *hybridWorker) WriteI64(a Addr, v int64) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.WriteI64(a, v)
}

func (w *hybridWorker) ReadI32(a Addr) int32 {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	return w.cl.ReadI32(a)
}

func (w *hybridWorker) WriteI32(a Addr, v int32) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.WriteI32(a, v)
}

func (w *hybridWorker) ReadBytes(a Addr, dst []byte) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.ReadBytes(a, dst)
}

func (w *hybridWorker) WriteBytes(a Addr, src []byte) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.WriteBytes(a, src)
}

func (w *hybridWorker) ReadF64s(a Addr, dst []float64) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.ReadF64s(a, dst)
}

func (w *hybridWorker) WriteF64s(a Addr, src []float64) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.WriteF64s(a, src)
}

func (w *hybridWorker) ReadI32s(a Addr, dst []int32) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.ReadI32s(a, dst)
}

func (w *hybridWorker) WriteI32s(a Addr, src []int32) {
	w.isl.eng.Lock()
	defer w.isl.eng.Unlock()
	w.cl.WriteI32s(a, src)
}

var _ Worker = (*hybridWorker)(nil)
var _ Backend = (*hybridBackend)(nil)
