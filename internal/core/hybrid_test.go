package core

import (
	"testing"

	"repro/internal/dsm"
	"repro/internal/sim"
)

// The hybrid backend's degenerate-limit pins. A NOW-of-SMPs must collapse
// exactly to its two parents:
//
//   - islands = 1: one big SMP. No interconnect exists, so traffic and
//     protocol metadata are identically zero, and the virtual clocks of a
//     deterministic program match the SMP backend tick for tick (the
//     intra-island cost model IS the SMP cost model).
//   - islands = procs: one thread per island. Every synchronization and
//     every fault crosses the network, so a paging program moves exactly
//     the NOW's messages and bytes.

// hybridProgram runs one deterministic workload on a backend and reports
// its observables: elapsed virtual time, traffic, and a result digest.
type hybridProgram struct {
	name string
	run  func(t *testing.T, bk BackendKind, procs int) (sim.Time, int64, int64, int64)
}

var hybridPrograms = []hybridProgram{
	{
		// Barrier-phased stencil: compute + write own block, barrier, read
		// neighbour's block. Deterministic on every backend.
		name: "stencil",
		run: func(t *testing.T, bk BackendKind, procs int) (sim.Time, int64, int64, int64) {
			const perProc = 512 // 4 KiB of f64s per worker: one page each
			n := perProc * procs
			p := NewProgram(Config{Threads: procs, Backend: bk})
			a := p.SharedPage(8 * n)
			sums := p.SharedPage(8 * procs)
			p.RegisterRegion("phase", func(tc *TC) {
				me := tc.ThreadNum()
				lo, hi := StaticBlock(0, n, me, procs)
				buf := make([]float64, hi-lo)
				for i := range buf {
					buf[i] = float64(lo + i)
				}
				tc.WriteF64s(a+Addr(8*lo), buf)
				tc.Compute(float64(hi - lo))
				tc.Barrier()
				nxt := (me + 1) % procs
				nlo, nhi := StaticBlock(0, n, nxt, procs)
				nbuf := make([]float64, nhi-nlo)
				tc.ReadF64s(a+Addr(8*nlo), nbuf)
				var s float64
				for _, v := range nbuf {
					s += v
				}
				tc.Compute(float64(nhi - nlo))
				tc.Barrier()
				tc.WriteF64(sums+Addr(8*me), s)
			})
			var total float64
			if err := p.Run(func(m *MC) {
				for rep := 0; rep < 3; rep++ {
					m.Parallel("phase", NoArgs())
				}
				for i := 0; i < procs; i++ {
					total += m.ReadF64(sums + Addr(8*i))
				}
			}); err != nil {
				t.Fatal(err)
			}
			msgs, bytes := p.Traffic()
			return p.Elapsed(), msgs, bytes, int64(total)
		},
	},
	{
		// Semaphore pipeline: producer/filter/consumer with distinct sema
		// ids, so every P matches a unique V and timing is deterministic.
		name: "sema-pipeline",
		run: func(t *testing.T, bk BackendKind, procs int) (sim.Time, int64, int64, int64) {
			if procs < 3 {
				procs = 3
			}
			const rounds = 10
			p := NewProgram(Config{Threads: procs, Backend: bk})
			d01 := p.SharedPage(8)
			d12 := p.SharedPage(8)
			out := p.SharedPage(8 * rounds)
			const s01, a01, s12, a12 = 11, 12, 13, 14
			p.RegisterRegion("pipe", func(tc *TC) {
				switch tc.ThreadNum() {
				case 0:
					for i := 0; i < rounds; i++ {
						tc.WriteI64(d01, int64(i))
						tc.Compute(500)
						tc.SemaSignal(s01)
						tc.SemaWait(a01)
					}
				case 1:
					for i := 0; i < rounds; i++ {
						tc.SemaWait(s01)
						v := tc.ReadI64(d01)
						tc.SemaSignal(a01)
						tc.Compute(300)
						tc.WriteI64(d12, v*2)
						tc.SemaSignal(s12)
						tc.SemaWait(a12)
					}
				case 2:
					for i := 0; i < rounds; i++ {
						tc.SemaWait(s12)
						tc.WriteI64(out+Addr(8*i), tc.ReadI64(d12))
						tc.SemaSignal(a12)
					}
				}
			})
			var total int64
			if err := p.Run(func(m *MC) {
				m.Parallel("pipe", NoArgs())
				for i := 0; i < rounds; i++ {
					total += m.ReadI64(out + Addr(8*i))
				}
			}); err != nil {
				t.Fatal(err)
			}
			msgs, bytes := p.Traffic()
			return p.Elapsed(), msgs, bytes, total
		},
	},
	{
		// Uncontended locks plus a reduction: every thread works under its
		// own named critical section, then folds into a shared sum.
		name: "locks-reduction",
		run: func(t *testing.T, bk BackendKind, procs int) (sim.Time, int64, int64, int64) {
			p := NewProgram(Config{Threads: procs, Backend: bk})
			cells := p.SharedPage(8 * procs)
			sum := p.NewReduction(OpSum)
			names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
			p.RegisterRegion("own", func(tc *TC) {
				me := tc.ThreadNum()
				for i := 0; i < 5; i++ {
					tc.Critical(names[me%len(names)], func() {
						tc.WriteI64(cells+Addr(8*me), tc.ReadI64(cells+Addr(8*me))+int64(me+1))
					})
					tc.Compute(200)
				}
				tc.Barrier()
				sum.Reduce(tc, float64(tc.ReadI64(cells+Addr(8*me))))
			})
			var total float64
			if err := p.Run(func(m *MC) {
				sum.Reset(&m.TC)
				m.Parallel("own", NoArgs())
				total = sum.Value(&m.TC)
			}); err != nil {
				t.Fatal(err)
			}
			msgs, bytes := p.Traffic()
			return p.Elapsed(), msgs, bytes, int64(total)
		},
	},
}

// TestHybridIslandsOneMatchesSMP pins the all-local degenerate: a hybrid
// run with a single island reports identically-zero traffic and protocol
// metadata, and its virtual clock matches the SMP backend exactly.
func TestHybridIslandsOneMatchesSMP(t *testing.T) {
	for _, prog := range hybridPrograms {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			for _, procs := range []int{1, 4, 8} {
				smpT, smpMsgs, smpBytes, smpRes := prog.run(t, BackendSMP, procs)
				hybT, hybMsgs, hybBytes, hybRes := prog.run(t, HybridIslands(1), procs)
				if hybMsgs != 0 || hybBytes != 0 {
					t.Errorf("procs=%d: hybrid islands=1 moved traffic: %d msgs, %d bytes", procs, hybMsgs, hybBytes)
				}
				if smpMsgs != 0 || smpBytes != 0 {
					t.Errorf("procs=%d: SMP moved traffic: %d msgs, %d bytes", procs, smpMsgs, smpBytes)
				}
				if hybRes != smpRes {
					t.Errorf("procs=%d: result %d differs from SMP %d", procs, hybRes, smpRes)
				}
				if hybT != smpT {
					t.Errorf("procs=%d: hybrid islands=1 clock %s != SMP clock %s", procs, hybT, smpT)
				}
			}
		})
	}
}

// TestHybridIslandsOneZeroMetadata extends the pin to protocol metadata
// and GC accounting: with one island there is no LRC protocol to account
// for.
func TestHybridIslandsOneZeroMetadata(t *testing.T) {
	p := NewProgram(Config{Threads: 4, Backend: BackendHybrid, Islands: 1})
	a := p.SharedPage(8 * 1024)
	p.RegisterDo("w", func(tc *TC, lo, hi int) {
		for i := lo; i < hi; i++ {
			tc.WriteF64(a+Addr(8*i), float64(i))
		}
		tc.Barrier()
	})
	if err := p.Run(func(m *MC) { m.ParallelDo("w", 0, 1024, NoArgs()) }); err != nil {
		t.Fatal(err)
	}
	if r, c, b := p.ProtoSummary(); r != 0 || c != 0 || b != 0 {
		t.Errorf("islands=1 reported protocol metadata: %d %d %d", r, c, b)
	}
	if g := p.GCSummary(); g != (dsm.GCStats{}) {
		t.Errorf("islands=1 reported GC activity: %+v", g)
	}
}

// TestHybridIslandsProcsMatchesNOW pins the all-remote degenerate on a
// paging workload: with one thread per island every fault, barrier, and
// fork crosses the interconnect, and the message and byte counts must
// equal the NOW backend's exactly.
func TestHybridIslandsProcsMatchesNOW(t *testing.T) {
	paging := func(bk BackendKind, procs int) (int64, int64) {
		const perProc = 1024 // two pages of f64s per worker
		n := perProc * procs
		p := NewProgram(Config{Threads: procs, Backend: bk})
		a := p.SharedPage(8 * n)
		p.RegisterRegion("page", func(tc *TC) {
			me := tc.ThreadNum()
			lo, hi := StaticBlock(0, n, me, procs)
			buf := make([]float64, hi-lo)
			for i := range buf {
				buf[i] = float64(me*1000 + i)
			}
			tc.WriteF64s(a+Addr(8*lo), buf)
			tc.Barrier()
			nxt := (me + 1) % procs
			nlo, nhi := StaticBlock(0, n, nxt, procs)
			nbuf := make([]float64, nhi-nlo)
			tc.ReadF64s(a+Addr(8*nlo), nbuf)
			tc.Barrier()
		})
		if err := p.Run(func(m *MC) {
			m.Parallel("page", NoArgs())
			m.Parallel("page", NoArgs())
		}); err != nil {
			t.Fatal(err)
		}
		return p.Traffic()
	}
	for _, procs := range []int{2, 4, 8} {
		nowMsgs, nowBytes := paging(BackendNOW, procs)
		hybMsgs, hybBytes := paging(HybridIslands(procs), procs)
		if nowMsgs == 0 || nowBytes == 0 {
			t.Fatalf("procs=%d: NOW paging run moved no traffic", procs)
		}
		if hybMsgs != nowMsgs || hybBytes != nowBytes {
			t.Errorf("procs=%d: hybrid islands=procs traffic (%d msgs, %d B) != NOW (%d msgs, %d B)",
				procs, hybMsgs, hybBytes, nowMsgs, nowBytes)
		}
	}
}

// TestHybridIslandClamping pins the island-count normalization: 0 means
// the default (2), and any count above the team size clamps to one thread
// per island.
func TestHybridIslandClamping(t *testing.T) {
	for _, tt := range []struct {
		threads, islands, want int
	}{
		{8, 0, 2}, {8, 1, 1}, {8, 3, 3}, {8, 64, 8}, {1, 0, 1}, {2, 5, 2},
	} {
		p := NewProgram(Config{Threads: tt.threads, Backend: BackendHybrid, Islands: tt.islands})
		hb, ok := p.Backend().(*hybridBackend)
		if !ok {
			t.Fatalf("backend is %T, want *hybridBackend", p.Backend())
		}
		if hb.Islands() != tt.want {
			t.Errorf("threads=%d islands=%d: got %d islands, want %d", tt.threads, tt.islands, hb.Islands(), tt.want)
		}
		// The kind-encoded count takes precedence over Config.Islands.
		p2 := NewProgram(Config{Threads: tt.threads, Backend: HybridIslands(tt.threads), Islands: 1})
		hb2 := p2.Backend().(*hybridBackend)
		if hb2.Islands() != tt.threads {
			t.Errorf("threads=%d: kind-encoded count gave %d islands, want %d", tt.threads, hb2.Islands(), tt.threads)
		}
	}
	// A non-positive kind-encoded count means "unspecified": it defers to
	// Config.Islands rather than panicking in the kind parser.
	p := NewProgram(Config{Threads: 8, Backend: HybridIslands(0), Islands: 4})
	if got := p.Backend().(*hybridBackend).Islands(); got != 4 {
		t.Errorf("HybridIslands(0) with Config.Islands=4 gave %d islands, want 4", got)
	}
	if HybridIslands(-3) != BackendHybrid {
		t.Errorf("HybridIslands(-3) = %q, want %q", HybridIslands(-3), BackendHybrid)
	}
}

// TestHybridTrafficScalesWithIslands sanity-checks the middle of the
// range: more islands cannot move less data on the stencil (intra-island
// sharing only ever removes traffic).
func TestHybridTrafficScalesWithIslands(t *testing.T) {
	run := hybridPrograms[0].run // stencil
	const procs = 8
	var prevBytes int64 = -1
	for _, k := range []int{1, 2, 4, 8} {
		_, msgs, bytes, _ := run(t, HybridIslands(k), procs)
		if k == 1 && (msgs != 0 || bytes != 0) {
			t.Fatalf("islands=1 moved traffic: %d msgs %d bytes", msgs, bytes)
		}
		if bytes < prevBytes {
			t.Errorf("islands=%d moved fewer bytes (%d) than islands=%d (%d)", k, bytes, k/2, prevBytes)
		}
		prevBytes = bytes
	}
}
