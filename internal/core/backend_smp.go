package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dsm"
	"repro/internal/sim"
)

// smpBackend executes the same registered regions on hardware shared
// memory: one flat byte heap shared by a team of goroutines, with native
// Go synchronization primitives standing in for the bus-based hardware
// ones. This is the machine OpenMP was designed for and the paper's
// implicit baseline: no pages, no diffs, no interconnect — Traffic() is
// identically zero — while compute still charges the same sim.Platform
// virtual clocks, so NOW and SMP runs of one application are directly
// comparable in the speedup tables.
//
// Virtual-time model: every sequentially-consistent hardware primitive
// costs a small constant (calibrated to a bus-based 200 MHz Pentium Pro
// SMP, the hardware contemporary of the paper's testbed), and blocking
// operations advance the blocked worker's clock to the virtual time of
// the event that released it — a lock acquisition resumes no earlier
// than the previous holder's release, a barrier departs at the latest
// arrival, a semaphore P consumes its matching V's timestamp.
const (
	smpForkCost    = 2 * sim.Microsecond  // dispatch one parallel region
	smpBarrierCost = 1 * sim.Microsecond  // centralized hardware barrier
	smpLockCost    = 300 * sim.Nanosecond // locked read-modify-write + bus
	smpSemaCost    = 300 * sim.Nanosecond // semaphore op on coherent memory
	smpCondCost    = 500 * sim.Nanosecond // condvar queue operation
)

// smpAbort unwinds a worker blocked in a primitive when another worker
// panicked and the backend is shutting down.
type smpAbort struct{ cause string }

func (e smpAbort) Error() string { return "smp: run aborted: " + e.cause }

type smpFork struct {
	fn  func(w Worker, arg []byte)
	arg []byte
	at  sim.Time // virtual dispatch time at the master
}

type smpLock struct {
	held    bool
	release sim.Time // virtual time of the last release
	c       *sync.Cond
}

type smpSema struct {
	signals []sim.Time // FIFO of banked V timestamps
	c       *sync.Cond
}

type smpCond struct {
	waiting int // registered waiters not yet woken
	tokens  int // issued wakeups not yet consumed
	wake    sim.Time
	c       *sync.Cond
}

type smpBackend struct {
	plat      *sim.Platform
	procs     int
	heapBytes int
	heap      []byte

	heapMu   sync.Mutex
	heapNext Addr

	regionsMu sync.Mutex
	regions   map[string]func(w Worker, arg []byte)

	workers []*smpWorker

	// mu guards every synchronization structure below; blocking waits use
	// per-structure conds on it (the analogue of one coherent bus).
	mu      sync.Mutex
	locks   map[int]*smpLock
	semas   map[int]*smpSema
	conds   map[int]*smpCond
	barGen  int
	barN    int
	barTime sim.Time // max arrival clock of the open generation
	barOut  sim.Time // departure time of the last completed generation
	barC    *sync.Cond
	aborted bool

	errOnce  sync.Once
	err      error
	done     chan struct{}
	doneOnce sync.Once
}

// smpWorker is one goroutine of the team; it implements Worker.
type smpWorker struct {
	b      *smpBackend
	id     int
	clock  sim.Clock
	forkCh chan smpFork
	joinCh chan sim.Time
}

func newSMPBackend(cfg Config) *smpBackend {
	heapBytes := cfg.HeapBytes
	if heapBytes == 0 {
		heapBytes = 64 << 20
	}
	if heapBytes%PageSize != 0 {
		heapBytes += PageSize - heapBytes%PageSize
	}
	plat := cfg.Platform
	if plat == nil {
		plat = sim.DefaultPlatform()
	}
	b := &smpBackend{
		plat:      plat,
		procs:     cfg.Threads,
		heapBytes: heapBytes,
		heap:      make([]byte, heapBytes),
		regions:   make(map[string]func(Worker, []byte)),
		locks:     make(map[int]*smpLock),
		semas:     make(map[int]*smpSema),
		conds:     make(map[int]*smpCond),
		done:      make(chan struct{}),
	}
	b.barC = sync.NewCond(&b.mu)
	for i := 0; i < cfg.Threads; i++ {
		b.workers = append(b.workers, &smpWorker{
			b:      b,
			id:     i,
			forkCh: make(chan smpFork, 1),
			joinCh: make(chan sim.Time, 1),
		})
	}
	return b
}

func (b *smpBackend) Procs() int { return b.procs }

func (b *smpBackend) Malloc(size int) Addr {
	b.heapMu.Lock()
	defer b.heapMu.Unlock()
	return b.mallocLocked(size)
}

func (b *smpBackend) MallocPage(size int) Addr {
	b.heapMu.Lock()
	defer b.heapMu.Unlock()
	if rem := int(b.heapNext) % PageSize; rem != 0 {
		b.heapNext += Addr(PageSize - rem)
	}
	return b.mallocLocked(size)
}

func (b *smpBackend) mallocLocked(size int) Addr {
	if size <= 0 {
		panic("smp: Malloc with non-positive size")
	}
	a := b.heapNext
	size = (size + 7) &^ 7
	b.heapNext += Addr(size)
	if int(b.heapNext) > b.heapBytes {
		panic(fmt.Sprintf("smp: shared heap exhausted (%d bytes requested beyond %d)", size, b.heapBytes))
	}
	return a
}

func (b *smpBackend) Register(name string, fn func(w Worker, arg []byte)) {
	b.regionsMu.Lock()
	defer b.regionsMu.Unlock()
	if _, dup := b.regions[name]; dup {
		panic(fmt.Sprintf("smp: region %q registered twice", name))
	}
	b.regions[name] = fn
}

func (b *smpBackend) region(name string) func(Worker, []byte) {
	b.regionsMu.Lock()
	defer b.regionsMu.Unlock()
	fn, ok := b.regions[name]
	if !ok {
		panic(fmt.Sprintf("smp: region %q not registered", name))
	}
	return fn
}

// abort records the first failure, wakes every blocked worker, and lets
// the abort panic unwind the rest of the team.
func (b *smpBackend) abort(err error) {
	b.errOnce.Do(func() {
		b.err = err
		b.mu.Lock()
		b.aborted = true
		for _, ls := range b.locks {
			ls.c.Broadcast()
		}
		for _, ss := range b.semas {
			ss.c.Broadcast()
		}
		for _, cq := range b.conds {
			cq.c.Broadcast()
		}
		b.barC.Broadcast()
		b.mu.Unlock()
		b.doneOnce.Do(func() { close(b.done) })
	})
}

func (b *smpBackend) recoverAbort(w *smpWorker) {
	if r := recover(); r != nil {
		if _, isAbort := r.(smpAbort); isAbort {
			return // secondary victim of another worker's failure
		}
		b.abort(fmt.Errorf("smp: worker %d: %v", w.id, r))
	}
}

// abortedLocked panics with the unwind error; callers check b.aborted
// first. Requires b.mu (released before panicking).
func (b *smpBackend) abortPanicLocked() {
	b.mu.Unlock()
	panic(smpAbort{cause: "backend shut down"})
}

func (b *smpBackend) Run(master func(w Worker)) error {
	var wg sync.WaitGroup
	for _, w := range b.workers[1:] {
		wg.Add(1)
		go func(w *smpWorker) {
			defer wg.Done()
			defer b.recoverAbort(w)
			w.slaveLoop()
		}(w)
	}
	wg.Add(1)
	go func() {
		w := b.workers[0]
		defer wg.Done()
		defer b.recoverAbort(w)
		master(w)
		for _, s := range b.workers[1:] {
			close(s.forkCh) // shut the slaves down
		}
	}()
	wg.Wait()
	return b.err
}

func (b *smpBackend) MaxClock() sim.Time {
	var m sim.Time
	for _, w := range b.workers {
		if t := w.clock.Now(); t > m {
			m = t
		}
	}
	return m
}

// Traffic is identically zero: hardware shared memory has no interconnect
// messages in this cost model.
func (b *smpBackend) Traffic() (int64, int64) { return 0, 0 }
func (b *smpBackend) TrafficBreakdown() dsm.TrafficBreakdown {
	return dsm.TrafficBreakdown{}
}
func (b *smpBackend) Frames() int64                       { return 0 }
func (b *smpBackend) ResetTraffic()                       {}
func (b *smpBackend) ProtoSummary() (int64, int64, int64) { return 0, 0, 0 }
func (b *smpBackend) GCSummary() dsm.GCStats              { return dsm.GCStats{} }

// Close marks the backend shut down. The worker goroutines live only
// inside Run (which reaps them before returning), so there is nothing to
// wait for; closing done keeps the contract that a closed backend's done
// channel is closed whether or not the run aborted.
func (b *smpBackend) Close() error {
	b.doneOnce.Do(func() { close(b.done) })
	return b.err
}

// ---------------------------------------------------------------------
// Worker: identity, clock, fork/join.
// ---------------------------------------------------------------------

func (w *smpWorker) ID() int           { return w.id }
func (w *smpWorker) NumProcs() int     { return w.b.procs }
func (w *smpWorker) Now() sim.Time     { return w.clock.Now() }
func (w *smpWorker) Charge(d sim.Time) { w.clock.Advance(d) }
func (w *smpWorker) Poll()             { runtime.Gosched() }

func (w *smpWorker) Compute(flops float64) {
	w.clock.Advance(w.b.plat.ComputeCost(flops))
}

// RunParallel forks the named region on every slave, runs it on the
// master too, and joins: the master resumes at the latest finish time.
func (w *smpWorker) RunParallel(region string, arg []byte) {
	if w.id != 0 {
		panic("smp: RunParallel must be called by the master (worker 0)")
	}
	b := w.b
	fn := b.region(region)
	w.clock.Advance(smpForkCost)
	at := w.clock.Now()
	for _, s := range b.workers[1:] {
		select {
		case s.forkCh <- smpFork{fn: fn, arg: arg, at: at}:
		case <-b.done:
			panic(smpAbort{cause: "backend shut down"})
		}
	}
	fn(w, arg)
	for _, s := range b.workers[1:] {
		var t sim.Time
		select {
		case t = <-s.joinCh:
		case <-b.done:
			panic(smpAbort{cause: "backend shut down"})
		}
		w.clock.AdvanceTo(t)
	}
}

// slaveLoop runs workers 1..P-1: wait for a fork, run the region, report
// the finish time, repeat until the master closes the fork channel.
func (w *smpWorker) slaveLoop() {
	for {
		var f smpFork
		var ok bool
		select {
		case f, ok = <-w.forkCh:
		case <-w.b.done:
			panic(smpAbort{cause: "backend shut down"})
		}
		if !ok {
			return
		}
		w.clock.AdvanceTo(f.at)
		f.fn(w, f.arg)
		select {
		case w.joinCh <- w.clock.Now():
		case <-w.b.done:
			panic(smpAbort{cause: "backend shut down"})
		}
	}
}

// ---------------------------------------------------------------------
// Synchronization.
// ---------------------------------------------------------------------

// Barrier is a centralized generation barrier: departure time is the
// latest arrival plus the hardware barrier cost.
func (w *smpWorker) Barrier() {
	b := w.b
	if b.procs == 1 {
		return
	}
	b.mu.Lock()
	gen := b.barGen
	if t := w.clock.Now(); t > b.barTime {
		b.barTime = t
	}
	b.barN++
	if b.barN == b.procs {
		b.barOut = b.barTime + smpBarrierCost
		b.barGen++
		b.barN = 0
		b.barTime = 0
		b.barC.Broadcast()
		depart := b.barOut
		b.mu.Unlock()
		w.clock.AdvanceTo(depart)
		return
	}
	for b.barGen == gen && !b.aborted {
		b.barC.Wait()
	}
	if b.aborted {
		b.abortPanicLocked()
	}
	depart := b.barOut
	b.mu.Unlock()
	w.clock.AdvanceTo(depart)
}

func (b *smpBackend) lockFor(id int) *smpLock {
	ls, ok := b.locks[id]
	if !ok {
		ls = &smpLock{c: sync.NewCond(&b.mu)}
		b.locks[id] = ls
	}
	return ls
}

func (b *smpBackend) semaFor(id int) *smpSema {
	ss, ok := b.semas[id]
	if !ok {
		ss = &smpSema{c: sync.NewCond(&b.mu)}
		b.semas[id] = ss
	}
	return ss
}

func (b *smpBackend) condFor(id int) *smpCond {
	cq, ok := b.conds[id]
	if !ok {
		cq = &smpCond{c: sync.NewCond(&b.mu)}
		b.conds[id] = cq
	}
	return cq
}

// Acquire blocks until the lock is free; the acquirer resumes no earlier
// than the previous holder's release time.
func (w *smpWorker) Acquire(lock int) {
	b := w.b
	b.mu.Lock()
	ls := b.lockFor(lock)
	for ls.held && !b.aborted {
		ls.c.Wait()
	}
	if b.aborted {
		b.abortPanicLocked()
	}
	ls.held = true
	release := ls.release
	b.mu.Unlock()
	w.clock.AdvanceTo(release)
	w.clock.Advance(smpLockCost)
}

func (w *smpWorker) Release(lock int) {
	b := w.b
	b.mu.Lock()
	ls := b.lockFor(lock)
	if !ls.held {
		b.mu.Unlock()
		panic("smp: Release of a lock not held")
	}
	ls.held = false
	if t := w.clock.Now(); t > ls.release {
		ls.release = t
	}
	ls.c.Signal()
	b.mu.Unlock()
}

// SemaSignal performs V: bank the signal's timestamp and wake a waiter.
func (w *smpWorker) SemaSignal(sem int) {
	b := w.b
	w.clock.Advance(smpSemaCost)
	b.mu.Lock()
	ss := b.semaFor(sem)
	ss.signals = append(ss.signals, w.clock.Now())
	ss.c.Signal()
	b.mu.Unlock()
}

// SemaWait performs P: block until a signal is banked, resuming no
// earlier than that signal's virtual time.
func (w *smpWorker) SemaWait(sem int) {
	b := w.b
	b.mu.Lock()
	ss := b.semaFor(sem)
	for len(ss.signals) == 0 && !b.aborted {
		ss.c.Wait()
	}
	if b.aborted {
		b.abortPanicLocked()
	}
	at := ss.signals[0]
	ss.signals = ss.signals[1:]
	b.mu.Unlock()
	w.clock.AdvanceTo(at)
	w.clock.Advance(smpSemaCost)
}

// CondWait atomically releases the lock, blocks on the condition
// variable, and re-acquires the lock before returning.
func (w *smpWorker) CondWait(cond, lock int) {
	b := w.b
	b.mu.Lock()
	ls := b.lockFor(lock)
	if !ls.held {
		b.mu.Unlock()
		panic("smp: CondWait requires the associated lock to be held")
	}
	// Release and register atomically under b.mu: a signal can only be
	// issued by the next lock holder, who exists only after this release,
	// so the registration can never lose a wakeup.
	ls.held = false
	if t := w.clock.Now(); t > ls.release {
		ls.release = t
	}
	ls.c.Signal()
	cq := b.condFor(cond)
	cq.waiting++
	for cq.tokens == 0 && !b.aborted {
		cq.c.Wait()
	}
	if b.aborted {
		b.abortPanicLocked()
	}
	cq.tokens--
	wake := cq.wake
	// Re-acquire the lock before returning.
	for ls.held && !b.aborted {
		ls.c.Wait()
	}
	if b.aborted {
		b.abortPanicLocked()
	}
	ls.held = true
	release := ls.release
	b.mu.Unlock()
	w.clock.AdvanceTo(wake)
	w.clock.AdvanceTo(release)
	w.clock.Advance(smpCondCost + smpLockCost)
}

func (w *smpWorker) CondSignal(cond, lock int)    { w.condNotify(cond, false) }
func (w *smpWorker) CondBroadcast(cond, lock int) { w.condNotify(cond, true) }

func (w *smpWorker) condNotify(cond int, all bool) {
	b := w.b
	w.clock.Advance(smpCondCost)
	b.mu.Lock()
	cq := b.condFor(cond)
	if t := w.clock.Now(); t > cq.wake {
		cq.wake = t
	}
	if all {
		cq.tokens += cq.waiting
		cq.waiting = 0
		cq.c.Broadcast()
	} else if cq.waiting > 0 {
		cq.waiting--
		cq.tokens++
		cq.c.Signal()
	}
	b.mu.Unlock()
}

// Flush is a no-op on coherent hardware shared memory: every write is
// already visible. It exists so flush-using sources stay portable; the
// 2(n-1) message cost the paper measures is a NOW artifact.
func (w *smpWorker) Flush() {}

// ---------------------------------------------------------------------
// Shared-memory access: direct loads and stores on the flat heap. The
// application's own synchronization (all of it funnelled through b.mu)
// provides the ordering, exactly as on real hardware.
// ---------------------------------------------------------------------

func (w *smpWorker) checkRange(a Addr, size int) {
	if a < 0 || int(a)+size > w.b.heapBytes {
		panic(fmt.Sprintf("smp: access [%d,%d) outside shared heap of %d bytes", a, int(a)+size, w.b.heapBytes))
	}
}

func (w *smpWorker) ReadF64(a Addr) float64 {
	w.checkRange(a, 8)
	return math.Float64frombits(binary.LittleEndian.Uint64(w.b.heap[a:]))
}

func (w *smpWorker) WriteF64(a Addr, v float64) {
	w.checkRange(a, 8)
	binary.LittleEndian.PutUint64(w.b.heap[a:], math.Float64bits(v))
}

func (w *smpWorker) ReadI64(a Addr) int64 {
	w.checkRange(a, 8)
	return int64(binary.LittleEndian.Uint64(w.b.heap[a:]))
}

func (w *smpWorker) WriteI64(a Addr, v int64) {
	w.checkRange(a, 8)
	binary.LittleEndian.PutUint64(w.b.heap[a:], uint64(v))
}

func (w *smpWorker) ReadI32(a Addr) int32 {
	w.checkRange(a, 4)
	return int32(binary.LittleEndian.Uint32(w.b.heap[a:]))
}

func (w *smpWorker) WriteI32(a Addr, v int32) {
	w.checkRange(a, 4)
	binary.LittleEndian.PutUint32(w.b.heap[a:], uint32(v))
}

func (w *smpWorker) ReadBytes(a Addr, dst []byte) {
	w.checkRange(a, len(dst))
	copy(dst, w.b.heap[a:int(a)+len(dst)])
}

func (w *smpWorker) WriteBytes(a Addr, src []byte) {
	w.checkRange(a, len(src))
	copy(w.b.heap[a:], src)
}

func (w *smpWorker) ReadF64s(a Addr, dst []float64) {
	w.checkRange(a, 8*len(dst))
	h := w.b.heap[a:]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(h[8*i:]))
	}
}

func (w *smpWorker) WriteF64s(a Addr, src []float64) {
	w.checkRange(a, 8*len(src))
	h := w.b.heap[a:]
	for i, v := range src {
		binary.LittleEndian.PutUint64(h[8*i:], math.Float64bits(v))
	}
}

func (w *smpWorker) ReadI32s(a Addr, dst []int32) {
	w.checkRange(a, 4*len(dst))
	h := w.b.heap[a:]
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(h[4*i:]))
	}
}

func (w *smpWorker) WriteI32s(a Addr, src []int32) {
	w.checkRange(a, 4*len(src))
	h := w.b.heap[a:]
	for i, v := range src {
		binary.LittleEndian.PutUint32(h[4*i:], uint32(v))
	}
}

var _ Worker = (*smpWorker)(nil)
var _ Backend = (*smpBackend)(nil)
var _ Backend = (*dsmBackend)(nil)
