package core

import (
	"encoding/binary"
	"math"
)

// Args builds the firstprivate environment for a fork: "Pointers to shared
// variables and initial values of firstprivate variables are copied into a
// structure and passed at fork" (Section 4.3.2). Values are read back in
// the same order with ArgReader.
type Args struct{ b []byte }

// NoArgs is an empty environment.
func NoArgs() *Args { return &Args{} }

func (a *Args) bytes() []byte {
	if a == nil {
		return nil
	}
	return a.b
}

// I64 appends an int64 firstprivate value.
func (a *Args) I64(v int64) *Args {
	a.b = binary.LittleEndian.AppendUint64(a.b, uint64(v))
	return a
}

// Int appends an int firstprivate value.
func (a *Args) Int(v int) *Args { return a.I64(int64(v)) }

// F64 appends a float64 firstprivate value.
func (a *Args) F64(v float64) *Args {
	a.b = binary.LittleEndian.AppendUint64(a.b, math.Float64bits(v))
	return a
}

// Addr appends a pointer to a shared variable.
func (a *Args) Addr(v Addr) *Args { return a.I64(int64(v)) }

// Bytes appends a length-prefixed byte blob (e.g. a firstprivate array).
func (a *Args) Bytes(p []byte) *Args {
	a.b = binary.LittleEndian.AppendUint32(a.b, uint32(len(p)))
	a.b = append(a.b, p...)
	return a
}

// ArgReader decodes a fork's firstprivate environment in write order.
type ArgReader struct {
	b   []byte
	off int
}

func (r *ArgReader) take(n int) []byte {
	if r.off+n > len(r.b) {
		panic("core: firstprivate environment read past end")
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// I64 reads an int64.
func (r *ArgReader) I64() int64 { return int64(binary.LittleEndian.Uint64(r.take(8))) }

// Int reads an int.
func (r *ArgReader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *ArgReader) F64() float64 { return math.Float64frombits(binary.LittleEndian.Uint64(r.take(8))) }

// Addr reads a shared-variable pointer.
func (r *ArgReader) Addr() Addr { return Addr(r.I64()) }

// Bytes reads a length-prefixed blob.
func (r *ArgReader) Bytes() []byte {
	n := int(binary.LittleEndian.Uint32(r.take(4)))
	out := make([]byte, n)
	copy(out, r.take(n))
	return out
}
