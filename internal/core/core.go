// Package core is the OpenMP runtime of the paper: the target that the
// OpenMP-to-TreadMarks compiler (Section 4.3) emits code against. A
// Program holds the shared-data layout and the registered parallel
// regions; WHERE it runs is a pluggable Backend (see backend.go) selected
// through Config.Backend — TreadMarks on the simulated network of
// workstations (the paper's system), or goroutines over hardware shared
// memory (the baseline OpenMP was designed for). One application source
// written against this API runs unchanged on either.
//
// The programming model follows the paper's two proposed modifications to
// the OpenMP standard (Section 3):
//
//  1. Variables default to PRIVATE. Anything shared must be explicitly
//     allocated in the shared address space with Program.Shared /
//     SharedPage (the analogue of the compiler relocating variables marked
//     `shared` into DSM memory). Go locals inside a region body are
//     naturally private; firstprivate values are copied to the slaves in
//     the fork message via Args.
//
//  2. flush is replaced by semaphores and condition variables
//     (TC.SemaWait/SemaSignal, TC.CondWait/CondSignal/CondBroadcast).
//     Flush is still available (TC.Flush) so its cost can be measured —
//     the paper's Section 3.2.3 ablation.
//
// Directives map to methods:
//
//	parallel            Program.Parallel / RegisterRegion
//	parallel do         Program.ParallelDo / RegisterDo
//	critical(name)      TC.Critical
//	barrier             TC.Barrier
//	reduction(+:x)      Program.NewReduction + TC.Reduce (+ arrays, the
//	                    paper's extension, via NewArrayReduction)
//	firstprivate        Args passed at fork
//	threadprivate       TC.Threadprivate
package core

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/dsm"
	"repro/internal/sim"
)

// Config describes an OpenMP execution environment.
type Config struct {
	// Threads is the number of OpenMP threads (== workstations on the NOW
	// backend, goroutines on the SMP backend).
	Threads int
	// HeapBytes sizes the shared address space (default 64 MiB).
	HeapBytes int
	// Platform overrides the cost model.
	Platform *sim.Platform
	// Backend selects the execution substrate; the zero value is
	// BackendNOW, the paper's network of workstations.
	Backend BackendKind
	// Islands is the SMP island count of the hybrid backend (ignored by
	// the others): the team's Threads workers are mapped onto this many
	// islands, intra-island sharing at bus scale, inter-island coherence
	// through the DSM. 0 defaults to 2; the value is clamped to
	// [1, Threads]. An island count encoded in the Backend kind itself
	// (HybridIslands) takes precedence.
	Islands int

	// DSM metadata-GC knobs, forwarded to the NOW and hybrid backends
	// (no-ops on hardware shared memory, which keeps no LRC metadata).
	//
	// DisableGC turns collection off entirely; GCMinRetire is the
	// adaptive barrier/fork-episode trigger (see dsm.Config.GCMinRetire);
	// GCPressure is the acquire-epoch trigger for lock/semaphore programs
	// (0 = dsm.DefaultGCPressure, negative disables; see
	// dsm.Config.GCPressure); GCPolicy selects the per-page
	// validate-vs-flush purge policy ("", "flush", "validate-hot",
	// "adaptive" — see dsm.ParseGCPolicy).
	DisableGC   bool
	GCMinRetire int
	GCPressure  int
	GCPolicy    string

	// HomePolicy selects how initial page ownership is spread across the
	// NOW ("", "default", "block-cyclic", "node0", "first-touch" — see
	// dsm.ParseHomePolicy); BarrierFanin caps the combining-tree arity of
	// the DSM barrier (0 = dsm.DefaultBarrierFanin). Both are no-ops on
	// hardware shared memory.
	HomePolicy   string
	BarrierFanin int

	// WireV1 selects the pre-batching DSM wire protocol: full per-record
	// vector clocks, flat page lists, one datagram per message (see
	// dsm.Config.WireV1). The default is the v2 coalesced + delta-
	// compressed format; v1 exists for byte-count pins and the bench-wire
	// before/after comparison. A no-op on hardware shared memory.
	WireV1 bool
}

// dsmConfig assembles the dsm.Config shared by the DSM-backed backends.
func dsmConfig(cfg Config, procs int, multiClient bool) dsm.Config {
	policy, err := dsm.ParseGCPolicy(cfg.GCPolicy)
	if err != nil {
		panic(err.Error())
	}
	homes, err := dsm.ParseHomePolicy(cfg.HomePolicy)
	if err != nil {
		panic(err.Error())
	}
	return dsm.Config{
		Procs:        procs,
		HeapBytes:    cfg.HeapBytes,
		Platform:     cfg.Platform,
		MultiClient:  multiClient,
		DisableGC:    cfg.DisableGC,
		GCMinRetire:  cfg.GCMinRetire,
		GCPressure:   cfg.GCPressure,
		GCPolicy:     policy,
		HomePolicy:   homes,
		BarrierFanin: cfg.BarrierFanin,
		WireV1:       cfg.WireV1,
	}
}

// Program is one OpenMP program instance: shared-data layout, registered
// parallel regions, and the backend that executes them.
type Program struct {
	be      Backend
	threads int

	mu       sync.Mutex
	nextRed  int                 // reduction slot allocator
	tpStores []map[string][]byte // threadprivate memory, one map per thread
}

// NewProgram creates a program for cfg.Threads threads on the configured
// backend.
func NewProgram(cfg Config) *Program {
	if cfg.Threads <= 0 {
		panic("core: Config.Threads must be positive")
	}
	var be Backend
	base, islands, ok := parseBackendKind(cfg.Backend)
	if !ok {
		panic(fmt.Sprintf("core: unknown backend %q", cfg.Backend))
	}
	switch base {
	case BackendNOW:
		be = newDSMBackend(cfg)
	case BackendSMP:
		be = newSMPBackend(cfg)
	case BackendHybrid:
		if islands == 0 {
			islands = cfg.Islands
		}
		be = newHybridBackend(cfg, islands)
	}
	p := &Program{
		be:       be,
		threads:  cfg.Threads,
		tpStores: make([]map[string][]byte, cfg.Threads),
	}
	for i := range p.tpStores {
		p.tpStores[i] = make(map[string][]byte)
	}
	return p
}

// Threads returns the team size.
func (p *Program) Threads() int { return p.threads }

// Backend exposes the execution substrate (for tests and the harness).
func (p *Program) Backend() Backend { return p.be }

// Shared allocates size bytes of shared memory (8-byte aligned): the
// explicit `shared` declaration of the paper's private-by-default model.
func (p *Program) Shared(size int) Addr { return p.be.Malloc(size) }

// SharedPage allocates shared memory starting on a page boundary, keeping
// unrelated shared variables from false-sharing a page on the NOW backend
// (a layout no-op on hardware shared memory).
func (p *Program) SharedPage(size int) Addr { return p.be.MallocPage(size) }

// MallocPage is SharedPage under the allocator-interface name shared with
// dsm.System, so application layout helpers accept a Program and a DSM
// system interchangeably.
func (p *Program) MallocPage(size int) Addr { return p.be.MallocPage(size) }

// Run executes the sequential master program; inside it, Parallel and
// ParallelDo fork the registered regions across the team. It returns the
// first thread failure, if any.
func (p *Program) Run(master func(m *MC)) error {
	return p.be.Run(func(w Worker) {
		master(&MC{TC: TC{p: p, w: w, threads: p.threads}})
	})
}

// Elapsed returns the parallel execution time: the maximum virtual clock
// across the team after Run completes.
func (p *Program) Elapsed() sim.Time { return p.be.MaxClock() }

// Traffic returns total interconnect messages and bytes so far (zero on
// the SMP backend).
func (p *Program) Traffic() (messages, bytes int64) { return p.be.Traffic() }

// TrafficBreakdown splits the traffic so far into page service,
// synchronization, and GC consensus — the categories the scaling tables
// attribute a wall to (all zero on hardware shared memory).
func (p *Program) TrafficBreakdown() dsm.TrafficBreakdown { return p.be.TrafficBreakdown() }

// Frames returns the datagram count so far: with v2 frame coalescing,
// Traffic's message count stays logical (per sub-message) while Frames
// counts what actually crossed the wire (zero on hardware shared memory).
func (p *Program) Frames() int64 { return p.be.Frames() }

// ResetTraffic zeroes the traffic counters (to measure one phase).
func (p *Program) ResetTraffic() { p.be.ResetTraffic() }

// ProtoSummary reports the backend's protocol-metadata footprint after
// Run: retired interval records, peak retained interval-chain length, and
// peak metadata bytes on any node (all zero on backends that keep no
// consistency metadata).
func (p *Program) ProtoSummary() (retired, peakChain, peakBytes int64) {
	return p.be.ProtoSummary()
}

// GCSummary reports metadata-GC accounting: synchronization episodes
// examined, collections run per epoch source, and the validate-vs-flush
// purge outcomes (all zero on the SMP backend).
func (p *Program) GCSummary() dsm.GCStats { return p.be.GCSummary() }

// Close releases the backend's resources (see Backend.Close): protocol
// servers and reply routers on the DSM-backed backends, which otherwise
// outlive the program — forever, if it was constructed but never Run.
// Idempotent; results and statistics remain readable afterwards.
func (p *Program) Close() error { return p.be.Close() }

// criticalLock maps a critical-section name to a lock id. Named critical
// sections with the same name share one lock program-wide, per the
// standard; the id space is partitioned away from user semaphore ids.
func criticalLock(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32()&0x3fffff) | 1<<26
}

// CriticalLockID exposes the lock id behind a named critical section, for
// code that brackets a critical region through lower-level Worker calls
// (the compiler emits exactly this mapping for the critical directive).
func CriticalLockID(name string) int { return criticalLock(name) }
