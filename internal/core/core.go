// Package core is the OpenMP runtime of the paper: the target that the
// OpenMP-to-TreadMarks compiler (Section 4.3) emits code against. It runs
// a fork-join OpenMP program on the TreadMarks DSM over the simulated
// network of workstations.
//
// The programming model follows the paper's two proposed modifications to
// the OpenMP standard (Section 3):
//
//  1. Variables default to PRIVATE. Anything shared must be explicitly
//     allocated in the shared address space with Program.Shared /
//     SharedPage (the analogue of the compiler relocating variables marked
//     `shared` into DSM memory). Go locals inside a region body are
//     naturally private; firstprivate values are copied to the slaves in
//     the fork message via Args.
//
//  2. flush is replaced by semaphores and condition variables
//     (TC.SemaWait/SemaSignal, TC.CondWait/CondSignal/CondBroadcast).
//     Flush is still available (TC.Flush) so its cost can be measured —
//     the paper's Section 3.2.3 ablation.
//
// Directives map to methods:
//
//	parallel            Program.Parallel / RegisterRegion
//	parallel do         Program.ParallelDo / RegisterDo
//	critical(name)      TC.Critical
//	barrier             TC.Barrier
//	reduction(+:x)      Program.NewReduction + TC.Reduce (+ arrays, the
//	                    paper's extension, via NewArrayReduction)
//	firstprivate        Args passed at fork
//	threadprivate       TC.Threadprivate
package core

import (
	"hash/fnv"
	"sync"

	"repro/internal/dsm"
	"repro/internal/sim"
)

// Config describes an OpenMP execution environment on the NOW.
type Config struct {
	// Threads is the number of OpenMP threads == workstations.
	Threads int
	// HeapBytes sizes the shared address space (default 64 MiB).
	HeapBytes int
	// Platform overrides the cost model.
	Platform *sim.Platform
}

// Program is one OpenMP program instance: shared-data layout, registered
// parallel regions, and the underlying DSM system.
type Program struct {
	sys     *dsm.System
	threads int

	mu       sync.Mutex
	nextRed  int                 // reduction slot allocator
	tpStores []map[string][]byte // threadprivate memory, one map per thread
}

// NewProgram creates a program for cfg.Threads threads.
func NewProgram(cfg Config) *Program {
	if cfg.Threads <= 0 {
		panic("core: Config.Threads must be positive")
	}
	sys := dsm.New(dsm.Config{
		Procs:     cfg.Threads,
		HeapBytes: cfg.HeapBytes,
		Platform:  cfg.Platform,
	})
	p := &Program{
		sys:      sys,
		threads:  cfg.Threads,
		tpStores: make([]map[string][]byte, cfg.Threads),
	}
	for i := range p.tpStores {
		p.tpStores[i] = make(map[string][]byte)
	}
	return p
}

// Threads returns the team size.
func (p *Program) Threads() int { return p.threads }

// System exposes the underlying DSM (for the harness and statistics).
func (p *Program) System() *dsm.System { return p.sys }

// Shared allocates size bytes of shared memory (8-byte aligned): the
// explicit `shared` declaration of the paper's private-by-default model.
func (p *Program) Shared(size int) dsm.Addr { return p.sys.Malloc(size) }

// SharedPage allocates shared memory starting on a page boundary, keeping
// unrelated shared variables from false-sharing a page.
func (p *Program) SharedPage(size int) dsm.Addr { return p.sys.MallocPage(size) }

// Run executes the sequential master program; inside it, Parallel and
// ParallelDo fork the registered regions across the team. It returns the
// first node failure, if any.
func (p *Program) Run(master func(m *MC)) error {
	return p.sys.Run(func(n *dsm.Node) {
		master(&MC{TC: TC{p: p, n: n, threads: p.threads}})
	})
}

// Elapsed returns the parallel execution time: the maximum virtual clock
// across the team after Run completes.
func (p *Program) Elapsed() sim.Time { return p.sys.MaxClock() }

// Traffic returns total protocol messages and bytes so far.
func (p *Program) Traffic() (messages, bytes int64) {
	return p.sys.Switch().Stats().Snapshot()
}

// ResetTraffic zeroes the traffic counters (to measure one phase).
func (p *Program) ResetTraffic() { p.sys.Switch().ResetStats() }

// ProtoSummary reports the DSM's protocol-metadata footprint after Run:
// retired interval records, peak retained interval-chain length, and
// peak metadata bytes on any node (see dsm.System.ProtoSummary).
func (p *Program) ProtoSummary() (retired, peakChain, peakBytes int64) {
	return p.sys.ProtoSummary()
}

// criticalLock maps a critical-section name to a lock id. Named critical
// sections with the same name share one lock program-wide, per the
// standard; the id space is partitioned away from user semaphore ids.
func criticalLock(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32()&0x3fffff) | 1<<26
}

// CriticalLockID exposes the lock id behind a named critical section, for
// code that brackets a critical region through lower-level DSM calls (the
// compiler emits exactly this mapping for the critical directive).
func CriticalLockID(name string) int { return criticalLock(name) }
