package core

import (
	"repro/internal/dsm"
	"repro/internal/sim"
)

// dsmBackend is the NOW backend: TreadMarks on the simulated network of
// workstations. It is a thin adapter — *dsm.Node already implements
// Worker, so regions and the master run directly on their nodes.
type dsmBackend struct {
	sys *dsm.System
}

func newDSMBackend(cfg Config) *dsmBackend {
	return &dsmBackend{sys: dsm.New(dsmConfig(cfg, cfg.Threads, false))}
}

func (b *dsmBackend) Procs() int               { return b.sys.Procs() }
func (b *dsmBackend) Malloc(size int) Addr     { return b.sys.Malloc(size) }
func (b *dsmBackend) MallocPage(size int) Addr { return b.sys.MallocPage(size) }

func (b *dsmBackend) Register(name string, fn func(w Worker, arg []byte)) {
	b.sys.Register(name, func(n *dsm.Node, arg []byte) { fn(n, arg) })
}

func (b *dsmBackend) Run(master func(w Worker)) error {
	return b.sys.Run(func(n *dsm.Node) { master(n) })
}

func (b *dsmBackend) MaxClock() sim.Time { return b.sys.MaxClock() }

func (b *dsmBackend) Traffic() (int64, int64) {
	return b.sys.Switch().Stats().Snapshot()
}

func (b *dsmBackend) TrafficBreakdown() dsm.TrafficBreakdown {
	return b.sys.TrafficBreakdown()
}

func (b *dsmBackend) Frames() int64 { return b.sys.Frames() }

func (b *dsmBackend) ResetTraffic() { b.sys.Switch().ResetStats() }

func (b *dsmBackend) ProtoSummary() (int64, int64, int64) {
	return b.sys.ProtoSummary()
}

func (b *dsmBackend) GCSummary() dsm.GCStats { return b.sys.GCSummary() }

// Close shuts the DSM system down: without it, the P protocol servers
// (and, multi-client, P reply routers) started at construction outlive
// the backend — on a never-Run backend they outlive it forever.
func (b *dsmBackend) Close() error { return b.sys.Shutdown() }
