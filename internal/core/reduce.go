package core

import "fmt"

// Reductions. "The reduction directive identifies reduction variables.
// According to the standard, reduction variables must be scalar, but we
// extend the standard to include arrays" (Section 2). The runtime
// implements a reduction as a shared accumulator updated once per thread
// under a dedicated lock — each thread combines its private partial result
// at region end, which is both the standard semantics and the cheap thing
// to do on a software DSM.

// ReduceOp names the combining operation of a reduction clause.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpProd
	OpMin
	OpMax
)

func (op ReduceOp) combine(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("core: unknown reduction op %d", op))
}

func (op ReduceOp) identity() float64 {
	switch op {
	case OpSum:
		return 0
	case OpProd:
		return 1
	case OpMin:
		return +1.797693134862315708145274237317043567981e308 // MaxFloat64
	case OpMax:
		return -1.797693134862315708145274237317043567981e308
	}
	panic("core: unknown reduction op")
}

// Reduction is a scalar float64 reduction variable living in shared
// memory.
type Reduction struct {
	op   ReduceOp
	addr Addr
	lock int
}

// NewReduction allocates a reduction variable with the given operator.
// Allocate reductions before Run (the master initializes them lazily).
func (p *Program) NewReduction(op ReduceOp) *Reduction {
	p.mu.Lock()
	id := p.nextRed
	p.nextRed++
	p.mu.Unlock()
	return &Reduction{
		op:   op,
		addr: p.be.MallocPage(8),
		lock: 1<<27 | id,
	}
}

// Reset sets the accumulator to the operator's identity; call it (from the
// master, outside parallel regions) before each use.
func (r *Reduction) Reset(tc *TC) {
	tc.w.WriteF64(r.addr, r.op.identity())
}

// Reduce folds a thread's private partial value into the accumulator.
func (r *Reduction) Reduce(tc *TC, local float64) {
	tc.w.Acquire(r.lock)
	cur := tc.w.ReadF64(r.addr)
	tc.w.WriteF64(r.addr, r.op.combine(cur, local))
	tc.w.Release(r.lock)
}

// Value reads the accumulated result (master, after the region).
func (r *Reduction) Value(tc *TC) float64 {
	return tc.w.ReadF64(r.addr)
}

// ArrayReduction is the paper's extension: an array-valued reduction
// variable. Each thread contributes a whole private array; contributions
// combine element-wise under one lock (one coarse-grained update per
// thread, not one per element — the point of the extension).
type ArrayReduction struct {
	op   ReduceOp
	addr Addr
	n    int
	lock int
}

// NewArrayReduction allocates an n-element float64 array reduction.
func (p *Program) NewArrayReduction(op ReduceOp, n int) *ArrayReduction {
	p.mu.Lock()
	id := p.nextRed
	p.nextRed++
	p.mu.Unlock()
	return &ArrayReduction{
		op:   op,
		addr: p.be.MallocPage(8 * n),
		n:    n,
		lock: 1<<27 | id,
	}
}

// Len returns the array length.
func (ar *ArrayReduction) Len() int { return ar.n }

// Addr returns the shared address of the accumulator array (for reading
// results in bulk).
func (ar *ArrayReduction) Addr() Addr { return ar.addr }

// Reset fills the accumulator with the operator's identity.
func (ar *ArrayReduction) Reset(tc *TC) {
	buf := make([]float64, ar.n)
	id := ar.op.identity()
	for i := range buf {
		buf[i] = id
	}
	tc.w.WriteF64s(ar.addr, buf)
}

// Reduce folds a thread's private partial array into the accumulator.
func (ar *ArrayReduction) Reduce(tc *TC, local []float64) {
	if len(local) != ar.n {
		panic(fmt.Sprintf("core: array reduction length %d, want %d", len(local), ar.n))
	}
	tc.w.Acquire(ar.lock)
	cur := make([]float64, ar.n)
	tc.w.ReadF64s(ar.addr, cur)
	for i := range cur {
		cur[i] = ar.op.combine(cur[i], local[i])
	}
	tc.w.WriteF64s(ar.addr, cur)
	tc.w.Release(ar.lock)
}

// Value reads the accumulated array into dst.
func (ar *ArrayReduction) Value(tc *TC, dst []float64) {
	if len(dst) != ar.n {
		panic("core: array reduction Value length mismatch")
	}
	tc.w.ReadF64s(ar.addr, dst)
}
