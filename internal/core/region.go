package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dsm"
	"repro/internal/sim"
)

// TC is the thread context inside a parallel region: thread number, team
// size, synchronization directives, and access to shared memory. A TC's
// methods model the code the compiler emits for each directive.
type TC struct {
	p       *Program
	n       *dsm.Node
	threads int
	args    []byte // firstprivate environment received at fork
}

// MC is the master context: the sequential program between parallel
// regions runs with it on thread 0, and it can open parallel regions.
type MC struct {
	TC
}

// ThreadNum returns the OpenMP thread number (0 = master).
func (tc *TC) ThreadNum() int { return tc.n.ID() }

// NumThreads returns the team size.
func (tc *TC) NumThreads() int { return tc.threads }

// Node exposes the underlying DSM node: ReadF64, WriteF64, and friends are
// the compiler-emitted shared-memory access checks.
func (tc *TC) Node() *dsm.Node { return tc.n }

// Args returns a reader over the firstprivate environment passed at fork.
func (tc *TC) Args() *ArgReader { return &ArgReader{b: tc.args} }

// Compute charges virtual time for flops floating-point operations of real
// work performed by the caller.
func (tc *TC) Compute(flops float64) { tc.n.Compute(flops) }

// Now returns the thread's current virtual time.
func (tc *TC) Now() sim.Time { return tc.n.Now() }

// Barrier is the OpenMP barrier directive.
func (tc *TC) Barrier() { tc.n.Barrier() }

// Critical executes body inside the named critical section: one thread at
// a time program-wide per name, with entry acquiring and exit releasing
// consistency, per Section 2.
func (tc *TC) Critical(name string, body func()) {
	id := criticalLock(name)
	tc.n.Acquire(id)
	defer tc.n.Release(id)
	body()
}

// SemaWait is the paper's proposed sema_wait directive (P).
func (tc *TC) SemaWait(sem int) { tc.n.SemaWait(sem) }

// SemaSignal is the paper's proposed sema_signal directive (V).
func (tc *TC) SemaSignal(sem int) { tc.n.SemaSignal(sem) }

// CondWait blocks on condition variable cond inside the named critical
// section (which the calling thread must have entered via CriticalEnter or
// be lexically inside through Critical).
func (tc *TC) CondWait(cond int, critical string) {
	tc.n.CondWait(cond, criticalLock(critical))
}

// CondSignal unblocks one waiter on cond (no effect if none), per the
// paper's proposed directive.
func (tc *TC) CondSignal(cond int, critical string) {
	tc.n.CondSignal(cond, criticalLock(critical))
}

// CondBroadcast unblocks every waiter on cond.
func (tc *TC) CondBroadcast(cond int, critical string) {
	tc.n.CondBroadcast(cond, criticalLock(critical))
}

// CriticalEnter/CriticalExit expose the named critical section as explicit
// brackets for code whose critical region does not nest lexically (the
// task-queue pattern of Figure 4).
func (tc *TC) CriticalEnter(name string) { tc.n.Acquire(criticalLock(name)) }

// CriticalExit leaves the named critical section.
func (tc *TC) CriticalExit(name string) { tc.n.Release(criticalLock(name)) }

// Flush is the OpenMP flush directive the paper proposes to remove; it is
// implemented (at its full 2(n-1) message cost) for the ablation studies.
func (tc *TC) Flush() { tc.n.Flush() }

// Threadprivate returns this thread's persistent private storage of the
// given name and size, allocating it zeroed on first use (the Fortran
// threadprivate common block of Section 2).
func (tc *TC) Threadprivate(name string, size int) []byte {
	store := tc.p.tpStores[tc.n.ID()]
	buf, ok := store[name]
	if !ok || len(buf) < size {
		buf = make([]byte, size)
		store[name] = buf
	}
	return buf[:size]
}

// StaticRange computes this thread's contiguous block of the iteration
// space [lo, hi): the static schedule the compiler emits for parallel do.
func (tc *TC) StaticRange(lo, hi int) (int, int) {
	return StaticBlock(lo, hi, tc.ThreadNum(), tc.threads)
}

// StaticBlock partitions [lo, hi) into nearly equal contiguous blocks and
// returns the bounds of block `who` of `of`.
func StaticBlock(lo, hi, who, of int) (int, int) {
	n := hi - lo
	if n <= 0 {
		return lo, lo
	}
	base := n / of
	rem := n % of
	start := lo + who*base + min(who, rem)
	end := start + base
	if who < rem {
		end++
	}
	return start, end
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Region registration and fork.
// ---------------------------------------------------------------------

// RegisterRegion registers the body of a `parallel` region under a name:
// the analogue of the compiler encapsulating each parallel region into a
// separate subroutine (Section 4.3.2). Must be called before Run.
func (p *Program) RegisterRegion(name string, body func(tc *TC)) {
	p.sys.Register(name, func(n *dsm.Node, arg []byte) {
		body(&TC{p: p, n: n, threads: p.threads, args: arg})
	})
}

// RegisterDo registers the body of a `parallel do` region: the runtime
// hands each thread its static block [lo, hi) of the loop bounds supplied
// at the ParallelDo call site.
func (p *Program) RegisterDo(name string, body func(tc *TC, lo, hi int)) {
	p.sys.Register(name, func(n *dsm.Node, arg []byte) {
		if len(arg) < 16 {
			panic(fmt.Sprintf("core: parallel do %q fork missing loop bounds", name))
		}
		gLo := int(int64(binary.LittleEndian.Uint64(arg)))
		gHi := int(int64(binary.LittleEndian.Uint64(arg[8:])))
		tc := &TC{p: p, n: n, threads: p.threads, args: arg[16:]}
		lo, hi := StaticBlock(gLo, gHi, n.ID(), p.threads)
		body(tc, lo, hi)
	})
}

// Parallel opens the named parallel region on the whole team, passing the
// firstprivate environment (master's values at the fork, Section 2), and
// returns after all threads have joined.
func (m *MC) Parallel(name string, args *Args) {
	m.n.RunParallel(name, args.bytes())
}

// ParallelDo opens the named parallel-do region over the iteration space
// [lo, hi), statically partitioned across the team.
func (m *MC) ParallelDo(name string, lo, hi int, args *Args) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(int64(lo)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(hi)))
	m.n.RunParallel(name, append(hdr[:], args.bytes()...))
}
