package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
)

// TC is the thread context inside a parallel region: thread number, team
// size, synchronization directives, and access to shared memory. A TC's
// methods model the code the compiler emits for each directive; they all
// dispatch through the backend Worker, so region bodies written against
// TC are backend-neutral.
type TC struct {
	p       *Program
	w       Worker
	threads int
	args    []byte // firstprivate environment received at fork
}

// MC is the master context: the sequential program between parallel
// regions runs with it on thread 0, and it can open parallel regions.
type MC struct {
	TC
}

// ThreadNum returns the OpenMP thread number (0 = master).
func (tc *TC) ThreadNum() int { return tc.w.ID() }

// NumThreads returns the team size.
func (tc *TC) NumThreads() int { return tc.threads }

// Worker exposes the backend worker: the runtime-level API (raw lock ids,
// Poll, memory access) that shared layout helpers and compiler-emitted
// code use directly. On the NOW backend this is the *dsm.Node itself.
func (tc *TC) Worker() Worker { return tc.w }

// Args returns a reader over the firstprivate environment passed at fork.
func (tc *TC) Args() *ArgReader { return &ArgReader{b: tc.args} }

// Compute charges virtual time for flops floating-point operations of real
// work performed by the caller.
func (tc *TC) Compute(flops float64) { tc.w.Compute(flops) }

// Now returns the thread's current virtual time.
func (tc *TC) Now() sim.Time { return tc.w.Now() }

// Barrier is the OpenMP barrier directive.
func (tc *TC) Barrier() { tc.w.Barrier() }

// Critical executes body inside the named critical section: one thread at
// a time program-wide per name, with entry acquiring and exit releasing
// consistency, per Section 2.
func (tc *TC) Critical(name string, body func()) {
	id := criticalLock(name)
	tc.w.Acquire(id)
	defer tc.w.Release(id)
	body()
}

// SemaWait is the paper's proposed sema_wait directive (P).
func (tc *TC) SemaWait(sem int) { tc.w.SemaWait(sem) }

// SemaSignal is the paper's proposed sema_signal directive (V).
func (tc *TC) SemaSignal(sem int) { tc.w.SemaSignal(sem) }

// CondWait blocks on condition variable cond inside the named critical
// section (which the calling thread must have entered via CriticalEnter or
// be lexically inside through Critical).
func (tc *TC) CondWait(cond int, critical string) {
	tc.w.CondWait(cond, criticalLock(critical))
}

// CondSignal unblocks one waiter on cond (no effect if none), per the
// paper's proposed directive.
func (tc *TC) CondSignal(cond int, critical string) {
	tc.w.CondSignal(cond, criticalLock(critical))
}

// CondBroadcast unblocks every waiter on cond.
func (tc *TC) CondBroadcast(cond int, critical string) {
	tc.w.CondBroadcast(cond, criticalLock(critical))
}

// CriticalEnter/CriticalExit expose the named critical section as explicit
// brackets for code whose critical region does not nest lexically (the
// task-queue pattern of Figure 4).
func (tc *TC) CriticalEnter(name string) { tc.w.Acquire(criticalLock(name)) }

// CriticalExit leaves the named critical section.
func (tc *TC) CriticalExit(name string) { tc.w.Release(criticalLock(name)) }

// Flush is the OpenMP flush directive the paper proposes to remove; it is
// implemented (at its full 2(n-1) message cost on the NOW backend) for
// the ablation studies. On hardware shared memory it is a no-op.
func (tc *TC) Flush() { tc.w.Flush() }

// Threadprivate returns this thread's persistent private storage of the
// given name and size, allocating it zeroed on first use (the Fortran
// threadprivate common block of Section 2).
func (tc *TC) Threadprivate(name string, size int) []byte {
	store := tc.p.tpStores[tc.w.ID()]
	buf, ok := store[name]
	if !ok || len(buf) < size {
		buf = make([]byte, size)
		store[name] = buf
	}
	return buf[:size]
}

// ---------------------------------------------------------------------
// Shared-memory access: the compiler-emitted access checks, forwarded to
// the backend so region bodies need no backend-specific handle.
// ---------------------------------------------------------------------

// ReadF64 reads a float64 at shared address a.
func (tc *TC) ReadF64(a Addr) float64 { return tc.w.ReadF64(a) }

// WriteF64 writes a float64 at shared address a.
func (tc *TC) WriteF64(a Addr, v float64) { tc.w.WriteF64(a, v) }

// ReadI64 reads an int64 at shared address a.
func (tc *TC) ReadI64(a Addr) int64 { return tc.w.ReadI64(a) }

// WriteI64 writes an int64 at shared address a.
func (tc *TC) WriteI64(a Addr, v int64) { tc.w.WriteI64(a, v) }

// ReadI32 reads an int32 at shared address a.
func (tc *TC) ReadI32(a Addr) int32 { return tc.w.ReadI32(a) }

// WriteI32 writes an int32 at shared address a.
func (tc *TC) WriteI32(a Addr, v int32) { tc.w.WriteI32(a, v) }

// ReadBytes copies len(dst) bytes of shared memory starting at a into dst.
func (tc *TC) ReadBytes(a Addr, dst []byte) { tc.w.ReadBytes(a, dst) }

// WriteBytes copies src into shared memory starting at a.
func (tc *TC) WriteBytes(a Addr, src []byte) { tc.w.WriteBytes(a, src) }

// ReadF64s reads len(dst) consecutive float64s starting at a.
func (tc *TC) ReadF64s(a Addr, dst []float64) { tc.w.ReadF64s(a, dst) }

// WriteF64s writes the float64s of src to consecutive addresses from a.
func (tc *TC) WriteF64s(a Addr, src []float64) { tc.w.WriteF64s(a, src) }

// ReadI32s reads len(dst) consecutive int32s starting at a.
func (tc *TC) ReadI32s(a Addr, dst []int32) { tc.w.ReadI32s(a, dst) }

// WriteI32s writes the int32s of src to consecutive addresses from a.
func (tc *TC) WriteI32s(a Addr, src []int32) { tc.w.WriteI32s(a, src) }

// StaticBlock partitions [lo, hi) into nearly equal contiguous blocks and
// returns the bounds of block `who` of `of`: the static schedule the
// compiler emits for parallel do. It is the single partition helper used
// by the omp, tmk, and mpi sources alike.
func StaticBlock(lo, hi, who, of int) (int, int) {
	n := hi - lo
	if n <= 0 {
		return lo, lo
	}
	base := n / of
	rem := n % of
	start := lo + who*base + min(who, rem)
	end := start + base
	if who < rem {
		end++
	}
	return start, end
}

// ---------------------------------------------------------------------
// Region registration and fork.
// ---------------------------------------------------------------------

// RegisterRegion registers the body of a `parallel` region under a name:
// the analogue of the compiler encapsulating each parallel region into a
// separate subroutine (Section 4.3.2). Must be called before Run.
func (p *Program) RegisterRegion(name string, body func(tc *TC)) {
	p.be.Register(name, func(w Worker, arg []byte) {
		body(&TC{p: p, w: w, threads: p.threads, args: arg})
	})
}

// RegisterDo registers the body of a `parallel do` region: the runtime
// hands each thread its static block [lo, hi) of the loop bounds supplied
// at the ParallelDo call site.
func (p *Program) RegisterDo(name string, body func(tc *TC, lo, hi int)) {
	p.be.Register(name, func(w Worker, arg []byte) {
		if len(arg) < 16 {
			panic(fmt.Sprintf("core: parallel do %q fork missing loop bounds", name))
		}
		gLo := int(int64(binary.LittleEndian.Uint64(arg)))
		gHi := int(int64(binary.LittleEndian.Uint64(arg[8:])))
		tc := &TC{p: p, w: w, threads: p.threads, args: arg[16:]}
		lo, hi := StaticBlock(gLo, gHi, w.ID(), p.threads)
		body(tc, lo, hi)
	})
}

// Parallel opens the named parallel region on the whole team, passing the
// firstprivate environment (master's values at the fork, Section 2), and
// returns after all threads have joined.
func (m *MC) Parallel(name string, args *Args) {
	m.w.RunParallel(name, args.bytes())
}

// ParallelDo opens the named parallel-do region over the iteration space
// [lo, hi), statically partitioned across the team.
func (m *MC) ParallelDo(name string, lo, hi int, args *Args) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(int64(lo)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(hi)))
	m.w.RunParallel(name, append(hdr[:], args.bytes()...))
}
