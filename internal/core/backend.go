package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dsm"
	"repro/internal/sim"
)

// The backend seam. The paper's premise is that one OpenMP source runs
// unchanged on whatever executes it — the standard targets hardware
// shared memory, Section 4 retargets it to a network of workstations.
// This file is that premise as an API: every primitive the runtime (TC,
// MC, reductions, the compiler in internal/ompc) needs is expressed
// against Backend and Worker, and an application written against the
// core API runs on any backend selected through Config.Backend.
//
// Three backends are provided:
//
//	BackendNOW    — TreadMarks on the simulated network of workstations
//	                (internal/dsm): the paper's system.
//	BackendSMP    — goroutines over one flat byte heap with native
//	                synchronization (backend_smp.go): the hardware
//	                shared-memory machine OpenMP was born on, the paper's
//	                implicit baseline. Zero interconnect traffic.
//	BackendHybrid — a NOW of SMPs (backend_hybrid.go): the team mapped
//	                onto k SMP islands, intra-island synchronization and
//	                memory at bus scale, inter-island coherence through
//	                the LRC DSM with one dsm.Node per island.

// Addr is an address in a backend's shared address space. It aliases
// dsm.Addr so hand-coded TreadMarks sources and backend-neutral OpenMP
// sources can share one set of layout helpers.
type Addr = dsm.Addr

// PageSize is the granularity of the NOW backend's consistency unit,
// re-exported so backend-neutral code can page-align shared layouts
// (a no-op for correctness on the SMP backend, but the alignment is what
// keeps the same source false-sharing-free on the NOW).
const PageSize = dsm.PageSize

// PageRound rounds n up to a whole number of pages. It is the single
// page-padding helper for every application's shared layout (omp and tmk
// sources alike).
func PageRound(n int) int {
	if r := n % PageSize; r != 0 {
		n += PageSize - r
	}
	return n
}

// BackendKind selects the execution substrate of a Program.
type BackendKind string

// Available backends. The zero value selects the NOW.
const (
	// BackendNOW runs on TreadMarks over the simulated network of
	// workstations — the paper's system.
	BackendNOW BackendKind = "now"
	// BackendSMP runs on goroutines over a flat shared heap with native
	// synchronization — hardware shared memory, the paper's baseline.
	BackendSMP BackendKind = "smp"
	// BackendHybrid runs on a network of SMP islands: native sharing
	// inside each island, the LRC DSM between islands. The island count
	// comes from Config.Islands (default 2, clamped to the team size);
	// HybridIslands(k) encodes an explicit count into the kind itself.
	BackendHybrid BackendKind = "hybrid"
)

// HybridIslands returns the hybrid backend kind pinned to k SMP islands,
// e.g. HybridIslands(2) == "hybrid:2". k is clamped to [1, Threads] at
// program creation, so HybridIslands(1) is an all-local degenerate (one
// big SMP) and any k ≥ Threads degenerates to one worker per island (a
// pure NOW). A non-positive k leaves the count unspecified, deferring to
// Config.Islands (and its default) exactly like plain BackendHybrid.
func HybridIslands(k int) BackendKind {
	if k <= 0 {
		return BackendHybrid
	}
	return BackendKind(fmt.Sprintf("hybrid:%d", k))
}

// parseBackendKind splits a kind into its base name and, for hybrid kinds,
// the encoded island count (0 when unspecified).
func parseBackendKind(k BackendKind) (base BackendKind, islands int, ok bool) {
	s := string(k)
	if s == "" {
		return BackendNOW, 0, true
	}
	if rest, found := strings.CutPrefix(s, string(BackendHybrid)); found {
		if rest == "" {
			return BackendHybrid, 0, true
		}
		if num, found := strings.CutPrefix(rest, ":"); found {
			v, err := strconv.Atoi(num)
			if err == nil && v > 0 {
				return BackendHybrid, v, true
			}
		}
		return "", 0, false
	}
	switch BackendKind(s) {
	case BackendNOW, BackendSMP:
		return BackendKind(s), 0, true
	}
	return "", 0, false
}

// Worker is one thread's handle on its backend: shared-memory access,
// synchronization, and the virtual clock. It is the runtime-level API the
// compiler emits calls against; TC wraps it with the directive-level API.
// *dsm.Node implements Worker directly on the NOW backend.
type Worker interface {
	// ID returns the thread/processor number (0 = master).
	ID() int
	// NumProcs returns the team size.
	NumProcs() int
	// Now returns the worker's current virtual time.
	Now() sim.Time
	// Compute charges the virtual cost of flops floating-point operations.
	Compute(flops float64)
	// Charge advances the clock by an explicit duration.
	Charge(d sim.Time)
	// Poll yields the processor inside a busy-wait loop.
	Poll()

	// Barrier blocks until every worker of the team has arrived.
	Barrier()
	// Acquire/Release bracket the lock with the given id (the calls the
	// compiler emits for a critical directive; see CriticalLockID).
	Acquire(lock int)
	Release(lock int)
	// SemaWait/SemaSignal are the paper's proposed P/V directives.
	SemaWait(sem int)
	SemaSignal(sem int)
	// CondWait atomically releases the lock, blocks on the condition
	// variable, and re-acquires the lock before returning; CondSignal
	// wakes one waiter and CondBroadcast all of them.
	CondWait(cond, lock int)
	CondSignal(cond, lock int)
	CondBroadcast(cond, lock int)
	// Flush is the OpenMP flush directive the paper proposes to remove
	// (kept for the ablations; a no-op on coherent hardware).
	Flush()
	// RunParallel forks the named registered region across the team and
	// joins (master only).
	RunParallel(region string, arg []byte)

	// Typed shared-memory access.
	ReadF64(a Addr) float64
	WriteF64(a Addr, v float64)
	ReadI64(a Addr) int64
	WriteI64(a Addr, v int64)
	ReadI32(a Addr) int32
	WriteI32(a Addr, v int32)
	ReadBytes(a Addr, dst []byte)
	WriteBytes(a Addr, src []byte)
	ReadF64s(a Addr, dst []float64)
	WriteF64s(a Addr, src []float64)
	ReadI32s(a Addr, dst []int32)
	WriteI32s(a Addr, src []int32)
}

// Backend is one execution substrate for an OpenMP program: a shared
// address space, a team of workers, region registration and fork/join,
// and the run-level accounting the harness reports.
type Backend interface {
	// Procs returns the team size.
	Procs() int
	// Malloc allocates size bytes (8-byte aligned, zeroed) in the shared
	// address space; MallocPage starts the block on a page boundary.
	Malloc(size int) Addr
	MallocPage(size int) Addr
	// Register binds a parallel-region body to a name on every worker.
	Register(name string, fn func(w Worker, arg []byte))
	// Run executes master on worker 0 while the rest of the team waits
	// for forked regions, returning the first worker failure.
	Run(master func(w Worker)) error
	// MaxClock returns the latest virtual time across the team.
	MaxClock() sim.Time
	// Traffic returns interconnect messages and bytes so far (zero on
	// hardware shared memory).
	Traffic() (messages, bytes int64)
	// TrafficBreakdown splits Traffic into page service, synchronization,
	// and GC consensus (all zero on hardware shared memory).
	TrafficBreakdown() dsm.TrafficBreakdown
	// Frames returns the datagram count so far: Traffic's message count
	// stays logical under v2 frame coalescing, Frames counts what crossed
	// the wire (zero on hardware shared memory).
	Frames() int64
	// ResetTraffic zeroes the traffic counters.
	ResetTraffic()
	// ProtoSummary reports consistency-protocol metadata accounting
	// (all zero on backends that keep none).
	ProtoSummary() (retired, peakChain, peakBytes int64)
	// GCSummary reports metadata-GC accounting: barrier/fork episodes
	// examined, collections run per epoch source (episode and acquire),
	// and validate-vs-flush purge outcomes (zero on backends without a
	// collector).
	GCSummary() dsm.GCStats
	// Close releases every resource the backend holds — DSM nodes, island
	// delegates, network endpoints, protocol servers, and reply routers —
	// and waits for their goroutines to exit. It is idempotent, must be
	// called once the backend is quiescent (after Run has returned, or on
	// a backend that was never Run), and returns the run's first error.
	// Statistics (Traffic, ProtoSummary, ...) remain readable after Close.
	Close() error
}

// The NOW worker is the DSM node itself.
var _ Worker = (*dsm.Node)(nil)
