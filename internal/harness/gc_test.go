package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps/water"
	"repro/internal/dsm"
)

// TestGCLongIterationWater is the acceptance criterion for the
// barrier-epoch collector on a real workload: Water at 4x and 8x its
// usual step count on the full 8-node machine must retire intervals, and
// its peak retained chain length must NOT grow with the iteration count
// (the chains are bounded by the two live epochs, not the run length).
func TestGCLongIterationWater(t *testing.T) {
	run := func(steps int) water.Params {
		p := water.Small()
		p.Steps = steps
		return p
	}
	res4, err := water.RunTmk(run(8), 8) // 4x the Small() step count
	if err != nil {
		t.Fatal(err)
	}
	if res4.IntervalsRetired == 0 {
		t.Error("long-iteration Water retired no intervals")
	}
	if res4.PeakIntervalChain == 0 || res4.PeakProtoBytes == 0 {
		t.Errorf("metadata counters not populated: chain=%d bytes=%d",
			res4.PeakIntervalChain, res4.PeakProtoBytes)
	}
	res8, err := water.RunTmk(run(16), 8) // doubled again
	if err != nil {
		t.Fatal(err)
	}
	if res8.PeakIntervalChain > res4.PeakIntervalChain+2 {
		t.Errorf("peak chain grew with iterations under GC: 8 steps -> %d, 16 steps -> %d",
			res4.PeakIntervalChain, res8.PeakIntervalChain)
	}

	// Contrast: without the collector the chain grows with the run.
	poff := run(8)
	poff.DisableGC = true
	off, err := water.RunTmk(poff, 8)
	if err != nil {
		t.Fatal(err)
	}
	if off.IntervalsRetired != 0 {
		t.Errorf("GC off still retired %d intervals", off.IntervalsRetired)
	}
	if off.PeakIntervalChain <= res4.PeakIntervalChain {
		t.Errorf("GC off peak chain (%d) not above GC on (%d)", off.PeakIntervalChain, res4.PeakIntervalChain)
	}
	if off.PeakProtoBytes <= res4.PeakProtoBytes {
		t.Errorf("GC off peak footprint (%d) not above GC on (%d)", off.PeakProtoBytes, res4.PeakProtoBytes)
	}
}

// TestEquivalenceWithGCDisabled reruns the cross-implementation
// equivalence contract with the collector off: every DSM-backed
// implementation must reproduce the sequential checksum either way (the
// collector is invisible to the computation). Runs sequentially — it
// flips the package-wide GC default, so it must not overlap the parallel
// suite (non-parallel tests never do).
func TestEquivalenceWithGCDisabled(t *testing.T) {
	dsm.SetGCDefault(false)
	defer dsm.SetGCDefault(true)
	for _, a := range Apps {
		for _, impl := range []Impl{OMP, Tmk} { // MPI holds no DSM metadata
			for _, procs := range []int{2, 8} {
				if err := CheckEquivalence(a, Test, impl, procs); err != nil {
					t.Errorf("GC off: %s/%s/p%d: %v", a.Name, impl, procs, err)
				}
			}
		}
	}
}

// TestTableGCRendering smoke-tests the new artifact: it must render a
// row per application with the three metadata columns.
func TestTableGCRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := TableGC(&buf, Test, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Retired", "PeakChain", "PeakKB"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableGC missing column %q:\n%s", want, out)
		}
	}
	for _, a := range Apps {
		if !strings.Contains(out, a.Name) {
			t.Errorf("TableGC missing app %s", a.Name)
		}
	}
}

// TestAblationGCRows checks the ablation itself: every-episode
// collection must retire metadata and tighten the peak footprint
// relative to the GC-off run; the adaptive mode must trigger on only a
// fraction of the episodes it examines, amortize the collection pause
// (faster than every-episode), and still retire and bound metadata.
func TestAblationGCRows(t *testing.T) {
	// 32 rounds at 4 procs: enough interval creation for the adaptive
	// threshold (AdaptiveGCRetire(4) records) to trigger several times,
	// so the one-epoch-delayed free actually retires metadata.
	rows, err := AblationGCIteration(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(GCModes) {
		t.Fatalf("ablation produced %d rows, want %d", len(rows), len(GCModes))
	}
	byMode := map[string]GCAblationRow{}
	for _, r := range rows {
		if r.Time == 0 {
			t.Errorf("%s/%s: missing time", r.Workload, r.Mode)
		}
		byMode[r.Mode] = r
	}
	every, adaptive, off := byMode["every"], byMode["adaptive"], byMode["off"]

	if every.Retired == 0 {
		t.Error("every-episode GC retired nothing")
	}
	if every.Episodes == 0 || every.Epochs != every.Episodes {
		t.Errorf("every-episode GC: epochs %d != episodes %d", every.Epochs, every.Episodes)
	}
	if every.PeakChain >= off.PeakChain {
		t.Errorf("GC on peak chain %d not below GC off %d", every.PeakChain, off.PeakChain)
	}
	if every.PeakBytes >= off.PeakBytes {
		t.Errorf("GC on peak bytes %d not below GC off %d", every.PeakBytes, off.PeakBytes)
	}

	if adaptive.Epochs == 0 || adaptive.Epochs >= adaptive.Episodes {
		t.Errorf("adaptive GC: epochs %d not a proper fraction of episodes %d",
			adaptive.Epochs, adaptive.Episodes)
	}
	if adaptive.Retired == 0 {
		t.Error("adaptive GC retired nothing")
	}
	if adaptive.PeakBytes >= off.PeakBytes {
		t.Errorf("adaptive GC peak bytes %d not below GC off %d", adaptive.PeakBytes, off.PeakBytes)
	}

	if off.Retired != 0 || off.Epochs != 0 {
		t.Errorf("GC off still collected: retired=%d epochs=%d", off.Retired, off.Epochs)
	}
}

// TestAblationGCWaterAmortizes pins the adaptive trigger's payoff on the
// real workload (the synthetic iteration kernel is flush-bound, where
// every-episode validation happens to be cheap — see the ROADMAP's
// validate-vs-flush item): on Water, collecting only when the floor
// retires enough metadata recovers most of the every-episode overhead
// while still collecting and bounding the chain below the GC-off run.
func TestAblationGCWaterAmortizes(t *testing.T) {
	rows, err := AblationGCWater(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]GCAblationRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	every, adaptive, off := byMode["every"], byMode["adaptive"], byMode["off"]
	if adaptive.Time >= every.Time {
		t.Errorf("adaptive GC (%s) did not amortize the every-episode pause (%s)",
			adaptive.Time, every.Time)
	}
	if adaptive.Epochs == 0 || adaptive.Epochs >= adaptive.Episodes {
		t.Errorf("adaptive GC: epochs %d not a proper fraction of episodes %d",
			adaptive.Epochs, adaptive.Episodes)
	}
	if adaptive.Retired == 0 {
		t.Error("adaptive GC retired nothing on Water")
	}
	if adaptive.PeakChain >= off.PeakChain {
		t.Errorf("adaptive GC peak chain %d not below GC off %d", adaptive.PeakChain, off.PeakChain)
	}
}
