// Package harness drives every experiment of the paper's evaluation
// (Section 6) and prints the corresponding table or figure: Table 1
// (applications and sequential times), Figure 6 (8-processor speedups of
// OpenMP vs TreadMarks vs MPI), Table 2 (data and message counts), the
// Section 6 platform microbenchmarks, and the Section 3 ablations
// (flush-based vs semaphore/condition-variable synchronization).
package harness

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/apps"
	"repro/internal/apps/barnes"
	"repro/internal/apps/fft3d"
	"repro/internal/apps/lu"
	"repro/internal/apps/qsort"
	"repro/internal/apps/sweep3d"
	"repro/internal/apps/tsp"
	"repro/internal/apps/water"
	"repro/internal/core"
)

// Impl selects one of the implementations under comparison (plus
// sequential): the paper's three, the same OpenMP source executed on the
// hardware-shared-memory (SMP) backend — the baseline the paper retargets
// OpenMP away from — and on the hybrid NOW-of-SMPs backend, the cluster
// configuration that succeeded the paper's testbed.
type Impl string

// Implementations.
const (
	Seq       Impl = "seq"
	OMP       Impl = "omp"        // OpenMP on the NOW (TreadMarks) backend
	OMPSMP    Impl = "omp-smp"    // the SAME OpenMP source on hardware shared memory
	OMPHybrid Impl = "omp-hybrid" // the SAME source on a NOW of SMP islands
	Tmk       Impl = "tmk"
	MPI       Impl = "mpi"
)

// Impls is the comparison order used in the figures: the paper's three
// implementations plus the NOW / SMP / NOW-of-SMPs column triple for the
// one OpenMP source.
var Impls = []Impl{OMP, OMPSMP, OMPHybrid, Tmk, MPI}

// HybridIslands is the SMP island count used when an omp-hybrid cell does
// not pin one explicitly (the tables and Figure 6); nowbench -islands
// overrides it. The count is clamped to the cell's processor count by the
// core runtime.
var HybridIslands = 2

// HybridImpl returns the omp-hybrid implementation pinned to an explicit
// island count, e.g. HybridImpl(2) == "omp-hybrid@2" (the equivalence
// suite sweeps these).
func HybridImpl(islands int) Impl {
	return Impl(fmt.Sprintf("%s@%d", OMPHybrid, islands))
}

// hybridBackendKind maps an omp-hybrid Impl (with or without a pinned
// island count) to its core backend kind.
func hybridBackendKind(impl Impl) (core.BackendKind, bool) {
	s := string(impl)
	if s == string(OMPHybrid) {
		return core.HybridIslands(HybridIslands), true
	}
	if rest, ok := strings.CutPrefix(s, string(OMPHybrid)+"@"); ok {
		if k, err := strconv.Atoi(rest); err == nil && k > 0 {
			return core.HybridIslands(k), true
		}
	}
	return "", false
}

// implLabel returns an Impl's column heading in the printed artifacts.
func implLabel(i Impl) string {
	switch i {
	case OMP:
		return "OpenMP"
	case OMPSMP:
		return "OMP/SMP"
	case OMPHybrid:
		return "OMP/Hyb"
	case Tmk:
		return "Tmk"
	case MPI:
		return "MPI"
	}
	return string(i)
}

// Scale selects the workload size.
type Scale string

// Scales. Full is the paper-scale workload of DESIGN.md's experiment
// index; Test is a fast configuration for CI and unit tests.
const (
	Full Scale = "full"
	Test Scale = "test"
)

// GCKnobs are per-run DSM metadata-GC overrides: the acquire-epoch
// trigger pressure and the validate-vs-flush purge policy (see
// dsm.Config.GCPressure / GCPolicy). A served job (serve.Job) may carry
// them; the zero value applies no override and runs identically to the
// plain grid cell.
type GCKnobs struct {
	Pressure int
	Policy   string
}

// App is one of the seven registered applications, wired to its
// implementations.
type App struct {
	Name string
	// DataSize describes the Full workload for Table 1.
	DataSize string
	// Directives lists the parallel + synchronization directives the
	// OpenMP version uses (the last two columns of Table 1).
	Parallel string
	Synch    string

	RunSeq func(Scale) apps.Result
	Run    func(s Scale, impl Impl, procs int) (apps.Result, error)
	// RunGC is Run with GCKnobs applied to the DSM-backed backends. Nil
	// for the applications whose Params do not plumb the knobs (3D-FFT,
	// LU, Barnes); VerifiedGC rejects non-zero knobs for those.
	RunGC func(s Scale, impl Impl, procs int, gc GCKnobs) (apps.Result, error)
}

// Apps lists the applications in the paper's Table 1 order.
var Apps = []App{
	{
		Name:     "Sweep3D",
		DataSize: "50x50x50, 6 angles",
		Parallel: "parallel region",
		Synch:    "semaphore",
		RunSeq:   func(s Scale) apps.Result { return sweep3d.RunSeq(sweepParams(s)) },
		Run: func(s Scale, impl Impl, procs int) (apps.Result, error) {
			return runSweep3D(s, impl, procs, GCKnobs{})
		},
		RunGC: runSweep3D,
	},
	{
		Name:     "3D-FFT",
		DataSize: "64x64x64, 2 iters",
		Parallel: "parallel do",
		Synch:    "none",
		RunSeq:   func(s Scale) apps.Result { return fft3d.RunSeq(fftParams(s)) },
		Run: func(s Scale, impl Impl, procs int) (apps.Result, error) {
			p := fftParams(s)
			if bk, ok := hybridBackendKind(impl); ok {
				return fft3d.RunOMPOn(p, procs, bk)
			}
			switch impl {
			case OMP:
				return fft3d.RunOMP(p, procs)
			case OMPSMP:
				return fft3d.RunOMPOn(p, procs, core.BackendSMP)
			case Tmk:
				return fft3d.RunTmk(p, procs)
			case MPI:
				return fft3d.RunMPI(p, procs)
			}
			return fft3d.RunSeq(p), nil
		},
	},
	{
		Name:     "Water",
		DataSize: "512 molecules, 16 steps",
		Parallel: "parallel do/region",
		Synch:    "barrier",
		RunSeq:   func(s Scale) apps.Result { return water.RunSeq(waterParams(s)) },
		Run: func(s Scale, impl Impl, procs int) (apps.Result, error) {
			return runWater(s, impl, procs, GCKnobs{})
		},
		RunGC: runWater,
	},
	{
		Name:     "TSP",
		DataSize: "14 cities",
		Parallel: "parallel region",
		Synch:    "critical",
		RunSeq:   func(s Scale) apps.Result { return tsp.RunSeq(tspParams(s)) },
		Run: func(s Scale, impl Impl, procs int) (apps.Result, error) {
			return runTSP(s, impl, procs, GCKnobs{})
		},
		RunGC: runTSP,
	},
	{
		Name:     "QSORT",
		DataSize: "256K ints, bubble threshold 1024",
		Parallel: "parallel region",
		Synch:    "critical, condition variables",
		RunSeq:   func(s Scale) apps.Result { return qsort.RunSeq(qsortParams(s)) },
		Run: func(s Scale, impl Impl, procs int) (apps.Result, error) {
			return runQSort(s, impl, procs, GCKnobs{})
		},
		RunGC: runQSort,
	},
	{
		Name:     "LU",
		DataSize: "512x512, contiguous blocks",
		Parallel: "parallel region",
		Synch:    "barrier, critical",
		RunSeq:   func(s Scale) apps.Result { return lu.RunSeq(luParams(s)) },
		Run: func(s Scale, impl Impl, procs int) (apps.Result, error) {
			p := luParams(s)
			if bk, ok := hybridBackendKind(impl); ok {
				return lu.RunOMPOn(p, procs, bk)
			}
			switch impl {
			case OMP:
				return lu.RunOMP(p, procs)
			case OMPSMP:
				return lu.RunOMPOn(p, procs, core.BackendSMP)
			case Tmk:
				return lu.RunTmk(p, procs)
			case MPI:
				return lu.RunMPI(p, procs)
			}
			return lu.RunSeq(p), nil
		},
	},
	{
		Name:     "Barnes",
		DataSize: "4096 bodies, 16 steps",
		Parallel: "parallel region",
		Synch:    "barrier",
		RunSeq:   func(s Scale) apps.Result { return barnes.RunSeq(barnesParams(s)) },
		Run: func(s Scale, impl Impl, procs int) (apps.Result, error) {
			p := barnesParams(s)
			if bk, ok := hybridBackendKind(impl); ok {
				return barnes.RunOMPOn(p, procs, bk)
			}
			switch impl {
			case OMP:
				return barnes.RunOMP(p, procs)
			case OMPSMP:
				return barnes.RunOMPOn(p, procs, core.BackendSMP)
			case Tmk:
				return barnes.RunTmk(p, procs)
			case MPI:
				return barnes.RunMPI(p, procs)
			}
			return barnes.RunSeq(p), nil
		},
	},
}

// The per-app dispatchers below are the Run/RunGC bodies of the four
// applications whose Params plumb the DSM GC knobs. Zero GCKnobs assign
// the params' zero values, so Run(s, impl, procs) stays byte-identical to
// the pre-knob closures.

func runSweep3D(s Scale, impl Impl, procs int, gc GCKnobs) (apps.Result, error) {
	p := sweepParams(s)
	p.GCPressure, p.GCPolicy = gc.Pressure, gc.Policy
	if bk, ok := hybridBackendKind(impl); ok {
		return sweep3d.RunOMPOn(p, procs, bk)
	}
	switch impl {
	case OMP:
		return sweep3d.RunOMP(p, procs)
	case OMPSMP:
		return sweep3d.RunOMPOn(p, procs, core.BackendSMP)
	case Tmk:
		return sweep3d.RunTmk(p, procs)
	case MPI:
		return sweep3d.RunMPI(p, procs)
	}
	return sweep3d.RunSeq(p), nil
}

func runWater(s Scale, impl Impl, procs int, gc GCKnobs) (apps.Result, error) {
	p := waterParams(s)
	p.GCPressure, p.GCPolicy = gc.Pressure, gc.Policy
	if bk, ok := hybridBackendKind(impl); ok {
		return water.RunOMPOn(p, procs, bk)
	}
	switch impl {
	case OMP:
		return water.RunOMP(p, procs)
	case OMPSMP:
		return water.RunOMPOn(p, procs, core.BackendSMP)
	case Tmk:
		return water.RunTmk(p, procs)
	case MPI:
		return water.RunMPI(p, procs)
	}
	return water.RunSeq(p), nil
}

func runTSP(s Scale, impl Impl, procs int, gc GCKnobs) (apps.Result, error) {
	p := tspParams(s)
	p.GCPressure, p.GCPolicy = gc.Pressure, gc.Policy
	if bk, ok := hybridBackendKind(impl); ok {
		return tsp.RunOMPOn(p, procs, bk)
	}
	switch impl {
	case OMP:
		return tsp.RunOMP(p, procs)
	case OMPSMP:
		return tsp.RunOMPOn(p, procs, core.BackendSMP)
	case Tmk:
		return tsp.RunTmk(p, procs)
	case MPI:
		return tsp.RunMPI(p, procs)
	}
	return tsp.RunSeq(p), nil
}

func runQSort(s Scale, impl Impl, procs int, gc GCKnobs) (apps.Result, error) {
	p := qsortParams(s)
	p.GCPressure, p.GCPolicy = gc.Pressure, gc.Policy
	if bk, ok := hybridBackendKind(impl); ok {
		return qsort.RunOMPOn(p, procs, bk)
	}
	switch impl {
	case OMP:
		return qsort.RunOMP(p, procs)
	case OMPSMP:
		return qsort.RunOMPOn(p, procs, core.BackendSMP)
	case Tmk:
		return qsort.RunTmk(p, procs)
	case MPI:
		return qsort.RunMPI(p, procs)
	}
	return qsort.RunSeq(p), nil
}

func sweepParams(s Scale) sweep3d.Params {
	if s == Full {
		return sweep3d.Default()
	}
	return sweep3d.Small()
}

func fftParams(s Scale) fft3d.Params {
	if s == Full {
		return fft3d.Default()
	}
	return fft3d.Small()
}

func waterParams(s Scale) water.Params {
	if s == Full {
		return water.Default()
	}
	return water.Small()
}

func tspParams(s Scale) tsp.Params {
	if s == Full {
		return tsp.Default()
	}
	return tsp.Small()
}

func qsortParams(s Scale) qsort.Params {
	if s == Full {
		return qsort.Default()
	}
	return qsort.Small()
}

func luParams(s Scale) lu.Params {
	if s == Full {
		return lu.Default()
	}
	return lu.Small()
}

func barnesParams(s Scale) barnes.Params {
	if s == Full {
		return barnes.Default()
	}
	return barnes.Small()
}

// seqCache memoizes sequential runs: they are deterministic, and every
// Verified call needs the sequential checksum as its oracle. Entries are
// singleflight so concurrent grid cells of one application share a single
// oracle run instead of racing to compute duplicates.
type seqEntry struct {
	once sync.Once
	res  apps.Result
}

var (
	seqCacheMu sync.Mutex
	seqCache   = map[string]*seqEntry{}
)

// SeqCached returns the (memoized) sequential result of an application.
// It is safe for concurrent use.
func SeqCached(a App, s Scale) apps.Result {
	key := a.Name + "/" + string(s)
	seqCacheMu.Lock()
	e, ok := seqCache[key]
	if !ok {
		e = &seqEntry{}
		seqCache[key] = e
	}
	seqCacheMu.Unlock()
	e.once.Do(func() { e.res = a.RunSeq(s) })
	return e.res
}

// FindApp returns the application with the given (case-sensitive) name.
func FindApp(name string) (App, bool) {
	for _, a := range Apps {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// AppNames lists the application names in table order.
func AppNames() []string {
	out := make([]string, len(Apps))
	for i, a := range Apps {
		out[i] = a.Name
	}
	sort.Strings(out)
	return out
}

// Verified runs one implementation and checks its checksum against the
// sequential run, returning an error on divergence — every reported
// number comes from a validated computation.
func Verified(a App, s Scale, impl Impl, procs int) (apps.Result, error) {
	want := SeqCached(a, s)
	if impl == Seq {
		return want, nil
	}
	got, err := a.Run(s, impl, procs)
	if err != nil {
		return apps.Result{}, err
	}
	if err := apps.CheckClose(a.Name+"/"+string(impl), got.Checksum, want.Checksum, 1e-8); err != nil {
		return apps.Result{}, err
	}
	return got, nil
}

// VerifiedGC is Verified with per-run GC-knob overrides (served jobs
// carry them). Zero knobs dispatch through Verified on every app —
// including the three whose Params don't plumb the knobs — and non-zero
// knobs require App.RunGC. Unlike the cached grid cells, the run is
// always fresh.
func VerifiedGC(a App, s Scale, impl Impl, procs int, gc GCKnobs) (apps.Result, error) {
	if gc == (GCKnobs{}) {
		return Verified(a, s, impl, procs)
	}
	if a.RunGC == nil {
		return apps.Result{}, fmt.Errorf("harness: app %s does not support GC knobs", a.Name)
	}
	want := SeqCached(a, s)
	if impl == Seq {
		return want, nil
	}
	got, err := a.RunGC(s, impl, procs, gc)
	if err != nil {
		return apps.Result{}, err
	}
	if err := apps.CheckClose(a.Name+"/"+string(impl), got.Checksum, want.Checksum, 1e-8); err != nil {
		return apps.Result{}, err
	}
	return got, nil
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
