package harness

import (
	"fmt"
	"io"

	"repro/internal/dsm"
	"repro/internal/mpi"
	"repro/internal/network"
	"repro/internal/sim"
)

// MicroResults holds the Section 6 platform characteristics, measured on
// the simulated platform with the same microbenchmark structure the
// TreadMarks papers used.
type MicroResults struct {
	UDPRoundTrip  sim.Time // 1-byte request/reply over the DSM transport
	LockLow       sim.Time // 2-hop lock acquire (manager was last holder)
	LockHigh      sim.Time // 3-hop lock acquire + diff piggyback
	Barrier8      sim.Time // 8-processor barrier
	DiffLow       sim.Time // small diff fetch (one word modified)
	DiffHigh      sim.Time // full-page diff fetch
	TCPRoundTrip  sim.Time // empty MPI message round trip
	TCPBandwidth  float64  // MB/s for a 1 MB transfer
	PageFaultCold sim.Time // first-touch page fetch
}

// Micro measures the platform characteristics reported in Section 6.
func Micro() (MicroResults, error) {
	var out MicroResults

	// UDP 1-byte round trip, on the raw simulated wire.
	{
		plat := sim.DefaultPlatform()
		sw := network.NewSwitch(2, plat.UDP)
		var c0, c1 sim.Clock
		e0, e1 := sw.Endpoint(0, &c0), sw.Endpoint(1, &c1)
		done := make(chan struct{})
		var echoErr error
		go func() {
			// An endpoint panic (switch torn down underneath the echo)
			// must surface as a measurement error, not kill the process
			// with this drain goroutine (tripwire analyzer enforces
			// this).
			defer func() {
				if r := recover(); r != nil {
					echoErr = fmt.Errorf("udp echo: %v", r)
				}
				close(done)
			}()
			m := e1.RecvRaw(network.ClassRequest)
			e1.SendAt(m.From, 1, network.ClassReply, []byte{1}, m.Arrive)
		}()
		e0.Send(1, 1, network.ClassRequest, []byte{1})
		m := e0.Recv(network.ClassReply)
		<-done
		if echoErr != nil {
			return out, echoErr
		}
		out.UDPRoundTrip = m.Arrive
	}

	// Lock acquire times, low (2-hop: manager holds the token) and high
	// (3-hop through a third node, with a dirty page to diff).
	{
		sys := dsm.New(dsm.Config{Procs: 3})
		defer sys.Close()
		a := sys.MallocPage(8)
		var low, high sim.Time
		sys.Register("lock-micro", func(n *dsm.Node, _ []byte) {
			// Phase 1: node 1 acquires lock 0 (manager node 0 holds it).
			if n.ID() == 1 {
				t0 := n.Now()
				n.Acquire(0)
				low = n.Now() - t0
				n.WriteI64(a, 42)
				n.Release(0)
			}
			n.Barrier()
			// Phase 2: node 2 acquires; the manager forwards to node 1,
			// whose grant carries the write notice of page a.
			if n.ID() == 2 {
				t0 := n.Now()
				n.Acquire(0)
				high = n.Now() - t0
				n.Release(0)
			}
			n.Barrier()
		})
		if err := sys.Run(func(n *dsm.Node) { n.RunParallel("lock-micro", nil) }); err != nil {
			return out, err
		}
		out.LockLow, out.LockHigh = low, high
	}

	// 8-processor barrier: the manager's wait plus broadcast, measured at
	// a slave (arrival to departure).
	{
		sys := dsm.New(dsm.Config{Procs: 8})
		defer sys.Close()
		var cost sim.Time
		sys.Register("barrier-micro", func(n *dsm.Node, _ []byte) {
			n.Barrier() // warm: everyone running
			t0 := n.Now()
			n.Barrier()
			if n.ID() == 7 {
				cost = n.Now() - t0
			}
		})
		if err := sys.Run(func(n *dsm.Node) { n.RunParallel("barrier-micro", nil) }); err != nil {
			return out, err
		}
		out.Barrier8 = cost
	}

	// Diff fetch: node 0 modifies a page (one word / whole page), node 1
	// faults and fetches the diff.
	for _, full := range []bool{false, true} {
		// GC off: the barrier-epoch collector would flush the reader's
		// stale copy at the barrier between write and read, turning both
		// variants into identical whole-page refetches. This micro pins
		// the cost of the raw diff-fetch primitive itself.
		sys := dsm.New(dsm.Config{Procs: 2, DisableGC: true})
		defer sys.Close()
		a := sys.MallocPage(dsm.PageSize)
		var cold, fetch sim.Time
		isFull := full
		sys.Register("diff-micro", func(n *dsm.Node, _ []byte) {
			if n.ID() == 1 {
				t0 := n.Now()
				_ = n.ReadI64(a) // cold fetch of the initial copy
				cold = n.Now() - t0
			}
			n.Barrier()
			if n.ID() == 0 {
				if isFull {
					buf := make([]byte, dsm.PageSize)
					for i := range buf {
						buf[i] = byte(i)
					}
					n.WriteBytes(a, buf)
				} else {
					n.WriteI64(a, 99)
				}
			}
			n.Barrier()
			if n.ID() == 1 {
				t0 := n.Now()
				_ = n.ReadI64(a)
				fetch = n.Now() - t0
			}
			n.Barrier()
		})
		if err := sys.Run(func(n *dsm.Node) { n.RunParallel("diff-micro", nil) }); err != nil {
			return out, err
		}
		if full {
			out.DiffHigh = fetch
		} else {
			out.DiffLow = fetch
			out.PageFaultCold = cold
		}
	}

	// MPI (TCP) empty-message round trip and bandwidth.
	{
		world := mpi.New(mpi.Config{Procs: 2})
		var rtt sim.Time
		var bw float64
		err := world.Run(func(r *mpi.Rank) {
			if r.ID() == 0 {
				t0 := r.Now()
				r.Send(1, 1, nil)
				r.Recv(1, 2)
				rtt = r.Now() - t0
				t1 := r.Now()
				r.Send(1, 3, make([]byte, 1<<20))
				r.Recv(1, 4) // symmetric 1 MB echo
				oneWay := (r.Now() - t1) / 2
				bw = (1 << 20) / oneWay.Seconds() / 1e6
			} else {
				r.Recv(0, 1)
				r.Send(0, 2, nil)
				r.Recv(0, 3)
				r.Send(0, 4, make([]byte, 1<<20))
			}
		})
		if err != nil {
			return out, err
		}
		out.TCPRoundTrip = rtt
		out.TCPBandwidth = bw
	}
	return out, nil
}

// PrintMicro formats the Section 6 paragraph as a table.
func PrintMicro(w io.Writer) error {
	m, err := Micro()
	if err != nil {
		return err
	}
	fprintf(w, "Section 6 platform characteristics (simulated testbed)\n\n")
	fprintf(w, "%-44s %12s\n", "UDP/IP 1-byte round-trip latency", m.UDPRoundTrip)
	fprintf(w, "%-44s %12s\n", "lock acquisition, low (2-hop)", m.LockLow)
	fprintf(w, "%-44s %12s\n", "lock acquisition, high (3-hop + notices)", m.LockHigh)
	fprintf(w, "%-44s %12s\n", "8-processor barrier", m.Barrier8)
	fprintf(w, "%-44s %12s\n", "diff fetch, low (1 word)", m.DiffLow)
	fprintf(w, "%-44s %12s\n", "diff fetch, high (full page)", m.DiffHigh)
	fprintf(w, "%-44s %12s\n", "cold page fetch", m.PageFaultCold)
	fprintf(w, "%-44s %12s\n", "MPICH/TCP empty-message round trip", m.TCPRoundTrip)
	fprintf(w, "%-44s %9.1f MB/s\n", "MPICH/TCP bandwidth (1MB transfer)", m.TCPBandwidth)
	return nil
}
