package harness

import (
	"fmt"
	"testing"

	"repro/internal/apps/qsort"
	"repro/internal/apps/sweep3d"
	"repro/internal/apps/tsp"
	"repro/internal/dsm"
)

// acquireGCPressureForTests is the forced-low trigger the suite pins the
// lock/semaphore applications at: low enough that test-scale runs collect
// many times, high enough that every epoch retires a meaningful batch.
const acquireGCPressureForTests = 32

// TestAcquireGCBoundsQSORTChain is the acceptance criterion on the
// condvar application: QSORT's retained interval chain must not grow
// with the work size under the acquire collector (it is bounded by the
// trigger plus the hook's backpressure slack), while without it the
// chain tracks the task count.
func TestAcquireGCBoundsQSORTChain(t *testing.T) {
	run := func(mult, pressure int) int64 {
		p := qsort.Small()
		p.N *= mult
		p.GCPressure = pressure
		res, err := qsort.RunTmk(p, 8)
		if err != nil {
			t.Fatalf("qsort x%d: %v", mult, err)
		}
		if pressure > 0 && res.GCAcqEpochs == 0 {
			t.Errorf("qsort x%d: no acquire epochs despite pressure %d", mult, pressure)
		}
		return res.PeakIntervalChain
	}
	small, big := run(1, acquireGCPressureForTests), run(4, acquireGCPressureForTests)
	// The backpressure bound has slack: a thread's chain can drift past
	// 4x pressure between release-side spin points (acquire-side hooks
	// never stall — see gcSyncHook), and how far it drifts depends on
	// real goroutine scheduling: under full-suite load the spinning
	// thread is descheduled for longer stretches and the peak rides
	// higher than it ever does in an isolated run. 16x keeps the bound
	// meaningful (the GC-off chain is an order of magnitude above it)
	// without tripping on scheduler noise.
	limit := int64(16 * acquireGCPressureForTests)
	if small > limit || big > limit {
		t.Errorf("qsort chains above the backpressure bound %d: x1=%d x4=%d", limit, small, big)
	}
	// Same scheduling sensitivity: x1 and x4 each drift independently
	// (isolated runs land anywhere in 20-110), so the no-growth check
	// needs several trigger widths of slack — the real no-growth claim is
	// the limit check above holding at both work sizes.
	if big > small+int64(4*acquireGCPressureForTests) {
		t.Errorf("qsort chain grew with work size under acquire GC: x1=%d x4=%d", small, big)
	}
	// Discrimination: without the collector the x4 chain tracks the task
	// count and sits at 320+ across every load level measured, while the
	// collected x4 peak stays in the low hundreds even under full-suite
	// load. Both a direct comparison and a fixed floor at twice the
	// nominal backpressure bound (4x pressure) hold with wide margins;
	// ratio checks (off vs 2x the collected peak, or x4-off vs x1-off)
	// do not — both denominators drift with scheduling load.
	off := run(4, -1)
	if off <= big {
		t.Errorf("qsort x4 without acquire GC (chain %d) not above with (%d)", off, big)
	}
	if off <= int64(8*acquireGCPressureForTests) {
		t.Errorf("qsort x4 without acquire GC (chain %d) within the backpressure scale %d: collector off had no effect to discriminate", off, 8*acquireGCPressureForTests)
	}
}

// TestAcquireGCBoundsSweepAndTSPChains extends the bound to the
// semaphore-pipeline and critical-section applications at 4-8x their
// usual work scale.
func TestAcquireGCBoundsSweepAndTSPChains(t *testing.T) {
	limit := int64(8 * acquireGCPressureForTests) // 4x pressure + inter-spin drift

	sw := func(mult, pressure int) int64 {
		p := sweep3d.Small()
		p.NX *= mult // more pipeline stage units per node -> more intervals
		p.GCPressure = pressure
		res, err := sweep3d.RunTmk(p, 8)
		if err != nil {
			t.Fatalf("sweep3d NXx%d: %v", mult, err)
		}
		return res.PeakIntervalChain
	}
	s4, s8 := sw(4, acquireGCPressureForTests), sw(8, acquireGCPressureForTests)
	if s4 > limit || s8 > limit {
		t.Errorf("sweep3d chains above the backpressure bound %d: x4=%d x8=%d", limit, s4, s8)
	}
	sOff := sw(8, -1)
	if sOff <= s8 {
		t.Errorf("sweep3d without acquire GC (chain %d) not above with (%d)", sOff, s8)
	}

	ts := func(cities, pressure int) int64 {
		p := tsp.Small()
		p.NCities = cities // 11 -> 12 roughly quadruples the search
		p.GCPressure = pressure
		res, err := tsp.RunTmk(p, 8)
		if err != nil {
			t.Fatalf("tsp %d cities: %v", cities, err)
		}
		return res.PeakIntervalChain
	}
	t11, t12 := ts(11, acquireGCPressureForTests), ts(12, acquireGCPressureForTests)
	if t12 > limit {
		t.Errorf("tsp chain above the backpressure bound: 11 cities=%d, 12 cities=%d (limit %d)", t11, t12, limit)
	}
	tOff := ts(12, -1)
	if tOff <= t12 {
		t.Errorf("tsp without acquire GC (chain %d) not above with (%d)", tOff, t12)
	}
}

// TestAcquireGCPolicyRefetchPin is the flushed-vs-validated pin on the
// lock/semaphore kernel: under the flush policy every collection
// discards copies the nodes are about to burst-read again, so the run
// pays hundreds of extra whole-page fetches (and their bytes) that the
// validate-hot policy replaces with small diff fetches. On a quiet
// machine the gap is far above noise (≈ 280 page fetches and ≈ 1 MB on
// this configuration), but the collection points ride on real goroutine
// scheduling, so under full-suite load a single flush/validate-hot pair
// can land its collections at different releases and compress — or even
// invert — the gap. The deflake discipline is therefore the same as the
// repo's drain tests: the effect must be OBSERVABLE within a bounded
// number of paired runs, with no single-sample margin assertion. The
// engagement check (both policies actually purged) stays strict on
// every attempt; a genuine policy regression fails all attempts.
func TestAcquireGCPolicyRefetchPin(t *testing.T) {
	const procs, rounds = 8, 64
	run := func(policy string) (pageFetches, bytes, validated, flushed int64) {
		sys, err := GCLockSparse(procs, rounds, AcquireGCPressure(procs), policy)
		if err != nil {
			t.Fatalf("locksparse %s: %v", policy, err)
		}
		st := sys.TotalStats()
		_, b := sys.Switch().Stats().Snapshot()
		return st.PageFetches, b, st.GCPagesValidated, st.GCPagesFlushed
	}
	const attempts = 4
	var last string
	for i := 0; i < attempts; i++ {
		fPF, fB, fV, fF := run("flush")
		vPF, vB, vV, vF := run("validate-hot")
		if fF == 0 || vV == 0 {
			t.Fatalf("policies did not engage: flush flushed %d, validate-hot validated %d", fF, vV)
		}
		switch {
		case vV <= fV:
			last = fmt.Sprintf("validate-hot validated %d pages, not above flush policy's %d", vV, fV)
		case vF >= fF:
			last = fmt.Sprintf("validate-hot flushed %d pages, not below flush policy's %d", vF, fF)
		case fPF < vPF+100:
			last = fmt.Sprintf("flush policy page fetches (%d) not well above validate-hot (%d)", fPF, vPF)
		case fB <= vB:
			last = fmt.Sprintf("flush policy bytes (%d) not above validate-hot (%d)", fB, vB)
		default:
			return // the full-margin gap showed; the pin holds
		}
	}
	t.Errorf("policy gap never showed in %d paired runs; last: %s", attempts, last)
}

// TestAblationGCPolicyGrid smokes the policy x trigger artifact and pins
// its two findings: the episode trigger alone cannot collect inside the
// lock-only region (nothing retired, chain grows with the run), and on
// the sparse-diff kernel the validate-hot purge moves fewer bytes than
// the flush purge (the acceptance criterion's "at least one app where
// validate-hot beats flush").
func TestAblationGCPolicyGrid(t *testing.T) {
	// The structural pins (grid shape, episode-trigger inertness, chain
	// bound) hold on every run. The two policy-direction comparisons ride
	// on scheduling-dependent collection points, so — like the refetch
	// pin above — they must show within a bounded number of grid runs
	// rather than on every single sample under full-suite load.
	const attempts = 4
	var last string
	for i := 0; i < attempts; i++ {
		rows, err := AblationGCPolicy(64, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		if want := len(GCTriggers) * len(GCPolicies) * 2; len(rows) != want {
			t.Fatalf("grid produced %d rows, want %d", len(rows), want)
		}
		byKey := map[string]GCPolicyRow{}
		for _, r := range rows {
			if r.Time == 0 {
				t.Errorf("%s/%s/%s: missing time", r.Workload, r.Trigger, r.Policy)
			}
			byKey[fmt.Sprintf("%s/%s/%s", r.Workload, r.Trigger, r.Policy)] = r
		}
		lock := func(trigger, policy string) GCPolicyRow {
			return byKey[fmt.Sprintf("locksparse x64/%s/%s", trigger, policy)]
		}
		if r := lock("episode", "flush"); r.Retired != 0 || r.AcqEpochs != 0 {
			t.Errorf("episode trigger collected inside a lock-only region: retired=%d acq=%d", r.Retired, r.AcqEpochs)
		}
		acqFlush, acqHot := lock("acquire", "flush"), lock("acquire", "validate-hot")
		if acqFlush.Retired == 0 || acqHot.Retired == 0 {
			t.Errorf("acquire trigger retired nothing: flush=%d validate-hot=%d", acqFlush.Retired, acqHot.Retired)
		}
		if acqFlush.PeakChain >= lock("episode", "flush").PeakChain {
			t.Errorf("acquire trigger did not bound the chain: %d vs episode %d",
				acqFlush.PeakChain, lock("episode", "flush").PeakChain)
		}
		switch {
		case acqHot.Bytes >= acqFlush.Bytes:
			last = fmt.Sprintf("validate-hot bytes (%d) not below flush policy bytes (%d)", acqHot.Bytes, acqFlush.Bytes)
		case acqHot.Validated <= acqFlush.Validated:
			last = fmt.Sprintf("validate-hot validated %d, not above flush policy's %d", acqHot.Validated, acqFlush.Validated)
		default:
			return // both policy directions showed
		}
	}
	t.Errorf("policy direction never showed in %d grid runs; last: %s", attempts, last)
}

// TestEquivalenceWithAcquireGC reruns the cross-implementation
// equivalence contract with the acquire collector forced on at low
// pressure under the validate-hot policy, across all three backends
// (NOW, SMP — where the knobs are no-ops — and hybrid at one and two
// islands): every implementation must still reproduce the sequential
// checksum. Package defaults are flipped for the duration (Verified runs
// bypass the grid cell cache), and restored by t.Cleanup AFTER the
// parallel subtests finish.
func TestEquivalenceWithAcquireGC(t *testing.T) {
	prevP := dsm.SetGCPressureDefault(8)
	prevPol := dsm.SetGCPolicyDefault(dsm.GCPolicyValidateHot)
	t.Cleanup(func() {
		dsm.SetGCPressureDefault(prevP)
		dsm.SetGCPolicyDefault(prevPol)
	})
	impls := []Impl{OMP, OMPSMP, HybridImpl(1), HybridImpl(2), Tmk}
	for _, a := range Apps {
		for _, impl := range impls {
			for _, procs := range []int{2, 8} {
				a, impl, procs := a, impl, procs
				t.Run(fmt.Sprintf("%s/%s/p%d", a.Name, impl, procs), func(t *testing.T) {
					t.Parallel()
					if _, err := Verified(a, Test, impl, procs); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}
