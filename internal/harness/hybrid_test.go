package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestHybridRaceSmoke is the application half of `make hybrid-race`: one
// real workload (Water: parallel do + region + barriers) through the
// hybrid backend at a genuine two-island split, verified against the
// sequential oracle. The core half of the target runs the conformance
// scenarios; together they put every primitive family under the race
// detector on real goroutines.
func TestHybridRaceSmoke(t *testing.T) {
	a, ok := FindApp("Water")
	if !ok {
		t.Fatal("Water not registered")
	}
	if err := CheckEquivalence(a, Test, HybridImpl(2), 4); err != nil {
		t.Error(err)
	}
}

// TestHybridImplParsing pins the omp-hybrid Impl forms: the bare name
// uses the package default island count, the @k suffix pins one, and
// anything else is not a hybrid impl.
func TestHybridImplParsing(t *testing.T) {
	if bk, ok := hybridBackendKind(OMPHybrid); !ok || string(bk) != "hybrid:2" {
		t.Errorf("OMPHybrid parsed to (%q, %v), want (hybrid:2, true)", bk, ok)
	}
	if bk, ok := hybridBackendKind(HybridImpl(4)); !ok || string(bk) != "hybrid:4" {
		t.Errorf("HybridImpl(4) parsed to (%q, %v), want (hybrid:4, true)", bk, ok)
	}
	for _, impl := range []Impl{OMP, OMPSMP, Tmk, MPI, Seq, "omp-hybrid@", "omp-hybrid@x", "omp-hybrid@0"} {
		if _, ok := hybridBackendKind(impl); ok {
			t.Errorf("%q parsed as a hybrid impl", impl)
		}
	}
}

// TestTablesIncludeHybridColumn pins the artifact wiring: Figure 6 and
// Table 2 print the OMP/Hyb column (on deterministic fake cells, so the
// test stays fast and schedule-independent).
func TestTablesIncludeHybridColumn(t *testing.T) {
	restore := swapRunCell(fakeCell)
	defer restore()

	var buf bytes.Buffer
	if err := Figure6(&buf, Test, 8); err != nil {
		t.Fatal(err)
	}
	if err := Table2(&buf, Test, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "OMP/Hyb") {
		t.Error("artifacts missing the OMP/Hyb column heading")
	}
	if !strings.Contains(out, "islands in the hybrid") {
		t.Error("artifacts missing the hybrid island-count caption")
	}
}
