package harness

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/apps/qsort"
	"repro/internal/apps/water"
)

// The wire-format benchmark: the same application run under the v1
// (one-datagram-per-message, full-clock) protocol and the v2 default
// (coalesced frames + delta-compressed records), reporting total bytes,
// datagrams, and bytes per barrier/fork synchronization episode. Water is
// the barrier-per-step Table 1 representative; QSORT is the
// lock/condition-variable one whose GC consensus pushes exercise the
// frame coalescing hardest. Both wire versions run the identical
// program, so any checksum or message-count disagreement is a protocol
// bug, not a measurement artifact.

// WireBenchRow is one (app, procs) before/after comparison.
type WireBenchRow struct {
	App   string
	Procs int
	V1    apps.Result // Config.WireV1: the pre-batching protocol
	V2    apps.Result // the default coalesced + compressed protocol
}

// BytesReduction is the fraction of v1 wire bytes the v2 format removed.
func (r WireBenchRow) BytesReduction() float64 {
	if r.V1.Bytes == 0 {
		return 0
	}
	return 1 - float64(r.V2.Bytes)/float64(r.V1.Bytes)
}

// wireBenchApps are the benchmarked (app, runner) pairs; the runner maps
// (scale, procs, wireV1) to a finished run.
var wireBenchApps = []struct {
	name string
	run  func(s Scale, procs int, wireV1 bool) (apps.Result, error)
}{
	{"Water", func(s Scale, procs int, wireV1 bool) (apps.Result, error) {
		p := waterParams(s)
		p.WireV1 = wireV1
		return water.RunOMP(p, procs)
	}},
	{"QSORT", func(s Scale, procs int, wireV1 bool) (apps.Result, error) {
		p := qsortParams(s)
		p.WireV1 = wireV1
		return qsort.RunOMP(p, procs)
	}},
}

// WireBench runs the comparison grid.
func WireBench(s Scale, procsList []int) ([]WireBenchRow, error) {
	var rows []WireBenchRow
	for _, a := range wireBenchApps {
		for _, procs := range procsList {
			v1, err := a.run(s, procs, true)
			if err != nil {
				return rows, fmt.Errorf("%s p=%d wire=v1: %w", a.name, procs, err)
			}
			v2, err := a.run(s, procs, false)
			if err != nil {
				return rows, fmt.Errorf("%s p=%d wire=v2: %w", a.name, procs, err)
			}
			// No logical-message equality assertion here: barrier apps
			// match exactly (the golden pins check that), but acquire-GC
			// consensus rounds are timing-dependent, and v2's piggybacked
			// floor announcements legitimately retire push rounds early.
			rows = append(rows, WireBenchRow{App: a.name, Procs: procs, V1: v1, V2: v2})
		}
	}
	return rows, nil
}

// PrintWireBench prints the before/after wire-format table for Water and
// QSORT at 8 and 32 processors (make bench-wire).
func PrintWireBench(w io.Writer, s Scale) error {
	rows, err := WireBench(s, []int{8, 32})
	if err != nil {
		return err
	}
	fprintf(w, "Wire format: v1 (one datagram per message, full clocks) vs the v2\n")
	fprintf(w, "default (coalesced frames, delta-compressed write notices)\n\n")
	fprintf(w, "%-8s %5s %12s %12s %7s %10s %10s %12s %12s\n",
		"App", "Procs", "v1 bytes", "v2 bytes", "saved", "v1 dgrams", "v2 dgrams", "v1 B/episode", "v2 B/episode")
	for _, r := range rows {
		perEp := func(res apps.Result) string {
			if res.GCEpisodes == 0 {
				return "-"
			}
			return fmt.Sprintf("%d", res.Bytes/res.GCEpisodes)
		}
		fprintf(w, "%-8s %5d %12d %12d %6.1f%% %10d %10d %12s %12s\n",
			r.App, r.Procs, r.V1.Bytes, r.V2.Bytes, 100*r.BytesReduction(),
			r.V1.Frames, r.V2.Frames, perEp(r.V1), perEp(r.V2))
	}
	return nil
}
