package harness

import (
	"fmt"
	"io"

	"repro/internal/apps/water"
	"repro/internal/dsm"
	"repro/internal/sim"
)

// The Section 3 ablations: the paper's Figures 1-4 are code listings that
// motivate replacing flush with semaphores and condition variables. These
// experiments run both variants and measure exactly the costs the paper
// argues about — messages sent, nodes interrupted, and time.

// AblationResult compares a flush-based construct with its proposed
// replacement.
type AblationResult struct {
	Name                           string
	Rounds                         int
	Procs                          int
	FlushTime, NewTime             sim.Time
	FlushMsgs, NewMsgs             int64
	FlushInterrupts, NewInterrupts int64
}

// AblationPipeline runs the producer/consumer pipeline of Figures 1 and 3:
// flush + busy-wait flags versus a semaphore pair, on `procs` nodes
// (the extra nodes model the uninvolved threads that flush interrupts).
func AblationPipeline(rounds, procs int) (AblationResult, error) {
	out := AblationResult{Name: "pipeline", Rounds: rounds, Procs: procs}

	// Figure 1: shared volatile flags `available` and `done`, flush after
	// every update, busy-waiting consumers.
	{
		sys := dsm.New(dsm.Config{Procs: procs})
		defer sys.Close()
		data := sys.MallocPage(8)
		avail := sys.MallocPage(8)
		done := sys.MallocPage(8)
		sys.Register("flush-pipe", func(n *dsm.Node, _ []byte) {
			switch n.ID() {
			case 0: // producer
				for i := 1; i <= rounds; i++ {
					n.WriteI64(data, int64(i))
					n.WriteI64(avail, int64(i))
					n.Flush()
					for n.ReadI64(done) != int64(i) {
						n.Poll()
					}
				}
			case 1: // consumer
				for i := 1; i <= rounds; i++ {
					for n.ReadI64(avail) != int64(i) {
						n.Poll()
					}
					_ = n.ReadI64(data)
					n.WriteI64(done, int64(i))
					n.Flush()
				}
			default: // uninvolved, but interrupted by every flush
				n.Compute(float64(rounds) * 1000)
			}
		})
		if err := sys.Run(func(n *dsm.Node) { n.RunParallel("flush-pipe", nil) }); err != nil {
			return out, err
		}
		out.FlushTime = sys.MaxClock()
		out.FlushMsgs, _ = sys.Switch().Stats().Snapshot()
		out.FlushInterrupts = sys.TotalStats().Interrupts
	}

	// Figure 3: two semaphores, no busy-waiting, no third parties.
	{
		sys := dsm.New(dsm.Config{Procs: procs})
		defer sys.Close()
		data := sys.MallocPage(8)
		const semAvail, semDone = 2, 3
		sys.Register("sema-pipe", func(n *dsm.Node, _ []byte) {
			switch n.ID() {
			case 0:
				for i := 1; i <= rounds; i++ {
					n.WriteI64(data, int64(i))
					n.SemaSignal(semAvail)
					n.SemaWait(semDone)
				}
			case 1:
				for i := 1; i <= rounds; i++ {
					n.SemaWait(semAvail)
					_ = n.ReadI64(data)
					n.SemaSignal(semDone)
				}
			default:
				n.Compute(float64(rounds) * 1000)
			}
		})
		if err := sys.Run(func(n *dsm.Node) { n.RunParallel("sema-pipe", nil) }); err != nil {
			return out, err
		}
		out.NewTime = sys.MaxClock()
		out.NewMsgs, _ = sys.Switch().Stats().Snapshot()
		out.NewInterrupts = sys.TotalStats().Interrupts
	}
	return out, nil
}

// AblationTaskQueue runs the task queue of Figures 2 and 4: critical
// sections + flush + busy-wait versus critical sections + one condition
// variable. Thread 0 produces the tasks, releasing each one only after
// every consumer is parked waiting for work — so each EnQueue is a
// guaranteed wake-from-wait event, which is precisely the situation the
// paper's Section 3.2.3 analyzes: the flush variant must push notices to
// (and interrupt) every thread and stampede all spinners at the lock,
// while cond_signal wakes exactly one waiter. The condvar variant's win
// is in messages and interrupts; its wall time carries the acknowledged
// wait registration (a correctness requirement — see dsm.CondWait),
// which puts one round trip on the lock's critical path per wake, so on
// this all-wakes-all-the-time pattern flush can clock in faster while
// interrupting five times the threads.
func AblationTaskQueue(tasks, procs int) (AblationResult, error) {
	out := AblationResult{Name: "taskqueue", Rounds: tasks, Procs: procs}
	const lockID = 5
	const condID = 1

	build := func(useCond bool) (*dsm.System, error) {
		sys := dsm.New(dsm.Config{Procs: procs})
		defer sys.Close()
		head := sys.MallocPage(8)
		tail := sys.Malloc(8)
		nwait := sys.Malloc(8)
		ring := sys.MallocPage(8 * (tasks + 8))
		cap64 := int64(tasks + 8)

		// deQueue is Figure 2 (busy-wait + flush) or Figure 4 (condvar).
		deQueue := func(n *dsm.Node) int64 {
			var task int64 = -1
			n.Acquire(lockID)
			for {
				h, t := n.ReadI64(head), n.ReadI64(tail)
				if h < t {
					task = n.ReadI64(ring + dsm.Addr(8*(h%cap64)))
					n.WriteI64(head, h+1)
					break
				}
				nw := n.ReadI64(nwait) + 1
				n.WriteI64(nwait, nw)
				if nw == int64(procs) {
					if useCond {
						n.CondBroadcast(condID, lockID)
					} else {
						n.Flush()
					}
					break
				}
				if useCond {
					n.CondWait(condID, lockID)
					if n.ReadI64(nwait) == int64(procs) {
						break
					}
					n.WriteI64(nwait, n.ReadI64(nwait)-1)
				} else {
					// Figure 2: leave the critical section and spin.
					n.Release(lockID)
					for {
						n.Poll()
						if n.ReadI64(nwait) == int64(procs) || n.ReadI64(head) < n.ReadI64(tail) {
							break
						}
					}
					n.Acquire(lockID)
					if n.ReadI64(nwait) == int64(procs) {
						break
					}
					n.WriteI64(nwait, n.ReadI64(nwait)-1)
				}
			}
			n.Release(lockID)
			return task
		}

		sys.Register("tq", func(n *dsm.Node, _ []byte) {
			if n.ID() == 0 {
				// Producer: hand out each task only once every consumer
				// is parked, so each EnQueue wakes a waiting thread.
				for t := 0; t < tasks; t++ {
					for {
						n.Acquire(lockID)
						if n.ReadI64(nwait) == int64(procs-1) {
							tl := n.ReadI64(tail)
							n.WriteI64(ring+dsm.Addr(8*(tl%cap64)), int64(t))
							n.WriteI64(tail, tl+1)
							if useCond {
								n.CondSignal(condID, lockID)
							}
							n.Release(lockID)
							if !useCond {
								n.Flush() // Figure 2: notify everyone
							}
							break
						}
						n.Release(lockID)
						n.Poll()
					}
				}
				// Then drain alongside the consumers until termination.
			}
			for deQueue(n) >= 0 {
				n.Compute(20000) // ~0.5 ms of "work" per task
			}
		})
		return sys, sys.Run(func(n *dsm.Node) {
			n.RunParallel("tq", nil)
		})
	}

	sysF, err := build(false)
	if err != nil {
		return out, err
	}
	out.FlushTime = sysF.MaxClock()
	out.FlushMsgs, _ = sysF.Switch().Stats().Snapshot()
	out.FlushInterrupts = sysF.TotalStats().Interrupts

	sysC, err := build(true)
	if err != nil {
		return out, err
	}
	out.NewTime = sysC.MaxClock()
	out.NewMsgs, _ = sysC.Switch().Stats().Snapshot()
	out.NewInterrupts = sysC.TotalStats().Interrupts
	return out, nil
}

// FlushCostRow is one row of the 2(n-1) message-cost demonstration.
type FlushCostRow struct {
	Procs     int
	FlushMsgs int64 // messages for one flush
	SemaMsgs  int64 // messages for one signal/wait pair
}

// AblationFlushCost verifies Section 3.2.3: one flush costs 2(n-1)
// messages while a semaphore operation costs a small constant.
func AblationFlushCost(procsList []int) ([]FlushCostRow, error) {
	var rows []FlushCostRow
	for _, procs := range procsList {
		sys := dsm.New(dsm.Config{Procs: procs})
		defer sys.Close()
		a := sys.MallocPage(8)
		var flushMsgs, semaMsgs int64
		sys.Register("noop", func(n *dsm.Node, _ []byte) {})
		sys.Register("sema-pair", func(n *dsm.Node, _ []byte) {
			// Producer on the last node, consumer on node 0, manager on
			// a third node where possible: the general (worst) case.
			if n.ID() == n.NumProcs()-1 {
				n.WriteI64(a, 7)
				n.SemaSignal(1)
			} else if n.ID() == 0 {
				n.SemaWait(1)
			}
		})
		err := sys.Run(func(n *dsm.Node) {
			n.RunParallel("noop", nil) // warm the team
			n.WriteI64(a, 1)
			sys.Switch().ResetStats()
			n.Flush()
			flushMsgs, _ = sys.Switch().Stats().Snapshot()
			// Measure the fork/join framing of an empty region, then
			// subtract it from the semaphore region's traffic.
			sys.Switch().ResetStats()
			n.RunParallel("noop", nil)
			framing, _ := sys.Switch().Stats().Snapshot()
			sys.Switch().ResetStats()
			n.RunParallel("sema-pair", nil)
			m, _ := sys.Switch().Stats().Snapshot()
			semaMsgs = m - framing
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, FlushCostRow{Procs: procs, FlushMsgs: flushMsgs, SemaMsgs: semaMsgs})
	}
	return rows, nil
}

// GCModes are the three collector configurations of the metadata
// ablation: collect at every synchronization episode (the original
// behaviour), adaptively (collect only when the floor would retire at
// least AdaptiveGCRetire(procs) interval records — the ROADMAP's
// deterministic floor predicate), and disabled.
var GCModes = []string{"every", "adaptive", "off"}

// AdaptiveGCRetire returns the ablation's adaptive trigger threshold for
// a machine of `procs` nodes: roughly eight episodes' worth of interval
// creation on a barrier-dense workload, amortizing the per-episode
// validation pause about eightfold.
func AdaptiveGCRetire(procs int) int { return 8 * procs }

// GCAblationRow is one (workload, collector-mode) measurement: time,
// traffic, trigger counts, and metadata retention.
type GCAblationRow struct {
	Workload  string
	Mode      string // "every", "adaptive", or "off"
	Procs     int
	Time      sim.Time
	Msgs      int64
	Episodes  int64 // global sync episodes the collector examined
	Epochs    int64 // collections actually triggered
	Retired   int64 // interval records reclaimed
	PeakChain int64
	PeakBytes int64
}

// gcModeConfig translates an ablation mode into the DSM knobs.
func gcModeConfig(mode, workload string, procs int) (disable bool, minRetire int) {
	switch mode {
	case "every":
		return false, 0
	case "adaptive":
		return false, AdaptiveGCRetire(procs)
	case "off":
		return true, 0
	}
	panic(fmt.Sprintf("harness: unknown GC ablation mode %q for %s", mode, workload))
}

// AblationGCIteration measures metadata accumulation on the access
// pattern that motivates the collector: an iterative barrier application
// (each node rewrites its block of a shared array every step, with
// cross-block reads) run for `iters` steps under every collector mode.
func AblationGCIteration(iters, procs int) ([]GCAblationRow, error) {
	const words = 8192 // 16 pages of int64s
	per := words / procs
	name := fmt.Sprintf("iteration x%d", iters)
	var rows []GCAblationRow
	for _, mode := range GCModes {
		disable, minRetire := gcModeConfig(mode, name, procs)
		sys := dsm.New(dsm.Config{Procs: procs, DisableGC: disable, GCMinRetire: minRetire})
		defer sys.Close()
		base := sys.MallocPage(8 * words)
		sys.Register("gc-iter", func(n *dsm.Node, _ []byte) {
			me := n.ID()
			for r := 0; r < iters; r++ {
				for w := me * per; w < (me+1)*per; w++ {
					n.WriteI64(base+dsm.Addr(8*w), int64(r*words+w))
				}
				n.Barrier()
				nb := ((me + 1) % procs) * per
				var s int64
				for w := nb; w < nb+per; w++ {
					s += n.ReadI64(base + dsm.Addr(8*w))
				}
				n.Compute(float64(2 * per))
				n.Barrier()
			}
		})
		if err := sys.Run(func(n *dsm.Node) { n.RunParallel("gc-iter", nil) }); err != nil {
			return rows, err
		}
		msgs, _ := sys.Switch().Stats().Snapshot()
		retired, chain, bytes := sys.ProtoSummary()
		g := sys.GCSummary()
		rows = append(rows, GCAblationRow{
			Workload: name, Mode: mode, Procs: procs,
			Time: sys.MaxClock(), Msgs: msgs,
			Episodes: g.Episodes, Epochs: g.Epochs,
			Retired: retired, PeakChain: chain, PeakBytes: bytes,
		})
	}
	return rows, nil
}

// AblationGCWater runs the real long-iteration workload of the
// acceptance criterion — Water at 4x its usual step count on the full
// 8-node machine — under every collector mode.
func AblationGCWater(steps, procs int) ([]GCAblationRow, error) {
	name := fmt.Sprintf("water x%d steps", steps)
	p := water.Small()
	p.Steps = steps
	var rows []GCAblationRow
	for _, mode := range GCModes {
		p.DisableGC, p.GCMinRetire = gcModeConfig(mode, name, procs)
		res, err := water.RunTmk(p, procs)
		if err != nil {
			return rows, err
		}
		rows = append(rows, GCAblationRow{
			Workload: name, Mode: mode, Procs: procs,
			Time: res.Time, Msgs: res.Messages,
			Episodes: res.GCEpisodes, Epochs: res.GCEpochs,
			Retired: res.IntervalsRetired, PeakChain: res.PeakIntervalChain,
			PeakBytes: res.PeakProtoBytes,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// The policy × trigger GC grid: acquire-epoch collection for programs
// that never barrier, crossed with the per-page validate-vs-flush purge
// policy. The trigger axis contrasts the barrier/fork-episode source
// alone ("episode" — which cannot collect inside a lock-only region)
// with acquire epochs at low pressure ("acquire"); the policy axis runs
// dsm.Config.GCPolicy over flush / validate-hot / adaptive.
// ---------------------------------------------------------------------

// GCPolicies are the purge-policy arms of the grid.
var GCPolicies = []string{"flush", "validate-hot", "adaptive"}

// GCTriggers are the epoch-source arms of the grid.
var GCTriggers = []string{"episode", "acquire"}

// AcquireGCPressure is the grid's low acquire-epoch threshold for a
// machine of `procs` nodes: a few rounds of per-node interval creation,
// so lock-only regions collect many times per run.
func AcquireGCPressure(procs int) int { return 4 * procs }

// GCPolicyRow is one (workload, trigger, policy) measurement.
type GCPolicyRow struct {
	Workload  string
	Trigger   string // "episode" or "acquire"
	Policy    string
	Procs     int
	Time      sim.Time
	Msgs      int64
	Bytes     int64
	AcqEpochs int64 // acquire epochs announced
	Retired   int64
	PeakChain int64
	Validated int64 // stale copies brought current at collections
	Flushed   int64 // stale copies discarded at collections
}

// gcTriggerPressure maps a trigger arm to the dsm pressure knob.
func gcTriggerPressure(trigger string, procs int) int {
	switch trigger {
	case "episode":
		return -1 // acquire source disabled: barrier/fork episodes only
	case "acquire":
		return AcquireGCPressure(procs)
	}
	panic(fmt.Sprintf("harness: unknown GC trigger %q", trigger))
}

// gcLockSparseWords is the per-page word count GCLockSparse touches per
// round: diffs stay a few dozen bytes on a 4 KiB page, so validating a
// stale page is ~100x cheaper in bytes than refetching it whole.
const gcLockSparseWords = 4

// gcLockSparseReadPeriod is the kernel's burst-read period: every peer
// page is read every few rounds — recently enough to count as hot at
// every collection, rarely enough that collections find it owing several
// retired diffs (the situation where the policy choice matters).
const gcLockSparseReadPeriod = 6

// GCLockSparse runs the lock/semaphore kernel that motivates the acquire
// source and the validate-hot policy: one parallel region with no
// barriers. Each node owns one page of a shared array (single-writer
// pages, so a round's diff is a few dozen bytes) and, per round, (a)
// rewrites a few words of it and (b) bumps a lock-protected global
// counter (the critical-section pattern of TSP/QSORT); every few rounds
// it (c) burst-reads all of its peers' pages — synchronized by a
// semaphore ring that hands each node its next-round token, bounding
// skew and carrying the consistency deltas (the Sweep3D pipeline
// pattern). Between bursts each peer page accumulates several rounds of
// small notices, so a flush-policy collection discards copies the node
// is about to read again — whole-page refetches that the validate-hot
// policy replaces with tiny single-creator diff fetches. It returns the
// finished system for counter inspection.
func GCLockSparse(procs, rounds int, pressure int, policy string) (*dsm.System, error) {
	sys := dsm.New(dsm.Config{
		Procs:      procs,
		GCPressure: pressure,
		GCPolicy:   dsm.MustParseGCPolicy(policy),
	})
	defer sys.Close()
	arr := sys.MallocPage(procs * dsm.PageSize)
	ctr := sys.MallocPage(8)
	pageAddr := func(owner int) dsm.Addr { return arr + dsm.Addr(owner*dsm.PageSize) }
	sys.Register("locksparse", func(n *dsm.Node, _ []byte) {
		me := n.ID()
		succ := (me + 1) % procs
		for r := 0; r < rounds; r++ {
			if r > 0 {
				n.SemaWait(100 + me) // ring token: predecessor finished a round
			}
			for w := 0; w < gcLockSparseWords; w++ {
				n.WriteI64(pageAddr(me)+dsm.Addr(8*w*61), int64(r+1))
			}
			n.Acquire(1)
			n.WriteI64(ctr, n.ReadI64(ctr)+1)
			n.Release(1)
			// Burst-read every peer page once per period: the pages stay
			// hot (faulted within the last couple of collections) yet owe
			// the accumulated notices of the rounds since the last burst.
			if r%gcLockSparseReadPeriod == gcLockSparseReadPeriod-1 {
				var s int64
				for peer := 0; peer < procs; peer++ {
					if peer == me {
						continue
					}
					for w := 0; w < gcLockSparseWords; w++ {
						s += n.ReadI64(pageAddr(peer) + dsm.Addr(8*w*61))
					}
				}
				n.Compute(float64(8 * gcLockSparseWords * (procs - 1)))
				_ = s
			}
			n.SemaSignal(100 + succ)
		}
	})
	err := sys.Run(func(n *dsm.Node) {
		n.RunParallel("locksparse", nil)
		if got := n.ReadI64(ctr); got != int64(rounds*procs) {
			panic(fmt.Sprintf("locksparse: counter = %d, want %d", got, rounds*procs))
		}
		for o := 0; o < procs; o++ {
			for w := 0; w < gcLockSparseWords; w++ {
				if got := n.ReadI64(pageAddr(o) + dsm.Addr(8*w*61)); got != int64(rounds) {
					panic(fmt.Sprintf("locksparse: page %d word %d = %d, want %d", o, w, got, rounds))
				}
			}
		}
	})
	return sys, err
}

// AblationGCPolicy runs the policy × trigger grid on the lock-sparse
// kernel and on real Water (whose epochs are barrier/fork-driven, so the
// policy arm is what varies there).
func AblationGCPolicy(rounds, steps, procs int) ([]GCPolicyRow, error) {
	var rows []GCPolicyRow
	name := fmt.Sprintf("locksparse x%d", rounds)
	for _, trigger := range GCTriggers {
		for _, policy := range GCPolicies {
			sys, err := GCLockSparse(procs, rounds, gcTriggerPressure(trigger, procs), policy)
			if err != nil {
				return rows, err
			}
			msgs, bytes := sys.Switch().Stats().Snapshot()
			retired, chain, _ := sys.ProtoSummary()
			g := sys.GCSummary()
			rows = append(rows, GCPolicyRow{
				Workload: name, Trigger: trigger, Policy: policy, Procs: procs,
				Time: sys.MaxClock(), Msgs: msgs, Bytes: bytes,
				AcqEpochs: g.AcqEpochs, Retired: retired, PeakChain: chain,
				Validated: g.PagesValidated, Flushed: g.PagesFlushed,
			})
		}
	}
	wname := fmt.Sprintf("water x%d steps", steps)
	for _, trigger := range GCTriggers {
		for _, policy := range GCPolicies {
			p := water.Small()
			p.Steps = steps
			p.GCPressure = gcTriggerPressure(trigger, procs)
			p.GCPolicy = policy
			res, err := water.RunTmk(p, procs)
			if err != nil {
				return rows, err
			}
			rows = append(rows, GCPolicyRow{
				Workload: wname, Trigger: trigger, Policy: policy, Procs: procs,
				Time: res.Time, Msgs: res.Messages, Bytes: res.Bytes,
				AcqEpochs: res.GCAcqEpochs, Retired: res.IntervalsRetired,
				PeakChain: res.PeakIntervalChain,
				Validated: res.GCPagesValidated, Flushed: res.GCPagesFlushed,
			})
		}
	}
	return rows, nil
}

// PrintAblationGC runs and formats the metadata-accumulation ablation:
// the every/adaptive/off trigger comparison of the barrier/fork source,
// then the acquire-source policy × trigger grid.
func PrintAblationGC(w io.Writer) error {
	iter, err := AblationGCIteration(32, 8)
	if err != nil {
		return err
	}
	wtr, err := AblationGCWater(8, 8)
	if err != nil {
		return err
	}
	fprintf(w, "Barrier-epoch GC ablation (8 processors): protocol-metadata cost\n")
	fprintf(w, "under every-episode, adaptive (retire >= %d), and disabled collection\n\n", AdaptiveGCRetire(8))
	fprintf(w, "%-18s %-9s %12s %10s %9s %7s %8s %10s %8s\n",
		"workload", "GC", "time", "messages", "episodes", "epochs", "retired", "peakchain", "peakKB")
	for _, r := range append(iter, wtr...) {
		fprintf(w, "%-18s %-9s %12s %10d %9d %7d %8d %10d %8d\n",
			r.Workload, r.Mode, r.Time, r.Msgs, r.Episodes, r.Epochs, r.Retired, r.PeakChain, r.PeakBytes/1024)
	}

	grid, err := AblationGCPolicy(64, 8, 8)
	if err != nil {
		return err
	}
	fprintf(w, "\nAcquire-epoch GC policy x trigger grid (8 processors): \"episode\"\n")
	fprintf(w, "keeps only the barrier/fork source (lock-only regions never collect);\n")
	fprintf(w, "\"acquire\" adds lock-manager epochs at pressure %d. The policy column\n", AcquireGCPressure(8))
	fprintf(w, "is the per-page purge choice at every collection.\n\n")
	fprintf(w, "%-18s %-8s %-13s %12s %9s %9s %6s %8s %10s %6s %7s\n",
		"workload", "trigger", "policy", "time", "messages", "KB", "acqEp", "retired", "peakchain", "valid", "flushed")
	for _, r := range grid {
		fprintf(w, "%-18s %-8s %-13s %12s %9d %9d %6d %8d %10d %6d %7d\n",
			r.Workload, r.Trigger, r.Policy, r.Time, r.Msgs, r.Bytes/1024,
			r.AcqEpochs, r.Retired, r.PeakChain, r.Validated, r.Flushed)
	}
	return nil
}

// PrintAblations runs and formats all three ablations.
func PrintAblations(w io.Writer) error {
	pipe, err := AblationPipeline(50, 8)
	if err != nil {
		return err
	}
	tq, err := AblationTaskQueue(64, 8)
	if err != nil {
		return err
	}
	fprintf(w, "Section 3 ablations (8 processors)\n\n")
	fprintf(w, "%-22s %12s %10s %12s\n", "variant", "time", "messages", "interrupts")
	fprintf(w, "%-22s %12s %10d %12d\n", "pipeline: flush", pipe.FlushTime, pipe.FlushMsgs, pipe.FlushInterrupts)
	fprintf(w, "%-22s %12s %10d %12d\n", "pipeline: semaphores", pipe.NewTime, pipe.NewMsgs, pipe.NewInterrupts)
	fprintf(w, "%-22s %12s %10d %12d\n", "taskqueue: flush", tq.FlushTime, tq.FlushMsgs, tq.FlushInterrupts)
	fprintf(w, "%-22s %12s %10d %12d\n", "taskqueue: condvars", tq.NewTime, tq.NewMsgs, tq.NewInterrupts)

	rows, err := AblationFlushCost([]int{2, 4, 8})
	if err != nil {
		return err
	}
	fprintf(w, "\nflush message cost vs semaphores (Section 3.2.3: flush = 2(n-1))\n\n")
	fprintf(w, "%6s %12s %12s %12s\n", "procs", "flush msgs", "2(n-1)", "sema msgs")
	for _, r := range rows {
		fprintf(w, "%6d %12d %12d %12d\n", r.Procs, r.FlushMsgs, 2*(r.Procs-1), r.SemaMsgs)
	}
	return nil
}
