package harness

import (
	"fmt"
	"testing"
)

// TestCrossImplementationEquivalence asserts that the OpenMP, TreadMarks,
// and MPI versions of EVERY registered application reproduce the
// sequential checksum at test scale for procs ∈ EquivalenceProcs. New
// applications are covered automatically on registration in Apps.
func TestCrossImplementationEquivalence(t *testing.T) {
	for _, a := range Apps {
		for _, impl := range Impls {
			for _, procs := range EquivalenceProcs {
				a, impl, procs := a, impl, procs
				name := fmt.Sprintf("%s/%s/p%d", a.Name, impl, procs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					if err := CheckEquivalence(a, Test, impl, procs); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

// TestEquivalenceBeyondPaperScale is the >8-node smoke of the
// equivalence suite: every application's core implementations (the
// OpenMP source on the NOW and SMP backends, and hand-coded TreadMarks)
// must reproduce the sequential checksum at 16 and 32 workstations.
// The three DSM-backed impls are the ones the sharded homes and tree
// barrier touch; MPI and the hybrid island sweep stay on the 8-proc grid.
func TestEquivalenceBeyondPaperScale(t *testing.T) {
	for _, a := range Apps {
		for _, impl := range []Impl{OMP, OMPSMP, Tmk} {
			for _, procs := range EquivalenceSmokeProcs {
				a, impl, procs := a, impl, procs
				name := fmt.Sprintf("%s/%s/p%d", a.Name, impl, procs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					if err := CheckEquivalence(a, Test, impl, procs); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

// TestHybridEquivalenceAcrossIslands extends the suite along the hybrid
// backend's island axis: every application must reproduce the sequential
// checksum at procs ∈ EquivalenceProcs for islands ∈ {1, 2} (the plain
// omp-hybrid rows of TestCrossImplementationEquivalence already cover the
// default island count; the pinned impls here exercise the degenerate
// all-local split and the two-island split at every processor count).
func TestHybridEquivalenceAcrossIslands(t *testing.T) {
	for _, a := range Apps {
		for _, islands := range []int{1, 2} {
			for _, procs := range EquivalenceProcs {
				a, islands, procs := a, islands, procs
				impl := HybridImpl(islands)
				name := fmt.Sprintf("%s/%s/p%d", a.Name, impl, procs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					if err := CheckEquivalence(a, Test, impl, procs); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

// TestEquivalenceCoversAllApps guards the suite itself: if the app
// registry grows, the equivalence grid grows with it (7 apps after the
// LU/Barnes addition).
func TestEquivalenceCoversAllApps(t *testing.T) {
	if len(Apps) < 7 {
		t.Fatalf("only %d registered apps; LU/Barnes missing?", len(Apps))
	}
	for _, name := range []string{"Sweep3D", "3D-FFT", "Water", "TSP", "QSORT", "LU", "Barnes"} {
		if _, ok := FindApp(name); !ok {
			t.Errorf("app %q not registered", name)
		}
	}
}
