package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/apps"
)

// The experiment grid. Every table and figure of the evaluation is a set
// of independent (app, impl, procs) cells; computing them one after
// another makes regeneration cost the sum of all cells. The functions
// here run the cells of one artifact concurrently on a bounded worker
// pool — each cell is its own simulated machine, so cells do not share
// state — and hand the collected results back to the printer, which walks
// them in table order. Output is therefore byte-identical to a sequential
// harness run regardless of pool width.

// Workers bounds the grid worker pool. 1 reproduces the fully sequential
// harness; the default uses one worker per host CPU (each cell already
// runs `procs` goroutines of its own, so oversubscribing buys nothing).
var Workers = runtime.NumCPU()

// Cell weights. Cells are not equally expensive: a NOW cell simulates the
// full TreadMarks protocol (pages, diffs, servers, GC) while an SMP cell
// is pure compute over a flat heap and a hybrid cell sits in between
// (protocol traffic only across islands). The scheduler charges each cell
// a weight out of a capacity of CellUnitsPerWorker×Workers, so cheap
// cells pack several to a worker slot while NOW cells keep the old
// one-per-worker bound — shortening `nowbench -all` without
// oversubscribing the protocol-heavy simulations. The serve scheduler
// (internal/serve) prices its backend slots with the same weights, which
// is why they are exported.
const (
	// CellUnitsPerWorker is the capacity of one worker slot in weight
	// units: one full-protocol NOW cell, or CellUnitsPerWorker cheap ones.
	CellUnitsPerWorker = 4

	weightNOW    = 4 // omp, tmk: full TreadMarks protocol
	weightHybrid = 2 // omp-hybrid: inter-island protocol only
	weightCheap  = 1 // seq, omp-smp, mpi: no DSM protocol at all
)

// CellWeight returns the scheduling weight of one grid cell (or one
// served job) of the given implementation.
func CellWeight(impl Impl) int {
	if _, ok := hybridBackendKind(impl); ok {
		return weightHybrid
	}
	switch impl {
	case OMP, Tmk:
		return weightNOW
	case Seq, OMPSMP, MPI:
		return weightCheap
	}
	return weightNOW // unknown impls priced conservatively
}

// WeightedPool is a counting semaphore with per-acquire weights: the
// admission structure behind the grid's weighted worker pool, exported so
// the serve scheduler bounds its live backends with the same discipline.
type WeightedPool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail int
}

// NewWeightedPool returns a pool with the given capacity in weight units.
func NewWeightedPool(capacity int) *WeightedPool {
	p := &WeightedPool{avail: capacity}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Acquire blocks until w units are available and takes them. Fairness
// across mixed weights is the caller's concern: a heavy acquire can
// starve behind a stream of light ones if several goroutines race to
// acquire, so the grid and the serve scheduler both acquire from a
// single dispatch goroutine in a fixed admission order.
func (p *WeightedPool) Acquire(w int) {
	p.mu.Lock()
	for p.avail < w {
		p.cond.Wait()
	}
	p.avail -= w
	p.mu.Unlock()
}

// Release returns w units to the pool.
func (p *WeightedPool) Release(w int) {
	p.mu.Lock()
	p.avail += w
	p.mu.Unlock()
	p.cond.Broadcast()
}

// cellKey identifies one grid cell. Impl == Seq means the sequential
// reference run (Procs is ignored).
type cellKey struct {
	App   string
	Impl  Impl
	Procs int
}

// cellResult is the outcome of one grid cell.
type cellResult struct {
	Res apps.Result
	Err error
}

// runCell computes one grid cell. Tests swap it (via swapRunCell) to
// probe the pool's ordering behaviour with deterministic results; the
// default memoizes, and swapping bypasses the cache entirely. The guard
// exists because computeCells may run concurrently with itself (nowbench
// artifacts share the grid) and, since the serve scheduler arrived, with
// a serve.Scheduler in the same process: a bare package var would make
// the test-only swap a data race against those readers.
var (
	runCellMu sync.RWMutex
	runCell   = cachedVerified
)

func currentRunCell() func(App, Scale, Impl, int) (apps.Result, error) {
	runCellMu.RLock()
	defer runCellMu.RUnlock()
	return runCell
}

// swapRunCell installs a replacement cell runner and returns a restore
// function. Test-only; callers must restore before the test ends and must
// not leave cells in flight across the swap.
func swapRunCell(f func(App, Scale, Impl, int) (apps.Result, error)) (restore func()) {
	runCellMu.Lock()
	old := runCell
	runCell = f
	runCellMu.Unlock()
	return func() {
		runCellMu.Lock()
		runCell = old
		runCellMu.Unlock()
	}
}

// cellCache memoizes full grid cells across artifacts: nowbench -all
// asks for the same (app, impl, procs) cell from Figure 6, Table 2, the
// GC table, and the speedup sweep, and each cell is a complete
// multi-node simulation. Entries are singleflight (same pattern as
// seqCache) so concurrent artifacts share one computation, and caching
// also makes repeated artifacts in one run report one consistent
// simulation rather than four independent ones.
type cellCacheKey struct {
	App   string
	Scale Scale
	Impl  Impl
	Procs int
}

type cellCacheEntry struct {
	once sync.Once
	res  apps.Result
	err  error
}

var (
	cellCacheMu sync.Mutex
	cellCache   = map[cellCacheKey]*cellCacheEntry{}
)

func cachedVerified(a App, s Scale, impl Impl, procs int) (apps.Result, error) {
	key := cellCacheKey{App: a.Name, Scale: s, Impl: impl, Procs: procs}
	cellCacheMu.Lock()
	e, ok := cellCache[key]
	if !ok {
		e = &cellCacheEntry{}
		cellCache[key] = e
	}
	cellCacheMu.Unlock()
	e.once.Do(func() { e.res, e.err = Verified(a, s, impl, procs) })
	return e.res, e.err
}

// cellError pins a failure to the grid cell that produced it. Fail-fast
// inheritance hands the first error to every cell still queued, and a
// wide pool can surface it at an earlier table row than the cell that
// actually failed — the attribution must travel with the error, not be
// inferred from the row it prints at.
type cellError struct {
	key cellKey
	err error
}

func (e *cellError) Error() string {
	if e.key.Impl == Seq {
		return fmt.Sprintf("cell %s/seq failed: %v", e.key.App, e.err)
	}
	return fmt.Sprintf("cell %s/%s/p%d failed: %v", e.key.App, e.key.Impl, e.key.Procs, e.err)
}

func (e *cellError) Unwrap() error { return e.err }

// computeCells evaluates every cell on the weighted scheduler and returns
// the complete result set. Sequential oracles are deduplicated behind
// SeqCached's singleflight, so concurrent cells of one application fault
// in the oracle exactly once. Output never depends on scheduling: results
// are collected into a map and printed in table order by the caller.
//
// Fail fast: once any cell has failed, remaining cells are not computed —
// they inherit the first error instead of burning minutes on cells whose
// table will never print. With Workers == 1, cells run strictly
// sequentially in dispatch order, reproducing the sequential harness's
// abort-at-first-error behaviour exactly; a wider pool may surface the
// inherited error at an earlier table row, so it carries the failing
// cell's identity (cellError).
func computeCells(s Scale, cells []cellKey) map[cellKey]cellResult {
	return computeGrid(s, cells, true)
}

// computeCellsKeepGoing is computeCells without the fail-fast
// inheritance: every cell runs to its own verdict and failures stay
// confined to their (app, size) entry. The scaling study uses this — its
// 64- and 128-node cells each cost minutes, and one flaky cell must not
// void the rows already paid for or the applications still queued.
func computeCellsKeepGoing(s Scale, cells []cellKey) map[cellKey]cellResult {
	return computeGrid(s, cells, false)
}

func computeGrid(s Scale, cells []cellKey, failFast bool) map[cellKey]cellResult {
	var (
		mu       sync.Mutex
		firstErr error
		out      = make(map[cellKey]cellResult, len(cells))
	)
	oneCell := func(k cellKey) cellResult {
		var ferr error
		if failFast {
			mu.Lock()
			ferr = firstErr
			mu.Unlock()
		}
		var r cellResult
		if ferr != nil {
			r.Err = ferr
		} else {
			if a, ok := FindApp(k.App); ok {
				r.Res, r.Err = currentRunCell()(a, s, k.Impl, k.Procs)
			} else {
				r.Err = fmt.Errorf("harness: unknown app %q", k.App)
			}
			if r.Err != nil {
				r.Err = &cellError{key: k, err: r.Err}
			}
		}
		mu.Lock()
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
		out[k] = r
		mu.Unlock()
		return r
	}

	if Workers <= 1 {
		for _, k := range cells {
			oneCell(k)
		}
		return out
	}

	// Weighted admission: every cell costs cellWeight(impl) units out of
	// cellUnitsPerWorker×Workers, so protocol-heavy NOW cells keep the
	// old one-per-worker concurrency while SMP/hybrid cells pack several
	// to a slot.
	pool := NewWeightedPool(CellUnitsPerWorker * Workers)
	var wg sync.WaitGroup
	for _, k := range cells {
		w := CellWeight(k.Impl)
		pool.Acquire(w)
		wg.Add(1)
		go func(k cellKey, w int) {
			defer wg.Done()
			defer pool.Release(w)
			oneCell(k)
		}(k, w)
	}
	wg.Wait()
	return out
}
