package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/apps"
)

// The experiment grid. Every table and figure of the evaluation is a set
// of independent (app, impl, procs) cells; computing them one after
// another makes regeneration cost the sum of all cells. The functions
// here run the cells of one artifact concurrently on a bounded worker
// pool — each cell is its own simulated machine, so cells do not share
// state — and hand the collected results back to the printer, which walks
// them in table order. Output is therefore byte-identical to a sequential
// harness run regardless of pool width.

// Workers bounds the grid worker pool. 1 reproduces the fully sequential
// harness; the default uses one worker per host CPU (each cell already
// runs `procs` goroutines of its own, so oversubscribing buys nothing).
var Workers = runtime.NumCPU()

// cellKey identifies one grid cell. Impl == Seq means the sequential
// reference run (Procs is ignored).
type cellKey struct {
	App   string
	Impl  Impl
	Procs int
}

// cellResult is the outcome of one grid cell.
type cellResult struct {
	Res apps.Result
	Err error
}

// runCell computes one grid cell. Tests swap it to probe the pool's
// ordering behaviour with deterministic results; the default memoizes,
// and swapping bypasses the cache entirely.
var runCell = cachedVerified

// cellCache memoizes full grid cells across artifacts: nowbench -all
// asks for the same (app, impl, procs) cell from Figure 6, Table 2, the
// GC table, and the speedup sweep, and each cell is a complete
// multi-node simulation. Entries are singleflight (same pattern as
// seqCache) so concurrent artifacts share one computation, and caching
// also makes repeated artifacts in one run report one consistent
// simulation rather than four independent ones.
type cellCacheKey struct {
	App   string
	Scale Scale
	Impl  Impl
	Procs int
}

type cellCacheEntry struct {
	once sync.Once
	res  apps.Result
	err  error
}

var (
	cellCacheMu sync.Mutex
	cellCache   = map[cellCacheKey]*cellCacheEntry{}
)

func cachedVerified(a App, s Scale, impl Impl, procs int) (apps.Result, error) {
	key := cellCacheKey{App: a.Name, Scale: s, Impl: impl, Procs: procs}
	cellCacheMu.Lock()
	e, ok := cellCache[key]
	if !ok {
		e = &cellCacheEntry{}
		cellCache[key] = e
	}
	cellCacheMu.Unlock()
	e.once.Do(func() { e.res, e.err = Verified(a, s, impl, procs) })
	return e.res, e.err
}

// cellError pins a failure to the grid cell that produced it. Fail-fast
// inheritance hands the first error to every cell still queued, and a
// wide pool can surface it at an earlier table row than the cell that
// actually failed — the attribution must travel with the error, not be
// inferred from the row it prints at.
type cellError struct {
	key cellKey
	err error
}

func (e *cellError) Error() string {
	if e.key.Impl == Seq {
		return fmt.Sprintf("cell %s/seq failed: %v", e.key.App, e.err)
	}
	return fmt.Sprintf("cell %s/%s/p%d failed: %v", e.key.App, e.key.Impl, e.key.Procs, e.err)
}

func (e *cellError) Unwrap() error { return e.err }

// computeCells evaluates every cell on the worker pool and returns the
// complete result set. Sequential oracles are deduplicated behind
// SeqCached's singleflight, so concurrent cells of one application fault
// in the oracle exactly once.
func computeCells(s Scale, cells []cellKey) map[cellKey]cellResult {
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > len(cells) {
		w = len(cells)
	}
	var (
		mu       sync.Mutex
		firstErr error
		out      = make(map[cellKey]cellResult, len(cells))
		wg       sync.WaitGroup
		ch       = make(chan cellKey)
	)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range ch {
				// Fail fast: once any cell has failed, remaining cells are
				// not computed — they inherit the first error instead of
				// burning minutes on cells whose table will never print.
				// With one worker, dispatch order equals print order, so
				// this reproduces the sequential harness's
				// abort-at-first-error behaviour exactly; with a wider pool
				// the inherited error may surface at an earlier table row,
				// so it carries the failing cell's identity (cellError).
				mu.Lock()
				ferr := firstErr
				mu.Unlock()
				var r cellResult
				if ferr != nil {
					r.Err = ferr
				} else {
					if a, ok := FindApp(k.App); ok {
						r.Res, r.Err = runCell(a, s, k.Impl, k.Procs)
					} else {
						r.Err = fmt.Errorf("harness: unknown app %q", k.App)
					}
					if r.Err != nil {
						r.Err = &cellError{key: k, err: r.Err}
					}
				}
				mu.Lock()
				if r.Err != nil && firstErr == nil {
					firstErr = r.Err
				}
				out[k] = r
				mu.Unlock()
			}
		}()
	}
	for _, k := range cells {
		ch <- k
	}
	close(ch)
	wg.Wait()
	return out
}
