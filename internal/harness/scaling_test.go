package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestScalingSmoke runs the scaling-wall study for real on every
// application at reduced app scale and machine sizes 8 and 16: the first
// >8-node coverage of the whole Table 1 set. Each 16-node run must
// verify against the sequential oracle (TableScaling cells go through
// Verified) and must attribute its interconnect bytes to a binding
// protocol cost — the categorized split has to cover real traffic, not
// just sum to zero.
func TestScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("16-node runs of all seven apps are slow under -short")
	}
	var buf bytes.Buffer
	if err := TableScaling(&buf, Test, []int{8, 16}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, a := range Apps {
		if !strings.Contains(out, a.Name) {
			t.Errorf("scaling table missing app %s", a.Name)
		}
	}
	for _, a := range Apps {
		for _, p := range []int{8, 16} {
			res, err := cachedVerified(a, Test, OMP, p)
			if err != nil {
				t.Fatalf("%s at %d procs: %v", a.Name, p, err)
			}
			if res.PageBytes == 0 || res.SyncBytes == 0 {
				t.Errorf("%s at %d procs: uncategorized traffic (page %d, sync %d bytes)",
					a.Name, p, res.PageBytes, res.SyncBytes)
			}
			if gotM, gotB := res.PageMsgs+res.SyncMsgs+res.GCMsgs, res.PageBytes+res.SyncBytes+res.GCBytes; gotM != res.Messages || gotB != res.Bytes {
				t.Errorf("%s at %d procs: categories sum to %d msgs / %d bytes, run counted %d / %d",
					a.Name, p, gotM, gotB, res.Messages, res.Bytes)
			}
			_, _, _, binding := scalingShares(res)
			if binding == "-" {
				t.Errorf("%s at %d procs: no binding cost attributed", a.Name, p)
			}
		}
	}
}
