package harness

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// TestScalingSmoke runs the scaling-wall study for real on every
// application at reduced app scale and machine sizes 8 and 16: the first
// >8-node coverage of the whole Table 1 set. Each 16-node run must
// verify against the sequential oracle (TableScaling cells go through
// Verified) and must attribute its interconnect bytes to a binding
// protocol cost — the categorized split has to cover real traffic, not
// just sum to zero.
// TestScalingDegradesOnCellError pins the study's fault containment: a
// failing (app, size) cell reports its error in place while every other
// row — including the failing application's other sizes — still prints,
// and a failing sequential baseline costs exactly its own application.
// Wall detection must also restart after an errored size: comparing a
// speedup against one measured two sizes back would invent a wall. The
// injected runner makes speedup equal the processor count, so the
// monotone apps (and the errored one, across its gap) end wall-free.
func TestScalingDegradesOnCellError(t *testing.T) {
	boom := errors.New("injected cell failure")
	restore := swapRunCell(func(a App, s Scale, impl Impl, procs int) (apps.Result, error) {
		if a.Name == "Sweep3D" {
			return apps.Result{}, boom
		}
		if a.Name == "Water" && impl == OMP && procs == 16 {
			return apps.Result{}, boom
		}
		d := sim.Second
		if impl == OMP {
			d /= sim.Time(procs)
		}
		return apps.Result{Time: d, PageBytes: 100, SyncBytes: 50, GCBytes: 10}, nil
	})
	defer restore()

	var buf bytes.Buffer
	if err := TableScaling(&buf, Test, []int{8, 16, 32}); err != nil {
		t.Fatalf("TableScaling aborted instead of degrading: %v", err)
	}
	out := buf.String()
	lines := strings.Split(out, "\n")
	rowsWith := func(substrs ...string) int {
		c := 0
		for _, l := range lines {
			ok := true
			for _, s := range substrs {
				ok = ok && strings.Contains(l, s)
			}
			if ok {
				c++
			}
		}
		return c
	}
	if rowsWith("Sweep3D", "seq", "ERROR") != 1 {
		t.Errorf("Sweep3D's failed sequential baseline did not print as one error row:\n%s", out)
	}
	if got := rowsWith("ERROR"); got != 2 {
		t.Errorf("%d ERROR rows, want exactly 2 (Sweep3D/seq and Water/16):\n%s", got, out)
	}
	if rowsWith("Water", "8", "8.00") != 1 {
		t.Errorf("Water's 8-processor row missing despite only its 16-node cell failing:\n%s", out)
	}
	if rowsWith("32", "32.00") != len(Apps)-1 {
		t.Errorf("expected a 32-processor row for every app but Sweep3D:\n%s", out)
	}
	// procs-proportional speedups never flatten, and Water's 32-node cell
	// must be compared against nothing (its predecessor errored), not
	// against the 8-node row.
	if got := rowsWith("no wall up to 32"); got != len(Apps)-1 {
		t.Errorf("%d wall-free apps, want %d (every app but Sweep3D):\n%s", got, len(Apps)-1, out)
	}
	if rowsWith("wall at") != 0 {
		t.Errorf("spurious wall detected across an errored cell:\n%s", out)
	}
}

func TestScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("16-node runs of all seven apps are slow under -short")
	}
	var buf bytes.Buffer
	if err := TableScaling(&buf, Test, []int{8, 16}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, a := range Apps {
		if !strings.Contains(out, a.Name) {
			t.Errorf("scaling table missing app %s", a.Name)
		}
	}
	for _, a := range Apps {
		for _, p := range []int{8, 16} {
			res, err := cachedVerified(a, Test, OMP, p)
			if err != nil {
				t.Fatalf("%s at %d procs: %v", a.Name, p, err)
			}
			if res.PageBytes == 0 || res.SyncBytes == 0 {
				t.Errorf("%s at %d procs: uncategorized traffic (page %d, sync %d bytes)",
					a.Name, p, res.PageBytes, res.SyncBytes)
			}
			if gotM, gotB := res.PageMsgs+res.SyncMsgs+res.GCMsgs, res.PageBytes+res.SyncBytes+res.GCBytes; gotM != res.Messages || gotB != res.Bytes {
				t.Errorf("%s at %d procs: categories sum to %d msgs / %d bytes, run counted %d / %d",
					a.Name, p, gotM, gotB, res.Messages, res.Bytes)
			}
			_, _, _, binding := scalingShares(res)
			if binding == "-" {
				t.Errorf("%s at %d procs: no binding cost attributed", a.Name, p)
			}
		}
	}
}
