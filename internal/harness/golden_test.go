package harness

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// TestTable1GoldenRendering re-renders Table 1 independently from the
// same memoized sequential results and requires the harness output to
// match byte for byte: header text, column layout, and row order are all
// pinned, so the concurrent refactor (or any future one) cannot reorder
// or garble the printed artifact.
func TestTable1GoldenRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, Test); err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	want.WriteString("Table 1: applications, input data sets, sequential execution time,\n")
	want.WriteString("and parallel and synchronization directives in the OpenMP versions\n\n")
	fmt.Fprintf(&want, "%-10s %-32s %12s  %-20s %-28s\n", "App", "Data size", "Seq time", "Parallel", "Synchronization")
	for _, a := range Apps {
		res := SeqCached(a, Test)
		fmt.Fprintf(&want, "%-10s %-32s %12s  %-20s %-28s\n", a.Name, "(test scale)", res.Time.String(), a.Parallel, a.Synch)
	}
	if got := buf.String(); got != want.String() {
		t.Errorf("Table 1 rendering drifted:\n--- got ---\n%s--- want ---\n%s", got, want.String())
	}
	for _, name := range []string{"LU", "Barnes"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("Table 1 missing new app %s", name)
		}
	}
}

// fakeCell returns a deterministic, cell-distinct result so output
// comparisons across pool widths are exact. It replaces runCell for the
// ordering tests below (real cells are nondeterministic in their low
// digits: virtual time depends on lock-grant interleaving).
func fakeCell(a App, s Scale, impl Impl, procs int) (apps.Result, error) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%s/%d", a.Name, s, impl, procs)
	v := h.Sum64()
	return apps.Result{
		Checksum: float64(v % 1000),
		Time:     sim.Time(1 + v%997_000_000),
		Messages: int64(v % 10_000),
		Bytes:    int64(v % 1_000_000),
	}, nil
}

// TestConcurrentGridOutputByteIdentical renders every artifact with a
// single-worker (sequential) pool and with a wide pool, on deterministic
// fake cells, and requires byte-identical output: the concurrent grid
// must not reorder, interleave, or drop rows.
func TestConcurrentGridOutputByteIdentical(t *testing.T) {
	origWorkers := Workers
	restore := swapRunCell(fakeCell)
	defer func() { restore(); Workers = origWorkers }()

	render := func(workers int) string {
		Workers = workers
		var buf bytes.Buffer
		if err := Table1(&buf, Test); err != nil {
			t.Fatal(err)
		}
		if err := Figure6(&buf, Test, 8); err != nil {
			t.Fatal(err)
		}
		if err := Table2(&buf, Test, 8); err != nil {
			t.Fatal(err)
		}
		if err := TableGC(&buf, Test, 8); err != nil {
			t.Fatal(err)
		}
		if err := SpeedupSweep(&buf, Test, []int{1, 2, 4, 8}); err != nil {
			t.Fatal(err)
		}
		if err := TableScaling(&buf, Test, []int{8, 16, 32}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	// Workers == 1 is the strictly sequential scheduler; wider pools use
	// the weighted scheduler (SMP/hybrid cells pack several to a worker
	// slot), and the printed artifacts must not change by a byte either
	// way.
	sequential := render(1)
	for _, w := range []int{2, 8, 32} {
		if got := render(w); got != sequential {
			t.Fatalf("output with %d workers differs from sequential:\n--- %d workers ---\n%s\n--- sequential ---\n%s", w, w, got, sequential)
		}
	}
	// Sanity: the fake grid really exercises every app row and every
	// implementation column (the hybrid column included).
	for _, a := range Apps {
		if !strings.Contains(sequential, a.Name) {
			t.Errorf("rendered artifacts missing app %s", a.Name)
		}
	}
	for _, impl := range Impls {
		if !strings.Contains(sequential, implLabel(impl)) {
			t.Errorf("rendered artifacts missing impl column %s", implLabel(impl))
		}
	}
}

// TestCellWeights pins the weighted scheduler's pricing: full-protocol
// NOW cells cost a whole worker slot, hybrid cells half, and
// protocol-free cells a quarter — and the weighted pool itself respects
// its capacity under concurrent acquires.
func TestCellWeights(t *testing.T) {
	for impl, want := range map[Impl]int{
		OMP: weightNOW, Tmk: weightNOW,
		OMPHybrid: weightHybrid, HybridImpl(1): weightHybrid, HybridImpl(4): weightHybrid,
		Seq: weightCheap, OMPSMP: weightCheap, MPI: weightCheap,
	} {
		if got := CellWeight(impl); got != want {
			t.Errorf("CellWeight(%s) = %d, want %d", impl, got, want)
		}
	}
	if weightNOW != CellUnitsPerWorker {
		t.Errorf("a NOW cell (weight %d) should occupy exactly one worker slot (%d units)",
			weightNOW, CellUnitsPerWorker)
	}

	const capacity = 8
	pool := NewWeightedPool(capacity)
	var mu sync.Mutex
	inUse, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		w := 1 + i%4
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool.Acquire(w)
			mu.Lock()
			inUse += w
			if inUse > peak {
				peak = inUse
			}
			if inUse > capacity {
				mu.Unlock()
				t.Errorf("weighted pool over capacity: %d > %d", inUse, capacity)
				pool.Release(w)
				return
			}
			mu.Unlock()
			runtime.Gosched()
			mu.Lock()
			inUse -= w
			mu.Unlock()
			pool.Release(w)
		}(w)
	}
	wg.Wait()
	if peak == 0 {
		t.Error("pool admitted nothing")
	}
}

// TestGridErrorNamesFailingCell pins fail-fast attribution: whichever
// table row an inherited error surfaces at, the message must name the
// cell that actually failed, at every pool width.
func TestGridErrorNamesFailingCell(t *testing.T) {
	origWorkers := Workers
	failImpl, failProcs := Tmk, 8
	failApp := Apps[len(Apps)-1].Name // a late table row, so wide pools inherit early
	restore := swapRunCell(func(a App, s Scale, impl Impl, procs int) (apps.Result, error) {
		if a.Name == failApp && impl == failImpl && procs == failProcs {
			return apps.Result{}, fmt.Errorf("synthetic cell failure")
		}
		return fakeCell(a, s, impl, procs)
	})
	defer func() { restore(); Workers = origWorkers }()
	want := fmt.Sprintf("cell %s/%s/p%d failed", failApp, failImpl, failProcs)
	for _, w := range []int{1, 4, 32} {
		Workers = w
		var buf bytes.Buffer
		err := Figure6(&buf, Test, failProcs)
		if err == nil {
			t.Fatalf("workers=%d: expected an error", w)
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("workers=%d: error %q does not name failing cell (want %q)", w, err, want)
		}
		if !strings.Contains(err.Error(), "synthetic cell failure") {
			t.Errorf("workers=%d: error %q lost the underlying cause", w, err)
		}
	}
}
