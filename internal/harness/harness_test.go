package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1TestScale(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, Test); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Sweep3D", "3D-FFT", "Water", "TSP", "QSORT", "LU", "Barnes"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "semaphore") || !strings.Contains(out, "condition variables") {
		t.Errorf("Table 1 missing directive columns:\n%s", out)
	}
}

func TestFigure6TestScale(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure6(&buf, Test, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OpenMP") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestTable2TestScale(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf, Test, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Messages") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestVerifiedCatchesNothingOnGoodRuns(t *testing.T) {
	for _, a := range Apps {
		if _, err := Verified(a, Test, OMP, 2); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestMicroResultsInPaperBands(t *testing.T) {
	m, err := Micro()
	if err != nil {
		t.Fatal(err)
	}
	// The Section 6 calibration targets (generous bands).
	us := func(t2 interface{ Micros() float64 }) float64 { return t2.Micros() }
	if got := us(m.UDPRoundTrip); got < 100 || got > 160 {
		t.Errorf("UDP RTT %.1fµs, want ~126µs", got)
	}
	if got := us(m.LockLow); got < 100 || got > 700 {
		t.Errorf("lock low %.1fµs, want 170-700µs band", got)
	}
	if got := us(m.LockHigh); got <= us(m.LockLow) {
		t.Errorf("lock high (%.1fµs) should exceed lock low (%.1fµs)", got, us(m.LockLow))
	}
	if got := us(m.Barrier8); got < 200 || got > 2000 {
		t.Errorf("8-proc barrier %.1fµs, want hundreds of µs", got)
	}
	if got := us(m.DiffLow); got < 100 || got > 900 {
		t.Errorf("diff low %.1fµs, want in 313-827µs band-ish", got)
	}
	if m.DiffHigh <= m.DiffLow {
		t.Errorf("full-page diff (%v) should cost more than 1-word diff (%v)", m.DiffHigh, m.DiffLow)
	}
	if got := us(m.TCPRoundTrip); got < 150 || got > 280 {
		t.Errorf("TCP RTT %.1fµs, want ~200µs", got)
	}
	if m.TCPBandwidth < 5 || m.TCPBandwidth > 12 {
		t.Errorf("TCP bandwidth %.1f MB/s, want ~8.6", m.TCPBandwidth)
	}
}

func TestAblationPipelineFavorsSemaphores(t *testing.T) {
	res, err := AblationPipeline(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewMsgs >= res.FlushMsgs {
		t.Errorf("semaphores sent %d messages, flush %d — semaphores must send fewer", res.NewMsgs, res.FlushMsgs)
	}
	if res.NewTime >= res.FlushTime {
		t.Errorf("semaphores took %v, flush %v — semaphores must be faster", res.NewTime, res.FlushTime)
	}
	if res.NewInterrupts >= res.FlushInterrupts {
		t.Errorf("semaphores interrupted %d times, flush %d", res.NewInterrupts, res.FlushInterrupts)
	}
}

func TestAblationTaskQueueFavorsCondvars(t *testing.T) {
	res, err := AblationTaskQueue(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewMsgs >= res.FlushMsgs {
		t.Errorf("condvars sent %d messages, flush %d", res.NewMsgs, res.FlushMsgs)
	}
}

func TestFlushCostIsTwoNMinusOne(t *testing.T) {
	rows, err := AblationFlushCost([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FlushMsgs != int64(2*(r.Procs-1)) {
			t.Errorf("procs=%d: flush cost %d, want %d", r.Procs, r.FlushMsgs, 2*(r.Procs-1))
		}
		// A signal/wait pair costs two 2-message exchanges plus at most
		// one forwarded hop — a small constant, independent of n.
		if r.SemaMsgs > 8 {
			t.Errorf("procs=%d: semaphore pair cost %d messages, want small constant", r.Procs, r.SemaMsgs)
		}
	}
	// The semaphore cost must not grow with the processor count while
	// flush grows linearly: that is the paper's Section 3.2.3 claim.
	if last := rows[len(rows)-1]; last.SemaMsgs > rows[0].SemaMsgs+4 {
		t.Errorf("semaphore cost grew with procs: %v", rows)
	}
}

func TestPrintAblationsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 8-proc ablations")
	}
	var buf bytes.Buffer
	if err := PrintAblations(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2(n-1)") {
		t.Errorf("missing flush-cost section:\n%s", buf.String())
	}
}
