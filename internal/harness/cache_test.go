package harness

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/apps"
)

// TestCellCacheSingleflightConcurrent pins the property the serve
// scheduler relies on: when several schedulers (or grid artifacts) in one
// process ask for the same cell concurrently, the singleflight cache runs
// the cell exactly once and every caller observes the one result. Before
// the serve subsystem the cache only ever saw concurrency from a single
// computeCells pool; now two Scheduler instances plus a grid run can race
// on the same key.
func TestCellCacheSingleflightConcurrent(t *testing.T) {
	var runs atomic.Int64
	fake := App{
		Name:   "cache-singleflight-probe", // unique: never collides with real cells
		RunSeq: func(Scale) apps.Result { return apps.Result{Checksum: 42} },
		Run: func(Scale, Impl, int) (apps.Result, error) {
			runs.Add(1)
			return apps.Result{Checksum: 42, Time: 7}, nil
		},
	}

	const callers = 32
	var wg sync.WaitGroup
	results := make([]apps.Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cachedVerified(fake, Test, OMPSMP, 4)
		}(i)
	}
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("cell executed %d times under %d concurrent callers, want exactly 1", n, callers)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d saw %+v, caller 0 saw %+v: cache returned divergent results", i, results[i], results[0])
		}
	}

	// A different key is a different cell: the cache must not conflate
	// proc counts.
	if _, err := cachedVerified(fake, Test, OMPSMP, 8); err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("distinct (procs=8) key ran the cell %d times total, want 2", n)
	}
}
