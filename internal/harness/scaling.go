package harness

import (
	"io"

	"repro/internal/apps"
)

// The >8-node scaling study. The paper stops at its 8-workstation
// testbed; with homes sharded across nodes and the tree barrier in place
// the simulated NOW runs far past that, and the interesting question
// becomes where each application's speedup stops and which protocol cost
// is binding when it does. The per-category traffic split
// (dsm.TrafficBreakdown, carried on apps.Result) is what lets the table
// name the culprit instead of guessing.

// ScalingProcs is the machine-size axis of the scaling study: the
// paper's full 8-workstation NOW and the powers of two beyond it.
var ScalingProcs = []int{8, 16, 32, 64, 128}

// scalingShares computes each protocol cost category's share of a run's
// interconnect bytes (in percent) and names the binding category — the
// one paying the most bytes. Runs with no categorized traffic (hardware
// shared memory, or synthetic test cells) report "-".
func scalingShares(r apps.Result) (page, sync, gc float64, binding string) {
	total := r.PageBytes + r.SyncBytes + r.GCBytes
	if total == 0 {
		return 0, 0, 0, "-"
	}
	page = 100 * float64(r.PageBytes) / float64(total)
	sync = 100 * float64(r.SyncBytes) / float64(total)
	gc = 100 * float64(r.GCBytes) / float64(total)
	binding, max := "page", r.PageBytes
	if r.SyncBytes > max {
		binding, max = "sync", r.SyncBytes
	}
	if r.GCBytes > max {
		binding = "gc"
	}
	return page, sync, gc, binding
}

// TableScaling prints the scaling-wall study: for every application, the
// OpenMP/NOW speedup at each machine size in procsList, the byte share
// of each protocol cost category (page service / synchronization fan-in
// / GC consensus), and which category is binding there. The wall line
// names the first size that no longer improves on the previous one —
// the machine size past which adding workstations buys nothing.
//
// A failing cell degrades in place instead of aborting the table: its
// row reports the error, wall detection restarts past it (a speedup
// comparison across an errored size would be meaningless), and every
// other application's rows still print. At 64 and 128 nodes a single
// flaky cell must not cost the whole multi-hour study.
func TableScaling(w io.Writer, s Scale, procsList []int) error {
	cells := make([]cellKey, 0, len(Apps)*(1+len(procsList)))
	for _, a := range Apps {
		cells = append(cells, cellKey{App: a.Name, Impl: Seq})
		for _, p := range procsList {
			cells = append(cells, cellKey{App: a.Name, Impl: OMP, Procs: p})
		}
	}
	got := computeCellsKeepGoing(s, cells)

	fprintf(w, "Scaling wall: OpenMP on the NOW past the paper's 8 workstations.\n")
	fprintf(w, "Per machine size: speedup over sequential, each protocol cost's\n")
	fprintf(w, "share of interconnect bytes (page service / synchronization\n")
	fprintf(w, "fan-in / GC consensus), and the binding cost; the wall is the\n")
	fprintf(w, "first size that no longer improves on the previous one.\n\n")
	fprintf(w, "%-10s %6s %8s %7s %7s %7s  %-8s\n",
		"App", "procs", "speedup", "page%", "sync%", "gc%", "binding")
	for _, a := range Apps {
		seq := got[cellKey{App: a.Name, Impl: Seq}]
		if seq.Err != nil {
			// No sequential baseline, no speedups: one error row stands in
			// for the application and the table moves on.
			fprintf(w, "%-10s %6s ERROR: %v\n", a.Name, "seq", seq.Err)
			continue
		}
		wall := 0
		havePrev := false
		prev := 0.0
		for i, p := range procsList {
			name := a.Name
			if i > 0 {
				name = ""
			}
			c := got[cellKey{App: a.Name, Impl: OMP, Procs: p}]
			if c.Err != nil {
				fprintf(w, "%-10s %6d ERROR: %v\n", name, p, c.Err)
				// The next good cell has no predecessor to improve on.
				havePrev = false
				continue
			}
			sp := seq.Res.Time.Seconds() / c.Res.Time.Seconds()
			page, sync, gc, binding := scalingShares(c.Res)
			fprintf(w, "%-10s %6d %8.2f %7.1f %7.1f %7.1f  %-8s\n",
				name, p, sp, page, sync, gc, binding)
			if wall == 0 && havePrev && sp <= prev {
				wall = p
			}
			havePrev = true
			prev = sp
		}
		if wall > 0 {
			fprintf(w, "%-10s %6s wall at %d procs\n", "", "", wall)
		} else {
			fprintf(w, "%-10s %6s no wall up to %d procs\n", "", "", procsList[len(procsList)-1])
		}
	}
	return nil
}
