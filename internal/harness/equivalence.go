package harness

// The cross-implementation equivalence contract: every implementation of
// every registered application must reproduce the sequential checksum at
// every processor count. The suite in equivalence_test.go iterates
// Apps × Impls × EquivalenceProcs, so an application is covered the
// moment it is added to Apps — no per-app test wiring required.

// EquivalenceProcs is the processor grid of the equivalence suite: the
// paper's full machine (8 workstations) and the powers of two below it.
var EquivalenceProcs = []int{1, 2, 4, 8}

// EquivalenceSmokeProcs extends the grid past the paper's machine for
// the smoke rows of the scaling work: with homes sharded across nodes
// and the barrier a combining tree, the core implementations must still
// reproduce the sequential checksum at 16 and 32 workstations (at
// reduced app scale — the full grid at these sizes would dominate the
// suite's runtime).
var EquivalenceSmokeProcs = []int{16, 32}

// CheckEquivalence runs one implementation of one application at the
// given processor count and verifies its checksum against the (memoized)
// sequential oracle. It is the single helper behind the equivalence
// suite and is exported so application packages can reuse it.
func CheckEquivalence(a App, s Scale, impl Impl, procs int) error {
	_, err := Verified(a, s, impl, procs)
	return err
}
