package harness

import (
	"fmt"
	"io"
)

// Table1 prints the paper's Table 1: applications, input data sets,
// sequential execution time, and the parallel and synchronization
// directives used in the OpenMP versions.
func Table1(w io.Writer, s Scale) error {
	fprintf(w, "Table 1: applications, input data sets, sequential execution time,\n")
	fprintf(w, "and parallel and synchronization directives in the OpenMP versions\n\n")
	fprintf(w, "%-10s %-32s %12s  %-20s %-28s\n", "App", "Data size", "Seq time", "Parallel", "Synchronization")
	for _, a := range Apps {
		res := SeqCached(a, s)
		size := a.DataSize
		if s != Full {
			size = "(test scale)"
		}
		fprintf(w, "%-10s %-32s %12s  %-20s %-28s\n", a.Name, size, res.Time.String(), a.Parallel, a.Synch)
	}
	return nil
}

// Figure6 prints the paper's Figure 6: speedup on `procs` processors for
// the OpenMP, TreadMarks, and MPI versions of each application (speedups
// relative to the sequential time of Table 1).
func Figure6(w io.Writer, s Scale, procs int) error {
	fprintf(w, "Figure 6: speedup comparison among the OpenMP, TreadMarks and MPI\n")
	fprintf(w, "versions of the applications (%d processors)\n\n", procs)
	fprintf(w, "%-10s %8s %8s %8s\n", "App", "OpenMP", "Tmk", "MPI")
	for _, a := range Apps {
		seq := SeqCached(a, s)
		row := fmt.Sprintf("%-10s", a.Name)
		for _, impl := range Impls {
			res, err := Verified(a, s, impl, procs)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %8.2f", seq.Time.Seconds()/res.Time.Seconds())
		}
		fprintf(w, "%s\n", row)
	}
	return nil
}

// Table2 prints the paper's Table 2: amount of data transmitted and
// number of messages in the OpenMP, TreadMarks, and MPI versions.
func Table2(w io.Writer, s Scale, procs int) error {
	fprintf(w, "Table 2: amount of data transmitted and number of messages in the\n")
	fprintf(w, "OpenMP, TreadMarks and MPI versions (%d processors)\n\n", procs)
	fprintf(w, "%-10s | %10s %10s %10s | %10s %10s %10s\n",
		"", "Data (MB)", "", "", "Messages", "", "")
	fprintf(w, "%-10s | %10s %10s %10s | %10s %10s %10s\n",
		"App", "OpenMP", "Tmk", "MPI", "OpenMP", "Tmk", "MPI")
	for _, a := range Apps {
		var mb [3]float64
		var msgs [3]int64
		for i, impl := range Impls {
			res, err := Verified(a, s, impl, procs)
			if err != nil {
				return err
			}
			mb[i] = float64(res.Bytes) / 1e6
			msgs[i] = res.Messages
		}
		fprintf(w, "%-10s | %10.2f %10.2f %10.2f | %10d %10d %10d\n",
			a.Name, mb[0], mb[1], mb[2], msgs[0], msgs[1], msgs[2])
	}
	return nil
}

// SpeedupSweep prints speedup curves over processor counts for every
// application and implementation (the supplementary scalability series).
func SpeedupSweep(w io.Writer, s Scale, procsList []int) error {
	fprintf(w, "Speedup sweep: speedup vs processors per application and version\n\n")
	for _, a := range Apps {
		seq := SeqCached(a, s)
		fprintf(w, "%s (seq %s)\n", a.Name, seq.Time)
		fprintf(w, "  %-8s", "procs")
		for _, p := range procsList {
			fprintf(w, " %7d", p)
		}
		fprintf(w, "\n")
		for _, impl := range Impls {
			fprintf(w, "  %-8s", impl)
			for _, p := range procsList {
				res, err := Verified(a, s, impl, p)
				if err != nil {
					return err
				}
				fprintf(w, " %7.2f", seq.Time.Seconds()/res.Time.Seconds())
			}
			fprintf(w, "\n")
		}
	}
	return nil
}
