package harness

import (
	"fmt"
	"io"
)

// Every artifact below computes its full cell grid concurrently (see
// grid.go) and only then prints, walking the applications in Table 1
// order — on success the printed bytes do not depend on the worker pool
// width. On a cell failure the rows before the first failing result are
// printed and the error returned; with Workers == 1 this reproduces the
// sequential harness exactly, while wider pools may surface the error at
// an earlier row (fail-fast poisons cells still queued when another cell
// fails — see computeCells).

// Table1 prints the paper's Table 1: applications, input data sets,
// sequential execution time, and the parallel and synchronization
// directives used in the OpenMP versions.
func Table1(w io.Writer, s Scale) error {
	cells := make([]cellKey, 0, len(Apps))
	for _, a := range Apps {
		cells = append(cells, cellKey{App: a.Name, Impl: Seq})
	}
	got := computeCells(s, cells)

	fprintf(w, "Table 1: applications, input data sets, sequential execution time,\n")
	fprintf(w, "and parallel and synchronization directives in the OpenMP versions\n\n")
	fprintf(w, "%-10s %-32s %12s  %-20s %-28s\n", "App", "Data size", "Seq time", "Parallel", "Synchronization")
	for _, a := range Apps {
		c := got[cellKey{App: a.Name, Impl: Seq}]
		if c.Err != nil {
			return c.Err
		}
		size := a.DataSize
		if s != Full {
			size = "(test scale)"
		}
		fprintf(w, "%-10s %-32s %12s  %-20s %-28s\n", a.Name, size, c.Res.Time.String(), a.Parallel, a.Synch)
	}
	return nil
}

// Figure6 prints the paper's Figure 6 extended into a NOW vs SMP vs
// NOW-of-SMPs comparison: speedup on `procs` processors for every
// implementation of each application — the OpenMP source on all three of
// its backends, TreadMarks, and MPI (speedups relative to the sequential
// time of Table 1). The hybrid column uses HybridIslands SMP islands.
func Figure6(w io.Writer, s Scale, procs int) error {
	cells := make([]cellKey, 0, len(Apps)*(len(Impls)+1))
	for _, a := range Apps {
		cells = append(cells, cellKey{App: a.Name, Impl: Seq})
		for _, impl := range Impls {
			cells = append(cells, cellKey{App: a.Name, Impl: impl, Procs: procs})
		}
	}
	got := computeCells(s, cells)

	fprintf(w, "Figure 6: speedup comparison among the OpenMP (NOW, SMP and hybrid\n")
	fprintf(w, "NOW-of-SMPs backends), TreadMarks and MPI versions (%d processors,\n", procs)
	fprintf(w, "%d islands in the hybrid column)\n\n", HybridIslands)
	hdr := fmt.Sprintf("%-10s", "App")
	for _, impl := range Impls {
		hdr += fmt.Sprintf(" %8s", implLabel(impl))
	}
	fprintf(w, "%s\n", hdr)
	for _, a := range Apps {
		seq := got[cellKey{App: a.Name, Impl: Seq}]
		if seq.Err != nil {
			return seq.Err
		}
		row := fmt.Sprintf("%-10s", a.Name)
		for _, impl := range Impls {
			c := got[cellKey{App: a.Name, Impl: impl, Procs: procs}]
			if c.Err != nil {
				return c.Err
			}
			row += fmt.Sprintf(" %8.2f", seq.Res.Time.Seconds()/c.Res.Time.Seconds())
		}
		fprintf(w, "%s\n", row)
	}
	return nil
}

// Table2 prints the paper's Table 2: amount of data transmitted and
// number of messages in every implementation (the omp-smp columns are
// identically zero — hardware shared memory has no interconnect — and
// are printed as the baseline the NOW numbers are paying for; the
// omp-hybrid columns sit in between, counting only inter-island traffic).
func Table2(w io.Writer, s Scale, procs int) error {
	cells := make([]cellKey, 0, len(Apps)*len(Impls))
	for _, a := range Apps {
		for _, impl := range Impls {
			cells = append(cells, cellKey{App: a.Name, Impl: impl, Procs: procs})
		}
	}
	got := computeCells(s, cells)

	fprintf(w, "Table 2: amount of data transmitted and number of messages in the\n")
	fprintf(w, "OpenMP (NOW, SMP and hybrid backends), TreadMarks and MPI versions\n")
	fprintf(w, "(%d processors, %d islands in the hybrid columns)\n\n", procs, HybridIslands)
	group := func(title string) string {
		out := fmt.Sprintf(" | %10s", title)
		for i := 1; i < len(Impls); i++ {
			out += fmt.Sprintf(" %10s", "")
		}
		return out
	}
	fprintf(w, "%-10s%s%s\n", "", group("Data (MB)"), group("Messages"))
	hdr := fmt.Sprintf("%-10s", "App")
	for pass := 0; pass < 2; pass++ {
		hdr += " |"
		for _, impl := range Impls {
			hdr += fmt.Sprintf(" %10s", implLabel(impl))
		}
	}
	fprintf(w, "%s\n", hdr)
	for _, a := range Apps {
		mb := make([]float64, len(Impls))
		msgs := make([]int64, len(Impls))
		for i, impl := range Impls {
			c := got[cellKey{App: a.Name, Impl: impl, Procs: procs}]
			if c.Err != nil {
				return c.Err
			}
			mb[i] = float64(c.Res.Bytes) / 1e6
			msgs[i] = c.Res.Messages
		}
		row := fmt.Sprintf("%-10s |", a.Name)
		for _, v := range mb {
			row += fmt.Sprintf(" %10.2f", v)
		}
		row += " |"
		for _, v := range msgs {
			row += fmt.Sprintf(" %10d", v)
		}
		fprintf(w, "%s\n", row)
	}
	return nil
}

// TableGC prints the protocol-metadata accounting of the DSM-backed
// implementations (OpenMP and TreadMarks; MPI holds no consistency
// metadata): interval records retired by the garbage collector, the peak
// retained interval-chain length on any node, the peak protocol-metadata
// bytes (records + diffs + twins) on any node, and the acquire epochs
// announced by the lock-manager consensus. Lock- and semaphore-
// synchronized applications (TSP, QSORT, Sweep3D) barrier rarely — the
// acquire source (AcqEp) is what bounds their chains.
func TableGC(w io.Writer, s Scale, procs int) error {
	impls := []Impl{OMP, Tmk}
	cells := make([]cellKey, 0, len(Apps)*len(impls))
	for _, a := range Apps {
		for _, impl := range impls {
			cells = append(cells, cellKey{App: a.Name, Impl: impl, Procs: procs})
		}
	}
	got := computeCells(s, cells)

	fprintf(w, "Protocol-metadata GC: intervals retired, peak retained chain length,\n")
	fprintf(w, "peak metadata footprint per node, and acquire epochs (%d processors)\n\n", procs)
	fprintf(w, "%-10s | %10s %10s %10s %6s | %10s %10s %10s %6s\n",
		"", "OpenMP", "", "", "", "Tmk", "", "", "")
	fprintf(w, "%-10s | %10s %10s %10s %6s | %10s %10s %10s %6s\n",
		"App", "Retired", "PeakChain", "PeakKB", "AcqEp", "Retired", "PeakChain", "PeakKB", "AcqEp")
	for _, a := range Apps {
		var ret, chain, kb, acq [2]int64
		for i, impl := range impls {
			c := got[cellKey{App: a.Name, Impl: impl, Procs: procs}]
			if c.Err != nil {
				return c.Err
			}
			ret[i] = c.Res.IntervalsRetired
			chain[i] = c.Res.PeakIntervalChain
			kb[i] = c.Res.PeakProtoBytes / 1024
			acq[i] = c.Res.GCAcqEpochs
		}
		fprintf(w, "%-10s | %10d %10d %10d %6d | %10d %10d %10d %6d\n",
			a.Name, ret[0], chain[0], kb[0], acq[0], ret[1], chain[1], kb[1], acq[1])
	}
	return nil
}

// SpeedupSweep prints speedup curves over processor counts for every
// application and implementation (the supplementary scalability series).
func SpeedupSweep(w io.Writer, s Scale, procsList []int) error {
	cells := make([]cellKey, 0, len(Apps)*(1+len(Impls)*len(procsList)))
	for _, a := range Apps {
		cells = append(cells, cellKey{App: a.Name, Impl: Seq})
		for _, impl := range Impls {
			for _, p := range procsList {
				cells = append(cells, cellKey{App: a.Name, Impl: impl, Procs: p})
			}
		}
	}
	got := computeCells(s, cells)

	fprintf(w, "Speedup sweep: speedup vs processors per application and version\n\n")
	for _, a := range Apps {
		seq := got[cellKey{App: a.Name, Impl: Seq}]
		if seq.Err != nil {
			return seq.Err
		}
		fprintf(w, "%s (seq %s)\n", a.Name, seq.Res.Time)
		fprintf(w, "  %-10s", "procs")
		for _, p := range procsList {
			fprintf(w, " %7d", p)
		}
		fprintf(w, "\n")
		for _, impl := range Impls {
			fprintf(w, "  %-10s", impl)
			for _, p := range procsList {
				c := got[cellKey{App: a.Name, Impl: impl, Procs: p}]
				if c.Err != nil {
					return c.Err
				}
				fprintf(w, " %7.2f", seq.Res.Time.Seconds()/c.Res.Time.Seconds())
			}
			fprintf(w, "\n")
		}
	}
	return nil
}
