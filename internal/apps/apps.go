// Package apps holds the seven applications of the evaluation: the
// paper's Table 1 set (ASCI Sweep3D, NAS 3D-FFT, SPLASH-2 Water, TSP,
// QSORT) plus the LU and Barnes-Hut workloads added on top of it. Each
// application subpackage provides implementations of the same
// computation —
//
//	RunSeq   — sequential reference (the baseline for speedups),
//	RunOMP   — backend-neutral OpenMP (internal/core) on the NOW;
//	RunOMPOn — the same source on any core backend (NOW or SMP),
//	RunTmk   — hand-coded TreadMarks (internal/dsm directly),
//	RunMPI   — hand-coded message passing (internal/mpi),
//
// all returning a Result whose Checksum must agree with the sequential
// run, which is how the protocol stack is validated end to end.
package apps

import (
	"fmt"
	"math"

	"repro/internal/dsm"
	"repro/internal/sim"
)

// Result summarizes one application run.
type Result struct {
	// Checksum is an implementation-independent digest of the computed
	// output, compared against the sequential run.
	Checksum float64
	// Time is the virtual execution time (max over nodes).
	Time sim.Time
	// Messages and Bytes count interconnect traffic during the run
	// (zero for sequential runs) — the raw material of Table 2.
	Messages int64
	Bytes    int64
	// Protocol-metadata footprint of DSM-backed runs (TreadMarks and
	// OpenMP implementations; zero for sequential and MPI runs):
	// IntervalsRetired counts interval records reclaimed by the
	// barrier-epoch garbage collector, PeakIntervalChain is the longest
	// per-creator interval list retained on any node, and
	// PeakProtoBytes is the largest metadata footprint (records + diffs
	// + twins) any node ever held.
	IntervalsRetired  int64
	PeakIntervalChain int64
	PeakProtoBytes    int64
	// GC accounting of DSM-backed runs: barrier/fork synchronization
	// episodes the collector examined, collection epochs it actually ran
	// there (equal unless adaptive triggering via dsm.Config.GCMinRetire
	// is active), acquire epochs announced by the lock-manager consensus
	// (dsm.Config.GCPressure), and the per-page validate-vs-flush purge
	// outcomes (dsm.Config.GCPolicy).
	GCEpisodes       int64
	GCEpochs         int64
	GCAcqEpochs      int64
	GCPagesValidated int64
	GCPagesFlushed   int64
	// Traffic split by protocol cost category (dsm.TrafficBreakdown):
	// page service (page and diff fetches), synchronization (locks,
	// barriers, semaphores, condition variables, fork/join, flush), and
	// GC consensus pushes. The three pairs sum to Messages/Bytes on
	// DSM-backed runs and are zero elsewhere; the scaling-wall table uses
	// them to name the binding cost at each machine size.
	PageMsgs, PageBytes int64
	SyncMsgs, SyncBytes int64
	GCMsgs, GCBytes     int64
	// Frames counts the datagrams that actually crossed the wire: with v2
	// frame coalescing several logical messages share one datagram, so
	// Messages - Frames is the number of per-message network headers the
	// coalescing saved (Frames == Messages under Config.WireV1).
	Frames int64
}

// ProtoSource reports DSM protocol-metadata counters and the traffic
// category split; dsm.System and core.Program both implement it.
type ProtoSource interface {
	ProtoSummary() (retired, peakChain, peakBytes int64)
	GCSummary() dsm.GCStats
	TrafficBreakdown() dsm.TrafficBreakdown
	Frames() int64
}

// DSMResult assembles the Result of a DSM-backed run (TreadMarks or
// OpenMP), attaching the protocol-metadata counters from the run's
// system — the single assembly point for every tmk/omp implementation.
func DSMResult(checksum float64, t sim.Time, msgs, bytes int64, src ProtoSource) Result {
	r := Result{Checksum: checksum, Time: t, Messages: msgs, Bytes: bytes}
	r.IntervalsRetired, r.PeakIntervalChain, r.PeakProtoBytes = src.ProtoSummary()
	g := src.GCSummary()
	r.GCEpisodes, r.GCEpochs, r.GCAcqEpochs = g.Episodes, g.Epochs, g.AcqEpochs
	r.GCPagesValidated, r.GCPagesFlushed = g.PagesValidated, g.PagesFlushed
	tb := src.TrafficBreakdown()
	r.PageMsgs, r.PageBytes = tb.PageMsgs, tb.PageBytes
	r.SyncMsgs, r.SyncBytes = tb.SyncMsgs, tb.SyncBytes
	r.GCMsgs, r.GCBytes = tb.GCMsgs, tb.GCBytes
	r.Frames = src.Frames()
	return r
}

// Runtime is what a parallel runtime exposes for result assembly;
// core.Program implements it for every backend.
type Runtime interface {
	ProtoSource
	Elapsed() sim.Time
	Traffic() (messages, bytes int64)
}

// RuntimeResult assembles the Result of an OpenMP run from its Program:
// the single assembly point for every app's RunOMPOn, backend-neutral
// (an SMP-backed program reports zero traffic and zero metadata).
func RuntimeResult(checksum float64, rt Runtime) Result {
	msgs, bytes := rt.Traffic()
	return DSMResult(checksum, rt.Elapsed(), msgs, bytes, rt)
}

// Close reports whether two checksums agree to within a relative
// tolerance (parallel summation reorders floating-point reductions).
func Close(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d == 0
	}
	return d/m <= rel
}

// CheckClose returns an error when two checksums disagree beyond rel.
func CheckClose(name string, got, want, rel float64) error {
	if !Close(got, want, rel) {
		return fmt.Errorf("%s: checksum %v differs from sequential %v (rel tol %g)", name, got, want, rel)
	}
	return nil
}
