package tsp

import (
	"repro/internal/apps"
	"repro/internal/dsm"
)

// tmkLock is the hand-picked lock id of the TreadMarks version (any id
// works; the protocol places its manager at id mod procs).
const tmkLock = 7

// RunTmk executes the hand-coded TreadMarks version: identical worker
// structure, written against Tmk_lock_acquire/Tmk_lock_release directly.
func RunTmk(p Params, procs int) (apps.Result, error) {
	sys := dsm.New(dsm.Config{
		Procs: procs, Platform: p.Platform,
		DisableGC: p.DisableGC, GCPressure: p.GCPressure,
		GCPolicy: dsm.MustParseGCPolicy(p.GCPolicy),
	})
	defer sys.Close()
	s := newSharedTSP(p, sys)
	d := Cities(p)
	minInc := minIncident(d)

	sys.Register("bb", func(nd *dsm.Node, _ []byte) {
		nd.Compute(float64(p.NCities * p.NCities * 12))
		s.worker(nd, tmkLock, procs, d, minInc)
	})

	var best float64
	err := sys.Run(func(nd *dsm.Node) {
		nd.Compute(float64(p.NCities * p.NCities * 12))
		s.initShared(nd, d, minInc)
		nd.RunParallel("bb", nil)
		best = nd.ReadF64(s.bestA)
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := sys.Switch().Stats().Snapshot()
	return apps.DSMResult(best, sys.MaxClock(), msgs, bytes, sys), nil
}
