package tsp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dsm"
)

// Shared-memory layout used by both the OpenMP and TreadMarks versions:
// the pool of partially evaluated tours, the priority queue (binary heap
// of (bound, slot) pairs), the stack of unused pool slots, the current
// shortest path, and the waiting-thread counter — exactly the paper's
// inventory of TSP's major data structures. Every structure is protected
// by the single critical section / lock named "tsp". The accessors take
// a core.Worker, which *dsm.Node and the OpenMP thread context's
// Worker() both satisfy, so one implementation serves every backend.

type sharedTSP struct {
	p        Params
	n        int
	slotsA   dsm.Addr // pool: PoolSlots × slotBytes
	heapA    dsm.Addr // (bound f64, slot i64) pairs
	qSizeA   dsm.Addr // heap size
	freeA    dsm.Addr // free slot stack
	freeTopA dsm.Addr // free stack depth
	bestA    dsm.Addr // current shortest complete tour
	nwaitA   dsm.Addr // threads waiting for work
	slotLen  int
}

// mallocer abstracts dsm.System/core.Program shared allocation.
type mallocer interface {
	MallocPage(size int) dsm.Addr
}

func newSharedTSP(p Params, m mallocer) *sharedTSP {
	n := p.NCities
	s := &sharedTSP{p: p, n: n}
	s.slotLen = 8 + 8 + 8 + 8 + ((n + 7) &^ 7) // pathLen, visited, length, bound, path bytes
	s.slotsA = m.MallocPage(p.PoolSlots * s.slotLen)
	s.heapA = m.MallocPage(16 * p.PoolSlots)
	s.freeA = m.MallocPage(8 * p.PoolSlots)
	// The four scalars live on one page: all are accessed only under the
	// "tsp" critical section, so one fault refreshes them together.
	meta := m.MallocPage(32)
	s.qSizeA = meta
	s.freeTopA = meta + 8
	s.bestA = meta + 16
	s.nwaitA = meta + 24
	return s
}

// initShared is run once by the master before the workers fork.
func (s *sharedTSP) initShared(nd core.Worker, d [][]float64, minInc []float64) {
	free := make([]int64, s.p.PoolSlots)
	for i := range free {
		free[i] = int64(i)
	}
	// Store the free stack via bulk writes (it is just ascending slots).
	buf := make([]byte, 8*len(free))
	for i, v := range free {
		putI64(buf[8*i:], v)
	}
	nd.WriteBytes(s.freeA, buf)
	nd.WriteI64(s.freeTopA, int64(len(free)))
	nd.WriteF64(s.bestA, math.Inf(1))
	nd.WriteI64(s.nwaitA, 0)
	nd.WriteI64(s.qSizeA, 0)

	root := &Tour{Path: []int8{0}, Visited: 1, Length: 0}
	root.Bound = bound(0, 1, minInc, s.n)
	s.pushLocked(nd, root)
}

// allocSlot pops a pool slot from the free stack (caller holds the lock).
func (s *sharedTSP) allocSlot(nd core.Worker) int64 {
	top := nd.ReadI64(s.freeTopA)
	if top == 0 {
		panic(fmt.Sprintf("tsp: tour pool exhausted (%d slots); raise Params.PoolSlots", s.p.PoolSlots))
	}
	slot := nd.ReadI64(s.freeA + dsm.Addr(8*(top-1)))
	nd.WriteI64(s.freeTopA, top-1)
	return slot
}

// freeSlot returns a slot to the stack (caller holds the lock).
func (s *sharedTSP) freeSlot(nd core.Worker, slot int64) {
	top := nd.ReadI64(s.freeTopA)
	nd.WriteI64(s.freeA+dsm.Addr(8*top), slot)
	nd.WriteI64(s.freeTopA, top+1)
}

// writeTour/readTour move a tour between private memory and its pool slot.
func (s *sharedTSP) writeTour(nd core.Worker, slot int64, t *Tour) {
	base := s.slotsA + dsm.Addr(int(slot)*s.slotLen)
	nd.WriteI64(base, int64(len(t.Path)))
	nd.WriteI64(base+8, int64(t.Visited))
	nd.WriteF64(base+16, t.Length)
	nd.WriteF64(base+24, t.Bound)
	pb := make([]byte, len(t.Path))
	for i, c := range t.Path {
		pb[i] = byte(c)
	}
	nd.WriteBytes(base+32, pb)
}

func (s *sharedTSP) readTour(nd core.Worker, slot int64) *Tour {
	base := s.slotsA + dsm.Addr(int(slot)*s.slotLen)
	plen := int(nd.ReadI64(base))
	t := &Tour{
		Visited: uint32(nd.ReadI64(base + 8)),
		Length:  nd.ReadF64(base + 16),
		Bound:   nd.ReadF64(base + 24),
	}
	pb := make([]byte, plen)
	nd.ReadBytes(base+32, pb)
	t.Path = make([]int8, plen)
	for i, b := range pb {
		t.Path[i] = int8(b)
	}
	return t
}

// pushLocked inserts a tour into the shared priority queue (lock held).
func (s *sharedTSP) pushLocked(nd core.Worker, t *Tour) {
	slot := s.allocSlot(nd)
	s.writeTour(nd, slot, t)
	size := nd.ReadI64(s.qSizeA)
	i := size
	nd.WriteF64(s.heapA+dsm.Addr(16*i), t.Bound)
	nd.WriteI64(s.heapA+dsm.Addr(16*i+8), slot)
	for i > 0 {
		parent := (i - 1) / 2
		pb := nd.ReadF64(s.heapA + dsm.Addr(16*parent))
		if pb <= t.Bound {
			break
		}
		ps := nd.ReadI64(s.heapA + dsm.Addr(16*parent+8))
		nd.WriteF64(s.heapA+dsm.Addr(16*i), pb)
		nd.WriteI64(s.heapA+dsm.Addr(16*i+8), ps)
		nd.WriteF64(s.heapA+dsm.Addr(16*parent), t.Bound)
		nd.WriteI64(s.heapA+dsm.Addr(16*parent+8), slot)
		i = parent
	}
	nd.WriteI64(s.qSizeA, size+1)
	nd.Compute(20 * math.Log2(float64(size+2)))
}

// popLocked removes and returns the most promising tour (lock held), or
// nil when the queue is empty. The pool slot is freed immediately (the
// tour is copied to private memory).
func (s *sharedTSP) popLocked(nd core.Worker) *Tour {
	size := nd.ReadI64(s.qSizeA)
	if size == 0 {
		return nil
	}
	slot := nd.ReadI64(s.heapA + 8)
	t := s.readTour(nd, slot)
	s.freeSlot(nd, slot)
	size--
	nd.WriteI64(s.qSizeA, size)
	if size > 0 {
		lb := nd.ReadF64(s.heapA + dsm.Addr(16*size))
		ls := nd.ReadI64(s.heapA + dsm.Addr(16*size+8))
		i := int64(0)
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			sb := lb
			if l < size {
				if b := nd.ReadF64(s.heapA + dsm.Addr(16*l)); b < sb {
					smallest, sb = l, b
				}
			}
			if r < size {
				if b := nd.ReadF64(s.heapA + dsm.Addr(16*r)); b < sb {
					smallest = r
				}
			}
			if smallest == i {
				break
			}
			cb := nd.ReadF64(s.heapA + dsm.Addr(16*smallest))
			cs := nd.ReadI64(s.heapA + dsm.Addr(16*smallest+8))
			nd.WriteF64(s.heapA+dsm.Addr(16*i), cb)
			nd.WriteI64(s.heapA+dsm.Addr(16*i+8), cs)
			i = smallest
		}
		nd.WriteF64(s.heapA+dsm.Addr(16*i), lb)
		nd.WriteI64(s.heapA+dsm.Addr(16*i+8), ls)
	}
	nd.Compute(20 * math.Log2(float64(size+2)))
	return t
}

// worker is the body each thread runs, structured exactly as the paper
// describes: one critical section around dequeue-extend-enqueue, leaf
// solving outside the lock, and a shared nwait counter for termination.
// lockID is the DSM lock implementing the "tsp" critical section.
func (s *sharedTSP) worker(nd core.Worker, lockID int, procs int, d [][]float64, minInc []float64) {
	n := s.n
	waiting := false
	for {
		var task *Tour
		var localBest float64
		done := false

		nd.Acquire(lockID)
		for {
			localBest = nd.ReadF64(s.bestA)
			t := s.popLocked(nd)
			if t == nil {
				break
			}
			if t.Bound >= localBest {
				continue // pruned: a better tour completed since enqueue
			}
			task = t
			break
		}
		if task != nil {
			if waiting {
				waiting = false
				nd.WriteI64(s.nwaitA, nd.ReadI64(s.nwaitA)-1)
			}
			if n-len(task.Path) > s.p.CutoffRemain {
				// Extend by one city and enqueue, inside the same
				// critical section (the paper's TSP structure).
				for _, child := range extend(task, d, minInc, n) {
					nd.Compute(float64(n) * 4)
					if child.Bound < localBest {
						s.pushLocked(nd, child)
					}
				}
				task = nil // nothing to do outside the lock
			}
		} else {
			if !waiting {
				waiting = true
				nd.WriteI64(s.nwaitA, nd.ReadI64(s.nwaitA)+1)
			}
			if nd.ReadI64(s.nwaitA) == int64(procs) {
				done = true
			}
		}
		nd.Release(lockID)

		switch {
		case task != nil:
			improved, nodes := solveLeaf(task, d, localBest, n)
			nd.Compute(leafNodeFlops * float64(nodes))
			if improved < localBest {
				nd.Acquire(lockID)
				if improved < nd.ReadF64(s.bestA) {
					nd.WriteF64(s.bestA, improved)
				}
				nd.Release(lockID)
			}
		case done:
			return
		default:
			// Idle: yield before re-checking the queue. Busy-wait polls
			// charge no virtual time themselves (see Node.Poll); the
			// idle thread's clock advances when the next lock grant or
			// write notice reaches it.
			nd.Poll()
		}
	}
}
