package tsp

import (
	"encoding/binary"
	"math"
)

func putI64(b []byte, v int64) { binary.LittleEndian.PutUint64(b, uint64(v)) }

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func takeF64(b []byte) (float64, []byte) {
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:]
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func takeU32(b []byte) (uint32, []byte) {
	return binary.LittleEndian.Uint32(b), b[4:]
}
