package tsp

import (
	"repro/internal/apps"
	"repro/internal/core"
)

// tspCritical names the single critical section protecting every shared
// TSP structure (pool, queue, free stack, best, nwait).
const tspCritical = "tsp"

// RunOMP executes the OpenMP version on the NOW (TreadMarks) backend.
func RunOMP(p Params, procs int) (apps.Result, error) {
	return RunOMPOn(p, procs, core.BackendNOW)
}

// RunOMPOn executes the OpenMP version on the given core backend — the
// source is backend-neutral: a parallel region of workers
// synchronized by critical sections only (Table 1).
func RunOMPOn(p Params, procs int, backend core.BackendKind) (apps.Result, error) {
	prog := core.NewProgram(core.Config{
		Threads: procs, Platform: p.Platform, Backend: backend,
		DisableGC: p.DisableGC, GCPressure: p.GCPressure, GCPolicy: p.GCPolicy,
	})
	defer prog.Close()
	s := newSharedTSP(p, prog)
	d := Cities(p)
	minInc := minIncident(d)

	prog.RegisterRegion("bb", func(tc *core.TC) {
		// Each thread recomputes the (read-only) distance matrix
		// privately, as the original program holds it in per-process
		// memory after startup.
		tc.Compute(float64(p.NCities * p.NCities * 12))
		s.worker(tc.Worker(), core.CriticalLockID(tspCritical), procs, d, minInc)
	})

	var best float64
	err := prog.Run(func(m *core.MC) {
		m.Compute(float64(p.NCities * p.NCities * 12))
		s.initShared(m.Worker(), d, minInc)
		m.Parallel("bb", core.NoArgs())
		best = m.ReadF64(s.bestA)
	})
	if err != nil {
		return apps.Result{}, err
	}
	return apps.RuntimeResult(best, prog), nil
}
