package tsp

import (
	"repro/internal/apps"
	"repro/internal/core"
)

// tspCritical names the single critical section protecting every shared
// TSP structure (pool, queue, free stack, best, nwait).
const tspCritical = "tsp"

// RunOMP executes the OpenMP version: a parallel region of workers
// synchronized by critical sections only (Table 1).
func RunOMP(p Params, procs int) (apps.Result, error) {
	prog := core.NewProgram(core.Config{Threads: procs, Platform: p.Platform})
	s := newSharedTSP(p, prog.System())
	d := Cities(p)
	minInc := minIncident(d)

	prog.RegisterRegion("bb", func(tc *core.TC) {
		// Each thread recomputes the (read-only) distance matrix
		// privately, as the original program holds it in per-process
		// memory after startup.
		tc.Compute(float64(p.NCities * p.NCities * 12))
		s.worker(tc.Node(), core.CriticalLockID(tspCritical), procs, d, minInc)
	})

	var best float64
	err := prog.Run(func(m *core.MC) {
		m.Compute(float64(p.NCities * p.NCities * 12))
		s.initShared(m.Node(), d, minInc)
		m.Parallel("bb", core.NoArgs())
		best = m.Node().ReadF64(s.bestA)
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := prog.Traffic()
	return apps.DSMResult(best, prog.Elapsed(), msgs, bytes, prog), nil
}
