package tsp

import (
	"container/heap"
	"math"
	"sync"

	"repro/internal/apps"
	"repro/internal/mpi"
)

// Message tags of the MPI version.
const (
	tagWork = 1 // coordinator → worker: a tour to process (or "done")
	tagReq  = 2 // worker → coordinator: result of last task + new tours
)

// RunMPI executes the message-passing version as a coordinator/worker
// program: rank 0 owns the priority queue, the pool, and the best bound;
// workers request tours, solve leaves locally, and return extensions and
// improved bounds with their next request. (With one process the program
// degenerates to the sequential solver — there are no workers to feed.)
func RunMPI(p Params, procs int) (apps.Result, error) {
	if procs == 1 {
		// Coordinator-worker needs at least one worker; a one-process
		// MPI job is just the sequential program.
		res := RunSeq(p)
		return res, nil
	}
	world := mpi.New(mpi.Config{Procs: procs, Platform: p.Platform})
	n := p.NCities

	var mu sync.Mutex
	var best float64

	err := world.Run(func(r *mpi.Rank) {
		d := Cities(p)
		minInc := minIncident(d)
		r.Compute(float64(n * n * 12))

		if r.ID() == 0 {
			coordinator(r, p, d, minInc, &mu, &best)
			return
		}
		workerMPI(r, p, d, minInc)
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := world.Switch().Stats().Snapshot()
	return apps.Result{Checksum: best, Time: world.MaxClock(), Messages: msgs, Bytes: bytes}, nil
}

// encodeTour/decodeTour move tours across rank boundaries.
func encodeTour(t *Tour) []byte {
	b := make([]byte, 0, 24+len(t.Path))
	b = appendF64(b, t.Length)
	b = appendF64(b, t.Bound)
	b = appendU32(b, t.Visited)
	b = append(b, byte(len(t.Path)))
	for _, c := range t.Path {
		b = append(b, byte(c))
	}
	return b
}

func decodeTour(b []byte) (*Tour, []byte) {
	t := &Tour{}
	t.Length, b = takeF64(b)
	t.Bound, b = takeF64(b)
	t.Visited, b = takeU32(b)
	plen := int(b[0])
	b = b[1:]
	t.Path = make([]int8, plen)
	for i := 0; i < plen; i++ {
		t.Path[i] = int8(b[i])
	}
	return t, b[plen:]
}

// coordinator serves tours from the shared queue and merges results.
func coordinator(r *mpi.Rank, p Params, d [][]float64, minInc []float64, mu *sync.Mutex, bestOut *float64) {
	n := p.NCities
	root := &Tour{Path: []int8{0}, Visited: 1, Length: 0}
	root.Bound = bound(0, 1, minInc, n)
	q := pq{root}
	heap.Init(&q)
	best := math.Inf(1)
	outstanding := 0
	var parked []int
	doneSent := 0

	serveOne := func(to int) bool {
		for q.Len() > 0 {
			t := heap.Pop(&q).(*Tour)
			r.Compute(20 * math.Log2(float64(q.Len()+2)))
			if t.Bound >= best {
				continue
			}
			msg := appendF64(nil, best)
			msg = append(msg, 1) // has work
			msg = append(msg, encodeTour(t)...)
			r.Send(to, tagWork, msg)
			outstanding++
			return true
		}
		return false
	}

	for doneSent < r.Procs()-1 {
		from, req := r.RecvFrom(mpi.AnySource, tagReq)
		// Request: [first byte flag][candidate best][k tours...]
		first := req[0] == 1
		req = req[1:]
		var cand float64
		cand, req = takeF64(req)
		if cand < best {
			best = cand
		}
		if !first {
			outstanding--
		}
		var nt uint32
		nt, req = takeU32(req)
		for i := uint32(0); i < nt; i++ {
			var t *Tour
			t, req = decodeTour(req)
			if t.Bound < best {
				heap.Push(&q, t)
				r.Compute(20 * math.Log2(float64(q.Len()+2)))
			}
		}

		// Serve this worker, then anyone parked (new work may have come).
		if !serveOne(from) {
			parked = append(parked, from)
		}
		for len(parked) > 0 && q.Len() > 0 {
			w := parked[0]
			if !serveOne(w) {
				break
			}
			parked = parked[1:]
		}
		// Termination: nothing queued, nothing in flight.
		if q.Len() == 0 && outstanding == 0 {
			for _, w := range parked {
				r.Send(w, tagWork, append(appendF64(nil, best), 0))
				doneSent++
			}
			parked = nil
			// Remaining workers will check in once more; answer done.
			for doneSent < r.Procs()-1 {
				from, req := r.RecvFrom(mpi.AnySource, tagReq)
				c, _ := takeF64(req[1:])
				if c < best {
					best = c
				}
				r.Send(from, tagWork, append(appendF64(nil, best), 0))
				doneSent++
			}
		}
	}
	mu.Lock()
	*bestOut = best
	mu.Unlock()
}

// workerMPI pulls tours, extends or leaf-solves them, and reports back.
func workerMPI(r *mpi.Rank, p Params, d [][]float64, minInc []float64) {
	n := p.NCities
	req := []byte{1} // first request
	req = appendF64(req, math.Inf(1))
	req = appendU32(req, 0)
	for {
		r.Send(0, tagReq, req)
		rep := r.Recv(0, tagWork)
		curBest, rest := takeF64(rep)
		if rest[0] == 0 {
			return // done
		}
		t, _ := decodeTour(rest[1:])

		cand := math.Inf(1)
		var children []*Tour
		if n-len(t.Path) <= p.CutoffRemain {
			improved, nodes := solveLeaf(t, d, curBest, n)
			r.Compute(leafNodeFlops * float64(nodes))
			if improved < curBest {
				cand = improved
			}
		} else {
			for _, child := range extend(t, d, minInc, n) {
				r.Compute(float64(n) * 4)
				if child.Bound < curBest {
					children = append(children, child)
				}
			}
		}

		req = []byte{0}
		req = appendF64(req, cand)
		req = appendU32(req, uint32(len(children)))
		for _, c := range children {
			req = append(req, encodeTour(c)...)
		}
	}
}
