package tsp

import (
	"math"
	"testing"

	"repro/internal/apps"
)

// bruteForce finds the exact optimum by full enumeration (test oracle).
func bruteForce(d [][]float64) float64 {
	n := len(d)
	best := math.Inf(1)
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	var rec func(last int, length float64)
	rec = func(last int, length float64) {
		if len(perm) == n-1 {
			if t := length + d[last][0]; t < best {
				best = t
			}
			return
		}
		for c := 1; c < n; c++ {
			if visited[c] {
				continue
			}
			visited[c] = true
			perm = append(perm, c)
			rec(c, length+d[last][c])
			perm = perm[:len(perm)-1]
			visited[c] = false
		}
	}
	rec(0, 0)
	return best
}

func TestBoundIsAdmissible(t *testing.T) {
	p := Small()
	d := Cities(p)
	minInc := minIncident(d)
	opt := bruteForce(d)
	root := &Tour{Path: []int8{0}, Visited: 1}
	if b := bound(0, 1, minInc, p.NCities); b > opt+1e-9 {
		t.Fatalf("root bound %v exceeds optimum %v: not admissible", b, opt)
	}
	for _, c := range extend(root, d, minInc, p.NCities) {
		if c.Bound > opt+c.Length { // loose sanity: bound can't wildly exceed
			continue
		}
	}
}

func TestSeqFindsOptimum(t *testing.T) {
	p := Small()
	want := bruteForce(Cities(p))
	got := RunSeq(p)
	if math.Abs(got.Checksum-want) > 1e-9 {
		t.Fatalf("branch and bound found %v, brute force %v", got.Checksum, want)
	}
}

func TestSeqCutoffInvariance(t *testing.T) {
	// The exhaustive-leaf threshold must not change the optimum.
	base := Small()
	for _, cutoff := range []int{3, 5, 8} {
		p := base
		p.CutoffRemain = cutoff
		if got := RunSeq(p); math.Abs(got.Checksum-RunSeq(base).Checksum) > 1e-12 {
			t.Errorf("cutoff %d changed the optimum: %v", cutoff, got.Checksum)
		}
	}
}

func TestOMPFindsOptimum(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4} {
		got, err := RunOMP(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("tsp/omp", got.Checksum, want, 1e-12); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestTmkFindsOptimum(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{2, 3, 8} {
		got, err := RunTmk(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("tsp/tmk", got.Checksum, want, 1e-12); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestMPIFindsOptimum(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4} {
		got, err := RunMPI(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("tsp/mpi", got.Checksum, want, 1e-12); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestLargerInstanceAgreesAcrossImpls(t *testing.T) {
	if testing.Short() {
		t.Skip("larger instance")
	}
	p := Params{NCities: 11, CutoffRemain: 7, Seed: 99, PoolSlots: 1 << 13}
	want := RunSeq(p).Checksum
	o, err := RunOMP(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunMPI(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.CheckClose("tsp/omp-11", o.Checksum, want, 1e-12); err != nil {
		t.Error(err)
	}
	if err := apps.CheckClose("tsp/mpi-11", m.Checksum, want, 1e-12); err != nil {
		t.Error(err)
	}
}

func TestDistanceMatrixSymmetricMetric(t *testing.T) {
	d := Cities(Small())
	for i := range d {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d] = %v", i, i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric distance (%d,%d)", i, j)
			}
		}
	}
}
