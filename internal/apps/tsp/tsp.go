// Package tsp reproduces the paper's TSP application: "TSP solves the
// traveling salesman problem using a branch-and-bound algorithm. The major
// data structures are a pool of partially evaluated tours, a priority
// queue containing pointers to tours in the pool, a stack of pointers to
// unused tour elements in the pool, and the current shortest path. A
// process repeatedly dequeues the most promising path from the priority
// queue, extends it by one city and enqueues the new path, or takes the
// dequeued path and tries all permutations of the remaining nodes."
//
// Per Table 1 the OpenMP version uses a parallel region with critical
// sections only: "Because of the use of [the] priority queue, the dequeue
// and the following enqueue operations by the same processor are actually
// carried out within one critical section. Therefore there is no need to
// use condition variables for TSP."
package tsp

import (
	"container/heap"
	"math"

	"repro/internal/apps"
	"repro/internal/sim"
)

// Params configures one TSP run.
type Params struct {
	// NCities is the problem size.
	NCities int
	// CutoffRemain: a dequeued tour with at most this many unvisited
	// cities is solved exhaustively (the "tries all permutations" leaf).
	CutoffRemain int
	// Seed drives the deterministic city coordinates.
	Seed uint64
	// PoolSlots bounds the tour pool (shared-memory versions).
	PoolSlots int
	// Platform overrides the cost model.
	Platform *sim.Platform
	// DisableGC turns off the DSM's metadata collection in the DSM-backed
	// implementations; GCPressure and GCPolicy set the acquire-epoch
	// trigger and the per-page validate-vs-flush purge policy (see
	// dsm.Config). TSP synchronizes through critical sections only, so
	// between region boundaries only the acquire source collects for it.
	DisableGC  bool
	GCPressure int
	GCPolicy   string
}

// Default returns the paper-scale configuration. The cutoff leaves most
// of the search inside the exhaustive leaf solver, so tasks are coarse:
// the paper's TSP scales because processes spend their time permuting
// tours, not contending for the queue.
func Default() Params {
	return Params{NCities: 14, CutoffRemain: 11, Seed: 1234, PoolSlots: 1 << 15}
}

// Small returns a test-scale configuration. The cutoff keeps leaf solves
// substantial relative to queue traffic, as in the full configuration.
func Small() Params {
	return Params{NCities: 11, CutoffRemain: 8, Seed: 1234, PoolSlots: 1 << 12}
}

// Cities builds the deterministic Euclidean distance matrix.
func Cities(p Params) [][]float64 {
	rng := sim.NewRNG(p.Seed)
	n := p.NCities
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = 100 * rng.Float64()
		ys[i] = 100 * rng.Float64()
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			d[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	return d
}

// minIncident returns, per city, the smallest incident edge weight: the
// admissible remaining-cost bound is the sum over unvisited cities of
// their minimum incident edge (each unvisited city must still be entered
// exactly once).
func minIncident(d [][]float64) []float64 {
	n := len(d)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		m := math.Inf(1)
		for j := 0; j < n; j++ {
			if i != j && d[i][j] < m {
				m = d[i][j]
			}
		}
		out[i] = m
	}
	return out
}

// Tour is a partially evaluated path starting at city 0.
type Tour struct {
	Path    []int8 // visited cities in order; Path[0] == 0
	Visited uint32 // bitmask
	Length  float64
	Bound   float64 // admissible lower bound on any completion
}

// bound computes Length plus the sum of minimum incident edges of the
// unvisited cities.
func bound(length float64, visited uint32, minInc []float64, n int) float64 {
	b := length
	for c := 0; c < n; c++ {
		if visited&(1<<uint(c)) == 0 {
			b += minInc[c]
		}
	}
	return b
}

// extend generates the children of t (one new city appended each).
func extend(t *Tour, d [][]float64, minInc []float64, n int) []*Tour {
	last := int(t.Path[len(t.Path)-1])
	var out []*Tour
	for c := 0; c < n; c++ {
		if t.Visited&(1<<uint(c)) != 0 {
			continue
		}
		nl := t.Length + d[last][c]
		child := &Tour{
			Path:    append(append(make([]int8, 0, len(t.Path)+1), t.Path...), int8(c)),
			Visited: t.Visited | 1<<uint(c),
			Length:  nl,
		}
		child.Bound = bound(nl, child.Visited, minInc, n)
		out = append(out, child)
	}
	return out
}

// solveLeaf exhaustively completes t with depth-first search, pruning
// against best. It returns the best completion found (or best unchanged)
// and the number of search nodes expanded (for cost accounting).
func solveLeaf(t *Tour, d [][]float64, best float64, n int) (float64, int64) {
	var nodes int64
	last := int(t.Path[len(t.Path)-1])
	var dfs func(last int, visited uint32, length float64, left int)
	dfs = func(last int, visited uint32, length float64, left int) {
		nodes++
		if length >= best {
			return
		}
		if left == 0 {
			total := length + d[last][0]
			if total < best {
				best = total
			}
			return
		}
		for c := 0; c < n; c++ {
			if visited&(1<<uint(c)) != 0 {
				continue
			}
			dfs(c, visited|1<<uint(c), length+d[last][c], left-1)
		}
	}
	dfs(last, t.Visited, t.Length, n-len(t.Path))
	return best, nodes
}

// leafNodeFlops is the virtual cost per DFS node expanded.
const leafNodeFlops = 10.0

// pq is a min-heap of tours by bound (sequential version).
type pq []*Tour

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].Bound < q[j].Bound }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(*Tour)) }
func (q *pq) Pop() interface{} {
	old := *q
	x := old[len(old)-1]
	*q = old[:len(old)-1]
	return x
}

// RunSeq executes the sequential branch and bound.
func RunSeq(p Params) apps.Result {
	m := sim.NewMeter(p.Platform)
	d := Cities(p)
	minInc := minIncident(d)
	n := p.NCities
	m.Compute(float64(n * n * 12))

	root := &Tour{Path: []int8{0}, Visited: 1, Length: 0}
	root.Bound = bound(0, 1, minInc, n)
	q := pq{root}
	best := math.Inf(1)
	for q.Len() > 0 {
		t := heap.Pop(&q).(*Tour)
		m.Compute(20 * math.Log2(float64(q.Len()+2)))
		if t.Bound >= best {
			continue
		}
		if n-len(t.Path) <= p.CutoffRemain {
			var nodes int64
			best, nodes = solveLeaf(t, d, best, n)
			m.Compute(leafNodeFlops * float64(nodes))
			continue
		}
		for _, child := range extend(t, d, minInc, n) {
			m.Compute(float64(n) * 4)
			if child.Bound < best {
				heap.Push(&q, child)
				m.Compute(20 * math.Log2(float64(q.Len()+2)))
			}
		}
	}
	return apps.Result{Checksum: best, Time: m.Elapsed()}
}
