// Package qsort reproduces the paper's QSORT application: "Quicksort
// sorts an array of integers by recursively partitioning the array into
// subarrays and resorting to bubblesort when the subarray is sufficiently
// short. Quicksort employs a task queue wherein each task element is a
// pointer to a subarray. A thread repeatedly removes a subarray from the
// task queue, subdivides it, and puts generated tasks back to the task
// queue. The OpenMP EnQueue and DeQueue operations are implemented with
// critical sections and a condition variable as shown in the task queue
// example in Figure 4."
package qsort

import (
	"repro/internal/apps"
	"repro/internal/sim"
)

// Params configures one QSORT run.
type Params struct {
	// N is the number of int32 keys.
	N int
	// BubbleThreshold: subarrays at most this long are bubble-sorted.
	BubbleThreshold int
	// Seed drives the deterministic input permutation.
	Seed uint64
	// QueueCap bounds the shared task queue.
	QueueCap int
	// Platform overrides the cost model.
	Platform *sim.Platform
	// DisableGC turns off the DSM's metadata collection in the DSM-backed
	// implementations; GCPressure and GCPolicy set the acquire-epoch
	// trigger and the per-page validate-vs-flush purge policy (see
	// dsm.Config). QSORT synchronizes through critical sections and a
	// condition variable, so between region boundaries only the acquire
	// source collects for it.
	DisableGC  bool
	GCPressure int
	GCPolicy   string
	// WireV1 selects the pre-batching DSM wire protocol (see
	// dsm.Config.WireV1); the bench-wire comparison's control arm.
	WireV1 bool
}

// Default returns the paper-scale configuration (256K keys, bubble
// threshold 1024).
func Default() Params {
	return Params{N: 256 * 1024, BubbleThreshold: 1024, Seed: 424242, QueueCap: 1 << 13}
}

// Small returns a test-scale configuration.
func Small() Params {
	return Params{N: 8 * 1024, BubbleThreshold: 128, Seed: 424242, QueueCap: 1 << 12}
}

// Input builds the deterministic unsorted key array.
func Input(p Params) []int32 {
	rng := sim.NewRNG(p.Seed)
	a := make([]int32, p.N)
	for i := range a {
		a[i] = int32(rng.Uint64())
	}
	return a
}

// partition performs Hoare-style partitioning around the middle element
// and returns the split point and the comparison count (for virtual-time
// accounting). Both returned halves are strictly smaller than the input,
// so the task recursion always terminates.
func partition(a []int32) (split int, ops int) {
	pivot := a[len(a)/2]
	i, j := -1, len(a)
	for {
		for {
			i++
			ops++
			if a[i] >= pivot {
				break
			}
		}
		for {
			j--
			ops++
			if a[j] <= pivot {
				break
			}
		}
		if i >= j {
			return j + 1, ops
		}
		a[i], a[j] = a[j], a[i]
	}
}

// bubbleSort sorts in place and returns the comparison count — the
// paper-period leaf sort that gives QSORT its name.
func bubbleSort(a []int32) (ops int) {
	n := len(a)
	for i := 0; i < n-1; i++ {
		swapped := false
		for j := 0; j < n-1-i; j++ {
			ops++
			if a[j] > a[j+1] {
				a[j], a[j+1] = a[j+1], a[j]
				swapped = true
			}
		}
		if !swapped {
			break
		}
	}
	return ops
}

// flopsPerOp is the virtual cost per comparison/swap step.
const flopsPerOp = 3.0

// Digest reduces a sorted array to an order-sensitive checksum.
func Digest(a []int32) float64 {
	var s float64
	for i, v := range a {
		s += float64(v) * float64(i%97+1) / float64(len(a))
	}
	return s
}

// Sorted reports whether a is non-decreasing.
func Sorted(a []int32) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}

// sortRange sorts a[lo:hi] with the quicksort/bubble recursion, charging
// comparisons to charge. Used by the sequential and MPI leaf paths.
func sortRange(a []int32, lo, hi, threshold int, charge func(ops int)) {
	if hi-lo <= threshold {
		charge(bubbleSort(a[lo:hi]))
		return
	}
	split, ops := partition(a[lo:hi])
	charge(ops)
	sortRange(a, lo, lo+split, threshold, charge)
	sortRange(a, lo+split, hi, threshold, charge)
}

// RunSeq executes the sequential reference sort.
func RunSeq(p Params) apps.Result {
	m := sim.NewMeter(p.Platform)
	a := Input(p)
	m.Compute(2 * float64(p.N))
	sortRange(a, 0, p.N, p.BubbleThreshold, func(ops int) {
		m.Compute(flopsPerOp * float64(ops))
	})
	if !Sorted(a) {
		panic("qsort: sequential sort failed")
	}
	m.Compute(float64(p.N))
	return apps.Result{Checksum: Digest(a), Time: m.Elapsed()}
}
