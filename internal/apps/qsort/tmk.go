package qsort

import (
	"repro/internal/apps"
	"repro/internal/dsm"
)

// tmkLock is the lock id backing the critical section in the hand-coded
// TreadMarks version.
const tmkLock = 11

// RunTmk executes the hand-coded TreadMarks version: the identical
// Figure 4 task queue written against Tmk locks and condition variables.
func RunTmk(p Params, procs int) (apps.Result, error) {
	sys := dsm.New(dsm.Config{
		Procs:      procs,
		HeapBytes:  8<<20 + 4*p.N + 16*p.QueueCap,
		Platform:   p.Platform,
		DisableGC:  p.DisableGC,
		GCPressure: p.GCPressure,
		GCPolicy:   dsm.MustParseGCPolicy(p.GCPolicy),
		WireV1:     p.WireV1,
	})
	defer sys.Close()
	s := newSharedQS(p, sys)

	sys.Register("qsort", func(nd *dsm.Node, _ []byte) {
		s.worker(nd, tmkLock, procs)
	})

	var checksum float64
	sorted := true
	err := sys.Run(func(nd *dsm.Node) {
		keys := Input(p)
		nd.Compute(2 * float64(p.N))
		s.initShared(nd, keys)
		nd.RunParallel("qsort", nil)
		out := make([]int32, p.N)
		nd.ReadI32s(s.keysA, out)
		sorted = Sorted(out)
		checksum = Digest(out)
		nd.Compute(float64(p.N))
	})
	if err != nil {
		return apps.Result{}, err
	}
	if !sorted {
		return apps.Result{}, errNotSorted
	}
	msgs, bytes := sys.Switch().Stats().Snapshot()
	return apps.DSMResult(checksum, sys.MaxClock(), msgs, bytes, sys), nil
}
