package qsort

import (
	"encoding/binary"
	"sync"

	"repro/internal/apps"
	"repro/internal/mpi"
)

// RunMPI executes the message-passing version as a recursive splitter
// tree: the rank holding a segment partitions it, ships the upper half to
// the middle rank of its group, recurses on the lower half with the lower
// sub-group, and receives the sorted upper half back. Leaves run the same
// quicksort/bubble recursion as the sequential code. Data moves with the
// tasks — the message-passing answer to the shared task queue.
func RunMPI(p Params, procs int) (apps.Result, error) {
	world := mpi.New(mpi.Config{Procs: procs, Platform: p.Platform})

	var mu sync.Mutex
	var checksum float64
	sorted := true

	err := world.Run(func(r *mpi.Rank) {
		const tag = 3
		charge := func(ops int) { r.Compute(flopsPerOp * float64(ops)) }

		// solve sorts `data` using ranks [a, b); the caller is rank a.
		var solve func(data []int32, a, b int) []int32
		solve = func(data []int32, a, b int) []int32 {
			if b-a == 1 {
				buf := make([]int32, len(data))
				copy(buf, data)
				sortSlice(buf, p.BubbleThreshold, charge)
				return buf
			}
			mid := a + (b-a)/2
			split, ops := partition(data)
			charge(ops)
			r.Send(mid, tag, i32sBytes(data[split:]))
			low := solve(data[:split], a, mid)
			high := bytesI32s(r.Recv(mid, tag))
			return append(low, high...)
		}

		// serve handles the subtree rooted at this rank (non-root).
		var serve func(a, b int)
		serve = func(a, b int) {
			if b-a == 1 {
				return
			}
			mid := a + (b-a)/2
			if r.ID() == mid {
				data := bytesI32s(r.Recv(a, tag))
				out := solve(data, mid, b)
				r.Send(a, tag, i32sBytes(out))
				return
			}
			if r.ID() < mid {
				serve(a, mid)
			} else {
				serve(mid, b)
			}
		}

		if r.ID() == 0 {
			keys := Input(p)
			r.Compute(2 * float64(p.N))
			out := solve(keys, 0, r.Procs())
			r.Compute(float64(p.N))
			mu.Lock()
			sorted = Sorted(out)
			checksum = Digest(out)
			mu.Unlock()
		} else {
			serve(0, r.Procs())
		}
	})
	if err != nil {
		return apps.Result{}, err
	}
	if !sorted {
		return apps.Result{}, errNotSorted
	}
	msgs, bytes := world.Switch().Stats().Snapshot()
	return apps.Result{Checksum: checksum, Time: world.MaxClock(), Messages: msgs, Bytes: bytes}, nil
}

// sortSlice is sortRange over a whole slice.
func sortSlice(a []int32, threshold int, charge func(int)) {
	sortRange(a, 0, len(a), threshold, charge)
}

func i32sBytes(v []int32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	return b
}

func bytesI32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
