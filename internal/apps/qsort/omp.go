package qsort

import (
	"repro/internal/apps"
	"repro/internal/core"
)

// RunOMP executes the OpenMP version on the NOW (TreadMarks) backend.
func RunOMP(p Params, procs int) (apps.Result, error) {
	return RunOMPOn(p, procs, core.BackendNOW)
}

// RunOMPOn executes the OpenMP version on the given core backend — the
// source is backend-neutral: a parallel region of task-queue
// workers whose EnQueue/DeQueue use the critical + condition-variable
// pattern of the paper's Figure 4 (Table 1: "parallel region" /
// "critical, condition variables").
func RunOMPOn(p Params, procs int, backend core.BackendKind) (apps.Result, error) {
	prog := core.NewProgram(core.Config{
		Threads:    procs,
		HeapBytes:  8<<20 + 4*p.N + 16*p.QueueCap,
		Platform:   p.Platform,
		Backend:    backend,
		DisableGC:  p.DisableGC,
		GCPressure: p.GCPressure,
		GCPolicy:   p.GCPolicy,
		WireV1:     p.WireV1,
	})
	defer prog.Close()
	s := newSharedQS(p, prog)
	lockID := core.CriticalLockID("qs")

	prog.RegisterRegion("qsort", func(tc *core.TC) {
		s.worker(tc.Worker(), lockID, procs)
	})

	var checksum float64
	sorted := true
	err := prog.Run(func(m *core.MC) {
		keys := Input(p)
		m.Compute(2 * float64(p.N))
		s.initShared(m.Worker(), keys)
		m.Parallel("qsort", core.NoArgs())
		out := make([]int32, p.N)
		m.ReadI32s(s.keysA, out)
		sorted = Sorted(out)
		checksum = Digest(out)
		m.Compute(float64(p.N))
	})
	if err != nil {
		return apps.Result{}, err
	}
	if !sorted {
		return apps.Result{}, errNotSorted
	}
	return apps.RuntimeResult(checksum, prog), nil
}

var errNotSorted = qsortError("qsort: output not sorted")

type qsortError string

func (e qsortError) Error() string { return string(e) }
