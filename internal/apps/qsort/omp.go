package qsort

import (
	"repro/internal/apps"
	"repro/internal/core"
)

// runOMPRaw runs and returns the final array (debug helper for tests).
func runOMPRaw(p Params, procs int) ([]int32, error) {
	prog := core.NewProgram(core.Config{
		Threads:   procs,
		HeapBytes: 8<<20 + 4*p.N + 16*p.QueueCap,
		Platform:  p.Platform,
	})
	s := newSharedQS(p, prog.System())
	lockID := core.CriticalLockID("qs")
	prog.RegisterRegion("qsort", func(tc *core.TC) {
		s.worker(tc.Node(), lockID, procs)
	})
	out := make([]int32, p.N)
	err := prog.Run(func(m *core.MC) {
		keys := Input(p)
		s.initShared(m.Node(), keys)
		m.Parallel("qsort", core.NoArgs())
		m.Node().ReadI32s(s.keysA, out)
	})
	if err != nil {
		return nil, err
	}
	if !Sorted(out) {
		return out, errNotSorted
	}
	return out, nil
}

// RunOMP executes the OpenMP version: a parallel region of task-queue
// workers whose EnQueue/DeQueue use the critical + condition-variable
// pattern of the paper's Figure 4 (Table 1: "parallel region" /
// "critical, condition variables").
func RunOMP(p Params, procs int) (apps.Result, error) {
	prog := core.NewProgram(core.Config{
		Threads:   procs,
		HeapBytes: 8<<20 + 4*p.N + 16*p.QueueCap,
		Platform:  p.Platform,
	})
	s := newSharedQS(p, prog.System())
	lockID := core.CriticalLockID("qs")

	prog.RegisterRegion("qsort", func(tc *core.TC) {
		s.worker(tc.Node(), lockID, procs)
	})

	var checksum float64
	sorted := true
	err := prog.Run(func(m *core.MC) {
		keys := Input(p)
		m.Compute(2 * float64(p.N))
		s.initShared(m.Node(), keys)
		m.Parallel("qsort", core.NoArgs())
		out := make([]int32, p.N)
		m.Node().ReadI32s(s.keysA, out)
		sorted = Sorted(out)
		checksum = Digest(out)
		m.Compute(float64(p.N))
	})
	if err != nil {
		return apps.Result{}, err
	}
	if !sorted {
		return apps.Result{}, errNotSorted
	}
	msgs, bytes := prog.Traffic()
	return apps.DSMResult(checksum, prog.Elapsed(), msgs, bytes, prog), nil
}

var errNotSorted = qsortError("qsort: output not sorted")

type qsortError string

func (e qsortError) Error() string { return string(e) }
