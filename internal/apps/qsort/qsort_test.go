package qsort

import (
	"sort"
	"testing"

	"repro/internal/apps"
)

func TestPartitionSplitsStrictly(t *testing.T) {
	rngCases := [][]int32{
		{3, 1, 2},
		{5, 5, 5, 5},
		{2, 1},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		Input(Params{N: 1000, Seed: 7}),
	}
	for ci, a := range rngCases {
		buf := make([]int32, len(a))
		copy(buf, a)
		split, _ := partition(buf)
		if split <= 0 || split >= len(buf) {
			t.Fatalf("case %d: split %d of %d not strictly interior", ci, split, len(buf))
		}
		for _, x := range buf[:split] {
			for _, y := range buf[split:] {
				if x > y {
					t.Fatalf("case %d: left %d > right %d after partition", ci, x, y)
				}
			}
		}
	}
}

func TestBubbleSortSorts(t *testing.T) {
	a := Input(Params{N: 200, Seed: 3})
	bubbleSort(a)
	if !Sorted(a) {
		t.Fatal("bubbleSort failed")
	}
}

func TestSeqMatchesStdlibSort(t *testing.T) {
	p := Small()
	res := RunSeq(p)
	ref := Input(p)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	if got, want := res.Checksum, Digest(ref); got != want {
		t.Fatalf("digest %v, stdlib reference %v", got, want)
	}
}

func TestOMPMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4} {
		got, err := RunOMP(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("qsort/omp", got.Checksum, want, 0); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestTmkMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{2, 3, 8} {
		got, err := RunTmk(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("qsort/tmk", got.Checksum, want, 0); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestMPIMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 3, 4, 8} {
		got, err := RunMPI(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("qsort/mpi", got.Checksum, want, 0); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestThresholdInvariance(t *testing.T) {
	base := Small()
	want := RunSeq(base).Checksum
	for _, th := range []int{32, 512, base.N} {
		p := base
		p.BubbleThreshold = th
		if got := RunSeq(p).Checksum; got != want {
			t.Errorf("threshold %d changed digest: %v vs %v", th, got, want)
		}
	}
}

func TestConditionVariableTerminationUnderLoad(t *testing.T) {
	// Tiny array with many workers: most threads spend the run waiting
	// on the condition variable; termination must still broadcast
	// cleanly.
	p := Params{N: 512, BubbleThreshold: 64, Seed: 5, QueueCap: 256}
	want := RunSeq(p).Checksum
	got, err := RunOMP(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.CheckClose("qsort/omp-tiny", got.Checksum, want, 0); err != nil {
		t.Error(err)
	}
}
