package qsort

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsm"
)

// Shared task-queue state of the OpenMP and TreadMarks versions: the key
// array, a ring buffer of (lo, hi) tasks, and the nwait counter — with
// EnQueue and DeQueue implemented exactly as the paper's Figure 4
// (critical sections plus one condition variable, broadcast on
// termination). Every method takes a core.Worker, which *dsm.Node and
// the OpenMP thread context's Worker() both satisfy, so one queue
// implementation serves every backend.

type sharedQS struct {
	p      Params
	keysA  dsm.Addr
	ringA  dsm.Addr // QueueCap × (lo i64, hi i64)
	headA  dsm.Addr // monotonically increasing pop index
	tailA  dsm.Addr // monotonically increasing push index
	nwaitA dsm.Addr
}

const condQS = 0 // the single condition variable of Figure 4

type qsMallocer interface {
	MallocPage(size int) dsm.Addr
}

func newSharedQS(p Params, m qsMallocer) *sharedQS {
	// head, tail, and nwait share one page deliberately: they are only
	// ever touched inside the critical section, so a single page fault
	// refreshes all queue metadata per lock acquisition (separate pages
	// would triple the serial fault cost of every queue operation).
	meta := m.MallocPage(24)
	return &sharedQS{
		p:      p,
		keysA:  m.MallocPage(4 * p.N),
		ringA:  m.MallocPage(16 * p.QueueCap),
		headA:  meta,
		tailA:  meta + 8,
		nwaitA: meta + 16,
	}
}

// initShared loads the keys and the root task (master, before the fork).
func (s *sharedQS) initShared(nd core.Worker, keys []int32) {
	nd.WriteI32s(s.keysA, keys)
	nd.WriteI64(s.headA, 0)
	nd.WriteI64(s.tailA, 0)
	nd.WriteI64(s.nwaitA, 0)
	s.enqueueLocked(nd, 0, int64(len(keys)))
}

// enqueueLocked appends a task (lock held).
func (s *sharedQS) enqueueLocked(nd core.Worker, lo, hi int64) {
	head, tail := nd.ReadI64(s.headA), nd.ReadI64(s.tailA)
	if tail-head >= int64(s.p.QueueCap) {
		panic(fmt.Sprintf("qsort: task queue overflow (%d); raise Params.QueueCap", s.p.QueueCap))
	}
	slot := s.ringA + dsm.Addr(16*(tail%int64(s.p.QueueCap)))
	nd.WriteI64(slot, lo)
	nd.WriteI64(slot+8, hi)
	nd.WriteI64(s.tailA, tail+1)
}

// enQueue is the paper's EnQueue: push under the critical section and
// signal a waiter if any (Figure 4's cond_signal).
func (s *sharedQS) enQueue(nd core.Worker, lockID int, lo, hi int64) {
	nd.Acquire(lockID)
	s.enqueueLocked(nd, lo, hi)
	if nd.ReadI64(s.nwaitA) > 0 {
		nd.CondSignal(condQS, lockID)
	}
	nd.Release(lockID)
}

// deQueue is the paper's DeQueue (Figure 4): one critical section
// protecting the whole operation, a cond_wait instead of busy-waiting,
// and a cond_broadcast once every thread is waiting (end of program).
// It returns ok=false when the program is done.
func (s *sharedQS) deQueue(nd core.Worker, lockID, procs int) (lo, hi int64, ok bool) {
	nd.Acquire(lockID)
	defer nd.Release(lockID)
	for {
		head, tail := nd.ReadI64(s.headA), nd.ReadI64(s.tailA)
		if head < tail {
			slot := s.ringA + dsm.Addr(16*(head%int64(s.p.QueueCap)))
			lo, hi = nd.ReadI64(slot), nd.ReadI64(slot+8)
			nd.WriteI64(s.headA, head+1)
			return lo, hi, true
		}
		nwait := nd.ReadI64(s.nwaitA) + 1
		nd.WriteI64(s.nwaitA, nwait)
		if nwait == int64(procs) {
			nd.CondBroadcast(condQS, lockID)
			return 0, 0, false
		}
		nd.CondWait(condQS, lockID)
		if nd.ReadI64(s.nwaitA) == int64(procs) {
			return 0, 0, false
		}
		nd.WriteI64(s.nwaitA, nd.ReadI64(s.nwaitA)-1)
	}
}

// worker processes tasks until the queue drains: bubble-sort short
// subarrays, otherwise partition and return both halves to the queue.
func (s *sharedQS) worker(nd core.Worker, lockID, procs int) {
	for {
		lo, hi, ok := s.deQueue(nd, lockID, procs)
		if !ok {
			return
		}
		cnt := int(hi - lo)
		buf := make([]int32, cnt)
		nd.ReadI32s(s.keysA+dsm.Addr(4*lo), buf)
		if cnt <= s.p.BubbleThreshold {
			ops := bubbleSort(buf)
			nd.Compute(flopsPerOp * float64(ops))
			nd.WriteI32s(s.keysA+dsm.Addr(4*lo), buf)
			continue
		}
		split, ops := partition(buf)
		nd.Compute(flopsPerOp * float64(ops))
		nd.WriteI32s(s.keysA+dsm.Addr(4*lo), buf)
		s.enQueue(nd, lockID, lo, lo+int64(split))
		s.enQueue(nd, lockID, lo+int64(split), hi)
	}
}
