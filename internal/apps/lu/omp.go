package lu

import (
	"math"

	"repro/internal/apps"
	"repro/internal/core"
)

// RunOMP executes the OpenMP version on the NOW (TreadMarks) backend.
func RunOMP(p Params, procs int) (apps.Result, error) {
	return RunOMPOn(p, procs, core.BackendNOW)
}

// RunOMPOn executes the OpenMP version on the given core backend — the
// source is backend-neutral. One coarse parallel region in which
// each thread factors its contiguous block of rows. Step k is ordered by a
// barrier between the owner publishing the pivot row and everyone reading
// it; the minimum-pivot monitor is merged under a named critical section
// and the checksum digest through a scalar reduction — the lock/barrier
// synchronization mix of the SPLASH-2 kernel.
func RunOMPOn(p Params, procs int, backend core.BackendKind) (apps.Result, error) {
	n := p.N
	rb := rowBytes(n)
	prog := core.NewProgram(core.Config{Threads: procs, Platform: p.Platform, HeapBytes: heapFor(n), Backend: backend})
	defer prog.Close()
	mat := prog.SharedPage(rb * n)
	pivA := prog.SharedPage(core.PageSize) // min |pivot|, lock-protected
	digestRed := prog.NewReduction(core.OpSum)

	prog.RegisterRegion("lu", func(tc *core.TC) {
		nd := tc.Worker()
		lo, hi := core.StaticBlock(0, n, tc.ThreadNum(), procs)
		rows := readBlock(nd, mat, n, lo, hi)

		myMin := math.MaxFloat64
		pivot := make([]float64, n)
		for k := 0; k < n; k++ {
			if k >= lo && k < hi {
				// Row k is final: publish it and observe its pivot.
				nd.WriteF64s(rowAddr(mat, rb, k), rows[k-lo])
				if mag := math.Abs(rows[k-lo][k]); mag < myMin {
					myMin = mag
				}
			}
			tc.Barrier()
			nd.ReadF64s(rowAddr(mat, rb, k), pivot)
			start := k + 1
			if lo > start {
				start = lo
			}
			for i := start; i < hi; i++ {
				UpdateRow(rows[i-lo], pivot, k)
			}
			if cnt := hi - start; cnt > 0 {
				tc.Compute(float64(cnt) * ElimFlops(k, n))
			}
		}

		tc.Critical("lu-pivot", func() {
			if cur := nd.ReadF64(pivA); myMin < cur {
				nd.WriteF64(pivA, myMin)
			}
		})
		var digest float64
		for _, row := range rows {
			digest += DigestRows(row, n, 0, 1)
		}
		digestRed.Reduce(tc, digest)
		tc.Compute(flopsPerDigest * float64((hi-lo)*n))
	})

	var checksum float64
	err := prog.Run(func(m *core.MC) {
		a := InitMatrix(p)
		writeMatrix(m.Worker(), mat, a, n)
		m.WriteF64(pivA, math.MaxFloat64)
		m.Compute(flopsPerInit * float64(n*n))
		digestRed.Reset(&m.TC)
		m.Parallel("lu", core.NoArgs())
		checksum = Checksum(digestRed.Value(&m.TC), m.ReadF64(pivA))
	})
	if err != nil {
		return apps.Result{}, err
	}
	return apps.RuntimeResult(checksum, prog), nil
}

// heapFor sizes the shared heap: the padded matrix plus slack for the
// monitor page and reduction slots.
func heapFor(n int) int {
	need := rowBytes(n)*n + 64*core.PageSize
	if min := 16 << 20; need < min {
		return min
	}
	return need
}
