package lu

import "repro/internal/dsm"

// Helpers shared by the OpenMP and TreadMarks versions: the matrix lives
// in DSM memory one page-aligned row at a time (the SPLASH-2 "contiguous
// block allocation"), so a row owner's writes never false-share a page
// with another owner's rows.

// rowBytes returns the padded size of one N-element row.
func rowBytes(n int) int {
	b := 8 * n
	if r := b % dsm.PageSize; r != 0 {
		b += dsm.PageSize - r
	}
	return b
}

// rowAddr returns the shared address of row i.
func rowAddr(base dsm.Addr, rb, i int) dsm.Addr {
	return base + dsm.Addr(rb*i)
}

// writeMatrix stores the whole row-major matrix into the padded layout.
func writeMatrix(nd *dsm.Node, base dsm.Addr, a []float64, n int) {
	rb := rowBytes(n)
	for i := 0; i < n; i++ {
		nd.WriteF64s(rowAddr(base, rb, i), a[i*n:(i+1)*n])
	}
}

// readBlock loads rows [lo, hi) into private storage, one slice per row.
func readBlock(nd *dsm.Node, base dsm.Addr, n, lo, hi int) [][]float64 {
	rb := rowBytes(n)
	rows := make([][]float64, hi-lo)
	for i := lo; i < hi; i++ {
		row := make([]float64, n)
		nd.ReadF64s(rowAddr(base, rb, i), row)
		rows[i-lo] = row
	}
	return rows
}
