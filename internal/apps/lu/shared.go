package lu

import "repro/internal/core"

// Helpers shared by the OpenMP and TreadMarks versions (via core.Worker,
// which *dsm.Node and the OpenMP thread context's Worker() both satisfy):
// the matrix lives in shared memory one page-aligned row at a time (the
// SPLASH-2 "contiguous block allocation"), so a row owner's writes never
// false-share a page with another owner's rows.

// rowBytes returns the padded size of one N-element row.
func rowBytes(n int) int {
	return core.PageRound(8 * n)
}

// rowAddr returns the shared address of row i.
func rowAddr(base core.Addr, rb, i int) core.Addr {
	return base + core.Addr(rb*i)
}

// writeMatrix stores the whole row-major matrix into the padded layout.
func writeMatrix(nd core.Worker, base core.Addr, a []float64, n int) {
	rb := rowBytes(n)
	for i := 0; i < n; i++ {
		nd.WriteF64s(rowAddr(base, rb, i), a[i*n:(i+1)*n])
	}
}

// readBlock loads rows [lo, hi) into private storage, one slice per row.
func readBlock(nd core.Worker, base core.Addr, n, lo, hi int) [][]float64 {
	rb := rowBytes(n)
	rows := make([][]float64, hi-lo)
	for i := lo; i < hi; i++ {
		row := make([]float64, n)
		nd.ReadF64s(rowAddr(base, rb, i), row)
		rows[i-lo] = row
	}
	return rows
}
