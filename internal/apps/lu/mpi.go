package lu

import (
	"math"
	"sync"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
)

// RunMPI executes the message-passing version: every rank keeps its
// contiguous block of rows privately and the pivot row travels in a
// broadcast from its owner each step — data and synchronization move
// together, so MPI sends one message tree per step where the DSM versions
// fault pages individually.
func RunMPI(p Params, procs int) (apps.Result, error) {
	n := p.N
	world := mpi.New(mpi.Config{Procs: procs, Platform: p.Platform})

	var mu sync.Mutex
	var checksum float64

	err := world.Run(func(r *mpi.Rank) {
		me, np := r.ID(), r.Procs()
		lo, hi := core.StaticBlock(0, n, me, np)

		a := InitMatrix(p) // deterministic: every rank builds the same matrix
		rows := make([][]float64, hi-lo)
		for i := lo; i < hi; i++ {
			rows[i-lo] = a[i*n : (i+1)*n]
		}
		r.Compute(flopsPerInit * float64(n*n) / float64(np))

		owner := func(k int) int {
			for t := 0; t < np; t++ {
				tlo, thi := core.StaticBlock(0, n, t, np)
				if k >= tlo && k < thi {
					return t
				}
			}
			return np - 1
		}

		myMin := math.MaxFloat64
		for k := 0; k < n; k++ {
			root := owner(k)
			var pivot []float64
			if root == me {
				pivot = rows[k-lo]
				if mag := math.Abs(pivot[k]); mag < myMin {
					myMin = mag
				}
			}
			pivot = mpi.BytesToF64s(r.Bcast(root, mpi.F64sToBytes(pivot)))
			start := k + 1
			if lo > start {
				start = lo
			}
			for i := start; i < hi; i++ {
				UpdateRow(rows[i-lo], pivot, k)
			}
			if cnt := hi - start; cnt > 0 {
				r.Compute(float64(cnt) * ElimFlops(k, n))
			}
		}

		var digest float64
		for _, row := range rows {
			digest += DigestRows(row, n, 0, 1)
		}
		r.Compute(flopsPerDigest * float64((hi-lo)*n))
		sums := r.Reduce(mpi.OpSum, []float64{digest})
		mins := r.Reduce(mpi.OpMin, []float64{myMin})
		if me == 0 {
			mu.Lock()
			checksum = Checksum(sums[0], mins[0])
			mu.Unlock()
		}
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := world.Switch().Stats().Snapshot()
	return apps.Result{Checksum: checksum, Time: world.MaxClock(), Messages: msgs, Bytes: bytes}, nil
}
