package lu

import (
	"math"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dsm"
)

// tmkPivLock protects the shared minimum-pivot monitor (any id works; the
// protocol places the lock's manager at id mod procs).
const tmkPivLock = 9

// RunTmk executes the hand-coded TreadMarks version: the same
// one-barrier-per-step row factorization written directly against
// Tmk_barrier and Tmk_lock_acquire/Tmk_lock_release, with per-processor
// digest partials combined by node 0 after the last barrier.
func RunTmk(p Params, procs int) (apps.Result, error) {
	n := p.N
	rb := rowBytes(n)
	sys := dsm.New(dsm.Config{Procs: procs, Platform: p.Platform, HeapBytes: heapFor(n)})
	defer sys.Close()
	mat := sys.MallocPage(rb * n)
	pivA := sys.MallocPage(dsm.PageSize)
	digPart := sys.MallocPage(dsm.PageSize * procs)
	out := sys.MallocPage(8)

	sys.Register("lu-main", func(nd *dsm.Node, _ []byte) {
		me := nd.ID()
		lo, hi := core.StaticBlock(0, n, me, procs)
		rows := readBlock(nd, mat, n, lo, hi)

		myMin := math.MaxFloat64
		pivot := make([]float64, n)
		for k := 0; k < n; k++ {
			if k >= lo && k < hi {
				nd.WriteF64s(rowAddr(mat, rb, k), rows[k-lo])
				if mag := math.Abs(rows[k-lo][k]); mag < myMin {
					myMin = mag
				}
			}
			nd.Barrier()
			nd.ReadF64s(rowAddr(mat, rb, k), pivot)
			start := k + 1
			if lo > start {
				start = lo
			}
			for i := start; i < hi; i++ {
				UpdateRow(rows[i-lo], pivot, k)
			}
			if cnt := hi - start; cnt > 0 {
				nd.Compute(float64(cnt) * ElimFlops(k, n))
			}
		}

		nd.Acquire(tmkPivLock)
		if cur := nd.ReadF64(pivA); myMin < cur {
			nd.WriteF64(pivA, myMin)
		}
		nd.Release(tmkPivLock)

		var digest float64
		for _, row := range rows {
			digest += DigestRows(row, n, 0, 1)
		}
		nd.WriteF64(digPart+dsm.Addr(dsm.PageSize*me), digest)
		nd.Compute(flopsPerDigest * float64((hi-lo)*n))
		nd.Barrier()
		if me == 0 {
			var total float64
			for t := 0; t < procs; t++ {
				total += nd.ReadF64(digPart + dsm.Addr(dsm.PageSize*t))
			}
			nd.WriteF64(out, Checksum(total, nd.ReadF64(pivA)))
		}
	})

	var checksum float64
	err := sys.Run(func(nd *dsm.Node) {
		a := InitMatrix(p)
		writeMatrix(nd, mat, a, n)
		nd.WriteF64(pivA, math.MaxFloat64)
		nd.Compute(flopsPerInit * float64(n*n))
		nd.RunParallel("lu-main", nil)
		checksum = nd.ReadF64(out)
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := sys.Switch().Stats().Snapshot()
	return apps.DSMResult(checksum, sys.MaxClock(), msgs, bytes, sys), nil
}
