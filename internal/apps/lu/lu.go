// Package lu adds a dense LU decomposition in the style of the SPLASH-2
// "LU-Contiguous" kernel that the TreadMarks literature uses alongside the
// paper's five applications: a diagonally dominant N×N matrix is factored
// in place (no pivoting) with each processor owning a contiguous block of
// rows. At step k the owner of row k publishes it (the pivot row); after a
// barrier every processor eliminates the pivot column from its own rows.
//
// Synchronization is the lock/barrier mix characteristic of the original:
// one barrier per elimination step orders pivot-row publication against
// its consumers, and a lock-protected shared scalar accumulates the
// minimum pivot magnitude (the factorization's singularity monitor).
//
// Rows are allocated page-aligned in the DSM versions — the "contiguous
// block allocation" that gives the SPLASH-2 variant its name and keeps an
// owner's writes from false-sharing a page with its neighbour's rows.
package lu

import (
	"math"

	"repro/internal/apps"
	"repro/internal/sim"
)

// Params configures one LU run.
type Params struct {
	// N is the matrix dimension.
	N int
	// Seed drives the deterministic matrix entries.
	Seed uint64
	// Platform overrides the cost model.
	Platform *sim.Platform
}

// Default returns the paper-scale configuration.
func Default() Params { return Params{N: 512, Seed: 27182} }

// Small returns a test-scale configuration.
func Small() Params { return Params{N: 64, Seed: 27182} }

// flop estimates used for virtual-time accounting.
const (
	flopsPerInit   = 6.0 // rng draw + scale per element
	flopsPerElim   = 2.0 // multiply-subtract per trailing element
	flopsPerDigest = 2.0
)

// InitMatrix builds the deterministic row-major N×N input: seeded uniform
// entries with the diagonal boosted to strict dominance, so elimination
// without pivoting is numerically safe and every implementation factors
// the identical matrix.
func InitMatrix(p Params) []float64 {
	n := p.N
	a := make([]float64, n*n)
	rng := sim.NewRNG(p.Seed)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = rng.Float64() - 0.5
		}
		// Strict diagonal dominance: |a_ii| > sum_j |a_ij|.
		a[i*n+i] = float64(n)/2 + 1 + rng.Float64()
	}
	return a
}

// UpdateRow applies elimination step k to one row: the multiplier lands in
// the L part (column k) and the trailing columns are updated against the
// pivot row. Every implementation calls this with the same operand order,
// so the factored rows agree bitwise across the four versions.
func UpdateRow(row, pivot []float64, k int) {
	l := row[k] / pivot[k]
	row[k] = l
	for j := k + 1; j < len(row); j++ {
		row[j] -= l * pivot[j]
	}
}

// ElimFlops returns the flop charge of one row's update at step k.
func ElimFlops(k, n int) float64 {
	return 10 + flopsPerElim*float64(n-k-1)
}

// DigestRows folds rows [lo, hi) of the factored matrix into the checksum
// partial (sum of absolute values).
func DigestRows(a []float64, n, lo, hi int) float64 {
	var s float64
	for i := lo * n; i < hi*n; i++ {
		s += math.Abs(a[i])
	}
	return s
}

// Checksum combines the factor digest with the minimum pivot magnitude
// (exact in any combining order, so the lock-accumulated parallel minimum
// matches the sequential scan bitwise).
func Checksum(digest, minPivot float64) float64 { return digest + minPivot }

// RunSeq executes the sequential reference implementation.
func RunSeq(p Params) apps.Result {
	n := p.N
	m := sim.NewMeter(p.Platform)
	a := InitMatrix(p)
	m.Compute(flopsPerInit * float64(n*n))

	minPivot := math.MaxFloat64
	for k := 0; k < n; k++ {
		pivot := a[k*n : (k+1)*n]
		if mag := math.Abs(pivot[k]); mag < minPivot {
			minPivot = mag
		}
		for i := k + 1; i < n; i++ {
			UpdateRow(a[i*n:(i+1)*n], pivot, k)
		}
		m.Compute(float64(n-k-1) * ElimFlops(k, n))
	}
	digest := DigestRows(a, n, 0, n)
	m.Compute(flopsPerDigest * float64(n*n))
	return apps.Result{Checksum: Checksum(digest, minPivot), Time: m.Elapsed()}
}
