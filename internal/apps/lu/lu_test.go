package lu

import (
	"math"
	"testing"

	"repro/internal/apps"
)

// TestFactorizationReconstructsMatrix multiplies the in-place L and U
// factors back together and checks them against the original matrix.
func TestFactorizationReconstructsMatrix(t *testing.T) {
	p := Params{N: 24, Seed: 99}
	orig := InitMatrix(p)
	n := p.N

	a := make([]float64, len(orig))
	copy(a, orig)
	for k := 0; k < n; k++ {
		pivot := a[k*n : (k+1)*n]
		for i := k + 1; i < n; i++ {
			UpdateRow(a[i*n:(i+1)*n], pivot, k)
		}
	}

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L·U)_ij with L unit-lower and U upper, both stored in a.
			var s float64
			for k := 0; k <= i && k <= j; k++ {
				l := a[i*n+k]
				if k == i {
					l = 1
				}
				s += l * a[k*n+j]
			}
			if math.Abs(s-orig[i*n+j]) > 1e-9*float64(n) {
				t.Fatalf("(LU)[%d][%d] = %v, want %v", i, j, s, orig[i*n+j])
			}
		}
	}
}

func TestDiagonalDominanceKeepsPivotsLarge(t *testing.T) {
	res := RunSeq(Small())
	if res.Checksum <= 0 || math.IsNaN(res.Checksum) {
		t.Fatalf("bad sequential checksum %v", res.Checksum)
	}
	// The min-pivot monitor contributes at least the dominance floor.
	p := Small()
	a := InitMatrix(p)
	for i := 0; i < p.N; i++ {
		var off float64
		for j := 0; j < p.N; j++ {
			if j != i {
				off += math.Abs(a[i*p.N+j])
			}
		}
		if math.Abs(a[i*p.N+i]) <= off {
			t.Fatalf("row %d not diagonally dominant: |diag|=%v off=%v", i, math.Abs(a[i*p.N+i]), off)
		}
	}
}

// TestImplementationsMatchSequential cross-checks all three parallel
// versions against the sequential checksum at a small size (the full grid
// runs in the harness equivalence suite).
func TestImplementationsMatchSequential(t *testing.T) {
	p := Params{N: 32, Seed: 7}
	want := RunSeq(p).Checksum
	for name, run := range map[string]func(Params, int) (apps.Result, error){
		"omp": RunOMP, "tmk": RunTmk, "mpi": RunMPI,
	} {
		for _, procs := range []int{1, 3, 4} {
			got, err := run(p, procs)
			if err != nil {
				t.Fatalf("%s/p%d: %v", name, procs, err)
			}
			if err := apps.CheckClose(name, got.Checksum, want, 1e-10); err != nil {
				t.Errorf("p%d: %v", procs, err)
			}
		}
	}
}
