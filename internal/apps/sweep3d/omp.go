package sweep3d

import (
	"repro/internal/apps"
	"repro/internal/core"
)

// RunOMP executes the OpenMP version on the NOW (TreadMarks) backend.
func RunOMP(p Params, procs int) (apps.Result, error) {
	return RunOMPOn(p, procs, core.BackendNOW)
}

// RunOMPOn executes the OpenMP version on the given core backend — the
// source is backend-neutral. One coarse-grained parallel region
// (Table 1: "parallel region" + "semaphore"). Each pipeline unit hands its
// outgoing ψ_y boundary plane to the downstream neighbour through shared
// memory, synchronized by the paper's proposed sema_signal/sema_wait pair
// — the "available" semaphore says the plane is ready, the "free"
// semaphore (the Figure 3 "done" flag) says the slot may be overwritten.
func RunOMPOn(p Params, procs int, backend core.BackendKind) (apps.Result, error) {
	validate(p)
	nx, ny, nz := p.NX, p.NY, p.NZ
	nxb := (nx + p.BlockX - 1) / p.BlockX
	nab := (p.Angles + p.AngleBlock - 1) / p.AngleBlock
	slotBytes := core.PageRound(8 * p.BlockX * nz * p.AngleBlock)

	prog := core.NewProgram(core.Config{
		Threads:    procs,
		HeapBytes:  16<<20 + procs*nxb*nab*slotBytes,
		Platform:   p.Platform,
		Backend:    backend,
		DisableGC:  p.DisableGC,
		GCPressure: p.GCPressure,
		GCPolicy:   p.GCPolicy,
	})
	defer prog.Close()
	slots := prog.SharedPage(procs * nxb * nab * slotBytes)
	redS := prog.NewReduction(core.OpSum)
	redS2 := prog.NewReduction(core.OpSum)

	prog.RegisterRegion("sweep", func(tc *core.TC) {
		me := tc.ThreadNum()
		lo, hi := core.StaticBlock(0, ny, me, procs)
		flux := make([]float64, (hi-lo)*nx*nz)
		slotUse := make(map[int]int) // per-slot reuse count (for sema_free)

		for _, oct := range octants {
			ys, ylo := slabOrder(ny, oct[1], me, procs)
			up, down := neighbours(me, procs, oct[1])
			for abIdx, as := range angleBlocks(p.Angles, p.AngleBlock) {
				na := len(as)
				psiX := make([]float64, (hi-lo)*nz*na)
				for xbIdx, xs := range xBlocks(nx, p.BlockX, oct[0]) {
					cnt := len(xs) * nz * na
					in := make([]float64, cnt)
					if up >= 0 {
						tc.SemaWait(semID(up, xbIdx, abIdx, dirOf(oct[1]), semFamilyData))
						tc.ReadF64s(slots+core.Addr(slotIndex(up, xbIdx, abIdx, nxb, nab)*slotBytes), in)
						tc.SemaSignal(semID(up, xbIdx, abIdx, 0, semFamilyFree))
					}
					out := make([]float64, cnt)
					tc.Compute(sweepSlab(p, oct, xs, ys, as, ylo, in, out, psiX, flux))
					if down >= 0 {
						slot := slotIndex(me, xbIdx, abIdx, nxb, nab)
						if slotUse[slot] > 0 {
							tc.SemaWait(semID(me, xbIdx, abIdx, 0, semFamilyFree))
						}
						slotUse[slot]++
						tc.WriteF64s(slots+core.Addr(slot*slotBytes), out)
						tc.SemaSignal(semID(me, xbIdx, abIdx, dirOf(oct[1]), semFamilyData))
					}
				}
			}
		}
		s, s2 := fluxMoments(flux)
		tc.Compute(2 * float64(len(flux)))
		redS.Reduce(tc, s)
		redS2.Reduce(tc, s2)
	})

	var checksum float64
	err := prog.Run(func(m *core.MC) {
		redS.Reset(&m.TC)
		redS2.Reset(&m.TC)
		m.Parallel("sweep", core.NoArgs())
		checksum = digest(redS.Value(&m.TC), redS2.Value(&m.TC))
	})
	if err != nil {
		return apps.Result{}, err
	}
	return apps.RuntimeResult(checksum, prog), nil
}
