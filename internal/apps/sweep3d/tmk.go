package sweep3d

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dsm"
)

// RunTmk executes the hand-coded TreadMarks version: identical pipeline
// structure to the OpenMP code (the original Tmk port is what the OpenMP
// version was transcribed from), but written directly against the DSM
// primitives with per-node result pages instead of runtime reductions.
func RunTmk(p Params, procs int) (apps.Result, error) {
	validate(p)
	nx, ny, nz := p.NX, p.NY, p.NZ
	nxb := (nx + p.BlockX - 1) / p.BlockX
	nab := (p.Angles + p.AngleBlock - 1) / p.AngleBlock
	slotBytes := core.PageRound(8 * p.BlockX * nz * p.AngleBlock)

	sys := dsm.New(dsm.Config{
		Procs:      procs,
		HeapBytes:  16<<20 + procs*nxb*nab*slotBytes,
		Platform:   p.Platform,
		DisableGC:  p.DisableGC,
		GCPressure: p.GCPressure,
		GCPolicy:   dsm.MustParseGCPolicy(p.GCPolicy),
	})
	defer sys.Close()
	slots := sys.MallocPage(procs * nxb * nab * slotBytes)
	partials := sys.MallocPage(dsm.PageSize * procs)
	out := sys.MallocPage(16)

	sys.Register("sweep", func(nd *dsm.Node, _ []byte) {
		me := nd.ID()
		ysAll, ylo := slabOrder(ny, +1, me, procs)
		flux := make([]float64, len(ysAll)*nx*nz)
		slotUse := make(map[int]int)

		for _, oct := range octants {
			ys, _ := slabOrder(ny, oct[1], me, procs)
			up, down := neighbours(me, procs, oct[1])
			for abIdx, as := range angleBlocks(p.Angles, p.AngleBlock) {
				na := len(as)
				psiX := make([]float64, len(ys)*nz*na)
				for xbIdx, xs := range xBlocks(nx, p.BlockX, oct[0]) {
					cnt := len(xs) * nz * na
					in := make([]float64, cnt)
					if up >= 0 {
						nd.SemaWait(semID(up, xbIdx, abIdx, dirOf(oct[1]), semFamilyData))
						nd.ReadF64s(slots+dsm.Addr(slotIndex(up, xbIdx, abIdx, nxb, nab)*slotBytes), in)
						nd.SemaSignal(semID(up, xbIdx, abIdx, 0, semFamilyFree))
					}
					bndOut := make([]float64, cnt)
					nd.Compute(sweepSlab(p, oct, xs, ys, as, ylo, in, bndOut, psiX, flux))
					if down >= 0 {
						slot := slotIndex(me, xbIdx, abIdx, nxb, nab)
						if slotUse[slot] > 0 {
							nd.SemaWait(semID(me, xbIdx, abIdx, 0, semFamilyFree))
						}
						slotUse[slot]++
						nd.WriteF64s(slots+dsm.Addr(slot*slotBytes), bndOut)
						nd.SemaSignal(semID(me, xbIdx, abIdx, dirOf(oct[1]), semFamilyData))
					}
				}
			}
		}

		s, s2 := fluxMoments(flux)
		nd.Compute(2 * float64(len(flux)))
		base := partials + dsm.Addr(dsm.PageSize*me)
		nd.WriteF64(base, s)
		nd.WriteF64(base+8, s2)
		nd.Barrier()
		if me == 0 {
			var ts, ts2 float64
			for t := 0; t < procs; t++ {
				b := partials + dsm.Addr(dsm.PageSize*t)
				ts += nd.ReadF64(b)
				ts2 += nd.ReadF64(b + 8)
			}
			nd.WriteF64(out, digest(ts, ts2))
		}
	})

	var checksum float64
	err := sys.Run(func(nd *dsm.Node) {
		nd.RunParallel("sweep", nil)
		checksum = nd.ReadF64(out)
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := sys.Switch().Stats().Snapshot()
	return apps.DSMResult(checksum, sys.MaxClock(), msgs, bytes, sys), nil
}
