package sweep3d

import "repro/internal/core"

// Pipeline plumbing shared by the OpenMP, TreadMarks, and MPI versions.

const (
	maxXBlocks    = 64
	maxAngleBlk   = 8
	semFamilyData = 0 // boundary-available semaphore ("available" in Fig. 3)
	semFamilyFree = 1 // slot-reusable semaphore ("done" in Fig. 3)
)

// semID names the data/free semaphore pair of a boundary slot.
//
// The data semaphore must be keyed by the sweep direction as well as the
// producer: octants alternate the pipeline direction, so the downstream
// consumer of thread t is t+1 in half the octants and t-1 in the other
// half. Without the direction in the key, pipeline skew across octants
// (there is no barrier between them) lets the two consumers wait on the
// same semaphore and steal each other's signals — a deadlock.
//
// The free semaphore (slot-reuse handshake) is deliberately keyed without
// direction: it counts "slot consumed" events for the producer's slot no
// matter which neighbour consumed it, so a producer never overwrites a
// plane that has not been read.
func semID(producer, xb, ab, dir, family int) int {
	return ((((producer*maxXBlocks+xb)*maxAngleBlk+ab)*2)+dir)*2 + family
}

// dirOf maps a y sweep sign to the semaphore direction bit.
func dirOf(sy int) int {
	if sy > 0 {
		return 0
	}
	return 1
}

// slotIndex enumerates boundary slots for shared-memory layout.
func slotIndex(producer, xb, ab, nxb, nab int) int {
	return (producer*nxb+xb)*nab + ab
}

// neighbours returns the upstream and downstream thread of `me` for an
// octant sweeping the y axis in direction sy (-1 if none).
func neighbours(me, procs, sy int) (up, down int) {
	if sy > 0 {
		up, down = me-1, me+1
	} else {
		up, down = me+1, me-1
	}
	if up < 0 || up >= procs {
		up = -1
	}
	if down < 0 || down >= procs {
		down = -1
	}
	return
}

// slabOrder returns this thread's y indices in sweep order.
func slabOrder(ny, sy, me, procs int) (ys []int, ylo int) {
	lo, hi := core.StaticBlock(0, ny, me, procs)
	ys = make([]int, 0, hi-lo)
	if sy > 0 {
		for j := lo; j < hi; j++ {
			ys = append(ys, j)
		}
	} else {
		for j := hi - 1; j >= lo; j-- {
			ys = append(ys, j)
		}
	}
	return ys, lo
}

// validate panics early on configurations the fixed id spaces cannot hold.
func validate(p Params) {
	nxb := (p.NX + p.BlockX - 1) / p.BlockX
	nab := (p.Angles + p.AngleBlock - 1) / p.AngleBlock
	if nxb > maxXBlocks || nab > maxAngleBlk {
		panic("sweep3d: too many pipeline blocks for the semaphore id space")
	}
}
