// Package sweep3d reproduces the paper's Sweep3D application: "The Sweep3D
// benchmark from the DOE ASCI Blue Benchmark suite solves a one-group
// time-independent discrete-ordinates three-dimensional Cartesian geometry
// neutron transport problem. The main data structure is a 3D mesh. The
// code uses a level of blocking along all three dimensions to achieve a
// certain level of granularity. It then performs multiple 2D wavefront
// sweeping over the 3D blocks. In OpenMP the data dependence between two
// neighbor threads along each pipeline is expressed using our proposed
// sema_signal / sema_wait synchronization directives."
//
// The transport kernel is a one-group diamond-difference sweep over 8
// octants with a small angle set. The domain is decomposed into Y slabs;
// within each octant the sweep pipelines over (x-block, angle-block)
// units, each thread passing the outgoing ψ_y boundary plane of a unit to
// its downstream neighbour. ψ_x and ψ_z never cross threads (the slabs cut
// only the y dimension), so the boundary planes plus the final flux
// gather are the application's entire communication — the real Sweep3D
// pattern.
package sweep3d

import (
	"math"

	"repro/internal/apps"
	"repro/internal/sim"
)

// Params configures one Sweep3D run.
type Params struct {
	// NX, NY, NZ are the mesh dimensions.
	NX, NY, NZ int
	// Angles is the number of discrete ordinates per octant.
	Angles int
	// BlockX is the pipeline granularity along x.
	BlockX int
	// AngleBlock is the pipeline granularity over angles.
	AngleBlock int
	// Platform overrides the cost model.
	Platform *sim.Platform
	// DisableGC turns off the DSM's metadata collection in the DSM-backed
	// implementations; GCPressure and GCPolicy set the acquire-epoch
	// trigger and the per-page validate-vs-flush purge policy (see
	// dsm.Config). Sweep3D synchronizes through semaphore pipelines, so
	// between region boundaries only the acquire source collects for it.
	DisableGC  bool
	GCPressure int
	GCPolicy   string
}

// Default returns the paper-scale configuration (50×50×50 mesh, 6 angles
// per octant).
func Default() Params {
	return Params{NX: 50, NY: 50, NZ: 50, Angles: 6, BlockX: 5, AngleBlock: 3}
}

// Small returns a test-scale configuration.
func Small() Params {
	return Params{NX: 12, NY: 12, NZ: 12, Angles: 2, BlockX: 4, AngleBlock: 1}
}

const sigma = 1.0 // total macroscopic cross-section

// flopsPerCellAngle is the virtual cost of one diamond-difference cell
// update for one angle.
const flopsPerCellAngle = 22.0

// octant directions: sign of the sweep along each axis.
var octants = [8][3]int{
	{+1, +1, +1}, {-1, +1, +1}, {+1, -1, +1}, {-1, -1, +1},
	{+1, +1, -1}, {-1, +1, -1}, {+1, -1, -1}, {-1, -1, -1},
}

// ordinate returns the direction cosines and weight of angle a of A.
func ordinate(a, A int) (mu, eta, xi, w float64) {
	// A deterministic, normalized angle set: spread polar angles over
	// the octant diagonal.
	t := (float64(a) + 0.5) / float64(A)
	mu = 0.30 + 0.65*t
	eta = 0.80 - 0.55*t
	r := mu*mu + eta*eta
	if r >= 1 {
		scale := math.Sqrt(0.98 / r)
		mu *= scale
		eta *= scale
		r = mu*mu + eta*eta
	}
	xi = math.Sqrt(1 - r)
	w = 1.0 / float64(A)
	return
}

// source returns the fixed source term of cell (i, j, k): deterministic
// and cheap so every implementation recomputes it locally.
func source(i, j, k int) float64 {
	return 0.5 + float64((i*7+j*13+k*29)%17)/17.0
}

// axisOrder returns the index sequence of axis length n in sweep
// direction s (+1 ascending, -1 descending).
func axisOrder(n, s int) []int {
	out := make([]int, n)
	for x := 0; x < n; x++ {
		if s > 0 {
			out[x] = x
		} else {
			out[x] = n - 1 - x
		}
	}
	return out
}

// xBlocks partitions the x axis into sweep-ordered blocks of size bx.
func xBlocks(nx, bx, sx int) [][]int {
	order := axisOrder(nx, sx)
	var blocks [][]int
	for off := 0; off < nx; off += bx {
		end := off + bx
		if end > nx {
			end = nx
		}
		blocks = append(blocks, order[off:end])
	}
	return blocks
}

// angleBlocks partitions the angle set into blocks of size ab.
func angleBlocks(A, ab int) [][]int {
	var blocks [][]int
	for lo := 0; lo < A; lo += ab {
		hi := lo + ab
		if hi > A {
			hi = A
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		blocks = append(blocks, idx)
	}
	return blocks
}

// sweepSlab advances one pipeline unit: it sweeps the cells
// {i ∈ xs} × {j ∈ ys (in sweep order)} × {all k} for the angles in as,
// reading the incoming ψ_y boundary from bndIn (indexed [ii][k][ai],
// ii = position of i within xs) and leaving the outgoing boundary in
// bndOut (same shape). psiX persists across units of the same octant
// sweep (indexed [j][k][ai] over the thread's slab, j relative to ylo);
// flux accumulates w·ψ (local slab, layout [(j-ylo)*nx+i]*nz+k).
func sweepSlab(p Params, oct [3]int, xs, ys, as []int, ylo int,
	bndIn, bndOut []float64, psiX, flux []float64) float64 {

	nx, nz := p.NX, p.NZ
	na := len(as)
	zs := axisOrder(nz, oct[2])

	type angleParams struct{ cx, cy, cz, denom, w float64 }
	ap := make([]angleParams, na)
	for ai, a := range as {
		mu, eta, xi, w := ordinate(a, p.Angles)
		cx, cy, cz := 2*mu, 2*eta, 2*xi
		ap[ai] = angleParams{cx, cy, cz, sigma + cx + cy + cz, w}
	}

	psiZ := make([]float64, na)
	for ii, i := range xs {
		// ψ_y enters this slab from the upstream thread (or vacuum).
		psiYrow := bndIn[ii*nz*na : (ii+1)*nz*na]
		for _, j := range ys {
			jr := j - ylo
			for zi := 0; zi < nz; zi++ {
				k := zs[zi]
				// ψ_z restarts at the k boundary of each (i, j) column.
				if zi == 0 {
					for ai := range psiZ {
						psiZ[ai] = 0
					}
				}
				s := source(i, j, k)
				fsum := 0.0
				for ai := 0; ai < na; ai++ {
					px := psiX[(jr*nz+k)*na+ai]
					py := psiYrow[k*na+ai]
					pz := psiZ[ai]
					c := &ap[ai]
					psi := (s + c.cx*px + c.cy*py + c.cz*pz) / c.denom
					psiX[(jr*nz+k)*na+ai] = 2*psi - px
					psiYrow[k*na+ai] = 2*psi - py
					psiZ[ai] = 2*psi - pz
					fsum += c.w * psi
				}
				flux[(jr*nx+i)*nz+k] += fsum
			}
		}
		copy(bndOut[ii*nz*na:(ii+1)*nz*na], psiYrow)
	}
	return float64(len(xs)*len(ys)*nz*na) * flopsPerCellAngle
}

// fluxMoments returns the slab's additive checksum moments (Σv, Σv²);
// partial moments from different slabs sum, and digest combines them.
func fluxMoments(flux []float64) (s, s2 float64) {
	for _, v := range flux {
		s += v
		s2 += v * v
	}
	return s, s2
}

// digest folds total flux moments into the run checksum.
func digest(s, s2 float64) float64 { return s + math.Sqrt(s2) }

// fluxDigest reduces a full flux array to the run checksum.
func fluxDigest(flux []float64) float64 {
	return digest(fluxMoments(flux))
}

// RunSeq executes the sequential reference sweep.
func RunSeq(p Params) apps.Result {
	m := sim.NewMeter(p.Platform)
	nx, ny, nz := p.NX, p.NY, p.NZ
	flux := make([]float64, nx*ny*nz)
	ys := make([]int, ny)
	bnd := make([]float64, p.BlockX*nz*p.AngleBlock)

	for _, oct := range octants {
		yOrder := axisOrder(ny, oct[1])
		copy(ys, yOrder)
		for _, as := range angleBlocks(p.Angles, p.AngleBlock) {
			na := len(as)
			psiX := make([]float64, ny*nz*na)
			for _, xs := range xBlocks(nx, p.BlockX, oct[0]) {
				in := bnd[:len(xs)*nz*na]
				for i := range in {
					in[i] = 0 // vacuum boundary
				}
				out := make([]float64, len(xs)*nz*na)
				m.Compute(sweepSlab(p, oct, xs, ys, as, 0, in, out, psiX, flux))
			}
		}
	}
	m.Compute(2 * float64(len(flux)))
	return apps.Result{Checksum: fluxDigest(flux), Time: m.Elapsed()}
}
