package sweep3d

import (
	"math"
	"testing"

	"repro/internal/apps"
)

func TestOrdinatesNormalized(t *testing.T) {
	for _, A := range []int{1, 2, 6, 8} {
		var wsum float64
		for a := 0; a < A; a++ {
			mu, eta, xi, w := ordinate(a, A)
			if r := mu*mu + eta*eta + xi*xi; math.Abs(r-1) > 1e-12 {
				t.Errorf("A=%d a=%d: |Ω|² = %v, want 1", A, a, r)
			}
			if mu <= 0 || eta <= 0 || xi <= 0 {
				t.Errorf("A=%d a=%d: cosines must be positive in the unit octant: %v %v %v", A, a, mu, eta, xi)
			}
			wsum += w
		}
		if math.Abs(wsum-1) > 1e-12 {
			t.Errorf("A=%d: weights sum to %v, want 1", A, wsum)
		}
	}
}

func TestAxisOrderAndBlocks(t *testing.T) {
	fwd := axisOrder(5, +1)
	rev := axisOrder(5, -1)
	for i := 0; i < 5; i++ {
		if fwd[i] != i || rev[i] != 4-i {
			t.Fatalf("axisOrder wrong: %v %v", fwd, rev)
		}
	}
	blocks := xBlocks(10, 4, +1)
	if len(blocks) != 3 || len(blocks[2]) != 2 {
		t.Fatalf("xBlocks(10,4) = %v", blocks)
	}
	total := 0
	for _, b := range xBlocks(10, 4, -1) {
		total += len(b)
	}
	if total != 10 {
		t.Fatalf("reverse blocks cover %d of 10", total)
	}
}

func TestFluxIsPositive(t *testing.T) {
	// With a positive source and vacuum boundaries every cell's scalar
	// flux must be positive.
	p := Small()
	res := RunSeq(p)
	if res.Checksum <= 0 {
		t.Fatalf("checksum %v, want positive flux digest", res.Checksum)
	}
}

func TestSeqDeterministic(t *testing.T) {
	p := Small()
	if a, b := RunSeq(p), RunSeq(p); a.Checksum != b.Checksum {
		t.Fatalf("sequential not deterministic: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestSeqBlockInvariance(t *testing.T) {
	// The pipeline blocking must not change the physics: different
	// (BlockX, AngleBlock) settings give bit-identical flux.
	base := RunSeq(Params{NX: 12, NY: 12, NZ: 12, Angles: 2, BlockX: 12, AngleBlock: 2})
	alt := RunSeq(Params{NX: 12, NY: 12, NZ: 12, Angles: 2, BlockX: 3, AngleBlock: 1})
	// Angle-blocking changes only the order of the per-cell angle sum, so
	// agreement must hold to the last few ulps.
	if err := apps.CheckClose("sweep3d/blocking", alt.Checksum, base.Checksum, 1e-13); err != nil {
		t.Fatal(err)
	}
}

func TestOMPMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4} {
		got, err := RunOMP(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("sweep3d/omp", got.Checksum, want, 1e-10); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestTmkMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{2, 3, 8} {
		got, err := RunTmk(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("sweep3d/tmk", got.Checksum, want, 1e-10); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestMPIMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4, 6} {
		got, err := RunMPI(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("sweep3d/mpi", got.Checksum, want, 1e-10); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestPipelineUsesSemaphores(t *testing.T) {
	p := Small()
	res, err := RunOMP(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("pipelined run sent no messages")
	}
}

func TestMorePipelineStagesStillCorrect(t *testing.T) {
	// Full 8-way pipeline on a mesh where slabs are a single row.
	p := Params{NX: 8, NY: 8, NZ: 8, Angles: 2, BlockX: 2, AngleBlock: 1}
	want := RunSeq(p).Checksum
	got, err := RunOMP(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.CheckClose("sweep3d/omp-deep", got.Checksum, want, 1e-10); err != nil {
		t.Error(err)
	}
}
