package sweep3d

import (
	"sync"

	"repro/internal/apps"
	"repro/internal/mpi"
)

// RunMPI executes the message-passing version: the same y-slab pipeline,
// with ψ_y boundary planes sent point-to-point to the downstream
// neighbour. The message tag encodes (octant, x-block, angle-block) so
// planes of different units never mismatch.
func RunMPI(p Params, procs int) (apps.Result, error) {
	validate(p)
	nx, ny, nz := p.NX, p.NY, p.NZ

	var mu sync.Mutex
	var checksum float64

	world := mpi.New(mpi.Config{Procs: procs, Platform: p.Platform})
	err := world.Run(func(r *mpi.Rank) {
		me, np := r.ID(), r.Procs()
		ysAll, ylo := slabOrder(ny, +1, me, np)
		flux := make([]float64, len(ysAll)*nx*nz)

		for octIdx, oct := range octants {
			ys, _ := slabOrder(ny, oct[1], me, np)
			up, down := neighbours(me, np, oct[1])
			for abIdx, as := range angleBlocks(p.Angles, p.AngleBlock) {
				na := len(as)
				psiX := make([]float64, len(ys)*nz*na)
				for xbIdx, xs := range xBlocks(nx, p.BlockX, oct[0]) {
					cnt := len(xs) * nz * na
					tag := (octIdx*maxXBlocks+xbIdx)*maxAngleBlk + abIdx + 1
					var in []float64
					if up >= 0 {
						in = r.RecvF64s(up, tag)
					} else {
						in = make([]float64, cnt)
					}
					out := make([]float64, cnt)
					r.Compute(sweepSlab(p, oct, xs, ys, as, ylo, in, out, psiX, flux))
					if down >= 0 {
						r.SendF64s(down, tag, out)
					}
				}
			}
		}

		s, s2 := fluxMoments(flux)
		r.Compute(2 * float64(len(flux)))
		tot := r.Reduce(mpi.OpSum, []float64{s, s2})
		if me == 0 {
			mu.Lock()
			checksum = digest(tot[0], tot[1])
			mu.Unlock()
		}
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := world.Switch().Stats().Snapshot()
	return apps.Result{Checksum: checksum, Time: world.MaxClock(), Messages: msgs, Bytes: bytes}, nil
}
