package water

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dsm"
)

// RunTmk executes the hand-coded TreadMarks version: one SPMD region with
// explicit barriers, per-processor partial force arrays, and node 0
// performing the sequential setup — the structure of the original
// TreadMarks Water port.
func RunTmk(p Params, procs int) (apps.Result, error) {
	n := p.NMol
	bytesArr := 8 * n * dof
	sys := dsm.New(dsm.Config{
		Procs: procs, Platform: p.Platform,
		DisableGC: p.DisableGC, GCMinRetire: p.GCMinRetire,
		GCPressure: p.GCPressure, GCPolicy: dsm.MustParseGCPolicy(p.GCPolicy),
		WireV1: p.WireV1,
	})
	defer sys.Close()
	posA := sys.MallocPage(bytesArr)
	velA := sys.MallocPage(bytesArr)
	forceA := sys.MallocPage(bytesArr)
	partBytes := core.PageRound(bytesArr)
	partials := sys.MallocPage(partBytes * procs)
	kePart := sys.MallocPage(dsm.PageSize * procs)
	out := sys.MallocPage(8)
	block := func(id int) (int, int) { return core.StaticBlock(0, n, id, procs) }

	sys.Register("water-main", func(nd *dsm.Node, _ []byte) {
		me := nd.ID()
		lo, hi := block(me)
		cnt := (hi - lo) * dof

		eval := func(doKick bool) {
			pos := make([]float64, n*dof)
			nd.ReadF64s(posA, pos)
			f := make([]float64, n*dof)
			IntraForces(pos, f, lo, hi)
			InterForcesRange(pos, f, lo, hi, n)
			nd.Compute(flopsPerIntra*float64(hi-lo) + interFlops(lo, hi, n))
			nd.WriteF64s(partials+dsm.Addr(partBytes*me), f)
			nd.Barrier()
			sum := make([]float64, cnt)
			buf := make([]float64, cnt)
			for t := 0; t < procs; t++ {
				nd.ReadF64s(partials+dsm.Addr(partBytes*t+8*lo*dof), buf)
				for i := range sum {
					sum[i] += buf[i]
				}
			}
			nd.Compute(float64(procs * cnt))
			nd.WriteF64s(forceA+dsm.Addr(8*lo*dof), sum)
			if doKick {
				vel := make([]float64, cnt)
				nd.ReadF64s(velA+dsm.Addr(8*lo*dof), vel)
				Kick(vel, sum, 0, hi-lo)
				nd.WriteF64s(velA+dsm.Addr(8*lo*dof), vel)
				nd.Compute(flopsPerKick * float64(hi-lo))
			}
			nd.Barrier()
		}

		eval(false)
		for step := 0; step < p.Steps; step++ {
			vel := make([]float64, cnt)
			f := make([]float64, cnt)
			pos := make([]float64, cnt)
			nd.ReadF64s(velA+dsm.Addr(8*lo*dof), vel)
			nd.ReadF64s(forceA+dsm.Addr(8*lo*dof), f)
			nd.ReadF64s(posA+dsm.Addr(8*lo*dof), pos)
			Kick(vel, f, 0, hi-lo)
			Drift(pos, vel, 0, hi-lo)
			nd.WriteF64s(velA+dsm.Addr(8*lo*dof), vel)
			nd.WriteF64s(posA+dsm.Addr(8*lo*dof), pos)
			nd.Compute(2 * flopsPerKick * float64(hi-lo))
			nd.Barrier() // everyone's new positions visible before eval
			eval(true)
		}

		vel := make([]float64, cnt)
		nd.ReadF64s(velA+dsm.Addr(8*lo*dof), vel)
		nd.WriteF64(kePart+dsm.Addr(dsm.PageSize*me), Kinetic(vel, 0, hi-lo))
		nd.Compute(10 * float64(hi-lo))
		nd.Barrier()
		if me == 0 {
			var ke float64
			for t := 0; t < procs; t++ {
				ke += nd.ReadF64(kePart + dsm.Addr(dsm.PageSize*t))
			}
			pos := make([]float64, n*dof)
			nd.ReadF64s(posA, pos)
			nd.WriteF64(out, Digest(pos, ke, 0, n))
		}
	})

	var checksum float64
	err := sys.Run(func(nd *dsm.Node) {
		pos, vel := InitState(p)
		nd.WriteF64s(posA, pos)
		nd.WriteF64s(velA, vel)
		nd.Compute(30 * float64(n))
		nd.RunParallel("water-main", nil)
		checksum = nd.ReadF64(out)
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := sys.Switch().Stats().Snapshot()
	return apps.DSMResult(checksum, sys.MaxClock(), msgs, bytes, sys), nil
}
