package water

import (
	"encoding/binary"
	"math"
)

func put64(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}

func get64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
