package water

import (
	"math"
	"testing"

	"repro/internal/apps"
)

func TestPairScheduleCoversEachPairOnce(t *testing.T) {
	for _, n := range []int{2, 3, 8, 9, 64} {
		seen := make(map[[2]int]int)
		for i := 0; i < n; i++ {
			PairsOf(i, n, func(j int) {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				seen[[2]int{a, b}]++
			})
		}
		want := n * (n - 1) / 2
		if len(seen) != want {
			t.Errorf("n=%d: %d distinct pairs, want %d", n, len(seen), want)
		}
		for pair, cnt := range seen {
			if cnt != 1 {
				t.Errorf("n=%d: pair %v visited %d times", n, pair, cnt)
			}
		}
	}
}

func TestPairCountMatchesSchedule(t *testing.T) {
	for _, n := range []int{2, 7, 16} {
		for i := 0; i < n; i++ {
			cnt := 0
			PairsOf(i, n, func(int) { cnt++ })
			if float64(cnt) != PairCount(i, n) {
				t.Errorf("n=%d i=%d: schedule %d vs PairCount %v", n, i, cnt, PairCount(i, n))
			}
		}
	}
}

func TestForcesAreNewtonian(t *testing.T) {
	// Total force must vanish (momentum conservation): intra and inter
	// contributions are equal-and-opposite by construction.
	p := Small()
	pos, _ := InitState(p)
	f := make([]float64, p.NMol*dof)
	IntraForces(pos, f, 0, p.NMol)
	InterForcesRange(pos, f, 0, p.NMol, p.NMol)
	var sx, sy, sz float64
	for m := 0; m < p.NMol*sites; m++ {
		sx += f[3*m]
		sy += f[3*m+1]
		sz += f[3*m+2]
	}
	if math.Abs(sx)+math.Abs(sy)+math.Abs(sz) > 1e-7 {
		t.Errorf("net force not zero: (%g, %g, %g)", sx, sy, sz)
	}
}

func TestEnergyIsBounded(t *testing.T) {
	// A short Verlet integration at small dt must not blow up.
	p := Small()
	res := RunSeq(p)
	if math.IsNaN(res.Checksum) || math.IsInf(res.Checksum, 0) {
		t.Fatalf("simulation diverged: checksum %v", res.Checksum)
	}
}

func TestSeqDeterministic(t *testing.T) {
	p := Small()
	if a, b := RunSeq(p), RunSeq(p); a.Checksum != b.Checksum {
		t.Fatalf("sequential not deterministic: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestOMPMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4} {
		got, err := RunOMP(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("water/omp", got.Checksum, want, 1e-8); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestTmkMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{2, 3, 8} {
		got, err := RunTmk(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("water/tmk", got.Checksum, want, 1e-8); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestMPIMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4, 5} {
		got, err := RunMPI(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("water/mpi", got.Checksum, want, 1e-8); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestWaterScalesWell(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Water is the paper's best-scaling application: at the default size
	// 8 processors must give a solid speedup over 1.
	p := Params{NMol: 256, Steps: 2, Seed: 31415}
	one, err := RunOMP(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunOMP(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	sp := one.Time.Seconds() / eight.Time.Seconds()
	if sp < 3 {
		t.Errorf("water speedup at 8 procs = %.2f, want >= 3", sp)
	}
}
