package water

import (
	"sync"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
)

// RunMPI executes the message-passing version: every rank keeps a private
// replica of the positions (refreshed by an allgather each step), computes
// the partial forces of its own pair block, and merges them with an
// allreduce — data and synchronization travel together, which is why MPI
// sends far fewer messages than the DSM versions in Table 2.
func RunMPI(p Params, procs int) (apps.Result, error) {
	n := p.NMol
	world := mpi.New(mpi.Config{Procs: procs, Platform: p.Platform})

	var mu sync.Mutex
	var checksum float64

	err := world.Run(func(r *mpi.Rank) {
		me, np := r.ID(), r.Procs()
		lo, hi := core.StaticBlock(0, n, me, np)
		cnt := (hi - lo) * dof

		pos, velFull := InitState(p) // deterministic: every rank builds the same state
		vel := make([]float64, cnt)
		copy(vel, velFull[lo*dof:hi*dof])
		r.Compute(30 * float64(n) / float64(np))

		force := make([]float64, cnt)
		eval := func() {
			f := make([]float64, n*dof)
			IntraForces(pos, f, lo, hi)
			InterForcesRange(pos, f, lo, hi, n)
			r.Compute(flopsPerIntra*float64(hi-lo) + interFlops(lo, hi, n))
			total := r.Allreduce(mpi.OpSum, f)
			copy(force, total[lo*dof:hi*dof])
		}

		allgatherPos := func() {
			own := make([]float64, cnt)
			copy(own, pos[lo*dof:hi*dof])
			copy(pos, mpi.BytesToF64s(r.Allgather(mpi.F64sToBytes(own))))
		}

		eval()
		for step := 0; step < p.Steps; step++ {
			Kick(vel, force, 0, hi-lo)
			myPos := pos[lo*dof : hi*dof]
			for i := range myPos {
				myPos[i] += dt * vel[i]
			}
			r.Compute(2 * flopsPerKick * float64(hi-lo))
			allgatherPos()
			eval()
			Kick(vel, force, 0, hi-lo)
			r.Compute(flopsPerKick * float64(hi-lo))
		}

		ke := r.Reduce(mpi.OpSum, []float64{Kinetic(vel, 0, hi-lo)})
		r.Compute(10 * float64(hi-lo))
		if me == 0 {
			mu.Lock()
			checksum = Digest(pos, ke[0], 0, n)
			mu.Unlock()
		}
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := world.Switch().Stats().Snapshot()
	return apps.Result{Checksum: checksum, Time: world.MaxClock(), Messages: msgs, Bytes: bytes}, nil
}
