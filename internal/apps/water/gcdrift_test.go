package water

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dsm"
)

// Regression test for the sharded-homes GC data-loss bug (the full-scale
// Water checksum drift): a page copy holding content with no notice left
// to re-deliver it — the node's own closed writes, or foreign diffs
// already applied and removed from `missing` — was flushed whenever the
// RETIRE floor covered it, but the rebuild-from-home path only guarantees
// the home reflects the LAGGED flush floor (the previous collecting
// episode). Content baked in between the two floors was silently lost:
// zeros where nothing else covered the words, ulp-stale floats where the
// refetch raced the home's own validation. The discard guard now keys on
// page.appliedVC against the flush floor.
//
// Smallest reproducing scale: NMol=256, Steps=2, 4 procs, block-cyclic
// homes (node0 homes were always exact: there flushVC == retire and the
// root purges before any departure leaves it). The failure is a genuine
// scheduling race — before the fix it fired on virtually every run, so a
// handful of repetitions is a reliable detector. The DSM shadow-memory
// oracle gives a protocol-level verdict independent of FP summation
// order; the checksum check additionally pins the end-to-end result.
func TestWaterShardedGCDrift(t *testing.T) {
	p := Params{NMol: 256, Steps: 2, Seed: 31415}
	want := RunSeq(p)
	for rep := 0; rep < 5; rep++ {
		dsm.SetDebugOracle(true)
		res, err := RunOMPCfg(p, 4, core.Config{
			Threads: 4, Backend: core.BackendNOW,
			HomePolicy: "block-cyclic",
		})
		div := dsm.OracleDiverges()
		dsm.SetDebugOracle(false)
		if err != nil {
			t.Fatal(err)
		}
		if div > 0 {
			t.Fatalf("rep %d: %d divergent shared-memory reads (DSM delivered wrong bytes)", rep, div)
		}
		if rel := (res.Checksum - want.Checksum) / want.Checksum; math.Abs(rel) > 1e-10 {
			t.Fatalf("rep %d: checksum drift rel=%g (got %.17g want %.17g)",
				rep, rel, res.Checksum, want.Checksum)
		}
	}
}
