package water

import (
	"repro/internal/apps"
	"repro/internal/core"
)

// RunOMP executes the OpenMP version on the NOW (TreadMarks) backend.
func RunOMP(p Params, procs int) (apps.Result, error) {
	return RunOMPOn(p, procs, core.BackendNOW)
}

// RunOMPOn executes the OpenMP version on the given core backend — the
// source is backend-neutral. Per Table 1, Water uses parallel do
// (intra-molecular phase), a coarse-grained parallel region for the
// inter-molecular phase ("to avoid excessive synchronization... we divide
// the molecules among the nodes and have one thread work on all the
// molecules on the same node"), and barriers. Force contributions merge
// through per-thread partial arrays separated by a barrier, the standard
// SPLASH scheme.
func RunOMPOn(p Params, procs int, backend core.BackendKind) (apps.Result, error) {
	return RunOMPCfg(p, procs, core.Config{
		Threads: procs, Platform: p.Platform, Backend: backend,
		DisableGC: p.DisableGC, GCMinRetire: p.GCMinRetire,
		GCPressure: p.GCPressure, GCPolicy: p.GCPolicy,
		WireV1: p.WireV1,
	})
}

// RunOMPCfg executes the OpenMP version with full control over the core
// configuration (home policy, barrier fan-in, …) — the entry point the
// protocol-level regression tests and ablations use.
func RunOMPCfg(p Params, procs int, cfg core.Config) (apps.Result, error) {
	return RunOMPDump(p, procs, cfg, nil)
}

// RunOMPDump is RunOMPCfg additionally returning the final position array
// through dump (when non-nil) so protocol regression tests can localize a
// divergence to specific molecules and pages, not just the folded checksum.
func RunOMPDump(p Params, procs int, cfg core.Config, dump *[]float64) (apps.Result, error) {
	n := p.NMol
	bytesArr := 8 * n * dof
	prog := core.NewProgram(cfg)
	defer prog.Close()
	posA := prog.SharedPage(bytesArr)
	velA := prog.SharedPage(bytesArr)
	forceA := prog.SharedPage(bytesArr)
	partBytes := core.PageRound(bytesArr)
	partials := prog.SharedPage(partBytes * procs)
	keRed := prog.NewReduction(core.OpSum)
	block := func(id int) (int, int) { return core.StaticBlock(0, n, id, procs) }

	// forces: full evaluation into per-thread partials, barrier, merge of
	// each thread's own slice, optional trailing half-kick (arg!=0).
	prog.RegisterRegion("forces", func(tc *core.TC) {
		doKick := tc.Args().Int() != 0
		me := tc.ThreadNum()
		lo, hi := block(me)

		pos := make([]float64, n*dof)
		tc.ReadF64s(posA, pos) // whole array: the inter phase reads every molecule
		f := make([]float64, n*dof)
		IntraForces(pos, f, lo, hi)
		InterForcesRange(pos, f, lo, hi, n)
		tc.Compute(flopsPerIntra*float64(hi-lo) + interFlops(lo, hi, n))

		tc.WriteF64s(partials+core.Addr(partBytes*me), f)
		tc.Barrier()

		// Merge own slice across all partials.
		sum := make([]float64, (hi-lo)*dof)
		buf := make([]float64, (hi-lo)*dof)
		for t := 0; t < procs; t++ {
			tc.ReadF64s(partials+core.Addr(partBytes*t+8*lo*dof), buf)
			for i := range sum {
				sum[i] += buf[i]
			}
		}
		tc.Compute(float64(procs * (hi - lo) * dof))
		tc.WriteF64s(forceA+core.Addr(8*lo*dof), sum)

		if doKick {
			vel := make([]float64, (hi-lo)*dof)
			tc.ReadF64s(velA+core.Addr(8*lo*dof), vel)
			Kick(vel, sum, 0, hi-lo)
			tc.WriteF64s(velA+core.Addr(8*lo*dof), vel)
			tc.Compute(flopsPerKick * float64(hi-lo))
		}
	})

	// kickdrift: first half-kick plus position drift for the own block
	// (parallel do over molecules).
	prog.RegisterDo("kickdrift", func(tc *core.TC, lo, hi int) {
		cnt := (hi - lo) * dof
		vel := make([]float64, cnt)
		f := make([]float64, cnt)
		pos := make([]float64, cnt)
		tc.ReadF64s(velA+core.Addr(8*lo*dof), vel)
		tc.ReadF64s(forceA+core.Addr(8*lo*dof), f)
		tc.ReadF64s(posA+core.Addr(8*lo*dof), pos)
		Kick(vel, f, 0, hi-lo)
		Drift(pos, vel, 0, hi-lo)
		tc.WriteF64s(velA+core.Addr(8*lo*dof), vel)
		tc.WriteF64s(posA+core.Addr(8*lo*dof), pos)
		tc.Compute(2 * flopsPerKick * float64(hi-lo))
	})

	// ke: kinetic energy of the own block into a scalar reduction.
	prog.RegisterDo("ke", func(tc *core.TC, lo, hi int) {
		vel := make([]float64, (hi-lo)*dof)
		tc.ReadF64s(velA+core.Addr(8*lo*dof), vel)
		keRed.Reduce(tc, Kinetic(vel, 0, hi-lo))
		tc.Compute(10 * float64(hi-lo))
	})

	var checksum float64
	err := prog.Run(func(m *core.MC) {
		// init: the master seeds positions and velocities (sequential, as
		// in the original program).
		pos, vel := InitState(p)
		m.WriteF64s(posA, pos)
		m.WriteF64s(velA, vel)
		m.Compute(30 * float64(n))
		m.Parallel("forces", core.NoArgs().Int(0)) // initial evaluation
		for step := 0; step < p.Steps; step++ {
			m.ParallelDo("kickdrift", 0, n, core.NoArgs())
			m.Parallel("forces", core.NoArgs().Int(1))
		}
		keRed.Reset(&m.TC)
		m.ParallelDo("ke", 0, n, core.NoArgs())
		final := make([]float64, n*dof)
		m.ReadF64s(posA, final)
		checksum = Digest(final, keRed.Value(&m.TC), 0, n)
		if dump != nil {
			*dump = final
		}
	})
	if err != nil {
		return apps.Result{}, err
	}
	return apps.RuntimeResult(checksum, prog), nil
}
