// Package water reproduces the paper's Water application: "Water from the
// SPLASH benchmark suite is a molecular dynamics simulation. The main data
// structure is a one-dimensional array of records in which each record
// represents a molecule. During each time step both intra- and
// inter-molecular potentials are computed. The parallel algorithm
// statically divides the array of molecules into equally sized contiguous
// blocks, assigning each block to a processor. The bulk of the
// interprocessor communication [is] from synchronization that takes place
// during the intermolecular force computation."
//
// Per Table 1 the OpenMP version uses parallel do for the intra-molecular
// phase and a coarse-grained parallel region (plus barriers and the
// paper's array-reduction extension) for the inter-molecular phase.
//
// The physics is a faithful-in-structure simplification of Water-nsquared:
// 3-site molecules, harmonic intra-molecular bonds, LJ oxygen-oxygen plus
// site-site Coulomb inter-molecular terms over all O(n²/2) pairs, velocity
// Verlet integration (the original uses a predictor-corrector; the
// substitution keeps the same data and communication pattern — see
// DESIGN.md).
package water

import (
	"math"

	"repro/internal/apps"
	"repro/internal/sim"
)

// Params configures one Water run.
type Params struct {
	// NMol is the number of molecules (SPLASH's default input is 512).
	NMol int
	// Steps is the number of time steps.
	Steps int
	// Seed drives the deterministic initial configuration.
	Seed uint64
	// Platform overrides the cost model.
	Platform *sim.Platform
	// DisableGC turns off the DSM's metadata collection (both epoch
	// sources) in the DSM-backed implementations (the GC ablation's
	// control arm).
	DisableGC bool
	// GCMinRetire sets the DSM collector's adaptive barrier/fork-episode
	// trigger threshold (see dsm.Config.GCMinRetire; 0 collects at every
	// episode).
	GCMinRetire int
	// GCPressure sets the acquire-epoch trigger threshold (see
	// dsm.Config.GCPressure; 0 = default, negative disables).
	GCPressure int
	// GCPolicy selects the per-page validate-vs-flush purge policy
	// ("", "flush", "validate-hot", "adaptive").
	GCPolicy string
	// WireV1 selects the pre-batching DSM wire protocol (see
	// dsm.Config.WireV1); the bench-wire comparison's control arm.
	WireV1 bool
}

// Default returns the paper-scale configuration: 512 molecules at 8x the
// original two-step run. Long runs stopped being metadata-bound once the
// barrier-epoch and acquire-epoch collectors landed, so the Full scale
// now exercises a genuinely long trajectory.
func Default() Params { return Params{NMol: 512, Steps: 16, Seed: 31415} }

// Small returns a test-scale configuration.
func Small() Params { return Params{NMol: 64, Steps: 2, Seed: 31415} }

// Model constants (reduced units).
const (
	sites   = 3 // O, H1, H2
	dof     = sites * 3
	massO   = 16.0
	massH   = 1.0
	dt      = 0.0005
	kBondOH = 120.0 // harmonic O-H stretch
	r0OH    = 1.0
	kBondHH = 40.0 // harmonic H1-H2 "bend" surrogate
	r0HH    = 1.6
	ljEps   = 0.2 // O-O Lennard-Jones
	ljSig   = 3.0
	qO      = -0.8 // site charges for Coulomb terms
	qH      = +0.4
)

var siteMass = [sites]float64{massO, massH, massH}
var siteCharge = [sites]float64{qO, qH, qH}

// flop estimates used for virtual-time accounting.
const (
	flopsPerPair  = 200.0 // 9 site pairs Coulomb + 1 LJ + bookkeeping
	flopsPerIntra = 90.0
	flopsPerKick  = 30.0
)

// InitState builds the deterministic initial configuration: molecules on a
// cubic lattice with seeded jitter, zero initial velocity.
func InitState(p Params) (pos, vel []float64) {
	n := p.NMol
	pos = make([]float64, n*dof)
	vel = make([]float64, n*dof)
	side := int(math.Ceil(math.Cbrt(float64(n))))
	const spacing = 4.2
	rng := sim.NewRNG(p.Seed)
	for m := 0; m < n; m++ {
		cx := float64(m%side) * spacing
		cy := float64((m/side)%side) * spacing
		cz := float64(m/(side*side)) * spacing
		jx := 0.2 * (rng.Float64() - 0.5)
		jy := 0.2 * (rng.Float64() - 0.5)
		jz := 0.2 * (rng.Float64() - 0.5)
		o := m * dof
		// O at the jittered lattice point; H's offset along x/y.
		pos[o+0], pos[o+1], pos[o+2] = cx+jx, cy+jy, cz+jz
		pos[o+3], pos[o+4], pos[o+5] = cx+jx+r0OH, cy+jy, cz+jz
		pos[o+6], pos[o+7], pos[o+8] = cx+jx-r0OH*0.3, cy+jy+r0OH*0.95, cz+jz
	}
	return pos, vel
}

// IntraForces accumulates intra-molecular forces for molecules [lo, hi)
// into f and returns the potential-energy contribution.
func IntraForces(pos, f []float64, lo, hi int) float64 {
	var pe float64
	for m := lo; m < hi; m++ {
		o := m * dof
		pe += spring(pos, f, o+0, o+3, kBondOH, r0OH)
		pe += spring(pos, f, o+0, o+6, kBondOH, r0OH)
		pe += spring(pos, f, o+3, o+6, kBondHH, r0HH)
	}
	return pe
}

// spring applies a harmonic bond between site offsets a and b.
func spring(pos, f []float64, a, b int, k, r0 float64) float64 {
	dx := pos[a] - pos[b]
	dy := pos[a+1] - pos[b+1]
	dz := pos[a+2] - pos[b+2]
	r := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if r == 0 {
		return 0
	}
	mag := -k * (r - r0) / r
	f[a] += mag * dx
	f[a+1] += mag * dy
	f[a+2] += mag * dz
	f[b] -= mag * dx
	f[b+1] -= mag * dy
	f[b+2] -= mag * dz
	d := r - r0
	return 0.5 * k * d * d
}

// PairForce accumulates the inter-molecular interaction of molecules i and
// j (LJ between oxygens, Coulomb between all site pairs) into f and
// returns the potential energy.
func PairForce(pos, f []float64, i, j int) float64 {
	var pe float64
	oi, oj := i*dof, j*dof
	// Lennard-Jones between the two oxygens.
	{
		dx := pos[oi] - pos[oj]
		dy := pos[oi+1] - pos[oj+1]
		dz := pos[oi+2] - pos[oj+2]
		r2 := dx*dx + dy*dy + dz*dz
		s2 := ljSig * ljSig / r2
		s6 := s2 * s2 * s2
		pe += 4 * ljEps * (s6*s6 - s6)
		mag := 24 * ljEps * (2*s6*s6 - s6) / r2
		f[oi] += mag * dx
		f[oi+1] += mag * dy
		f[oi+2] += mag * dz
		f[oj] -= mag * dx
		f[oj+1] -= mag * dy
		f[oj+2] -= mag * dz
	}
	// Coulomb between all 9 site pairs.
	for a := 0; a < sites; a++ {
		for b := 0; b < sites; b++ {
			pa, pb := oi+3*a, oj+3*b
			dx := pos[pa] - pos[pb]
			dy := pos[pa+1] - pos[pb+1]
			dz := pos[pa+2] - pos[pb+2]
			r2 := dx*dx + dy*dy + dz*dz
			r := math.Sqrt(r2)
			q := siteCharge[a] * siteCharge[b]
			pe += q / r
			mag := q / (r2 * r)
			f[pa] += mag * dx
			f[pa+1] += mag * dy
			f[pa+2] += mag * dz
			f[pb] -= mag * dx
			f[pb+1] -= mag * dy
			f[pb+2] -= mag * dz
		}
	}
	return pe
}

// PairsOf calls visit(j) for every partner of molecule i under the
// balanced wraparound half-shell schedule: each unordered pair appears
// exactly once across all i.
func PairsOf(i, n int, visit func(j int)) {
	half := (n - 1) / 2
	for k := 1; k <= half; k++ {
		visit((i + k) % n)
	}
	if n%2 == 0 && i < n/2 {
		visit(i + n/2)
	}
}

// PairCount returns the number of pairs molecule i owns under PairsOf.
func PairCount(i, n int) float64 {
	c := float64((n - 1) / 2)
	if n%2 == 0 && i < n/2 {
		c++
	}
	return c
}

// InterForcesRange accumulates inter-molecular forces for the pairs owned
// by molecules [lo, hi) into f and returns the potential energy.
func InterForcesRange(pos, f []float64, lo, hi, n int) float64 {
	var pe float64
	for i := lo; i < hi; i++ {
		PairsOf(i, n, func(j int) {
			pe += PairForce(pos, f, i, j)
		})
	}
	return pe
}

// Kick applies a half-step velocity update for molecules [lo, hi).
func Kick(vel, f []float64, lo, hi int) {
	for m := lo; m < hi; m++ {
		for s := 0; s < sites; s++ {
			b := m*dof + 3*s
			h := 0.5 * dt / siteMass[s]
			vel[b] += h * f[b]
			vel[b+1] += h * f[b+1]
			vel[b+2] += h * f[b+2]
		}
	}
}

// Drift applies a full-step position update for molecules [lo, hi).
func Drift(pos, vel []float64, lo, hi int) {
	for i := lo * dof; i < hi*dof; i++ {
		pos[i] += dt * vel[i]
	}
}

// Kinetic returns the kinetic energy of molecules [lo, hi).
func Kinetic(vel []float64, lo, hi int) float64 {
	var ke float64
	for m := lo; m < hi; m++ {
		for s := 0; s < sites; s++ {
			b := m*dof + 3*s
			v2 := vel[b]*vel[b] + vel[b+1]*vel[b+1] + vel[b+2]*vel[b+2]
			ke += 0.5 * siteMass[s] * v2
		}
	}
	return ke
}

// Digest folds positions and kinetic energy into the run checksum.
func Digest(pos []float64, ke float64, lo, hi int) float64 {
	var s float64
	for i := lo * dof; i < hi*dof; i++ {
		s += math.Abs(pos[i])
	}
	return s + ke
}

// interFlops returns the flop charge of the pairs owned by [lo, hi).
func interFlops(lo, hi, n int) float64 {
	var c float64
	for i := lo; i < hi; i++ {
		c += PairCount(i, n)
	}
	return c * flopsPerPair
}

// RunSeq executes the sequential reference implementation.
func RunSeq(p Params) apps.Result {
	n := p.NMol
	m := sim.NewMeter(p.Platform)
	pos, vel := InitState(p)
	m.Compute(30 * float64(n))

	f := make([]float64, n*dof)
	eval := func() {
		for i := range f {
			f[i] = 0
		}
		IntraForces(pos, f, 0, n)
		InterForcesRange(pos, f, 0, n, n)
		m.Compute(flopsPerIntra*float64(n) + interFlops(0, n, n))
	}
	eval()
	for step := 0; step < p.Steps; step++ {
		Kick(vel, f, 0, n)
		Drift(pos, vel, 0, n)
		m.Compute(2 * flopsPerKick * float64(n))
		eval()
		Kick(vel, f, 0, n)
		m.Compute(flopsPerKick * float64(n))
	}
	ke := Kinetic(vel, 0, n)
	m.Compute(10 * float64(n))
	return apps.Result{Checksum: Digest(pos, ke, 0, n), Time: m.Elapsed()}
}
