package barnes

import (
	"sync"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
)

// RunMPI executes the message-passing version: the octree build is
// replicated on every rank over a replicated position array (the standard
// message-passing Barnes-Hut trade — redundant computation instead of
// fine-grained sharing), refreshed by an allgather each step. Only each
// rank's own velocity block is maintained.
func RunMPI(p Params, procs int) (apps.Result, error) {
	n := p.NBody
	world := mpi.New(mpi.Config{Procs: procs, Platform: p.Platform})

	var mu sync.Mutex
	var checksum float64

	err := world.Run(func(r *mpi.Rank) {
		me, np := r.ID(), r.Procs()
		lo, hi := core.StaticBlock(0, n, me, np)
		cnt := 3 * (hi - lo)

		pos, velFull, mass := InitBodies(p) // deterministic: same on every rank
		vel := make([]float64, cnt)
		copy(vel, velFull[3*lo:3*hi])
		r.Compute(20 * float64(n) / float64(np))

		acc := make([]float64, cnt)
		eval := func() {
			t := BuildTree(pos, mass, n)
			r.Compute(buildFlops(t)) // replicated on every rank
			inter := AccelRange(t, pos, acc, lo, hi)
			r.Compute(flopsPerInteract * float64(inter))
		}

		allgatherPos := func() {
			own := make([]float64, cnt)
			copy(own, pos[3*lo:3*hi])
			copy(pos, mpi.BytesToF64s(r.Allgather(mpi.F64sToBytes(own))))
		}

		eval()
		for step := 0; step < p.Steps; step++ {
			Kick(vel, acc, 0, hi-lo)
			myPos := pos[3*lo : 3*hi]
			Drift(myPos, vel, 0, hi-lo)
			r.Compute(2 * flopsPerKick * float64(hi-lo))
			allgatherPos()
			eval()
			Kick(vel, acc, 0, hi-lo)
			r.Compute(flopsPerKick * float64(hi-lo))
		}

		ke := Kinetic(vel, mass[lo:hi], 0, hi-lo)
		part := Digest(pos[3*lo:3*hi], ke, 0, hi-lo)
		r.Compute(10 * float64(hi-lo))
		sums := r.Reduce(mpi.OpSum, []float64{part})
		if me == 0 {
			mu.Lock()
			checksum = sums[0]
			mu.Unlock()
		}
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := world.Switch().Stats().Snapshot()
	return apps.Result{Checksum: checksum, Time: world.MaxClock(), Messages: msgs, Bytes: bytes}, nil
}
