// Package barnes adds the SPLASH Barnes-Hut N-body simulation, the
// irregular-sharing workload of the TreadMarks literature: gravitating
// bodies interact through an octree whose traversal touches a
// data-dependent, unpredictable subset of the body array. On a page-based
// DSM this is the stress case — the body arrays are deliberately packed
// (not page-padded per processor), so neighbouring processors' position
// writes false-share boundary pages, and the tree itself moves through
// shared memory as one bulk object rebuilt every step.
//
// Parallelization follows the classic DSM port: bodies are statically
// blocked across processors; node 0 rebuilds the octree each step and
// publishes it; after a barrier every processor computes forces for its
// own block by traversing the (read-shared) tree, then integrates and
// writes back its own positions. The MPI version replicates the tree
// build on every rank and allgathers positions each step.
//
// All numeric kernels are pure functions of the body arrays (see
// tree.go), so the four implementations compute bitwise-identical
// per-body results and are cross-checked via the usual checksum.
package barnes

import (
	"math"

	"repro/internal/apps"
	"repro/internal/sim"
)

// Params configures one Barnes-Hut run.
type Params struct {
	// NBody is the number of bodies.
	NBody int
	// Steps is the number of leapfrog time steps.
	Steps int
	// Seed drives the deterministic initial configuration.
	Seed uint64
	// Platform overrides the cost model.
	Platform *sim.Platform
}

// Default returns the paper-scale configuration: 4096 bodies at 8x the
// original two-step run (long runs stopped being metadata-bound once the
// DSM's metadata collectors landed).
func Default() Params { return Params{NBody: 4096, Steps: 16, Seed: 16180} }

// Small returns a test-scale configuration.
func Small() Params { return Params{NBody: 96, Steps: 2, Seed: 16180} }

// Model constants (reduced units).
const (
	theta = 0.6  // opening angle
	eps   = 0.05 // gravitational softening
	dt    = 0.01
)

// flop estimates used for virtual-time accounting.
const (
	flopsPerInteract = 30.0 // one body-cell interaction
	flopsPerBuild    = 12.0 // one tree insertion/finalization step
	flopsPerKick     = 10.0
)

// InitBodies builds the deterministic initial configuration: bodies
// uniform in a unit-ish cube with seeded masses and small random
// velocities.
func InitBodies(p Params) (pos, vel, mass []float64) {
	n := p.NBody
	pos = make([]float64, 3*n)
	vel = make([]float64, 3*n)
	mass = make([]float64, n)
	rng := sim.NewRNG(p.Seed)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			pos[3*i+d] = rng.Float64()*2 - 1
			vel[3*i+d] = 0.1 * (rng.Float64() - 0.5)
		}
		mass[i] = (0.5 + rng.Float64()) / float64(n)
	}
	return pos, vel, mass
}

// AccelRange computes Barnes-Hut accelerations for bodies [lo, hi) into
// acc (packed [x y z], indexed from lo) and returns the interaction count.
func AccelRange(t *Tree, pos, acc []float64, lo, hi int) int {
	total := 0
	for i := lo; i < hi; i++ {
		ax, ay, az, inter := t.Accel(pos, i, theta, eps)
		b := 3 * (i - lo)
		acc[b], acc[b+1], acc[b+2] = ax, ay, az
		total += inter
	}
	return total
}

// Kick applies a half-step velocity update for bodies [lo, hi) of vel
// (acc indexed from lo).
func Kick(vel, acc []float64, lo, hi int) {
	for i := 3 * lo; i < 3*hi; i++ {
		vel[i] += 0.5 * dt * acc[i-3*lo]
	}
}

// Drift applies a full-step position update for bodies [lo, hi).
func Drift(pos, vel []float64, lo, hi int) {
	for i := 3 * lo; i < 3*hi; i++ {
		pos[i] += dt * vel[i]
	}
}

// Kinetic returns the kinetic energy of bodies [lo, hi).
func Kinetic(vel, mass []float64, lo, hi int) float64 {
	var ke float64
	for i := lo; i < hi; i++ {
		b := 3 * i
		v2 := vel[b]*vel[b] + vel[b+1]*vel[b+1] + vel[b+2]*vel[b+2]
		ke += 0.5 * mass[i] * v2
	}
	return ke
}

// Digest folds positions and kinetic energy of bodies [lo, hi) into the
// run checksum partial.
func Digest(pos []float64, ke float64, lo, hi int) float64 {
	var s float64
	for i := 3 * lo; i < 3*hi; i++ {
		s += math.Abs(pos[i])
	}
	return s + ke
}

// buildFlops returns the flop charge of one tree build.
func buildFlops(t *Tree) float64 { return flopsPerBuild * float64(t.Work) }

// RunSeq executes the sequential reference implementation.
func RunSeq(p Params) apps.Result {
	n := p.NBody
	m := sim.NewMeter(p.Platform)
	pos, vel, mass := InitBodies(p)
	m.Compute(20 * float64(n))

	acc := make([]float64, 3*n)
	eval := func() {
		t := BuildTree(pos, mass, n)
		m.Compute(buildFlops(t))
		inter := AccelRange(t, pos, acc, 0, n)
		m.Compute(flopsPerInteract * float64(inter))
	}
	eval()
	for step := 0; step < p.Steps; step++ {
		Kick(vel, acc, 0, n)
		Drift(pos, vel, 0, n)
		m.Compute(2 * flopsPerKick * float64(n))
		eval()
		Kick(vel, acc, 0, n)
		m.Compute(flopsPerKick * float64(n))
	}
	ke := Kinetic(vel, mass, 0, n)
	m.Compute(10 * float64(n))
	return apps.Result{Checksum: Digest(pos, ke, 0, n), Time: m.Elapsed()}
}
