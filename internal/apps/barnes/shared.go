package barnes

import "repro/internal/core"

// Helpers shared by the OpenMP and TreadMarks versions: the octree
// travels through DSM memory as one flat float64 image (children and body
// indices are exact in float64 far beyond any tree size used here), and
// the body arrays are deliberately packed — block boundaries false-share
// pages, which is the sharing pattern this application exists to stress.

// cellF64s is the per-cell footprint of the tree image: 8 scalars, 8
// child refs, 1 body ref.
const cellF64s = 17

// maxCells bounds the shared tree buffer; a uniform distribution builds
// ~2n cells, so 8n leaves generous slack.
func maxCells(n int) int { return 8*n + 64 }

// treeBytes sizes the shared tree buffer (one leading count slot).
func treeBytes(n int) int { return 8 * (1 + maxCells(n)*cellF64s) }

// encodeTree flattens a finalized tree into a float64 image.
func encodeTree(t *Tree) []float64 {
	out := make([]float64, 1+len(t.Cells)*cellF64s)
	out[0] = float64(len(t.Cells))
	for i := range t.Cells {
		c := &t.Cells[i]
		b := 1 + i*cellF64s
		out[b+0], out[b+1], out[b+2], out[b+3] = c.CX, c.CY, c.CZ, c.Half
		out[b+4], out[b+5], out[b+6], out[b+7] = c.Mass, c.MX, c.MY, c.MZ
		for o := 0; o < 8; o++ {
			out[b+8+o] = float64(c.Child[o])
		}
		out[b+16] = float64(c.Body)
	}
	return out
}

// decodeTree rebuilds a Tree from its float64 image.
func decodeTree(img []float64) *Tree {
	nc := int(img[0])
	t := &Tree{Cells: make([]Cell, nc)}
	for i := 0; i < nc; i++ {
		c := &t.Cells[i]
		b := 1 + i*cellF64s
		c.CX, c.CY, c.CZ, c.Half = img[b+0], img[b+1], img[b+2], img[b+3]
		c.Mass, c.MX, c.MY, c.MZ = img[b+4], img[b+5], img[b+6], img[b+7]
		for o := 0; o < 8; o++ {
			c.Child[o] = int32(img[b+8+o])
		}
		c.Body = int32(img[b+16])
	}
	return t
}

// writeTree publishes a tree image into shared memory at base.
func writeTree(nd core.Worker, base core.Addr, t *Tree, n int) {
	if len(t.Cells) > maxCells(n) {
		panic("barnes: shared tree buffer overflow")
	}
	nd.WriteF64s(base, encodeTree(t))
}

// readTree loads the tree image published at base.
func readTree(nd core.Worker, base core.Addr) *Tree {
	nc := int(nd.ReadF64(base))
	img := make([]float64, 1+nc*cellF64s)
	nd.ReadF64s(base, img)
	return decodeTree(img)
}
