package barnes

import "math"

// The Barnes-Hut octree. Everything here is a pure function of the body
// arrays: given identical positions and masses, every implementation
// builds bitwise-identical trees and computes bitwise-identical
// accelerations, which is what lets the four versions be cross-checked
// against one another.

// nilRef marks an empty child slot or "no body".
const nilRef = -1

// Cell is one octree node, either internal (Body < 0) or a leaf holding a
// single body. Fields are float64-encodable so trees can travel through
// shared memory (see shared.go).
type Cell struct {
	CX, CY, CZ float64 // cube center
	Half       float64 // half the cube edge
	Mass       float64 // total mass below (after Finalize)
	MX, MY, MZ float64 // center of mass (after Finalize)
	Child      [8]int32
	Body       int32
}

// Tree is a built and finalized Barnes-Hut octree.
type Tree struct {
	Cells []Cell
	// Work counts insertion and finalization steps, the flop surrogate of
	// the build phase.
	Work int
}

// newCell appends an empty cell cube and returns its index.
func (t *Tree) newCell(cx, cy, cz, half float64) int32 {
	idx := int32(len(t.Cells))
	c := Cell{CX: cx, CY: cy, CZ: cz, Half: half, Body: nilRef}
	for i := range c.Child {
		c.Child[i] = nilRef
	}
	t.Cells = append(t.Cells, c)
	return idx
}

// octant returns the child index of point (x, y, z) within cell c.
func octant(c *Cell, x, y, z float64) int {
	o := 0
	if x >= c.CX {
		o |= 1
	}
	if y >= c.CY {
		o |= 2
	}
	if z >= c.CZ {
		o |= 4
	}
	return o
}

// childCube returns the center and half-size of child octant o of cell c.
func childCube(c *Cell, o int) (cx, cy, cz, half float64) {
	half = c.Half / 2
	cx, cy, cz = c.CX-half, c.CY-half, c.CZ-half
	if o&1 != 0 {
		cx = c.CX + half
	}
	if o&2 != 0 {
		cy = c.CY + half
	}
	if o&4 != 0 {
		cz = c.CZ + half
	}
	return
}

// BuildTree constructs the octree over bodies 0..n-1 (pos is the packed
// [x y z] array) and finalizes masses and centers of mass. Bodies are
// inserted in index order and children finalized in octant order, so the
// result is deterministic.
func BuildTree(pos, mass []float64, n int) *Tree {
	t := &Tree{Cells: make([]Cell, 0, 2*n+1)}
	// Root cube: the bounding box blown up to a cube with a little slack.
	minC, maxC := math.Inf(1), math.Inf(-1)
	for i := 0; i < 3*n; i++ {
		if pos[i] < minC {
			minC = pos[i]
		}
		if pos[i] > maxC {
			maxC = pos[i]
		}
	}
	mid := (minC + maxC) / 2
	half := (maxC-minC)/2 + 1e-9
	t.newCell(mid, mid, mid, half)
	for i := 0; i < n; i++ {
		t.insert(0, int32(i), pos)
	}
	t.finalize(0, pos, mass)
	return t
}

// insert places body b into the subtree rooted at cell ci. Pointers into
// t.Cells are never held across newCell (append may reallocate).
func (t *Tree) insert(ci, b int32, pos []float64) {
	x, y, z := pos[3*b], pos[3*b+1], pos[3*b+2]
	for depth := 0; ; depth++ {
		if depth > 128 {
			panic("barnes: tree depth exceeded (coincident bodies?)")
		}
		t.Work++
		if c := &t.Cells[ci]; c.Body == nilRef && t.childCount(ci) == 0 {
			// Empty leaf (the fresh root before the first body).
			c.Body = b
			return
		}
		if c := &t.Cells[ci]; c.Body != nilRef {
			// Occupied leaf: push the resident body down one level.
			old := c.Body
			c.Body = nilRef
			oo := octant(c, pos[3*old], pos[3*old+1], pos[3*old+2])
			cx, cy, cz, h := childCube(c, oo)
			nc := t.newCell(cx, cy, cz, h)
			t.Cells[nc].Body = old
			t.Cells[ci].Child[oo] = nc
		}
		c := &t.Cells[ci]
		o := octant(c, x, y, z)
		if c.Child[o] == nilRef {
			cx, cy, cz, h := childCube(c, o)
			nc := t.newCell(cx, cy, cz, h)
			t.Cells[nc].Body = b
			t.Cells[ci].Child[o] = nc
			return
		}
		ci = c.Child[o]
	}
}

func (t *Tree) childCount(ci int32) int {
	cnt := 0
	for _, ch := range t.Cells[ci].Child {
		if ch != nilRef {
			cnt++
		}
	}
	return cnt
}

// finalize computes Mass and center of mass bottom-up, visiting children
// in octant order for determinism.
func (t *Tree) finalize(ci int32, pos, mass []float64) {
	c := &t.Cells[ci]
	if c.Body != nilRef {
		b := c.Body
		c.Mass = mass[b]
		c.MX, c.MY, c.MZ = pos[3*b], pos[3*b+1], pos[3*b+2]
		t.Work++
		return
	}
	var m, mx, my, mz float64
	for _, ch := range c.Child {
		if ch == nilRef {
			continue
		}
		t.finalize(ch, pos, mass)
		cc := &t.Cells[ch]
		m += cc.Mass
		mx += cc.Mass * cc.MX
		my += cc.Mass * cc.MY
		mz += cc.Mass * cc.MZ
	}
	c = &t.Cells[ci] // reacquire: finalize may not append, but be safe
	c.Mass = m
	if m > 0 {
		c.MX, c.MY, c.MZ = mx/m, my/m, mz/m
	}
	t.Work++
}

// Accel returns the Barnes-Hut acceleration on body i under opening angle
// theta and softening eps, plus the number of body-cell interactions
// evaluated (the flop surrogate of the force phase). The traversal order
// (children in octant order, iterative with an explicit stack pushed in
// reverse) is fixed, so the floating-point result is deterministic.
func (t *Tree) Accel(pos []float64, i int, theta, eps float64) (ax, ay, az float64, interactions int) {
	x, y, z := pos[3*i], pos[3*i+1], pos[3*i+2]
	eps2 := eps * eps
	stack := make([]int32, 0, 64)
	stack = append(stack, 0)
	for len(stack) > 0 {
		ci := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := &t.Cells[ci]
		if c.Body == int32(i) {
			continue // self
		}
		dx := c.MX - x
		dy := c.MY - y
		dz := c.MZ - z
		r2 := dx*dx + dy*dy + dz*dz
		if c.Body == nilRef && 4*c.Half*c.Half >= theta*theta*r2 {
			// Too close to approximate: open the cell. Push children in
			// reverse so they pop in octant order.
			for o := 7; o >= 0; o-- {
				if ch := c.Child[o]; ch != nilRef {
					stack = append(stack, ch)
				}
			}
			continue
		}
		if c.Mass == 0 {
			continue
		}
		interactions++
		r2 += eps2
		inv := 1 / (r2 * math.Sqrt(r2))
		s := c.Mass * inv
		ax += s * dx
		ay += s * dy
		az += s * dz
	}
	return ax, ay, az, interactions
}
