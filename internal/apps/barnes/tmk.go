package barnes

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dsm"
)

// RunTmk executes the hand-coded TreadMarks version: the same
// master-builds-tree, barrier, everyone-traverses structure written
// directly against the DSM, with per-processor digest partials combined by
// node 0 after the last barrier.
func RunTmk(p Params, procs int) (apps.Result, error) {
	n := p.NBody
	sys := dsm.New(dsm.Config{Procs: procs, Platform: p.Platform})
	defer sys.Close()
	posA := sys.MallocPage(8 * 3 * n)
	velA := sys.MallocPage(8 * 3 * n)
	massA := sys.MallocPage(8 * n)
	treeA := sys.MallocPage(treeBytes(n))
	digPart := sys.MallocPage(dsm.PageSize * procs)
	out := sys.MallocPage(8)

	sys.Register("nbody-main", func(nd *dsm.Node, _ []byte) {
		me := nd.ID()
		lo, hi := core.StaticBlock(0, n, me, procs)
		cnt := 3 * (hi - lo)

		mass := make([]float64, n)
		nd.ReadF64s(massA, mass)
		vel := make([]float64, cnt)
		nd.ReadF64s(velA+dsm.Addr(8*3*lo), vel)
		pos := make([]float64, 3*n)
		acc := make([]float64, cnt)

		eval := func() {
			nd.ReadF64s(posA, pos)
			if me == 0 {
				t := BuildTree(pos, mass, n)
				nd.Compute(buildFlops(t))
				writeTree(nd, treeA, t, n)
			}
			nd.Barrier()
			t := readTree(nd, treeA)
			inter := AccelRange(t, pos, acc, lo, hi)
			nd.Compute(flopsPerInteract * float64(inter))
		}

		eval()
		for step := 0; step < p.Steps; step++ {
			Kick(vel, acc, 0, hi-lo)
			myPos := pos[3*lo : 3*hi]
			Drift(myPos, vel, 0, hi-lo)
			nd.WriteF64s(posA+dsm.Addr(8*3*lo), myPos)
			nd.Compute(2 * flopsPerKick * float64(hi-lo))
			nd.Barrier()
			eval()
			Kick(vel, acc, 0, hi-lo)
			nd.Compute(flopsPerKick * float64(hi-lo))
		}

		ke := Kinetic(vel, mass[lo:hi], 0, hi-lo)
		nd.WriteF64(digPart+dsm.Addr(dsm.PageSize*me), Digest(pos[3*lo:3*hi], ke, 0, hi-lo))
		nd.Compute(10 * float64(hi-lo))
		nd.Barrier()
		if me == 0 {
			var total float64
			for t := 0; t < procs; t++ {
				total += nd.ReadF64(digPart + dsm.Addr(dsm.PageSize*t))
			}
			nd.WriteF64(out, total)
		}
	})

	var checksum float64
	err := sys.Run(func(nd *dsm.Node) {
		pos, vel, mass := InitBodies(p)
		nd.WriteF64s(posA, pos)
		nd.WriteF64s(velA, vel)
		nd.WriteF64s(massA, mass)
		nd.Compute(20 * float64(n))
		nd.RunParallel("nbody-main", nil)
		checksum = nd.ReadF64(out)
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := sys.Switch().Stats().Snapshot()
	return apps.DSMResult(checksum, sys.MaxClock(), msgs, bytes, sys), nil
}
