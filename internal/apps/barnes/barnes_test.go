package barnes

import (
	"math"
	"testing"

	"repro/internal/apps"
)

func TestTreeConservesMass(t *testing.T) {
	p := Small()
	pos, _, mass := InitBodies(p)
	tr := BuildTree(pos, mass, p.NBody)
	var want float64
	for _, m := range mass {
		want += m
	}
	root := tr.Cells[0]
	if math.Abs(root.Mass-want) > 1e-12*float64(p.NBody) {
		t.Fatalf("root mass %v, want %v", root.Mass, want)
	}
}

func TestTreeHoldsEveryBodyOnce(t *testing.T) {
	p := Small()
	pos, _, mass := InitBodies(p)
	tr := BuildTree(pos, mass, p.NBody)
	seen := make(map[int32]int)
	for i := range tr.Cells {
		if b := tr.Cells[i].Body; b != nilRef {
			seen[b]++
		}
	}
	if len(seen) != p.NBody {
		t.Fatalf("%d distinct bodies in leaves, want %d", len(seen), p.NBody)
	}
	for b, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("body %d appears in %d leaves", b, cnt)
		}
	}
}

func TestTreeImageRoundTrips(t *testing.T) {
	p := Small()
	pos, _, mass := InitBodies(p)
	tr := BuildTree(pos, mass, p.NBody)
	got := decodeTree(encodeTree(tr))
	if len(got.Cells) != len(tr.Cells) {
		t.Fatalf("%d cells after round trip, want %d", len(got.Cells), len(tr.Cells))
	}
	for i := range tr.Cells {
		if got.Cells[i] != tr.Cells[i] {
			t.Fatalf("cell %d changed in round trip: %+v vs %+v", i, got.Cells[i], tr.Cells[i])
		}
	}
}

// TestAccelApproximatesDirectSum compares the theta=0.6 traversal against
// the exact O(n²) softened sum: the opening criterion bounds the relative
// force error to a few percent.
func TestAccelApproximatesDirectSum(t *testing.T) {
	p := Small()
	pos, _, mass := InitBodies(p)
	n := p.NBody
	tr := BuildTree(pos, mass, n)
	for _, i := range []int{0, 7, n / 2, n - 1} {
		ax, ay, az, _ := tr.Accel(pos, i, theta, eps)
		var ex, ey, ez float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := pos[3*j] - pos[3*i]
			dy := pos[3*j+1] - pos[3*i+1]
			dz := pos[3*j+2] - pos[3*i+2]
			r2 := dx*dx + dy*dy + dz*dz + eps*eps
			inv := 1 / (r2 * math.Sqrt(r2))
			ex += mass[j] * inv * dx
			ey += mass[j] * inv * dy
			ez += mass[j] * inv * dz
		}
		bh := math.Sqrt(ax*ax + ay*ay + az*az)
		exact := math.Sqrt(ex*ex + ey*ey + ez*ez)
		diff := math.Sqrt((ax-ex)*(ax-ex) + (ay-ey)*(ay-ey) + (az-ez)*(az-ez))
		if diff > 0.08*exact {
			t.Errorf("body %d: BH accel %v deviates %.1f%% from direct sum %v", i, bh, 100*diff/exact, exact)
		}
	}
}

// TestImplementationsMatchSequential cross-checks all three parallel
// versions against the sequential checksum at a small size (the full grid
// runs in the harness equivalence suite).
func TestImplementationsMatchSequential(t *testing.T) {
	p := Params{NBody: 48, Steps: 2, Seed: 5}
	want := RunSeq(p).Checksum
	for name, run := range map[string]func(Params, int) (apps.Result, error){
		"omp": RunOMP, "tmk": RunTmk, "mpi": RunMPI,
	} {
		for _, procs := range []int{1, 3, 4} {
			got, err := run(p, procs)
			if err != nil {
				t.Fatalf("%s/p%d: %v", name, procs, err)
			}
			if err := apps.CheckClose(name, got.Checksum, want, 1e-10); err != nil {
				t.Errorf("p%d: %v", procs, err)
			}
		}
	}
}
