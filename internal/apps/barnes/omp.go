package barnes

import (
	"repro/internal/apps"
	"repro/internal/core"
)

// RunOMP executes the OpenMP version on the NOW (TreadMarks) backend.
func RunOMP(p Params, procs int) (apps.Result, error) {
	return RunOMPOn(p, procs, core.BackendNOW)
}

// RunOMPOn executes the OpenMP version on the given core backend — the
// source is backend-neutral. One coarse parallel region in which
// the master thread rebuilds the octree each step and publishes it through
// shared memory, a barrier orders the publication, and every thread then
// traverses the read-shared tree for its contiguous body block. The packed
// body arrays are updated in place, so block boundaries false-share pages
// — the irregular-application stress case for the page-based DSM.
func RunOMPOn(p Params, procs int, backend core.BackendKind) (apps.Result, error) {
	n := p.NBody
	prog := core.NewProgram(core.Config{Threads: procs, Platform: p.Platform, Backend: backend})
	defer prog.Close()
	posA := prog.SharedPage(8 * 3 * n)
	velA := prog.SharedPage(8 * 3 * n)
	massA := prog.SharedPage(8 * n)
	treeA := prog.SharedPage(treeBytes(n))
	digestRed := prog.NewReduction(core.OpSum)

	prog.RegisterRegion("nbody", func(tc *core.TC) {
		nd := tc.Worker()
		me := tc.ThreadNum()
		lo, hi := core.StaticBlock(0, n, me, procs)
		cnt := 3 * (hi - lo)

		mass := make([]float64, n)
		nd.ReadF64s(massA, mass)
		vel := make([]float64, cnt)
		nd.ReadF64s(velA+core.Addr(8*3*lo), vel)
		pos := make([]float64, 3*n)
		acc := make([]float64, cnt)

		eval := func() {
			nd.ReadF64s(posA, pos) // whole array: the traversal is irregular
			if me == 0 {
				t := BuildTree(pos, mass, n)
				tc.Compute(buildFlops(t))
				writeTree(nd, treeA, t, n)
			}
			tc.Barrier()
			t := readTree(nd, treeA)
			inter := AccelRange(t, pos, acc, lo, hi)
			tc.Compute(flopsPerInteract * float64(inter))
		}

		eval()
		for step := 0; step < p.Steps; step++ {
			Kick(vel, acc, 0, hi-lo)
			myPos := pos[3*lo : 3*hi]
			Drift(myPos, vel, 0, hi-lo)
			nd.WriteF64s(posA+core.Addr(8*3*lo), myPos)
			tc.Compute(2 * flopsPerKick * float64(hi-lo))
			tc.Barrier() // everyone's new positions visible before rebuild
			eval()
			Kick(vel, acc, 0, hi-lo)
			tc.Compute(flopsPerKick * float64(hi-lo))
		}

		ke := Kinetic(vel, mass[lo:hi], 0, hi-lo)
		digestRed.Reduce(tc, Digest(pos[3*lo:3*hi], ke, 0, hi-lo))
		tc.Compute(10 * float64(hi-lo))
	})

	var checksum float64
	err := prog.Run(func(m *core.MC) {
		pos, vel, mass := InitBodies(p)
		nd := m.Worker()
		nd.WriteF64s(posA, pos)
		nd.WriteF64s(velA, vel)
		nd.WriteF64s(massA, mass)
		m.Compute(20 * float64(n))
		digestRed.Reset(&m.TC)
		m.Parallel("nbody", core.NoArgs())
		checksum = digestRed.Value(&m.TC)
	})
	if err != nil {
		return apps.Result{}, err
	}
	return apps.RuntimeResult(checksum, prog), nil
}
