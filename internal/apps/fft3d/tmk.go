package fft3d

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dsm"
)

// RunTmk executes the hand-coded TreadMarks version: a single SPMD
// parallel region forked once, with explicit Tmk_barriers between phases
// (the style of the original TreadMarks applications the paper compares
// against, as opposed to the compiler's fork-join per parallel do).
func RunTmk(p Params, procs int) (apps.Result, error) {
	n := p.N
	pts := n * n * n
	maxSlab := (n + procs - 1) / procs
	maxBlock := maxSlab * maxSlab * n
	sys := dsm.New(dsm.Config{
		Procs:     procs,
		HeapBytes: heapFor(pts) + blocksBytesNeeded(procs, maxBlock),
		Platform:  p.Platform,
	})
	defer sys.Close()
	u := sys.MallocPage(cBytes * pts)
	w := sys.MallocPage(cBytes * pts)
	vw := sys.MallocPage(cBytes * pts)
	xb := newXferBlocks(sys.MallocPage(blocksBytesNeeded(procs, maxBlock)), procs, maxBlock)
	// Per-node checksum partials (a page apart to avoid false sharing)
	// plus the global accumulator written by node 0.
	partials := sys.MallocPage(dsm.PageSize * procs)
	total := sys.MallocPage(16)

	slab := func(id int) (int, int) { return core.StaticBlock(0, n, id, procs) }

	sys.Register("fft-main", func(nd *dsm.Node, _ []byte) {
		me := nd.ID()
		zlo, zhi := slab(me)
		xlo, xhi := slab(me)

		// Initialize own z-slab.
		for z := zlo; z < zhi; z++ {
			plane := make([]complex128, n*n)
			for i := range plane {
				re, im := initValue(p.Seed, z*n*n+i)
				plane[i] = complex(re, im)
			}
			writeComplex(nd, u+dsm.Addr(cBytes*z*n*n), plane)
		}
		nd.Compute(10 * float64((zhi-zlo)*n*n))

		// Forward 2D FFTs on own planes (no barrier needed: planes are
		// still private to their initializer).
		for z := zlo; z < zhi; z++ {
			plane := readComplex(nd, u+dsm.Addr(cBytes*z*n*n), n*n)
			nd.Compute(fft2D(plane, n, -1))
			writeComplex(nd, u+dsm.Addr(cBytes*z*n*n), plane)
		}

		// Blocked global transpose, then z-direction FFTs.
		packForward(nd, u, xb, me, n, slab)
		nd.Compute(2 * float64((zhi-zlo)*n*n))
		nd.Barrier()
		unpackForward(nd, w, xb, me, n, slab)
		nd.Compute(2 * float64((xhi-xlo)*n*n))
		for x := xlo; x < xhi; x++ {
			for y := 0; y < n; y++ {
				pen := readComplex(nd, w+dsm.Addr(cBytes*(x*n+y)*n), n)
				fft(pen, -1)
				writeComplex(nd, w+dsm.Addr(cBytes*(x*n+y)*n), pen)
			}
		}
		nd.Compute(float64((xhi-xlo)*n) * fftFlops(n))
		// The staging slots are about to be reused by packBackward; the
		// barrier orders that reuse after every unpackForward read (slot
		// reuse without synchronization would be a data race).
		nd.Barrier()

		for t := 1; t <= p.Iters; t++ {
			// Evolve + inverse z FFTs on own x-slab (w is preserved so
			// the next iteration can reuse it).
			for kx := xlo; kx < xhi; kx++ {
				s := readComplex(nd, w+dsm.Addr(cBytes*kx*n*n), n*n)
				for ky := 0; ky < n; ky++ {
					for kz := 0; kz < n; kz++ {
						s[ky*n+kz] *= complex(evolveFactor(kx, ky, kz, n, t), 0)
					}
					fft(s[ky*n:(ky+1)*n], +1)
				}
				writeComplex(nd, vw+dsm.Addr(cBytes*kx*n*n), s)
			}
			nd.Compute(25*float64((xhi-xlo)*n*n) + float64((xhi-xlo)*n)*fftFlops(n))

			// Blocked transpose back.
			packBackward(nd, vw, xb, me, n, slab)
			nd.Compute(2 * float64((xhi-xlo)*n*n))
			nd.Barrier()
			unpackBackward(nd, u, xb, me, n, slab)
			nd.Compute(2 * float64((zhi-zlo)*n*n))

			// Inverse 2D FFTs and normalization on own z-slab.
			scale := 1 / float64(pts)
			for z := zlo; z < zhi; z++ {
				plane := readComplex(nd, u+dsm.Addr(cBytes*z*n*n), n*n)
				nd.Compute(fft2D(plane, n, +1))
				for i := range plane {
					plane[i] *= complex(scale, 0)
				}
				writeComplex(nd, u+dsm.Addr(cBytes*z*n*n), plane)
			}
			nd.Compute(2 * float64((zhi-zlo)*n*n))

			// Checksum partials, then node 0 accumulates.
			re, im := checksumPartial(nd, u, n, zlo, zhi)
			base := partials + dsm.Addr(dsm.PageSize*me)
			nd.WriteF64(base, re)
			nd.WriteF64(base+8, im)
			nd.Barrier()
			if me == 0 {
				var sre, sim2 float64
				for i := 0; i < procs; i++ {
					b := partials + dsm.Addr(dsm.PageSize*i)
					sre += nd.ReadF64(b)
					sim2 += nd.ReadF64(b + 8)
				}
				nd.WriteF64(total, nd.ReadF64(total)+gridChecksum(sre, sim2))
			}
			nd.Barrier() // staging blocks stable before next iteration
		}
	})

	var checksum float64
	err := sys.Run(func(nd *dsm.Node) {
		nd.RunParallel("fft-main", nil)
		checksum = nd.ReadF64(total)
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := sys.Switch().Stats().Snapshot()
	return apps.DSMResult(checksum, sys.MaxClock(), msgs, bytes, sys), nil
}
