package fft3d

import (
	"sync"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
)

// RunMPI executes the message-passing version: each rank privately owns a
// z-slab of the spatial grid and an x-slab of the frequency grid; the
// global transpose is an MPI all-to-all — "both OpenMP and TreadMarks
// send more messages and data than MPI" (Section 6) largely because this
// all-to-all moves each byte exactly once.
func RunMPI(p Params, procs int) (apps.Result, error) {
	n := p.N
	world := mpi.New(mpi.Config{Procs: procs, Platform: p.Platform})

	var mu sync.Mutex
	var checksum float64

	err := world.Run(func(r *mpi.Rank) {
		me, np := r.ID(), r.Procs()
		zlo, zhi := core.StaticBlock(0, n, me, np)
		xlo, xhi := core.StaticBlock(0, n, me, np)
		myZ := zhi - zlo
		myX := xhi - xlo

		// uSlab[zz][y][x]: spatial z-slab. wSlab[xx][y][z]: frequency
		// x-slab. Both private rank memory.
		uSlab := make([]complex128, myZ*n*n)
		wSlab := make([]complex128, myX*n*n)
		vSlab := make([]complex128, myX*n*n)

		for zz := 0; zz < myZ; zz++ {
			for i := 0; i < n*n; i++ {
				re, im := initValue(p.Seed, (zlo+zz)*n*n+i)
				uSlab[zz*n*n+i] = complex(re, im)
			}
		}
		r.Compute(10 * float64(myZ*n*n))

		for zz := 0; zz < myZ; zz++ {
			r.Compute(fft2D(uSlab[zz*n*n:(zz+1)*n*n], n, -1))
		}

		// Global transpose u[z][y][x] -> w[x][y][z] via all-to-all.
		transposeMPI := func(src []complex128, srcLo, srcCnt int, dst []complex128, dstLo, dstCnt int) {
			chunks := make([][]byte, np)
			for d := 0; d < np; d++ {
				dlo, dhi := core.StaticBlock(0, n, d, np)
				buf := make([]float64, 0, 2*srcCnt*n*(dhi-dlo))
				for s := 0; s < srcCnt; s++ {
					for y := 0; y < n; y++ {
						for x := dlo; x < dhi; x++ {
							v := src[(s*n+y)*n+x]
							buf = append(buf, real(v), imag(v))
						}
					}
				}
				chunks[d] = f64bytes(buf)
			}
			got := r.Alltoall(chunks)
			for d := 0; d < np; d++ {
				dlo, dhi := core.StaticBlock(0, n, d, np)
				vals := bytesF64(got[d])
				i := 0
				for s := 0; s < dhi-dlo; s++ { // source's slab indices
					for y := 0; y < n; y++ {
						for x := 0; x < dstCnt; x++ {
							dst[(x*n+y)*n+(dlo+s)] = complex(vals[i], vals[i+1])
							i += 2
						}
					}
				}
			}
			r.Compute(4 * float64(srcCnt*n*n)) // pack+unpack
		}
		transposeMPI(uSlab, zlo, myZ, wSlab, xlo, myX)

		for pen := 0; pen < myX*n; pen++ {
			fft(wSlab[pen*n:(pen+1)*n], -1)
		}
		r.Compute(float64(myX*n) * fftFlops(n))

		for t := 1; t <= p.Iters; t++ {
			for xx := 0; xx < myX; xx++ {
				for ky := 0; ky < n; ky++ {
					for kz := 0; kz < n; kz++ {
						f := evolveFactor(xlo+xx, ky, kz, n, t)
						vSlab[(xx*n+ky)*n+kz] = wSlab[(xx*n+ky)*n+kz] * complex(f, 0)
					}
					fft(vSlab[(xx*n+ky)*n:(xx*n+ky+1)*n], +1)
				}
			}
			r.Compute(25*float64(myX*n*n) + float64(myX*n)*fftFlops(n))

			// Transpose back w[x][y][z] -> u[z][y][x] (roles swapped).
			back := make([]complex128, myZ*n*n)
			chunks := make([][]byte, np)
			for d := 0; d < np; d++ {
				dlo, dhi := core.StaticBlock(0, n, d, np)
				buf := make([]float64, 0, 2*myX*n*(dhi-dlo))
				for xx := 0; xx < myX; xx++ {
					for y := 0; y < n; y++ {
						for z := dlo; z < dhi; z++ {
							v := vSlab[(xx*n+y)*n+z]
							buf = append(buf, real(v), imag(v))
						}
					}
				}
				chunks[d] = f64bytes(buf)
			}
			got := r.Alltoall(chunks)
			for d := 0; d < np; d++ {
				dlo, dhi := core.StaticBlock(0, n, d, np)
				vals := bytesF64(got[d])
				i := 0
				for xx := 0; xx < dhi-dlo; xx++ {
					for y := 0; y < n; y++ {
						for zz := 0; zz < myZ; zz++ {
							back[(zz*n+y)*n+(dlo+xx)] = complex(vals[i], vals[i+1])
							i += 2
						}
					}
				}
			}
			r.Compute(4 * float64(myZ*n*n))

			scale := 1 / float64(n*n*n)
			for zz := 0; zz < myZ; zz++ {
				plane := back[zz*n*n : (zz+1)*n*n]
				r.Compute(fft2D(plane, n, +1))
				for i := range plane {
					plane[i] *= complex(scale, 0)
				}
			}
			r.Compute(2 * float64(myZ*n*n))

			// Checksum: local samples, reduced at rank 0.
			var re, im float64
			for j := 1; j <= checksumTerms; j++ {
				x, y, z := checksumIndices(j, n)
				if z < zlo || z >= zhi {
					continue
				}
				v := back[((z-zlo)*n+y)*n+x]
				re += real(v)
				im += imag(v)
			}
			r.Compute(10 * checksumTerms / float64(np))
			sum := r.Reduce(mpi.OpSum, []float64{re, im})
			if me == 0 {
				mu.Lock()
				checksum += gridChecksum(sum[0], sum[1])
				mu.Unlock()
			}
		}
	})
	if err != nil {
		return apps.Result{}, err
	}
	msgs, bytes := world.Switch().Stats().Snapshot()
	return apps.Result{Checksum: checksum, Time: world.MaxClock(), Messages: msgs, Bytes: bytes}, nil
}

func f64bytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		putF64(b[8*i:], x)
	}
	return b
}

func bytesF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = getF64(b[8*i:])
	}
	return out
}
