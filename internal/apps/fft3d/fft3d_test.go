package fft3d

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/apps"
)

func TestFFTRoundTrip(t *testing.T) {
	a := make([]complex128, 64)
	orig := make([]complex128, len(a))
	for i := range a {
		a[i] = complex(float64(i%7)-3, float64(i%5)-2)
		orig[i] = a[i]
	}
	fft(a, -1)
	fft(a, +1)
	for i := range a {
		got := a[i] / complex(float64(len(a)), 0)
		if cmplx.Abs(got-orig[i]) > 1e-9 {
			t.Fatalf("round trip elem %d: %v != %v", i, got, orig[i])
		}
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	a := make([]complex128, 16)
	a[0] = 1
	fft(a, -1)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT elem %d = %v, want 1", i, v)
		}
	}
}

func TestFFTKnownSinusoid(t *testing.T) {
	// A pure complex exponential concentrates in one bin.
	n := 32
	k := 5
	a := make([]complex128, n)
	for i := range a {
		ang := 2 * math.Pi * float64(k*i) / float64(n)
		a[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	fft(a, -1)
	for i, v := range a {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want magnitude %v", i, v, want)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=12")
		}
	}()
	fft(make([]complex128, 12), -1)
}

func TestTransposeInverse(t *testing.T) {
	n := 8
	u := make([]complex128, n*n*n)
	for i := range u {
		u[i] = complex(float64(i), -float64(i))
	}
	w := make([]complex128, n*n*n)
	back := make([]complex128, n*n*n)
	transpose(u, w, n)
	transposeBack(w, back, n)
	for i := range u {
		if u[i] != back[i] {
			t.Fatalf("transpose round trip broken at %d", i)
		}
	}
}

func TestSeqDeterministic(t *testing.T) {
	p := Small()
	a := RunSeq(p)
	b := RunSeq(p)
	if a.Checksum != b.Checksum {
		t.Fatalf("sequential run not deterministic: %v vs %v", a.Checksum, b.Checksum)
	}
	if a.Checksum == 0 {
		t.Fatal("checksum is zero — no work happened")
	}
	if a.Time <= 0 {
		t.Fatal("sequential time not accounted")
	}
}

func TestOMPMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4} {
		got, err := RunOMP(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("fft3d/omp", got.Checksum, want, 1e-9); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestTmkMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 3, 4} {
		got, err := RunTmk(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("fft3d/tmk", got.Checksum, want, 1e-9); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestMPIMatchesSeq(t *testing.T) {
	p := Small()
	want := RunSeq(p).Checksum
	for _, procs := range []int{1, 2, 4} {
		got, err := RunMPI(p, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := apps.CheckClose("fft3d/mpi", got.Checksum, want, 1e-9); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestParallelSpeedsUp(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run timing test")
	}
	// Communication dominates tiny grids, so speedup is only expected at
	// a realistic size; n=32 with 8 processors must beat 1 processor.
	p := Params{N: 32, Iters: 2, Seed: 271828}
	one, err := RunOMP(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunOMP(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if eight.Time >= one.Time {
		t.Errorf("OMP at 8 procs (%v) not faster than 1 proc (%v)", eight.Time, one.Time)
	}
	if eight.Messages == 0 {
		t.Error("parallel run sent no messages")
	}
	// One processor must be within a few percent of sequential (fork
	// overhead only): the single-node fast path of the DSM.
	seq := RunSeq(p)
	if ratio := one.Time.Seconds() / seq.Time.Seconds(); ratio > 1.10 {
		t.Errorf("1-proc OMP is %.2fx sequential, want <= 1.10x", ratio)
	}
}

func TestMPISendsLessDataThanDSM(t *testing.T) {
	// The paper's core Table 2 observation.
	p := Small()
	omp, err := RunOMP(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	mpiRes, err := RunMPI(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mpiRes.Bytes >= omp.Bytes {
		t.Errorf("MPI bytes (%d) should be below OpenMP/DSM bytes (%d)", mpiRes.Bytes, omp.Bytes)
	}
}
