package fft3d

import (
	"repro/internal/apps"
	"repro/internal/core"
)

// RunOMP executes the OpenMP version on the NOW (TreadMarks) backend.
func RunOMP(p Params, procs int) (apps.Result, error) {
	return RunOMPOn(p, procs, core.BackendNOW)
}

// RunOMPOn executes the OpenMP version on the given core backend — the
// source is backend-neutral. Every phase is a data-parallel region
// (Table 1: "parallel do" / synchronization "none" — the implicit
// barrier at region end is the only synchronization), matching the paper's
// description of "local computation and a global transpose, both expressed
// as data parallel operations". The global transpose is blocked: owners
// pack contiguous per-destination blocks into a shared staging area; after
// the region boundary, destinations bulk-read whole blocks.
func RunOMPOn(p Params, procs int, backend core.BackendKind) (apps.Result, error) {
	n := p.N
	pts := n * n * n
	maxSlab := (n + procs - 1) / procs
	maxBlock := maxSlab * maxSlab * n
	prog := core.NewProgram(core.Config{
		Threads:   procs,
		HeapBytes: heapFor(pts) + blocksBytesNeeded(procs, maxBlock),
		Platform:  p.Platform,
		Backend:   backend,
	})
	defer prog.Close()
	u := prog.SharedPage(cBytes * pts)  // spatial, [z][y][x]
	w := prog.SharedPage(cBytes * pts)  // frequency, [kx][ky][kz]
	vw := prog.SharedPage(cBytes * pts) // evolved frequency copy
	xb := newXferBlocks(prog.SharedPage(blocksBytesNeeded(procs, maxBlock)), procs, maxBlock)
	redRe := prog.NewReduction(core.OpSum)
	redIm := prog.NewReduction(core.OpSum)
	slab := func(id int) (int, int) { return core.StaticBlock(0, n, id, procs) }

	prog.RegisterDo("init", func(tc *core.TC, zlo, zhi int) {
		for z := zlo; z < zhi; z++ {
			plane := make([]complex128, n*n)
			for i := range plane {
				re, im := initValue(p.Seed, z*n*n+i)
				plane[i] = complex(re, im)
			}
			writeComplex(tc.Worker(), u+core.Addr(cBytes*z*n*n), plane)
		}
		tc.Compute(10 * float64((zhi-zlo)*n*n))
	})

	prog.RegisterDo("fwd2d", func(tc *core.TC, zlo, zhi int) {
		for z := zlo; z < zhi; z++ {
			plane := readComplex(tc.Worker(), u+core.Addr(cBytes*z*n*n), n*n)
			tc.Compute(fft2D(plane, n, -1))
			writeComplex(tc.Worker(), u+core.Addr(cBytes*z*n*n), plane)
		}
	})

	prog.RegisterRegion("packfwd", func(tc *core.TC) {
		packForward(tc.Worker(), u, xb, tc.ThreadNum(), n, slab)
		zlo, zhi := slab(tc.ThreadNum())
		tc.Compute(2 * float64((zhi-zlo)*n*n))
	})

	prog.RegisterRegion("unpackfwd", func(tc *core.TC) {
		unpackForward(tc.Worker(), w, xb, tc.ThreadNum(), n, slab)
		xlo, xhi := slab(tc.ThreadNum())
		tc.Compute(2 * float64((xhi-xlo)*n*n))
	})

	prog.RegisterDo("fftz", func(tc *core.TC, xlo, xhi int) {
		for x := xlo; x < xhi; x++ {
			for y := 0; y < n; y++ {
				pen := readComplex(tc.Worker(), w+core.Addr(cBytes*(x*n+y)*n), n)
				fft(pen, -1)
				writeComplex(tc.Worker(), w+core.Addr(cBytes*(x*n+y)*n), pen)
			}
		}
		tc.Compute(float64((xhi-xlo)*n) * fftFlops(n))
	})

	prog.RegisterDo("evolve", func(tc *core.TC, xlo, xhi int) {
		t := tc.Args().Int()
		for kx := xlo; kx < xhi; kx++ {
			s := readComplex(tc.Worker(), w+core.Addr(cBytes*kx*n*n), n*n)
			for ky := 0; ky < n; ky++ {
				for kz := 0; kz < n; kz++ {
					s[ky*n+kz] *= complex(evolveFactor(kx, ky, kz, n, t), 0)
				}
			}
			writeComplex(tc.Worker(), vw+core.Addr(cBytes*kx*n*n), s)
		}
		tc.Compute(25 * float64((xhi-xlo)*n*n))
	})

	prog.RegisterDo("ifftz", func(tc *core.TC, xlo, xhi int) {
		for x := xlo; x < xhi; x++ {
			for y := 0; y < n; y++ {
				pen := readComplex(tc.Worker(), vw+core.Addr(cBytes*(x*n+y)*n), n)
				fft(pen, +1)
				writeComplex(tc.Worker(), vw+core.Addr(cBytes*(x*n+y)*n), pen)
			}
		}
		tc.Compute(float64((xhi-xlo)*n) * fftFlops(n))
	})

	prog.RegisterRegion("packback", func(tc *core.TC) {
		packBackward(tc.Worker(), vw, xb, tc.ThreadNum(), n, slab)
		xlo, xhi := slab(tc.ThreadNum())
		tc.Compute(2 * float64((xhi-xlo)*n*n))
	})

	prog.RegisterRegion("unpackback", func(tc *core.TC) {
		unpackBackward(tc.Worker(), u, xb, tc.ThreadNum(), n, slab)
		zlo, zhi := slab(tc.ThreadNum())
		tc.Compute(2 * float64((zhi-zlo)*n*n))
	})

	prog.RegisterDo("inv2d", func(tc *core.TC, zlo, zhi int) {
		scale := 1 / float64(pts)
		for z := zlo; z < zhi; z++ {
			plane := readComplex(tc.Worker(), u+core.Addr(cBytes*z*n*n), n*n)
			tc.Compute(fft2D(plane, n, +1))
			for i := range plane {
				plane[i] *= complex(scale, 0)
			}
			writeComplex(tc.Worker(), u+core.Addr(cBytes*z*n*n), plane)
		}
		tc.Compute(2 * float64((zhi-zlo)*n*n))
	})

	prog.RegisterDo("checksum", func(tc *core.TC, zlo, zhi int) {
		re, im := checksumPartial(tc.Worker(), u, n, zlo, zhi)
		redRe.Reduce(tc, re)
		redIm.Reduce(tc, im)
		tc.Compute(10 * checksumTerms / float64(tc.NumThreads()))
	})

	var checksum float64
	err := prog.Run(func(m *core.MC) {
		m.ParallelDo("init", 0, n, core.NoArgs())
		m.ParallelDo("fwd2d", 0, n, core.NoArgs())
		m.Parallel("packfwd", core.NoArgs())
		m.Parallel("unpackfwd", core.NoArgs())
		m.ParallelDo("fftz", 0, n, core.NoArgs())
		for t := 1; t <= p.Iters; t++ {
			m.ParallelDo("evolve", 0, n, core.NoArgs().Int(t))
			m.ParallelDo("ifftz", 0, n, core.NoArgs())
			m.Parallel("packback", core.NoArgs())
			m.Parallel("unpackback", core.NoArgs())
			m.ParallelDo("inv2d", 0, n, core.NoArgs())
			redRe.Reset(&m.TC)
			redIm.Reset(&m.TC)
			m.ParallelDo("checksum", 0, n, core.NoArgs())
			checksum += gridChecksum(redRe.Value(&m.TC), redIm.Value(&m.TC))
		}
	})
	if err != nil {
		return apps.Result{}, err
	}
	return apps.RuntimeResult(checksum, prog), nil
}

// heapFor sizes the shared heap for three complex grids plus slack.
func heapFor(pts int) int {
	need := 3*cBytes*pts + (64 << 12)
	const minHeap = 8 << 20
	if need < minHeap {
		return minHeap
	}
	return need
}
