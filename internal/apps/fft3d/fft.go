// Package fft3d reproduces the paper's 3D-FFT application: "3D-FFT from
// the NAS benchmark suite solves a partial differential equation using
// three dimensional forward and inverse FFT. The program has three shared
// arrays of data elements and an array of checksums. The computation is
// decomposed so that every iteration includes local computation and a
// global transpose, with both expressed as data parallel operations."
//
// The OpenMP version expresses the data parallelism with parallel do
// (Table 1 lists no other synchronization directive: the implicit barrier
// at the end of each parallel do is the only synchronization).
package fft3d

import "math"

// fft performs an in-place radix-2 Cooley-Tukey transform of a (whose
// length must be a power of two); sign = -1 for the forward transform,
// +1 for the inverse. The inverse is unnormalized; callers divide by n³
// once after a full 3D inverse.
func fft(a []complex128, sign float64) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("fft3d: length must be a power of two")
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length >> 1
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// fftFlops is the standard 5·n·log2(n) operation count of one 1D FFT.
func fftFlops(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}

// fft2D transforms an n×n plane stored row-major in buf (first along
// rows/x, then along columns/y), returning the flop count charged.
func fft2D(buf []complex128, n int, sign float64) float64 {
	for y := 0; y < n; y++ {
		fft(buf[y*n:(y+1)*n], sign)
	}
	col := make([]complex128, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y] = buf[y*n+x]
		}
		fft(col, sign)
		for y := 0; y < n; y++ {
			buf[y*n+x] = col[y]
		}
	}
	return 2 * float64(n) * fftFlops(n)
}
