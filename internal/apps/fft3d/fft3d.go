package fft3d

import (
	"math"
	"math/cmplx"

	"repro/internal/apps"
	"repro/internal/sim"
)

// Params configures one 3D-FFT run (a NAS-FT style PDE solve).
type Params struct {
	// N is the grid edge (N³ complex points); must be a power of two.
	N int
	// Iters is the number of evolution steps (NAS FT does several; the
	// paper's table shows a small iteration count).
	Iters int
	// Seed drives the deterministic initial condition.
	Seed uint64
	// Platform overrides the cost model (nil = default).
	Platform *sim.Platform
}

// Default returns the paper-scale configuration used by the harness
// (64³ grid — a NOW-sized NAS class between S and A).
func Default() Params { return Params{N: 64, Iters: 2, Seed: 271828} }

// Small returns a test-scale configuration.
func Small() Params { return Params{N: 16, Iters: 2, Seed: 271828} }

const alpha = 1e-6

// initValue returns the deterministic initial condition at linear index
// idx, independent of which node computes it.
func initValue(seed uint64, idx int) (re, im float64) {
	r := sim.NewRNG(seed + uint64(idx)*0x9E3779B97F4A7C15)
	return 2*r.Float64() - 1, 2*r.Float64() - 1
}

// evolveFactor is the frequency-space Green's function exp(-4π²αt·|k̄|²)
// with wavenumbers folded to [-n/2, n/2).
func evolveFactor(kx, ky, kz, n, t int) float64 {
	fold := func(k int) float64 {
		k = (k + n/2) % n
		return float64(k - n/2)
	}
	x, y, z := fold(kx), fold(ky), fold(kz)
	return math.Exp(-4 * math.Pi * math.Pi * alpha * float64(t) * (x*x + y*y + z*z))
}

// checksumIndices yields the NAS-style sample coordinates for term j.
func checksumIndices(j, n int) (x, y, z int) {
	return j % n, (3 * j) % n, (5 * j) % n
}

const checksumTerms = 1024

// RunSeq executes the sequential reference implementation and returns the
// accumulated checksum magnitude across iterations.
func RunSeq(p Params) apps.Result {
	n := p.N
	m := sim.NewMeter(p.Platform)
	u := make([]complex128, n*n*n) // spatial, [z][y][x]
	w := make([]complex128, n*n*n) // frequency, [kx][ky][kz]

	for idx := range u {
		re, im := initValue(p.Seed, idx)
		u[idx] = complex(re, im)
	}
	m.Compute(10 * float64(n*n*n))

	// Forward transform: 2D per z-plane, transpose, 1D along z.
	for z := 0; z < n; z++ {
		m.Compute(fft2D(u[z*n*n:(z+1)*n*n], n, -1))
	}
	transpose(u, w, n)
	m.Compute(2 * float64(n*n*n))
	for pen := 0; pen < n*n; pen++ {
		fft(w[pen*n:(pen+1)*n], -1)
	}
	m.Compute(float64(n*n) * fftFlops(n))

	var checksum float64
	v := make([]complex128, n*n*n)
	vw := make([]complex128, n*n*n)
	for t := 1; t <= p.Iters; t++ {
		// Evolve in frequency space (w layout is [kx][ky][kz]).
		for kx := 0; kx < n; kx++ {
			for ky := 0; ky < n; ky++ {
				for kz := 0; kz < n; kz++ {
					f := evolveFactor(kx, ky, kz, n, t)
					vw[(kx*n+ky)*n+kz] = w[(kx*n+ky)*n+kz] * complex(f, 0)
				}
			}
		}
		m.Compute(25 * float64(n*n*n))

		// Inverse: 1D along kz, transpose back, 2D per plane, normalize.
		for pen := 0; pen < n*n; pen++ {
			fft(vw[pen*n:(pen+1)*n], +1)
		}
		m.Compute(float64(n*n) * fftFlops(n))
		transposeBack(vw, v, n)
		m.Compute(2 * float64(n*n*n))
		scale := 1 / float64(n*n*n)
		for z := 0; z < n; z++ {
			plane := v[z*n*n : (z+1)*n*n]
			m.Compute(fft2D(plane, n, +1))
			for i := range plane {
				plane[i] *= complex(scale, 0)
			}
		}
		m.Compute(2 * float64(n*n*n))

		checksum += checksumValue(v, n)
		m.Compute(10 * checksumTerms)
	}
	return apps.Result{Checksum: checksum, Time: m.Elapsed()}
}

// transpose copies u[z][y][x] into w[x][y][z].
func transpose(u, w []complex128, n int) {
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			base := (z*n + y) * n
			for x := 0; x < n; x++ {
				w[(x*n+y)*n+z] = u[base+x]
			}
		}
	}
}

// transposeBack copies w[x][y][z] into u[z][y][x].
func transposeBack(w, u []complex128, n int) {
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			base := (x*n + y) * n
			for z := 0; z < n; z++ {
				u[(z*n+y)*n+x] = w[base+z]
			}
		}
	}
}

// checksumValue sums the NAS sample points of the spatial field.
func checksumValue(v []complex128, n int) float64 {
	var s complex128
	for j := 1; j <= checksumTerms; j++ {
		x, y, z := checksumIndices(j, n)
		s += v[(z*n+y)*n+x]
	}
	return cmplx.Abs(s)
}
