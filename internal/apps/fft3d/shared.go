package fft3d

import (
	"math"

	"repro/internal/core"
)

// Helpers shared by the OpenMP and TreadMarks versions: complex grids
// live in shared memory as (re, im) float64 pairs, 16 bytes per point.
// Every helper takes a core.Worker, which both *dsm.Node (TreadMarks)
// and the OpenMP thread context's Worker() satisfy, so one set of layout
// routines serves every backend.

const cBytes = 16

// readComplex bulk-reads cnt complex values starting at a.
func readComplex(n core.Worker, a core.Addr, cnt int) []complex128 {
	buf := make([]float64, 2*cnt)
	n.ReadF64s(a, buf)
	out := make([]complex128, cnt)
	for i := range out {
		out[i] = complex(buf[2*i], buf[2*i+1])
	}
	return out
}

// writeComplex bulk-writes vals starting at a.
func writeComplex(n core.Worker, a core.Addr, vals []complex128) {
	buf := make([]float64, 2*len(vals))
	for i, v := range vals {
		buf[2*i] = real(v)
		buf[2*i+1] = imag(v)
	}
	n.WriteF64s(a, buf)
}

// readC reads one complex value at linear element index idx of array a.
func readC(n core.Worker, a core.Addr, idx int) complex128 {
	return complex(n.ReadF64(a+core.Addr(cBytes*idx)), n.ReadF64(a+core.Addr(cBytes*idx+8)))
}

// writeC writes one complex value at linear element index idx of array a.
func writeC(n core.Worker, a core.Addr, idx int, v complex128) {
	n.WriteF64(a+core.Addr(cBytes*idx), real(v))
	n.WriteF64(a+core.Addr(cBytes*idx+8), imag(v))
}

// The global transpose on the DSM is blocked, as efficient page-based DSM
// FT codes were written: the source-slab owner packs, for every
// destination thread, a contiguous block of the elements that thread will
// need; after a barrier the destination reads whole blocks (bulk,
// page-friendly) and unpacks into its own slab. This moves each byte once
// instead of pulling every source page to every node.

// xferBlocks describes the shared staging buffer of a blocked transpose:
// P×P blocks, each page-aligned so that no two writers share a page.
type xferBlocks struct {
	base       core.Addr
	procs      int
	blockBytes int // rounded up to a page multiple
}

// blocksBytesNeeded returns the staging buffer size for P procs when each
// (src,dst) block holds at most maxElems complex values.
func blocksBytesNeeded(procs, maxElems int) int {
	bb := core.PageRound(cBytes * maxElems)
	return procs * procs * bb
}

func newXferBlocks(base core.Addr, procs, maxElems int) *xferBlocks {
	return &xferBlocks{base: base, procs: procs, blockBytes: core.PageRound(cBytes * maxElems)}
}

// addr returns the shared address of block (src → dst).
func (xb *xferBlocks) addr(src, dst int) core.Addr {
	return xb.base + core.Addr((src*xb.procs+dst)*xb.blockBytes)
}

// packForward packs this thread's z-slab of u for every destination:
// block(me→d) = u[z][y][x] for z in my slab, y over all, x in d's slab,
// in (z, y, x) order.
func packForward(node core.Worker, u core.Addr, xb *xferBlocks, me, n int, slab func(int) (int, int)) {
	zlo, zhi := slab(me)
	for d := 0; d < xb.procs; d++ {
		dlo, dhi := slab(d)
		vals := make([]complex128, 0, (zhi-zlo)*n*(dhi-dlo))
		for z := zlo; z < zhi; z++ {
			for y := 0; y < n; y++ {
				row := readComplex(node, u+core.Addr(cBytes*((z*n+y)*n+dlo)), dhi-dlo)
				vals = append(vals, row...)
			}
		}
		writeComplex(node, xb.addr(me, d), vals)
	}
}

// unpackForward builds this thread's x-slab of w from the staged blocks:
// w[x][y][z] for x in my slab (assembled privately, written in one
// contiguous store — the slab is contiguous in w's [x][y][z] layout).
func unpackForward(node core.Worker, w core.Addr, xb *xferBlocks, me, n int, slab func(int) (int, int)) {
	xlo, xhi := slab(me)
	myX := xhi - xlo
	out := make([]complex128, myX*n*n)
	for s := 0; s < xb.procs; s++ {
		slo, shi := slab(s)
		vals := readComplex(node, xb.addr(s, me), (shi-slo)*n*myX)
		i := 0
		for z := slo; z < shi; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < myX; x++ {
					out[(x*n+y)*n+z] = vals[i]
					i++
				}
			}
		}
	}
	writeComplex(node, w+core.Addr(cBytes*xlo*n*n), out)
}

// packBackward packs this thread's x-slab of vw for every destination
// z-slab owner: block(me→d) = vw[x][y][z] for x in my slab, z in d's slab,
// in (x, y, z) order.
func packBackward(node core.Worker, vw core.Addr, xb *xferBlocks, me, n int, slab func(int) (int, int)) {
	xlo, xhi := slab(me)
	for d := 0; d < xb.procs; d++ {
		dlo, dhi := slab(d)
		vals := make([]complex128, 0, (xhi-xlo)*n*(dhi-dlo))
		for x := xlo; x < xhi; x++ {
			for y := 0; y < n; y++ {
				row := readComplex(node, vw+core.Addr(cBytes*((x*n+y)*n+dlo)), dhi-dlo)
				vals = append(vals, row...)
			}
		}
		writeComplex(node, xb.addr(me, d), vals)
	}
}

// unpackBackward builds this thread's z-slab of u from the staged blocks:
// u[z][y][x] for z in my slab (assembled privately, stored contiguously).
func unpackBackward(node core.Worker, u core.Addr, xb *xferBlocks, me, n int, slab func(int) (int, int)) {
	zlo, zhi := slab(me)
	myZ := zhi - zlo
	out := make([]complex128, myZ*n*n)
	for s := 0; s < xb.procs; s++ {
		slo, shi := slab(s)
		vals := readComplex(node, xb.addr(s, me), (shi-slo)*n*myZ)
		i := 0
		for x := slo; x < shi; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < myZ; z++ {
					out[(z*n+y)*n+x] = vals[i]
					i++
				}
			}
		}
	}
	writeComplex(node, u+core.Addr(cBytes*zlo*n*n), out)
}

// checksumPartial sums the NAS sample points whose z index falls in
// [zlo, zhi), reading from the spatial array in DSM.
func checksumPartial(node core.Worker, v core.Addr, n, zlo, zhi int) (re, im float64) {
	var s complex128
	for j := 1; j <= checksumTerms; j++ {
		x, y, z := checksumIndices(j, n)
		if z < zlo || z >= zhi {
			continue
		}
		s += readC(node, v, (z*n+y)*n+x)
	}
	return real(s), imag(s)
}

// gridChecksum folds one iteration's complex sample sum into the running
// scalar checksum.
func gridChecksum(re, im float64) float64 { return math.Sqrt(re*re + im*im) }
