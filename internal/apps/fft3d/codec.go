package fft3d

import (
	"encoding/binary"
	"math"
)

func putF64(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
